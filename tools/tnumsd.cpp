//===- tools/tnumsd.cpp - The tnums verification daemon binary ------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone wrapper over service/Daemon.h: bind, serve, stop on
/// SIGINT/SIGTERM or a client Shutdown frame. Ops quickstart in
/// docs/SERVICE.md.
///
/// Usage: tnumsd --socket PATH [--tcp PORT] [--jobs N] [--cache DIR]
///               [--cache-max-entries N] [--cache-max-bytes N]
///               [--max-pending N] [--tenant-quota N]
///               [--metrics-text PATH] [--metrics-refresh-ms N]
///               [--event-log FILE] [--no-metrics]
///        tnumsd --socket PATH --stop
///
///   --socket PATH    UNIX-domain socket to serve on (required).
///   --tcp PORT       also listen on loopback TCP (0 = ephemeral; the
///                    bound port is printed on startup).
///   --jobs N         worker threads (0 = hardware concurrency).
///   --cache DIR      persistent verdict-cache directory; omit to run
///                    without cross-run caching.
///   --cache-max-entries N
///                    cap the cache at N entries (0 = unlimited); over-cap
///                    inserts evict least-recently-used entries, and
///                    startup sweeps a pre-existing over-cap store.
///   --cache-max-bytes N
///                    cap the cache's total entry-file bytes likewise.
///   --max-pending N  admission window before Busy(pool) replies
///                    (0 = 4x workers).
///   --tenant-quota N per-tenant in-flight cap before Busy(quota)
///                    (0 = unlimited).
///   --metrics-text PATH
///                    write the Prometheus text exposition to PATH,
///                    refreshed atomically (temp+rename) while serving and
///                    once at exit (docs/OBSERVABILITY.md).
///   --metrics-refresh-ms N
///                    exposition refresh cadence (default 1000).
///   --event-log FILE append one JSONL line per request-lifecycle event.
///   --no-metrics     do not install the process metrics recorder (the
///                    daemon enables it by default).
///   --stop           client mode: ask the daemon at --socket to shut
///                    down gracefully and wait for the acknowledgment.
///
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"
#include "service/DaemonClient.h"
#include "support/ArgParse.h"

#include <cstdio>

#include <signal.h>

using namespace tnums;
using namespace tnums::service;

namespace {

Daemon *ActiveDaemon = nullptr;

void handleStopSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->requestStop(); // Async-signal-safe: atomic + pipe write.
}

} // namespace

int main(int Argc, char **Argv) {
  const char *SocketPath = nullptr;
  const char *CacheDir = nullptr;
  uint64_t CacheMaxEntries = 0;
  uint64_t CacheMaxBytes = 0;
  uint64_t TcpPort = UINT64_MAX; // Sentinel: no TCP listener.
  unsigned Jobs = 0;
  uint64_t MaxPending = 0;
  uint64_t TenantQuota = 0;
  const char *MetricsTextPath = nullptr;
  uint64_t MetricsRefreshMs = 1000;
  const char *EventLogPath = nullptr;
  bool NoMetrics = false;
  bool Stop = false;

  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchString("--socket", SocketPath))
      continue;
    if (Args.matchString("--cache", CacheDir))
      continue;
    if (Args.matchU64("--cache-max-entries", 0, uint64_t(1) << 48,
                      CacheMaxEntries))
      continue;
    if (Args.matchU64("--cache-max-bytes", 0, uint64_t(1) << 48,
                      CacheMaxBytes))
      continue;
    if (Args.matchU64("--tcp", 0, 65535, TcpPort))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    if (Args.matchU64("--max-pending", 0, uint64_t(1) << 32, MaxPending))
      continue;
    if (Args.matchU64("--tenant-quota", 0, uint64_t(1) << 32, TenantQuota))
      continue;
    if (Args.matchString("--metrics-text", MetricsTextPath))
      continue;
    if (Args.matchU64("--metrics-refresh-ms", 1, 3600000, MetricsRefreshMs))
      continue;
    if (Args.matchString("--event-log", EventLogPath))
      continue;
    if (Args.matchFlag("--no-metrics")) {
      NoMetrics = true;
      continue;
    }
    if (Args.matchFlag("--stop")) {
      Stop = true;
      continue;
    }
    Args.reject();
  }
  if (Args.failed() || !SocketPath) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--tcp PORT] [--jobs 0..1024] "
                 "[--cache DIR] [--cache-max-entries N] "
                 "[--cache-max-bytes N] [--max-pending N] "
                 "[--tenant-quota N] [--metrics-text PATH] "
                 "[--metrics-refresh-ms N] [--event-log FILE] "
                 "[--no-metrics] [--stop]\n",
                 Argv[0]);
    return 1;
  }

  if (Stop) {
    std::string Error;
    std::optional<DaemonClient> Client = DaemonClient::connectUnixSocket(
        SocketPath, "tnumsd-stop", /*TimeoutMs=*/2000, Error);
    if (!Client) {
      std::fprintf(stderr, "error: cannot reach daemon at %s: %s\n",
                   SocketPath, Error.c_str());
      return 1;
    }
    if (!Client->shutdownServer(Error)) {
      std::fprintf(stderr, "error: shutdown failed: %s\n", Error.c_str());
      return 1;
    }
    std::printf("tnumsd at %s acknowledged shutdown\n", SocketPath);
    return 0;
  }

  DaemonConfig Config;
  Config.SocketPath = SocketPath;
  Config.TcpPort = TcpPort == UINT64_MAX ? -1 : static_cast<int>(TcpPort);
  Config.NumThreads = Jobs;
  Config.CacheDir = CacheDir ? CacheDir : "";
  Config.CacheMaxEntries = CacheMaxEntries;
  Config.CacheMaxBytes = CacheMaxBytes;
  Config.MaxPendingRequests = MaxPending;
  Config.TenantMaxInFlight = TenantQuota;
  Config.EnableMetrics = !NoMetrics;
  Config.MetricsTextPath = MetricsTextPath ? MetricsTextPath : "";
  Config.MetricsRefreshMs = static_cast<unsigned>(MetricsRefreshMs);
  Config.EventLogPath = EventLogPath ? EventLogPath : "";

  std::string Error;
  std::optional<Daemon> Served = Daemon::create(Config, Error);
  if (!Served) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  ActiveDaemon = &*Served;
  struct sigaction Action = {};
  Action.sa_handler = handleStopSignal;
  sigaction(SIGINT, &Action, nullptr);
  sigaction(SIGTERM, &Action, nullptr);

  std::printf("tnumsd serving on %s", SocketPath);
  if (Config.TcpPort >= 0)
    std::printf(" and tcp 127.0.0.1:%u", unsigned(Served->tcpPort()));
  if (CacheDir) {
    std::printf(" (verdict cache: %s", CacheDir);
    if (CacheMaxEntries)
      std::printf(", max %llu entries",
                  static_cast<unsigned long long>(CacheMaxEntries));
    if (CacheMaxBytes)
      std::printf(", max %llu bytes",
                  static_cast<unsigned long long>(CacheMaxBytes));
    std::printf(")");
  }
  std::printf("\n");
  std::printf("version fingerprint %016llx\n",
              static_cast<unsigned long long>(Served->versionFingerprint()));
  std::fflush(stdout);

  bool Ok = Served->run(Error);
  ActiveDaemon = nullptr;
  if (!Ok) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  DaemonStats Stats = Served->stats();
  std::printf("tnumsd exiting: %llu connections, %llu submits, "
              "%llu verdicts (%llu analyzed, %llu cache hits), "
              "%llu cache evictions, %llu busy, %llu protocol errors, "
              "peak %llu in-flight / %llu queued\n",
              static_cast<unsigned long long>(Stats.Connections),
              static_cast<unsigned long long>(Stats.Submits),
              static_cast<unsigned long long>(Stats.Verdicts),
              static_cast<unsigned long long>(Stats.Analyses),
              static_cast<unsigned long long>(Stats.cacheHits()),
              static_cast<unsigned long long>(Stats.CacheEvictions),
              static_cast<unsigned long long>(Stats.BusyPool + Stats.BusyQuota),
              static_cast<unsigned long long>(Stats.ProtocolErrors),
              static_cast<unsigned long long>(Stats.PeakInFlight),
              static_cast<unsigned long long>(Stats.PeakQueueDepth));
  return 0;
}
