//===- bench/daemon_throughput.cpp - tnumsd closed-loop latency bench -----===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-loop multi-client driver for the verification daemon
/// (service/Daemon.h): N clients each submit the same seeded program
/// stream in a client-specific shuffled order, one request outstanding
/// per client, absorbing Busy backpressure by retrying. Reports p50/p99
/// request latency and saturation throughput, and enforces the service's
/// determinism contract:
///
///  * every client's verdict stream, reassembled into canonical request
///    order, must produce the same verdictFingerprint as every other
///    client's, regardless of interleaving, and
///  * that fingerprint must be bit-identical to the in-process
///    VerificationService verifying the same requests (unless --connect
///    points at an external daemon whose version fingerprint differs).
///
/// The run fails (exit 1) on any divergence -- this is the bench leg of
/// tests/DaemonTest.cpp's identity battery, sized for CI smoke runs.
///
/// Usage: daemon_throughput [--clients N] [--programs N] [--seed S]
///                          [--profile {alu,bounds,packet,loops,mixed}]
///                          [--mem N] [--jobs N] [--cache DIR]
///                          [--connect PATH] [--socket PATH] [--json FILE]
///
///   --connect PATH  drive an already-running daemon instead of spawning
///                   one in-process (its stats deltas are still queried).
///   --socket PATH   socket path for the in-process daemon (default:
///                   /tmp/tnumsd-bench-<pid>.sock).
///   --jobs N        in-process daemon worker threads (0 = hardware).
///   --cache DIR     verdict-cache directory for the in-process daemon.
///   --json FILE     machine-readable dump (BENCH_daemon.json): latency
///                   percentiles, throughput, fingerprints, stats deltas.
///   --metrics       enable the process metrics recorder for the
///                   in-process daemon and embed the merged snapshot as a
///                   "metrics" section of the --json dump (off by
///                   default; verdict bytes are identical either way).
///
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"
#include "service/DaemonClient.h"
#include "service/ProgramGen.h"
#include "service/VerificationService.h"
#include "support/ArgParse.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace tnums;
using namespace tnums::service;

namespace {

/// What one client brings back: canonical-order results plus its raw
/// request latencies.
struct ClientRun {
  std::vector<VerifyResult> Results; ///< Indexed like the request stream.
  std::vector<double> LatenciesMs;
  uint64_t CacheHits = 0;
  bool Ok = false;
  std::string Error;
};

/// Client-specific deterministic shuffle (SplitMix64-driven Fisher-Yates)
/// so interleavings differ across clients but never across runs.
std::vector<size_t> shuffledOrder(size_t Count, uint64_t Seed) {
  std::vector<size_t> Order(Count);
  for (size_t Index = 0; Index != Count; ++Index)
    Order[Index] = Index;
  uint64_t State = Seed;
  auto Next = [&State] {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  };
  for (size_t Index = Count; Index > 1; --Index)
    std::swap(Order[Index - 1], Order[Next() % Index]);
  return Order;
}

void runClient(const std::string &SocketPath, unsigned ClientIndex,
               uint64_t Seed, const std::vector<VerifyRequest> &Requests,
               ClientRun &Out) {
  Out.Results.resize(Requests.size());
  Out.LatenciesMs.reserve(Requests.size());
  std::string Tenant = formatString("client%u", ClientIndex);
  std::optional<DaemonClient> Client = DaemonClient::connectUnixSocket(
      SocketPath, Tenant, /*TimeoutMs=*/5000, Out.Error);
  if (!Client)
    return;
  std::vector<size_t> Order =
      shuffledOrder(Requests.size(), Seed ^ (0xC11E47ull + ClientIndex));
  using Clock = std::chrono::steady_clock;
  for (size_t Index : Order) {
    Clock::time_point Start = Clock::now();
    VerdictMsg Verdict;
    if (!Client->submitWithRetry(Requests[Index], /*Priority=*/0,
                                 /*TimeoutMs=*/120000, Verdict, Out.Error))
      return;
    std::chrono::duration<double, std::milli> Elapsed = Clock::now() - Start;
    Out.LatenciesMs.push_back(Elapsed.count());
    if (Verdict.CacheHit)
      ++Out.CacheHits;
    Out.Results[Index] = verdictToResult(Verdict);
  }
  Out.Ok = true;
}

double percentile(std::vector<double> Sorted, double Fraction) {
  if (Sorted.empty())
    return 0.0;
  size_t Rank = static_cast<size_t>(Fraction * (Sorted.size() - 1));
  return Sorted[Rank];
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Clients = 4;
  uint64_t Programs = 2000;
  uint64_t Seed = 2022;
  uint64_t MemSize = 32;
  unsigned Jobs = 0;
  const char *ProfileText = "mixed";
  const char *ConnectPath = nullptr;
  const char *SocketPathText = nullptr;
  const char *CacheDir = nullptr;
  const char *JsonPath = nullptr;
  bool UseMetrics = false;

  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchU64("--clients", 1, 256, Clients))
      continue;
    if (Args.matchU64("--programs", 1, uint64_t(1) << 24, Programs))
      continue;
    if (Args.matchU64("--seed", 0, UINT64_MAX, Seed))
      continue;
    if (Args.matchU64("--mem", 16, uint64_t(1) << 20, MemSize))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    if (Args.matchString("--profile", ProfileText))
      continue;
    if (Args.matchString("--connect", ConnectPath))
      continue;
    if (Args.matchString("--socket", SocketPathText))
      continue;
    if (Args.matchString("--cache", CacheDir))
      continue;
    if (Args.matchString("--json", JsonPath))
      continue;
    if (Args.matchFlag("--metrics")) {
      UseMetrics = true;
      continue;
    }
    Args.reject();
  }
  std::optional<GenProfile> Profile =
      Args.failed() ? std::nullopt : parseGenProfile(ProfileText);
  if (!Profile) {
    std::fprintf(stderr,
                 "usage: %s [--clients N] [--programs N] [--seed S] "
                 "[--profile {alu,bounds,packet,loops,mixed}] [--mem N] "
                 "[--jobs 0..1024] [--cache DIR] [--connect PATH] "
                 "[--socket PATH] [--json FILE] [--metrics]\n",
                 Argv[0]);
    return 1;
  }

  //===--------------------------------------------------------------------===//
  // The shared request stream: every client submits exactly these, in its
  // own shuffled order.
  //===--------------------------------------------------------------------===//
  GenOptions Gen;
  Gen.Profile = *Profile;
  Gen.MemSize = MemSize;
  ProgramGen Generator(Seed, Gen);
  std::vector<VerifyRequest> Requests;
  Requests.reserve(Programs);
  for (uint64_t Index = 0; Index != Programs; ++Index) {
    VerifyRequest Request;
    Request.Prog = Generator.next();
    Request.MemSize = MemSize;
    Requests.push_back(std::move(Request));
  }

  //===--------------------------------------------------------------------===//
  // Daemon: external (--connect) or spawned in-process.
  //===--------------------------------------------------------------------===//
  std::string SocketPath;
  std::optional<Daemon> Spawned;
  std::thread DaemonThread;
  std::string DaemonError;
  if (ConnectPath) {
    SocketPath = ConnectPath;
  } else {
    SocketPath = SocketPathText
                     ? std::string(SocketPathText)
                     : formatString("/tmp/tnumsd-bench-%d.sock", int(getpid()));
    DaemonConfig Config;
    Config.SocketPath = SocketPath;
    Config.NumThreads = Jobs;
    Config.CacheDir = CacheDir ? CacheDir : "";
    // A bench daemon observes only on request: the run measures latency.
    Config.EnableMetrics = UseMetrics;
    std::string Error;
    Spawned = Daemon::create(Config, Error);
    if (!Spawned) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    DaemonThread = std::thread(
        [&] { Spawned->run(DaemonError); });
  }

  std::printf("daemon throughput: %llu clients x %llu %s-profile programs "
              "(seed %llu) against %s\n\n",
              static_cast<unsigned long long>(Clients),
              static_cast<unsigned long long>(Programs),
              genProfileName(*Profile),
              static_cast<unsigned long long>(Seed), SocketPath.c_str());

  //===--------------------------------------------------------------------===//
  // Stats before, clients, stats after.
  //===--------------------------------------------------------------------===//
  StatsReplyMsg StatsBefore, StatsAfter;
  bool HaveStats = false;
  {
    std::string Error;
    std::optional<DaemonClient> Probe = DaemonClient::connectUnixSocket(
        SocketPath, "bench-probe", /*TimeoutMs=*/5000, Error);
    if (!Probe) {
      std::fprintf(stderr, "error: cannot reach daemon: %s\n", Error.c_str());
      if (Spawned) {
        Spawned->requestStop();
        DaemonThread.join();
      }
      return 1;
    }
    HaveStats = Probe->queryStats(StatsBefore, Error);
  }

  std::vector<ClientRun> Runs(Clients);
  using Clock = std::chrono::steady_clock;
  Clock::time_point WallStart = Clock::now();
  {
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    for (uint64_t Index = 0; Index != Clients; ++Index)
      Threads.emplace_back(runClient, SocketPath,
                           static_cast<unsigned>(Index), Seed,
                           std::cref(Requests), std::ref(Runs[Index]));
    for (std::thread &Thread : Threads)
      Thread.join();
  }
  std::chrono::duration<double> Wall = Clock::now() - WallStart;

  {
    std::string Error;
    std::optional<DaemonClient> Probe = DaemonClient::connectUnixSocket(
        SocketPath, "bench-probe", /*TimeoutMs=*/5000, Error);
    if (Probe && HaveStats)
      HaveStats = Probe->queryStats(StatsAfter, Error);
    else
      HaveStats = false;
  }

  if (Spawned && !ConnectPath) {
    Spawned->requestStop();
    DaemonThread.join();
    if (!DaemonError.empty())
      std::fprintf(stderr, "warning: daemon loop: %s\n", DaemonError.c_str());
  }

  for (uint64_t Index = 0; Index != Clients; ++Index)
    if (!Runs[Index].Ok) {
      std::fprintf(stderr, "error: client %llu failed: %s\n",
                   static_cast<unsigned long long>(Index),
                   Runs[Index].Error.c_str());
      return 1;
    }

  //===--------------------------------------------------------------------===//
  // Identity: every client's canonical-order fingerprint, plus the
  // in-process engine on the same stream.
  //===--------------------------------------------------------------------===//
  std::vector<uint64_t> Fingerprints;
  uint64_t TotalCacheHits = 0;
  for (ClientRun &Run : Runs) {
    BatchResult Batch;
    Batch.Results = std::move(Run.Results);
    Fingerprints.push_back(verdictFingerprint(Batch));
    TotalCacheHits += Run.CacheHits;
  }
  bool ClientsAgree = true;
  for (uint64_t Print : Fingerprints)
    ClientsAgree &= Print == Fingerprints.front();

  ServiceConfig Reference;
  Reference.NumThreads = Jobs;
  BatchResult InProcess = VerificationService(Reference).verifyBatch(Requests);
  uint64_t InProcessFingerprint = verdictFingerprint(InProcess);
  bool MatchesInProcess = Fingerprints.front() == InProcessFingerprint;

  //===--------------------------------------------------------------------===//
  // Latency distribution and throughput.
  //===--------------------------------------------------------------------===//
  std::vector<double> Latencies;
  for (const ClientRun &Run : Runs)
    Latencies.insert(Latencies.end(), Run.LatenciesMs.begin(),
                     Run.LatenciesMs.end());
  std::sort(Latencies.begin(), Latencies.end());
  double P50 = percentile(Latencies, 0.50);
  double P99 = percentile(Latencies, 0.99);
  uint64_t TotalVerdicts = Clients * Programs;
  double Throughput =
      Wall.count() > 0 ? static_cast<double>(TotalVerdicts) / Wall.count() : 0;

  TextTable Table({"clients", "verdicts", "seconds", "verdicts/s", "p50 ms",
                   "p99 ms", "cache hits"});
  Table.addRowOf(static_cast<unsigned>(Clients),
                 formatString("%llu",
                              static_cast<unsigned long long>(TotalVerdicts)),
                 formatString("%.3f", Wall.count()),
                 formatString("%.0f", Throughput), formatString("%.3f", P50),
                 formatString("%.3f", P99),
                 formatString("%llu",
                              static_cast<unsigned long long>(TotalCacheHits)));
  Table.printAligned(stdout);

  uint64_t AnalysesDelta =
      HaveStats ? StatsAfter.Analyses - StatsBefore.Analyses : 0;
  uint64_t CacheHitsDelta =
      HaveStats ? StatsAfter.cacheHits() - StatsBefore.cacheHits() : 0;
  uint64_t BusyDelta = HaveStats ? (StatsAfter.BusyPool + StatsAfter.BusyQuota) -
                                       (StatsBefore.BusyPool + StatsBefore.BusyQuota)
                                 : 0;
  if (HaveStats)
    std::printf("\ndaemon stats delta: %llu analyses, %llu cache hits, "
                "%llu busy replies\n",
                static_cast<unsigned long long>(AnalysesDelta),
                static_cast<unsigned long long>(CacheHitsDelta),
                static_cast<unsigned long long>(BusyDelta));
  std::printf("identity: clients %s; in-process engine %s (fingerprint "
              "%016llx)\n",
              ClientsAgree ? "bit-identical" : "DIVERGED",
              MatchesInProcess ? "bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(InProcessFingerprint));

  //===--------------------------------------------------------------------===//
  // Machine-readable dump for the CI perf-trajectory artifact.
  //===--------------------------------------------------------------------===//
  if (JsonPath) {
    std::FILE *Json = std::fopen(JsonPath, "w");
    if (!Json) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(Json,
                 "{\n"
                 "  \"bench\": \"daemon_throughput\",\n"
                 "  \"build_info\": %s,\n"
                 "  \"seed\": %llu,\n"
                 "  \"profile\": \"%s\",\n"
                 "  \"clients\": %llu,\n"
                 "  \"programs\": %llu,\n"
                 "  \"mem_size\": %llu,\n"
                 "  \"total_verdicts\": %llu,\n"
                 "  \"seconds\": %.6f,\n"
                 "  \"verdicts_per_s\": %.1f,\n"
                 "  \"latency_p50_ms\": %.6f,\n"
                 "  \"latency_p99_ms\": %.6f,\n"
                 "  \"cache_hits\": %llu,\n"
                 "  \"analyses_delta\": %llu,\n"
                 "  \"cache_hits_delta\": %llu,\n"
                 "  \"busy_delta\": %llu,\n"
                 "  \"deterministic\": %s,\n"
                 "  \"matches_in_process\": %s,\n"
                 "  \"verdict_fingerprint\": \"%016llx\"",
                 buildInfoJson().c_str(),
                 static_cast<unsigned long long>(Seed),
                 genProfileName(*Profile),
                 static_cast<unsigned long long>(Clients),
                 static_cast<unsigned long long>(Programs),
                 static_cast<unsigned long long>(MemSize),
                 static_cast<unsigned long long>(TotalVerdicts), Wall.count(),
                 Throughput, P50, P99,
                 static_cast<unsigned long long>(TotalCacheHits),
                 static_cast<unsigned long long>(AnalysesDelta),
                 static_cast<unsigned long long>(CacheHitsDelta),
                 static_cast<unsigned long long>(BusyDelta),
                 ClientsAgree ? "true" : "false",
                 MatchesInProcess ? "true" : "false",
                 static_cast<unsigned long long>(Fingerprints.front()));
    if (UseMetrics)
      std::fprintf(Json, ",\n  \"metrics\": %s\n}\n",
                   MetricsRegistry::instance().snapshot().toJson().c_str());
    else
      std::fprintf(Json, "\n}\n");
    std::fclose(Json);
    std::printf("\nwrote %s\n", JsonPath);
  }

  return ClientsAgree && MatchesInProcess ? 0 : 1;
}
