//===- bench/verifier_throughput.cpp - Batched verifier scaling -----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput harness for the batched verification service
/// (service/VerificationService.h): generate a seeded stream of BPF
/// programs, verify the whole batch at several worker counts, and report
/// the scaling curve (programs/s, insn-visits/s, speedup over one job)
/// plus the accept/reject breakdown. A per-batch verdict fingerprint
/// cross-checks the determinism contract -- every jobs count must produce
/// bit-identical per-program verdicts and violation lists, and the run
/// fails (exit 1) if any diverges.
///
/// Usage: verifier_throughput [--programs N] [--seed S]
///                            [--profile {alu,bounds,packet,loops,
///                                        maskidx,scaled,mixed}]
///                            [--jobs N] [--scaling] [--mem N]
///                            [--fuzz N] [--json FILE]
///                            [--replay FILE] [--dump-corpus FILE]
///
///   --jobs N     max worker count (default: hardware concurrency); the
///                batch always also runs at --jobs 1 for the baseline.
///   --scaling    fill in the powers of two between 1 and --jobs.
///   --fuzz N     additionally run an N-program differential fuzz
///                campaign (service/DifferentialFuzz.h) at the same seed
///                and fail on any finding.
///   --json FILE  append-free machine-readable dump of the scaling table
///                (the CI perf-trajectory artifact BENCH_verifier.json).
///   --replay FILE
///                verify a saved corpus (service/Corpus.h) instead of
///                generating programs; with --fuzz N the differential
///                campaign replays the same corpus (N is ignored).
///   --dump-corpus FILE
///                save the request stream as a corpus after the run, so
///                this exact workload can be replayed later.
///   --metrics    install the process metrics recorder (support/Metrics.h)
///                and embed the merged snapshot as a "metrics" section of
///                the --json dump. Off by default; verdicts are identical
///                either way (the CI overhead guard pins that).
///
//===----------------------------------------------------------------------===//

#include "service/Corpus.h"
#include "service/DifferentialFuzz.h"
#include "service/ProgramGen.h"
#include "service/VerificationService.h"
#include "support/ArgParse.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <vector>

using namespace tnums;
using namespace tnums::service;

namespace {

/// One row of the scaling curve.
struct ScalingPoint {
  unsigned Jobs;
  BatchStats Stats;
  uint64_t Fingerprint;
};

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Programs = 20000;
  uint64_t Seed = 2022;
  uint64_t MemSize = 32;
  uint64_t FuzzPrograms = 0;
  unsigned Jobs = ThreadPool::hardwareConcurrency();
  bool Scaling = false;
  const char *ProfileText = "mixed";
  const char *JsonPath = nullptr;
  const char *ReplayPath = nullptr;
  const char *DumpCorpusPath = nullptr;
  bool UseMetrics = false;

  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchU64("--programs", 1, uint64_t(1) << 32, Programs))
      continue;
    if (Args.matchU64("--seed", 0, UINT64_MAX, Seed))
      continue;
    if (Args.matchU64("--mem", 16, uint64_t(1) << 20, MemSize))
      continue;
    if (Args.matchU64("--fuzz", 0, uint64_t(1) << 32, FuzzPrograms))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    if (Args.matchFlag("--scaling")) {
      Scaling = true;
      continue;
    }
    if (Args.matchString("--profile", ProfileText))
      continue;
    if (Args.matchString("--json", JsonPath))
      continue;
    if (Args.matchString("--replay", ReplayPath))
      continue;
    if (Args.matchString("--dump-corpus", DumpCorpusPath))
      continue;
    if (Args.matchFlag("--metrics")) {
      UseMetrics = true;
      continue;
    }
    Args.reject();
  }
  std::optional<GenProfile> Profile =
      Args.failed() ? std::nullopt : parseGenProfile(ProfileText);
  if (!Profile) {
    std::fprintf(stderr,
                 "usage: %s [--programs N] [--seed S] "
                 "[--profile {alu,bounds,packet,loops,maskidx,scaled,mixed}] "
                 "[--jobs 0..1024] [--scaling] [--mem N] [--fuzz N] "
                 "[--json FILE] [--replay FILE] [--dump-corpus FILE] "
                 "[--metrics]\n",
                 Argv[0]);
    return 1;
  }
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareConcurrency();
  if (UseMetrics)
    enableProcessMetrics();

  //===--------------------------------------------------------------------===//
  // Generate the request stream once; every jobs count verifies the same
  // batch.
  //===--------------------------------------------------------------------===//
  GenOptions Gen;
  Gen.Profile = *Profile;
  Gen.MemSize = MemSize;
  ProgramGen Generator(Seed, Gen);
  std::vector<VerifyRequest> Requests;
  uint64_t TotalInsns = 0;
  if (ReplayPath) {
    std::string CorpusError;
    std::optional<std::vector<VerifyRequest>> Corpus =
        loadCorpus(ReplayPath, CorpusError);
    if (!Corpus) {
      std::fprintf(stderr, "error: %s\n", CorpusError.c_str());
      return 1;
    }
    Requests = std::move(*Corpus);
    Programs = Requests.size();
    for (const VerifyRequest &Request : Requests)
      TotalInsns += Request.Prog.size();
    std::printf("batched verification: %llu replayed programs from %s "
                "(%.1f insns/program)\n\n",
                static_cast<unsigned long long>(Programs), ReplayPath,
                Programs ? static_cast<double>(TotalInsns) / Programs : 0.0);
  } else {
    Requests.reserve(Programs);
    for (uint64_t Index = 0; Index != Programs; ++Index) {
      VerifyRequest Request;
      Request.Prog = Generator.next();
      Request.MemSize = MemSize;
      TotalInsns += Request.Prog.size();
      Requests.push_back(std::move(Request));
    }
    std::printf("batched verification: %llu %s-profile programs "
                "(%.1f insns/program, seed %llu, %llu-byte region)\n\n",
                static_cast<unsigned long long>(Programs),
                genProfileName(*Profile),
                Programs ? static_cast<double>(TotalInsns) / Programs : 0.0,
                static_cast<unsigned long long>(Seed),
                static_cast<unsigned long long>(MemSize));
  }
  if (DumpCorpusPath) {
    std::string CorpusError;
    if (!saveCorpus(DumpCorpusPath, Requests, CorpusError)) {
      std::fprintf(stderr, "error: %s\n", CorpusError.c_str());
      return 1;
    }
    std::printf("wrote %llu-program corpus to %s\n\n",
                static_cast<unsigned long long>(Requests.size()),
                DumpCorpusPath);
  }

  std::vector<unsigned> JobCounts{1};
  if (Scaling)
    for (unsigned J = 2; J < Jobs; J *= 2)
      JobCounts.push_back(J);
  if (Jobs > 1)
    JobCounts.push_back(Jobs);

  std::vector<ScalingPoint> Curve;
  for (unsigned J : JobCounts) {
    ServiceConfig Config;
    Config.NumThreads = J;
    BatchResult Batch = VerificationService(Config).verifyBatch(Requests);
    Curve.push_back({J, Batch.Stats, verdictFingerprint(Batch)});
  }

  bool Deterministic = true;
  for (const ScalingPoint &Point : Curve)
    Deterministic &= Point.Fingerprint == Curve.front().Fingerprint;

  const BatchStats &Base = Curve.front().Stats;
  TextTable Table({"jobs", "seconds", "programs/s", "Minsn-visits/s",
                   "speedup", "verdict fingerprint"});
  for (const ScalingPoint &Point : Curve)
    Table.addRowOf(Point.Jobs, formatString("%.3f", Point.Stats.Seconds),
                   formatString("%.0f", Point.Stats.programsPerSecond()),
                   formatString("%.2f",
                                Point.Stats.insnVisitsPerSecond() / 1e6),
                   formatString("%.2fx", Point.Stats.Seconds > 0
                                             ? Base.Seconds /
                                                   Point.Stats.Seconds
                                             : 0.0),
                   formatString("%016llx",
                                static_cast<unsigned long long>(
                                    Point.Fingerprint)));
  Table.printAligned(stdout);
  std::printf("\nverdicts: %llu accepted, %llu rejected structural, "
              "%llu rejected semantic (%llu insn visits, %llu dedup hits)\n",
              static_cast<unsigned long long>(Base.Accepted),
              static_cast<unsigned long long>(Base.RejectedStructural),
              static_cast<unsigned long long>(Base.RejectedSemantic),
              static_cast<unsigned long long>(Base.InsnVisits),
              static_cast<unsigned long long>(Base.DedupHits));
  std::printf("determinism: per-program verdicts %s across jobs counts\n",
              Deterministic ? "bit-identical" : "DIVERGED");

  //===--------------------------------------------------------------------===//
  // Optional differential fuzz pass at the same seed.
  //===--------------------------------------------------------------------===//
  bool FuzzClean = true;
  if (FuzzPrograms) {
    FuzzConfig Fuzz;
    Fuzz.Programs = FuzzPrograms;
    Fuzz.Gen = Gen;
    Fuzz.Service.NumThreads = Jobs;
    if (ReplayPath)
      Fuzz.Replay = Requests; // Replay the corpus through the oracles too.
    FuzzReport Report = runDifferentialFuzz(Seed, Fuzz);
    FuzzClean = Report.clean();
    std::printf("\ndifferential fuzz: %s\n", Report.toString().c_str());
    for (const FuzzFinding &Finding : Report.Findings)
      std::printf("  FINDING [%s] program %zu:\n%s\n", Finding.Kind.c_str(),
                  Finding.ProgramIndex, Finding.Details.c_str());
  }

  //===--------------------------------------------------------------------===//
  // Machine-readable dump for the CI perf-trajectory artifact.
  //===--------------------------------------------------------------------===//
  if (JsonPath) {
    std::FILE *Json = std::fopen(JsonPath, "w");
    if (!Json) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(Json,
                 "{\n"
                 "  \"bench\": \"verifier_throughput\",\n"
                 "  \"build_info\": %s,\n"
                 "  \"seed\": %llu,\n"
                 "  \"profile\": \"%s\",\n"
                 "  \"programs\": %llu,\n"
                 "  \"mem_size\": %llu,\n"
                 "  \"accepted\": %llu,\n"
                 "  \"rejected_structural\": %llu,\n"
                 "  \"rejected_semantic\": %llu,\n"
                 "  \"insn_visits\": %llu,\n"
                 "  \"dedup_hits\": %llu,\n"
                 "  \"deterministic\": %s,\n"
                 "  \"verdict_fingerprint\": \"%016llx\",\n"
                 "  \"scaling\": [\n",
                 buildInfoJson().c_str(),
                 static_cast<unsigned long long>(Seed),
                 genProfileName(*Profile),
                 static_cast<unsigned long long>(Programs),
                 static_cast<unsigned long long>(MemSize),
                 static_cast<unsigned long long>(Base.Accepted),
                 static_cast<unsigned long long>(Base.RejectedStructural),
                 static_cast<unsigned long long>(Base.RejectedSemantic),
                 static_cast<unsigned long long>(Base.InsnVisits),
                 static_cast<unsigned long long>(Base.DedupHits),
                 Deterministic ? "true" : "false",
                 static_cast<unsigned long long>(Curve.front().Fingerprint));
    for (size_t I = 0; I != Curve.size(); ++I)
      std::fprintf(Json,
                   "    {\"jobs\": %u, \"seconds\": %.6f, "
                   "\"programs_per_s\": %.1f, \"insn_visits_per_s\": %.1f, "
                   "\"speedup\": %.3f}%s\n",
                   Curve[I].Jobs, Curve[I].Stats.Seconds,
                   Curve[I].Stats.programsPerSecond(),
                   Curve[I].Stats.insnVisitsPerSecond(),
                   Curve[I].Stats.Seconds > 0
                       ? Base.Seconds / Curve[I].Stats.Seconds
                       : 0.0,
                   I + 1 == Curve.size() ? "" : ",");
    if (UseMetrics)
      std::fprintf(Json, "  ],\n  \"metrics\": %s\n}\n",
                   MetricsRegistry::instance().snapshot().toJson().c_str());
    else
      std::fprintf(Json, "  ]\n}\n");
    std::fclose(Json);
    std::printf("\nwrote %s\n", JsonPath);
  }

  return Deterministic && FuzzClean ? 0 : 1;
}
