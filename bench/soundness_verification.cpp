//===- bench/soundness_verification.cpp - Reproduce §III-A results --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §III-A bounded verification campaign, re-run on the offline
/// substitute engine (exhaustive enumeration = the same bounded property
/// the SMT queries decide, plus randomized 64-bit refutation):
///
///   1. soundness of every tnum operator, exhaustively per width;
///   2. soundness of every multiplication algorithm (the paper verified
///      kern_mul only up to n = 8; --mul-width 8 reproduces that instance,
///      and the parallel sweep engine makes --mul-width 10-12 reachable);
///   3. optimality of add/sub/bitwise ops, non-optimality of the muls;
///   4. the three §III-A observations with concrete witnesses;
///   5. the §III-B/§VII proof lemmas swept exhaustively.
///
/// The exhaustive sections run on the parallel sweep engine
/// (verify/ParallelSweep.h); --jobs 1 selects the serial path and
/// --compare-serial additionally times the scalar serial checkers on the
/// multiplication campaign and reports the speedup.
///
/// --simd={auto,on,off} selects the member-scan path (support/SimdBatch.h):
/// the batched 64-lane kernels (auto/on) or the scalar reference (off).
/// Reports are bit-identical across modes; only the throughput moves, so
/// running once with --simd=on and once with --simd=off is the A/B
/// measurement of the kernel (compare the Mevals/s column).
///
/// Usage: soundness_verification [--width N] [--mul-width N]
///                               [--random-pairs N] [--jobs N]
///                               [--simd={auto,on,off}] [--compare-serial]
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Random.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "tnum/TnumEnum.h"
#include "verify/AlgebraicProperties.h"
#include "verify/LemmaChecks.h"
#include "verify/MonotonicityChecker.h"
#include "verify/ParallelSweep.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace tnums;

namespace {
/// Wall-clock seconds spent in \p Fn.
template <typename FnT> double timeSeconds(FnT &&Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  std::chrono::duration<double> Elapsed =
      std::chrono::steady_clock::now() - Start;
  return Elapsed.count();
}
} // namespace

int main(int Argc, char **Argv) {
  unsigned Width = 4;
  unsigned MulWidth = 5;
  uint64_t RandomPairs = 20000;
  unsigned Jobs = ThreadPool::hardwareConcurrency();
  SimdMode Simd = SimdMode::Auto;
  bool CompareSerial = false;
  const char *SimdText = nullptr;
  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    // Widths live in [1, 16]: 3^17 tnum pairs is already out of
    // enumeration reach, and rejecting early beats exploding inside the
    // sweep.
    if (Args.matchUnsigned("--width", 1, 16, Width))
      continue;
    if (Args.matchUnsigned("--mul-width", 1, 16, MulWidth))
      continue;
    if (Args.matchU64("--random-pairs", 0, UINT64_MAX, RandomPairs))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    if (Args.matchString("--simd", SimdText)) // --simd=MODE or --simd MODE
      continue;
    if (Args.matchFlag("--compare-serial")) {
      CompareSerial = true;
      continue;
    }
    Args.reject();
  }
  bool BadArgs = Args.failed();
  if (SimdText) {
    if (std::optional<SimdMode> Parsed = parseSimdMode(SimdText))
      Simd = *Parsed;
    else
      BadArgs = true;
  }
  if (Jobs == 0) // Keeps the SweepConfig convention: hardware concurrency.
    Jobs = ThreadPool::hardwareConcurrency();
  if (BadArgs) {
    std::fprintf(stderr,
                 "usage: %s [--width 1..16] [--mul-width 1..16] "
                 "[--random-pairs N] [--jobs 0..1024] "
                 "[--simd={auto,on,off}] [--compare-serial]\n",
                 Argv[0]);
    return 1;
  }
  SweepConfig Sweep;
  Sweep.NumThreads = Jobs;
  Sweep.Simd = Simd;
  std::printf("member-scan path: --simd=%s resolves to %s on this host\n\n",
              simdModeName(Simd), simdPathDescription(Simd));

  bool AllHold = true;

  //===--------------------------------------------------------------------===//
  std::printf("[1] exhaustive soundness + optimality of every operator at "
              "width %u (%u jobs)\n\n",
              Width, Sweep.NumThreads);
  TextTable OpTable({"op", "soundness", "optimality", "concrete evals"});
  for (BinaryOp Op : AllBinaryOps) {
    if (isShiftOp(Op) && (Width & (Width - 1)) != 0) {
      OpTable.addRowOf(binaryOpName(Op), "skipped (width not 2^k)", "-", "-");
      continue;
    }
    SoundnessReport Sound =
        checkSoundnessExhaustiveParallel(Op, Width, MulAlgorithm::Our, Sweep);
    OptimalityReport Precise = checkOptimalityExhaustiveParallel(
        Op, Width, MulAlgorithm::Our, Sweep, /*StopAtFirst=*/true);
    AllHold &= Sound.holds();
    OpTable.addRowOf(binaryOpName(Op), Sound.holds() ? "sound" : "UNSOUND",
                     Precise.isOptimalEverywhere() ? "optimal"
                                                   : "not optimal",
                     Sound.ConcreteChecked);
  }
  OpTable.printAligned(stdout);
  std::printf("paper: all ops sound; add/sub/bitwise also optimal; div/mod "
              "conservatively imprecise.\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[2] exhaustive soundness of each multiplication algorithm at "
              "width %u (%u jobs)\n\n",
              MulWidth, Sweep.NumThreads);
  TextTable MulTable({"algorithm", "soundness", "pairs", "concrete evals",
                      "seconds", "Mevals/s"});
  std::vector<MulSweepResult> Campaign = sweepMulSoundness({MulWidth}, Sweep);
  double ParallelSeconds = 0;
  uint64_t CampaignEvals = 0;
  for (const MulSweepResult &Cell : Campaign) {
    AllHold &= Cell.Report.holds();
    ParallelSeconds += Cell.Seconds;
    CampaignEvals += Cell.Report.ConcreteChecked;
    MulTable.addRowOf(mulAlgorithmName(Cell.Algorithm),
                      Cell.Report.holds() ? "sound" : "UNSOUND",
                      Cell.Report.PairsChecked, Cell.Report.ConcreteChecked,
                      formatString("%.3f", Cell.Seconds),
                      formatString("%.1f", Cell.Seconds > 0
                                               ? Cell.Report.ConcreteChecked /
                                                     Cell.Seconds / 1e6
                                               : 0.0));
  }
  MulTable.printAligned(stdout);
  // ConcreteChecked/sec over the whole campaign: the A/B figure of merit
  // for --simd on/off (identical eval counts, different wall-clock).
  std::printf("campaign throughput: %.1f Mevals/s "
              "(%llu concrete evals in %.3f s; --simd=%s, %u jobs)\n",
              ParallelSeconds > 0 ? CampaignEvals / ParallelSeconds / 1e6
                                  : 0.0,
              static_cast<unsigned long long>(CampaignEvals), ParallelSeconds,
              simdModeName(Simd), Sweep.NumThreads);
  if (CompareSerial) {
    // The reference is the scalar serial checker (SimdMode::Off) whatever
    // --simd selected, so the speedup always reads "fast path vs the
    // pre-batching baseline".
    double SerialSeconds = timeSeconds([&] {
      for (const MulSweepResult &Cell : Campaign)
        AllHold &= checkSoundnessExhaustive(BinaryOp::Mul, MulWidth,
                                            Cell.Algorithm, SimdMode::Off)
                       .holds();
    });
    std::printf("scalar serial %.3f s vs parallel %.3f s with %u jobs "
                "(--simd=%s): speedup %.2fx\n",
                SerialSeconds, ParallelSeconds, Sweep.NumThreads,
                simdModeName(Simd),
                ParallelSeconds > 0 ? SerialSeconds / ParallelSeconds : 0.0);
  }
  std::printf("paper: kern_mul SMT-verified up to n = 8 (pass --mul-width 8 "
              "to rerun that exact instance; --mul-width 10 stays practical "
              "on a multicore host via --jobs).\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[3] randomized 64-bit refutation campaign (%llu pairs/op)\n\n",
              static_cast<unsigned long long>(RandomPairs));
  TextTable RandTable({"op", "verdict", "concrete evals"});
  Xoshiro256 Rng(2022);
  for (BinaryOp Op : AllBinaryOps) {
    SoundnessReport Report =
        checkSoundnessRandom(Op, 64, RandomPairs, /*SamplesPerPair=*/8, Rng);
    AllHold &= Report.holds();
    RandTable.addRowOf(binaryOpName(Op),
                       Report.holds() ? "no counterexample" : "UNSOUND",
                       Report.ConcreteChecked);
  }
  RandTable.printAligned(stdout);
  std::printf("paper: SMT proves add/sub/bitwise at full 64-bit width in "
              "seconds; this randomized campaign is the offline "
              "falsification analogue.\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[4] §III-A observations\n\n");
  if (std::optional<AssociativityWitness> W =
          findAddNonAssociativityWitness(2)) {
    std::printf("  (1) tnum addition is NOT associative, e.g. P=%s Q=%s "
                "R=%s: (P+Q)+R = %s but P+(Q+R) = %s\n",
                W->P.toString(2).c_str(), W->Q.toString(2).c_str(),
                W->R.toString(2).c_str(), W->LeftFirst.toString(2).c_str(),
                W->RightFirst.toString(2).c_str());
  }
  if (std::optional<InverseWitness> W = findAddSubNonInverseWitness(2)) {
    std::printf("  (2) add/sub are NOT inverses, e.g. P=%s Q=%s: "
                "(P+Q)-Q = %s != P\n",
                W->P.toString(2).c_str(), W->Q.toString(2).c_str(),
                W->RoundTrip.toString(2).c_str());
  }
  for (unsigned SearchWidth = 2; SearchWidth <= 6; ++SearchWidth) {
    if (std::optional<CommutativityWitness> W =
            findMulNonCommutativityWitness(MulAlgorithm::Kern, SearchWidth)) {
      std::printf("  (3) kern_mul is NOT commutative (smallest witness at "
                  "width %u): P=%s Q=%s: P*Q = %s but Q*P = %s\n",
                  SearchWidth, W->P.toString(SearchWidth).c_str(),
                  W->Q.toString(SearchWidth).c_str(),
                  W->Forward.toString(SearchWidth).c_str(),
                  W->Backward.toString(SearchWidth).c_str());
      break;
    }
  }
  std::printf("\n");

  //===--------------------------------------------------------------------===//
  std::printf("[5] proof-lemma sweeps (exhaustive, width %u)\n\n", Width);
  TextTable LemmaTable({"lemma", "verdict"});
  for (const char *const *Name = AllLemmaNames; *Name; ++Name) {
    std::optional<std::string> Failure = sweepLemmaExhaustive(*Name, Width);
    AllHold &= !Failure.has_value();
    LemmaTable.addRowOf(*Name,
                        Failure ? Failure->c_str() : "holds everywhere");
  }
  LemmaTable.printAligned(stdout);

  //===--------------------------------------------------------------------===//
  std::printf("\n[6] monotonicity of the multiplication algorithms "
              "(extension beyond the paper)\n\n");
  TextTable MonoTable({"algorithm", "width", "verdict"});
  for (MulAlgorithm Alg :
       {MulAlgorithm::Kern, MulAlgorithm::BitwiseOpt, MulAlgorithm::Our}) {
    for (unsigned W = 4; W <= 5; ++W) {
      MonotonicityReport Report =
          checkMonotonicityExhaustiveParallel(BinaryOp::Mul, W, Alg, Sweep);
      MonoTable.addRowOf(mulAlgorithmName(Alg), W,
                         Report.holds()
                             ? std::string("monotone")
                             : "NON-MONOTONE: " + Report.Failure->toString(W));
    }
  }
  MonoTable.printAligned(stdout);
  std::printf("finding: the strength-reduced accumulators (P.v * Q.v) make "
              "kern_mul non-monotone at width 5 and our_mul at width 6; "
              "bitwise_mul_opt, a plain composition of monotone operators, "
              "stays monotone. Soundness is unaffected.\n");

  std::printf("\noverall: %s\n",
              AllHold ? "ALL CHECKS PASSED" : "SOME CHECKS FAILED");
  return AllHold ? 0 : 1;
}
