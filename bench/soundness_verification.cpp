//===- bench/soundness_verification.cpp - Reproduce §III-A results --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §III-A bounded verification campaign, re-run on the offline
/// substitute engine (exhaustive enumeration = the same bounded property
/// the SMT queries decide, plus randomized 64-bit refutation):
///
///   1. soundness + optimality of every tnum operator, exhaustively;
///   2. soundness of every multiplication algorithm (the paper verified
///      kern_mul only up to n = 8; --mul-width 8 reproduces that instance,
///      and the campaign engine makes --mul-width 10-12 reachable);
///   3. randomized 64-bit refutation;
///   4. the three §III-A observations with concrete witnesses;
///   5. the §III-B/§VII proof lemmas swept exhaustively;
///   6. monotonicity of the multiplication algorithms.
///
/// The exhaustive sections (1, 2, 6) compile into ONE declarative
/// CampaignSpec (verify/Campaign.h) and run on the checkpointed, sharded
/// campaign engine:
///
///   --checkpoint-dir D   durable shard store; a killed run resumes with
///                        --resume and loses at most one shard of work
///   --resume             reuse shards already in --checkpoint-dir
///   --shards K           split the shard manifest across K invocations
///   --shard-index I      this invocation's slice (0-based); every
///                        invocation points at the same --checkpoint-dir,
///                        and whichever one finds the manifest complete
///                        prints the merged report
///   --shard-pairs N      pair indices per shard (default 2^20)
///
/// Merged reports are bit-identical to an uninterrupted serial run no
/// matter how the shards were split, killed, or resumed (the campaign
/// determinism contract, docs/CAMPAIGN.md).
///
/// Campaigns are also *incremental across transfer-function changes*
/// (docs/CAMPAIGN.md): every checkpointed cell is keyed on the content
/// fingerprint of the operator it verified, so resuming after an
/// algorithm change re-runs only the invalidated cells.
///
///   --diff-baseline D    compare this run against the checkpoint store
///                        of an earlier run of the same campaign shape:
///                        which cells an incremental resume would reuse
///                        vs re-run, and whether any verdict changed
///   --flip-mul ALGO      test-only: re-register the named multiplication
///                        algorithm under a flipped content fingerprint
///                        (semantics unchanged). Resuming against a
///                        checkpoint written without the flip re-executes
///                        exactly that algorithm's soundness cells -- the
///                        CI incremental smoke leg drives this
///
/// --simd={auto,off,portable,avx2,avx512,neon} selects the member-scan
/// path and kernel tier (support/SimdBatch.h; "on" stays accepted as a
/// legacy alias of auto). Reports are bit-identical across modes, so
/// --simd=auto vs --simd=off is the A/B measurement of the batched
/// kernels; forcing an unsupported tier is a hard error naming what this
/// host supports. --compare-serial times the scalar serial checkers on
/// the multiplication campaign.
/// --optimality={first,full} picks first-witness-only (default; the
/// ROADMAP's deterministic early-exit mode) or exact-total optimality
/// scans, and --compare-optimality re-times the optimality cells twice:
/// with the memoized-concretization path disabled, and with the fused
/// evaluate-and-reduce alpha loops disabled (SweepConfig::FuseOptimality)
/// -- both A/Bs must report identically to the main run.
/// --json FILE dumps the campaign figures of merit as BENCH_sweep.json
/// for the CI perf gate (ci/compare_bench.py gate_sweep).
/// --precision (opt-in) appends precision cells to the campaign -- the
/// per-operator optimality-gap measurement of docs/ATLAS.md -- printed as
/// section [7] and diffed by --diff-baseline as "precision deltas";
/// measurements never affect the exit code.
///
/// Usage: soundness_verification [--width N] [--mul-width N]
///                               [--random-pairs N] [--jobs N]
///                               [--simd=MODE] [--compare-serial]
///                               [--optimality={first,full}]
///                               [--compare-optimality] [--precision]
///                               [--json FILE]
///                               [--diff-baseline D] [--flip-mul ALGO]
///                               [--checkpoint-dir D] [--resume]
///                               [--shards K] [--shard-index I]
///                               [--shard-pairs N]
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "tnum/TnumEnum.h"
#include "verify/AlgebraicProperties.h"
#include "verify/Campaign.h"
#include "verify/LemmaChecks.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace tnums;

namespace {
/// Wall-clock seconds spent in \p Fn.
template <typename FnT> double timeSeconds(FnT &&Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  std::chrono::duration<double> Elapsed =
      std::chrono::steady_clock::now() - Start;
  return Elapsed.count();
}

/// Mul algorithms whose monotonicity section 6 reports (the paper-adjacent
/// trio; the campaign accepts any).
constexpr MulAlgorithm MonoAlgorithms[] = {
    MulAlgorithm::Kern, MulAlgorithm::BitwiseOpt, MulAlgorithm::Our};

/// Parses a multiplication algorithm by its stable name ("our_mul", ...).
std::optional<MulAlgorithm> parseMulAlgorithmName(const char *Text) {
  for (MulAlgorithm Algorithm : AllMulAlgorithms)
    if (std::strcmp(mulAlgorithmName(Algorithm), Text) == 0)
      return Algorithm;
  return std::nullopt;
}

/// The cell label used by the accounting and diff reports:
/// "mul[our_mul]/w5/soundness", "add/w4/optimality", ...
std::string cellLabel(const CampaignCell &Cell) {
  std::string Op = binaryOpName(Cell.Op);
  if (Cell.Op == BinaryOp::Mul)
    Op += formatString("[%s]", mulAlgorithmName(Cell.Mul));
  return formatString("%s/w%u/%s", Op.c_str(), Cell.Width,
                      campaignPropertyName(Cell.Property));
}
} // namespace

int main(int Argc, char **Argv) {
  unsigned Width = 4;
  unsigned MulWidth = 5;
  uint64_t RandomPairs = 20000;
  unsigned Jobs = ThreadPool::hardwareConcurrency();
  SimdMode Simd = SimdMode::Auto;
  bool CompareSerial = false;
  bool CompareOptimality = false;
  bool NoTiming = false;
  bool Precision = false;
  const char *SimdText = nullptr;
  const char *OptimalityText = nullptr;
  const char *DiffBaselineDir = nullptr;
  const char *FlipMulText = nullptr;
  const char *JsonPath = nullptr;
  CampaignIO IO;
  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    // Widths live in [1, 16]: 3^17 tnum pairs is already out of
    // enumeration reach, and rejecting early beats exploding inside the
    // sweep.
    if (Args.matchUnsigned("--width", 1, 16, Width))
      continue;
    if (Args.matchUnsigned("--mul-width", 1, 16, MulWidth))
      continue;
    if (Args.matchU64("--random-pairs", 0, UINT64_MAX, RandomPairs))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    if (Args.matchString("--simd", SimdText)) // --simd=MODE or --simd MODE
      continue;
    if (Args.matchString("--optimality", OptimalityText))
      continue;
    // Incremental re-verification: report reuse/re-run/verdict deltas
    // against an earlier run's checkpoint store.
    if (Args.matchString("--diff-baseline", DiffBaselineDir))
      continue;
    // Test-only: flip one mul algorithm's content fingerprint without
    // changing its semantics (the CI incremental smoke leg).
    if (Args.matchString("--flip-mul", FlipMulText))
      continue;
    // Machine-readable campaign figures of merit (BENCH_sweep.json).
    if (Args.matchString("--json", JsonPath))
      continue;
    if (Args.matchFlag("--compare-serial")) {
      CompareSerial = true;
      continue;
    }
    // Opt-in so the default campaign spec (and CI's exact cell-count
    // greps over the incremental smoke leg) keeps its historical shape.
    if (Args.matchFlag("--precision")) {
      Precision = true;
      continue;
    }
    if (Args.matchFlag("--compare-optimality")) {
      CompareOptimality = true;
      continue;
    }
    // Suppress wall-clock columns so the report is byte-for-byte
    // deterministic -- how CI diffs a sharded+resumed campaign against
    // the single-invocation run.
    if (Args.matchFlag("--no-timing")) {
      NoTiming = true;
      continue;
    }
    if (matchCampaignArgs(Args, IO))
      continue;
    Args.reject();
  }
  bool BadArgs = Args.failed();
  if (SimdText) {
    if (std::optional<SimdMode> Parsed = parseSimdMode(SimdText)) {
      Simd = *Parsed;
      if (!simdModeSupported(Simd)) {
        // Forced tiers the host cannot execute are a hard error here
        // (the library would silently fall back to portable kernels;
        // a benchmark front end should say so instead).
        std::fprintf(stderr,
                     "error: --simd=%s is not supported on this host; "
                     "supported modes: %s\n",
                     simdModeName(Simd), supportedSimdModeList().c_str());
        return 1;
      }
    } else {
      BadArgs = true;
    }
  }
  bool OptimalityEarlyExit = true;
  if (OptimalityText) {
    if (std::strcmp(OptimalityText, "first") == 0)
      OptimalityEarlyExit = true;
    else if (std::strcmp(OptimalityText, "full") == 0)
      OptimalityEarlyExit = false;
    else
      BadArgs = true;
  }
  std::optional<MulAlgorithm> FlipMul;
  if (FlipMulText) {
    FlipMul = parseMulAlgorithmName(FlipMulText);
    if (!FlipMul)
      BadArgs = true;
  }
  if (Jobs == 0) // Keeps the SweepConfig convention: hardware concurrency.
    Jobs = ThreadPool::hardwareConcurrency();
  if (BadArgs) {
    std::fprintf(
        stderr,
        "usage: %s [--width 1..16] [--mul-width 1..16] [--random-pairs N] "
        "[--jobs 0..1024] [--simd=%s] [--compare-serial] "
        "[--optimality={first,full}] [--compare-optimality] [--no-timing] "
        "[--precision] [--json FILE] [--diff-baseline D] [--flip-mul ALGO] "
        "%s\n",
        Argv[0], SimdModeUsage, CampaignArgsUsage);
    return 1;
  }
  SweepConfig Sweep;
  Sweep.NumThreads = Jobs;
  Sweep.Simd = Simd;
  std::printf("member-scan path: --simd=%s resolves to %s on this host\n\n",
              simdModeName(Simd), simdPathDescription(Simd).c_str());

  //===--------------------------------------------------------------------===//
  // Compile the exhaustive sections into one campaign spec.
  //===--------------------------------------------------------------------===//
  CampaignSpec Spec;
  Spec.OptimalityEarlyExit = OptimalityEarlyExit;

  // Section 1: soundness + optimality of every operator at --width.
  struct OpCells {
    BinaryOp Op;
    bool Skipped;
    size_t Soundness; ///< Cell indices into Spec.Cells.
    size_t Optimality;
  };
  std::vector<OpCells> Sec1;
  for (BinaryOp Op : AllBinaryOps) {
    if (isShiftOp(Op) && (Width & (Width - 1)) != 0) {
      Sec1.push_back({Op, true, 0, 0});
      continue;
    }
    size_t Soundness = Spec.Cells.size();
    Spec.Cells.push_back(
        {Op, MulAlgorithm::Our, Width, CampaignProperty::Soundness});
    size_t Optimality = Spec.Cells.size();
    Spec.Cells.push_back(
        {Op, MulAlgorithm::Our, Width, CampaignProperty::Optimality});
    Sec1.push_back({Op, false, Soundness, Optimality});
  }

  // Section 2: soundness of every mul algorithm at --mul-width.
  std::vector<size_t> Sec2;
  for (MulAlgorithm Algorithm : AllMulAlgorithms) {
    Sec2.push_back(Spec.Cells.size());
    Spec.Cells.push_back({BinaryOp::Mul, Algorithm, MulWidth,
                          CampaignProperty::Soundness});
  }

  // Section 6: monotonicity of the mul trio at widths 4-5.
  struct MonoCell {
    MulAlgorithm Algorithm;
    unsigned Width;
    size_t Cell;
  };
  std::vector<MonoCell> Sec6;
  for (MulAlgorithm Algorithm : MonoAlgorithms)
    for (unsigned W = 4; W <= 5; ++W) {
      Sec6.push_back({Algorithm, W, Spec.Cells.size()});
      Spec.Cells.push_back(
          {BinaryOp::Mul, Algorithm, W, CampaignProperty::Monotonicity});
    }

  // Section 7 (opt-in --precision): optimality-gap measurement of every
  // operator at --width plus every mul algorithm at --mul-width. These
  // are measurements, not verdicts: they never feed the exit code.
  std::vector<size_t> Sec7;
  if (Precision) {
    for (BinaryOp Op : AllBinaryOps) {
      if (isShiftOp(Op) && (Width & (Width - 1)) != 0)
        continue;
      if (Op == BinaryOp::Mul)
        continue; // Measured per-algorithm at --mul-width below.
      Sec7.push_back(Spec.Cells.size());
      Spec.Cells.push_back(
          {Op, MulAlgorithm::Our, Width, CampaignProperty::Precision});
    }
    for (MulAlgorithm Algorithm : AllMulAlgorithms) {
      Sec7.push_back(Spec.Cells.size());
      Spec.Cells.push_back({BinaryOp::Mul, Algorithm, MulWidth,
                            CampaignProperty::Precision});
    }
  }

  if (FlipMul) {
    // Same semantics, different registered fingerprint: resuming against
    // a pre-flip checkpoint invalidates exactly this algorithm's
    // soundness (and, with --precision, precision) cells, and the merged
    // report stays byte-identical.
    MulAlgorithm Algorithm = *FlipMul;
    Spec.OperatorOverride = [Algorithm](const Tnum &P, const Tnum &Q,
                                        unsigned Width) {
      return applyAbstractBinary(BinaryOp::Mul, P, Q, Width, Algorithm);
    };
    Spec.OverrideTag =
        formatString("fingerprint-flip %s", mulAlgorithmName(Algorithm));
    Spec.OverrideOp = BinaryOp::Mul;
    Spec.OverrideMul = Algorithm;
  }

  CampaignResult Campaign = runCampaign(Spec, IO, Sweep);
  if (!Campaign.ok()) {
    std::fprintf(stderr, "error: %s\n", Campaign.Error.c_str());
    return 1;
  }
  printCampaignStatus(Campaign.ShardsTotal, Campaign.ShardsRun,
                      Campaign.ShardsResumed, Campaign.ShardsSkipped,
                      Campaign.ShardsInvalidated, IO.CheckpointDir);
  if (!IO.CheckpointDir.empty()) {
    // Executed-cell accounting: which cells this invocation computed vs
    // served from the store (the incremental-reuse evidence). Prefixed
    // "campaign" like the banner, so CI's byte-for-byte report diffs can
    // filter every line that legitimately varies across resumes.
    for (const CampaignCellResult &Cell : Campaign.Cells)
      std::printf("campaign cell %s: %llu run, %llu resumed, "
                  "%llu invalidated\n",
                  cellLabel(Cell.Cell).c_str(),
                  static_cast<unsigned long long>(Cell.ShardsRun),
                  static_cast<unsigned long long>(Cell.ShardsResumed),
                  static_cast<unsigned long long>(Cell.ShardsInvalidated));
  }
  if (!Campaign.Complete) {
    uint64_t Merged = 0, Needed = 0;
    for (const CampaignCellResult &Cell : Campaign.Cells) {
      Merged += Cell.ShardsMerged;
      // A complete cell needed exactly what it merged (early exit may
      // leave the rest of its manifest dead forever); an incomplete cell
      // may still terminate early, so its full manifest is an upper
      // bound, not a promise.
      Needed += Cell.Complete ? Cell.ShardsMerged : Cell.ShardsTotal;
    }
    std::printf("campaign PARTIAL: %llu/%llu shards merged (upper bound; "
                "early exits can retire cells sooner); run the remaining "
                "--shard-index invocations (or --resume) against the same "
                "--checkpoint-dir to complete and print the merged "
                "report\n",
                static_cast<unsigned long long>(Merged),
                static_cast<unsigned long long>(Needed));
    return 0;
  }
  if (DiffBaselineDir) {
    CampaignDiffResult Diff =
        diffCampaignBaseline(Spec, IO, DiffBaselineDir, Campaign);
    if (!Diff.ok()) {
      std::fprintf(stderr, "error: --diff-baseline: %s\n",
                   Diff.Error.c_str());
      return 1;
    }
    std::printf("\nincremental diff vs baseline %s: %llu cells reused, "
                "%llu re-run, %llu verdicts changed\n",
                DiffBaselineDir,
                static_cast<unsigned long long>(Diff.CellsReused),
                static_cast<unsigned long long>(Diff.CellsRerun),
                static_cast<unsigned long long>(Diff.CellsVerdictChanged));
    TextTable DiffTable({"cell", "incremental resume", "verdict", "report"});
    for (const CampaignCellDiff &Cell : Diff.Cells) {
      const char *Status = !Cell.InBaseline ? "absent"
                           : Cell.Reused    ? "reused"
                                            : "re-run";
      bool Comparable = Cell.BaselineComplete;
      DiffTable.addRowOf(cellLabel(Cell.Cell), Status,
                         !Comparable           ? "-"
                         : Cell.VerdictChanged ? "CHANGED"
                                               : "unchanged",
                         !Comparable          ? "-"
                         : Cell.ReportChanged ? "differs"
                                              : "identical");
    }
    DiffTable.printAligned(stdout);
    // Precision drift is a report change, not a verdict change: name the
    // cells whose measured gap moved (CI greps "0 precision deltas" on an
    // identical rerun).
    if (Precision)
      printPrecisionDeltas(Spec, Diff, Campaign, stdout);
  }
  std::printf("\n");

  bool AllHold = true;

  //===--------------------------------------------------------------------===//
  std::printf("[1] exhaustive soundness + optimality of every operator at "
              "width %u (%u jobs, optimality=%s)\n\n",
              Width, Sweep.NumThreads, OptimalityEarlyExit ? "first" : "full");
  TextTable OpTable({"op", "soundness", "optimality", "concrete evals",
                     "opt seconds"});
  for (const OpCells &Row : Sec1) {
    if (Row.Skipped) {
      OpTable.addRowOf(binaryOpName(Row.Op), "skipped (width not 2^k)", "-",
                       "-", "-");
      continue;
    }
    const CampaignCellResult &Sound = Campaign.Cells[Row.Soundness];
    const CampaignCellResult &Precise = Campaign.Cells[Row.Optimality];
    AllHold &= Sound.holds();
    OpTable.addRowOf(binaryOpName(Row.Op),
                     Sound.holds() ? "sound" : "UNSOUND",
                     Precise.holds() ? "optimal" : "not optimal",
                     Sound.Soundness.ConcreteChecked,
                     NoTiming ? std::string("-")
                              : formatString("%.3f", Precise.Seconds));
  }
  OpTable.printAligned(stdout);
  std::printf("paper: all ops sound; add/sub/bitwise also optimal; div/mod "
              "conservatively imprecise.\n\n");

  if (CompareOptimality) {
    // A/B the memoized-concretization restructuring: rerun only the
    // optimality cells with the per-pair gamma(P) re-enumeration the
    // refactor replaced, and diff the reports (they must be identical).
    CampaignSpec OptSpec;
    OptSpec.OptimalityEarlyExit = OptimalityEarlyExit;
    std::vector<size_t> Twins; ///< Memoized twin cells in the main run.
    for (const OpCells &Row : Sec1)
      if (!Row.Skipped) {
        OptSpec.Cells.push_back(Spec.Cells[Row.Optimality]);
        Twins.push_back(Row.Optimality);
      }
    SweepConfig Legacy = Sweep;
    Legacy.MemoizeOptimality = false;
    CampaignResult LegacyRun = runCampaign(OptSpec, CampaignIO(), Legacy);
    if (!LegacyRun.ok()) {
      std::fprintf(stderr, "error: %s\n", LegacyRun.Error.c_str());
      return 1;
    }
    TextTable CmpTable({"op", "memoized s", "legacy s", "speedup",
                        "reports"});
    bool Identical = true;
    for (size_t I = 0; I != OptSpec.Cells.size(); ++I) {
      size_t Twin = Twins[I];
      const OptimalityReport &A = Campaign.Cells[Twin].Optimality;
      const OptimalityReport &B = LegacyRun.Cells[I].Optimality;
      bool Same = A.PairsChecked == B.PairsChecked &&
                  A.OptimalPairs == B.OptimalPairs &&
                  A.isOptimalEverywhere() == B.isOptimalEverywhere();
      Identical &= Same;
      double MemoSeconds = Campaign.Cells[Twin].Seconds;
      double LegacySeconds = LegacyRun.Cells[I].Seconds;
      CmpTable.addRowOf(binaryOpName(OptSpec.Cells[I].Op),
                        formatString("%.3f", MemoSeconds),
                        formatString("%.3f", LegacySeconds),
                        formatString("%.2fx", MemoSeconds > 0
                                                  ? LegacySeconds / MemoSeconds
                                                  : 0.0),
                        Same ? "identical" : "DIVERGED");
    }
    std::printf("memoized vs legacy optimality scan (gamma(P) hoisted "
                "across the Q axis vs re-enumerated per pair):\n");
    CmpTable.printAligned(stdout);
    std::printf("\n");
    AllHold &= Identical;

    // A/B the fused evaluate-and-reduce alpha loops: rerun the optimality
    // cells with SweepConfig::FuseOptimality off (two-pass batch +
    // ReduceAndOr, everything else identical) and diff the reports.
    SweepConfig Unfused = Sweep;
    Unfused.FuseOptimality = false;
    CampaignResult UnfusedRun = runCampaign(OptSpec, CampaignIO(), Unfused);
    if (!UnfusedRun.ok()) {
      std::fprintf(stderr, "error: %s\n", UnfusedRun.Error.c_str());
      return 1;
    }
    TextTable FuseTable({"op", "fused s", "unfused s", "speedup", "reports"});
    bool FusedIdentical = true;
    for (size_t I = 0; I != OptSpec.Cells.size(); ++I) {
      size_t Twin = Twins[I];
      const OptimalityReport &A = Campaign.Cells[Twin].Optimality;
      const OptimalityReport &B = UnfusedRun.Cells[I].Optimality;
      bool Same = A.PairsChecked == B.PairsChecked &&
                  A.OptimalPairs == B.OptimalPairs &&
                  A.isOptimalEverywhere() == B.isOptimalEverywhere();
      FusedIdentical &= Same;
      double FusedSeconds = Campaign.Cells[Twin].Seconds;
      double UnfusedSeconds = UnfusedRun.Cells[I].Seconds;
      FuseTable.addRowOf(binaryOpName(OptSpec.Cells[I].Op),
                         formatString("%.3f", FusedSeconds),
                         formatString("%.3f", UnfusedSeconds),
                         formatString("%.2fx", FusedSeconds > 0
                                                   ? UnfusedSeconds /
                                                         FusedSeconds
                                                   : 0.0),
                         Same ? "identical" : "DIVERGED");
    }
    std::printf("fused vs unfused optimality alpha-reduce (evaluation and "
                "AND/OR accumulation in one register loop vs the two-pass "
                "batch; only add/sub/mul/and/or/xor have fused loops):\n");
    FuseTable.printAligned(stdout);
    std::printf("\n");
    AllHold &= FusedIdentical;
  }

  //===--------------------------------------------------------------------===//
  std::printf("[2] exhaustive soundness of each multiplication algorithm at "
              "width %u (%u jobs)\n\n",
              MulWidth, Sweep.NumThreads);
  TextTable MulTable({"algorithm", "soundness", "pairs", "concrete evals",
                      "seconds", "Mevals/s"});
  double ParallelSeconds = 0;
  uint64_t CampaignEvals = 0;
  for (size_t Cell : Sec2) {
    const CampaignCellResult &Row = Campaign.Cells[Cell];
    AllHold &= Row.holds();
    ParallelSeconds += Row.Seconds;
    CampaignEvals += Row.Soundness.ConcreteChecked;
    MulTable.addRowOf(mulAlgorithmName(Row.Cell.Mul),
                      Row.holds() ? "sound" : "UNSOUND",
                      Row.Soundness.PairsChecked,
                      Row.Soundness.ConcreteChecked,
                      NoTiming ? std::string("-")
                               : formatString("%.3f", Row.Seconds),
                      NoTiming ? std::string("-")
                               : formatString(
                                     "%.1f",
                                     Row.Seconds > 0
                                         ? Row.Soundness.ConcreteChecked /
                                               Row.Seconds / 1e6
                                         : 0.0));
  }
  MulTable.printAligned(stdout);
  // ConcreteChecked/sec over the whole campaign: the A/B figure of merit
  // for --simd on/off (identical eval counts, different wall-clock).
  if (!NoTiming)
    std::printf("campaign throughput: %.1f Mevals/s "
                "(%llu concrete evals in %.3f s; --simd=%s, %u jobs)\n",
                ParallelSeconds > 0 ? CampaignEvals / ParallelSeconds / 1e6
                                    : 0.0,
                static_cast<unsigned long long>(CampaignEvals),
                ParallelSeconds, simdModeName(Simd), Sweep.NumThreads);
  if (CompareSerial) {
    // The reference is the scalar serial checker (SimdMode::Off) whatever
    // --simd selected, so the speedup always reads "fast path vs the
    // pre-batching baseline".
    double SerialSeconds = timeSeconds([&] {
      for (size_t Cell : Sec2)
        AllHold &= checkSoundnessExhaustive(BinaryOp::Mul, MulWidth,
                                            Campaign.Cells[Cell].Cell.Mul,
                                            SimdMode::Off)
                       .holds();
    });
    std::printf("scalar serial %.3f s vs parallel %.3f s with %u jobs "
                "(--simd=%s): speedup %.2fx\n",
                SerialSeconds, ParallelSeconds, Sweep.NumThreads,
                simdModeName(Simd),
                ParallelSeconds > 0 ? SerialSeconds / ParallelSeconds : 0.0);
  }
  std::printf("paper: kern_mul SMT-verified up to n = 8 (pass --mul-width 8 "
              "to rerun that exact instance; --mul-width 10 stays practical "
              "on a multicore host via --jobs).\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[3] randomized 64-bit refutation campaign (%llu pairs/op)\n\n",
              static_cast<unsigned long long>(RandomPairs));
  TextTable RandTable({"op", "verdict", "concrete evals"});
  Xoshiro256 Rng(2022);
  for (BinaryOp Op : AllBinaryOps) {
    SoundnessReport Report =
        checkSoundnessRandom(Op, 64, RandomPairs, /*SamplesPerPair=*/8, Rng);
    AllHold &= Report.holds();
    RandTable.addRowOf(binaryOpName(Op),
                       Report.holds() ? "no counterexample" : "UNSOUND",
                       Report.ConcreteChecked);
  }
  RandTable.printAligned(stdout);
  std::printf("paper: SMT proves add/sub/bitwise at full 64-bit width in "
              "seconds; this randomized campaign is the offline "
              "falsification analogue.\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[4] §III-A observations\n\n");
  if (std::optional<AssociativityWitness> W =
          findAddNonAssociativityWitness(2)) {
    std::printf("  (1) tnum addition is NOT associative, e.g. P=%s Q=%s "
                "R=%s: (P+Q)+R = %s but P+(Q+R) = %s\n",
                W->P.toString(2).c_str(), W->Q.toString(2).c_str(),
                W->R.toString(2).c_str(), W->LeftFirst.toString(2).c_str(),
                W->RightFirst.toString(2).c_str());
  }
  if (std::optional<InverseWitness> W = findAddSubNonInverseWitness(2)) {
    std::printf("  (2) add/sub are NOT inverses, e.g. P=%s Q=%s: "
                "(P+Q)-Q = %s != P\n",
                W->P.toString(2).c_str(), W->Q.toString(2).c_str(),
                W->RoundTrip.toString(2).c_str());
  }
  for (unsigned SearchWidth = 2; SearchWidth <= 6; ++SearchWidth) {
    if (std::optional<CommutativityWitness> W =
            findMulNonCommutativityWitness(MulAlgorithm::Kern, SearchWidth)) {
      std::printf("  (3) kern_mul is NOT commutative (smallest witness at "
                  "width %u): P=%s Q=%s: P*Q = %s but Q*P = %s\n",
                  SearchWidth, W->P.toString(SearchWidth).c_str(),
                  W->Q.toString(SearchWidth).c_str(),
                  W->Forward.toString(SearchWidth).c_str(),
                  W->Backward.toString(SearchWidth).c_str());
      break;
    }
  }
  std::printf("\n");

  //===--------------------------------------------------------------------===//
  std::printf("[5] proof-lemma sweeps (exhaustive, width %u)\n\n", Width);
  TextTable LemmaTable({"lemma", "verdict"});
  for (const char *const *Name = AllLemmaNames; *Name; ++Name) {
    std::optional<std::string> Failure = sweepLemmaExhaustive(*Name, Width);
    AllHold &= !Failure.has_value();
    LemmaTable.addRowOf(*Name,
                        Failure ? Failure->c_str() : "holds everywhere");
  }
  LemmaTable.printAligned(stdout);

  //===--------------------------------------------------------------------===//
  std::printf("\n[6] monotonicity of the multiplication algorithms "
              "(extension beyond the paper)\n\n");
  TextTable MonoTable({"algorithm", "width", "verdict"});
  for (const MonoCell &Row : Sec6) {
    const CampaignCellResult &Cell = Campaign.Cells[Row.Cell];
    MonoTable.addRowOf(mulAlgorithmName(Row.Algorithm), Row.Width,
                       Cell.holds()
                           ? std::string("monotone")
                           : "NON-MONOTONE: " +
                                 Cell.Monotonicity.Failure->toString(
                                     Row.Width));
  }
  MonoTable.printAligned(stdout);
  std::printf("finding: the strength-reduced accumulators (P.v * Q.v) make "
              "kern_mul non-monotone at width 5 and our_mul at width 6; "
              "bitwise_mul_opt, a plain composition of monotone operators, "
              "stays monotone. Soundness is unaffected.\n");

  //===--------------------------------------------------------------------===//
  if (Precision) {
    std::printf("\n[7] precision atlas: measured optimality gap per operator "
                "(ops at width %u, mul algorithms at width %u)\n\n",
                Width, MulWidth);
    // Measurement, not verdict: a nonzero gap is the paper's documented
    // imprecision (div/mod/mul are conservatively imprecise), so this
    // table never flips AllHold or the exit code.
    TextTable PrecTable({"op", "width", "pairs", "optimal %", "mean gap",
                         "max gap", "worst pair", "seconds"});
    for (size_t Cell : Sec7) {
      const CampaignCellResult &Row = Campaign.Cells[Cell];
      const PrecisionReport &R = Row.Precision;
      std::string Op = binaryOpName(Row.Cell.Op);
      if (Row.Cell.Op == BinaryOp::Mul)
        Op += formatString("[%s]", mulAlgorithmName(Row.Cell.Mul));
      PrecTable.addRowOf(
          Op, Row.Cell.Width, R.PairsChecked,
          formatString("%.3f%%",
                       R.PairsChecked
                           ? 100.0 * static_cast<double>(R.optimalPairs()) /
                                 static_cast<double>(R.PairsChecked)
                           : 0.0),
          formatString("%.4f", R.meanGap()), R.MaxGap,
          R.Worst ? R.Worst->toString(Row.Cell.Width) : std::string("-"),
          NoTiming ? std::string("-")
                   : formatString("%.3f", Row.Seconds));
    }
    PrecTable.printAligned(stdout);
    std::printf("paper: add/sub/bitwise are optimal (gap 0 everywhere); "
                "div/mod and every mul algorithm trade precision for "
                "speed -- the gap histogram quantifies by how much.\n");
  }

  //===--------------------------------------------------------------------===//
  // BENCH_sweep.json: the campaign figures of merit for the CI perf gate.
  // Identity fields (width/mul_width/jobs/simd/algorithm totals) are exact
  // across machines; campaign_mevals_per_s is the machine-dependent perf
  // number ci/compare_bench.py gate_sweep floors with a generous ratio.
  //===--------------------------------------------------------------------===//
  if (JsonPath) {
    std::FILE *Json = std::fopen(JsonPath, "w");
    if (!Json) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(Json,
                 "{\n"
                 "  \"bench\": \"sweep_campaign\",\n"
                 "  \"build_info\": %s,\n"
                 "  \"width\": %u,\n"
                 "  \"mul_width\": %u,\n"
                 "  \"jobs\": %u,\n"
                 "  \"simd\": \"%s\",\n"
                 "  \"simd_kernels\": \"%s\",\n"
                 "  \"all_hold\": %s,\n"
                 "  \"campaign_evals\": %llu,\n"
                 "  \"campaign_seconds\": %.6f,\n"
                 "  \"campaign_mevals_per_s\": %.3f,\n"
                 "  \"algorithms\": [\n",
                 buildInfoJson().c_str(), Width, MulWidth, Sweep.NumThreads,
                 simdModeName(Simd), selectSimdKernels(Simd).Name,
                 AllHold ? "true" : "false",
                 static_cast<unsigned long long>(CampaignEvals),
                 ParallelSeconds,
                 ParallelSeconds > 0 ? CampaignEvals / ParallelSeconds / 1e6
                                     : 0.0);
    for (size_t I = 0; I != Sec2.size(); ++I) {
      const CampaignCellResult &Row = Campaign.Cells[Sec2[I]];
      std::fprintf(
          Json,
          "    {\"name\": \"%s\", \"pairs\": %llu, \"evals\": %llu, "
          "\"seconds\": %.6f}%s\n",
          mulAlgorithmName(Row.Cell.Mul),
          static_cast<unsigned long long>(Row.Soundness.PairsChecked),
          static_cast<unsigned long long>(Row.Soundness.ConcreteChecked),
          Row.Seconds, I + 1 == Sec2.size() ? "" : ",");
    }
    std::fprintf(Json, "  ]\n}\n");
    std::fclose(Json);
    std::printf("\nwrote %s\n", JsonPath);
  }

  std::printf("\noverall: %s\n",
              AllHold ? "ALL CHECKS PASSED" : "SOME CHECKS FAILED");
  return AllHold ? 0 : 1;
}
