//===- bench/soundness_verification.cpp - Reproduce §III-A results --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §III-A bounded verification campaign, re-run on the offline
/// substitute engine (exhaustive enumeration = the same bounded property
/// the SMT queries decide, plus randomized 64-bit refutation):
///
///   1. soundness of every tnum operator, exhaustively per width;
///   2. soundness of every multiplication algorithm (the paper verified
///      kern_mul only up to n = 8; --mul-width 8 reproduces that instance);
///   3. optimality of add/sub/bitwise ops, non-optimality of the muls;
///   4. the three §III-A observations with concrete witnesses;
///   5. the §III-B/§VII proof lemmas swept exhaustively.
///
/// Usage: soundness_verification [--width N] [--mul-width N]
///                               [--random-pairs N]
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "verify/AlgebraicProperties.h"
#include "verify/LemmaChecks.h"
#include "verify/MonotonicityChecker.h"
#include "verify/OptimalityChecker.h"
#include "verify/SoundnessChecker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tnums;

int main(int Argc, char **Argv) {
  unsigned Width = 4;
  unsigned MulWidth = 5;
  uint64_t RandomPairs = 20000;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--width") == 0 && I + 1 < Argc)
      Width = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--mul-width") == 0 && I + 1 < Argc)
      MulWidth = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--random-pairs") == 0 && I + 1 < Argc)
      RandomPairs = std::strtoull(Argv[++I], nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: %s [--width N] [--mul-width N] "
                   "[--random-pairs N]\n",
                   Argv[0]);
      return 1;
    }
  }

  bool AllHold = true;

  //===--------------------------------------------------------------------===//
  std::printf("[1] exhaustive soundness + optimality of every operator at "
              "width %u\n\n",
              Width);
  TextTable OpTable({"op", "soundness", "optimality", "concrete evals"});
  for (BinaryOp Op : AllBinaryOps) {
    if (isShiftOp(Op) && (Width & (Width - 1)) != 0) {
      OpTable.addRowOf(binaryOpName(Op), "skipped (width not 2^k)", "-", "-");
      continue;
    }
    SoundnessReport Sound = checkSoundnessExhaustive(Op, Width);
    OptimalityReport Precise = checkOptimalityExhaustive(Op, Width);
    AllHold &= Sound.holds();
    OpTable.addRowOf(binaryOpName(Op), Sound.holds() ? "sound" : "UNSOUND",
                     Precise.isOptimalEverywhere() ? "optimal"
                                                   : "not optimal",
                     Sound.ConcreteChecked);
  }
  OpTable.printAligned(stdout);
  std::printf("paper: all ops sound; add/sub/bitwise also optimal; div/mod "
              "conservatively imprecise.\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[2] exhaustive soundness of each multiplication algorithm at "
              "width %u\n\n",
              MulWidth);
  TextTable MulTable({"algorithm", "soundness", "pairs", "concrete evals"});
  for (MulAlgorithm Alg :
       {MulAlgorithm::Kern, MulAlgorithm::BitwiseNaive,
        MulAlgorithm::BitwiseOpt, MulAlgorithm::OurSimplified,
        MulAlgorithm::Our, MulAlgorithm::OurFullLoop}) {
    SoundnessReport Report =
        checkSoundnessExhaustive(BinaryOp::Mul, MulWidth, Alg);
    AllHold &= Report.holds();
    MulTable.addRowOf(mulAlgorithmName(Alg),
                      Report.holds() ? "sound" : "UNSOUND",
                      Report.PairsChecked, Report.ConcreteChecked);
  }
  MulTable.printAligned(stdout);
  std::printf("paper: kern_mul SMT-verified up to n = 8 (pass --mul-width 8 "
              "to rerun that exact instance; ~10 min single-core).\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[3] randomized 64-bit refutation campaign (%llu pairs/op)\n\n",
              static_cast<unsigned long long>(RandomPairs));
  TextTable RandTable({"op", "verdict", "concrete evals"});
  Xoshiro256 Rng(2022);
  for (BinaryOp Op : AllBinaryOps) {
    SoundnessReport Report =
        checkSoundnessRandom(Op, 64, RandomPairs, /*SamplesPerPair=*/8, Rng);
    AllHold &= Report.holds();
    RandTable.addRowOf(binaryOpName(Op),
                       Report.holds() ? "no counterexample" : "UNSOUND",
                       Report.ConcreteChecked);
  }
  RandTable.printAligned(stdout);
  std::printf("paper: SMT proves add/sub/bitwise at full 64-bit width in "
              "seconds; this randomized campaign is the offline "
              "falsification analogue.\n\n");

  //===--------------------------------------------------------------------===//
  std::printf("[4] §III-A observations\n\n");
  if (std::optional<AssociativityWitness> W =
          findAddNonAssociativityWitness(2)) {
    std::printf("  (1) tnum addition is NOT associative, e.g. P=%s Q=%s "
                "R=%s: (P+Q)+R = %s but P+(Q+R) = %s\n",
                W->P.toString(2).c_str(), W->Q.toString(2).c_str(),
                W->R.toString(2).c_str(), W->LeftFirst.toString(2).c_str(),
                W->RightFirst.toString(2).c_str());
  }
  if (std::optional<InverseWitness> W = findAddSubNonInverseWitness(2)) {
    std::printf("  (2) add/sub are NOT inverses, e.g. P=%s Q=%s: "
                "(P+Q)-Q = %s != P\n",
                W->P.toString(2).c_str(), W->Q.toString(2).c_str(),
                W->RoundTrip.toString(2).c_str());
  }
  for (unsigned SearchWidth = 2; SearchWidth <= 6; ++SearchWidth) {
    if (std::optional<CommutativityWitness> W =
            findMulNonCommutativityWitness(MulAlgorithm::Kern, SearchWidth)) {
      std::printf("  (3) kern_mul is NOT commutative (smallest witness at "
                  "width %u): P=%s Q=%s: P*Q = %s but Q*P = %s\n",
                  SearchWidth, W->P.toString(SearchWidth).c_str(),
                  W->Q.toString(SearchWidth).c_str(),
                  W->Forward.toString(SearchWidth).c_str(),
                  W->Backward.toString(SearchWidth).c_str());
      break;
    }
  }
  std::printf("\n");

  //===--------------------------------------------------------------------===//
  std::printf("[5] proof-lemma sweeps (exhaustive, width %u)\n\n", Width);
  TextTable LemmaTable({"lemma", "verdict"});
  for (const char *const *Name = AllLemmaNames; *Name; ++Name) {
    std::optional<std::string> Failure = sweepLemmaExhaustive(*Name, Width);
    AllHold &= !Failure.has_value();
    LemmaTable.addRowOf(*Name,
                        Failure ? Failure->c_str() : "holds everywhere");
  }
  LemmaTable.printAligned(stdout);

  //===--------------------------------------------------------------------===//
  std::printf("\n[6] monotonicity of the multiplication algorithms "
              "(extension beyond the paper)\n\n");
  TextTable MonoTable({"algorithm", "width", "verdict"});
  for (MulAlgorithm Alg :
       {MulAlgorithm::Kern, MulAlgorithm::BitwiseOpt, MulAlgorithm::Our}) {
    for (unsigned W = 4; W <= 5; ++W) {
      MonotonicityReport Report =
          checkMonotonicityExhaustive(BinaryOp::Mul, W, Alg);
      MonoTable.addRowOf(mulAlgorithmName(Alg), W,
                         Report.holds()
                             ? std::string("monotone")
                             : "NON-MONOTONE: " + Report.Failure->toString(W));
    }
  }
  MonoTable.printAligned(stdout);
  std::printf("finding: the strength-reduced accumulators (P.v * Q.v) make "
              "kern_mul non-monotone at width 5 and our_mul at width 6; "
              "bitwise_mul_opt, a plain composition of monotone operators, "
              "stays monotone. Soundness is unaffected.\n");

  std::printf("\noverall: %s\n",
              AllHold ? "ALL CHECKS PASSED" : "SOME CHECKS FAILED");
  return AllHold ? 0 : 1;
}
