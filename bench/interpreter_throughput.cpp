//===- bench/interpreter_throughput.cpp - Concrete-executor speed ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput harness for the fuzz oracle's concrete executors: the same
/// seeded program stream and input memories are driven through the legacy
/// per-run Interpreter (construct + switch loop per memory, the pattern
/// the fuzzer used before pre-decoding) and the DecodedProgram executor
/// in both dispatch modes, reporting memories/s per engine and the
/// speedup over legacy.
///
/// Before timing anything, a differential pass runs every (program, run)
/// through all engines and requires bit-identical results -- status,
/// return value, ExitPc/FaultPc, step counts, messages, final register
/// file, init flags, and memory contents. The campaign-wide FNV-1a
/// digest of those results is machine-independent and exact, so CI gates
/// it against the committed baseline while holding throughput only to a
/// generous floor (ci/compare_bench.py, gate "interpreter_throughput").
///
/// Timing discipline for noisy machines: each engine's full pass is
/// repeated --reps times and the fastest pass is reported (min-of-K
/// rejects scheduler interference, which only ever slows a run down).
/// The legacy engine reproduces the historical fuzz-oracle pattern
/// exactly, including its unconditional per-run staging copy of the
/// input memory (the pre-decode harness had no store scan). The decoded
/// engines additionally skip the staging copy for store-free programs,
/// which cannot modify the input memory -- a capability the pre-decoded
/// harness makes practical and DifferentialFuzz now uses.
///
/// Usage: interpreter_throughput [--programs N] [--runs N] [--seed S]
///                               [--profile P] [--mem N] [--steps N]
///                               [--reps N] [--json FILE] [--metrics]
///
/// --metrics installs the process metrics recorder (support/Metrics.h) --
/// deliberately AFTER the timed passes, right before the JSON dump, so
/// the decode counters it embeds come from one extra untimed decode pass
/// and the timed numbers stay recorder-free.
///
//===----------------------------------------------------------------------===//

#include "bpf/Decoded.h"
#include "bpf/Interpreter.h"
#include "service/ProgramGen.h"
#include "support/ArgParse.h"
#include "support/Checkpoint.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <utility>
#include <string>
#include <vector>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

/// The per-run input memory, derived exactly like DifferentialFuzz's so a
/// bench divergence is replayable through the fuzzer.
std::vector<uint8_t> runMemory(uint64_t Seed, size_t Index, unsigned Run,
                               uint64_t MemSize) {
  Xoshiro256 MemRng(Seed ^ (0x9E3779B97F4A7C15ull * (Index + 1) + Run));
  std::vector<uint8_t> Mem(MemSize);
  for (uint8_t &Byte : Mem)
    Byte = static_cast<uint8_t>(MemRng.next());
  return Mem;
}

/// Digests everything the determinism contract pins about one run.
void mixResult(Fnv1a &Hash, const ExecResult &R,
               const std::array<uint64_t, NumRegs> &Regs,
               const std::array<bool, NumRegs> &Inited,
               const std::vector<uint8_t> &Mem) {
  Hash.mixU64(static_cast<uint64_t>(R.St));
  Hash.mixU64(R.ReturnValue);
  Hash.mixU64(R.ExitPc);
  Hash.mixU64(R.FaultPc);
  Hash.mixU64(R.Steps);
  Hash.mixString(R.Message);
  for (unsigned Reg = 0; Reg != NumRegs; ++Reg) {
    Hash.mixU64(Regs[Reg]);
    Hash.mixByte(Inited[Reg]);
  }
  for (uint8_t Byte : Mem)
    Hash.mixByte(Byte);
}

struct EngineTiming {
  const char *Name;
  double Seconds = 0;
  uint64_t Checksum = 0; ///< Cheap accumulator; must agree across engines.
};

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Programs = 256;
  uint64_t Runs = 64;
  uint64_t Seed = 2022;
  uint64_t MemSize = 32;
  uint64_t StepLimit = 1 << 20;
  uint64_t Reps = 3;
  const char *ProfileText = "loops";
  const char *JsonPath = nullptr;
  bool UseMetrics = false;

  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchU64("--programs", 1, uint64_t(1) << 24, Programs))
      continue;
    if (Args.matchU64("--runs", 1, uint64_t(1) << 20, Runs))
      continue;
    if (Args.matchU64("--seed", 0, UINT64_MAX, Seed))
      continue;
    if (Args.matchU64("--mem", 16, uint64_t(1) << 20, MemSize))
      continue;
    if (Args.matchU64("--steps", 1, uint64_t(1) << 32, StepLimit))
      continue;
    if (Args.matchU64("--reps", 1, 64, Reps))
      continue;
    if (Args.matchString("--profile", ProfileText))
      continue;
    if (Args.matchString("--json", JsonPath))
      continue;
    if (Args.matchFlag("--metrics")) {
      UseMetrics = true;
      continue;
    }
    Args.reject();
  }
  std::optional<GenProfile> Profile =
      Args.failed() ? std::nullopt : parseGenProfile(ProfileText);
  if (!Profile) {
    std::fprintf(stderr,
                 "usage: %s [--programs N] [--runs N] [--seed S] "
                 "[--profile P] [--mem N] [--steps N] [--reps N] "
                 "[--json FILE] [--metrics]\n",
                 Argv[0]);
    return 1;
  }

  //===--------------------------------------------------------------------===//
  // The workload: a seeded program stream (every generated program runs,
  // accepted or not -- the executors must agree on traps too) and
  // pre-generated pristine input memories shared by all engines.
  //===--------------------------------------------------------------------===//
  GenOptions Gen;
  Gen.Profile = *Profile;
  Gen.MemSize = MemSize;
  ProgramGen Generator(Seed, Gen);
  std::vector<Program> Stream;
  Stream.reserve(Programs);
  uint64_t TotalInsns = 0;
  for (uint64_t Index = 0; Index != Programs; ++Index) {
    Stream.push_back(Generator.next());
    TotalInsns += Stream.back().size();
  }
  std::vector<std::vector<uint8_t>> Pristine;
  Pristine.reserve(Programs * Runs);
  for (size_t Index = 0; Index != Stream.size(); ++Index)
    for (unsigned Run = 0; Run != Runs; ++Run)
      Pristine.push_back(runMemory(Seed, Index, Run, MemSize));

  std::printf("interpreter throughput: %llu %s-profile programs x %llu "
              "memories (%.1f insns/program, seed %llu, %llu-byte region, "
              "step limit %llu)\n\n",
              static_cast<unsigned long long>(Programs),
              genProfileName(*Profile), static_cast<unsigned long long>(Runs),
              Programs ? static_cast<double>(TotalInsns) / Programs : 0.0,
              static_cast<unsigned long long>(Seed),
              static_cast<unsigned long long>(MemSize),
              static_cast<unsigned long long>(StepLimit));

  //===--------------------------------------------------------------------===//
  // Differential pass (untimed): every engine must produce bit-identical
  // results on every (program, run). The legacy results feed the exact
  // fingerprint CI gates.
  //===--------------------------------------------------------------------===//
  bool Identical = true;
  uint64_t OkRuns = 0, TrapRuns = 0, StepLimitRuns = 0, TotalSteps = 0;
  Fnv1a ResultHash;
  std::vector<uint8_t> WorkA, WorkB;
  for (size_t Index = 0; Index != Stream.size() && Identical; ++Index) {
    const Program &P = Stream[Index];
    std::string DecodeError;
    std::optional<DecodedProgram> Decoded = DecodedProgram::decode(P, DecodeError);
    if (!Decoded) {
      std::fprintf(stderr,
                   "FAIL: generated program %zu failed to decode: %s\n%s\n",
                   Index, DecodeError.c_str(), P.disassemble().c_str());
      return 1;
    }
    for (unsigned Run = 0; Run != Runs && Identical; ++Run) {
      const std::vector<uint8_t> &Mem = Pristine[Index * Runs + Run];
      WorkA = Mem;
      Interpreter Legacy(P, WorkA);
      ExecResult RL = Legacy.run(StepLimit);
      mixResult(ResultHash, RL, Legacy.registers(), Legacy.initialized(),
                WorkA);
      TotalSteps += RL.Steps;
      switch (RL.St) {
      case ExecResult::Status::Ok:
        ++OkRuns;
        break;
      case ExecResult::Status::StepLimit:
        ++StepLimitRuns;
        break;
      default:
        ++TrapRuns;
        break;
      }

      const DispatchMode Modes[] = {DispatchMode::Switch,
                                    DispatchMode::Threaded};
      for (DispatchMode Mode : Modes) {
        if (Mode == DispatchMode::Threaded && !threadedDispatchAvailable())
          continue;
        WorkB = Mem;
        ExecResult RD = Decoded->run(WorkB, StepLimit, Mode);
        bool Same = RL.St == RD.St && RL.ReturnValue == RD.ReturnValue &&
                    RL.ExitPc == RD.ExitPc && RL.FaultPc == RD.FaultPc &&
                    RL.Steps == RD.Steps && RL.Message == RD.Message &&
                    Legacy.registers() == Decoded->registers() &&
                    Legacy.initialized() == Decoded->initialized() &&
                    WorkA == WorkB;
        if (!Same) {
          std::fprintf(stderr,
                       "FAIL: %s dispatch diverged from legacy on program "
                       "%zu run %u\n%s\n",
                       dispatchModeName(Mode), Index, Run,
                       P.disassemble().c_str());
          Identical = false;
          break;
        }
      }
    }
  }
  uint64_t ResultFingerprint = ResultHash.digest();
  uint64_t RunCount = OkRuns + TrapRuns + StepLimitRuns;
  std::printf("differential: %s (%llu ok, %llu trapped, %llu step-limit "
              "runs; %.1f steps/run; result fingerprint %016llx)\n\n",
              Identical ? "all engines bit-identical" : "DIVERGED",
              static_cast<unsigned long long>(OkRuns),
              static_cast<unsigned long long>(TrapRuns),
              static_cast<unsigned long long>(StepLimitRuns),
              RunCount ? static_cast<double>(TotalSteps) / RunCount : 0.0,
              static_cast<unsigned long long>(ResultFingerprint));
  if (!Identical)
    return 1;

  //===--------------------------------------------------------------------===//
  // Timed passes. Legacy pays its historical per-run cost (program copy +
  // construct per memory); the decoded engines decode once per program
  // inside their own timed region. Each engine's pass repeats --reps
  // times and keeps the fastest (min-of-K). The legacy engine stages a
  // copy of every input memory, as the historical oracle loop did; the
  // decoded engines skip the copy for store-free programs, which cannot
  // modify the input. A cheap checksum keeps the loops alive and
  // cross-checks the engines (and reps) once more.
  //===--------------------------------------------------------------------===//
  const uint64_t Memories = Programs * Runs;
  std::vector<EngineTiming> Timings;
  bool RepsStable = true;

  std::vector<uint8_t> HasStore(Stream.size(), 0);
  for (size_t Index = 0; Index != Stream.size(); ++Index)
    for (size_t Pc = 0; Pc != Stream[Index].size(); ++Pc)
      if (Stream[Index].insn(Pc).InsnKind == Insn::Kind::Store) {
        HasStore[Index] = 1;
        break;
      }

  std::vector<uint8_t> Work;
  auto RunLegacy = [&] {
    uint64_t Acc = 0;
    for (size_t Index = 0; Index != Stream.size(); ++Index) {
      const Program &P = Stream[Index];
      for (unsigned Run = 0; Run != Runs; ++Run) {
        // The historical fuzz-oracle pattern, staged copy included: the
        // pre-decode harness had no store scan, so it staged every run.
        Work = Pristine[Index * Runs + Run];
        Interpreter Interp(P, Work);
        ExecResult R = Interp.run(StepLimit);
        Acc ^= R.ReturnValue + 0x9E3779B97F4A7C15ull * R.Steps +
               static_cast<uint64_t>(R.St);
      }
    }
    return Acc;
  };
  auto RunDecoded = [&](DispatchMode Mode) {
    uint64_t Acc = 0;
    for (size_t Index = 0; Index != Stream.size(); ++Index) {
      std::string DecodeError;
      std::optional<DecodedProgram> Decoded =
          DecodedProgram::decode(Stream[Index], DecodeError);
      if (!Decoded)
        return ~uint64_t(0); // Cannot happen: the differential pass ran.
      const bool Stage = HasStore[Index];
      for (unsigned Run = 0; Run != Runs; ++Run) {
        std::vector<uint8_t> &Mem =
            Stage ? (Work = Pristine[Index * Runs + Run], Work)
                  : Pristine[Index * Runs + Run];
        ExecResult R = Decoded->run(Mem, StepLimit, Mode);
        Acc ^= R.ReturnValue + 0x9E3779B97F4A7C15ull * R.Steps +
               static_cast<uint64_t>(R.St);
      }
    }
    return Acc;
  };

  // The engines to time. The reps are interleaved round-robin across
  // engines (rep loop outermost) so every engine samples the same time
  // windows: on machines whose effective clock drifts over seconds, K
  // consecutive reps per engine would let the drift masquerade as an
  // engine difference, while min-of-K over interleaved rounds cancels it.
  std::vector<std::pair<const char *, std::function<uint64_t()>>> Engines;
  Engines.emplace_back("legacy", RunLegacy);
  Engines.emplace_back("decoded-switch",
                       [&] { return RunDecoded(DispatchMode::Switch); });
  if (threadedDispatchAvailable())
    Engines.emplace_back("decoded-threaded",
                         [&] { return RunDecoded(DispatchMode::Threaded); });

  // Each engine runs a burst of two back-to-back passes per round, both
  // timed: the first re-warms the branch predictors after the other
  // engines' passes evicted their targets, the second measures the warm
  // steady state a long fuzzing campaign actually runs in. Min-of-all
  // keeps whichever pass was cleanest.
  Timings.resize(Engines.size());
  for (uint64_t Rep = 0; Rep != Reps; ++Rep) {
    for (size_t E = 0; E != Engines.size(); ++E) {
      EngineTiming &T = Timings[E];
      for (int Burst = 0; Burst != 2; ++Burst) {
        auto Start = std::chrono::steady_clock::now();
        uint64_t Acc = Engines[E].second();
        double Seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
        if (Rep == 0 && Burst == 0) {
          T.Name = Engines[E].first;
          T.Seconds = Seconds;
          T.Checksum = Acc;
        } else {
          T.Seconds = Seconds < T.Seconds ? Seconds : T.Seconds;
          RepsStable &= Acc == T.Checksum;
        }
      }
    }
  }

  bool ChecksumsAgree = RepsStable;
  for (const EngineTiming &T : Timings)
    ChecksumsAgree &= T.Checksum == Timings.front().Checksum;

  const double LegacySeconds = Timings.front().Seconds;
  double BestSpeedup = 1.0;
  TextTable Table({"engine", "seconds", "memories/s", "speedup"});
  for (const EngineTiming &T : Timings) {
    double Speedup = T.Seconds > 0 ? LegacySeconds / T.Seconds : 0.0;
    if (Speedup > BestSpeedup)
      BestSpeedup = Speedup;
    Table.addRowOf(T.Name, formatString("%.3f", T.Seconds),
                   formatString("%.0f", T.Seconds > 0
                                            ? Memories / T.Seconds
                                            : 0.0),
                   formatString("%.2fx", Speedup));
  }
  Table.printAligned(stdout);
  std::printf("\nchecksums: %s across engines and reps (best of %llu); "
              "threaded dispatch %s\n",
              ChecksumsAgree ? "identical" : "DIVERGED",
              static_cast<unsigned long long>(Reps),
              threadedDispatchAvailable() ? "available" : "unavailable");

  //===--------------------------------------------------------------------===//
  // Machine-readable dump for the CI gate (BENCH_interp.json). With
  // --metrics, the recorder goes live only now and one untimed decode
  // pass populates the decode counters for the snapshot.
  //===--------------------------------------------------------------------===//
  if (UseMetrics) {
    enableProcessMetrics();
    for (const Program &P : Stream) {
      std::string DecodeError;
      DecodedProgram::decode(P, DecodeError);
    }
  }
  if (JsonPath) {
    std::FILE *Json = std::fopen(JsonPath, "w");
    if (!Json) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(Json,
                 "{\n"
                 "  \"bench\": \"interpreter_throughput\",\n"
                 "  \"build_info\": %s,\n"
                 "  \"seed\": %llu,\n"
                 "  \"profile\": \"%s\",\n"
                 "  \"programs\": %llu,\n"
                 "  \"runs_per_program\": %llu,\n"
                 "  \"mem_size\": %llu,\n"
                 "  \"step_limit\": %llu,\n"
                 "  \"reps\": %llu,\n"
                 "  \"identical\": %s,\n"
                 "  \"threaded_available\": %s,\n"
                 "  \"ok_runs\": %llu,\n"
                 "  \"trap_runs\": %llu,\n"
                 "  \"step_limit_runs\": %llu,\n"
                 "  \"result_fingerprint\": \"%016llx\",\n"
                 "  \"best_speedup\": %.3f,\n"
                 "  \"engines\": [\n",
                 buildInfoJson().c_str(),
                 static_cast<unsigned long long>(Seed),
                 genProfileName(*Profile),
                 static_cast<unsigned long long>(Programs),
                 static_cast<unsigned long long>(Runs),
                 static_cast<unsigned long long>(MemSize),
                 static_cast<unsigned long long>(StepLimit),
                 static_cast<unsigned long long>(Reps),
                 Identical && ChecksumsAgree ? "true" : "false",
                 threadedDispatchAvailable() ? "true" : "false",
                 static_cast<unsigned long long>(OkRuns),
                 static_cast<unsigned long long>(TrapRuns),
                 static_cast<unsigned long long>(StepLimitRuns),
                 static_cast<unsigned long long>(ResultFingerprint),
                 BestSpeedup);
    for (size_t I = 0; I != Timings.size(); ++I)
      std::fprintf(Json,
                   "    {\"engine\": \"%s\", \"seconds\": %.6f, "
                   "\"memories_per_s\": %.1f, \"speedup\": %.3f}%s\n",
                   Timings[I].Name, Timings[I].Seconds,
                   Timings[I].Seconds > 0 ? Memories / Timings[I].Seconds
                                          : 0.0,
                   Timings[I].Seconds > 0 ? LegacySeconds / Timings[I].Seconds
                                          : 0.0,
                   I + 1 == Timings.size() ? "" : ",");
    if (UseMetrics)
      std::fprintf(Json, "  ],\n  \"metrics\": %s\n}\n",
                   MetricsRegistry::instance().snapshot().toJson().c_str());
    else
      std::fprintf(Json, "  ]\n}\n");
    std::fclose(Json);
    std::printf("\nwrote %s\n", JsonPath);
  }

  return ChecksumsAgree ? 0 : 1;
}
