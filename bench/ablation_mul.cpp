//===- bench/ablation_mul.cpp - Ablation of our_mul's design choices ------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment A1 (DESIGN.md): quantify each design decision the paper
/// credits for our_mul's precision and speed (§III-C, §IV):
///
///   * machine arithmetic     -- bitwise_mul_naive vs bitwise_mul_opt
///   * value/mask decomposition + n+1 additions
///                            -- bitwise_mul_opt / kern_mul vs our_mul
///   * early loop exit        -- our_mul_full_loop vs our_mul
///
/// Reports (a) abstract-addition counts per algorithm (the quantity the
/// paper argues drives both precision and speed), (b) cycle measurements,
/// and (c) an exhaustive precision comparison at a small width.
///
/// `--witness-corpus FILE` replays the worst-case witness pairs emitted by
/// bench/precision_atlas (tnums-witness-corpus v1): sections (a) and (b)
/// then sample the corpus's multiplication entries -- shifted through the
/// 64-bit lane deterministically for variety -- instead of private random
/// pairs, so the ablation measures the exact operand shapes where the
/// algorithms lose the most precision. Without the flag the historical
/// random sampling is unchanged.
///
/// Usage: ablation_mul [--pairs N] [--width N] [--witness-corpus FILE]
///
//===----------------------------------------------------------------------===//

#include "support/CycleTimer.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMul.h"
#include "tnum/TnumOps.h"
#include "verify/SoundnessChecker.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

using namespace tnums;

namespace {

//===----------------------------------------------------------------------===//
// Instrumented re-implementations that count tnum_add invocations. Kept
// local to the bench: the library versions stay unencumbered.
//===----------------------------------------------------------------------===//

uint64_t countAddsKern(Tnum P, Tnum Q) {
  uint64_t Adds = 0;
  auto Hma = [&](Tnum Acc, uint64_t X, uint64_t Y) {
    while (Y) {
      if (Y & 1) {
        Acc = tnumAdd(Acc, Tnum(0, X));
        ++Adds;
      }
      Y >>= 1;
      X <<= 1;
    }
    return Acc;
  };
  Tnum Acc = Hma(Tnum(P.value() * Q.value(), 0), P.mask(),
                 Q.mask() | Q.value());
  Hma(Acc, Q.mask(), P.value());
  return Adds;
}

uint64_t countAddsBitwiseOpt(Tnum P, Tnum Q, unsigned Width) {
  // One tnum_add per partial product, unconditionally.
  (void)P;
  (void)Q;
  return Width;
}

uint64_t countAddsOur(Tnum P, Tnum Q) {
  (void)Q;
  uint64_t Adds = 1; // Final AccV + AccM addition.
  uint64_t V = P.value();
  uint64_t M = P.mask();
  while (V || M) {
    if ((V & 1) || (M & 1))
      ++Adds;
    V >>= 1;
    M >>= 1;
  }
  return Adds;
}

//===----------------------------------------------------------------------===//
// Witness-corpus replay (bench/precision_atlas --witness-corpus output).
//===----------------------------------------------------------------------===//

/// One corpus pair at its atlas width, kept narrow; the sampler widens it.
struct WitnessSeed {
  Tnum P;
  Tnum Q;
  unsigned Width;
};

/// Loads the multiplication entries of a tnums-witness-corpus v1 file.
/// Hard error (nullopt) on a missing file or wrong header; non-mul entries
/// are skipped (div/mod witnesses say nothing about the mul ablation).
std::optional<std::vector<WitnessSeed>> loadWitnessCorpus(const char *Path) {
  std::FILE *File = std::fopen(Path, "r");
  if (!File) {
    std::fprintf(stderr, "error: cannot read %s\n", Path);
    return std::nullopt;
  }
  char Header[64] = {0};
  if (!std::fgets(Header, sizeof(Header), File) ||
      std::strcmp(Header, "tnums-witness-corpus v1\n") != 0) {
    std::fprintf(stderr, "error: %s is not a tnums-witness-corpus v1 file\n",
                 Path);
    std::fclose(File);
    return std::nullopt;
  }
  std::vector<WitnessSeed> Seeds;
  char Op[32], Alg[32];
  unsigned SeedWidth, Gap;
  uint64_t Pv, Pm, Qv, Qm;
  while (std::fscanf(File, "pair %31s %31s %u %" SCNx64 " %" SCNx64
                           " %" SCNx64 " %" SCNx64 " %u\n",
                     Op, Alg, &SeedWidth, &Pv, &Pm, &Qv, &Qm, &Gap) == 8) {
    if (std::strcmp(Op, "mul") != 0 || SeedWidth == 0 || SeedWidth > 63)
      continue;
    Seeds.push_back({Tnum(Pv, Pm), Tnum(Qv, Qm), SeedWidth});
  }
  std::fclose(File);
  if (Seeds.empty())
    std::fprintf(stderr, "warning: %s has no mul witness pairs; sections "
                         "(a)/(b) fall back to random sampling\n",
                 Path);
  return Seeds;
}

/// Pair source for sections (a) and (b): replays the witness corpus when
/// one is loaded (entry i mod N, slid to a rotating bit offset so the
/// 64-bit lane utilization varies while the operand SHAPE -- the thing
/// the witnesses capture -- is preserved; shifting value and mask together
/// keeps the tnum well-formed), otherwise the historical random draw.
class PairSource {
public:
  PairSource(const std::vector<WitnessSeed> &Seeds, uint64_t RngSeed)
      : Seeds(Seeds), Rng(RngSeed) {}

  std::pair<Tnum, Tnum> next() {
    if (Seeds.empty())
      return {randomWellFormedTnum(Rng, 64), randomWellFormedTnum(Rng, 64)};
    const WitnessSeed &S = Seeds[Index % Seeds.size()];
    unsigned Shift = (Index * 7) % (64 - S.Width);
    ++Index;
    return {Tnum(S.P.value() << Shift, S.P.mask() << Shift),
            Tnum(S.Q.value() << Shift, S.Q.mask() << Shift)};
  }

private:
  const std::vector<WitnessSeed> &Seeds;
  Xoshiro256 Rng;
  size_t Index = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Pairs = 200000;
  unsigned Width = 6;
  const char *CorpusPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--pairs") == 0 && I + 1 < Argc)
      Pairs = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--width") == 0 && I + 1 < Argc)
      Width = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--witness-corpus") == 0 && I + 1 < Argc)
      CorpusPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--pairs N] [--width N] [--witness-corpus F]\n",
                   Argv[0]);
      return 1;
    }
  }
  std::vector<WitnessSeed> Seeds;
  if (CorpusPath) {
    std::optional<std::vector<WitnessSeed>> Loaded =
        loadWitnessCorpus(CorpusPath);
    if (!Loaded)
      return 1;
    Seeds = std::move(*Loaded);
    if (!Seeds.empty())
      std::printf("operand source: %zu mul witness pairs from %s (slid "
                  "through the 64-bit lane)\n\n",
                  Seeds.size(), CorpusPath);
  }

  //===--------------------------------------------------------------------===//
  std::printf("[a] abstract additions per multiplication (mean over %llu "
              "random 64-bit pairs)\n\n",
              static_cast<unsigned long long>(Pairs));
  {
    PairSource Source(Seeds, 4242);
    double SumKern = 0;
    double SumBitwise = 0;
    double SumOur = 0;
    for (uint64_t I = 0; I != Pairs; ++I) {
      auto [P, Q] = Source.next();
      SumKern += static_cast<double>(countAddsKern(P, Q));
      SumBitwise += static_cast<double>(countAddsBitwiseOpt(P, Q, 64));
      SumOur += static_cast<double>(countAddsOur(P, Q));
    }
    TextTable Table({"algorithm", "mean tnum_add calls", "paper bound"});
    double N = static_cast<double>(Pairs);
    Table.addRowOf("kern_mul", formatString("%.1f", SumKern / N), "2n");
    Table.addRowOf("bitwise_mul_opt", formatString("%.1f", SumBitwise / N),
                   "n");
    Table.addRowOf("our_mul", formatString("%.1f", SumOur / N), "n + 1");
    Table.printAligned(stdout);
    std::printf("fewer additions -> fewer non-associative precision losses "
                "AND less work (§IV-A discussion).\n\n");
  }

  //===--------------------------------------------------------------------===//
  std::printf("[b] cycle cost of each design step (%llu pairs, min of 10 "
              "trials, unit: %s)\n\n",
              static_cast<unsigned long long>(Pairs), cycleCounterUnit());
  {
    struct Step {
      const char *Name;
      const char *Isolates;
      Tnum (*Fn)(Tnum, Tnum);
      SampleSummary Cycles;
    };
    static Tnum (*const NaiveFn)(Tnum, Tnum) = +[](Tnum P, Tnum Q) {
      return bitwiseMulNaive(P, Q, 64);
    };
    static Tnum (*const OptFn)(Tnum, Tnum) = +[](Tnum P, Tnum Q) {
      return bitwiseMulOpt(P, Q, 64);
    };
    static Tnum (*const FullLoopFn)(Tnum, Tnum) = +[](Tnum P, Tnum Q) {
      return ourMulFullLoop(P, Q, 64);
    };
    std::vector<Step> Steps;
    Steps.push_back({"bitwise_mul_naive", "baseline", NaiveFn, {}});
    Steps.push_back(
        {"bitwise_mul_opt", "machine arithmetic", OptFn, {}});
    Steps.push_back({"kern_mul", "(prior kernel)", &kernMul, {}});
    Steps.push_back({"our_mul_full_loop", "value/mask decomposition",
                     FullLoopFn, {}});
    Steps.push_back({"our_mul", "early loop exit", &ourMul, {}});

    // The naive algorithm is ~10x slower; cap its sample count so the
    // ablation stays quick while the others see the full pair budget.
    PairSource Source(Seeds, 777);
    uint64_t Sink = 0;
    for (uint64_t I = 0; I != Pairs; ++I) {
      auto [P, Q] = Source.next();
      for (Step &S : Steps) {
        if (S.Fn == NaiveFn && I >= Pairs / 10)
          continue;
        S.Cycles.add(minCyclesOverTrials(
            10, [&] { return S.Fn(P, Q).value(); }, Sink));
      }
    }
    (void)Sink;
    TextTable Table({"algorithm", "isolates", "mean", "p50",
                     "speedup vs previous row"});
    double Prev = 0;
    for (Step &S : Steps) {
      double Mean = S.Cycles.mean();
      Table.addRowOf(S.Name, S.Isolates, formatString("%.1f", Mean),
                     formatString("%.0f", S.Cycles.percentile(50)),
                     Prev == 0 ? std::string("-")
                               : formatString("%.2fx", Prev / Mean));
      Prev = Mean;
    }
    Table.printAligned(stdout);
    std::printf("\n");
  }

  //===--------------------------------------------------------------------===//
  std::printf("[c] precision contribution at width %u (exhaustive)\n\n",
              Width);
  {
    std::vector<Tnum> Universe = allWellFormedTnums(Width);
    struct Cell {
      uint64_t OurStrictlyBetter = 0;
      uint64_t BaseStrictlyBetter = 0;
      uint64_t Incomparable = 0;
    };
    Cell VsKern;
    Cell VsBitwise;
    uint64_t Total = 0;
    for (const Tnum &P : Universe) {
      for (const Tnum &Q : Universe) {
        ++Total;
        Tnum ROur = tnumMul(P, Q, MulAlgorithm::Our, Width);
        auto Compare = [&](MulAlgorithm Alg, Cell &C) {
          Tnum RBase = tnumMul(P, Q, Alg, Width);
          if (RBase == ROur)
            return;
          if (!RBase.isComparableTo(ROur))
            ++C.Incomparable;
          else if (ROur.isSubsetOf(RBase))
            ++C.OurStrictlyBetter;
          else
            ++C.BaseStrictlyBetter;
        };
        Compare(MulAlgorithm::Kern, VsKern);
        Compare(MulAlgorithm::BitwiseOpt, VsBitwise);
      }
    }
    TextTable Table({"baseline", "our strictly better", "baseline better",
                     "incomparable", "total pairs"});
    Table.addRowOf("kern_mul", VsKern.OurStrictlyBetter,
                   VsKern.BaseStrictlyBetter, VsKern.Incomparable, Total);
    Table.addRowOf("bitwise_mul_opt", VsBitwise.OurStrictlyBetter,
                   VsBitwise.BaseStrictlyBetter, VsBitwise.Incomparable,
                   Total);
    Table.printAligned(stdout);
    std::printf("\nthe value/mask decomposition is what separates our_mul "
                "from bitwise_mul_opt: same loop shape, different "
                "accumulation (§IV-A).\n");
  }
  return 0;
}
