//===- bench/fig5_mul_cycles.cpp - Reproduce paper Figure 5 ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: cumulative distribution of the minimum number of CPU cycles
/// (RDTSC, min over 10 trials per input) taken by bitwise_mul, kern_mul,
/// and our_mul on randomly sampled 64-bit tnum pairs. The paper used 40 M
/// pairs on a Skylake testbed and reports averages of 393 (kern_mul),
/// 387 (optimized bitwise_mul), and 262 (our_mul) cycles -- our_mul ~33%
/// faster. Absolute numbers differ per host; the ordering and rough factor
/// are the reproduction target.
///
/// Usage: fig5_mul_cycles [--pairs N] [--trials N] [--low-bits N]
///                        [--with-naive] [--csv]
///   --pairs N     number of random 64-bit tnum pairs (default 1,000,000;
///                 pass 40000000 for the paper's full workload)
///   --trials N    trials per input, minimum taken (default 10)
///   --low-bits N  confine operands to the low N bits (default 64). Real
///                 BPF scalars are often narrow; our_mul's early loop exit
///                 only pays off on such operands (see ablation_mul)
///   --with-naive  also measure the unoptimized trit-by-trit bitwise_mul
///                 (the paper's 4921-cycle baseline, §IV / E5)
///   --csv         dump downsampled CDF points as CSV rows
///
//===----------------------------------------------------------------------===//

#include "support/CycleTimer.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "tnum/TnumMul.h"
#include "verify/SoundnessChecker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace tnums;

namespace {

struct AlgorithmRun {
  const char *Name;
  Tnum (*Fn)(Tnum, Tnum);
  SampleSummary Cycles;
};

Tnum runBitwiseNaive(Tnum P, Tnum Q) { return bitwiseMulNaive(P, Q, 64); }
Tnum runBitwiseOpt(Tnum P, Tnum Q) { return bitwiseMulOpt(P, Q, 64); }
Tnum runOurFullLoop(Tnum P, Tnum Q) { return ourMulFullLoop(P, Q, 64); }

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Pairs = 1000000;
  unsigned Trials = 10;
  unsigned LowBits = 64;
  bool WithNaive = false;
  bool Csv = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--pairs") == 0 && I + 1 < Argc)
      Pairs = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--trials") == 0 && I + 1 < Argc)
      Trials = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--low-bits") == 0 && I + 1 < Argc)
      LowBits = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--with-naive") == 0)
      WithNaive = true;
    else if (std::strcmp(Argv[I], "--csv") == 0)
      Csv = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--pairs N] [--trials N] [--low-bits N] "
                   "[--with-naive] [--csv]\n",
                   Argv[0]);
      return 1;
    }
  }

  std::printf("Figure 5: multiplication cost over %llu random tnum pairs "
              "(operands in the low %u bits, min of %u trials, unit: %s)\n\n",
              static_cast<unsigned long long>(Pairs), LowBits, Trials,
              cycleCounterUnit());

  std::vector<AlgorithmRun> Runs;
  Runs.push_back({"kern_mul", &kernMul, {}});
  Runs.push_back({"bitwise_mul_opt", &runBitwiseNaive, {}}); // placeholder
  Runs.back().Fn = &runBitwiseOpt;
  Runs.push_back({"our_mul", &ourMul, {}});
  Runs.push_back({"our_mul_full_loop", &runOurFullLoop, {}});
  if (WithNaive)
    Runs.push_back({"bitwise_mul_naive", &runBitwiseNaive, {}});

  // Pre-draw the input pairs so generation cost stays outside the timed
  // region and all algorithms see identical inputs.
  constexpr uint64_t ChunkSize = 1 << 16;
  Xoshiro256 Rng(0xF1657EED);
  std::vector<std::pair<Tnum, Tnum>> Chunk;
  Chunk.reserve(ChunkSize);
  uint64_t Sink = 0;

  for (uint64_t Done = 0; Done < Pairs;) {
    uint64_t ThisChunk = std::min(ChunkSize, Pairs - Done);
    Chunk.clear();
    for (uint64_t I = 0; I != ThisChunk; ++I)
      Chunk.emplace_back(randomWellFormedTnum(Rng, LowBits),
                         randomWellFormedTnum(Rng, LowBits));
    for (AlgorithmRun &Run : Runs) {
      for (const auto &[P, Q] : Chunk) {
        uint64_t Best = minCyclesOverTrials(
            Trials, [&] { return Run.Fn(P, Q).value(); }, Sink);
        Run.Cycles.add(Best);
      }
    }
    Done += ThisChunk;
  }

  double KernMean = Runs[0].Cycles.mean();
  TextTable Table({"algorithm", "mean", "p50", "p90", "p99", "min",
                   "speedup vs kern_mul"});
  for (AlgorithmRun &Run : Runs) {
    double Mean = Run.Cycles.mean();
    Table.addRowOf(Run.Name, formatString("%.1f", Mean),
                   formatString("%.0f", Run.Cycles.percentile(50)),
                   formatString("%.0f", Run.Cycles.percentile(90)),
                   formatString("%.0f", Run.Cycles.percentile(99)),
                   Run.Cycles.min(),
                   formatString("%.2fx", KernMean / Mean));
  }
  Table.printAligned(stdout);

  std::printf("\nCDF (downsampled to <= 20 points per algorithm):\n");
  TextTable CdfTable({"algorithm", "cycles", "P[cost <= x]"});
  for (AlgorithmRun &Run : Runs)
    for (const CdfPoint &Point : Run.Cycles.cdf(20))
      CdfTable.addRowOf(Run.Name, formatString("%.0f", Point.X),
                        formatString("%.4f", Point.CumulativeFraction));
  CdfTable.printAligned(stdout);
  if (Csv) {
    std::printf("csv:algorithm,cycles,cum_fraction\n");
    for (AlgorithmRun &Run : Runs)
      for (const CdfPoint &Point : Run.Cycles.cdf(50))
        std::printf("csv:%s,%.0f,%.6f\n", Run.Name, Point.X,
                    Point.CumulativeFraction);
  }

  std::printf("\npaper reference (Skylake, 40M pairs): kern_mul 393, "
              "bitwise_mul_opt 387, our_mul 262 cycles on average; naive "
              "bitwise_mul 4921 cycles.\n");
  (void)Sink;
  return 0;
}
