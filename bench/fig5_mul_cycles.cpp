//===- bench/fig5_mul_cycles.cpp - Reproduce paper Figure 5 ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: cumulative distribution of the minimum number of CPU cycles
/// (RDTSC, min over 10 trials per input) taken by bitwise_mul, kern_mul,
/// and our_mul on randomly sampled 64-bit tnum pairs. The paper used 40 M
/// pairs on a Skylake testbed and reports averages of 393 (kern_mul),
/// 387 (optimized bitwise_mul), and 262 (our_mul) cycles -- our_mul ~33%
/// faster. Absolute numbers differ per host; the ordering and rough factor
/// are the reproduction target.
///
/// Usage: fig5_mul_cycles [--pairs N] [--trials N] [--low-bits N]
///                        [--with-naive] [--csv] [--json FILE]
///   --pairs N     number of random 64-bit tnum pairs (default 1,000,000;
///                 pass 40000000 for the paper's full workload)
///   --trials N    trials per input, minimum taken (default 10)
///   --low-bits N  confine operands to the low N bits (default 64). Real
///                 BPF scalars are often narrow; our_mul's early loop exit
///                 only pays off on such operands (see ablation_mul)
///   --with-naive  also measure the unoptimized trit-by-trit bitwise_mul
///                 (the paper's 4921-cycle baseline, §IV / E5)
///   --csv         dump downsampled CDF points as CSV rows
///   --json FILE   machine-readable dump of the summary table (the CI
///                 perf-trajectory artifact BENCH_cycles.json; gated by
///                 ci/compare_bench.py against bench/baselines/)
///
//===----------------------------------------------------------------------===//

#include "support/CycleTimer.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "tnum/TnumMul.h"
#include "verify/SoundnessChecker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace tnums;

namespace {

struct AlgorithmRun {
  const char *Name;
  Tnum (*Fn)(Tnum, Tnum);
  SampleSummary Cycles;
};

Tnum runBitwiseNaive(Tnum P, Tnum Q) { return bitwiseMulNaive(P, Q, 64); }
Tnum runBitwiseOpt(Tnum P, Tnum Q) { return bitwiseMulOpt(P, Q, 64); }
Tnum runOurFullLoop(Tnum P, Tnum Q) { return ourMulFullLoop(P, Q, 64); }

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Pairs = 1000000;
  unsigned Trials = 10;
  unsigned LowBits = 64;
  bool WithNaive = false;
  bool Csv = false;
  const char *JsonPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--pairs") == 0 && I + 1 < Argc)
      Pairs = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--trials") == 0 && I + 1 < Argc)
      Trials = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--low-bits") == 0 && I + 1 < Argc)
      LowBits = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--with-naive") == 0)
      WithNaive = true;
    else if (std::strcmp(Argv[I], "--csv") == 0)
      Csv = true;
    else if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--pairs N] [--trials N] [--low-bits N] "
                   "[--with-naive] [--csv] [--json FILE]\n",
                   Argv[0]);
      return 1;
    }
  }

  std::printf("Figure 5: multiplication cost over %llu random tnum pairs "
              "(operands in the low %u bits, min of %u trials, unit: %s)\n\n",
              static_cast<unsigned long long>(Pairs), LowBits, Trials,
              cycleCounterUnit());

  std::vector<AlgorithmRun> Runs;
  Runs.push_back({"kern_mul", &kernMul, {}});
  Runs.push_back({"bitwise_mul_opt", &runBitwiseNaive, {}}); // placeholder
  Runs.back().Fn = &runBitwiseOpt;
  Runs.push_back({"our_mul", &ourMul, {}});
  Runs.push_back({"our_mul_full_loop", &runOurFullLoop, {}});
  if (WithNaive)
    Runs.push_back({"bitwise_mul_naive", &runBitwiseNaive, {}});

  // Pre-draw the input pairs so generation cost stays outside the timed
  // region and all algorithms see identical inputs.
  constexpr uint64_t ChunkSize = 1 << 16;
  Xoshiro256 Rng(0xF1657EED);
  std::vector<std::pair<Tnum, Tnum>> Chunk;
  Chunk.reserve(ChunkSize);
  uint64_t Sink = 0;

  for (uint64_t Done = 0; Done < Pairs;) {
    uint64_t ThisChunk = std::min(ChunkSize, Pairs - Done);
    Chunk.clear();
    for (uint64_t I = 0; I != ThisChunk; ++I)
      Chunk.emplace_back(randomWellFormedTnum(Rng, LowBits),
                         randomWellFormedTnum(Rng, LowBits));
    for (AlgorithmRun &Run : Runs) {
      for (const auto &[P, Q] : Chunk) {
        uint64_t Best = minCyclesOverTrials(
            Trials, [&] { return Run.Fn(P, Q).value(); }, Sink);
        Run.Cycles.add(Best);
      }
    }
    Done += ThisChunk;
  }

  double KernMean = Runs[0].Cycles.mean();
  TextTable Table({"algorithm", "mean", "p50", "p90", "p99", "min",
                   "speedup vs kern_mul"});
  for (AlgorithmRun &Run : Runs) {
    double Mean = Run.Cycles.mean();
    Table.addRowOf(Run.Name, formatString("%.1f", Mean),
                   formatString("%.0f", Run.Cycles.percentile(50)),
                   formatString("%.0f", Run.Cycles.percentile(90)),
                   formatString("%.0f", Run.Cycles.percentile(99)),
                   Run.Cycles.min(),
                   formatString("%.2fx", KernMean / Mean));
  }
  Table.printAligned(stdout);

  std::printf("\nCDF (downsampled to <= 20 points per algorithm):\n");
  TextTable CdfTable({"algorithm", "cycles", "P[cost <= x]"});
  for (AlgorithmRun &Run : Runs)
    for (const CdfPoint &Point : Run.Cycles.cdf(20))
      CdfTable.addRowOf(Run.Name, formatString("%.0f", Point.X),
                        formatString("%.4f", Point.CumulativeFraction));
  CdfTable.printAligned(stdout);
  if (Csv) {
    std::printf("csv:algorithm,cycles,cum_fraction\n");
    for (AlgorithmRun &Run : Runs)
      for (const CdfPoint &Point : Run.Cycles.cdf(50))
        std::printf("csv:%s,%.0f,%.6f\n", Run.Name, Point.X,
                    Point.CumulativeFraction);
  }

  //===--------------------------------------------------------------------===//
  // Machine-readable dump for the CI perf-trajectory artifact. our_mul's
  // speedup over kern_mul is the primary gated metric: as a
  // within-process ratio of two algorithms measured back to back on
  // identical inputs, it is far less runner-sensitive than absolute
  // cycle counts (which are still recorded, with generous ceilings).
  //===--------------------------------------------------------------------===//
  if (JsonPath) {
    std::FILE *Json = std::fopen(JsonPath, "w");
    if (!Json) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    double OurMean = 0;
    for (AlgorithmRun &Run : Runs)
      if (std::strcmp(Run.Name, "our_mul") == 0)
        OurMean = Run.Cycles.mean();
    std::fprintf(Json,
                 "{\n"
                 "  \"bench\": \"mul_cycles\",\n"
                 "  \"build_info\": %s,\n"
                 "  \"pairs\": %llu,\n"
                 "  \"trials\": %u,\n"
                 "  \"low_bits\": %u,\n"
                 "  \"unit\": \"%s\",\n"
                 "  \"speedup_our_vs_kern\": %.4f,\n"
                 "  \"algorithms\": [\n",
                 buildInfoJson().c_str(),
                 static_cast<unsigned long long>(Pairs), Trials, LowBits,
                 cycleCounterUnit(),
                 OurMean > 0 ? KernMean / OurMean : 0.0);
    for (size_t I = 0; I != Runs.size(); ++I)
      std::fprintf(Json,
                   "    {\"name\": \"%s\", \"mean\": %.2f, \"p50\": %.1f, "
                   "\"p90\": %.1f, \"p99\": %.1f, \"min\": %llu}%s\n",
                   Runs[I].Name, Runs[I].Cycles.mean(),
                   Runs[I].Cycles.percentile(50), Runs[I].Cycles.percentile(90),
                   Runs[I].Cycles.percentile(99),
                   static_cast<unsigned long long>(Runs[I].Cycles.min()),
                   I + 1 == Runs.size() ? "" : ",");
    std::fprintf(Json, "  ]\n}\n");
    std::fclose(Json);
    std::printf("\nwrote %s\n", JsonPath);
  }

  std::printf("\npaper reference (Skylake, 40M pairs): kern_mul 393, "
              "bitwise_mul_opt 387, our_mul 262 cycles on average; naive "
              "bitwise_mul 4921 cycles.\n");
  (void)Sink;
  return 0;
}
