//===- bench/gbench_ops.cpp - Microbenchmarks for every operator ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment A2 (DESIGN.md): google-benchmark microbenchmarks of every
/// tnum transfer function, the reduced-product transfer, and whole-program
/// verification. Complements the RDTSC harness (fig5_mul_cycles) with
/// statistically managed wall-clock numbers.
///
/// `--json FILE` (a repo-local flag, stripped before google-benchmark sees
/// the command line) additionally writes BENCH_gbops.json for the CI perf
/// gate (ci/compare_bench.py gate_gbops); all other flags pass through to
/// google-benchmark unchanged.
///
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"
#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"
#include "domain/RegValue.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "tnum/TnumMul.h"
#include "tnum/TnumOps.h"
#include "verify/SoundnessChecker.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace tnums;
using namespace tnums::bpf;

namespace {

/// Pre-drawn random operand pool so RNG cost stays out of the loop.
std::vector<std::pair<Tnum, Tnum>> makePairs(size_t Count, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  std::vector<std::pair<Tnum, Tnum>> Pairs;
  Pairs.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Pairs.emplace_back(randomWellFormedTnum(Rng, 64),
                       randomWellFormedTnum(Rng, 64));
  return Pairs;
}

constexpr size_t PoolSize = 4096;

template <Tnum (*Fn)(Tnum, Tnum)>
void BM_TnumBinary(benchmark::State &State) {
  static const auto Pairs = makePairs(PoolSize, 0xB0B0);
  size_t I = 0;
  for (auto _ : State) {
    const auto &[P, Q] = Pairs[I++ & (PoolSize - 1)];
    benchmark::DoNotOptimize(Fn(P, Q).value());
  }
}

Tnum lshift4(Tnum P, Tnum Q) {
  (void)Q;
  return tnumLshift(P, 4);
}
Tnum rshift4(Tnum P, Tnum Q) {
  (void)Q;
  return tnumRshift(P, 4);
}
Tnum arshift4(Tnum P, Tnum Q) {
  (void)Q;
  return tnumArshift(P, 4, 64);
}
Tnum negOp(Tnum P, Tnum Q) {
  (void)Q;
  return tnumNeg(P);
}
Tnum bitwiseOpt64(Tnum P, Tnum Q) { return bitwiseMulOpt(P, Q, 64); }
Tnum rippleAdd64(Tnum P, Tnum Q) { return rippleAdd(P, Q, 64); }
Tnum rippleSub64(Tnum P, Tnum Q) { return rippleSub(P, Q, 64); }
Tnum lshiftByTnum(Tnum P, Tnum Q) { return tnumLshiftByTnum(P, Q, 64); }
Tnum joinOp(Tnum P, Tnum Q) { return P.joinWith(Q); }
Tnum meetOp(Tnum P, Tnum Q) { return P.meetWith(Q); }

void BM_RegValueAdd(benchmark::State &State) {
  static const auto Pairs = makePairs(PoolSize, 0xA11CE);
  std::vector<std::pair<RegValue, RegValue>> Values;
  Values.reserve(PoolSize);
  for (const auto &[P, Q] : Pairs)
    Values.emplace_back(RegValue::fromTnum(P), RegValue::fromTnum(Q));
  size_t I = 0;
  for (auto _ : State) {
    const auto &[L, R] = Values[I++ & (PoolSize - 1)];
    benchmark::DoNotOptimize(
        applyBinary(BinaryOp::Add, L, R).unsignedBounds().min());
  }
}

void BM_VerifyPacketFilter(benchmark::State &State) {
  Program P = ProgramBuilder()
                  .jmpImm(CompareOp::Lt, R2, 16, "drop")
                  .load(R3, R1, 0, 1)
                  .jmpImm(CompareOp::Eq, R3, 0, "drop")
                  .aluImm(AluOp::And, R3, 7)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 1)
                  .ja("out")
                  .label("drop")
                  .movImm(R0, 0)
                  .label("out")
                  .exit()
                  .build();
  for (auto _ : State) {
    VerifierReport Report = verifyProgram(P, 16);
    benchmark::DoNotOptimize(Report.Accepted);
  }
}

void BM_InterpretPacketFilter(benchmark::State &State) {
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .aluImm(AluOp::And, R3, 7)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 1)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0x5A);
  for (auto _ : State) {
    ExecResult R = Interpreter(P, Mem).run();
    benchmark::DoNotOptimize(R.ReturnValue);
  }
}

} // namespace

BENCHMARK(BM_TnumBinary<&tnumAdd>)->Name("tnum_add");
BENCHMARK(BM_TnumBinary<&tnumSub>)->Name("tnum_sub");
BENCHMARK(BM_TnumBinary<&tnumAnd>)->Name("tnum_and");
BENCHMARK(BM_TnumBinary<&tnumOr>)->Name("tnum_or");
BENCHMARK(BM_TnumBinary<&tnumXor>)->Name("tnum_xor");
BENCHMARK(BM_TnumBinary<&negOp>)->Name("tnum_neg");
BENCHMARK(BM_TnumBinary<&lshift4>)->Name("tnum_lshift_const");
BENCHMARK(BM_TnumBinary<&rshift4>)->Name("tnum_rshift_const");
BENCHMARK(BM_TnumBinary<&arshift4>)->Name("tnum_arshift_const");
BENCHMARK(BM_TnumBinary<&lshiftByTnum>)->Name("tnum_lshift_by_tnum");
BENCHMARK(BM_TnumBinary<&joinOp>)->Name("tnum_join");
BENCHMARK(BM_TnumBinary<&meetOp>)->Name("tnum_meet");
BENCHMARK(BM_TnumBinary<&rippleAdd64>)->Name("ripple_add_rd_baseline");
BENCHMARK(BM_TnumBinary<&rippleSub64>)->Name("ripple_sub_rd_baseline");
BENCHMARK(BM_TnumBinary<&kernMul>)->Name("mul/kern_mul");
BENCHMARK(BM_TnumBinary<&bitwiseOpt64>)->Name("mul/bitwise_mul_opt");
BENCHMARK(BM_TnumBinary<&ourMul>)->Name("mul/our_mul");
BENCHMARK(BM_RegValueAdd)->Name("regvalue_add_reduced_product");
BENCHMARK(BM_VerifyPacketFilter)->Name("verify_packet_filter");
BENCHMARK(BM_InterpretPacketFilter)->Name("interpret_packet_filter");

namespace {

/// Console output as usual, plus a captured (name, real ns/op) roster for
/// --json. Iteration counts are google-benchmark's statistical business;
/// the gate only needs the per-op figure of merit.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
public:
  struct Row {
    std::string Name;
    double NsPerOp;
  };
  std::vector<Row> Rows;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (!R.error_occurred && R.run_type == Run::RT_Iteration)
        Rows.push_back({R.benchmark_name(), R.GetAdjustedRealTime()});
    benchmark::ConsoleReporter::ReportRuns(Runs);
  }
};

} // namespace

/// BENCHMARK_MAIN(), plus a repo-convention `--json FILE` that writes
/// BENCH_gbops.json for ci/compare_bench.py gate_gbops: the benchmark
/// roster is exact; ns_per_op is the machine-dependent number the gate
/// ceilings against the committed baseline.
int main(int argc, char **argv) {
  const char *JsonPath = nullptr;
  std::vector<char *> Passthrough;
  for (int I = 0; I != argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0 && I + 1 < argc) {
      JsonPath = argv[++I];
      continue;
    }
    Passthrough.push_back(argv[I]);
  }
  Passthrough.push_back(nullptr);
  int PassthroughArgc = static_cast<int>(Passthrough.size()) - 1;
  benchmark::Initialize(&PassthroughArgc, Passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(PassthroughArgc,
                                             Passthrough.data()))
    return 1;
  JsonCapturingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  if (!JsonPath)
    return 0;
  std::FILE *Json = std::fopen(JsonPath, "w");
  if (!Json) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }
  std::fprintf(Json,
               "{\n"
               "  \"bench\": \"gbench_ops\",\n"
               "  \"build_info\": %s,\n"
               "  \"benchmarks\": [\n",
               buildInfoJson().c_str());
  for (size_t I = 0; I != Reporter.Rows.size(); ++I)
    std::fprintf(Json, "    {\"name\": \"%s\", \"ns_per_op\": %.3f}%s\n",
                 jsonEscape(Reporter.Rows[I].Name).c_str(),
                 Reporter.Rows[I].NsPerOp,
                 I + 1 == Reporter.Rows.size() ? "" : ",");
  std::fprintf(Json, "  ]\n}\n");
  std::fclose(Json);
  std::printf("wrote %s\n", JsonPath);
  return 0;
}
