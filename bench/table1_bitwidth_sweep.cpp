//===- bench/table1_bitwidth_sweep.cpp - Reproduce paper Table I ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table I (supplementary §VII-E): for each bitwidth, over all tnum input
/// pairs, compare kern_mul and our_mul outputs -- how many are equal, how
/// many differ, how many of the differing pairs are comparable under ⊑A,
/// and which algorithm wins among the comparable ones. The paper's trend:
/// the differing fraction grows with width and our_mul wins an increasing
/// share (75% at n=5 up to 80.2% at n=10).
///
/// Usage: table1_bitwidth_sweep [--min-width N] [--max-width N] [--jobs N]
///   Widths default to 5..8 exhaustively (9^N pairs). The per-width pair
///   walk is embarrassingly parallel and runs on the sweep engine's pool
///   (verify/ParallelSweep.h) -- the counters are order-independent sums,
///   so the table is identical for every job count. Width 9-10 match the
///   paper's full table and stay practical on a multicore host.
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMul.h"
#include "verify/ParallelSweep.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace tnums;

int main(int Argc, char **Argv) {
  unsigned MinWidth = 5;
  unsigned MaxWidth = 8;
  unsigned Jobs = 0; // SweepConfig convention: 0 = hardware concurrency.
  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchUnsigned("--min-width", 2, 10, MinWidth))
      continue;
    if (Args.matchUnsigned("--max-width", 2, 10, MaxWidth))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    Args.reject();
  }
  if (Args.failed() || MinWidth > MaxWidth) {
    std::fprintf(stderr,
                 "usage: %s [--min-width N] [--max-width N] [--jobs N] "
                 "with 2 <= min <= max <= 10\n",
                 Argv[0]);
    return 1;
  }

  std::printf("Table I: kern_mul vs our_mul across bitwidths (exhaustive "
              "over all tnum pairs)\n\n");

  TextTable Table({"bitwidth", "total pairs", "equal", "equal %",
                   "differing", "differ %", "comparable %", "kern wins %",
                   "our wins %"});

  for (unsigned Width = MinWidth; Width <= MaxWidth; ++Width) {
    std::vector<Tnum> Universe = allWellFormedTnums(Width);
    const uint64_t NumTnums = Universe.size();
    uint64_t Total = 0;
    uint64_t Equal = 0;
    uint64_t Differ = 0;
    uint64_t Comparable = 0;
    uint64_t KernWins = 0;
    uint64_t OurWins = 0;

    SweepConfig Config;
    Config.NumThreads = Jobs;
    std::mutex Merge;
    forEachIndexRangeParallel(
        NumTnums * NumTnums, Config, [&](uint64_t Begin, uint64_t End) {
          uint64_t LTotal = 0, LEqual = 0, LDiffer = 0, LComparable = 0;
          uint64_t LKernWins = 0, LOurWins = 0;
          for (uint64_t Index = Begin; Index != End; ++Index) {
            const Tnum &P = Universe[Index / NumTnums];
            const Tnum &Q = Universe[Index % NumTnums];
            ++LTotal;
            Tnum RKern = tnumMul(P, Q, MulAlgorithm::Kern, Width);
            Tnum ROur = tnumMul(P, Q, MulAlgorithm::Our, Width);
            if (RKern == ROur) {
              ++LEqual;
              continue;
            }
            ++LDiffer;
            if (!RKern.isComparableTo(ROur))
              continue;
            ++LComparable;
            if (ROur.isSubsetOf(RKern))
              ++LOurWins;
            else
              ++LKernWins;
          }
          std::lock_guard<std::mutex> Lock(Merge);
          Total += LTotal;
          Equal += LEqual;
          Differ += LDiffer;
          Comparable += LComparable;
          KernWins += LKernWins;
          OurWins += LOurWins;
        });

    auto Pct = [](uint64_t Part, uint64_t Whole) {
      return formatString("%.3f%%", Whole == 0 ? 0.0
                                               : 100.0 *
                                                     static_cast<double>(Part) /
                                                     static_cast<double>(Whole));
    };
    Table.addRowOf(Width, Total, Equal, Pct(Equal, Total), Differ,
                   Pct(Differ, Total), Pct(Comparable, Differ),
                   Pct(KernWins, Comparable), Pct(OurWins, Comparable));
    std::printf("width %u done (%llu pairs)\n", Width,
                static_cast<unsigned long long>(Total));
  }

  std::printf("\n");
  Table.printAligned(stdout);
  std::printf("\npaper reference: equal %% falls 99.986 -> 99.895, our-wins "
              "%% rises 75.0 -> 80.2 as width goes 5 -> 10; all differing "
              "outputs comparable through width 8.\n");
  return 0;
}
