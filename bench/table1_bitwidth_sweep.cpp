//===- bench/table1_bitwidth_sweep.cpp - Reproduce paper Table I ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table I (supplementary §VII-E): for each bitwidth, over all tnum input
/// pairs, compare kern_mul and our_mul outputs -- how many are equal, how
/// many differ, how many of the differing pairs are comparable under ⊑A,
/// and which algorithm wins among the comparable ones. The paper's trend:
/// the differing fraction grows with width and our_mul wins an increasing
/// share (75% at n=5 up to 80.2% at n=10).
///
/// Usage: table1_bitwidth_sweep [--min-width N] [--max-width N] [--jobs N]
///                              [--checkpoint-dir D] [--resume]
///                              [--shards K] [--shard-index I]
///                              [--shard-pairs N]
///
///   Widths default to 5..8 exhaustively (9^N pairs). Each width is one
///   cell of a checkpointed property campaign (verify/Campaign.h): the
///   Table I driver plugs into runPropertyCampaign, its pair walk shards
///   like the verification sweeps, every shard's six counters are
///   checkpointed under the versioned payload header, and the merge is
///   an order-independent sum -- so the table is identical for every job
///   count, shard split, or resume.
///   Width 9-10 match the paper's full table; with --checkpoint-dir a
///   preempted width-10 run resumes instead of restarting.
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMul.h"
#include "verify/Campaign.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace tnums;

namespace {

/// The six order-independent counters of one Table I row (= one cell).
struct Row {
  uint64_t Total = 0;
  uint64_t Equal = 0;
  uint64_t Differ = 0;
  uint64_t Comparable = 0;
  uint64_t KernWins = 0;
  uint64_t OurWins = 0;
};

/// Accumulates [Begin, End) of \p Universe's pair grid into \p Out,
/// parallel over the sweep pool. Deterministic: plain sums.
void scanRange(const std::vector<Tnum> &Universe, unsigned Width,
               uint64_t Begin, uint64_t End, const SweepConfig &Config,
               Row &Out) {
  const uint64_t NumTnums = Universe.size();
  std::mutex Merge;
  forEachIndexRangeParallel(Begin, End, Config, [&](uint64_t ChunkBegin,
                                                    uint64_t ChunkEnd) {
    Row Local;
    for (uint64_t Index = ChunkBegin; Index != ChunkEnd; ++Index) {
      const Tnum &P = Universe[Index / NumTnums];
      const Tnum &Q = Universe[Index % NumTnums];
      ++Local.Total;
      Tnum RKern = tnumMul(P, Q, MulAlgorithm::Kern, Width);
      Tnum ROur = tnumMul(P, Q, MulAlgorithm::Our, Width);
      if (RKern == ROur) {
        ++Local.Equal;
        continue;
      }
      ++Local.Differ;
      if (!RKern.isComparableTo(ROur))
        continue;
      ++Local.Comparable;
      if (ROur.isSubsetOf(RKern))
        ++Local.OurWins;
      else
        ++Local.KernWins;
    }
    std::lock_guard<std::mutex> Lock(Merge);
    Out.Total += Local.Total;
    Out.Equal += Local.Equal;
    Out.Differ += Local.Differ;
    Out.Comparable += Local.Comparable;
    Out.KernWins += Local.KernWins;
    Out.OurWins += Local.OurWins;
  });
}

std::string serializeRow(const Row &R) {
  return formatString("total %" PRIu64 "\nequal %" PRIu64 "\ndiffer %" PRIu64
                      "\ncomparable %" PRIu64 "\nkern_wins %" PRIu64
                      "\nour_wins %" PRIu64 "\n",
                      R.Total, R.Equal, R.Differ, R.Comparable, R.KernWins,
                      R.OurWins);
}

bool parseRow(const std::string &Payload, Row &R) {
  return std::sscanf(Payload.c_str(),
                     "total %" SCNu64 "\nequal %" SCNu64 "\ndiffer %" SCNu64
                     "\ncomparable %" SCNu64 "\nkern_wins %" SCNu64
                     "\nour_wins %" SCNu64,
                     &R.Total, &R.Equal, &R.Differ, &R.Comparable,
                     &R.KernWins, &R.OurWins) == 6;
}

/// The Table I property driver: one width per cell, one Row of six
/// order-independent counters per shard, summed on merge. Universes
/// build lazily, so a resumed invocation whose widths are all
/// checkpointed never enumerates them.
class Table1Driver final : public PropertyDriver {
  const unsigned MinWidth;
  const SweepConfig &Config;
  std::vector<Row> &Rows;
  std::vector<std::vector<Tnum>> Universes;

public:
  Table1Driver(unsigned MinWidth, unsigned NumWidths,
               const SweepConfig &Config, std::vector<Row> &Rows)
      : MinWidth(MinWidth), Config(Config), Rows(Rows),
        Universes(NumWidths) {}

  const char *name() const override { return "table1-row"; }
  unsigned payloadVersion() const override { return 1; }

  void runShard(size_t Cell, uint64_t Begin, uint64_t End,
                std::string &Payload, bool &) override {
    if (Universes[Cell].empty())
      Universes[Cell] = allWellFormedTnums(MinWidth + Cell);
    Row Shard;
    scanRange(Universes[Cell], MinWidth + Cell, Begin, End, Config, Shard);
    Payload = serializeRow(Shard);
  }

  bool mergeShard(size_t Cell, uint64_t, uint64_t,
                  const std::string &Payload, std::string &Error) override {
    Row Shard;
    if (!parseRow(Payload, Shard)) {
      Error = formatString("malformed Table I shard for width %zu",
                           MinWidth + Cell);
      return false;
    }
    Row &R = Rows[Cell];
    R.Total += Shard.Total;
    R.Equal += Shard.Equal;
    R.Differ += Shard.Differ;
    R.Comparable += Shard.Comparable;
    R.KernWins += Shard.KernWins;
    R.OurWins += Shard.OurWins;
    return true;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned MinWidth = 5;
  unsigned MaxWidth = 8;
  unsigned Jobs = 0; // SweepConfig convention: 0 = hardware concurrency.
  CampaignIO IO;
  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchUnsigned("--min-width", 2, 10, MinWidth))
      continue;
    if (Args.matchUnsigned("--max-width", 2, 10, MaxWidth))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    if (matchCampaignArgs(Args, IO))
      continue;
    Args.reject();
  }
  if (Args.failed() || MinWidth > MaxWidth) {
    std::fprintf(stderr,
                 "usage: %s [--min-width N] [--max-width N] [--jobs N] %s "
                 "with 2 <= min <= max <= 10\n",
                 Argv[0], CampaignArgsUsage);
    return 1;
  }

  std::printf("Table I: kern_mul vs our_mul across bitwidths (exhaustive "
              "over all tnum pairs)\n\n");

  SweepConfig Config;
  Config.NumThreads = Jobs;

  const unsigned NumWidths = MaxWidth - MinWidth + 1;

  Fnv1a Hash;
  Hash.mixString("tnums-table1 v2");
  Hash.mixU64(MinWidth);
  Hash.mixU64(MaxWidth);
  Hash.mixU64(IO.ShardPairs);

  // One campaign cell per width, all driven by the Table I property
  // driver. Per-cell content fingerprints: each width cell compares
  // kern_mul against our_mul, so bumping either algorithm's version tag
  // invalidates (and re-runs) exactly the checkpointed width cells on
  // resume, like the verification campaigns. The registry layer extends
  // them with the driver's name and payload version.
  std::vector<Row> Rows(NumWidths);
  Table1Driver Driver(MinWidth, NumWidths, Config, Rows);
  std::vector<PropertyCampaignCell> Cells;
  for (unsigned Width = MinWidth; Width <= MaxWidth; ++Width) {
    Fnv1a CellHash;
    CellHash.mixString("tnums-table1-cell v2");
    CellHash.mixU64(Width);
    CellHash.mixU64(opFingerprint(BinaryOp::Mul, MulAlgorithm::Kern));
    CellHash.mixU64(opFingerprint(BinaryOp::Mul, MulAlgorithm::Our));
    uint64_t NumTnums = numWellFormedTnums(Width);
    Cells.push_back(PropertyCampaignCell{NumTnums * NumTnums,
                                         CellHash.digest(), &Driver});
  }

  ShardDriveResult Drive = runPropertyCampaign(Cells, Hash.digest(), IO);
  if (!Drive.ok()) {
    std::fprintf(stderr, "error: %s\n", Drive.Error.c_str());
    return 1;
  }
  printCampaignStatus(Drive.ShardsTotal, Drive.ShardsRun,
                      Drive.ShardsResumed, Drive.ShardsSkipped,
                      Drive.ShardsInvalidated, IO.CheckpointDir);
  if (!Drive.Complete) {
    std::printf("campaign PARTIAL: run the remaining --shard-index "
                "invocations (or --resume) against the same "
                "--checkpoint-dir to complete the table\n");
    return 0;
  }
  std::printf("\n");

  TextTable Table({"bitwidth", "total pairs", "equal", "equal %",
                   "differing", "differ %", "comparable %", "kern wins %",
                   "our wins %"});
  for (size_t Cell = 0; Cell != Rows.size(); ++Cell) {
    const Row &R = Rows[Cell];
    auto Pct = [](uint64_t Part, uint64_t Whole) {
      return formatString("%.3f%%", Whole == 0 ? 0.0
                                               : 100.0 *
                                                     static_cast<double>(Part) /
                                                     static_cast<double>(Whole));
    };
    Table.addRowOf(MinWidth + Cell, R.Total, R.Equal, Pct(R.Equal, R.Total),
                   R.Differ, Pct(R.Differ, R.Total),
                   Pct(R.Comparable, R.Differ),
                   Pct(R.KernWins, R.Comparable),
                   Pct(R.OurWins, R.Comparable));
  }
  Table.printAligned(stdout);
  std::printf("\npaper reference: equal %% falls 99.986 -> 99.895, our-wins "
              "%% rises 75.0 -> 80.2 as width goes 5 -> 10; all differing "
              "outputs comparable through width 8.\n");
  return 0;
}
