//===- bench/fig4_mul_precision.cpp - Reproduce paper Figure 4 ------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: cumulative distribution of the log2 ratio of concretization
/// set sizes, (a) kern_mul vs our_mul and (b) bitwise_mul vs our_mul, over
/// *every* pair of width-8 tnums where the outputs differ. A tick right of
/// zero means our_mul was more precise by exactly that many trits.
///
/// The paper's headline: ~80% of differing cases favor our_mul, and all
/// width-8 differing outputs are mutually comparable.
///
/// Usage: fig4_mul_precision [--width N] [--csv] [--jobs N]
///   --width N   tnum width to enumerate exhaustively (default 8; cost is
///               9^N pairs, so 5..9 are practical)
///   --csv       also dump the CDF points as CSV rows
///   --jobs N    worker threads (default: hardware concurrency)
///
/// The pair walk runs on the sweep engine's pool (verify/ParallelSweep.h);
/// the counters and CDF are order-independent multiset reductions, so the
/// output is identical for every job count.
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMul.h"
#include "verify/ParallelSweep.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

using namespace tnums;

namespace {

/// Accumulated comparison of one baseline algorithm against our_mul.
struct Comparison {
  const char *Name;
  MulAlgorithm Baseline;
  uint64_t Differing = 0;
  uint64_t Comparable = 0;
  uint64_t OurMorePrecise = 0;
  uint64_t BaselineMorePrecise = 0;
  DiscreteCdf RatioCdf; ///< log2 |gamma(baseline)| - log2 |gamma(our)|.
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned Width = 8;
  bool Csv = false;
  unsigned Jobs = 0; // SweepConfig convention: 0 = hardware concurrency.
  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchUnsigned("--width", 2, 9, Width))
      continue;
    if (Args.matchFlag("--csv")) {
      Csv = true;
      continue;
    }
    if (Args.matchJobs(Jobs))
      continue;
    Args.reject();
  }
  if (Args.failed()) {
    std::fprintf(stderr,
                 "usage: %s [--width 2..9] [--csv] [--jobs 0..1024]\n",
                 Argv[0]);
    return 1;
  }

  std::printf("Figure 4: precision of our_mul vs prior algorithms "
              "(exhaustive, width %u)\n\n",
              Width);

  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  Comparison Comparisons[2] = {
      {"kern_mul", MulAlgorithm::Kern, 0, 0, 0, 0, {}},
      {"bitwise_mul", MulAlgorithm::BitwiseOpt, 0, 0, 0, 0, {}},
  };

  uint64_t TotalPairs = 0;
  uint64_t EqualBoth[2] = {0, 0};
  const uint64_t NumTnums = Universe.size();
  SweepConfig Config;
  Config.NumThreads = Jobs;
  std::mutex Merge;
  forEachIndexRangeParallel(
      NumTnums * NumTnums, Config, [&](uint64_t Begin, uint64_t End) {
        // Range-local accumulators; the CDF buckets merge as a histogram
        // (a multiset is order-independent, so the CDF is deterministic).
        uint64_t LTotal = 0;
        uint64_t LEqual[2] = {0, 0};
        struct LocalCmp {
          uint64_t Differing = 0, Comparable = 0;
          uint64_t OurMorePrecise = 0, BaselineMorePrecise = 0;
          std::map<int64_t, uint64_t> Buckets;
        } Local[2];
        for (uint64_t Index = Begin; Index != End; ++Index) {
          const Tnum &P = Universe[Index / NumTnums];
          const Tnum &Q = Universe[Index % NumTnums];
          ++LTotal;
          Tnum ROur = tnumMul(P, Q, MulAlgorithm::Our, Width);
          for (size_t CI = 0; CI != 2; ++CI) {
            Tnum RBase = tnumMul(P, Q, Comparisons[CI].Baseline, Width);
            if (RBase == ROur) {
              ++LEqual[CI];
              continue;
            }
            ++Local[CI].Differing;
            if (!RBase.isComparableTo(ROur))
              continue;
            ++Local[CI].Comparable;
            // Comparable differing tnums differ exactly in unknown-trit
            // count, so the log2 set-size ratio is the trit-count
            // difference.
            int64_t Log2Ratio =
                static_cast<int64_t>(RBase.concretizationSizeLog2()) -
                static_cast<int64_t>(ROur.concretizationSizeLog2());
            ++Local[CI].Buckets[Log2Ratio];
            if (Log2Ratio > 0)
              ++Local[CI].OurMorePrecise;
            else
              ++Local[CI].BaselineMorePrecise;
          }
        }
        std::lock_guard<std::mutex> Lock(Merge);
        TotalPairs += LTotal;
        for (size_t CI = 0; CI != 2; ++CI) {
          EqualBoth[CI] += LEqual[CI];
          Comparisons[CI].Differing += Local[CI].Differing;
          Comparisons[CI].Comparable += Local[CI].Comparable;
          Comparisons[CI].OurMorePrecise += Local[CI].OurMorePrecise;
          Comparisons[CI].BaselineMorePrecise +=
              Local[CI].BaselineMorePrecise;
          for (const auto &[Bucket, Count] : Local[CI].Buckets)
            Comparisons[CI].RatioCdf.addCount(Bucket, Count);
        }
      });

  TextTable Summary({"comparison", "total pairs", "equal", "differing",
                     "comparable", "our more precise", "% of differing"});
  for (size_t I = 0; I != 2; ++I) {
    const Comparison &C = Comparisons[I];
    Summary.addRowOf(
        formatString("%s vs our_mul", C.Name), TotalPairs, EqualBoth[I],
        C.Differing, C.Comparable, C.OurMorePrecise,
        formatString("%.2f%%", C.Differing == 0
                                   ? 0.0
                                   : 100.0 * static_cast<double>(
                                                 C.OurMorePrecise) /
                                         static_cast<double>(C.Differing)));
  }
  Summary.printAligned(stdout);

  for (const Comparison &C : Comparisons) {
    std::printf("\nCDF of log2(|gamma(%s)| / |gamma(our_mul)|) over "
                "differing, comparable pairs:\n",
                C.Name);
    TextTable CdfTable({"log2 ratio", "P[ratio <= x]"});
    for (const CdfPoint &Point : C.RatioCdf.points())
      CdfTable.addRowOf(formatString("%+g", Point.X),
                        formatString("%.4f", Point.CumulativeFraction));
    CdfTable.printAligned(stdout);
    if (Csv) {
      std::printf("csv:comparison,log2_ratio,cum_fraction\n");
      for (const CdfPoint &Point : C.RatioCdf.points())
        std::printf("csv:%s,%g,%.6f\n", C.Name, Point.X,
                    Point.CumulativeFraction);
    }
  }

  std::printf("\npaper reference (width 8): our_mul more precise in ~80%% "
              "of differing cases; outputs always comparable; 99.92%% of "
              "all pairs equal for kern_mul.\n");
  return 0;
}
