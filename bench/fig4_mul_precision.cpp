//===- bench/fig4_mul_precision.cpp - Reproduce paper Figure 4 ------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: cumulative distribution of the log2 ratio of concretization
/// set sizes, (a) kern_mul vs our_mul and (b) bitwise_mul vs our_mul, over
/// *every* pair of width-8 tnums where the outputs differ. A tick right of
/// zero means our_mul was more precise by exactly that many trits.
///
/// The paper's headline: ~80% of differing cases favor our_mul, and all
/// width-8 differing outputs are mutually comparable.
///
/// Usage: fig4_mul_precision [--width N] [--csv] [--jobs N]
///                           [--checkpoint-dir D] [--resume]
///                           [--shards K] [--shard-index I]
///                           [--shard-pairs N]
///
///   --width N   tnum width to enumerate exhaustively (default 8; cost is
///               9^N pairs, so 5..9 are practical)
///   --csv       also dump the CDF points as CSV rows
///   --jobs N    worker threads (default: hardware concurrency)
///
/// The pair walk is one cell of a checkpointed property campaign
/// (verify/Campaign.h): the Figure 4 driver plugs into
/// runPropertyCampaign, its counters and CDF buckets are
/// order-independent multiset reductions serialized per shard under the
/// versioned payload header, so the merged figure is identical for every
/// job count, shard split, or resume.
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMul.h"
#include "verify/Campaign.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

using namespace tnums;

namespace {

/// Shard-local accumulator of one baseline-vs-our_mul comparison.
struct CmpCounters {
  uint64_t Equal = 0;
  uint64_t Differing = 0;
  uint64_t Comparable = 0;
  uint64_t OurMorePrecise = 0;
  uint64_t BaselineMorePrecise = 0;
  std::map<int64_t, uint64_t> Buckets;
};

/// Accumulated comparison of one baseline algorithm against our_mul.
struct Comparison {
  const char *Name;
  MulAlgorithm Baseline;
  uint64_t Differing = 0;
  uint64_t Comparable = 0;
  uint64_t OurMorePrecise = 0;
  uint64_t BaselineMorePrecise = 0;
  DiscreteCdf RatioCdf; ///< log2 |gamma(baseline)| - log2 |gamma(our)|.
};

/// One shard's payload: the pair total plus both comparisons' counters
/// and histogram buckets, line-oriented and deterministic (std::map keeps
/// buckets sorted).
std::string serializeShard(uint64_t Total, const CmpCounters (&C)[2]) {
  std::string Payload = formatString("total %" PRIu64 "\n", Total);
  for (size_t I = 0; I != 2; ++I) {
    Payload += formatString(
        "cmp %zu %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
        "\n",
        I, C[I].Equal, C[I].Differing, C[I].Comparable, C[I].OurMorePrecise,
        C[I].BaselineMorePrecise);
    for (const auto &[Bucket, Count] : C[I].Buckets)
      Payload += formatString("bucket %zu %" PRId64 " %" PRIu64 "\n", I,
                              Bucket, Count);
  }
  return Payload;
}

bool parseShard(const std::string &Payload, uint64_t &Total,
                CmpCounters (&C)[2]) {
  size_t Pos = 0;
  bool SawTotal = false;
  bool SawCmp[2] = {false, false};
  while (Pos < Payload.size()) {
    size_t Eol = Payload.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Payload.size();
    std::string Line = Payload.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    uint64_t V[5];
    size_t CI;
    int64_t Bucket;
    if (std::sscanf(Line.c_str(), "total %" SCNu64, &V[0]) == 1) {
      Total = V[0];
      SawTotal = true;
    } else if (std::sscanf(Line.c_str(),
                           "cmp %zu %" SCNu64 " %" SCNu64 " %" SCNu64
                           " %" SCNu64 " %" SCNu64,
                           &CI, &V[0], &V[1], &V[2], &V[3], &V[4]) == 6 &&
               CI < 2) {
      C[CI].Equal = V[0];
      C[CI].Differing = V[1];
      C[CI].Comparable = V[2];
      C[CI].OurMorePrecise = V[3];
      C[CI].BaselineMorePrecise = V[4];
      SawCmp[CI] = true;
    } else if (std::sscanf(Line.c_str(), "bucket %zu %" SCNd64 " %" SCNu64,
                           &CI, &Bucket, &V[0]) == 3 &&
               CI < 2) {
      C[CI].Buckets[Bucket] = V[0];
    } else if (!Line.empty()) {
      return false;
    }
  }
  return SawTotal && SawCmp[0] && SawCmp[1];
}

/// The Figure 4 property driver: the one width cell's pair walk, both
/// baseline-vs-our_mul comparisons accumulated per shard and folded as
/// order-independent sums / histogram multisets on merge.
class Fig4Driver final : public PropertyDriver {
  const unsigned Width;
  const uint64_t NumTnums;
  const SweepConfig &Config;
  Comparison (&Comparisons)[2];
  uint64_t &TotalPairs;
  uint64_t (&EqualBoth)[2];
  std::vector<Tnum> Universe; // Built lazily: resumed runs may not need it.

public:
  Fig4Driver(unsigned Width, const SweepConfig &Config,
             Comparison (&Comparisons)[2], uint64_t &TotalPairs,
             uint64_t (&EqualBoth)[2])
      : Width(Width), NumTnums(numWellFormedTnums(Width)), Config(Config),
        Comparisons(Comparisons), TotalPairs(TotalPairs),
        EqualBoth(EqualBoth) {}

  const char *name() const override { return "fig4-precision"; }
  unsigned payloadVersion() const override { return 1; }

  void runShard(size_t, uint64_t Begin, uint64_t End, std::string &Payload,
                bool &) override {
    // Resolve the universe BEFORE the parallel walk: the lazy build
    // must not race between pool workers.
    if (Universe.empty())
      Universe = allWellFormedTnums(Width);
    const std::vector<Tnum> &U = Universe;
    uint64_t ShardTotal = 0;
    CmpCounters Shard[2];
    std::mutex Merge;
    forEachIndexRangeParallel(
        Begin, End, Config, [&](uint64_t ChunkBegin, uint64_t ChunkEnd) {
          // Range-local accumulators; the CDF buckets merge as a
          // histogram (a multiset is order-independent, so the CDF is
          // deterministic).
          uint64_t LTotal = 0;
          CmpCounters Local[2];
          for (uint64_t Index = ChunkBegin; Index != ChunkEnd; ++Index) {
            const Tnum &P = U[Index / NumTnums];
            const Tnum &Q = U[Index % NumTnums];
            ++LTotal;
            Tnum ROur = tnumMul(P, Q, MulAlgorithm::Our, Width);
            for (size_t CI = 0; CI != 2; ++CI) {
              Tnum RBase = tnumMul(P, Q, Comparisons[CI].Baseline, Width);
              if (RBase == ROur) {
                ++Local[CI].Equal;
                continue;
              }
              ++Local[CI].Differing;
              if (!RBase.isComparableTo(ROur))
                continue;
              ++Local[CI].Comparable;
              // Comparable differing tnums differ exactly in
              // unknown-trit count, so the log2 set-size ratio is the
              // trit-count difference.
              int64_t Log2Ratio =
                  static_cast<int64_t>(RBase.concretizationSizeLog2()) -
                  static_cast<int64_t>(ROur.concretizationSizeLog2());
              ++Local[CI].Buckets[Log2Ratio];
              if (Log2Ratio > 0)
                ++Local[CI].OurMorePrecise;
              else
                ++Local[CI].BaselineMorePrecise;
            }
          }
          std::lock_guard<std::mutex> Lock(Merge);
          ShardTotal += LTotal;
          for (size_t CI = 0; CI != 2; ++CI) {
            Shard[CI].Equal += Local[CI].Equal;
            Shard[CI].Differing += Local[CI].Differing;
            Shard[CI].Comparable += Local[CI].Comparable;
            Shard[CI].OurMorePrecise += Local[CI].OurMorePrecise;
            Shard[CI].BaselineMorePrecise += Local[CI].BaselineMorePrecise;
            for (const auto &[Bucket, Count] : Local[CI].Buckets)
              Shard[CI].Buckets[Bucket] += Count;
          }
        });
    Payload = serializeShard(ShardTotal, Shard);
  }

  bool mergeShard(size_t, uint64_t, uint64_t, const std::string &Payload,
                  std::string &Error) override {
    uint64_t ShardTotal = 0;
    CmpCounters Shard[2];
    if (!parseShard(Payload, ShardTotal, Shard)) {
      Error = "malformed Figure 4 shard payload";
      return false;
    }
    TotalPairs += ShardTotal;
    for (size_t CI = 0; CI != 2; ++CI) {
      EqualBoth[CI] += Shard[CI].Equal;
      Comparisons[CI].Differing += Shard[CI].Differing;
      Comparisons[CI].Comparable += Shard[CI].Comparable;
      Comparisons[CI].OurMorePrecise += Shard[CI].OurMorePrecise;
      Comparisons[CI].BaselineMorePrecise += Shard[CI].BaselineMorePrecise;
      for (const auto &[Bucket, Count] : Shard[CI].Buckets)
        Comparisons[CI].RatioCdf.addCount(Bucket, Count);
    }
    return true;
  }
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned Width = 8;
  bool Csv = false;
  unsigned Jobs = 0; // SweepConfig convention: 0 = hardware concurrency.
  CampaignIO IO;
  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchUnsigned("--width", 2, 9, Width))
      continue;
    if (Args.matchFlag("--csv")) {
      Csv = true;
      continue;
    }
    if (Args.matchJobs(Jobs))
      continue;
    if (matchCampaignArgs(Args, IO))
      continue;
    Args.reject();
  }
  if (Args.failed()) {
    std::fprintf(stderr,
                 "usage: %s [--width 2..9] [--csv] [--jobs 0..1024] %s\n",
                 Argv[0], CampaignArgsUsage);
    return 1;
  }

  std::printf("Figure 4: precision of our_mul vs prior algorithms "
              "(exhaustive, width %u)\n\n",
              Width);

  Comparison Comparisons[2] = {
      {"kern_mul", MulAlgorithm::Kern, 0, 0, 0, 0, {}},
      {"bitwise_mul", MulAlgorithm::BitwiseOpt, 0, 0, 0, 0, {}},
  };

  SweepConfig Config;
  Config.NumThreads = Jobs;
  const uint64_t NumTnums = numWellFormedTnums(Width);

  Fnv1a Hash;
  Hash.mixString("tnums-fig4 v2");
  Hash.mixU64(Width);
  Hash.mixU64(IO.ShardPairs);

  // Content fingerprint of the one cell: the figure compares kern_mul and
  // bitwise_mul_opt against our_mul, so a version bump of any of the
  // three invalidates checkpointed shards on resume.
  Fnv1a CellHash;
  CellHash.mixString("tnums-fig4-cell v2");
  CellHash.mixU64(Width);
  CellHash.mixU64(opFingerprint(BinaryOp::Mul, MulAlgorithm::Kern));
  CellHash.mixU64(opFingerprint(BinaryOp::Mul, MulAlgorithm::BitwiseOpt));
  CellHash.mixU64(opFingerprint(BinaryOp::Mul, MulAlgorithm::Our));

  uint64_t TotalPairs = 0;
  uint64_t EqualBoth[2] = {0, 0};
  Fig4Driver Driver(Width, Config, Comparisons, TotalPairs, EqualBoth);
  std::vector<PropertyCampaignCell> Cells = {
      PropertyCampaignCell{NumTnums * NumTnums, CellHash.digest(), &Driver}};
  ShardDriveResult Drive = runPropertyCampaign(Cells, Hash.digest(), IO);
  if (!Drive.ok()) {
    std::fprintf(stderr, "error: %s\n", Drive.Error.c_str());
    return 1;
  }
  printCampaignStatus(Drive.ShardsTotal, Drive.ShardsRun,
                      Drive.ShardsResumed, Drive.ShardsSkipped,
                      Drive.ShardsInvalidated, IO.CheckpointDir);
  if (!Drive.Complete) {
    std::printf("campaign PARTIAL: run the remaining --shard-index "
                "invocations (or --resume) against the same "
                "--checkpoint-dir to complete the figure\n");
    return 0;
  }
  std::printf("\n");

  TextTable Summary({"comparison", "total pairs", "equal", "differing",
                     "comparable", "our more precise", "% of differing"});
  for (size_t I = 0; I != 2; ++I) {
    const Comparison &C = Comparisons[I];
    Summary.addRowOf(
        formatString("%s vs our_mul", C.Name), TotalPairs, EqualBoth[I],
        C.Differing, C.Comparable, C.OurMorePrecise,
        formatString("%.2f%%", C.Differing == 0
                                   ? 0.0
                                   : 100.0 * static_cast<double>(
                                                 C.OurMorePrecise) /
                                         static_cast<double>(C.Differing)));
  }
  Summary.printAligned(stdout);

  for (const Comparison &C : Comparisons) {
    std::printf("\nCDF of log2(|gamma(%s)| / |gamma(our_mul)|) over "
                "differing, comparable pairs:\n",
                C.Name);
    TextTable CdfTable({"log2 ratio", "P[ratio <= x]"});
    for (const CdfPoint &Point : C.RatioCdf.points())
      CdfTable.addRowOf(formatString("%+g", Point.X),
                        formatString("%.4f", Point.CumulativeFraction));
    CdfTable.printAligned(stdout);
    if (Csv) {
      std::printf("csv:comparison,log2_ratio,cum_fraction\n");
      for (const CdfPoint &Point : C.RatioCdf.points())
        std::printf("csv:%s,%g,%.6f\n", C.Name, Point.X,
                    Point.CumulativeFraction);
    }
  }

  std::printf("\npaper reference (width 8): our_mul more precise in ~80%% "
              "of differing cases; outputs always comparable; 99.92%% of "
              "all pairs equal for kern_mul.\n");
  return 0;
}
