//===- bench/precision_atlas.cpp - Per-operator optimality-gap atlas ------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The precision atlas (docs/ATLAS.md): for every operator and every
/// multiplication algorithm, measure the optimality gap exhaustively --
/// per input pair, how many more unknown bits does the transfer function
/// produce than the best abstraction of the concrete result set? The
/// paper proves WHICH operators are optimal (§IV); the atlas quantifies
/// the others: gap histograms, mean/max lost bits, and the worst-case
/// witness pair per cell.
///
/// The binary-operator cells run on the checkpointed campaign engine
/// (verify/Campaign.h) as Precision property cells, so a width-10 atlas
/// survives preemption, shards across machines, and re-measures only the
/// cells whose algorithm changed on resume. The unary narrowing casts
/// (tnum_cast, tnumTruncate) are cheap one-axis scans measured inline --
/// they are exactly optimal, and the atlas RECORDS that rather than
/// assuming it.
///
/// Usage: precision_atlas [--width N] [--shift-width N] [--cast-width N]
///                        [--jobs N] [--simd=MODE] [--no-timing]
///                        [--metrics] [--json FILE]
///                        [--witness-corpus FILE] [--diff-baseline D]
///                        [--checkpoint-dir D] [--resume] [--shards K]
///                        [--shard-index I] [--shard-pairs N]
///
///   --width N           mul algorithms + non-shift ops (default 6: the
///                       smallest width where every mul algorithm has a
///                       measurable nonzero gap)
///   --shift-width N     lsh/rsh/arsh cells (default 4; must be 2^k for
///                       the shift semantics)
///   --cast-width N      the unary cast scans (default 12, so a 1-byte
///                       tnum_cast actually narrows)
///   --witness-corpus F  write every worst-case witness pair as a corpus
///                       file (bench/ablation_mul --witness-corpus
///                       replays it instead of private random sampling)
///   --diff-baseline D   report per-cell precision drift against an
///                       earlier run's checkpoint store ("0 precision
///                       deltas vs baseline" on an identical rerun)
///   --json FILE         BENCH_atlas.json for ci/compare_bench.py
///                       gate_atlas: gap fields are exact cross-machine;
///                       campaign_pairs_per_s gets the throughput floor
///
/// Reports are bit-identical across schedulers, SIMD tiers, shard splits,
/// and kill/resume interleavings (the campaign determinism contract).
/// The atlas measures; it does not judge: exit status is 0 unless a hard
/// error occurs.
///
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMul.h"
#include "tnum/TnumOps.h"
#include "verify/Campaign.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace tnums;

namespace {

/// Ops measured at --width besides the per-algorithm mul cells. Shifts
/// need a power-of-two width and get their own --shift-width axis.
constexpr BinaryOp WidthOps[] = {BinaryOp::Add, BinaryOp::Sub,
                                 BinaryOp::And, BinaryOp::Or,
                                 BinaryOp::Xor, BinaryOp::Div,
                                 BinaryOp::Mod};
constexpr BinaryOp ShiftOps[] = {BinaryOp::Lsh, BinaryOp::Rsh,
                                 BinaryOp::Arsh};

/// "mul[our_mul]" or "div" -- the atlas row / corpus label of a cell.
std::string cellOpLabel(const CampaignCell &Cell) {
  std::string Op = binaryOpName(Cell.Op);
  if (Cell.Op == BinaryOp::Mul)
    Op += formatString("[%s]", mulAlgorithmName(Cell.Mul));
  return Op;
}

/// One unary narrowing measurement: Op(P) vs the optimal abstraction of
/// {concrete(x) : x in gamma(P)}, exhaustively over every well-formed
/// tnum at the scan width. The narrowing operators are exactly optimal;
/// the atlas measures that instead of assuming it.
struct UnaryRow {
  const char *Op;     ///< "cast" or "truncate".
  unsigned Param;     ///< Bytes for cast, target width for truncate.
  unsigned Width;     ///< Input width of the scan.
  uint64_t Tnums = 0; ///< Inputs measured.
  uint64_t SumGap = 0;
  unsigned MaxGap = 0;
};

template <typename AbstractFnT, typename ConcreteFnT>
UnaryRow measureUnary(const char *Op, unsigned Param, unsigned Width,
                      AbstractFnT &&Abstract, ConcreteFnT &&Concrete) {
  UnaryRow Row{Op, Param, Width, 0, 0, 0};
  for (const Tnum &P : allWellFormedTnums(Width)) {
    Tnum Actual = Abstract(P);
    Tnum Optimal = Tnum::makeBottom();
    forEachMember(P, [&](uint64_t X) {
      Optimal = abstractInsert(Optimal, Concrete(X));
    });
    unsigned ActualBits =
        static_cast<unsigned>(std::popcount(Actual.mask()));
    unsigned OptimalBits =
        static_cast<unsigned>(std::popcount(Optimal.mask()));
    unsigned Gap = ActualBits > OptimalBits ? ActualBits - OptimalBits : 0;
    ++Row.Tnums;
    Row.SumGap += Gap;
    Row.MaxGap = std::max(Row.MaxGap, Gap);
  }
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Width = 6;
  unsigned ShiftWidth = 4;
  unsigned CastWidth = 12;
  unsigned Jobs = ThreadPool::hardwareConcurrency();
  SimdMode Simd = SimdMode::Auto;
  bool NoTiming = false;
  bool UseMetrics = false;
  const char *SimdText = nullptr;
  const char *JsonPath = nullptr;
  const char *CorpusPath = nullptr;
  const char *DiffBaselineDir = nullptr;
  CampaignIO IO;
  ArgParser Args(Argc, Argv);
  while (Args.more()) {
    if (Args.matchUnsigned("--width", 2, 12, Width))
      continue;
    if (Args.matchUnsigned("--shift-width", 2, 8, ShiftWidth))
      continue;
    if (Args.matchUnsigned("--cast-width", 2, 14, CastWidth))
      continue;
    if (Args.matchJobs(Jobs))
      continue;
    if (Args.matchString("--simd", SimdText))
      continue;
    if (Args.matchString("--json", JsonPath))
      continue;
    if (Args.matchString("--witness-corpus", CorpusPath))
      continue;
    if (Args.matchString("--diff-baseline", DiffBaselineDir))
      continue;
    if (Args.matchFlag("--no-timing")) {
      NoTiming = true;
      continue;
    }
    if (Args.matchFlag("--metrics")) {
      UseMetrics = true;
      continue;
    }
    if (matchCampaignArgs(Args, IO))
      continue;
    Args.reject();
  }
  bool BadArgs = Args.failed();
  if (SimdText) {
    if (std::optional<SimdMode> Parsed = parseSimdMode(SimdText)) {
      Simd = *Parsed;
      if (!simdModeSupported(Simd)) {
        std::fprintf(stderr,
                     "error: --simd=%s is not supported on this host; "
                     "supported modes: %s\n",
                     simdModeName(Simd), supportedSimdModeList().c_str());
        return 1;
      }
    } else {
      BadArgs = true;
    }
  }
  if ((ShiftWidth & (ShiftWidth - 1)) != 0) {
    std::fprintf(stderr,
                 "error: --shift-width must be a power of two (the shift "
                 "semantics mask the amount to the width)\n");
    BadArgs = true;
  }
  if (Jobs == 0) // Keeps the SweepConfig convention: hardware concurrency.
    Jobs = ThreadPool::hardwareConcurrency();
  if (BadArgs) {
    std::fprintf(stderr,
                 "usage: %s [--width 2..12] [--shift-width {2,4,8}] "
                 "[--cast-width 2..14] [--jobs N] [--simd=%s] "
                 "[--no-timing] [--metrics] [--json FILE] "
                 "[--witness-corpus FILE] [--diff-baseline D] %s\n",
                 Argv[0], SimdModeUsage, CampaignArgsUsage);
    return 1;
  }
  if (UseMetrics)
    enableProcessMetrics();

  SweepConfig Sweep;
  Sweep.NumThreads = Jobs;
  Sweep.Simd = Simd;

  std::printf("precision atlas: optimality gap per operator (mul + ops at "
              "width %u, shifts at width %u, casts at width %u)\n\n",
              Width, ShiftWidth, CastWidth);

  // The atlas campaign: every mul algorithm, then the non-shift
  // operators, then the shifts -- all Precision cells on the shared
  // checkpointed engine.
  CampaignSpec Spec;
  for (MulAlgorithm Algorithm : AllMulAlgorithms)
    Spec.Cells.push_back(
        {BinaryOp::Mul, Algorithm, Width, CampaignProperty::Precision});
  for (BinaryOp Op : WidthOps)
    Spec.Cells.push_back(
        {Op, MulAlgorithm::Our, Width, CampaignProperty::Precision});
  for (BinaryOp Op : ShiftOps)
    Spec.Cells.push_back(
        {Op, MulAlgorithm::Our, ShiftWidth, CampaignProperty::Precision});

  CampaignResult Campaign = runCampaign(Spec, IO, Sweep);
  if (!Campaign.ok()) {
    std::fprintf(stderr, "error: %s\n", Campaign.Error.c_str());
    return 1;
  }
  printCampaignStatus(Campaign.ShardsTotal, Campaign.ShardsRun,
                      Campaign.ShardsResumed, Campaign.ShardsSkipped,
                      Campaign.ShardsInvalidated, IO.CheckpointDir);
  if (!IO.CheckpointDir.empty()) {
    // Executed-cell accounting, "campaign"-prefixed like the banner so
    // CI's byte-for-byte report diffs can filter the lines that
    // legitimately vary across resumes.
    for (const CampaignCellResult &Cell : Campaign.Cells)
      std::printf("campaign cell %s/w%u: %llu run, %llu resumed, "
                  "%llu invalidated\n",
                  cellOpLabel(Cell.Cell).c_str(), Cell.Cell.Width,
                  static_cast<unsigned long long>(Cell.ShardsRun),
                  static_cast<unsigned long long>(Cell.ShardsResumed),
                  static_cast<unsigned long long>(Cell.ShardsInvalidated));
  }
  if (!Campaign.Complete) {
    std::printf("campaign PARTIAL: run the remaining --shard-index "
                "invocations (or --resume) against the same "
                "--checkpoint-dir to complete the atlas\n");
    return 0;
  }
  if (DiffBaselineDir) {
    CampaignDiffResult Diff =
        diffCampaignBaseline(Spec, IO, DiffBaselineDir, Campaign);
    if (!Diff.ok()) {
      std::fprintf(stderr, "error: --diff-baseline: %s\n",
                   Diff.Error.c_str());
      return 1;
    }
    std::printf("\n");
    printPrecisionDeltas(Spec, Diff, Campaign, stdout);
  }
  std::printf("\n");

  TextTable Table({"op", "width", "pairs", "optimal %", "mean gap",
                   "max gap", "worst pair", "seconds"});
  uint64_t CampaignPairs = 0;
  double CampaignSeconds = 0;
  for (const CampaignCellResult &Cell : Campaign.Cells) {
    const PrecisionReport &R = Cell.Precision;
    CampaignPairs += R.PairsChecked;
    CampaignSeconds += Cell.Seconds;
    Table.addRowOf(
        cellOpLabel(Cell.Cell), Cell.Cell.Width, R.PairsChecked,
        formatString("%.3f%%",
                     R.PairsChecked
                         ? 100.0 * static_cast<double>(R.optimalPairs()) /
                               static_cast<double>(R.PairsChecked)
                         : 0.0),
        formatString("%.4f", R.meanGap()), R.MaxGap,
        R.Worst ? R.Worst->toString(Cell.Cell.Width) : std::string("-"),
        NoTiming ? std::string("-") : formatString("%.3f", Cell.Seconds));
  }
  Table.printAligned(stdout);
  if (!NoTiming)
    std::printf("campaign: %" PRIu64 " pairs in %.3f s (%.1f Mpairs/s, "
                "--simd=%s)\n",
                CampaignPairs, CampaignSeconds,
                CampaignSeconds > 0
                    ? CampaignPairs / CampaignSeconds / 1e6
                    : 0.0,
                simdModeName(Simd));

  // The unary narrowing casts: one-axis exhaustive scans, measured inline
  // (no pair grid, so no campaign cell). Both are exactly optimal -- the
  // zero rows below are a measurement, not an assumption.
  std::printf("\nunary narrowing operators at width %u (exhaustive over "
              "all %" PRIu64 " well-formed tnums)\n\n",
              CastWidth, numWellFormedTnums(CastWidth));
  std::vector<UnaryRow> UnaryRows;
  for (unsigned Bytes = 1; Bytes * 8 < CastWidth; ++Bytes)
    UnaryRows.push_back(measureUnary(
        "cast", Bytes, CastWidth,
        [&](const Tnum &P) { return tnumCast(P, Bytes); },
        [&](uint64_t X) {
          return X & ((uint64_t(1) << (8 * Bytes)) - 1);
        }));
  for (unsigned Target : {1u, CastWidth / 2}) {
    UnaryRows.push_back(measureUnary(
        "truncate", Target, CastWidth,
        [&](const Tnum &P) { return tnumTruncate(P, Target); },
        [&](uint64_t X) { return X & ((uint64_t(1) << Target) - 1); }));
  }
  TextTable UnaryTable({"op", "param", "width", "tnums", "sum gap",
                        "max gap", "verdict"});
  for (const UnaryRow &Row : UnaryRows)
    UnaryTable.addRowOf(Row.Op, Row.Param, Row.Width, Row.Tnums, Row.SumGap,
                        Row.MaxGap,
                        Row.MaxGap == 0 ? "measured: optimal"
                                        : "measured: imprecise");
  UnaryTable.printAligned(stdout);
  std::printf("paper: truncation distributes over the tnum pair, so the "
              "narrowing casts are exactly optimal -- the atlas measures "
              "it rather than assuming it.\n");

  // Witness corpus: one worst-case pair per cell that has one (gap > 0),
  // in deterministic cell order. bench/ablation_mul --witness-corpus
  // replays the mul entries as its sample seeds.
  if (CorpusPath) {
    std::FILE *Corpus = std::fopen(CorpusPath, "w");
    if (!Corpus) {
      std::fprintf(stderr, "error: cannot write %s\n", CorpusPath);
      return 1;
    }
    std::fprintf(Corpus, "tnums-witness-corpus v1\n");
    unsigned Pairs = 0;
    for (const CampaignCellResult &Cell : Campaign.Cells) {
      if (!Cell.Precision.Worst)
        continue;
      const PrecisionWitness &W = *Cell.Precision.Worst;
      std::fprintf(Corpus,
                   "pair %s %s %u %" PRIx64 " %" PRIx64 " %" PRIx64
                   " %" PRIx64 " %u\n",
                   binaryOpName(Cell.Cell.Op),
                   mulAlgorithmName(Cell.Cell.Mul), Cell.Cell.Width,
                   W.P.value(), W.P.mask(), W.Q.value(), W.Q.mask(), W.Gap);
      ++Pairs;
    }
    std::fclose(Corpus);
    std::printf("\nwrote %s (%u worst-case witness pairs)\n", CorpusPath,
                Pairs);
  }

  //===--------------------------------------------------------------------===//
  // BENCH_atlas.json: every gap figure is exact cross-machine (the scans
  // are exhaustive and deterministic); campaign_pairs_per_s is the
  // machine-dependent perf number gate_atlas floors.
  //===--------------------------------------------------------------------===//
  if (JsonPath) {
    std::FILE *Json = std::fopen(JsonPath, "w");
    if (!Json) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
      return 1;
    }
    std::fprintf(Json,
                 "{\n"
                 "  \"bench\": \"precision_atlas\",\n"
                 "  \"build_info\": %s,\n"
                 "  \"width\": %u,\n"
                 "  \"shift_width\": %u,\n"
                 "  \"cast_width\": %u,\n"
                 "  \"jobs\": %u,\n"
                 "  \"simd\": \"%s\",\n"
                 "  \"campaign_pairs\": %" PRIu64 ",\n"
                 "  \"campaign_seconds\": %.6f,\n"
                 "  \"campaign_pairs_per_s\": %.3f,\n"
                 "  \"cells\": [\n",
                 buildInfoJson().c_str(), Width, ShiftWidth, CastWidth,
                 Sweep.NumThreads, simdModeName(Simd), CampaignPairs,
                 CampaignSeconds,
                 CampaignSeconds > 0 ? CampaignPairs / CampaignSeconds
                                     : 0.0);
    for (size_t I = 0; I != Campaign.Cells.size(); ++I) {
      const CampaignCellResult &Cell = Campaign.Cells[I];
      const PrecisionReport &R = Cell.Precision;
      // Cumulative gap counts 0..MaxGap: an exact-integer CDF (the last
      // entry equals pairs), compact even at width 64's 65 buckets.
      std::string Cdf = "[";
      uint64_t Running = 0;
      for (unsigned Gap = 0; Gap <= R.MaxGap; ++Gap) {
        Running += R.Buckets[Gap];
        Cdf += formatString("%s%" PRIu64, Gap ? ", " : "", Running);
      }
      Cdf += "]";
      std::fprintf(
          Json,
          "    {\"op\": \"%s\", \"algorithm\": \"%s\", \"width\": %u, "
          "\"pairs\": %" PRIu64 ", \"sum_gap\": %" PRIu64
          ", \"max_gap\": %u, \"mean_gap\": %.6f, \"gap_cdf\": %s, "
          "\"witness\": %s}%s\n",
          binaryOpName(Cell.Cell.Op), mulAlgorithmName(Cell.Cell.Mul),
          Cell.Cell.Width, R.PairsChecked, R.SumGap, R.MaxGap, R.meanGap(),
          Cdf.c_str(),
          R.Worst ? ("\"" +
                     jsonEscape(R.Worst->toString(Cell.Cell.Width)) + "\"")
                        .c_str()
                  : "null",
          I + 1 == Campaign.Cells.size() ? "" : ",");
    }
    std::fprintf(Json, "  ],\n  \"cast\": [\n");
    for (size_t I = 0; I != UnaryRows.size(); ++I) {
      const UnaryRow &Row = UnaryRows[I];
      std::fprintf(Json,
                   "    {\"op\": \"%s\", \"param\": %u, \"width\": %u, "
                   "\"tnums\": %" PRIu64 ", \"sum_gap\": %" PRIu64
                   ", \"max_gap\": %u}%s\n",
                   Row.Op, Row.Param, Row.Width, Row.Tnums, Row.SumGap,
                   Row.MaxGap, I + 1 == UnaryRows.size() ? "" : ",");
    }
    if (UseMetrics) {
      MetricsSnapshot Snapshot = MetricsRegistry::instance().snapshot();
      std::fprintf(Json, "  ],\n  \"metrics\": %s\n}\n",
                   Snapshot.toJson().c_str());
    } else {
      std::fprintf(Json, "  ]\n}\n");
    }
    std::fclose(Json);
    std::printf("\nwrote %s\n", JsonPath);
  }
  return 0;
}
