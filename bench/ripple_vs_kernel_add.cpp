//===- bench/ripple_vs_kernel_add.cpp - Quantify the §II speed claim ------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §II asserts that the only prior abstract arithmetic in this
/// domain (Regehr & Duongsaa's ripple-carry operators) runs in O(n) and is
/// "much slower" than the kernel's O(1) tnum_add/tnum_sub. This harness
/// quantifies that claim:
///
///   * cycle cost of rippleAdd/rippleSub vs tnum_add/tnum_sub at 64 bits
///     (and the O(n) scaling across widths);
///   * an exhaustive precision comparison -- which finds that the
///     per-bit-optimal ripple composition produces *identical* outputs to
///     the (provably optimal) kernel algorithms at every checked width, so
///     the kernel's contribution over the prior art in add/sub is purely
///     the O(1) runtime.
///
/// Usage: ripple_vs_kernel_add [--pairs N] [--width N]
///
//===----------------------------------------------------------------------===//

#include "support/CycleTimer.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumOps.h"
#include "verify/SoundnessChecker.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tnums;

int main(int Argc, char **Argv) {
  uint64_t Pairs = 200000;
  unsigned PrecisionWidth = 6;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--pairs") == 0 && I + 1 < Argc)
      Pairs = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--width") == 0 && I + 1 < Argc)
      PrecisionWidth = static_cast<unsigned>(std::atoi(Argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--pairs N] [--width N]\n", Argv[0]);
      return 1;
    }
  }

  //===--------------------------------------------------------------------===//
  std::printf("[a] cycle cost at 64 bits (%llu random pairs, min of 10 "
              "trials, unit: %s)\n\n",
              static_cast<unsigned long long>(Pairs), cycleCounterUnit());
  {
    struct Row {
      const char *Name;
      Tnum (*Fn)(Tnum, Tnum);
      SampleSummary Cycles;
    };
    Row Rows[] = {
        {"tnum_add (kernel, O(1))", +[](Tnum P, Tnum Q) { return tnumAdd(P, Q); }, {}},
        {"ripple_add (R&D, O(n))", +[](Tnum P, Tnum Q) { return rippleAdd(P, Q, 64); }, {}},
        {"tnum_sub (kernel, O(1))", +[](Tnum P, Tnum Q) { return tnumSub(P, Q); }, {}},
        {"ripple_sub (R&D, O(n))", +[](Tnum P, Tnum Q) { return rippleSub(P, Q, 64); }, {}},
    };
    Xoshiro256 Rng(0xADD);
    uint64_t Sink = 0;
    for (uint64_t I = 0; I != Pairs; ++I) {
      Tnum P = randomWellFormedTnum(Rng, 64);
      Tnum Q = randomWellFormedTnum(Rng, 64);
      for (Row &R : Rows)
        R.Cycles.add(minCyclesOverTrials(
            10, [&] { return R.Fn(P, Q).value(); }, Sink));
    }
    (void)Sink;
    TextTable Table({"algorithm", "mean", "p50", "slowdown vs kernel"});
    double KernelAdd = Rows[0].Cycles.mean();
    double KernelSub = Rows[2].Cycles.mean();
    for (Row &R : Rows) {
      double Base = (&R - Rows) < 2 ? KernelAdd : KernelSub;
      Table.addRowOf(R.Name, formatString("%.1f", R.Cycles.mean()),
                     formatString("%.0f", R.Cycles.percentile(50)),
                     formatString("%.1fx", R.Cycles.mean() / Base));
    }
    Table.printAligned(stdout);
  }

  //===--------------------------------------------------------------------===//
  std::printf("\n[b] O(n) scaling of the ripple operators (mean cycles, "
              "10k pairs per width)\n\n");
  {
    TextTable Table({"width", "ripple_add", "tnum_add"});
    for (unsigned Width : {8u, 16u, 32u, 64u}) {
      Xoshiro256 Rng(0x5CA1E + Width);
      SampleSummary Ripple, Kernel;
      uint64_t Sink = 0;
      for (uint64_t I = 0; I != 10000; ++I) {
        Tnum P = randomWellFormedTnum(Rng, Width);
        Tnum Q = randomWellFormedTnum(Rng, Width);
        Ripple.add(minCyclesOverTrials(
            10, [&] { return rippleAdd(P, Q, Width).value(); }, Sink));
        Kernel.add(minCyclesOverTrials(
            10, [&] { return tnumAdd(P, Q).value(); }, Sink));
      }
      (void)Sink;
      Table.addRowOf(Width, formatString("%.1f", Ripple.mean()),
                     formatString("%.1f", Kernel.mean()));
    }
    Table.printAligned(stdout);
    std::printf("ripple cost grows linearly with the width; the kernel "
                "algorithm is flat (§II's \"remarkable\" O(1)).\n");
  }

  //===--------------------------------------------------------------------===//
  std::printf("\n[c] exhaustive output comparison at width %u\n\n",
              PrecisionWidth);
  {
    uint64_t Equal = 0;
    uint64_t Different = 0;
    std::vector<Tnum> Universe = allWellFormedTnums(PrecisionWidth);
    for (const Tnum &P : Universe) {
      for (const Tnum &Q : Universe) {
        bool AddSame = rippleAdd(P, Q, PrecisionWidth) ==
                       tnumTruncate(tnumAdd(P, Q), PrecisionWidth);
        bool SubSame = rippleSub(P, Q, PrecisionWidth) ==
                       tnumTruncate(tnumSub(P, Q), PrecisionWidth);
        if (AddSame && SubSame)
          ++Equal;
        else
          ++Different;
      }
    }
    std::printf("pairs with identical add AND sub outputs: %llu / %llu\n",
                static_cast<unsigned long long>(Equal),
                static_cast<unsigned long long>(Equal + Different));
    std::printf("finding: the per-bit-optimal ripple composition is "
                "output-equivalent to the kernel's optimal operators -- "
                "the kernel's win on add/sub is purely the O(1) runtime.\n");
  }
  return 0;
}
