#!/usr/bin/env python3
"""CI audit for the daemon's observability artifacts.

Takes the three artifacts one metrics-enabled tnumsd run leaves behind --
the Prometheus-style exposition file (--metrics-text), the request
lifecycle event log (--event-log), and the driving bench's JSON -- and
cross-checks them until they account for 100% of the traffic:

 * The exposition parses: every non-comment line is `name value` or
   `name{labels} value` with a numeric value, and the tnumsd request
   series are present.

 * The event log is complete: every line is one JSON object; grouped by
   the (conn, req) correlation key, every request starts with
   ``received`` and ends with exactly one terminal event -- ``replied``
   after the full received -> admitted -> queued -> analyzing -> replied
   phase sequence, or ``busy`` with no admission in between. No request
   vanishes mid-lifecycle.

 * The three sources agree: the exposition's received / verdict / busy
   counters equal the event log's per-terminal counts, and the replied
   count equals the bench's total_verdicts (the daemon served exactly
   the bench's workload, nothing silently dropped or double-counted).

Exit status: 0 ok, 1 audit failure, 2 usage/IO error.
"""

import argparse
import json
import sys

LIFECYCLE = ["received", "admitted", "queued", "analyzing", "replied"]


def fail(failures):
    print("metrics audit: FAILED:")
    for failure in failures:
        print(f"  {failure}")
    return 1


def parse_exposition(path, failures):
    """Returns {full_series_name: value}; malformed lines -> failures."""
    series = {}
    with open(path) as fh:
        for number, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.rsplit(" ", 1)
            if len(parts) != 2:
                failures.append(f"exposition line {number} malformed: {line!r}")
                continue
            name, value = parts
            try:
                series[name] = float(value)
            except ValueError:
                failures.append(
                    f"exposition line {number} non-numeric value: {line!r}"
                )
    return series


def parse_event_log(path, failures):
    """Returns {(conn, req): [event, ...]} in file (= wall clock) order."""
    lifecycles = {}
    with open(path) as fh:
        for number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as err:
                failures.append(f"event log line {number}: bad JSON: {err}")
                continue
            for key in ("ts_ms", "event", "conn", "req", "tenant"):
                if key not in event:
                    failures.append(
                        f"event log line {number} lacks {key!r}: {line!r}"
                    )
            lifecycles.setdefault(
                (event.get("conn"), event.get("req")), []
            ).append(event.get("event"))
    return lifecycles


def audit_lifecycles(lifecycles, failures):
    """Every request: one terminal, full phase order. Returns counts."""
    replied = rejected = 0
    for key, events in sorted(lifecycles.items()):
        label = f"request conn={key[0]} req={key[1]}"
        if events[0] != "received":
            failures.append(f"{label} does not start with received: {events}")
            continue
        if events[-1] == "replied":
            replied += 1
            if events != LIFECYCLE:
                failures.append(
                    f"{label} replied without the full phase sequence: "
                    f"{events}"
                )
        elif events[-1] == "busy":
            rejected += 1
            if events != ["received", "busy"]:
                failures.append(
                    f"{label} was rejected but ran other phases: {events}"
                )
        else:
            failures.append(f"{label} has no terminal event: {events}")
    return replied, rejected


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--exposition", required=True,
                        help="--metrics-text file the daemon maintained")
    parser.add_argument("--event-log", required=True,
                        help="--event-log JSONL the daemon wrote")
    parser.add_argument("--bench", required=True,
                        help="daemon_throughput --json output for the run")
    args = parser.parse_args()

    failures = []
    try:
        series = parse_exposition(args.exposition, failures)
        lifecycles = parse_event_log(args.event_log, failures)
        with open(args.bench) as fh:
            bench = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    replied, rejected = audit_lifecycles(lifecycles, failures)
    received = len(lifecycles)
    print(
        f"metrics audit: event log holds {received} requests "
        f"({replied} replied, {rejected} busy-rejected)"
    )

    # The exposition must carry the request series and agree with the log.
    def counter(name, variants):
        total = 0.0
        found = False
        for variant in variants:
            if variant in series:
                found = True
                total += series[variant]
        if not found:
            failures.append(f"exposition lacks every {name} series")
        return total

    expo_received = counter(
        "received", ["tnumsd_requests_received_total"]
    )
    expo_verdicts = counter(
        "verdicts",
        ['tnumsd_verdicts_total{cache="hit"}',
         'tnumsd_verdicts_total{cache="miss"}'],
    )
    expo_busy = sum(
        value for name, value in series.items()
        if name.startswith("tnumsd_busy_total")
    )
    checks = [
        ("exposition received vs event log", expo_received, received),
        ("exposition verdicts vs event log replied", expo_verdicts, replied),
        ("exposition busy vs event log rejected", expo_busy, rejected),
        ("event log received vs replied+busy", received, replied + rejected),
        ("event log replied vs bench total_verdicts", replied,
         bench.get("total_verdicts")),
    ]
    for label, lhs, rhs in checks:
        if lhs != rhs:
            failures.append(f"{label}: {lhs} != {rhs}")

    if failures:
        return fail(failures)
    print(
        "metrics audit: ok (exposition parses; exposition, event log, and "
        "bench totals account for 100% of the traffic)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
