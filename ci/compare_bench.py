#!/usr/bin/env python3
"""CI perf-regression gate for BENCH_verifier.json.

Compares the verifier-throughput numbers a CI run just produced against
the committed snapshot in bench/baselines/. Two classes of check:

 * Verdict identity (exact): the generator is seeded and every verdict is
   a pure function of its program, so accepted/rejected counts, the
   verdict fingerprint, insn visits, and the determinism flag must match
   the baseline bit for bit on ANY machine. A mismatch means the analyzer
   or generator semantics changed -- refresh the baseline deliberately
   (rerun the bench with the baseline's command line and commit the new
   JSON) or find the bug.

 * Throughput (generous tolerance): CI runners vary wildly, so the gate
   only fails when single-job programs/s falls below ``--min-throughput-
   ratio`` (default 0.4) of the baseline -- a 2.5x slowdown. That catches
   accidental algorithmic regressions (e.g. losing the per-worker engine
   reuse) while shrugging off runner noise. Tune the ratio per workflow
   if a runner class proves noisier.

Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot load {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_verifier.json from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.4,
        help="fail if jobs=1 programs/s drops below this fraction of the "
        "baseline (default %(default)s; generous on purpose)",
    )
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    failures = []

    def same(key):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )

    # The workload must be the same experiment before numbers compare.
    for key in ("bench", "seed", "profile", "programs", "mem_size"):
        same(key)
    if failures:
        print("bench gate: baseline and run are DIFFERENT experiments:")
        for failure in failures:
            print(f"  {failure}")
        print(
            "refresh bench/baselines/ with the workflow's exact bench "
            "command if the workload change was intentional"
        )
        return 1

    # Machine-independent semantics: exact.
    for key in (
        "accepted",
        "rejected_structural",
        "rejected_semantic",
        "insn_visits",
        "dedup_hits",
        "verdict_fingerprint",
        "deterministic",
    ):
        same(key)

    # Machine-dependent throughput: generous floor on the jobs=1 point
    # (every run records it; higher job counts depend on runner cores).
    def single_job_rate(data, name):
        for point in data.get("scaling", []):
            if point.get("jobs") == 1:
                return point.get("programs_per_s", 0.0)
        failures.append(f"{name} has no jobs=1 scaling point")
        return None

    current_rate = single_job_rate(current, "current run")
    baseline_rate = single_job_rate(baseline, "baseline")
    if current_rate is not None and baseline_rate:
        ratio = current_rate / baseline_rate
        floor = args.min_throughput_ratio
        print(
            f"bench gate: jobs=1 throughput {current_rate:.0f} programs/s "
            f"vs baseline {baseline_rate:.0f} ({ratio:.2f}x, floor {floor})"
        )
        if ratio < floor:
            failures.append(
                f"jobs=1 throughput regressed to {ratio:.2f}x of baseline "
                f"(floor {floor})"
            )

    if failures:
        print("bench gate: REGRESSION detected:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("bench gate: ok (verdicts identical, throughput within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
