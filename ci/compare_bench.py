#!/usr/bin/env python3
"""CI perf-regression gate for the committed bench baselines.

Compares the JSON a CI bench run just produced against the committed
snapshot in bench/baselines/. The gate dispatches on the "bench" key and
applies two classes of check to each harness:

 * Verdict identity (exact): the generator is seeded and every verdict is
   a pure function of its program, so accepted/rejected counts, the
   verdict fingerprint, and the determinism flags must match the baseline
   bit for bit on ANY machine. A mismatch means the analyzer, generator,
   or wire-protocol semantics changed -- refresh the baseline deliberately
   (rerun the bench with the baseline's command line and commit the new
   JSON) or find the bug.

 * Performance (generous tolerance): CI runners vary wildly, so the gate
   only fails when throughput falls below ``--min-throughput-ratio``
   (default 0.4) of the baseline -- a 2.5x slowdown -- or, for the daemon
   bench, when p99 latency balloons past the reciprocal multiple of the
   baseline. That catches accidental algorithmic regressions (losing
   per-worker engine reuse, an accidental O(clients) scan in the event
   loop) while shrugging off runner noise. Tune the ratio per workflow if
   a runner class proves noisier.

Supported "bench" values:

 * ``verifier_throughput`` (also the default when the key is absent, for
   pre-daemon baselines): exact verdict counts + jobs=1 scaling floor.
 * ``daemon_throughput``: exact fingerprint/identity flags, p50/p99
   latency sanity (present, positive, ordered), saturation-throughput
   floor and p99 ceiling.
 * ``interpreter_throughput``: exact run-outcome counts + result
   fingerprint, the decoded-vs-legacy identity flag must be true, and --
   on perf-gated legs only -- a floor on the decoded executor's speedup
   over the legacy interpreter. The speedup is a same-process ratio, so
   unlike absolute throughput it barely depends on the runner class.

Top-level keys the gate does not recognize (e.g. the "build_info" and
"metrics" observability sections, or future additions) are TOLERATED in
both files and listed in the output, so baselines and runs from
different bench versions keep comparing on the fields they share.

Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot load {path}: {err}", file=sys.stderr)
        sys.exit(2)


def check_workload(current, baseline, keys, failures):
    """The workload must be the same experiment before numbers compare."""
    for key in keys:
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )
    if failures:
        print("bench gate: baseline and run are DIFFERENT experiments:")
        for failure in failures:
            print(f"  {failure}")
        print(
            "refresh bench/baselines/ with the workflow's exact bench "
            "command if the workload change was intentional"
        )
    return not failures


def gate_verifier(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        ("bench", "seed", "profile", "programs", "mem_size"),
        failures,
    ):
        return failures

    # Machine-independent semantics: exact.
    for key in (
        "accepted",
        "rejected_structural",
        "rejected_semantic",
        "insn_visits",
        "dedup_hits",
        "verdict_fingerprint",
        "deterministic",
    ):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )

    # Machine-dependent throughput: generous floor on the jobs=1 point
    # (every run records it; higher job counts depend on runner cores).
    def single_job_rate(data, name):
        for point in data.get("scaling", []):
            if point.get("jobs") == 1:
                return point.get("programs_per_s", 0.0)
        failures.append(f"{name} has no jobs=1 scaling point")
        return None

    current_rate = single_job_rate(current, "current run")
    baseline_rate = single_job_rate(baseline, "baseline")
    if current_rate is not None and baseline_rate:
        ratio = current_rate / baseline_rate
        floor = args.min_throughput_ratio
        print(
            f"bench gate: jobs=1 throughput {current_rate:.0f} programs/s "
            f"vs baseline {baseline_rate:.0f} ({ratio:.2f}x, floor {floor})"
        )
        if ratio < floor:
            failures.append(
                f"jobs=1 throughput regressed to {ratio:.2f}x of baseline "
                f"(floor {floor})"
            )
    return failures


def gate_daemon(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        ("bench", "seed", "profile", "clients", "programs", "mem_size"),
        failures,
    ):
        return failures

    # Machine-independent semantics: exact. The fingerprint covers every
    # verdict field; deterministic/matches_in_process are the bench's own
    # cross-client and daemon-vs-in-process identity checks and must hold
    # on every machine, not merely match the baseline.
    for key in ("total_verdicts", "verdict_fingerprint"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )
    for key in ("deterministic", "matches_in_process"):
        if current.get(key) is not True:
            failures.append(f"{key} is {current.get(key)!r}, expected true")

    # Latency sanity: the fields must exist, be positive, and be ordered.
    # (A zero p50 means the bench stopped measuring; a p50 above p99 means
    # the percentile math broke.)
    p50 = current.get("latency_p50_ms")
    p99 = current.get("latency_p99_ms")
    if not isinstance(p50, (int, float)) or p50 <= 0:
        failures.append(f"latency_p50_ms is {p50!r}, expected > 0")
    if not isinstance(p99, (int, float)) or p99 <= 0:
        failures.append(f"latency_p99_ms is {p99!r}, expected > 0")
    if (
        isinstance(p50, (int, float))
        and isinstance(p99, (int, float))
        and p50 > p99
    ):
        failures.append(f"latency_p50_ms {p50} > latency_p99_ms {p99}")

    # Machine-dependent perf, generous in both directions: saturation
    # throughput may not fall below the floor fraction of the baseline,
    # and p99 latency may not balloon past the reciprocal multiple.
    floor = args.min_throughput_ratio
    current_rate = current.get("verdicts_per_s", 0.0)
    baseline_rate = baseline.get("verdicts_per_s", 0.0)
    if baseline_rate and floor > 0:
        ratio = current_rate / baseline_rate
        print(
            f"bench gate: saturation throughput {current_rate:.0f} "
            f"verdicts/s vs baseline {baseline_rate:.0f} "
            f"({ratio:.2f}x, floor {floor})"
        )
        if ratio < floor:
            failures.append(
                f"saturation throughput regressed to {ratio:.2f}x of "
                f"baseline (floor {floor})"
            )
    baseline_p99 = baseline.get("latency_p99_ms", 0.0)
    if baseline_p99 and floor > 0 and isinstance(p99, (int, float)):
        ceiling = baseline_p99 / floor
        print(
            f"bench gate: p99 latency {p99:.3f} ms vs baseline "
            f"{baseline_p99:.3f} (ceiling {ceiling:.3f})"
        )
        if p99 > ceiling:
            failures.append(
                f"p99 latency regressed to {p99:.3f} ms "
                f"(ceiling {ceiling:.3f} = baseline / {floor})"
            )
    return failures


def gate_interp(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        (
            "bench",
            "seed",
            "profile",
            "programs",
            "runs_per_program",
            "mem_size",
            "step_limit",
            "reps",
        ),
        failures,
    ):
        return failures

    # Machine-independent semantics: exact. The fingerprint hashes every
    # run's full outcome (status, return value, steps, final registers),
    # and ``identical`` is the bench's own decoded-vs-legacy bit-identity
    # check -- it must hold on every machine, not merely match the
    # baseline.
    for key in ("ok_runs", "trap_runs", "step_limit_runs",
                "result_fingerprint"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )
    if current.get("identical") is not True:
        failures.append(
            f"identical is {current.get('identical')!r}, expected true "
            "(decoded executor diverged from the legacy interpreter)"
        )

    # Machine-dependent perf: the decoded executor must stay meaningfully
    # faster than the legacy interpreter. A within-process ratio, so the
    # floor can be much tighter than an absolute-throughput one; still
    # skipped entirely on debug/sanitizer legs (ratio 0) where neither
    # engine is optimized. Threaded dispatch is a compiler feature
    # (computed goto), so the floor adapts when only the switch engine is
    # available.
    if args.min_throughput_ratio > 0:
        best = current.get("best_speedup", 0.0)
        threaded = current.get("threaded_available")
        floor = 5.0 if threaded else 2.5
        print(
            f"bench gate: decoded-executor best speedup {best:.3f}x vs "
            f"legacy (floor {floor}, threaded dispatch "
            f"{'available' if threaded else 'unavailable'})"
        )
        if not isinstance(best, (int, float)) or best < floor:
            failures.append(
                f"decoded-executor speedup {best!r} fell below the "
                f"{floor}x floor"
            )
    return failures


GATES = {
    "verifier_throughput": gate_verifier,
    "daemon_throughput": gate_daemon,
    "interpreter_throughput": gate_interp,
}

# Every top-level key each gate reads. Anything else in either file is
# tolerated -- compared by no check -- and reported, so a run from a newer
# bench (say, one embedding a "metrics" section) still gates against an
# older baseline on the fields both understand.
KNOWN_KEYS = {
    "verifier_throughput": {
        "bench", "seed", "profile", "programs", "mem_size", "accepted",
        "rejected_structural", "rejected_semantic", "insn_visits",
        "dedup_hits", "verdict_fingerprint", "deterministic", "scaling",
    },
    "daemon_throughput": {
        "bench", "seed", "profile", "clients", "programs", "mem_size",
        "total_verdicts", "verdict_fingerprint", "deterministic",
        "matches_in_process", "latency_p50_ms", "latency_p99_ms",
        "verdicts_per_s", "seconds", "cache_hits", "analyses_delta",
        "cache_hits_delta", "busy_delta",
    },
    "interpreter_throughput": {
        "bench", "seed", "profile", "programs", "runs_per_program",
        "mem_size", "step_limit", "reps", "ok_runs", "trap_runs",
        "step_limit_runs", "result_fingerprint", "identical",
        "threaded_available", "best_speedup", "engines",
    },
}


def report_tolerated_keys(name, current, baseline):
    """Lists top-level keys no check reads, without failing on them."""
    known = KNOWN_KEYS.get(name, set())
    for label, data in (("current run", current), ("baseline", baseline)):
        extra = sorted(set(data) - known)
        if extra:
            print(
                f"bench gate: tolerating unknown top-level keys in "
                f"{label}: {', '.join(extra)}"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="bench JSON from this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.4,
        help="fail if throughput drops below this fraction of the baseline "
        "(and, for the daemon bench, if p99 latency exceeds baseline "
        "divided by it); default %(default)s, generous on purpose; 0 "
        "disables the perf checks (debug/sanitizer legs)",
    )
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    name = baseline.get("bench", "verifier_throughput")
    gate = GATES.get(name)
    if gate is None:
        print(f"error: no gate for bench {name!r}", file=sys.stderr)
        return 2

    report_tolerated_keys(name, current, baseline)
    failures = gate(current, baseline, args)
    if failures:
        print("bench gate: REGRESSION detected:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("bench gate: ok (verdicts identical, performance within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
