#!/usr/bin/env python3
"""CI perf-regression gate for the committed bench baselines.

Compares the JSON a CI bench run just produced against the committed
snapshot in bench/baselines/. The gate dispatches on the "bench" key and
applies two classes of check to each harness:

 * Verdict identity (exact): the generator is seeded and every verdict is
   a pure function of its program, so accepted/rejected counts, the
   verdict fingerprint, and the determinism flags must match the baseline
   bit for bit on ANY machine. A mismatch means the analyzer, generator,
   or wire-protocol semantics changed -- refresh the baseline deliberately
   (rerun the bench with the baseline's command line and commit the new
   JSON) or find the bug.

 * Performance (generous tolerance): CI runners vary wildly, so the gate
   only fails when throughput falls below ``--min-throughput-ratio``
   (default 0.4) of the baseline -- a 2.5x slowdown -- or, for the daemon
   bench, when p99 latency balloons past the reciprocal multiple of the
   baseline. That catches accidental algorithmic regressions (losing
   per-worker engine reuse, an accidental O(clients) scan in the event
   loop) while shrugging off runner noise. Tune the ratio per workflow if
   a runner class proves noisier.

Supported "bench" values:

 * ``verifier_throughput`` (also the default when the key is absent, for
   pre-daemon baselines): exact verdict counts + jobs=1 scaling floor.
 * ``daemon_throughput``: exact fingerprint/identity flags, p50/p99
   latency sanity (present, positive, ordered), saturation-throughput
   floor and p99 ceiling.
 * ``interpreter_throughput``: exact run-outcome counts + result
   fingerprint, the decoded-vs-legacy identity flag must be true, and --
   on perf-gated legs only -- a floor on the decoded executor's speedup
   over the legacy interpreter. The speedup is a same-process ratio, so
   unlike absolute throughput it barely depends on the runner class.
 * ``mul_cycles`` (bench/fig5_mul_cycles --json): algorithm roster must
   match the baseline; our_mul's speedup over kern_mul (a within-process
   ratio of two algorithms timed back to back on identical inputs) must
   stay above both an absolute floor of 1.0 and a fraction of the
   baseline's speedup; per-algorithm mean cycles get a generous ceiling,
   applied only when run and baseline share a cycle-counter unit.
 * ``sweep_campaign`` (bench/soundness_verification --json): every
   property must hold, and the per-algorithm pairs/evals totals are
   seeded exact counts that must match the baseline bit for bit; the
   campaign-wide Mevals/s gets the generous throughput floor. The
   resolved simd kernel tier is machine-dependent and only reported.
 * ``precision_atlas`` (bench/precision_atlas --json): the gap figures
   are exhaustive deterministic measurements, so every per-cell field
   (pairs, sum_gap, max_gap, gap_cdf, witness) and every unary cast row
   must match the baseline bit for bit on any machine and any SIMD tier;
   campaign pairs/s gets the generous throughput floor.
 * ``gbench_ops`` (bench/gbench_ops --json): the benchmark roster must
   match the baseline exactly; each benchmark's ns/op gets a generous
   ceiling of baseline divided by the throughput ratio.

Trend mode (``--trend``): instead of one current-vs-baseline gate, pass
the SAME bench's JSON from consecutive CI runs in chronological order
(oldest first, the current run last). The gate tracks each bench's
primary metric (verifier jobs=1 programs/s, daemon verdicts/s,
interpreter best speedup, sweep Mevals/s, mul_cycles speedup, atlas
pairs/s, gbench_ops our_mul ops/s) and fails
only on a sustained slide: ``--trend-window`` (default 3) consecutive
run-over-run drops whose cumulative loss exceeds ``--trend-tolerance``
(default 5%). One noisy runner cannot trip it; a slow leak across a
stack of PRs -- each individually inside the generous single-run floor --
can.

Top-level keys the gate does not recognize (e.g. the "build_info" and
"metrics" observability sections, or future additions) are TOLERATED in
both files and listed in the output, so baselines and runs from
different bench versions keep comparing on the fields they share.

Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot load {path}: {err}", file=sys.stderr)
        sys.exit(2)


def check_workload(current, baseline, keys, failures):
    """The workload must be the same experiment before numbers compare."""
    for key in keys:
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )
    if failures:
        print("bench gate: baseline and run are DIFFERENT experiments:")
        for failure in failures:
            print(f"  {failure}")
        print(
            "refresh bench/baselines/ with the workflow's exact bench "
            "command if the workload change was intentional"
        )
    return not failures


def gate_verifier(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        ("bench", "seed", "profile", "programs", "mem_size"),
        failures,
    ):
        return failures

    # Machine-independent semantics: exact.
    for key in (
        "accepted",
        "rejected_structural",
        "rejected_semantic",
        "insn_visits",
        "dedup_hits",
        "verdict_fingerprint",
        "deterministic",
    ):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )

    # Machine-dependent throughput: generous floor on the jobs=1 point
    # (every run records it; higher job counts depend on runner cores).
    def single_job_rate(data, name):
        for point in data.get("scaling", []):
            if point.get("jobs") == 1:
                return point.get("programs_per_s", 0.0)
        failures.append(f"{name} has no jobs=1 scaling point")
        return None

    current_rate = single_job_rate(current, "current run")
    baseline_rate = single_job_rate(baseline, "baseline")
    if current_rate is not None and baseline_rate:
        ratio = current_rate / baseline_rate
        floor = args.min_throughput_ratio
        print(
            f"bench gate: jobs=1 throughput {current_rate:.0f} programs/s "
            f"vs baseline {baseline_rate:.0f} ({ratio:.2f}x, floor {floor})"
        )
        if ratio < floor:
            failures.append(
                f"jobs=1 throughput regressed to {ratio:.2f}x of baseline "
                f"(floor {floor})"
            )
    return failures


def gate_daemon(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        ("bench", "seed", "profile", "clients", "programs", "mem_size"),
        failures,
    ):
        return failures

    # Machine-independent semantics: exact. The fingerprint covers every
    # verdict field; deterministic/matches_in_process are the bench's own
    # cross-client and daemon-vs-in-process identity checks and must hold
    # on every machine, not merely match the baseline.
    for key in ("total_verdicts", "verdict_fingerprint"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )
    for key in ("deterministic", "matches_in_process"):
        if current.get(key) is not True:
            failures.append(f"{key} is {current.get(key)!r}, expected true")

    # Latency sanity: the fields must exist, be positive, and be ordered.
    # (A zero p50 means the bench stopped measuring; a p50 above p99 means
    # the percentile math broke.)
    p50 = current.get("latency_p50_ms")
    p99 = current.get("latency_p99_ms")
    if not isinstance(p50, (int, float)) or p50 <= 0:
        failures.append(f"latency_p50_ms is {p50!r}, expected > 0")
    if not isinstance(p99, (int, float)) or p99 <= 0:
        failures.append(f"latency_p99_ms is {p99!r}, expected > 0")
    if (
        isinstance(p50, (int, float))
        and isinstance(p99, (int, float))
        and p50 > p99
    ):
        failures.append(f"latency_p50_ms {p50} > latency_p99_ms {p99}")

    # Machine-dependent perf, generous in both directions: saturation
    # throughput may not fall below the floor fraction of the baseline,
    # and p99 latency may not balloon past the reciprocal multiple.
    floor = args.min_throughput_ratio
    current_rate = current.get("verdicts_per_s", 0.0)
    baseline_rate = baseline.get("verdicts_per_s", 0.0)
    if baseline_rate and floor > 0:
        ratio = current_rate / baseline_rate
        print(
            f"bench gate: saturation throughput {current_rate:.0f} "
            f"verdicts/s vs baseline {baseline_rate:.0f} "
            f"({ratio:.2f}x, floor {floor})"
        )
        if ratio < floor:
            failures.append(
                f"saturation throughput regressed to {ratio:.2f}x of "
                f"baseline (floor {floor})"
            )
    baseline_p99 = baseline.get("latency_p99_ms", 0.0)
    if baseline_p99 and floor > 0 and isinstance(p99, (int, float)):
        ceiling = baseline_p99 / floor
        print(
            f"bench gate: p99 latency {p99:.3f} ms vs baseline "
            f"{baseline_p99:.3f} (ceiling {ceiling:.3f})"
        )
        if p99 > ceiling:
            failures.append(
                f"p99 latency regressed to {p99:.3f} ms "
                f"(ceiling {ceiling:.3f} = baseline / {floor})"
            )
    return failures


def gate_interp(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        (
            "bench",
            "seed",
            "profile",
            "programs",
            "runs_per_program",
            "mem_size",
            "step_limit",
            "reps",
        ),
        failures,
    ):
        return failures

    # Machine-independent semantics: exact. The fingerprint hashes every
    # run's full outcome (status, return value, steps, final registers),
    # and ``identical`` is the bench's own decoded-vs-legacy bit-identity
    # check -- it must hold on every machine, not merely match the
    # baseline.
    for key in ("ok_runs", "trap_runs", "step_limit_runs",
                "result_fingerprint"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"{key}: current {current.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )
    if current.get("identical") is not True:
        failures.append(
            f"identical is {current.get('identical')!r}, expected true "
            "(decoded executor diverged from the legacy interpreter)"
        )

    # Machine-dependent perf: the decoded executor must stay meaningfully
    # faster than the legacy interpreter. A within-process ratio, so the
    # floor can be much tighter than an absolute-throughput one; still
    # skipped entirely on debug/sanitizer legs (ratio 0) where neither
    # engine is optimized. Threaded dispatch is a compiler feature
    # (computed goto), so the floor adapts when only the switch engine is
    # available.
    if args.min_throughput_ratio > 0:
        best = current.get("best_speedup", 0.0)
        threaded = current.get("threaded_available")
        floor = 5.0 if threaded else 2.5
        print(
            f"bench gate: decoded-executor best speedup {best:.3f}x vs "
            f"legacy (floor {floor}, threaded dispatch "
            f"{'available' if threaded else 'unavailable'})"
        )
        if not isinstance(best, (int, float)) or best < floor:
            failures.append(
                f"decoded-executor speedup {best!r} fell below the "
                f"{floor}x floor"
            )
    return failures


def gate_cycles(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        ("bench", "pairs", "trials", "low_bits"),
        failures,
    ):
        return failures

    def by_name(data):
        return {a.get("name"): a for a in data.get("algorithms", [])}

    current_algs = by_name(current)
    baseline_algs = by_name(baseline)
    if set(current_algs) != set(baseline_algs):
        failures.append(
            f"algorithm roster changed: current {sorted(current_algs)} != "
            f"baseline {sorted(baseline_algs)}"
        )
        return failures

    if args.min_throughput_ratio <= 0:
        return failures

    # The headline claim of the paper's Figure 5: our_mul beats kern_mul.
    # A within-process ratio, so it gets both an absolute floor (never
    # slower than kern_mul) and a baseline-relative one.
    floor = max(1.0, baseline.get("speedup_our_vs_kern", 0.0) * 0.7)
    speedup = current.get("speedup_our_vs_kern", 0.0)
    print(
        f"bench gate: our_mul speedup over kern_mul {speedup:.3f}x vs "
        f"baseline {baseline.get('speedup_our_vs_kern', 0.0):.3f}x "
        f"(floor {floor:.3f})"
    )
    if not isinstance(speedup, (int, float)) or speedup < floor:
        failures.append(
            f"our_mul speedup over kern_mul {speedup!r} fell below the "
            f"{floor:.3f}x floor"
        )

    # Absolute cycle ceilings only compare like with like: a runner whose
    # cycle counter fell back to a different unit cannot be gated on
    # magnitudes.
    if current.get("unit") == baseline.get("unit"):
        for name, base_alg in baseline_algs.items():
            base_mean = base_alg.get("mean", 0.0)
            cur_mean = current_algs[name].get("mean", 0.0)
            if not base_mean:
                continue
            ceiling = base_mean / args.min_throughput_ratio
            if cur_mean > ceiling:
                failures.append(
                    f"{name} mean {cur_mean:.1f} {current.get('unit')} "
                    f"exceeded ceiling {ceiling:.1f} (baseline "
                    f"{base_mean:.1f} / {args.min_throughput_ratio})"
                )
    else:
        print(
            f"bench gate: skipping cycle ceilings (unit "
            f"{current.get('unit')!r} != baseline {baseline.get('unit')!r})"
        )
    return failures


def gate_sweep(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        ("bench", "width", "mul_width", "jobs", "simd"),
        failures,
    ):
        return failures

    # Machine-independent semantics: the sweep is exhaustive over a fixed
    # grid (plus a seeded random-pair stage), so every property must hold
    # and the work totals are exact on any machine and any kernel tier --
    # THE determinism contract the SIMD tiers promise.
    if current.get("all_hold") is not True:
        failures.append(
            f"all_hold is {current.get('all_hold')!r}, expected true "
            "(a verified property failed)"
        )
    if current.get("campaign_evals") != baseline.get("campaign_evals"):
        failures.append(
            f"campaign_evals: current {current.get('campaign_evals')!r} != "
            f"baseline {baseline.get('campaign_evals')!r}"
        )

    def by_name(data):
        return {a.get("name"): a for a in data.get("algorithms", [])}

    current_algs = by_name(current)
    baseline_algs = by_name(baseline)
    if set(current_algs) != set(baseline_algs):
        failures.append(
            f"algorithm roster changed: current {sorted(current_algs)} != "
            f"baseline {sorted(baseline_algs)}"
        )
    else:
        for name, base_alg in baseline_algs.items():
            for key in ("pairs", "evals"):
                if current_algs[name].get(key) != base_alg.get(key):
                    failures.append(
                        f"{name}.{key}: current "
                        f"{current_algs[name].get(key)!r} != baseline "
                        f"{base_alg.get(key)!r}"
                    )

    # The resolved kernel tier depends on the runner's CPU; report, never
    # gate.
    print(
        f"bench gate: simd kernels {current.get('simd_kernels')!r} "
        f"(baseline recorded {baseline.get('simd_kernels')!r})"
    )

    # Machine-dependent throughput: generous floor on the campaign rate.
    floor = args.min_throughput_ratio
    current_rate = current.get("campaign_mevals_per_s", 0.0)
    baseline_rate = baseline.get("campaign_mevals_per_s", 0.0)
    if baseline_rate and floor > 0:
        ratio = current_rate / baseline_rate
        print(
            f"bench gate: campaign throughput {current_rate:.1f} Mevals/s "
            f"vs baseline {baseline_rate:.1f} ({ratio:.2f}x, floor {floor})"
        )
        if ratio < floor:
            failures.append(
                f"campaign throughput regressed to {ratio:.2f}x of baseline "
                f"(floor {floor})"
            )
    return failures


def gate_atlas(current, baseline, args):
    failures = []
    if not check_workload(
        current,
        baseline,
        ("bench", "width", "shift_width", "cast_width"),
        failures,
    ):
        return failures

    # Machine-independent semantics: the atlas is an exhaustive scan of a
    # fixed grid, so every measured gap figure -- per cell and per unary
    # cast row -- is exact on any machine, scheduler, and SIMD tier (the
    # campaign determinism contract). A mismatch means a transfer
    # function's precision actually changed; refresh the baseline only if
    # that change was intentional.
    def cell_key(cell):
        return (cell.get("op"), cell.get("algorithm"), cell.get("width"))

    def by_cell(data, section):
        return {cell_key(c): c for c in data.get(section, [])}

    for section, key_of, exact in (
        ("cells", cell_key,
         ("pairs", "sum_gap", "max_gap", "gap_cdf", "witness")),
        ("cast", lambda c: (c.get("op"), c.get("param")),
         ("width", "tnums", "sum_gap", "max_gap")),
    ):
        current_rows = {key_of(c): c for c in current.get(section, [])}
        baseline_rows = {key_of(c): c for c in baseline.get(section, [])}
        if set(current_rows) != set(baseline_rows):
            failures.append(
                f"{section} roster changed: current {sorted(current_rows)} "
                f"!= baseline {sorted(baseline_rows)}"
            )
            continue
        for key, base_row in baseline_rows.items():
            for field in exact:
                if current_rows[key].get(field) != base_row.get(field):
                    failures.append(
                        f"{section}{key}.{field}: current "
                        f"{current_rows[key].get(field)!r} != baseline "
                        f"{base_row.get(field)!r}"
                    )
    if current.get("campaign_pairs") != baseline.get("campaign_pairs"):
        failures.append(
            f"campaign_pairs: current {current.get('campaign_pairs')!r} != "
            f"baseline {baseline.get('campaign_pairs')!r}"
        )

    # Machine-dependent throughput: generous floor on the campaign rate.
    floor = args.min_throughput_ratio
    current_rate = current.get("campaign_pairs_per_s", 0.0)
    baseline_rate = baseline.get("campaign_pairs_per_s", 0.0)
    if baseline_rate and floor > 0:
        ratio = current_rate / baseline_rate
        print(
            f"bench gate: atlas throughput {current_rate:.0f} pairs/s vs "
            f"baseline {baseline_rate:.0f} ({ratio:.2f}x, floor {floor})"
        )
        if ratio < floor:
            failures.append(
                f"atlas throughput regressed to {ratio:.2f}x of baseline "
                f"(floor {floor})"
            )
    return failures


def gate_gbops(current, baseline, args):
    failures = []
    if not check_workload(current, baseline, ("bench",), failures):
        return failures

    def by_name(data):
        return {b.get("name"): b for b in data.get("benchmarks", [])}

    current_benches = by_name(current)
    baseline_benches = by_name(baseline)
    if set(current_benches) != set(baseline_benches):
        failures.append(
            f"benchmark roster changed: current {sorted(current_benches)} "
            f"!= baseline {sorted(baseline_benches)}"
        )
        return failures

    # Absolute wall-clock numbers, so everything perf is behind the
    # generous ratio (and skipped on debug/sanitizer legs).
    if args.min_throughput_ratio <= 0:
        return failures
    for name, base_bench in sorted(baseline_benches.items()):
        base_ns = base_bench.get("ns_per_op", 0.0)
        cur_ns = current_benches[name].get("ns_per_op", 0.0)
        if not base_ns:
            continue
        ceiling = base_ns / args.min_throughput_ratio
        if not isinstance(cur_ns, (int, float)) or cur_ns > ceiling:
            failures.append(
                f"{name} ns/op {cur_ns!r} exceeded ceiling {ceiling:.1f} "
                f"(baseline {base_ns:.1f} / {args.min_throughput_ratio})"
            )
    return failures


GATES = {
    "verifier_throughput": gate_verifier,
    "daemon_throughput": gate_daemon,
    "interpreter_throughput": gate_interp,
    "mul_cycles": gate_cycles,
    "sweep_campaign": gate_sweep,
    "precision_atlas": gate_atlas,
    "gbench_ops": gate_gbops,
}

# Every top-level key each gate reads. Anything else in either file is
# tolerated -- compared by no check -- and reported, so a run from a newer
# bench (say, one embedding a "metrics" section) still gates against an
# older baseline on the fields both understand.
KNOWN_KEYS = {
    "verifier_throughput": {
        "bench", "seed", "profile", "programs", "mem_size", "accepted",
        "rejected_structural", "rejected_semantic", "insn_visits",
        "dedup_hits", "verdict_fingerprint", "deterministic", "scaling",
    },
    "daemon_throughput": {
        "bench", "seed", "profile", "clients", "programs", "mem_size",
        "total_verdicts", "verdict_fingerprint", "deterministic",
        "matches_in_process", "latency_p50_ms", "latency_p99_ms",
        "verdicts_per_s", "seconds", "cache_hits", "analyses_delta",
        "cache_hits_delta", "busy_delta",
    },
    "interpreter_throughput": {
        "bench", "seed", "profile", "programs", "runs_per_program",
        "mem_size", "step_limit", "reps", "ok_runs", "trap_runs",
        "step_limit_runs", "result_fingerprint", "identical",
        "threaded_available", "best_speedup", "engines",
    },
    "mul_cycles": {
        "bench", "pairs", "trials", "low_bits", "unit",
        "speedup_our_vs_kern", "algorithms",
    },
    "sweep_campaign": {
        "bench", "width", "mul_width", "jobs", "simd", "simd_kernels",
        "all_hold", "campaign_evals", "campaign_seconds",
        "campaign_mevals_per_s", "algorithms",
    },
    "precision_atlas": {
        "bench", "width", "shift_width", "cast_width", "jobs", "simd",
        "campaign_pairs", "campaign_seconds", "campaign_pairs_per_s",
        "cells", "cast",
    },
    "gbench_ops": {
        "bench", "benchmarks",
    },
}


# The one number trend mode tracks per bench: a rate or within-process
# ratio where bigger is better. Returns 0.0/None-safe floats.
def _verifier_primary(data):
    for point in data.get("scaling", []):
        if point.get("jobs") == 1:
            return point.get("programs_per_s")
    return None


def _gbops_primary(data):
    # ns/op is smaller-is-better; track the reciprocal rate of the
    # headline microbenchmark so the slide detector's direction holds.
    for bench in data.get("benchmarks", []):
        if bench.get("name") == "mul/our_mul":
            ns = bench.get("ns_per_op")
            if isinstance(ns, (int, float)) and ns > 0:
                return 1e9 / ns
    return None


PRIMARY_METRIC = {
    "verifier_throughput": ("jobs=1 programs/s", _verifier_primary),
    "daemon_throughput": (
        "verdicts/s", lambda d: d.get("verdicts_per_s")),
    "interpreter_throughput": (
        "best decoded speedup", lambda d: d.get("best_speedup")),
    "mul_cycles": (
        "our_mul speedup vs kern_mul",
        lambda d: d.get("speedup_our_vs_kern")),
    "sweep_campaign": (
        "campaign Mevals/s", lambda d: d.get("campaign_mevals_per_s")),
    "precision_atlas": (
        "campaign pairs/s", lambda d: d.get("campaign_pairs_per_s")),
    "gbench_ops": ("our_mul ops/s", _gbops_primary),
}


def run_trend(paths, args):
    """Sustained-slide detector over a chronological series of runs."""
    series = []
    name = None
    for path in paths:
        data = load(path)
        bench = data.get("bench", "verifier_throughput")
        if name is None:
            name = bench
        elif bench != name:
            print(
                f"error: {path} is bench {bench!r}, series started as "
                f"{name!r}",
                file=sys.stderr,
            )
            return 2
        series.append((path, data))

    if name not in PRIMARY_METRIC:
        print(f"error: no primary metric for bench {name!r}", file=sys.stderr)
        return 2
    label, extract = PRIMARY_METRIC[name]

    points = []
    for path, data in series:
        value = extract(data)
        if isinstance(value, (int, float)) and value > 0:
            points.append((path, float(value)))
        else:
            print(f"trend: skipping {path} (no usable {label}: {value!r})")

    print(f"trend: {name} {label}, {len(points)} usable runs "
          f"(window {args.trend_window}, tolerance "
          f"{args.trend_tolerance:.0%}):")
    for path, value in points:
        print(f"  {value:12.3f}  {path}")
    if len(points) < args.trend_window + 1:
        print(
            f"trend: ok (need {args.trend_window + 1} usable runs for a "
            f"verdict; collecting history)"
        )
        return 0

    # Count the run-over-run drops ending at the newest run.
    streak = 0
    for i in range(len(points) - 1, 0, -1):
        if points[i][1] < points[i - 1][1]:
            streak += 1
        else:
            break
    newest = points[-1][1]
    peak = points[-1 - streak][1]
    loss = 1.0 - newest / peak if peak > 0 else 0.0
    print(
        f"trend: {streak} consecutive drop(s); cumulative loss {loss:.1%} "
        f"from {peak:.3f} to {newest:.3f}"
    )
    if streak >= args.trend_window and loss > args.trend_tolerance:
        print(
            f"trend: REGRESSION: {label} slid for {streak} consecutive "
            f"runs, losing {loss:.1%} (> {args.trend_tolerance:.0%}); each "
            "step may be inside the single-run floor, but the slide is "
            "sustained -- find the leak or refresh the baseline with "
            "intent"
        )
        return 1
    print("trend: ok (no sustained slide)")
    return 0


def report_tolerated_keys(name, current, baseline):
    """Lists top-level keys no check reads, without failing on them."""
    known = KNOWN_KEYS.get(name, set())
    for label, data in (("current run", current), ("baseline", baseline)):
        extra = sorted(set(data) - known)
        if extra:
            print(
                f"bench gate: tolerating unknown top-level keys in "
                f"{label}: {', '.join(extra)}"
            )


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "files",
        nargs="+",
        help="default mode: CURRENT BASELINE (exactly two); --trend mode: "
        "the same bench's JSON from consecutive runs, oldest first, the "
        "current run last",
    )
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.4,
        help="fail if throughput drops below this fraction of the baseline "
        "(and, for the daemon bench, if p99 latency exceeds baseline "
        "divided by it); default %(default)s, generous on purpose; 0 "
        "disables the perf checks (debug/sanitizer legs)",
    )
    parser.add_argument(
        "--trend",
        action="store_true",
        help="sustained-slide mode over a chronological series instead of "
        "a single current-vs-baseline gate",
    )
    parser.add_argument(
        "--trend-window",
        type=int,
        default=3,
        help="consecutive run-over-run drops that count as a slide "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--trend-tolerance",
        type=float,
        default=0.05,
        help="cumulative fractional loss a slide must exceed to fail "
        "(default %(default)s)",
    )
    args = parser.parse_args()

    if args.trend:
        return run_trend(args.files, args)

    if len(args.files) != 2:
        print(
            "error: default mode takes exactly CURRENT and BASELINE "
            "(use --trend for a series)",
            file=sys.stderr,
        )
        return 2
    current = load(args.files[0])
    baseline = load(args.files[1])

    name = baseline.get("bench", "verifier_throughput")
    gate = GATES.get(name)
    if gate is None:
        print(f"error: no gate for bench {name!r}", file=sys.stderr)
        return 2

    report_tolerated_keys(name, current, baseline)
    failures = gate(current, baseline, args)
    if failures:
        print("bench gate: REGRESSION detected:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("bench gate: ok (verdicts identical, performance within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
