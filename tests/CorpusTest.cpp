//===- tests/CorpusTest.cpp - Request corpus format tests -----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks the "tnums-corpus v1" format (service/Corpus.h): encode/parse and
/// save/load round-trip requests bit-exactly (canonical-encoding
/// identity), comments / blank lines / CRLF / a missing final newline are
/// tolerated, and every malformed input -- bad header, odd-length or
/// non-hex entry, undecodable bytes, structurally invalid program -- fails
/// the WHOLE load with a "<name>:<line>:" diagnostic. A corpus either
/// replays exactly or is refused.
///
//===----------------------------------------------------------------------===//

#include "service/Corpus.h"

#include "service/ProgramGen.h"
#include "service/WireProtocol.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <stdlib.h>

using namespace tnums;
using namespace tnums::service;

namespace {

std::vector<VerifyRequest> makeRequests(uint64_t Seed, uint64_t Count,
                                        GenProfile Profile) {
  GenOptions Opts;
  Opts.Profile = Profile;
  ProgramGen Gen(Seed, Opts);
  std::vector<VerifyRequest> Requests;
  for (uint64_t I = 0; I != Count; ++I) {
    VerifyRequest Request;
    Request.Prog = Gen.next();
    Request.MemSize = Opts.MemSize;
    Requests.push_back(std::move(Request));
  }
  return Requests;
}

/// Requests are value-equal iff their canonical encodings are: that is the
/// format's identity, and the one replay relies on.
void expectSameRequests(const std::vector<VerifyRequest> &A,
                        const std::vector<VerifyRequest> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(encodeRequestCanonical(A[I]), encodeRequestCanonical(B[I]))
        << "request " << I;
}

TEST(Corpus, EncodeParseRoundTripIsExact) {
  std::vector<VerifyRequest> Requests =
      makeRequests(11, 50, GenProfile::Mixed);
  std::string Text = encodeCorpusText(Requests);
  EXPECT_EQ(Text.compare(0, 16, "tnums-corpus v1\n"), 0);

  std::string Error;
  std::optional<std::vector<VerifyRequest>> Parsed =
      parseCorpusText(Text, "mem", Error);
  ASSERT_TRUE(Parsed) << Error;
  expectSameRequests(Requests, *Parsed);
  // And the round trip is a fixpoint: re-encoding reproduces the text.
  EXPECT_EQ(encodeCorpusText(*Parsed), Text);
}

TEST(Corpus, SaveLoadRoundTripsThroughAFile) {
  std::string Template = testing::TempDir() + "corpusXXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  ASSERT_NE(mkdtemp(Buf.data()), nullptr);
  std::string Path = std::string(Buf.data()) + "/seed.corpus";

  std::vector<VerifyRequest> Requests =
      makeRequests(13, 25, GenProfile::MaskIdx);
  std::string Error;
  ASSERT_TRUE(saveCorpus(Path, Requests, Error)) << Error;
  std::optional<std::vector<VerifyRequest>> Loaded = loadCorpus(Path, Error);
  ASSERT_TRUE(Loaded) << Error;
  expectSameRequests(Requests, *Loaded);
}

TEST(Corpus, ToleratesCommentsBlanksCrlfAndMissingFinalNewline) {
  std::vector<VerifyRequest> Requests = makeRequests(17, 3, GenProfile::Mixed);
  std::string Text = encodeCorpusText(Requests);

  // Dress the text up with everything the format tolerates.
  size_t FirstEntry = Text.find('\n') + 1;
  Text.insert(FirstEntry, "# a comment\n\n");
  std::string Crlf;
  for (char C : Text)
    Crlf += C == '\n' ? std::string("\r\n") : std::string(1, C);
  Crlf.pop_back(); // ...including no newline after the final line.
  Crlf.pop_back();

  std::string Error;
  std::optional<std::vector<VerifyRequest>> Parsed =
      parseCorpusText(Crlf, "dressed", Error);
  ASSERT_TRUE(Parsed) << Error;
  expectSameRequests(Requests, *Parsed);
}

TEST(Corpus, RefusesBadHeader) {
  std::string Error;
  EXPECT_FALSE(parseCorpusText("tnums-corpus v2\n", "f", Error));
  EXPECT_NE(Error.find("f:1:"), std::string::npos) << Error;
  Error.clear();
  EXPECT_FALSE(parseCorpusText("", "empty", Error));
  EXPECT_NE(Error.find("empty:1:"), std::string::npos) << Error;
}

TEST(Corpus, RefusesMalformedEntriesWithLineDiagnostics) {
  std::vector<VerifyRequest> Requests = makeRequests(19, 1, GenProfile::Mixed);
  std::string Good = encodeCorpusText(Requests);
  std::string Error;

  // Odd-length hex on line 3 (line 2 is a valid entry).
  EXPECT_FALSE(parseCorpusText(Good + "abc\n", "odd", Error));
  EXPECT_NE(Error.find("odd:3:"), std::string::npos) << Error;

  // A non-hex character.
  Error.clear();
  EXPECT_FALSE(parseCorpusText(Good + "zz\n", "hex", Error));
  EXPECT_NE(Error.find("hex:3:"), std::string::npos) << Error;

  // Valid hex that is not a canonical request.
  Error.clear();
  EXPECT_FALSE(parseCorpusText(Good + "deadbeef\n", "undec", Error));
  EXPECT_NE(Error.find("undec:3:"), std::string::npos) << Error;

  // The good entries do not rescue a malformed load: nothing is returned.
  // (Asserted by the nullopt results above -- all or nothing.)
}

TEST(Corpus, RefusesStructurallyInvalidPrograms) {
  // A canonically-encodable request whose program fails validate() (no
  // terminating exit): the wire codec accepts the bytes, the corpus
  // loader must still refuse the entry.
  VerifyRequest Bad;
  Bad.Prog = bpf::Program(std::vector<bpf::Insn>{bpf::Insn::movImm(bpf::R0, 0)});
  Bad.MemSize = 32;
  ASSERT_TRUE(Bad.Prog.validate().has_value());
  std::string Error;
  EXPECT_FALSE(
      parseCorpusText(encodeCorpusText({Bad}), "invalid", Error));
  EXPECT_NE(Error.find("invalid:2:"), std::string::npos) << Error;
}

TEST(Corpus, LoadFailsCleanlyOnMissingFile) {
  std::string Error;
  EXPECT_FALSE(loadCorpus("/nonexistent/no.corpus", Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
