//===- tests/TnumMulTest.cpp - Multiplication algorithm tests -------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumMul.h"

#include "support/Random.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumOps.h"
#include "verify/OptimalityChecker.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

using namespace tnums;

namespace {

TEST(TnumMul, PaperFigure3Example) {
  // Fig. 3: P = µ01, Q = µ10; our_mul returns (00010, 11100) = µµµ10.
  Tnum P = *Tnum::parse("u01");
  Tnum Q = *Tnum::parse("u10");
  Tnum R = ourMul(P, Q);
  EXPECT_EQ(R.value(), 0b00010u);
  EXPECT_EQ(R.mask(), 0b11100u);
  EXPECT_EQ(R.toString(5), "uuu10");
  // gamma(R) from the figure: {2, 6, 10, 14, 18, 22, 26, 30}.
  for (uint64_t V : {2u, 6u, 10u, 14u, 18u, 22u, 26u, 30u})
    EXPECT_TRUE(R.contains(V));
}

TEST(TnumMul, PaperWidth9PrecisionExample) {
  // §IV: P = 000000011, Q = 011µ011µµ: kern_mul gives µµµµ0µµµµ while
  // our_mul gives 0µµµµµµµµ -- incomparable outputs.
  Tnum P = *Tnum::parse("000000011");
  Tnum Q = *Tnum::parse("011u011uu");
  Tnum RKern = tnumMul(P, Q, MulAlgorithm::Kern, 9);
  Tnum ROur = tnumMul(P, Q, MulAlgorithm::Our, 9);
  EXPECT_EQ(RKern.toString(9), "uuuu0uuuu");
  EXPECT_EQ(ROur.toString(9), "0uuuuuuuu");
  EXPECT_FALSE(RKern.isComparableTo(ROur));
}

TEST(TnumMul, ConstantsMultiplyExactly) {
  for (MulAlgorithm Alg : AllMulAlgorithms) {
    Tnum R = tnumMul(Tnum::makeConstant(6), Tnum::makeConstant(7), Alg);
    EXPECT_EQ(R, Tnum::makeConstant(42)) << mulAlgorithmName(Alg);
  }
}

TEST(TnumMul, MulByZeroIsZero) {
  Xoshiro256 Rng(23);
  for (int I = 0; I != 200; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    for (MulAlgorithm Alg : AllMulAlgorithms)
      EXPECT_EQ(tnumMul(P, Tnum::makeConstant(0), Alg),
                Tnum::makeConstant(0))
          << mulAlgorithmName(Alg);
  }
}

TEST(TnumMul, MulByOneKeepsKnownBits) {
  // P * 1 concretely equals P; sound algorithms must keep gamma(P) inside.
  Xoshiro256 Rng(29);
  for (int I = 0; I != 200; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 16);
    for (MulAlgorithm Alg : AllMulAlgorithms) {
      Tnum R = tnumMul(P, Tnum::makeConstant(1), Alg);
      EXPECT_TRUE(P.isSubsetOf(R)) << mulAlgorithmName(Alg);
    }
  }
}

TEST(TnumMul, OurMulEqualsSimplified) {
  // Lemma 11: the two listings are input-output equivalent; exhaustive at
  // width 5, randomized at width 64.
  std::vector<Tnum> Universe = allWellFormedTnums(5);
  for (const Tnum &P : Universe)
    for (const Tnum &Q : Universe)
      EXPECT_EQ(tnumMul(P, Q, MulAlgorithm::Our, 5),
                tnumMul(P, Q, MulAlgorithm::OurSimplified, 5))
          << "P=" << P.toString(5) << " Q=" << Q.toString(5);

  Xoshiro256 Rng(31);
  for (int I = 0; I != 5000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    Tnum Q = randomWellFormedTnum(Rng, 64);
    EXPECT_EQ(ourMul(P, Q), ourMulSimplified(P, Q));
    EXPECT_EQ(ourMul(P, Q), ourMulFullLoop(P, Q));
  }
}

TEST(TnumMul, BitwiseNaiveEqualsOptimized) {
  // The §IV machine-arithmetic rewrite must not change results.
  std::vector<Tnum> Universe = allWellFormedTnums(5);
  for (const Tnum &P : Universe)
    for (const Tnum &Q : Universe)
      EXPECT_EQ(tnumMul(P, Q, MulAlgorithm::BitwiseNaive, 5),
                tnumMul(P, Q, MulAlgorithm::BitwiseOpt, 5));
}

class MulSoundness : public ::testing::TestWithParam<MulAlgorithm> {};

TEST_P(MulSoundness, ExhaustiveWidth4) {
  SoundnessReport Report =
      checkSoundnessExhaustive(BinaryOp::Mul, 4, GetParam());
  EXPECT_TRUE(Report.holds()) << Report.Failure->toString(4);
}

TEST_P(MulSoundness, ExhaustiveWidth5) {
  SoundnessReport Report =
      checkSoundnessExhaustive(BinaryOp::Mul, 5, GetParam());
  EXPECT_TRUE(Report.holds()) << Report.Failure->toString(5);
}

TEST_P(MulSoundness, Random64Bit) {
  Xoshiro256 Rng(0xBEEF);
  SoundnessReport Report = checkSoundnessRandom(
      BinaryOp::Mul, 64, /*NumPairs=*/2000, /*SamplesPerPair=*/8, Rng,
      GetParam());
  EXPECT_TRUE(Report.holds()) << Report.Failure->toString(64);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MulSoundness, ::testing::ValuesIn(AllMulAlgorithms),
    [](const ::testing::TestParamInfo<MulAlgorithm> &Info) {
      return std::string(mulAlgorithmName(Info.param));
    });

TEST(TnumMulPrecision, NoAlgorithmIsOptimal) {
  // §III-C: our_mul is sound but *not* optimal; neither are the others.
  for (MulAlgorithm Alg : AllMulAlgorithms) {
    OptimalityReport Report =
        checkOptimalityExhaustive(BinaryOp::Mul, 4, Alg);
    EXPECT_FALSE(Report.isOptimalEverywhere()) << mulAlgorithmName(Alg);
  }
}

TEST(TnumMulPrecision, OurMulNeverLosesToOptimalLowerBound) {
  // Sanity: every algorithm's output contains the optimal abstraction
  // (soundness implies optimal ⊑ result).
  std::vector<Tnum> Universe = allWellFormedTnums(4);
  for (const Tnum &P : Universe)
    for (const Tnum &Q : Universe) {
      Tnum Optimal = optimalAbstractBinary(BinaryOp::Mul, P, Q, 4);
      for (MulAlgorithm Alg : AllMulAlgorithms)
        EXPECT_TRUE(Optimal.isSubsetOf(tnumMul(P, Q, Alg, 4)))
            << mulAlgorithmName(Alg) << " P=" << P.toString(4)
            << " Q=" << Q.toString(4);
    }
}

TEST(TnumMulPrecision, MostlyMorePreciseThanKernAtWidth8Sampled) {
  // Fig. 4 headline: where outputs differ and are comparable, our_mul is
  // more precise than kern_mul in ~80% of the cases at width 8. Sampled
  // here (the full sweep is bench/fig4_mul_precision).
  Xoshiro256 Rng(37);
  uint64_t Differ = 0;
  uint64_t OurMorePrecise = 0;
  for (int I = 0; I != 200000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 8);
    Tnum Q = randomWellFormedTnum(Rng, 8);
    Tnum RKern = tnumMul(P, Q, MulAlgorithm::Kern, 8);
    Tnum ROur = tnumMul(P, Q, MulAlgorithm::Our, 8);
    if (RKern == ROur)
      continue;
    ++Differ;
    if (ROur.isSubsetOf(RKern))
      ++OurMorePrecise;
  }
  ASSERT_GT(Differ, 0u);
  // The paper reports ~80%; leave slack for the sampling distribution.
  EXPECT_GT(static_cast<double>(OurMorePrecise) /
                static_cast<double>(Differ),
            0.5);
}

TEST(TnumMulPrecision, EqualOutputsDominateAtWidth8) {
  // §IV-A: our_mul and kern_mul agree on 99.92% of all width-8 pairs.
  Xoshiro256 Rng(41);
  uint64_t Total = 100000;
  uint64_t Equal = 0;
  for (uint64_t I = 0; I != Total; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 8);
    Tnum Q = randomWellFormedTnum(Rng, 8);
    if (tnumMul(P, Q, MulAlgorithm::Kern, 8) ==
        tnumMul(P, Q, MulAlgorithm::Our, 8))
      ++Equal;
  }
  EXPECT_GT(static_cast<double>(Equal) / static_cast<double>(Total), 0.9);
}

TEST(TnumMul, WidthTruncationConsistency) {
  // Computing at 64 bits and truncating equals computing within the width:
  // verified against concrete products, exhaustively at width 4.
  std::vector<Tnum> Universe = allWellFormedTnums(4);
  for (const Tnum &P : Universe)
    for (const Tnum &Q : Universe) {
      Tnum R = tnumMul(P, Q, MulAlgorithm::Our, 4);
      EXPECT_TRUE(R.fitsWidth(4));
      forEachMember(P, [&](uint64_t X) {
        forEachMember(Q, [&](uint64_t Y) {
          EXPECT_TRUE(R.contains((X * Y) & 0xF));
        });
      });
    }
}

} // namespace
