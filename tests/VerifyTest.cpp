//===- tests/VerifyTest.cpp - Verification substrate tests ----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the bounded-verification engine itself: that it accepts the sound
/// operators, that it *catches* deliberately broken ones with a usable
/// counterexample (the solver-model analogue), and that the algebraic
/// property searches reproduce the three §III-A observations.
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumOps.h"
#include "verify/AlgebraicProperties.h"
#include "verify/LemmaChecks.h"
#include "verify/OptimalityChecker.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

using namespace tnums;

namespace {

//===----------------------------------------------------------------------===//
// The checker machinery must detect unsound operators.
//===----------------------------------------------------------------------===//

/// A deliberately broken "addition" that forgets the operand masks.
static Tnum brokenAdd(Tnum P, Tnum Q) {
  return Tnum(P.value() + Q.value(), 0);
}

TEST(CheckerSelfTest, CatchesBrokenOperatorExhaustively) {
  // Hand-rolled sweep mirroring checkSoundnessExhaustive's loop, applied
  // to the broken operator above.
  bool FoundViolation = false;
  for (const Tnum &P : allWellFormedTnums(3)) {
    for (const Tnum &Q : allWellFormedTnums(3)) {
      Tnum R = tnumTruncate(brokenAdd(P, Q), 3);
      forEachMember(P, [&](uint64_t X) {
        forEachMember(Q, [&](uint64_t Y) {
          if (!R.contains((X + Y) & 7))
            FoundViolation = true;
        });
      });
    }
  }
  EXPECT_TRUE(FoundViolation);
}

TEST(CheckerSelfTest, CounterexampleIsAModel) {
  // Any counterexample the random checker reports must actually violate
  // the membership predicate (spot-check of the report plumbing, like the
  // paper's SMT-encoding spot tests).
  Xoshiro256 Rng(99);
  SoundnessReport Report = checkSoundnessRandom(
      BinaryOp::Add, 64, /*NumPairs=*/500, /*SamplesPerPair=*/4, Rng);
  EXPECT_TRUE(Report.holds());
  EXPECT_EQ(Report.PairsChecked, 500u);
  // 4 corners + 4 samples per pair.
  EXPECT_EQ(Report.ConcreteChecked, 500u * 8u);
}

TEST(CheckerSelfTest, RandomTnumsAreWellFormedAndInWidth) {
  Xoshiro256 Rng(3);
  for (unsigned Width : {1u, 7u, 32u, 64u}) {
    for (int I = 0; I != 500; ++I) {
      Tnum T = randomWellFormedTnum(Rng, Width);
      EXPECT_TRUE(T.isWellFormed());
      EXPECT_TRUE(T.fitsWidth(Width));
    }
  }
}

TEST(CheckerSelfTest, OptimalityReportCountsPairs) {
  OptimalityReport Report = checkOptimalityExhaustive(
      BinaryOp::Add, 3, MulAlgorithm::Our, /*StopAtFirst=*/false);
  EXPECT_TRUE(Report.isOptimalEverywhere());
  EXPECT_EQ(Report.PairsChecked, 27u * 27u);
  EXPECT_EQ(Report.OptimalPairs, Report.PairsChecked);
}

//===----------------------------------------------------------------------===//
// §III-A observations (1)-(3).
//===----------------------------------------------------------------------===//

TEST(AlgebraicProperties, AdditionIsNotAssociative) {
  std::optional<AssociativityWitness> W = findAddNonAssociativityWitness(2);
  ASSERT_TRUE(W.has_value());
  // Re-check the witness end to end.
  Tnum LeftFirst =
      tnumTruncate(tnumAdd(tnumTruncate(tnumAdd(W->P, W->Q), 2), W->R), 2);
  Tnum RightFirst =
      tnumTruncate(tnumAdd(W->P, tnumTruncate(tnumAdd(W->Q, W->R), 2)), 2);
  EXPECT_EQ(LeftFirst, W->LeftFirst);
  EXPECT_EQ(RightFirst, W->RightFirst);
  EXPECT_NE(LeftFirst, RightFirst);
}

TEST(AlgebraicProperties, AddSubAreNotInverses) {
  std::optional<InverseWitness> W = findAddSubNonInverseWitness(2);
  ASSERT_TRUE(W.has_value());
  Tnum RoundTrip =
      tnumTruncate(tnumSub(tnumTruncate(tnumAdd(W->P, W->Q), 2), W->Q), 2);
  EXPECT_EQ(RoundTrip, W->RoundTrip);
  EXPECT_NE(RoundTrip, W->P);
  // The round trip must still *contain* P (soundness of the composition).
  EXPECT_TRUE(W->P.isSubsetOf(RoundTrip));
}

TEST(AlgebraicProperties, KernMulIsNotCommutative) {
  // Search widths upward until the smallest witness width is found; the
  // paper only states existence (§III-A observation 3).
  std::optional<CommutativityWitness> W;
  unsigned Width = 0;
  for (unsigned Candidate : {2u, 3u, 4u, 5u, 6u}) {
    W = findMulNonCommutativityWitness(MulAlgorithm::Kern, Candidate);
    if (W) {
      Width = Candidate;
      break;
    }
  }
  ASSERT_TRUE(W.has_value());
  EXPECT_NE(W->Forward, W->Backward);
  // Both orders must still be sound, so both contain all products.
  forEachMember(W->P, [&](uint64_t X) {
    forEachMember(W->Q, [&](uint64_t Y) {
      uint64_t Z = (X * Y) & lowBitsMask(Width);
      EXPECT_TRUE(W->Forward.contains(Z));
      EXPECT_TRUE(W->Backward.contains(Z));
    });
  });
}

TEST(AlgebraicProperties, AdditionIsCommutative) {
  EXPECT_FALSE(findAddNonCommutativityWitness(3).has_value());
  EXPECT_FALSE(findAddNonCommutativityWitness(4).has_value());
}

TEST(AlgebraicProperties, AssociativityHoldsAtWidth1) {
  // Width-1 tnums have no carry chains; addition there is associative,
  // making the width-2 witness the smallest possible.
  EXPECT_FALSE(findAddNonAssociativityWitness(1).has_value());
}

//===----------------------------------------------------------------------===//
// Executable lemma sweeps (the proof skeleton of §III-B / §VII).
//===----------------------------------------------------------------------===//

class LemmaSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(LemmaSweep, HoldsExhaustivelyWidth3) {
  std::optional<std::string> Failure = sweepLemmaExhaustive(GetParam(), 3);
  EXPECT_FALSE(Failure.has_value()) << *Failure;
}

TEST_P(LemmaSweep, HoldsExhaustivelyWidth4) {
  std::optional<std::string> Failure = sweepLemmaExhaustive(GetParam(), 4);
  EXPECT_FALSE(Failure.has_value()) << *Failure;
}

INSTANTIATE_TEST_SUITE_P(
    AllLemmas, LemmaSweep,
    ::testing::Values("min-carries", "max-carries", "capture-uncertainty",
                      "mask-equivalence", "min-borrows", "max-borrows",
                      "set-union-zero", "value-mask-decomp"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(LemmaSweep, RejectsUnknownLemmaName) {
  std::optional<std::string> Failure = sweepLemmaExhaustive("no-such", 3);
  ASSERT_TRUE(Failure.has_value());
  EXPECT_NE(Failure->find("unknown lemma"), std::string::npos);
}

TEST(LemmaChecks, CarrySequenceIdentity) {
  // carry-in = a ^ b ^ (a + b): cross-check against a manual ripple adder.
  Xoshiro256 Rng(55);
  for (int I = 0; I != 2000; ++I) {
    uint64_t A = Rng.next();
    uint64_t B = Rng.next();
    uint64_t Expected = 0;
    uint64_t Carry = 0;
    for (unsigned K = 0; K != 64; ++K) {
      Expected |= Carry << K;
      uint64_t ABit = (A >> K) & 1;
      uint64_t BBit = (B >> K) & 1;
      Carry = (ABit & BBit) | (Carry & (ABit ^ BBit));
    }
    EXPECT_EQ(carryInSequence(A, B), Expected);
  }
}

TEST(LemmaChecks, BorrowSequenceIdentity) {
  Xoshiro256 Rng(56);
  for (int I = 0; I != 2000; ++I) {
    uint64_t A = Rng.next();
    uint64_t B = Rng.next();
    uint64_t Expected = 0;
    uint64_t Borrow = 0;
    for (unsigned K = 0; K != 64; ++K) {
      Expected |= Borrow << K;
      uint64_t ABit = (A >> K) & 1;
      uint64_t BBit = (B >> K) & 1;
      // Full-subtractor borrow-out (Definition 23).
      Borrow = ((ABit ^ 1) & BBit) | (Borrow & ((ABit ^ BBit) ^ 1));
    }
    EXPECT_EQ(borrowInSequence(A, B), Expected);
  }
}

TEST(LemmaChecks, MaskEquivalenceAt64BitRandom) {
  // Lemma 5 is width-independent; hammer it at full width.
  Xoshiro256 Rng(57);
  for (int I = 0; I != 20000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    Tnum Q = randomWellFormedTnum(Rng, 64);
    EXPECT_TRUE(checkMaskEquivalenceLemma(P, Q));
  }
}

TEST(LemmaChecks, SetUnionWithZeroAt64BitRandom) {
  Xoshiro256 Rng(58);
  for (int I = 0; I != 20000; ++I)
    EXPECT_TRUE(checkSetUnionWithZeroLemma(randomWellFormedTnum(Rng, 64)));
}

} // namespace
