//===- tests/ExtensionTest.cpp - Subreg/ALU32/spill/monotonicity ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the features that extend the paper's core artifact to the
/// rest of the kernel's tnum surface: the 32-bit subregister helpers from
/// tnum.h, BPF ALU32 instructions through the whole stack, stack spill/
/// fill tracking in the analyzer, and the monotonicity study.
///
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"
#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"
#include "support/Random.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumOps.h"
#include "verify/MonotonicityChecker.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

#include <set>

using namespace tnums;
using namespace tnums::bpf;

namespace {

//===----------------------------------------------------------------------===//
// Kernel subregister helpers
//===----------------------------------------------------------------------===//

TEST(Subreg, SplitAndRejoin) {
  Tnum P(0x1234'5678'0000'00f0, 0x0000'0000'ff00'0000);
  ASSERT_TRUE(P.isWellFormed());
  Tnum Low = tnumSubreg(P);
  Tnum High = tnumClearSubreg(P);
  EXPECT_TRUE(Low.fitsWidth(32));
  EXPECT_EQ(High.value() & lowBitsMask(32), 0u);
  // Rejoining loses nothing.
  EXPECT_EQ(tnumWithSubreg(P, Low), P);
}

TEST(Subreg, WithSubregReplacesLowHalf) {
  Tnum Reg = Tnum::makeConstant(0xAAAA'BBBB'CCCC'DDDD);
  Tnum R = tnumWithSubreg(Reg, *Tnum::parse("1u"));
  EXPECT_EQ(R.value(), 0xAAAA'BBBB'0000'0002u);
  EXPECT_EQ(R.mask(), 0x1u);
  EXPECT_EQ(tnumConstSubreg(Reg, 42).constantValue(),
            0xAAAA'BBBB'0000'002Au);
}

TEST(Subreg, SoundOnRandomInputs) {
  Xoshiro256 Rng(71);
  for (int I = 0; I != 2000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    uint64_t X = P.value() | (Rng.next() & P.mask());
    EXPECT_TRUE(tnumSubreg(P).contains(X & lowBitsMask(32)));
    EXPECT_TRUE(tnumClearSubreg(P).contains(X & ~lowBitsMask(32)));
    Tnum Sub = randomWellFormedTnum(Rng, 32);
    uint64_t Y = Sub.value() | (Rng.next() & Sub.mask());
    EXPECT_TRUE(tnumWithSubreg(P, Sub).contains(
        (X & ~lowBitsMask(32)) | (Y & lowBitsMask(32))));
  }
}

TEST(Subreg, AlignmentPredicate) {
  EXPECT_TRUE(tnumIsAligned(Tnum::makeConstant(16), 8));
  EXPECT_FALSE(tnumIsAligned(Tnum::makeConstant(12), 8));
  // An unknown low bit breaks alignment; unknown high bits do not.
  EXPECT_FALSE(tnumIsAligned(*Tnum::parse("1u0"), 4));
  EXPECT_TRUE(tnumIsAligned(*Tnum::parse("uu00"), 4));
  EXPECT_TRUE(tnumIsAligned(Tnum::makeConstant(5), 1));
  EXPECT_TRUE(tnumIsAligned(Tnum::makeUnknown(), 0));
}

TEST(Subreg, AlignmentAgreesWithMembers) {
  for (const Tnum &P : allWellFormedTnums(5)) {
    for (uint64_t Size : {1u, 2u, 4u}) {
      bool AllAligned = true;
      forEachMember(P, [&](uint64_t X) { AllAligned &= X % Size == 0; });
      EXPECT_EQ(tnumIsAligned(P, Size), AllAligned)
          << P.toString(5) << " size " << Size;
    }
  }
}

//===----------------------------------------------------------------------===//
// ALU32: domain level
//===----------------------------------------------------------------------===//

TEST(Alu32Domain, ZeroExtensionPinsHighBits) {
  RegValue V = RegValue::makeTop(64);
  RegValue R = applyBinary32(BinaryOp::Add, V, RegValue::makeConstant(1));
  // The zero-extended result has all high 32 trits known zero ...
  for (unsigned Bit = 32; Bit != 64; ++Bit)
    EXPECT_EQ(R.tnum().tritAt(Bit), Trit::Zero);
  // ... and hence unsigned bounds within the subregister.
  EXPECT_LE(R.unsignedBounds().max(), lowBitsMask(32));
  EXPECT_TRUE(R.signedBounds().isNonNegative());
}

TEST(Alu32Domain, ShiftAmountMaskedTo31) {
  RegValue One = RegValue::makeConstant(1);
  RegValue R = applyBinary32(BinaryOp::Lsh, One, RegValue::makeConstant(33));
  EXPECT_TRUE(R.isConstant());
  EXPECT_EQ(R.constantValue(), 2u); // 33 & 31 == 1.
}

class Alu32Soundness : public ::testing::TestWithParam<BinaryOp> {};

TEST_P(Alu32Soundness, MatchesConcrete32BitSemantics) {
  BinaryOp Op = GetParam();
  Xoshiro256 Rng(0x3232 + static_cast<uint64_t>(Op));
  for (int I = 0; I != 2000; ++I) {
    Tnum TP = randomWellFormedTnum(Rng, 64);
    Tnum TQ = randomWellFormedTnum(Rng, 64);
    RegValue P = RegValue::fromTnum(TP, 64);
    RegValue Q = RegValue::fromTnum(TQ, 64);
    RegValue R = applyBinary32(Op, P, Q);
    for (int S = 0; S != 6; ++S) {
      uint64_t X = TP.value() | (Rng.next() & TP.mask());
      uint64_t Y = TQ.value() | (Rng.next() & TQ.mask());
      // Concrete ALU32: op on low halves, zero-extended.
      uint64_t Z = applyConcreteBinary(Op, X & lowBitsMask(32),
                                       Y & lowBitsMask(32), 32);
      EXPECT_TRUE(R.contains(Z))
          << binaryOpName(Op) << " x=" << X << " y=" << Y << " z=" << Z
          << " R=" << R.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, Alu32Soundness, ::testing::ValuesIn(AllBinaryOps),
    [](const ::testing::TestParamInfo<BinaryOp> &Info) {
      return std::string(binaryOpName(Info.param));
    });

//===----------------------------------------------------------------------===//
// ALU32: interpreter + verifier
//===----------------------------------------------------------------------===//

TEST(Alu32Interp, TruncatesAndZeroExtends) {
  Program P = ProgramBuilder()
                  .loadImm(R3, 0x1'0000'0001) // bit 32 set
                  .alu32Imm(AluOp::Add, R3, 0)
                  .mov(R0, R3)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 1u); // High half dropped.
}

TEST(Alu32Interp, Mov32ZeroExtends) {
  Program P = ProgramBuilder()
                  .loadImm(R3, -1)
                  .mov32(R4, R3)
                  .mov(R0, R4)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 0xFFFF'FFFFu);
}

TEST(Alu32Interp, Arsh32UsesBit31AsSign) {
  Program P = ProgramBuilder()
                  .loadImm(R3, 0x8000'0000) // negative as s32
                  .alu32Imm(AluOp::Arsh, R3, 4)
                  .mov(R0, R3)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 0xF800'0000u);
}

TEST(Alu32Verifier, ZeroExtensionProvesBounds) {
  // A 64-bit unknown becomes a 32-bit value via w-mov; dividing keeps it
  // small enough that (x >> 28) is a provably tiny offset.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 8)
                  .mov32(R3, R3)                 // r3 <= 2^32 - 1
                  .aluImm(AluOp::Rsh, R3, 28)    // r3 <= 15
                  .aluImm(AluOp::And, R3, 7)     // r3 <= 7
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .build();
  EXPECT_TRUE(verifyProgram(P, 16).Accepted);
}

TEST(Alu32Verifier, RejectsPointerInAlu32) {
  Program P = ProgramBuilder()
                  .mov32(R3, R1)
                  .movImm(R0, 0)
                  .exit()
                  .build();
  VerifierReport R = verifyProgram(P, 16);
  EXPECT_FALSE(R.Accepted);
  EXPECT_NE(R.Violations[0].Message.find("32-bit mov"), std::string::npos);
}

TEST(Alu32Differential, RandomAlu32ProgramsStayContained) {
  Xoshiro256 Rng(0x32D1FF);
  constexpr AluOp Ops[] = {AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div,
                           AluOp::Mod, AluOp::And, AluOp::Or,  AluOp::Xor,
                           AluOp::Lsh, AluOp::Rsh, AluOp::Arsh};
  for (unsigned Iter = 0; Iter != 200; ++Iter) {
    ProgramBuilder B;
    B.load(R3, R1, 0, 4);
    B.load(R4, R1, 4, 4);
    for (unsigned I = 0; I != 6; ++I) {
      AluOp Op = Ops[Rng.nextBelow(sizeof(Ops) / sizeof(Ops[0]))];
      Reg Dst = Rng.nextChance(1, 2) ? R3 : R4;
      if (Rng.nextChance(1, 2))
        B.alu32(Op, Dst, Dst == R3 ? R4 : R3);
      else
        B.alu32Imm(Op, Dst, static_cast<int64_t>(Rng.nextBelow(1 << 20)));
    }
    B.mov(R0, R3);
    B.exit();
    Program P = B.build();

    VerifierReport Report = verifyProgram(P, 16);
    ASSERT_TRUE(Report.Accepted) << Report.toString(P);
    size_t ExitPc = P.size() - 1;
    for (unsigned Run = 0; Run != 10; ++Run) {
      std::vector<uint8_t> Mem(16);
      for (uint8_t &Byte : Mem)
        Byte = static_cast<uint8_t>(Rng.next());
      Interpreter Interp(P, Mem);
      ExecResult R = Interp.run();
      ASSERT_TRUE(R.ok()) << R.Message;
      for (Reg RegNum : {R3, R4, R0}) {
        const AbsReg &Abs = Report.InStates[ExitPc].Regs[RegNum];
        ASSERT_TRUE(Abs.isScalar());
        EXPECT_TRUE(Abs.value().contains(Interp.registers()[RegNum]))
            << "r" << unsigned(RegNum) << "=" << Interp.registers()[RegNum]
            << " escapes " << Abs.toString() << "\n"
            << Report.toString(P);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Stack spill/fill tracking
//===----------------------------------------------------------------------===//

TEST(SpillFill, ScalarRoundTripKeepsBounds) {
  // Bounds proven before the spill must survive the fill.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .aluImm(AluOp::And, R3, 7)
                  .store(R10, -8, R3, 8)   // spill
                  .movImm(R3, 999)         // clobber
                  .load(R4, R10, -8, 8)    // fill
                  .alu(AluOp::Add, R4, R1)
                  .load(R0, R4, 0, 8)      // needs r4 <= 7 to be safe
                  .exit()
                  .build();
  EXPECT_TRUE(verifyProgram(P, 16).Accepted)
      << verifyProgram(P, 16).toString(P);
}

TEST(SpillFill, PointerSpillAndFill) {
  Program P = ProgramBuilder()
                  .store(R10, -16, R1, 8) // spill the context pointer
                  .load(R5, R10, -16, 8)  // fill it back
                  .load(R0, R5, 0, 8)     // use as pointer again
                  .exit()
                  .build();
  EXPECT_TRUE(verifyProgram(P, 16).Accepted)
      << verifyProgram(P, 16).toString(P);
}

TEST(SpillFill, UninitStackReadRejected) {
  Program P = ProgramBuilder().load(R0, R10, -8, 8).exit().build();
  VerifierReport R = verifyProgram(P, 16);
  EXPECT_FALSE(R.Accepted);
  EXPECT_NE(R.Violations[0].Message.find("uninit"), std::string::npos);
}

TEST(SpillFill, PartialOverwriteOfPointerRejected) {
  Program P = ProgramBuilder()
                  .store(R10, -8, R1, 8)      // spill pointer
                  .storeImm(R10, -8, 0, 1)    // corrupt one byte
                  .load(R5, R10, -8, 8)       // try to fill
                  .load(R0, R5, 0, 8)
                  .exit()
                  .build();
  VerifierReport R = verifyProgram(P, 16);
  EXPECT_FALSE(R.Accepted);
}

TEST(SpillFill, PartialReadOfPointerRejected) {
  Program P = ProgramBuilder()
                  .store(R10, -8, R1, 8)
                  .load(R0, R10, -8, 4) // half of a spilled pointer
                  .exit()
                  .build();
  EXPECT_FALSE(verifyProgram(P, 16).Accepted);
}

TEST(SpillFill, UnalignedPointerSpillRejected) {
  Program P = ProgramBuilder()
                  .store(R10, -12, R1, 8) // not 8-byte aligned
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_FALSE(verifyProgram(P, 16).Accepted);
}

TEST(SpillFill, SubSlotScalarDataIsReadable) {
  // Writing and reading small scalars through the stack is fine; the
  // value is just imprecise ("misc" data).
  Program P = ProgramBuilder()
                  .storeImm(R10, -4, 7, 4)
                  .load(R0, R10, -4, 4)
                  .exit()
                  .build();
  VerifierReport R = verifyProgram(P, 16);
  EXPECT_TRUE(R.Accepted) << R.toString(P);
}

TEST(SpillFill, JoinOfDifferingSpillsStaysSound) {
  // Different constants spilled on the two branches: the fill must cover
  // both (join), verified by running both paths concretely.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .jmpImm(CompareOp::Eq, R3, 0, "zero")
                  .storeImm(R10, -8, 200, 8)
                  .ja("join")
                  .label("zero")
                  .storeImm(R10, -8, 100, 8)
                  .label("join")
                  .load(R0, R10, -8, 8)
                  .exit()
                  .build();
  VerifierReport Report = verifyProgram(P, 16);
  ASSERT_TRUE(Report.Accepted) << Report.toString(P);
  for (uint8_t First : {0, 1}) {
    std::vector<uint8_t> Mem(16, First);
    ExecResult R = Interpreter(P, Mem).run();
    ASSERT_TRUE(R.ok());
    EXPECT_TRUE(
        Report.InStates[P.size() - 1].Regs[R0].value().contains(
            R.ReturnValue))
        << R.ReturnValue;
  }
}

TEST(SpillFill, SpillFuzzing) {
  // Random spill/fill dances over two slots; accepted programs must stay
  // concretely contained.
  Xoshiro256 Rng(0x57ACC);
  for (unsigned Iter = 0; Iter != 100; ++Iter) {
    ProgramBuilder B;
    B.load(R3, R1, 0, 2);
    B.load(R4, R1, 2, 2);
    for (unsigned I = 0; I != 8; ++I) {
      switch (Rng.nextBelow(4)) {
      case 0:
        B.store(R10, Rng.nextChance(1, 2) ? -8 : -16, R3, 8);
        break;
      case 1:
        B.store(R10, Rng.nextChance(1, 2) ? -8 : -16, R4, 8);
        break;
      case 2:
        B.aluImm(AluOp::Add, R3, static_cast<int64_t>(Rng.nextBelow(100)));
        break;
      case 3:
        B.alu(AluOp::Xor, R4, R3);
        break;
      }
    }
    B.store(R10, -8, R3, 8);
    B.load(R5, R10, -8, 8);
    B.mov(R0, R5);
    B.exit();
    Program P = B.build();
    VerifierReport Report = verifyProgram(P, 16);
    ASSERT_TRUE(Report.Accepted) << Report.toString(P);
    std::vector<uint8_t> Mem(16);
    for (uint8_t &Byte : Mem)
      Byte = static_cast<uint8_t>(Rng.next());
    Interpreter Interp(P, Mem);
    ExecResult R = Interp.run();
    ASSERT_TRUE(R.ok());
    EXPECT_TRUE(Report.InStates[P.size() - 1].Regs[R0].value().contains(
        R.ReturnValue));
  }
}

//===----------------------------------------------------------------------===//
// Sub-tnum enumeration + monotonicity
//===----------------------------------------------------------------------===//

TEST(SubTnumEnum, EnumeratesExactlyTheDownSet) {
  Tnum P = *Tnum::parse("1u0u");
  std::set<std::pair<uint64_t, uint64_t>> Seen;
  forEachSubTnum(P, [&](Tnum Q) {
    EXPECT_TRUE(Q.isSubsetOf(P));
    EXPECT_TRUE(Seen.emplace(Q.value(), Q.mask()).second);
  });
  EXPECT_EQ(Seen.size(), 9u); // 3^2 refinements of two unknown trits.
  // Cross-check against a full-universe filter.
  uint64_t Expected = 0;
  for (const Tnum &Q : allWellFormedTnums(4))
    if (Q.isSubsetOf(P))
      ++Expected;
  EXPECT_EQ(Seen.size(), Expected);
}

TEST(Monotonicity, CoreOpsAreMonotoneWidth4) {
  for (BinaryOp Op : {BinaryOp::Add, BinaryOp::Sub, BinaryOp::And,
                      BinaryOp::Or, BinaryOp::Xor, BinaryOp::Div,
                      BinaryOp::Mod, BinaryOp::Lsh, BinaryOp::Rsh,
                      BinaryOp::Arsh}) {
    MonotonicityReport Report = checkMonotonicityExhaustive(Op, 4);
    EXPECT_TRUE(Report.holds())
        << binaryOpName(Op) << ": " << Report.Failure->toString(4);
  }
}

TEST(Monotonicity, KernMulNonMonotoneAtWidth5) {
  // Extension finding: the strength-reduced P.v * Q.v accumulator makes
  // kern_mul non-monotone (refining an input can worsen the output).
  MonotonicityReport Report =
      checkMonotonicityExhaustive(BinaryOp::Mul, 5, MulAlgorithm::Kern);
  ASSERT_FALSE(Report.holds());
  const MonotonicityCounterexample &C = *Report.Failure;
  EXPECT_TRUE(C.P1.isSubsetOf(C.P2));
  EXPECT_TRUE(C.Q1.isSubsetOf(C.Q2));
  EXPECT_FALSE(C.R1.isSubsetOf(C.R2));
}

TEST(Monotonicity, OurMulMonotoneAt5NonMonotoneAt6) {
  EXPECT_TRUE(
      checkMonotonicityExhaustive(BinaryOp::Mul, 5, MulAlgorithm::Our)
          .holds());
  EXPECT_FALSE(
      checkMonotonicityExhaustive(BinaryOp::Mul, 6, MulAlgorithm::Our)
          .holds());
}

TEST(Monotonicity, BitwiseMulMonotoneThroughWidth5) {
  // A composition of monotone operators stays monotone.
  for (unsigned W = 3; W <= 5; ++W)
    EXPECT_TRUE(checkMonotonicityExhaustive(BinaryOp::Mul, W,
                                            MulAlgorithm::BitwiseOpt)
                    .holds())
        << W;
}

//===----------------------------------------------------------------------===//
// Paper §III-C open question 3: can concrete multiplication over the
// masks determine the result's unknown bits?
//===----------------------------------------------------------------------===//

/// The natural candidate: unknown bits = min-product xor max-product,
/// smeared upward (uncertainty propagates only toward higher bits in
/// carry-free reasoning).
static Tnum maskMulCandidate(Tnum P, Tnum Q) {
  uint64_t V = P.value() * Q.value();
  uint64_t Max = (P.value() | P.mask()) * (Q.value() | Q.mask());
  uint64_t Mu = V ^ Max;
  Mu |= Mu << 1;
  Mu |= Mu << 2;
  Mu |= Mu << 4;
  Mu |= Mu << 8;
  Mu |= Mu << 16;
  Mu |= Mu << 32;
  return Tnum(V & ~Mu, Mu);
}

TEST(OpenQuestion3, NaiveMaskMultiplyIsUnsound) {
  // Witness: P = Q = 0µ1, gamma = {1, 3}; products are {1, 3, 9}. The
  // min (1) and max (9) products agree on their low three bits, so the
  // xor-and-smear mask claims the low bits are all known -- but 3 is a
  // possible product. The low-bit cancellation is why mask
  // multiplication cannot simply replace long multiplication (the
  // paper's open question 3 answered in the negative for this family).
  Tnum P = *Tnum::parse("0u1");
  Tnum R = tnumTruncate(maskMulCandidate(P, P), 3);
  EXPECT_FALSE(R.contains(3)); // The unsoundness, explicitly.
  // And the checker machinery finds it mechanically.
  uint64_t UnsoundPairs = 0;
  for (const Tnum &A : allWellFormedTnums(3)) {
    for (const Tnum &B : allWellFormedTnums(3)) {
      Tnum Result = tnumTruncate(maskMulCandidate(A, B), 3);
      forEachMember(A, [&](uint64_t X) {
        forEachMember(B, [&](uint64_t Y) {
          if (!Result.contains((X * Y) & 7)) {
            ++UnsoundPairs;
            X = ~uint64_t(0); // No early exit needed; just count once-ish.
          }
        });
      });
    }
  }
  EXPECT_GT(UnsoundPairs, 0u);
}

//===----------------------------------------------------------------------===//
// Reduced product is never worse than the tnum alone
//===----------------------------------------------------------------------===//

TEST(ReducedProduct, AtLeastAsPreciseAsTnumAlone) {
  Xoshiro256 Rng(0x9f9f);
  for (int I = 0; I != 2000; ++I) {
    Tnum TP = randomWellFormedTnum(Rng, 16);
    Tnum TQ = randomWellFormedTnum(Rng, 16);
    for (BinaryOp Op : {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul,
                        BinaryOp::And, BinaryOp::Or, BinaryOp::Xor}) {
      RegValue R = applyBinary(Op, RegValue::fromTnum(TP, 64),
                               RegValue::fromTnum(TQ, 64));
      Tnum TnumOnly = applyAbstractBinary(Op, TP, TQ, 64);
      // The product's tnum component refines (or equals) the plain tnum
      // transfer result.
      EXPECT_TRUE(R.tnum().isSubsetOf(TnumOnly))
          << binaryOpName(Op) << " " << TP.toString(16) << " "
          << TQ.toString(16);
    }
  }
}

} // namespace
