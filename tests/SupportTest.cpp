//===- tests/SupportTest.cpp - Support library unit tests -----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Bits.h"
#include "support/CycleTimer.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>

using namespace tnums;

namespace {

//===----------------------------------------------------------------------===//
// Bits
//===----------------------------------------------------------------------===//

TEST(Bits, LowBitsMask) {
  EXPECT_EQ(lowBitsMask(1), 1u);
  EXPECT_EQ(lowBitsMask(8), 0xFFu);
  EXPECT_EQ(lowBitsMask(63), 0x7FFF'FFFF'FFFF'FFFFu);
  EXPECT_EQ(lowBitsMask(64), ~uint64_t(0));
}

TEST(Bits, TruncateAndFits) {
  EXPECT_EQ(truncateToWidth(0x1FF, 8), 0xFFu);
  EXPECT_TRUE(fitsWidth(0xFF, 8));
  EXPECT_FALSE(fitsWidth(0x100, 8));
  EXPECT_TRUE(fitsWidth(~uint64_t(0), 64));
}

TEST(Bits, BitAt) {
  EXPECT_EQ(bitAt(0b1010, 1), 1u);
  EXPECT_EQ(bitAt(0b1010, 2), 0u);
  EXPECT_EQ(bitAt(uint64_t(1) << 63, 63), 1u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(signExtend(0b1000, 4), -8);
  EXPECT_EQ(signExtend(0b0111, 4), 7);
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0xFF, 9), 255);
  EXPECT_EQ(signExtend(~uint64_t(0), 64), -1);
}

TEST(Bits, SignExtendIsIdempotentOnWidth) {
  Xoshiro256 Rng(1);
  for (int I = 0; I != 1000; ++I) {
    unsigned Width = 1 + static_cast<unsigned>(Rng.nextBelow(64));
    uint64_t V = Rng.next() & lowBitsMask(Width);
    int64_t S = signExtend(V, Width);
    // Re-truncating the extension recovers the original bits.
    EXPECT_EQ(truncateToWidth(static_cast<uint64_t>(S), Width), V);
  }
}

TEST(Bits, ArithmeticShiftRight) {
  EXPECT_EQ(arithmeticShiftRight(0b1000, 2, 4), 0b1110u);
  EXPECT_EQ(arithmeticShiftRight(0b0100, 2, 4), 0b0001u);
  EXPECT_EQ(arithmeticShiftRight(0x8000'0000'0000'0000u, 63, 64),
            ~uint64_t(0));
}

TEST(Bits, ParseBinary) {
  uint64_t V = 0;
  EXPECT_TRUE(parseBinary("1011", 4, V));
  EXPECT_EQ(V, 0b1011u);
  EXPECT_FALSE(parseBinary("10a1", 4, V));
  EXPECT_FALSE(parseBinary("", 0, V));
  std::string Wide(65, '1');
  EXPECT_FALSE(parseBinary(Wide.c_str(), 65, V));
  std::string Max(64, '1');
  EXPECT_TRUE(parseBinary(Max.c_str(), 64, V));
  EXPECT_EQ(V, ~uint64_t(0));
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, DeterministicGivenSeed) {
  Xoshiro256 A(42);
  Xoshiro256 B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiverge) {
  Xoshiro256 A(1);
  Xoshiro256 B(2);
  unsigned Matches = 0;
  for (int I = 0; I != 100; ++I)
    Matches += A.next() == B.next();
  EXPECT_LT(Matches, 3u);
}

TEST(Random, NextBelowStaysInRange) {
  Xoshiro256 Rng(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 1000ull, (1ull << 63) + 1}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(Random, NextBelowIsRoughlyUniform) {
  Xoshiro256 Rng(9);
  unsigned Counts[8] = {};
  constexpr unsigned Draws = 80000;
  for (unsigned I = 0; I != Draws; ++I)
    ++Counts[Rng.nextBelow(8)];
  for (unsigned C : Counts) {
    EXPECT_GT(C, Draws / 8 - Draws / 40);
    EXPECT_LT(C, Draws / 8 + Draws / 40);
  }
}

TEST(Random, ReseedRestartsStream) {
  Xoshiro256 Rng(5);
  uint64_t First = Rng.next();
  Rng.next();
  Rng.reseed(5);
  EXPECT_EQ(Rng.next(), First);
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

TEST(Stats, DiscreteCdfPoints) {
  DiscreteCdf Cdf;
  for (int64_t V : {-1, -1, 0, 2, 2, 2})
    Cdf.add(V);
  EXPECT_EQ(Cdf.totalCount(), 6u);
  EXPECT_DOUBLE_EQ(Cdf.fractionAt(-1), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(Cdf.fractionBelow(2), 3.0 / 6.0);
  std::vector<CdfPoint> Points = Cdf.points();
  ASSERT_EQ(Points.size(), 3u);
  EXPECT_DOUBLE_EQ(Points.back().CumulativeFraction, 1.0);
  EXPECT_DOUBLE_EQ(Points[0].X, -1.0);
}

TEST(Stats, EmptyCdf) {
  DiscreteCdf Cdf;
  EXPECT_EQ(Cdf.totalCount(), 0u);
  EXPECT_TRUE(Cdf.points().empty());
  EXPECT_DOUBLE_EQ(Cdf.fractionBelow(5), 0.0);
}

TEST(Stats, SampleSummaryMoments) {
  SampleSummary S;
  for (uint64_t V : {10u, 20u, 30u, 40u})
    S.add(V);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.mean(), 25.0);
  EXPECT_EQ(S.min(), 10u);
  EXPECT_EQ(S.max(), 40u);
  EXPECT_DOUBLE_EQ(S.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(S.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(S.percentile(50), 25.0);
}

TEST(Stats, SampleSummaryCdfDownsampling) {
  SampleSummary S;
  for (uint64_t V = 1; V <= 1000; ++V)
    S.add(V);
  std::vector<CdfPoint> Points = S.cdf(10);
  ASSERT_FALSE(Points.empty());
  EXPECT_LE(Points.size(), 11u);
  EXPECT_DOUBLE_EQ(Points.back().CumulativeFraction, 1.0);
  for (size_t I = 1; I < Points.size(); ++I)
    EXPECT_GE(Points[I].X, Points[I - 1].X);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(Table, AlignedRendering) {
  TextTable T({"name", "value"});
  T.addRowOf("x", 42);
  T.addRowOf("longer-name", 7);
  char *Buffer = nullptr;
  size_t Size = 0;
  FILE *Mem = open_memstream(&Buffer, &Size);
  T.printAligned(Mem);
  fclose(Mem);
  std::string Text(Buffer, Size);
  free(Buffer);
  EXPECT_NE(Text.find("name         value"), std::string::npos);
  EXPECT_NE(Text.find("longer-name  7"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  TextTable T({"a", "b"});
  T.addRow({"plain", "has,comma"});
  T.addRow({"has\"quote", "x"});
  char *Buffer = nullptr;
  size_t Size = 0;
  FILE *Mem = open_memstream(&Buffer, &Size);
  T.printCsv(Mem);
  fclose(Mem);
  std::string Text(Buffer, Size);
  free(Buffer);
  EXPECT_NE(Text.find("plain,\"has,comma\""), std::string::npos);
  EXPECT_NE(Text.find("\"has\"\"quote\",x"), std::string::npos);
}

TEST(Table, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  // Long outputs exceed any fixed internal buffer.
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 500u);
}

//===----------------------------------------------------------------------===//
// CycleTimer
//===----------------------------------------------------------------------===//

TEST(CycleTimer, CounterIsMonotonicEnough) {
  uint64_t A = readCycleCounter();
  uint64_t B = readCycleCounter();
  EXPECT_GE(B, A);
  EXPECT_NE(std::strlen(cycleCounterUnit()), 0u);
}

TEST(CycleTimer, MinOverTrialsRunsAllTrials) {
  uint64_t Sink = 0;
  unsigned Calls = 0;
  uint64_t Best = minCyclesOverTrials(
      10,
      [&] {
        ++Calls;
        return uint64_t(1);
      },
      Sink);
  EXPECT_EQ(Calls, 10u);
  EXPECT_EQ(Sink, 10u);
  EXPECT_LT(Best, ~uint64_t(0));
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, DefaultConstructionUsesHardwareConcurrency) {
  ThreadPool Pool;
  EXPECT_EQ(Pool.threadCount(), ThreadPool::hardwareConcurrency());
  EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Counter{0};
  for (unsigned I = 0; I != 1000; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1000u);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool Pool(2);
  std::atomic<unsigned> Counter{0};
  for (unsigned Batch = 0; Batch != 3; ++Batch) {
    for (unsigned I = 0; I != 100; ++I)
      Pool.submit([&Counter] { ++Counter; });
    Pool.wait();
    EXPECT_EQ(Counter.load(), (Batch + 1) * 100);
  }
}

TEST(ThreadPool, WaitCoversTasksSpawnedByTasks) {
  ThreadPool Pool(3);
  std::atomic<unsigned> Counter{0};
  for (unsigned I = 0; I != 50; ++I)
    Pool.submit([&Pool, &Counter] {
      // A worker re-submitting lands on its own deque (LIFO locality);
      // wait() must still see the child as pending.
      Pool.submit([&Counter] { ++Counter; });
    });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 50u);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  Pool.wait();
}

TEST(ThreadPool, SingleThreadPoolStillDrains) {
  ThreadPool Pool(1);
  std::atomic<unsigned> Counter{0};
  for (unsigned I = 0; I != 200; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 200u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<unsigned> Counter{0};
  {
    ThreadPool Pool(2);
    for (unsigned I = 0; I != 100; ++I)
      Pool.submit([&Counter] { ++Counter; });
  }
  EXPECT_EQ(Counter.load(), 100u);
}

} // namespace
