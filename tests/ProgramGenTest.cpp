//===- tests/ProgramGenTest.cpp - Program generator invariants ------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the generator contract the service and fuzz layers rely on:
/// every generated program (and every mutant) passes Program::validate(),
/// streams are deterministic in the seed, rejections carry witnesses, and
/// the verdict-mixing profiles really produce both verdicts.
///
//===----------------------------------------------------------------------===//

#include "service/ProgramGen.h"

#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"

#include <gtest/gtest.h>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

constexpr GenProfile AllProfiles[] = {
    GenProfile::AluMix,  GenProfile::BoundsCheck, GenProfile::PacketFilter,
    GenProfile::Loops,   GenProfile::MaskIdx,     GenProfile::Scaled,
    GenProfile::Mixed};

TEST(ProgramGen, EveryProfileEmitsOnlyStructurallyValidPrograms) {
  for (GenProfile Profile : AllProfiles) {
    GenOptions Opts;
    Opts.Profile = Profile;
    ProgramGen Gen(0xBEEF ^ static_cast<uint64_t>(Profile), Opts);
    for (unsigned I = 0; I != 200; ++I) {
      Program P = Gen.next();
      EXPECT_FALSE(P.validate().has_value())
          << genProfileName(Profile) << " program " << I << ":\n"
          << P.disassemble();
      EXPECT_GT(P.size(), 0u);
    }
  }
}

TEST(ProgramGen, MutationChainsStayStructurallyValid) {
  GenOptions Opts;
  ProgramGen Gen(0xCAFE, Opts);
  for (unsigned I = 0; I != 50; ++I) {
    Program P = Gen.next();
    // Mutants of mutants: structural validity must survive arbitrarily
    // deep edit chains.
    for (unsigned Depth = 0; Depth != 8; ++Depth) {
      P = Gen.mutate(P);
      ASSERT_FALSE(P.validate().has_value())
          << "mutation depth " << Depth << ":\n"
          << P.disassemble();
    }
  }
}

TEST(ProgramGen, StreamIsDeterministicInTheSeed) {
  GenOptions Opts;
  ProgramGen A(42, Opts);
  ProgramGen B(42, Opts);
  bool AnyDifferentFromThirdSeed = false;
  ProgramGen C(43, Opts);
  for (unsigned I = 0; I != 50; ++I) {
    Program PA = A.next();
    Program PB = B.next();
    EXPECT_EQ(PA.disassemble(), PB.disassemble()) << "program " << I;
    AnyDifferentFromThirdSeed |= PA.disassemble() != C.next().disassemble();
  }
  EXPECT_TRUE(AnyDifferentFromThirdSeed);
}

TEST(ProgramGen, BoundsCheckProfileMixesVerdictsAndRejectsAreWitnessed) {
  GenOptions Opts;
  Opts.Profile = GenProfile::BoundsCheck;
  ProgramGen Gen(2022, Opts);
  unsigned Accepted = 0;
  unsigned Rejected = 0;
  for (unsigned I = 0; I != 200; ++I) {
    Program P = Gen.next();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    if (Report.Accepted) {
      ++Accepted;
    } else {
      ++Rejected;
      // Rejections must be witnessed by a structural error or violation.
      EXPECT_TRUE(!Report.StructuralError.empty() ||
                  !Report.Violations.empty())
          << P.disassemble();
    }
  }
  // The guard constants straddle the region size by construction, so a
  // healthy stream contains plenty of both verdicts.
  EXPECT_GT(Accepted, 20u);
  EXPECT_GT(Rejected, 20u);
}

TEST(ProgramGen, AluMixProfileIsAlwaysAccepted) {
  GenOptions Opts;
  Opts.Profile = GenProfile::AluMix;
  ProgramGen Gen(7, Opts);
  for (unsigned I = 0; I != 100; ++I) {
    Program P = Gen.next();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    EXPECT_TRUE(Report.Accepted) << Report.toString(P);
  }
}

TEST(ProgramGen, LoopProfileConvergesAndTerminatesConcretely) {
  GenOptions Opts;
  Opts.Profile = GenProfile::Loops;
  ProgramGen Gen(99, Opts);
  for (unsigned I = 0; I != 100; ++I) {
    Program P = Gen.next();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    // Widening must keep the analyzer total on every looping shape.
    EXPECT_TRUE(Report.Accepted) << Report.toString(P);
    if (!Report.Accepted)
      continue;
    std::vector<uint8_t> Mem(Opts.MemSize, 0xFF); // Max trip counts.
    ExecResult R = Interpreter(P, Mem).run(/*StepLimit=*/4096);
    EXPECT_TRUE(R.ok()) << R.Message << "\n" << P.disassemble();
  }
}

TEST(ProgramGen, MaskIdxProfileComposesMasksAndMixesVerdicts) {
  GenOptions Opts;
  Opts.Profile = GenProfile::MaskIdx;
  ProgramGen Gen(2022, Opts);
  unsigned Accepted = 0, Rejected = 0;
  for (unsigned I = 0; I != 200; ++I) {
    Program P = Gen.next();
    // The profile's whole point: indices built by AND/OR/shift chains of
    // narrow loads, the known-bits composition tnums track exactly.
    bool HasAnd = false, HasOr = false, HasNarrowLoad = false;
    for (const Insn &In : P) {
      HasAnd |= In.InsnKind == Insn::Kind::Alu && In.Alu == AluOp::And;
      HasOr |= In.InsnKind == Insn::Kind::Alu && In.Alu == AluOp::Or;
      HasNarrowLoad |= In.InsnKind == Insn::Kind::Load && In.Size <= 2;
    }
    EXPECT_TRUE(HasAnd && HasOr && HasNarrowLoad) << P.disassemble();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    if (Report.Accepted) {
      ++Accepted;
    } else {
      ++Rejected;
      EXPECT_TRUE(!Report.StructuralError.empty() ||
                  !Report.Violations.empty())
          << P.disassemble();
    }
  }
  // Mask/offset draws straddle the region bound by construction, so the
  // stream must exercise both verdicts.
  EXPECT_GT(Accepted, 20u);
  EXPECT_GT(Rejected, 20u);
}

TEST(ProgramGen, ScaledProfileScalesAMaskedIndex) {
  GenOptions Opts;
  Opts.Profile = GenProfile::Scaled;
  ProgramGen Gen(2022, Opts);
  unsigned Accepted = 0, Rejected = 0;
  for (unsigned I = 0; I != 200; ++I) {
    Program P = Gen.next();
    // A masked narrow load scaled by a left shift or the equivalent
    // power-of-two multiply before indexing.
    bool HasMask = false, HasScale = false;
    for (const Insn &In : P) {
      HasMask |= In.InsnKind == Insn::Kind::Alu && In.Alu == AluOp::And;
      HasScale |= In.InsnKind == Insn::Kind::Alu &&
                  (In.Alu == AluOp::Lsh || In.Alu == AluOp::Mul);
    }
    EXPECT_TRUE(HasMask && HasScale) << P.disassemble();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    if (Report.Accepted) {
      ++Accepted;
    } else {
      ++Rejected;
      EXPECT_TRUE(!Report.StructuralError.empty() ||
                  !Report.Violations.empty())
          << P.disassemble();
    }
  }
  EXPECT_GT(Accepted, 20u);
  EXPECT_GT(Rejected, 20u);
}

TEST(ProgramGen, NarrowingMutationsProduceSubwordAccesses) {
  GenOptions Opts;
  Opts.Profile = GenProfile::PacketFilter; // Plenty of loads to edit.
  ProgramGen Gen(0xD00D, Opts);
  unsigned Byte = 0, Half = 0, Wide = 0;
  for (unsigned I = 0; I != 100; ++I) {
    Program P = Gen.next();
    for (unsigned Depth = 0; Depth != 8; ++Depth) {
      P = Gen.mutate(P);
      ASSERT_FALSE(P.validate().has_value()) << P.disassemble();
      for (const Insn &In : P) {
        if (In.InsnKind != Insn::Kind::Load &&
            In.InsnKind != Insn::Kind::Store)
          continue;
        Byte += In.Size == 1;
        Half += In.Size == 2;
        Wide += In.Size >= 4;
      }
    }
  }
  // The mutation operator's narrowing arm must actually bias the stream
  // toward sub-word accesses (the partial-extension paths of §II-C);
  // wide accesses still survive (the arm is a bias, not a rewrite).
  EXPECT_GT(Byte, 100u);
  EXPECT_GT(Half, 100u);
  EXPECT_GT(Wide, 100u);
}

TEST(ProgramGen, ParseAndPrintProfileNamesRoundTrip) {
  for (GenProfile Profile : AllProfiles) {
    std::optional<GenProfile> Parsed =
        parseGenProfile(genProfileName(Profile));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, Profile);
  }
  EXPECT_FALSE(parseGenProfile("warp-drive").has_value());
}

} // namespace
