//===- tests/ProgramGenTest.cpp - Program generator invariants ------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the generator contract the service and fuzz layers rely on:
/// every generated program (and every mutant) passes Program::validate(),
/// streams are deterministic in the seed, rejections carry witnesses, and
/// the verdict-mixing profiles really produce both verdicts.
///
//===----------------------------------------------------------------------===//

#include "service/ProgramGen.h"

#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"

#include <gtest/gtest.h>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

constexpr GenProfile AllProfiles[] = {GenProfile::AluMix,
                                      GenProfile::BoundsCheck,
                                      GenProfile::PacketFilter,
                                      GenProfile::Loops, GenProfile::Mixed};

TEST(ProgramGen, EveryProfileEmitsOnlyStructurallyValidPrograms) {
  for (GenProfile Profile : AllProfiles) {
    GenOptions Opts;
    Opts.Profile = Profile;
    ProgramGen Gen(0xBEEF ^ static_cast<uint64_t>(Profile), Opts);
    for (unsigned I = 0; I != 200; ++I) {
      Program P = Gen.next();
      EXPECT_FALSE(P.validate().has_value())
          << genProfileName(Profile) << " program " << I << ":\n"
          << P.disassemble();
      EXPECT_GT(P.size(), 0u);
    }
  }
}

TEST(ProgramGen, MutationChainsStayStructurallyValid) {
  GenOptions Opts;
  ProgramGen Gen(0xCAFE, Opts);
  for (unsigned I = 0; I != 50; ++I) {
    Program P = Gen.next();
    // Mutants of mutants: structural validity must survive arbitrarily
    // deep edit chains.
    for (unsigned Depth = 0; Depth != 8; ++Depth) {
      P = Gen.mutate(P);
      ASSERT_FALSE(P.validate().has_value())
          << "mutation depth " << Depth << ":\n"
          << P.disassemble();
    }
  }
}

TEST(ProgramGen, StreamIsDeterministicInTheSeed) {
  GenOptions Opts;
  ProgramGen A(42, Opts);
  ProgramGen B(42, Opts);
  bool AnyDifferentFromThirdSeed = false;
  ProgramGen C(43, Opts);
  for (unsigned I = 0; I != 50; ++I) {
    Program PA = A.next();
    Program PB = B.next();
    EXPECT_EQ(PA.disassemble(), PB.disassemble()) << "program " << I;
    AnyDifferentFromThirdSeed |= PA.disassemble() != C.next().disassemble();
  }
  EXPECT_TRUE(AnyDifferentFromThirdSeed);
}

TEST(ProgramGen, BoundsCheckProfileMixesVerdictsAndRejectsAreWitnessed) {
  GenOptions Opts;
  Opts.Profile = GenProfile::BoundsCheck;
  ProgramGen Gen(2022, Opts);
  unsigned Accepted = 0;
  unsigned Rejected = 0;
  for (unsigned I = 0; I != 200; ++I) {
    Program P = Gen.next();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    if (Report.Accepted) {
      ++Accepted;
    } else {
      ++Rejected;
      // Rejections must be witnessed by a structural error or violation.
      EXPECT_TRUE(!Report.StructuralError.empty() ||
                  !Report.Violations.empty())
          << P.disassemble();
    }
  }
  // The guard constants straddle the region size by construction, so a
  // healthy stream contains plenty of both verdicts.
  EXPECT_GT(Accepted, 20u);
  EXPECT_GT(Rejected, 20u);
}

TEST(ProgramGen, AluMixProfileIsAlwaysAccepted) {
  GenOptions Opts;
  Opts.Profile = GenProfile::AluMix;
  ProgramGen Gen(7, Opts);
  for (unsigned I = 0; I != 100; ++I) {
    Program P = Gen.next();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    EXPECT_TRUE(Report.Accepted) << Report.toString(P);
  }
}

TEST(ProgramGen, LoopProfileConvergesAndTerminatesConcretely) {
  GenOptions Opts;
  Opts.Profile = GenProfile::Loops;
  ProgramGen Gen(99, Opts);
  for (unsigned I = 0; I != 100; ++I) {
    Program P = Gen.next();
    VerifierReport Report = verifyProgram(P, Opts.MemSize);
    // Widening must keep the analyzer total on every looping shape.
    EXPECT_TRUE(Report.Accepted) << Report.toString(P);
    if (!Report.Accepted)
      continue;
    std::vector<uint8_t> Mem(Opts.MemSize, 0xFF); // Max trip counts.
    ExecResult R = Interpreter(P, Mem).run(/*StepLimit=*/4096);
    EXPECT_TRUE(R.ok()) << R.Message << "\n" << P.disassemble();
  }
}

TEST(ProgramGen, ParseAndPrintProfileNamesRoundTrip) {
  for (GenProfile Profile : AllProfiles) {
    std::optional<GenProfile> Parsed =
        parseGenProfile(genProfileName(Profile));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, Profile);
  }
  EXPECT_FALSE(parseGenProfile("warp-drive").has_value());
}

} // namespace
