//===- tests/DomainTest.cpp - Interval/SignedRange/RegValue tests ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "domain/RegValue.h"

#include "support/Random.h"
#include "tnum/TnumEnum.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

using namespace tnums;

namespace {

//===----------------------------------------------------------------------===//
// Interval
//===----------------------------------------------------------------------===//

TEST(Interval, BasicLattice) {
  Interval A(2, 5);
  Interval B(4, 9);
  EXPECT_EQ(A.joinWith(B), Interval(2, 9));
  EXPECT_EQ(A.meetWith(B), Interval(4, 5));
  EXPECT_TRUE(Interval(4, 5).isSubsetOf(A.joinWith(B)));
  EXPECT_TRUE(Interval(2, 1000).meetWith(Interval(2000, 3000)).isBottom());
  EXPECT_TRUE(Interval::makeBottom().isSubsetOf(A));
  EXPECT_FALSE(A.isSubsetOf(Interval::makeBottom()));
}

TEST(Interval, SizeAndContains) {
  Interval A(10, 13);
  EXPECT_EQ(A.size(), 4u);
  EXPECT_TRUE(A.contains(10));
  EXPECT_TRUE(A.contains(13));
  EXPECT_FALSE(A.contains(14));
  EXPECT_EQ(Interval::makeTop(64).size(), ~uint64_t(0));
  EXPECT_EQ(Interval::makeBottom().size(), 0u);
}

TEST(Interval, AddNoOverflow) {
  EXPECT_EQ(intervalAdd(Interval(1, 2), Interval(10, 20), 8),
            Interval(11, 22));
}

TEST(Interval, AddOverflowGoesTop) {
  EXPECT_EQ(intervalAdd(Interval(200, 250), Interval(10, 60), 8),
            Interval::makeTop(8));
}

TEST(Interval, SubUnderflowGoesTop) {
  EXPECT_EQ(intervalSub(Interval(5, 10), Interval(3, 4), 8), Interval(1, 7));
  EXPECT_EQ(intervalSub(Interval(5, 10), Interval(6, 7), 8),
            Interval::makeTop(8));
}

TEST(Interval, MulAndShift) {
  EXPECT_EQ(intervalMul(Interval(3, 5), Interval(2, 4), 8), Interval(6, 20));
  EXPECT_EQ(intervalMul(Interval(100, 200), Interval(2, 3), 8),
            Interval::makeTop(8));
  EXPECT_EQ(intervalShl(Interval(1, 3), 2, 8), Interval(4, 12));
  EXPECT_EQ(intervalShl(Interval(100, 200), 2, 8), Interval::makeTop(8));
  EXPECT_EQ(intervalShr(Interval(8, 64), 3), Interval(1, 8));
}

TEST(Interval, DivConventions) {
  EXPECT_EQ(intervalDiv(Interval(10, 20), Interval::makeConstant(2), 8),
            Interval(5, 10));
  // Divisor range including zero: result may be 0 (BPF x/0) or tiny.
  Interval R = intervalDiv(Interval(10, 20), Interval(0, 3), 8);
  EXPECT_TRUE(R.contains(0));
  EXPECT_TRUE(R.contains(20));
}

TEST(Interval, RandomizedSoundness) {
  // Sampled soundness of every interval op at width 8.
  Xoshiro256 Rng(101);
  for (int I = 0; I != 3000; ++I) {
    uint64_t AMin = Rng.nextBelow(256), ASpan = Rng.nextBelow(256 - AMin);
    uint64_t BMin = Rng.nextBelow(256), BSpan = Rng.nextBelow(256 - BMin);
    Interval A(AMin, AMin + ASpan);
    Interval B(BMin, BMin + BSpan);
    uint64_t X = AMin + Rng.nextBelow(ASpan + 1);
    uint64_t Y = BMin + Rng.nextBelow(BSpan + 1);
    EXPECT_TRUE(intervalAdd(A, B, 8).contains((X + Y) & 0xff));
    EXPECT_TRUE(intervalSub(A, B, 8).contains((X - Y) & 0xff));
    EXPECT_TRUE(intervalMul(A, B, 8).contains((X * Y) & 0xff));
    EXPECT_TRUE(intervalAnd(A, B).contains(X & Y));
    EXPECT_TRUE(intervalOr(A, B, 8).contains(X | Y));
    EXPECT_TRUE(
        intervalDiv(A, B, 8).contains(Y == 0 ? 0 : X / Y));
  }
}

//===----------------------------------------------------------------------===//
// SignedRange
//===----------------------------------------------------------------------===//

TEST(SignedRange, TopPerWidth) {
  EXPECT_EQ(SignedRange::makeTop(8), SignedRange(-128, 127));
  EXPECT_EQ(SignedRange::makeTop(64), SignedRange(INT64_MIN, INT64_MAX));
}

TEST(SignedRange, Lattice) {
  SignedRange A(-5, 3);
  SignedRange B(0, 9);
  EXPECT_EQ(A.joinWith(B), SignedRange(-5, 9));
  EXPECT_EQ(A.meetWith(B), SignedRange(0, 3));
  EXPECT_TRUE(SignedRange(4, 9).meetWith(SignedRange(-3, 2)).isBottom());
}

TEST(SignedRange, ArithmeticOverflowGoesTop) {
  EXPECT_EQ(signedAdd(SignedRange(-5, 3), SignedRange(2, 4), 8),
            SignedRange(-3, 7));
  EXPECT_EQ(signedAdd(SignedRange(100, 120), SignedRange(20, 30), 8),
            SignedRange::makeTop(8));
  EXPECT_EQ(signedSub(SignedRange(-100, -90), SignedRange(50, 60), 8),
            SignedRange::makeTop(8));
  EXPECT_EQ(signedNeg(SignedRange(-3, 7), 8), SignedRange(-7, 3));
  EXPECT_EQ(signedNeg(SignedRange(-128, 0), 8), SignedRange::makeTop(8));
  EXPECT_EQ(signedArshift(SignedRange(-16, 8), 2), SignedRange(-4, 2));
}

//===----------------------------------------------------------------------===//
// RegValue reduced product
//===----------------------------------------------------------------------===//

TEST(RegValue, ConstantIsFullyKnownEverywhere) {
  RegValue V = RegValue::makeConstant(42, 8);
  EXPECT_TRUE(V.isConstant());
  EXPECT_EQ(V.constantValue(), 42u);
  EXPECT_EQ(V.unsignedBounds(), Interval(42, 42));
  EXPECT_EQ(V.signedBounds(), SignedRange(42, 42));
  EXPECT_TRUE(V.contains(42));
  EXPECT_FALSE(V.contains(43));
}

TEST(RegValue, PaperIntroReduction) {
  // x abstracted to tnum 01µ0 must yield umax <= 6 < 8: the fact the
  // analyzer uses to prove the access safe.
  RegValue V = RegValue::fromTnum(*Tnum::parse("01u0"), 4);
  EXPECT_EQ(V.unsignedBounds().min(), 4u);
  EXPECT_EQ(V.unsignedBounds().max(), 6u);
  EXPECT_TRUE(V.signedBounds().isNonNegative());
}

TEST(RegValue, RangeRefinesTnum) {
  // [8, 11] forces the common high-bit prefix 10xx into the tnum.
  RegValue V = RegValue::fromUnsignedRange(8, 11, 4);
  EXPECT_EQ(V.tnum(), *Tnum::parse("10uu"));
}

TEST(RegValue, SignedUnsignedSync) {
  // A non-negative signed range within width 8 pins the sign bit to 0.
  RegValue V = RegValue::makeTop(8).refineSigned(SignedRange(0, 100));
  EXPECT_EQ(V.tnum().tritAt(7), Trit::Zero);
  EXPECT_LE(V.unsignedBounds().max(), 127u);
}

TEST(RegValue, NegativeSignedRangePinsSignBit) {
  RegValue V = RegValue::makeTop(8).refineSigned(SignedRange(-100, -1));
  EXPECT_EQ(V.tnum().tritAt(7), Trit::One);
  EXPECT_GE(V.unsignedBounds().min(), 128u);
}

TEST(RegValue, ContradictionCollapsesToBottom) {
  RegValue V = RegValue::makeConstant(5, 8);
  EXPECT_TRUE(V.refineUnsigned(Interval(6, 10)).isBottom());
  EXPECT_TRUE(V.refineTnum(Tnum::makeConstant(4)).isBottom());
  EXPECT_TRUE(V.refineSigned(SignedRange(-3, 4)).isBottom());
}

TEST(RegValue, MeetJoinRoundTrip) {
  RegValue A = RegValue::fromUnsignedRange(0, 10, 8);
  RegValue B = RegValue::fromUnsignedRange(5, 20, 8);
  RegValue J = A.joinWith(B);
  RegValue M = A.meetWith(B);
  EXPECT_TRUE(A.isSubsetOf(J));
  EXPECT_TRUE(B.isSubsetOf(J));
  EXPECT_TRUE(M.isSubsetOf(A));
  EXPECT_TRUE(M.isSubsetOf(B));
  EXPECT_EQ(M.unsignedBounds(), Interval(5, 10));
}

TEST(RegValue, SyncIsSoundExhaustiveWidth4) {
  // For every width-4 tnum, the reduced product must still contain every
  // member after reduction (reduction refines, never drops).
  for (const Tnum &T : allWellFormedTnums(4)) {
    RegValue V = RegValue::fromTnum(T, 4);
    forEachMember(T, [&](uint64_t X) { EXPECT_TRUE(V.contains(X)); });
  }
}

class RegValueBinary : public ::testing::TestWithParam<BinaryOp> {};

TEST_P(RegValueBinary, SoundOnRandomWidth8Inputs) {
  BinaryOp Op = GetParam();
  Xoshiro256 Rng(0xABCD + static_cast<uint64_t>(Op));
  for (int I = 0; I != 2000; ++I) {
    Tnum TP = randomWellFormedTnum(Rng, 8);
    Tnum TQ = randomWellFormedTnum(Rng, 8);
    RegValue P = RegValue::fromTnum(TP, 8);
    RegValue Q = RegValue::fromTnum(TQ, 8);
    RegValue R = applyBinary(Op, P, Q);
    // Sample concrete operand pairs.
    for (int S = 0; S != 8; ++S) {
      uint64_t X = TP.value() | (Rng.next() & TP.mask());
      uint64_t Y = TQ.value() | (Rng.next() & TQ.mask());
      uint64_t Z = applyConcreteBinary(Op, X, Y, 8);
      EXPECT_TRUE(R.contains(Z))
          << binaryOpName(Op) << " P=" << P.toString() << " Q=" << Q.toString()
          << " x=" << X << " y=" << Y << " z=" << Z << " R=" << R.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RegValueBinary, ::testing::ValuesIn(AllBinaryOps),
    [](const ::testing::TestParamInfo<BinaryOp> &Info) {
      return std::string(binaryOpName(Info.param));
    });

//===----------------------------------------------------------------------===//
// Branch refinement
//===----------------------------------------------------------------------===//

constexpr CompareOp AllCompareOps[] = {
    CompareOp::Eq,  CompareOp::Ne,  CompareOp::Lt,  CompareOp::Le,
    CompareOp::Gt,  CompareOp::Ge,  CompareOp::SLt, CompareOp::SLe,
    CompareOp::SGt, CompareOp::SGe, CompareOp::Set};

TEST(Refinement, EqMeetsBothSides) {
  RegValue L = RegValue::fromUnsignedRange(0, 10, 8);
  RegValue R = RegValue::fromUnsignedRange(5, 20, 8);
  refineByComparison(CompareOp::Eq, /*Taken=*/true, L, R);
  EXPECT_EQ(L.unsignedBounds(), Interval(5, 10));
  EXPECT_EQ(R.unsignedBounds(), Interval(5, 10));
}

TEST(Refinement, UltExcludesUpperPart) {
  RegValue L = RegValue::makeTop(8);
  RegValue R = RegValue::makeConstant(8, 8);
  refineByComparison(CompareOp::Lt, /*Taken=*/true, L, R);
  EXPECT_EQ(L.unsignedBounds(), Interval(0, 7));
  refineByComparison(CompareOp::Lt, /*Taken=*/false, L, R);
  // Now L < 8 and L >= 8: contradiction.
  EXPECT_TRUE(L.isBottom());
}

TEST(Refinement, PaperIntroBranch) {
  // if (x > 8) goto reject -- fall-through knows x <= 8.
  RegValue X = RegValue::makeTop(64);
  RegValue K = RegValue::makeConstant(8, 64);
  refineByComparison(CompareOp::Gt, /*Taken=*/false, X, K);
  EXPECT_EQ(X.unsignedBounds().max(), 8u);
}

TEST(Refinement, JsetPinsSingleBit) {
  RegValue L = RegValue::makeTop(8);
  RegValue R = RegValue::makeConstant(0x10, 8);
  refineByComparison(CompareOp::Set, /*Taken=*/true, L, R);
  EXPECT_EQ(L.tnum().tritAt(4), Trit::One);
  RegValue L2 = RegValue::makeTop(8);
  refineByComparison(CompareOp::Set, /*Taken=*/false, L2, R);
  EXPECT_EQ(L2.tnum().tritAt(4), Trit::Zero);
}

TEST(Refinement, NeTrimsEndpointConstant) {
  RegValue L = RegValue::fromUnsignedRange(5, 10, 8);
  RegValue R = RegValue::makeConstant(5, 8);
  refineByComparison(CompareOp::Ne, /*Taken=*/true, L, R);
  EXPECT_EQ(L.unsignedBounds().min(), 6u);
}

TEST(Refinement, InfeasibleBranchGoesBottom) {
  RegValue L = RegValue::makeConstant(3, 8);
  RegValue R = RegValue::makeConstant(3, 8);
  refineByComparison(CompareOp::Ne, /*Taken=*/true, L, R);
  EXPECT_TRUE(L.isBottom());
}

class RefinementSoundness : public ::testing::TestWithParam<CompareOp> {};

TEST_P(RefinementSoundness, KeepsSatisfyingPairs) {
  // Soundness of refineByComparison: every concrete pair satisfying the
  // assumed branch direction must survive refinement. Randomized at
  // width 8 over tnum-shaped inputs.
  CompareOp Op = GetParam();
  Xoshiro256 Rng(0x5EED + static_cast<uint64_t>(Op));
  for (int I = 0; I != 2000; ++I) {
    Tnum TL = randomWellFormedTnum(Rng, 8);
    Tnum TR = randomWellFormedTnum(Rng, 8);
    RegValue L0 = RegValue::fromTnum(TL, 8);
    RegValue R0 = RegValue::fromTnum(TR, 8);
    for (bool Taken : {false, true}) {
      RegValue L = L0;
      RegValue R = R0;
      refineByComparison(Op, Taken, L, R);
      for (int S = 0; S != 8; ++S) {
        uint64_t X = TL.value() | (Rng.next() & TL.mask());
        uint64_t Y = TR.value() | (Rng.next() & TR.mask());
        if (applyConcreteCompare(Op, X, Y, 8) != Taken)
          continue;
        EXPECT_TRUE(L.contains(X) && R.contains(Y))
            << compareOpName(Op) << " taken=" << Taken << " x=" << X
            << " y=" << Y << " L=" << L.toString() << " R=" << R.toString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompares, RefinementSoundness, ::testing::ValuesIn(AllCompareOps),
    [](const ::testing::TestParamInfo<CompareOp> &Info) {
      return std::string(compareOpName(Info.param));
    });

} // namespace
