//===- tests/BpfTest.cpp - Program/Builder/Interpreter/Cfg tests ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"
#include "bpf/Cfg.h"
#include "bpf/Interpreter.h"

#include <gtest/gtest.h>

using namespace tnums;
using namespace tnums::bpf;

namespace {

Program simpleReturn(int64_t Value) {
  return ProgramBuilder().movImm(R0, Value).exit().build();
}

//===----------------------------------------------------------------------===//
// Structural validation
//===----------------------------------------------------------------------===//

TEST(ProgramValidate, AcceptsMinimalProgram) {
  EXPECT_FALSE(simpleReturn(0).validate().has_value());
}

TEST(ProgramValidate, RejectsEmptyProgram) {
  EXPECT_TRUE(Program().validate().has_value());
}

TEST(ProgramValidate, RejectsWriteToR10) {
  Program P({Insn::movImm(R10, 0), Insn::exit()});
  std::optional<std::string> Error = P.validate();
  ASSERT_TRUE(Error.has_value());
  EXPECT_NE(Error->find("r10"), std::string::npos);
}

TEST(ProgramValidate, RejectsJumpOutOfRange) {
  Program P({Insn::ja(5), Insn::exit()});
  EXPECT_TRUE(P.validate().has_value());
  Program Back({Insn::ja(-3), Insn::exit()});
  EXPECT_TRUE(Back.validate().has_value());
}

TEST(ProgramValidate, RejectsFallthroughPastEnd) {
  Program P({Insn::movImm(R0, 1)});
  std::optional<std::string> Error = P.validate();
  ASSERT_TRUE(Error.has_value());
  EXPECT_NE(Error->find("fall-through"), std::string::npos);
}

TEST(ProgramValidate, RejectsBadRegister) {
  Insn Bad = Insn::movImm(R0, 1);
  Bad.Dst = 12;
  EXPECT_TRUE(Program({Bad, Insn::exit()}).validate().has_value());
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

TEST(Builder, ResolvesForwardAndBackwardLabels) {
  Program P = ProgramBuilder()
                  .movImm(R0, 0)
                  .label("loop")
                  .aluImm(AluOp::Add, R0, 1)
                  .jmpImm(CompareOp::Lt, R0, 3, "loop")
                  .ja("out")
                  .label("out")
                  .exit()
                  .build();
  EXPECT_FALSE(P.validate().has_value());
  // The conditional jump at index 2 targets index 1: offset -2.
  EXPECT_EQ(P.insn(2).Offset, -2);
  // The ja at index 3 targets index 4: offset 0.
  EXPECT_EQ(P.insn(3).Offset, 0);
}

TEST(Builder, DisassemblyIsReadable) {
  Program P = ProgramBuilder()
                  .load(R2, R1, 0, 1)
                  .jmpImm(CompareOp::Gt, R2, 8, "out")
                  .label("out")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  std::string Text = P.disassemble();
  EXPECT_NE(Text.find("r2 = *(u8 *)(r1 +0)"), std::string::npos);
  EXPECT_NE(Text.find("if r2 > 8 goto +0"), std::string::npos);
  EXPECT_NE(Text.find("exit"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// CFG
//===----------------------------------------------------------------------===//

TEST(CfgTest, StraightLine) {
  Program P = simpleReturn(7);
  Cfg G(P);
  EXPECT_EQ(G.successors(0), std::vector<size_t>{1});
  EXPECT_TRUE(G.successors(1).empty());
  EXPECT_FALSE(G.hasLoop());
  EXPECT_EQ(G.reversePostOrder(), (std::vector<size_t>{0, 1}));
}

TEST(CfgTest, ConditionalEdges) {
  Program P = ProgramBuilder()
                  .movImm(R0, 0)
                  .jmpImm(CompareOp::Eq, R0, 0, "target")
                  .aluImm(AluOp::Add, R0, 1)
                  .label("target")
                  .exit()
                  .build();
  Cfg G(P);
  EXPECT_EQ(G.successors(1), (std::vector<size_t>{2, 3}));
  EXPECT_EQ(G.predecessors(3), (std::vector<size_t>{1, 2}));
  EXPECT_FALSE(G.hasLoop());
}

TEST(CfgTest, DetectsLoop) {
  Program P = ProgramBuilder()
                  .movImm(R0, 0)
                  .label("loop")
                  .aluImm(AluOp::Add, R0, 1)
                  .jmpImm(CompareOp::Lt, R0, 10, "loop")
                  .exit()
                  .build();
  Cfg G(P);
  EXPECT_TRUE(G.hasLoop());
}

TEST(CfgTest, UnreachableCode) {
  Program P = ProgramBuilder()
                  .ja("end")
                  .movImm(R0, 1) // Dead.
                  .label("end")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  Cfg G(P);
  EXPECT_FALSE(G.isReachable(1));
  EXPECT_TRUE(G.isReachable(2));
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

TEST(Interp, ReturnsImmediate) {
  std::vector<uint8_t> Mem(16, 0);
  Interpreter I(simpleReturn(42), Mem);
  ExecResult R = I.run();
  ASSERT_TRUE(R.ok()) << R.Message;
  EXPECT_EQ(R.ReturnValue, 42u);
}

TEST(Interp, AluSemantics) {
  // r0 = ((5 + 3) * 2 - 6) / 2 % 4 = 10 / 2 % 4 = 5 % 4 = 1
  Program P = ProgramBuilder()
                  .movImm(R0, 5)
                  .aluImm(AluOp::Add, R0, 3)
                  .aluImm(AluOp::Mul, R0, 2)
                  .aluImm(AluOp::Sub, R0, 6)
                  .aluImm(AluOp::Div, R0, 2)
                  .aluImm(AluOp::Mod, R0, 4)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 1u);
}

TEST(Interp, DivModByZeroConventions) {
  Program P = ProgramBuilder()
                  .movImm(R3, 7)
                  .movImm(R4, 0)
                  .mov(R0, R3)
                  .alu(AluOp::Div, R0, R4) // 7 / 0 == 0
                  .mov(R5, R3)
                  .alu(AluOp::Mod, R5, R4) // 7 % 0 == 7
                  .alu(AluOp::Add, R0, R5)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 7u);
}

TEST(Interp, MemoryLoadStoreLittleEndian) {
  Program P = ProgramBuilder()
                  .storeImm(R1, 0, 0x11223344, 4)
                  .load(R0, R1, 0, 2)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 0x3344u);
  EXPECT_EQ(Mem[0], 0x44u);
  EXPECT_EQ(Mem[3], 0x11u);
}

TEST(Interp, StackIsAddressable) {
  Program P = ProgramBuilder()
                  .storeImm(R10, -8, 99, 8)
                  .load(R0, R10, -8, 8)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 99u);
}

TEST(Interp, OutOfBoundsLoadTraps) {
  Program P = ProgramBuilder().load(R0, R1, 16, 1).exit().build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  EXPECT_EQ(R.St, ExecResult::Status::OutOfBounds);
  EXPECT_EQ(R.FaultPc, 0u);
}

TEST(Interp, StraddlingAccessTraps) {
  // 8-byte load at offset 12 of a 16-byte region crosses the boundary.
  Program P = ProgramBuilder().load(R0, R1, 12, 8).exit().build();
  std::vector<uint8_t> Mem(16, 0);
  EXPECT_EQ(Interpreter(P, Mem).run().St, ExecResult::Status::OutOfBounds);
}

TEST(Interp, StackOverflowTraps) {
  Program P = ProgramBuilder().storeImm(R10, -520, 1, 8).exit().build();
  std::vector<uint8_t> Mem(16, 0);
  EXPECT_EQ(Interpreter(P, Mem).run().St, ExecResult::Status::OutOfBounds);
}

TEST(Interp, PositiveStackOffsetTraps) {
  // R10 is the top of the stack; nothing lives at or above it.
  Program P = ProgramBuilder().load(R0, R10, 0, 1).exit().build();
  std::vector<uint8_t> Mem(16, 0);
  EXPECT_EQ(Interpreter(P, Mem).run().St, ExecResult::Status::OutOfBounds);
}

TEST(Interp, UninitReadTraps) {
  Program P = ProgramBuilder().mov(R0, R5).exit().build();
  std::vector<uint8_t> Mem(16, 0);
  EXPECT_EQ(Interpreter(P, Mem).run().St, ExecResult::Status::UninitRead);
}

TEST(Interp, UninitR0AtExitTraps) {
  Program P = ProgramBuilder().exit().build();
  std::vector<uint8_t> Mem(16, 0);
  EXPECT_EQ(Interpreter(P, Mem).run().St, ExecResult::Status::UninitRead);
}

TEST(Interp, StepLimitTerminatesInfiniteLoop) {
  Program P = ProgramBuilder()
                  .movImm(R0, 0)
                  .label("spin")
                  .ja("spin")
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  EXPECT_EQ(Interpreter(P, Mem).run(1000).St, ExecResult::Status::StepLimit);
}

TEST(Interp, LoopComputesSum) {
  // sum = 1 + 2 + ... + 10 = 55
  Program P = ProgramBuilder()
                  .movImm(R0, 0)
                  .movImm(R3, 1)
                  .label("loop")
                  .alu(AluOp::Add, R0, R3)
                  .aluImm(AluOp::Add, R3, 1)
                  .jmpImm(CompareOp::Le, R3, 10, "loop")
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 55u);
}

TEST(Interp, SignedComparison) {
  // -1 s< 0 but -1 u> 0.
  Program P = ProgramBuilder()
                  .movImm(R3, -1)
                  .movImm(R0, 0)
                  .jmpImm(CompareOp::SLt, R3, 0, "signed_less")
                  .exit()
                  .label("signed_less")
                  .movImm(R0, 1)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 1u);
}

TEST(Interp, R2HoldsMemSize) {
  Program P = ProgramBuilder().mov(R0, R2).exit().build();
  std::vector<uint8_t> Mem(24, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 24u);
}

TEST(Interp, ShiftMasksAmount) {
  Program P = ProgramBuilder()
                  .movImm(R0, 1)
                  .aluImm(AluOp::Lsh, R0, 65) // 65 & 63 == 1
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 2u);
}

TEST(Interp, NegAndArsh) {
  Program P = ProgramBuilder()
                  .movImm(R0, 8)
                  .neg(R0)                     // -8
                  .aluImm(AluOp::Arsh, R0, 2)  // -2
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(static_cast<int64_t>(R.ReturnValue), -2);
}

} // namespace
