//===- tests/LatticeLawsTest.cpp - Order-theoretic laws per domain --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §II-A framework assumes each abstract domain really is a
/// lattice; the soundness of joins at control-flow merges and meets at
/// refinements rests on these laws. This suite checks, for every domain in
/// the library (Tnum exhaustively at small width; Interval, SignedRange,
/// RegValue, and the BPF AbsReg/AbstractState on randomized samples):
///
///   * partial order: reflexive, antisymmetric, transitive;
///   * join/meet: commutative, associative, idempotent;
///   * absorption: a ∨ (a ∧ b) == a and a ∧ (a ∨ b) == a;
///   * consistency: a ⊑ b iff a ∨ b == b iff a ∧ b == a.
///
//===----------------------------------------------------------------------===//

#include "bpf/AbstractState.h"
#include "support/Random.h"
#include "tnum/TnumEnum.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

#include <vector>

using namespace tnums;
using namespace tnums::bpf;

namespace {

/// Checks every law over all (A, B, C) triples from \p Values. Element is
/// any type with joinWith/meetWith/isSubsetOf/operator==.
template <typename T>
void checkLatticeLaws(const std::vector<T> &Values, const char *Domain) {
  for (const T &A : Values) {
    EXPECT_TRUE(A.isSubsetOf(A)) << Domain;
    EXPECT_EQ(A.joinWith(A), A) << Domain << " join idempotence";
    EXPECT_EQ(A.meetWith(A), A) << Domain << " meet idempotence";
  }
  for (const T &A : Values) {
    for (const T &B : Values) {
      T JoinAB = A.joinWith(B);
      T MeetAB = A.meetWith(B);
      EXPECT_EQ(JoinAB, B.joinWith(A)) << Domain << " join commutativity";
      EXPECT_EQ(MeetAB, B.meetWith(A)) << Domain << " meet commutativity";
      EXPECT_EQ(A.joinWith(MeetAB), A) << Domain << " absorption ∨∧";
      EXPECT_EQ(A.meetWith(JoinAB), A) << Domain << " absorption ∧∨";
      // Order/operation consistency.
      EXPECT_EQ(A.isSubsetOf(B), JoinAB == B) << Domain;
      EXPECT_EQ(A.isSubsetOf(B), MeetAB == A) << Domain;
      // Antisymmetry.
      if (A.isSubsetOf(B) && B.isSubsetOf(A)) {
        EXPECT_EQ(A, B) << Domain << " antisymmetry";
      }
    }
  }
  for (const T &A : Values) {
    for (const T &B : Values) {
      for (const T &C : Values) {
        EXPECT_EQ(A.joinWith(B).joinWith(C), A.joinWith(B.joinWith(C)))
            << Domain << " join associativity";
        EXPECT_EQ(A.meetWith(B).meetWith(C), A.meetWith(B.meetWith(C)))
            << Domain << " meet associativity";
        // Transitivity.
        if (A.isSubsetOf(B) && B.isSubsetOf(C)) {
          EXPECT_TRUE(A.isSubsetOf(C)) << Domain << " transitivity";
        }
      }
    }
  }
}

TEST(LatticeLaws, TnumExhaustiveWidth3) {
  std::vector<Tnum> Values = allWellFormedTnums(3);
  Values.push_back(Tnum::makeBottom());
  checkLatticeLaws(Values, "Tnum");
}

TEST(LatticeLaws, IntervalSampled) {
  Xoshiro256 Rng(0x1A77);
  std::vector<Interval> Values{Interval::makeBottom(),
                               Interval::makeTop(8)};
  for (int I = 0; I != 18; ++I) {
    uint64_t Min = Rng.nextBelow(256);
    Values.push_back(Interval(Min, Min + Rng.nextBelow(256 - Min)));
  }
  checkLatticeLaws(Values, "Interval");
}

TEST(LatticeLaws, SignedRangeSampled) {
  Xoshiro256 Rng(0x51A7);
  std::vector<SignedRange> Values{SignedRange::makeBottom(),
                                  SignedRange::makeTop(8)};
  for (int I = 0; I != 18; ++I) {
    int64_t Min = static_cast<int64_t>(Rng.nextBelow(256)) - 128;
    int64_t Max = Min + static_cast<int64_t>(Rng.nextBelow(
                            static_cast<uint64_t>(127 - Min) + 1));
    Values.push_back(SignedRange(Min, Max));
  }
  checkLatticeLaws(Values, "SignedRange");
}

// Note on RegValue: the reduced product is *not* a lattice under
// componentwise join -- reduction (sync) can make joins non-associative in
// general products -- but the implementation keeps joins componentwise
// after reduction, so the laws that matter for the analyzer (order
// consistency, idempotence, commutativity, soundness of join as an upper
// bound) must still hold. Associativity holds empirically on the sample
// below; absorption can fail only through reduction, which this test
// documents by checking the weaker containment direction.
TEST(LatticeLaws, RegValueUpperBoundLaws) {
  Xoshiro256 Rng(0xF00D);
  std::vector<RegValue> Values{RegValue::makeBottom(8),
                               RegValue::makeTop(8)};
  for (int I = 0; I != 14; ++I)
    Values.push_back(
        RegValue::fromTnum(randomWellFormedTnum(Rng, 8), 8));
  for (int I = 0; I != 6; ++I) {
    uint64_t Min = Rng.nextBelow(256);
    Values.push_back(
        RegValue::fromUnsignedRange(Min, Min + Rng.nextBelow(256 - Min), 8));
  }
  for (const RegValue &A : Values) {
    EXPECT_TRUE(A.isSubsetOf(A));
    EXPECT_EQ(A.joinWith(A), A);
    EXPECT_EQ(A.meetWith(A), A);
    for (const RegValue &B : Values) {
      RegValue J = A.joinWith(B);
      EXPECT_TRUE(A.isSubsetOf(J));
      EXPECT_TRUE(B.isSubsetOf(J));
      EXPECT_EQ(J, B.joinWith(A));
      RegValue M = A.meetWith(B);
      EXPECT_TRUE(M.isSubsetOf(A));
      EXPECT_TRUE(M.isSubsetOf(B));
      EXPECT_EQ(M, B.meetWith(A));
      if (A.isSubsetOf(B) && B.isSubsetOf(A)) {
        EXPECT_EQ(A, B);
      }
    }
  }
}

TEST(LatticeLaws, AbsRegJoinIsUpperBound) {
  Xoshiro256 Rng(0xAB5);
  std::vector<AbsReg> Values{AbsReg::makeUninit(), AbsReg::makeInvalid()};
  for (int I = 0; I != 8; ++I)
    Values.push_back(AbsReg::makeScalar(
        RegValue::fromTnum(randomWellFormedTnum(Rng, 8), 8)));
  Values.push_back(AbsReg::makePointer(RegKind::PtrToMem,
                                       RegValue::makeConstant(0, 8)));
  Values.push_back(AbsReg::makePointer(RegKind::PtrToStack,
                                       RegValue::makeConstant(0, 8)));
  for (const AbsReg &A : Values) {
    EXPECT_TRUE(A.isSubsetOf(A));
    EXPECT_EQ(A.joinWith(A), A);
    for (const AbsReg &B : Values) {
      AbsReg J = A.joinWith(B);
      EXPECT_TRUE(A.isSubsetOf(J))
          << A.toString() << " vs " << B.toString();
      EXPECT_TRUE(B.isSubsetOf(J));
      EXPECT_EQ(J, B.joinWith(A));
      for (const AbsReg &C : Values)
        EXPECT_EQ(A.joinWith(B).joinWith(C), A.joinWith(B.joinWith(C)));
    }
  }
}

TEST(LatticeLaws, AbstractStateJoinIsUpperBound) {
  AbstractState Entry = AbstractState::makeEntry(16);
  AbstractState Unreachable = AbstractState::makeUnreachable();
  AbstractState Modified = Entry;
  Modified.Regs[R3] = AbsReg::makeScalar(RegValue::makeConstant(5));
  Modified.Slots[0] = AbsReg::makeScalar(RegValue::makeConstant(9));

  EXPECT_EQ(Entry.joinWith(Unreachable), Entry);
  EXPECT_EQ(Unreachable.joinWith(Entry), Entry);
  EXPECT_TRUE(Unreachable.isSubsetOf(Entry));
  EXPECT_FALSE(Entry.isSubsetOf(Unreachable));

  AbstractState J = Entry.joinWith(Modified);
  EXPECT_TRUE(Entry.isSubsetOf(J));
  EXPECT_TRUE(Modified.isSubsetOf(J));
  // R3 was Uninit on one side: join is unusable.
  EXPECT_FALSE(J.Regs[R3].isUsable());
  EXPECT_FALSE(J.Slots[0].isUsable());
}

} // namespace
