//===- tests/ServiceTest.cpp - Batched verification service ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks down the batch engine's determinism contract (bit-identical
/// results across thread counts, chunk sizes, and repeated runs), its
/// agreement with the single-program verifyProgram path (which also pins
/// the reusable per-worker Analyzer against the bind-once constructor),
/// the StopAtFirstReject cancellation protocol, and the end-to-end
/// differential fuzz smoke the default ctest tier runs.
///
//===----------------------------------------------------------------------===//

#include "service/DifferentialFuzz.h"
#include "service/ProgramGen.h"
#include "service/VerificationService.h"

#include "bpf/Builder.h"

#include <gtest/gtest.h>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

constexpr uint64_t MemSize = 32;

std::vector<VerifyRequest> makeBatch(uint64_t Seed, uint64_t Count,
                                     GenProfile Profile = GenProfile::Mixed) {
  GenOptions Opts;
  Opts.Profile = Profile;
  Opts.MemSize = MemSize;
  ProgramGen Gen(Seed, Opts);
  std::vector<VerifyRequest> Requests;
  Requests.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    VerifyRequest Request;
    Request.Prog = Gen.next();
    Request.MemSize = MemSize;
    Requests.push_back(std::move(Request));
  }
  return Requests;
}

TEST(Service, AgreesWithSingleProgramVerifierIncludingStates) {
  std::vector<VerifyRequest> Requests = makeBatch(11, 120);
  ServiceConfig Config;
  Config.NumThreads = 4;
  Config.ChunkPrograms = 7; // Deliberately odd chunking.
  Config.KeepStates = true;
  BatchResult Batch = VerificationService(Config).verifyBatch(Requests);
  ASSERT_EQ(Batch.Results.size(), Requests.size());

  for (size_t I = 0; I != Requests.size(); ++I) {
    const VerifyResult &R = Batch.Results[I];
    ASSERT_TRUE(R.Done);
    // The reference path constructs a fresh Analyzer per program; the
    // service reuses one engine per worker. Verdicts, violations, AND the
    // full fixpoint state tables must agree exactly.
    VerifierReport Ref = verifyProgram(Requests[I].Prog, MemSize);
    EXPECT_EQ(R.Accepted, Ref.Accepted);
    EXPECT_EQ(R.StructuralError, Ref.StructuralError);
    ASSERT_EQ(R.Violations.size(), Ref.Violations.size());
    for (size_t V = 0; V != R.Violations.size(); ++V) {
      EXPECT_EQ(R.Violations[V].Pc, Ref.Violations[V].Pc);
      EXPECT_EQ(R.Violations[V].Message, Ref.Violations[V].Message);
    }
    ASSERT_EQ(R.InStates.size(), Ref.InStates.size());
    for (size_t S = 0; S != R.InStates.size(); ++S)
      EXPECT_TRUE(R.InStates[S] == Ref.InStates[S]) << "state " << S;
  }
}

TEST(Service, BitIdenticalAcrossJobsChunksAndReruns) {
  std::vector<VerifyRequest> Requests = makeBatch(2022, 300);

  std::vector<uint64_t> Fingerprints;
  for (unsigned Jobs : {1u, 2u, 8u}) {
    ServiceConfig Config;
    Config.NumThreads = Jobs;
    Fingerprints.push_back(
        verdictFingerprint(VerificationService(Config).verifyBatch(Requests)));
  }
  // A hostile chunking (1 program per chunk) and a rerun of the first
  // configuration must also agree.
  ServiceConfig Fine;
  Fine.NumThreads = 8;
  Fine.ChunkPrograms = 1;
  Fingerprints.push_back(
      verdictFingerprint(VerificationService(Fine).verifyBatch(Requests)));
  ServiceConfig Rerun;
  Rerun.NumThreads = 1;
  Fingerprints.push_back(
      verdictFingerprint(VerificationService(Rerun).verifyBatch(Requests)));

  for (uint64_t F : Fingerprints)
    EXPECT_EQ(F, Fingerprints.front());

  // Same seed, fresh generation: identical batch, identical fingerprint.
  std::vector<VerifyRequest> Again = makeBatch(2022, 300);
  EXPECT_EQ(verdictFingerprint(
                VerificationService(ServiceConfig()).verifyBatch(Again)),
            Fingerprints.front());

  // A different seed must not collide (this would catch a fingerprint
  // that ignores its inputs).
  std::vector<VerifyRequest> Other = makeBatch(2023, 300);
  EXPECT_NE(verdictFingerprint(
                VerificationService(ServiceConfig()).verifyBatch(Other)),
            Fingerprints.front());
}

TEST(Service, StatsAccountForEveryVerdict) {
  std::vector<VerifyRequest> Requests = makeBatch(5, 200);
  // Add one structurally invalid program (hand-rolled out-of-range jump).
  {
    std::vector<Insn> Bad;
    Bad.push_back(Insn::ja(5));
    Bad.push_back(Insn::exit());
    VerifyRequest Request;
    Request.Prog = Program(std::move(Bad));
    Request.MemSize = MemSize;
    Requests.push_back(std::move(Request));
  }
  BatchResult Batch =
      VerificationService(ServiceConfig()).verifyBatch(Requests);
  EXPECT_EQ(Batch.Stats.Programs, Requests.size());
  EXPECT_EQ(Batch.Stats.Accepted + Batch.Stats.RejectedStructural +
                Batch.Stats.RejectedSemantic,
            Batch.Stats.Programs);
  EXPECT_GE(Batch.Stats.RejectedStructural, 1u);
  EXPECT_GT(Batch.Stats.InsnVisits, 0u);
  ASSERT_TRUE(Batch.FirstRejected.has_value());
  // FirstRejected is the first rejected index in serial order.
  for (size_t I = 0; I != *Batch.FirstRejected; ++I)
    EXPECT_TRUE(Batch.Results[I].Accepted);
  EXPECT_FALSE(Batch.Results[*Batch.FirstRejected].Accepted);
}

TEST(Service, StopAtFirstRejectMatchesSerialOrderFirstReject) {
  std::vector<VerifyRequest> Requests = makeBatch(17, 400);

  BatchResult Full =
      VerificationService(ServiceConfig()).verifyBatch(Requests);
  ASSERT_TRUE(Full.FirstRejected.has_value())
      << "batch has no reject; pick another seed";

  for (unsigned Jobs : {1u, 2u, 8u}) {
    ServiceConfig Config;
    Config.NumThreads = Jobs;
    Config.ChunkPrograms = 16;
    Config.StopAtFirstReject = true;
    BatchResult Stopped = VerificationService(Config).verifyBatch(Requests);
    ASSERT_TRUE(Stopped.FirstRejected.has_value());
    // The cancellation protocol (cancel strictly above the lowest
    // rejecting chunk, always finish at or below) makes the witness exact
    // for every scheduler interleaving.
    EXPECT_EQ(*Stopped.FirstRejected, *Full.FirstRejected);
    for (size_t I = 0; I <= *Full.FirstRejected; ++I)
      EXPECT_TRUE(Stopped.Results[I].Done) << "index " << I;
    // And the work performed never exceeds the full scan.
    EXPECT_LE(Stopped.Stats.Programs, Full.Stats.Programs);
  }
}

TEST(Service, StopAtFirstRejectWithDedupKeepsSerialFirstIndex) {
  // StopAtFirstReject x DedupPrograms: dedup compacts the batch into a
  // unique stream before chunking, so the rejecting program's scheduled
  // (canonical) instance can sit in a different chunk -- and a different
  // pool worker -- than its request index suggests, and its duplicates
  // elsewhere in the batch are backfilled, not run. FirstRejected must
  // still be the exact serial-order first rejected REQUEST index.
  std::vector<VerifyRequest> Base = makeBatch(99, 40, GenProfile::AluMix);
  for (VerifyRequest &Request : makeBatch(17, 400))
    Base.push_back(std::move(Request));
  BatchResult Probe = VerificationService(ServiceConfig()).verifyBatch(Base);
  ASSERT_TRUE(Probe.FirstRejected.has_value())
      << "batch has no reject; pick another seed";
  size_t BaseFirst = *Probe.FirstRejected;
  ASSERT_GT(BaseFirst, 2u) << "need accepted programs before the reject";

  // Skew the unique stream: duplicates of early ACCEPTED programs before
  // the first reject (they dedup away, shifting every later unique
  // position), and duplicates of the rejecting program itself later in
  // the batch (their canonical instance is the serial-first reject).
  std::vector<VerifyRequest> Requests;
  for (size_t I = 0; I != Base.size(); ++I) {
    if (I < BaseFirst && I % 3 == 0)
      Requests.push_back(Base[I % 2]); // Duplicate of an accepted program.
    Requests.push_back(Base[I]);
    if (I == BaseFirst + 50 || I + 1 == Base.size())
      Requests.push_back(Base[BaseFirst]); // Late duplicate of the reject.
  }

  // Ground truth: full scan, dedup off.
  ServiceConfig FullConfig;
  FullConfig.DedupPrograms = false;
  BatchResult Full = VerificationService(FullConfig).verifyBatch(Requests);
  ASSERT_TRUE(Full.FirstRejected.has_value());

  for (unsigned Jobs : {1u, 2u, 8u}) {
    for (uint64_t Chunk : {uint64_t(1), uint64_t(7), uint64_t(16)}) {
      SCOPED_TRACE(testing::Message()
                   << "jobs " << Jobs << " chunk " << Chunk);
      ServiceConfig Config;
      Config.NumThreads = Jobs;
      Config.ChunkPrograms = Chunk;
      Config.StopAtFirstReject = true;
      Config.DedupPrograms = true;
      BatchResult Stopped =
          VerificationService(Config).verifyBatch(Requests);
      ASSERT_TRUE(Stopped.FirstRejected.has_value());
      EXPECT_EQ(*Stopped.FirstRejected, *Full.FirstRejected);
      // Every request at or below the witness is filled, and agrees with
      // the full scan.
      for (size_t I = 0; I <= *Full.FirstRejected; ++I) {
        ASSERT_TRUE(Stopped.Results[I].Done) << "index " << I;
        EXPECT_EQ(Stopped.Results[I].Accepted, Full.Results[I].Accepted)
            << "index " << I;
      }
    }
  }
}

TEST(Service, FuzzFlagsZeroCoverageCampaigns) {
  // A step budget so small every accepted program exhausts it on every
  // run: individually tolerated (oracle 1's StepLimit contract), but the
  // campaign as a whole checked nothing and must say so instead of
  // reporting a vacuous clean pass.
  FuzzConfig Config;
  Config.Programs = 60;
  Config.StepLimit = 1;
  FuzzReport Report = runDifferentialFuzz(0xF00D, Config);
  ASSERT_GT(Report.Accepted, 0u);
  EXPECT_EQ(Report.ZeroCoveragePrograms, Report.Accepted);
  EXPECT_FALSE(Report.clean());
  ASSERT_EQ(Report.Findings.size(), 1u);
  EXPECT_EQ(Report.Findings[0].Kind, "zero-coverage-campaign");

  // The same campaign with a real budget has coverage and is clean.
  Config.StepLimit = 1 << 20;
  FuzzReport Healthy = runDifferentialFuzz(0xF00D, Config);
  EXPECT_LT(Healthy.ZeroCoveragePrograms, Healthy.Accepted);
  EXPECT_TRUE(Healthy.clean()) << Healthy.toString();
}

TEST(Service, DifferentialFuzzSmokeFindsNothing) {
  // The default-tier fuzz smoke from the issue checklist: N ~= 500
  // programs across the whole scenario space, mutants included, on the
  // multithreaded service. Any finding is a soundness bug somewhere in
  // the generator -> analyzer -> interpreter stack.
  FuzzConfig Config;
  Config.Programs = 500;
  FuzzReport Report = runDifferentialFuzz(0xF00D, Config);
  EXPECT_EQ(Report.Programs, 500u);
  EXPECT_GT(Report.Accepted, 0u);
  EXPECT_GT(Report.ConcreteRuns, 0u);
  for (const FuzzFinding &Finding : Report.Findings)
    ADD_FAILURE() << Finding.Kind << " at program " << Finding.ProgramIndex
                  << ":\n"
                  << Finding.Details;
  EXPECT_TRUE(Report.clean()) << Report.toString();
}

TEST(Service, DedupServesDuplicatesBitIdentically) {
  // A batch with deliberate duplicates: every program appears three times,
  // interleaved, under distinct request indices.
  std::vector<VerifyRequest> Base = makeBatch(23, 40);
  std::vector<VerifyRequest> Requests;
  for (const VerifyRequest &Request : Base)
    for (int Copy = 0; Copy != 3; ++Copy)
      Requests.push_back(Request);

  ServiceConfig On;
  On.NumThreads = 4;
  On.ChunkPrograms = 5;
  On.KeepStates = true;
  ServiceConfig Off = On;
  Off.DedupPrograms = false;
  BatchResult WithDedup = VerificationService(On).verifyBatch(Requests);
  BatchResult Without = VerificationService(Off).verifyBatch(Requests);

  // Verdicts are a pure function of the request, so dedup must be
  // invisible in the results -- fingerprint included -- and visible only
  // in the stats.
  EXPECT_EQ(verdictFingerprint(WithDedup), verdictFingerprint(Without));
  ASSERT_EQ(WithDedup.Results.size(), Without.Results.size());
  for (size_t I = 0; I != WithDedup.Results.size(); ++I) {
    const VerifyResult &A = WithDedup.Results[I];
    const VerifyResult &B = Without.Results[I];
    EXPECT_EQ(A.Accepted, B.Accepted);
    EXPECT_EQ(A.InsnVisits, B.InsnVisits);
    ASSERT_EQ(A.InStates.size(), B.InStates.size());
    for (size_t S = 0; S != A.InStates.size(); ++S)
      EXPECT_TRUE(A.InStates[S] == B.InStates[S]) << "request " << I;
  }
  // At least the 80 appended copies were served from the cache (the
  // generator may emit its own collisions on top).
  EXPECT_GE(WithDedup.Stats.DedupHits, 2 * Base.size());
  EXPECT_EQ(Without.Stats.DedupHits, 0u);
  // Aggregate stats stay exact batch totals either way.
  EXPECT_EQ(WithDedup.Stats.Programs, Without.Stats.Programs);
  EXPECT_EQ(WithDedup.Stats.Accepted, Without.Stats.Accepted);
  EXPECT_EQ(WithDedup.Stats.InsnVisits, Without.Stats.InsnVisits);
  EXPECT_EQ(WithDedup.FirstRejected, Without.FirstRejected);
}

TEST(Service, DedupDistinguishesOptionsAndNearMisses) {
  std::vector<VerifyRequest> Requests = makeBatch(5, 1);
  // Same program, different context size: NOT a duplicate (verdicts can
  // differ -- a bounds check valid at 64 bytes may be invalid at 32).
  VerifyRequest BiggerMem = Requests[0];
  BiggerMem.MemSize = 64;
  Requests.push_back(BiggerMem);
  // Same program, different analyzer budget: also not a duplicate.
  VerifyRequest TighterBudget = Requests[0];
  TighterBudget.AnalyzerOpts.MaxInsnVisits = 128;
  Requests.push_back(TighterBudget);
  // A genuine duplicate.
  Requests.push_back(Requests[0]);

  ServiceConfig Config;
  Config.NumThreads = 1;
  BatchResult Batch = VerificationService(Config).verifyBatch(Requests);
  EXPECT_EQ(Batch.Stats.DedupHits, 1u);
  ASSERT_EQ(Batch.Results.size(), 4u);
  EXPECT_EQ(Batch.Results[3].Accepted, Batch.Results[0].Accepted);
  EXPECT_EQ(Batch.Results[3].InsnVisits, Batch.Results[0].InsnVisits);
}

TEST(Service, FuzzReportIsDeterministic) {
  FuzzConfig Config;
  Config.Programs = 120;
  FuzzReport A = runDifferentialFuzz(31337, Config);
  Config.Service.NumThreads = 3; // Scheduling must not leak into the report.
  FuzzReport B = runDifferentialFuzz(31337, Config);
  EXPECT_EQ(A.Programs, B.Programs);
  EXPECT_EQ(A.Accepted, B.Accepted);
  EXPECT_EQ(A.RejectedStructural, B.RejectedStructural);
  EXPECT_EQ(A.RejectedSemantic, B.RejectedSemantic);
  EXPECT_EQ(A.ConcreteRuns, B.ConcreteRuns);
  EXPECT_EQ(A.StepLimitRuns, B.StepLimitRuns);
  EXPECT_EQ(A.ZeroCoveragePrograms, B.ZeroCoveragePrograms);
  EXPECT_EQ(A.Findings.size(), B.Findings.size());
}

} // namespace
