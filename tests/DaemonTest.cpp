//===- tests/DaemonTest.cpp - tnumsd concurrency/identity battery ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's production contract (service/Daemon.h): N concurrent
/// clients submitting the same program stream in different orders and at
/// different priorities receive verdicts bit-identical to the in-process
/// VerificationService -- across worker counts, UNIX vs TCP transports,
/// cache on/off, and a daemon kill + restart mid-workload (where the
/// persistent verdict cache must serve every repeat verdict with ZERO
/// re-analysis, counter-asserted). Plus the protocol edges: Hello-first
/// enforcement, garbage streams answered with Error + close, and explicit
/// Busy backpressure under pool saturation and tenant quotas that a
/// retrying client rides out without ever receiving a wrong verdict.
///
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"
#include "service/DaemonClient.h"
#include "service/ProgramGen.h"
#include "service/VerificationService.h"
#include "service/WireProtocol.h"
#include "support/Metrics.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <stdlib.h>
#include <unistd.h>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

constexpr uint64_t MemSize = 32;

std::string uniqueSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return testing::TempDir() + "tnumsd-" + std::to_string(getpid()) + "-" +
         std::to_string(Counter++) + ".sock";
}

std::string makeCacheDir() {
  std::string Template = testing::TempDir() + "daemoncacheXXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  const char *Dir = mkdtemp(Buf.data());
  EXPECT_NE(Dir, nullptr);
  return std::string(Dir) + "/cache";
}

std::vector<VerifyRequest> makeStream(uint64_t Seed, uint64_t Count,
                                      GenProfile Profile = GenProfile::Mixed) {
  GenOptions Opts;
  Opts.Profile = Profile;
  Opts.MemSize = MemSize;
  ProgramGen Gen(Seed, Opts);
  std::vector<VerifyRequest> Requests;
  for (uint64_t I = 0; I != Count; ++I) {
    VerifyRequest Request;
    Request.Prog = Gen.next();
    Request.MemSize = MemSize;
    Requests.push_back(std::move(Request));
  }
  return Requests;
}

/// A straight-line ALU chain long enough that one analysis takes real
/// time -- the deterministic lever for the backpressure tests: while the
/// single worker chews on one of these, every pipelined Submit behind it
/// must be refused, not queued.
VerifyRequest slowRequest(uint64_t Salt) {
  std::vector<Insn> Insns;
  Insns.push_back(Insn::movImm(Reg::R0, static_cast<int64_t>(Salt)));
  for (unsigned I = 0; I != 8000; ++I)
    Insns.push_back(Insn::aluImm(AluOp::Add, Reg::R0, 1));
  Insns.push_back(Insn::exit());
  VerifyRequest Request;
  Request.Prog = Program(std::move(Insns));
  Request.MemSize = MemSize;
  return Request;
}

/// Client-specific deterministic Fisher-Yates shuffle.
std::vector<size_t> shuffledOrder(size_t Count, uint64_t Seed) {
  std::vector<size_t> Order(Count);
  for (size_t Index = 0; Index != Count; ++Index)
    Order[Index] = Index;
  uint64_t State = Seed;
  auto Next = [&State] {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  };
  for (size_t Index = Count; Index > 1; --Index)
    std::swap(Order[Index - 1], Order[Next() % Index]);
  return Order;
}

/// Daemon on a background thread; stop() asserts the loop exited clean.
class RunningDaemon {
public:
  bool start(const DaemonConfig &Config) {
    std::string Error;
    Served = Daemon::create(Config, Error);
    if (!Served) {
      ADD_FAILURE() << "Daemon::create: " << Error;
      return false;
    }
    Loop = std::thread([this] { Ok = Served->run(LoopError); });
    return true;
  }

  Daemon &daemon() { return *Served; }

  void stop() {
    Served->requestStop();
    join();
  }

  void join() {
    if (Loop.joinable())
      Loop.join();
    EXPECT_TRUE(Ok) << LoopError;
  }

  ~RunningDaemon() {
    if (Loop.joinable()) {
      Served->requestStop();
      Loop.join();
    }
  }

private:
  std::optional<Daemon> Served;
  std::thread Loop;
  std::string LoopError;
  bool Ok = false;
};

/// Submits \p Requests in \p Order (retrying Busy) and reassembles the
/// canonical-order batch for fingerprinting.
void runClientOrdered(const std::string &SocketPath, const std::string &Tenant,
                      const std::vector<VerifyRequest> &Requests,
                      const std::vector<size_t> &Order, uint8_t Priority,
                      BatchResult &Out, bool &OkOut) {
  std::string Error;
  std::optional<DaemonClient> Client = DaemonClient::connectUnixSocket(
      SocketPath, Tenant, /*TimeoutMs=*/5000, Error);
  if (!Client) {
    ADD_FAILURE() << "connect: " << Error;
    OkOut = false;
    return;
  }
  Out.Results.resize(Requests.size());
  for (size_t Index : Order) {
    VerdictMsg Verdict;
    if (!Client->submitWithRetry(Requests[Index], Priority,
                                 /*TimeoutMs=*/120000, Verdict, Error)) {
      ADD_FAILURE() << "submit " << Index << ": " << Error;
      OkOut = false;
      return;
    }
    Out.Results[Index] = verdictToResult(Verdict);
  }
  OkOut = true;
}

//===----------------------------------------------------------------------===//
// Identity battery
//===----------------------------------------------------------------------===//

TEST(Daemon, ConcurrentClientsBitIdenticalToInProcess) {
  std::vector<VerifyRequest> Requests = makeStream(101, 150);
  uint64_t Reference =
      verdictFingerprint(VerificationService().verifyBatch(Requests));

  // Two worker configs; clients shuffle differently and use different
  // priorities, so the daemon-side schedules genuinely differ.
  for (unsigned Threads : {1u, 4u}) {
    DaemonConfig Config;
    Config.SocketPath = uniqueSocketPath();
    Config.NumThreads = Threads;
    RunningDaemon Daemon;
    ASSERT_TRUE(Daemon.start(Config));

    constexpr unsigned NumClients = 5;
    std::vector<BatchResult> Batches(NumClients);
    std::vector<bool> Oks(NumClients, false);
    {
      std::vector<std::thread> Clients;
      for (unsigned Index = 0; Index != NumClients; ++Index) {
        std::vector<size_t> Order =
            shuffledOrder(Requests.size(), 0xC0FFEE + Index);
        Clients.emplace_back([&, Index, Order] {
          bool Ok = false;
          runClientOrdered(Config.SocketPath,
                           "tenant" + std::to_string(Index % 2), Requests,
                           Order, static_cast<uint8_t>(Index % 3), Batches[Index],
                           Ok);
          Oks[Index] = Ok;
        });
      }
      for (std::thread &Client : Clients)
        Client.join();
    }
    Daemon.stop();

    for (unsigned Index = 0; Index != NumClients; ++Index) {
      ASSERT_TRUE(Oks[Index]) << "client " << Index;
      EXPECT_EQ(verdictFingerprint(Batches[Index]), Reference)
          << "client " << Index << " diverged at " << Threads << " threads";
    }
  }
}

TEST(Daemon, TcpAndUnixClientsAgree) {
  std::vector<VerifyRequest> Requests = makeStream(113, 60);
  uint64_t Reference =
      verdictFingerprint(VerificationService().verifyBatch(Requests));

  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath();
  Config.TcpPort = 0; // Ephemeral.
  RunningDaemon Daemon;
  ASSERT_TRUE(Daemon.start(Config));
  uint16_t Port = Daemon.daemon().tcpPort();
  ASSERT_NE(Port, 0);

  std::string Error;
  std::optional<DaemonClient> Tcp =
      DaemonClient::connectTcp(Port, "tcp-tenant", Error);
  ASSERT_TRUE(Tcp) << Error;
  std::optional<DaemonClient> Unix = DaemonClient::connectUnixSocket(
      Config.SocketPath, "unix-tenant", 5000, Error);
  ASSERT_TRUE(Unix) << Error;

  BatchResult TcpBatch, UnixBatch;
  TcpBatch.Results.resize(Requests.size());
  UnixBatch.Results.resize(Requests.size());
  for (size_t Index = 0; Index != Requests.size(); ++Index) {
    VerdictMsg Verdict;
    ASSERT_TRUE(Tcp->submitWithRetry(Requests[Index], 0, 120000, Verdict,
                                     Error))
        << Error;
    TcpBatch.Results[Index] = verdictToResult(Verdict);
    ASSERT_TRUE(Unix->submitWithRetry(Requests[Index], 0, 120000, Verdict,
                                      Error))
        << Error;
    UnixBatch.Results[Index] = verdictToResult(Verdict);
  }
  Daemon.stop();

  EXPECT_EQ(verdictFingerprint(TcpBatch), Reference);
  EXPECT_EQ(verdictFingerprint(UnixBatch), Reference);
}

TEST(Daemon, RestartMidWorkloadWarmStartsWithZeroReanalysis) {
  std::vector<VerifyRequest> Requests = makeStream(127, 120);
  uint64_t Reference =
      verdictFingerprint(VerificationService().verifyBatch(Requests));
  std::string CacheDir = makeCacheDir();
  std::string SocketPath = uniqueSocketPath();

  DaemonConfig Config;
  Config.SocketPath = SocketPath;
  Config.NumThreads = 4;
  Config.CacheDir = CacheDir;

  // Cold daemon: everything analyzed, everything stored.
  uint64_t ColdAnalyses = 0;
  {
    RunningDaemon Daemon;
    ASSERT_TRUE(Daemon.start(Config));
    BatchResult Batch;
    bool Ok = false;
    runClientOrdered(SocketPath, "cold", Requests,
                     shuffledOrder(Requests.size(), 1), 0, Batch, Ok);
    ASSERT_TRUE(Ok);
    EXPECT_EQ(verdictFingerprint(Batch), Reference);
    DaemonStats Stats = Daemon.daemon().stats();
    ColdAnalyses = Stats.Analyses;
    EXPECT_GT(ColdAnalyses, 0u);
    EXPECT_EQ(Stats.Verdicts, Requests.size());
    Daemon.stop(); // Kill mid-campaign: the store must already be durable.
  }

  // Restarted daemon, same cache: the full repeat workload is served from
  // the persistent store -- the analyzer never runs.
  {
    RunningDaemon Daemon;
    ASSERT_TRUE(Daemon.start(Config));
    BatchResult Batch;
    bool Ok = false;
    runClientOrdered(SocketPath, "warm", Requests,
                     shuffledOrder(Requests.size(), 2), 1, Batch, Ok);
    ASSERT_TRUE(Ok);
    EXPECT_EQ(verdictFingerprint(Batch), Reference)
        << "cache-served verdicts diverged from analyzed verdicts";
    DaemonStats Stats = Daemon.daemon().stats();
    EXPECT_EQ(Stats.Analyses, 0u)
        << "warm restart re-analyzed cached programs";
    EXPECT_EQ(Stats.Verdicts, Requests.size());
    EXPECT_EQ(Stats.cacheHits(), Requests.size());
    EXPECT_GT(Stats.CacheDiskHits, 0u);

    // Cover the client-driven graceful stop on the second instance.
    std::string Error;
    std::optional<DaemonClient> Stopper = DaemonClient::connectUnixSocket(
        SocketPath, "stopper", 5000, Error);
    ASSERT_TRUE(Stopper) << Error;
    EXPECT_TRUE(Stopper->shutdownServer(Error)) << Error;
    Daemon.join();
  }
}

//===----------------------------------------------------------------------===//
// Protocol edges
//===----------------------------------------------------------------------===//

/// Reads one reply frame from a raw socket (header + payload).
bool readRawFrame(int Fd, Frame &Out, std::string &Error) {
  unsigned char Header[FrameHeaderBytes];
  if (!readAll(Fd, Header, sizeof(Header), Error))
    return false;
  uint32_t PayloadLen = 0;
  for (unsigned Byte = 0; Byte != 4; ++Byte)
    PayloadLen |= static_cast<uint32_t>(Header[16 + Byte]) << (8 * Byte);
  Out.Type = static_cast<MsgType>(Header[5]);
  Out.RequestId = 0;
  for (unsigned Byte = 0; Byte != 8; ++Byte)
    Out.RequestId |= static_cast<uint64_t>(Header[8 + Byte]) << (8 * Byte);
  Out.Payload.resize(PayloadLen);
  return PayloadLen == 0 ||
         readAll(Fd, Out.Payload.data(), PayloadLen, Error);
}

TEST(Daemon, SubmitBeforeHelloIsRefusedAndClosed) {
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath();
  RunningDaemon Daemon;
  ASSERT_TRUE(Daemon.start(Config));

  std::string Error;
  std::optional<OwnedFd> Fd =
      connectUnixRetry(Config.SocketPath, 5000, Error);
  ASSERT_TRUE(Fd) << Error;

  SubmitMsg Submit;
  Submit.Request = makeStream(5, 1).front();
  std::string Bytes = encodeFrame(MsgType::Submit, 77, encodeSubmit(Submit));
  ASSERT_TRUE(writeAll(Fd->get(), Bytes.data(), Bytes.size(), Error)) << Error;

  Frame Reply;
  ASSERT_TRUE(readRawFrame(Fd->get(), Reply, Error)) << Error;
  EXPECT_EQ(Reply.Type, MsgType::Error);
  EXPECT_EQ(Reply.RequestId, 77u);
  std::optional<ErrorMsg> Msg = decodeError(Reply.Payload, Error);
  ASSERT_TRUE(Msg) << Error;
  EXPECT_EQ(Msg->Code, WireError::HelloRequired);

  // The daemon then closes: the next read sees orderly EOF.
  Error.clear();
  EXPECT_FALSE(readRawFrame(Fd->get(), Reply, Error));
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Daemon.daemon().stats().ProtocolErrors, 1u);
  Daemon.stop();
}

TEST(Daemon, GarbageStreamGetsErrorReplyAndClose) {
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath();
  RunningDaemon Daemon;
  ASSERT_TRUE(Daemon.start(Config));

  std::string Error;
  std::optional<OwnedFd> Fd =
      connectUnixRetry(Config.SocketPath, 5000, Error);
  ASSERT_TRUE(Fd) << Error;

  std::string Garbage = "this is definitely not a TNU1 frame header......";
  ASSERT_TRUE(writeAll(Fd->get(), Garbage.data(), Garbage.size(), Error));

  Frame Reply;
  ASSERT_TRUE(readRawFrame(Fd->get(), Reply, Error)) << Error;
  EXPECT_EQ(Reply.Type, MsgType::Error);
  std::optional<ErrorMsg> Msg = decodeError(Reply.Payload, Error);
  ASSERT_TRUE(Msg) << Error;
  EXPECT_EQ(Msg->Code, WireError::BadMagic);

  Error.clear();
  EXPECT_FALSE(readRawFrame(Fd->get(), Reply, Error));
  EXPECT_TRUE(Error.empty()) << Error;
  Daemon.stop();
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(Daemon, PoolSaturationRepliesBusyAndRetrySucceeds) {
  // One worker, admission window of one: while the worker analyzes the
  // first slow program, every pipelined Submit behind it must bounce with
  // Busy(pool) -- explicit backpressure, never silent queue growth.
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath();
  Config.NumThreads = 1;
  Config.MaxPendingRequests = 1;
  RunningDaemon Daemon;
  ASSERT_TRUE(Daemon.start(Config));

  std::string Error;
  std::optional<DaemonClient> Client = DaemonClient::connectUnixSocket(
      Config.SocketPath, "pusher", 5000, Error);
  ASSERT_TRUE(Client) << Error;

  constexpr unsigned Pipelined = 24;
  std::vector<VerifyRequest> Requests;
  for (unsigned Index = 0; Index != Pipelined; ++Index)
    Requests.push_back(slowRequest(Index));

  for (unsigned Index = 0; Index != Pipelined; ++Index) {
    uint64_t RequestId = 0;
    ASSERT_TRUE(Client->submitAsync(Requests[Index], 0, RequestId, Error))
        << Error;
  }
  unsigned Verdicts = 0, Busys = 0;
  for (unsigned Index = 0; Index != Pipelined; ++Index) {
    ClientReply Reply;
    ASSERT_TRUE(Client->readReply(Reply, Error)) << Error;
    if (Reply.Type == MsgType::Verdict) {
      ++Verdicts;
      EXPECT_TRUE(Reply.Verdict.Accepted);
    } else {
      ASSERT_EQ(Reply.Type, MsgType::Busy);
      EXPECT_EQ(Reply.Busy.Reason, 0) << "expected pool-saturation reason";
      ++Busys;
    }
  }
  EXPECT_GE(Verdicts, 1u);
  EXPECT_GE(Busys, 1u) << "admission control never pushed back";
  EXPECT_EQ(Daemon.daemon().stats().BusyPool, Busys);

  // A retrying client rides the backpressure out and loses nothing.
  for (unsigned Index = 0; Index != Pipelined; ++Index) {
    VerdictMsg Verdict;
    ASSERT_TRUE(Client->submitWithRetry(Requests[Index], 0, 120000, Verdict,
                                        Error))
        << Error;
    EXPECT_TRUE(Verdict.Accepted);
  }
  Daemon.stop();
}

TEST(Daemon, TenantQuotaRepliesBusyQuota) {
  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath();
  Config.NumThreads = 2;
  Config.MaxPendingRequests = 100; // Pool never saturates here...
  Config.TenantMaxInFlight = 1;    // ...the tenant quota does.
  RunningDaemon Daemon;
  ASSERT_TRUE(Daemon.start(Config));

  std::string Error;
  std::optional<DaemonClient> Client = DaemonClient::connectUnixSocket(
      Config.SocketPath, "greedy", 5000, Error);
  ASSERT_TRUE(Client) << Error;

  constexpr unsigned Pipelined = 16;
  for (unsigned Index = 0; Index != Pipelined; ++Index) {
    uint64_t RequestId = 0;
    ASSERT_TRUE(
        Client->submitAsync(slowRequest(Index), 0, RequestId, Error))
        << Error;
  }
  unsigned Busys = 0;
  for (unsigned Index = 0; Index != Pipelined; ++Index) {
    ClientReply Reply;
    ASSERT_TRUE(Client->readReply(Reply, Error)) << Error;
    if (Reply.Type == MsgType::Busy) {
      EXPECT_EQ(Reply.Busy.Reason, 1) << "expected tenant-quota reason";
      ++Busys;
    }
  }
  EXPECT_GE(Busys, 1u) << "tenant quota never pushed back";
  EXPECT_EQ(Daemon.daemon().stats().BusyQuota, Busys);
  Daemon.stop();
}

//===----------------------------------------------------------------------===//
// Observability: lifecycle event log, exposition file, MetricsQuery
//===----------------------------------------------------------------------===//

/// Extracts one top-level field from a line the daemon's own
/// JsonLineBuilder wrote. Known writer, known escaping -- a targeted
/// substring scan, not a JSON parser.
std::string jsonField(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  At += Needle.size();
  size_t End;
  if (At < Line.size() && Line[At] == '"') {
    ++At;
    End = Line.find('"', At);
  } else {
    End = Line.find_first_of(",}", At);
  }
  return End == std::string::npos ? "" : Line.substr(At, End - At);
}

/// Counter value by full exposed name ("name" or "name{labels}"), 0 when
/// absent. Summed across label variants is deliberately NOT done: the
/// caller names the exact series it wants.
uint64_t findCounter(const std::vector<MetricValue> &Metrics,
                     const std::string &FullName) {
  for (const MetricValue &Metric : Metrics)
    if (Metric.fullName() == FullName)
      return Metric.Count;
  return 0;
}

TEST(Daemon, EventLogAccountsForEveryRequestLifecycle) {
  // Saturate a one-worker, one-slot daemon so the log must record BOTH
  // outcomes -- fully analyzed lifecycles and Busy rejections -- then
  // audit the JSONL: every received (conn,req) reaches exactly one
  // terminal event, replied requests march through every phase in
  // order, rejected ones are never admitted, and the wire MetricsReply
  // and the exposition file agree with the log's totals. Metrics are
  // process-global, so the received counter is checked as a delta.
  const uint64_t ReceivedBefore =
      findCounter(MetricsRegistry::instance().snapshot().Metrics,
                  "tnumsd_requests_received_total");

  DaemonConfig Config;
  Config.SocketPath = uniqueSocketPath();
  Config.NumThreads = 1;
  Config.MaxPendingRequests = 1;
  Config.EventLogPath = testing::TempDir() + "tnumsd-events-" +
                        std::to_string(getpid()) + ".jsonl";
  Config.MetricsTextPath = testing::TempDir() + "tnumsd-metrics-" +
                           std::to_string(getpid()) + ".prom";
  ::unlink(Config.EventLogPath.c_str()); // Append-mode sink: start clean.
  RunningDaemon Daemon;
  ASSERT_TRUE(Daemon.start(Config));

  std::string Error;
  std::optional<DaemonClient> Client = DaemonClient::connectUnixSocket(
      Config.SocketPath, "audited", 5000, Error);
  ASSERT_TRUE(Client) << Error;
  EXPECT_NE(Client->serverHello().BuildInfo.find("compiler"),
            std::string::npos)
      << "HelloAck should carry buildInfoJson(): "
      << Client->serverHello().BuildInfo;

  constexpr unsigned Pipelined = 24;
  for (unsigned Index = 0; Index != Pipelined; ++Index) {
    uint64_t RequestId = 0;
    ASSERT_TRUE(Client->submitAsync(slowRequest(Index), 0, RequestId, Error))
        << Error;
  }
  unsigned Verdicts = 0, Busys = 0;
  for (unsigned Index = 0; Index != Pipelined; ++Index) {
    ClientReply Reply;
    ASSERT_TRUE(Client->readReply(Reply, Error)) << Error;
    if (Reply.Type == MsgType::Verdict) {
      ++Verdicts;
    } else {
      ASSERT_EQ(Reply.Type, MsgType::Busy);
      ++Busys;
    }
  }
  ASSERT_GE(Verdicts, 1u);
  ASSERT_GE(Busys, 1u)
      << "no Busy rejection: the completeness claim needs both outcomes";

  // The wire snapshot must account for exactly this test's traffic and
  // restate the same build identity the Hello carried.
  MetricsReplyMsg Wire;
  ASSERT_TRUE(Client->queryMetrics(Wire, Error)) << Error;
  EXPECT_EQ(Wire.BuildInfo, Client->serverHello().BuildInfo);
  EXPECT_EQ(findCounter(Wire.Metrics, "tnumsd_requests_received_total") -
                ReceivedBefore,
            Pipelined);

  Daemon.stop(); // Writes the final exposition and closes the log.

  // Audit the event log: group by correlation key, then demand one
  // terminal per received request and the exact phase sequence.
  std::ifstream Log(Config.EventLogPath);
  ASSERT_TRUE(Log.is_open()) << Config.EventLogPath;
  std::map<std::pair<uint64_t, uint64_t>, std::vector<std::string>>
      Lifecycles;
  std::string Line;
  while (std::getline(Log, Line)) {
    if (Line.empty())
      continue;
    ASSERT_EQ(Line.front(), '{') << Line;
    ASSERT_EQ(Line.back(), '}') << Line;
    std::string Event = jsonField(Line, "event");
    std::string Conn = jsonField(Line, "conn");
    std::string Req = jsonField(Line, "req");
    ASSERT_FALSE(Event.empty()) << Line;
    ASSERT_FALSE(Conn.empty()) << Line;
    ASSERT_FALSE(Req.empty()) << Line;
    EXPECT_FALSE(jsonField(Line, "ts_ms").empty()) << Line;
    Lifecycles[{std::stoull(Conn), std::stoull(Req)}].push_back(Event);
  }

  unsigned Replied = 0, Rejected = 0;
  for (const auto &Entry : Lifecycles) {
    const std::vector<std::string> &Events = Entry.second;
    SCOPED_TRACE(testing::Message() << "conn " << Entry.first.first << " req "
                                    << Entry.first.second);
    ASSERT_FALSE(Events.empty());
    EXPECT_EQ(Events.front(), "received");
    if (Events.back() == "replied") {
      ++Replied;
      const char *Phases[] = {"received", "admitted", "queued", "analyzing",
                              "replied"};
      ASSERT_EQ(Events.size(), 5u);
      for (size_t Phase = 0; Phase != 5; ++Phase)
        EXPECT_EQ(Events[Phase], Phases[Phase]);
    } else {
      ASSERT_EQ(Events.back(), "busy") << "request left without a terminal";
      ++Rejected;
      ASSERT_EQ(Events.size(), 2u)
          << "a rejected request must not be admitted or analyzed";
    }
  }
  EXPECT_EQ(Replied, Verdicts);
  EXPECT_EQ(Rejected, Busys);

  // stop() refreshed the exposition one last time: the text format must
  // carry this daemon's series.
  std::ifstream Prom(Config.MetricsTextPath);
  ASSERT_TRUE(Prom.is_open()) << Config.MetricsTextPath;
  std::stringstream Text;
  Text << Prom.rdbuf();
  EXPECT_NE(Text.str().find("tnumsd_requests_received_total"),
            std::string::npos);
  EXPECT_NE(Text.str().find("tnumsd_busy_total"), std::string::npos);
}

} // namespace
