//===- tests/TnumOpsTest.cpp - Transfer function unit tests ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumOps.h"

#include "support/Random.h"
#include "tnum/TnumEnum.h"
#include "verify/Oracle.h"
#include "verify/OptimalityChecker.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

using namespace tnums;

namespace {

TEST(TnumAdd, PaperFigure2Example) {
  // Fig. 2: P = 10µ0, Q = 10µ1, result 10µµ1 at width 5.
  Tnum P = *Tnum::parse("10u0");
  Tnum Q = *Tnum::parse("10u1");
  EXPECT_EQ(tnumAdd(P, Q).toString(5), "10uu1");
}

TEST(TnumAdd, IntroUncertaintyAmplification) {
  // §I: a = 11...1 constant, b ∈ {0, 1}: one uncertain input bit makes
  // every output bit of a + b unknown (at width 4: 1111 + 000µ = µµµµ).
  Tnum A = Tnum::makeConstant(0xF);
  Tnum B = *Tnum::parse("000u");
  Tnum R = tnumTruncate(tnumAdd(A, B), 4);
  EXPECT_EQ(R, Tnum::makeUnknown(4));
}

TEST(TnumAdd, ConstantsAddExactly) {
  Tnum R = tnumAdd(Tnum::makeConstant(41), Tnum::makeConstant(1));
  EXPECT_EQ(R, Tnum::makeConstant(42));
}

TEST(TnumSub, ConstantsSubtractExactly) {
  Tnum R = tnumSub(Tnum::makeConstant(10), Tnum::makeConstant(3));
  EXPECT_EQ(R, Tnum::makeConstant(7));
  // Wrap-around under zero is two's complement.
  EXPECT_EQ(tnumSub(Tnum::makeConstant(0), Tnum::makeConstant(1)),
            Tnum::makeConstant(~uint64_t(0)));
}

TEST(TnumNeg, MatchesSubFromZero) {
  Xoshiro256 Rng(7);
  for (int I = 0; I != 1000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    EXPECT_EQ(tnumNeg(P), tnumSub(Tnum::makeConstant(0), P));
  }
}

TEST(TnumBitwise, KnownExamples) {
  Tnum A = *Tnum::parse("1u0");
  Tnum B = *Tnum::parse("11u");
  EXPECT_EQ(tnumAnd(A, B).toString(3), "1u0");
  EXPECT_EQ(tnumOr(A, B).toString(3), "11u");
  EXPECT_EQ(tnumXor(A, B).toString(3), "0uu");
}

TEST(TnumBitwise, AndWithZeroIsZero) {
  Xoshiro256 Rng(11);
  for (int I = 0; I != 1000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    EXPECT_EQ(tnumAnd(P, Tnum::makeConstant(0)), Tnum::makeConstant(0));
  }
}

TEST(TnumBitwise, OrWithAllOnesIsAllOnes) {
  Xoshiro256 Rng(13);
  Tnum Ones = Tnum::makeConstant(~uint64_t(0));
  for (int I = 0; I != 1000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    EXPECT_EQ(tnumOr(P, Ones), Ones);
  }
}

TEST(TnumBitwise, XorSelfKillsKnownBitsOnly) {
  Tnum P = *Tnum::parse("1u1");
  // x ^ y with x, y drawn independently from P: known bits cancel, unknown
  // bits stay unknown (the abstract op cannot see the correlation).
  EXPECT_EQ(tnumXor(P, P).toString(3), "0u0");
}

TEST(TnumShift, FixedAmounts) {
  Tnum P = *Tnum::parse("1u1");
  EXPECT_EQ(tnumLshift(P, 2).toString(5), "1u100");
  EXPECT_EQ(tnumRshift(P, 1).toString(5), "0001u");
}

TEST(TnumArshift, ReplicatesKnownSign) {
  // Width 4, known-negative 1u10 >>s 1 = 11u1.
  Tnum P = *Tnum::parse("1u10");
  EXPECT_EQ(tnumArshift(P, 1, 4).toString(4), "11u1");
}

TEST(TnumArshift, ReplicatesUnknownSign) {
  // Unknown sign trit smears into vacated positions.
  Tnum P = *Tnum::parse("u100");
  EXPECT_EQ(tnumArshift(P, 2, 4).toString(4), "uuu1");
}

TEST(TnumArshift, Width64MatchesKernelSpecialCase) {
  Xoshiro256 Rng(17);
  for (int I = 0; I != 1000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    unsigned Shift = static_cast<unsigned>(Rng.nextBelow(63)) + 1;
    // Kernel 64-bit case: both halves shifted with s64 arithmetic.
    Tnum Expected(
        static_cast<uint64_t>(static_cast<int64_t>(P.value()) >> Shift),
        static_cast<uint64_t>(static_cast<int64_t>(P.mask()) >> Shift));
    EXPECT_EQ(tnumArshift(P, Shift, 64), Expected);
  }
}

TEST(TnumCast, TruncatesLikeKernel) {
  Tnum P(0x0034'5678'9abc'de00, 0xff00'0000'0000'00ff);
  ASSERT_TRUE(P.isWellFormed());
  Tnum C = tnumCast(P, 4);
  EXPECT_EQ(C.value(), 0x9abc'de00u);
  EXPECT_EQ(C.mask(), 0xffu);
}

TEST(TnumDivMod, ConstantsExact) {
  EXPECT_EQ(tnumDiv(Tnum::makeConstant(42), Tnum::makeConstant(5)),
            Tnum::makeConstant(8));
  EXPECT_EQ(tnumMod(Tnum::makeConstant(42), Tnum::makeConstant(5)),
            Tnum::makeConstant(2));
  // BPF conventions for zero divisors.
  EXPECT_EQ(tnumDiv(Tnum::makeConstant(42), Tnum::makeConstant(0)),
            Tnum::makeConstant(0));
  EXPECT_EQ(tnumMod(Tnum::makeConstant(42), Tnum::makeConstant(0)),
            Tnum::makeConstant(42));
}

TEST(TnumDivMod, NonConstantGoesToTop) {
  Tnum P = *Tnum::parse("1u");
  EXPECT_TRUE(tnumDiv(P, Tnum::makeConstant(2), 8).isUnknown(8));
  EXPECT_TRUE(tnumMod(Tnum::makeConstant(9), P, 8).isUnknown(8));
}

TEST(TnumShiftByTnum, ConstantAmountIsPrecise) {
  Tnum P = *Tnum::parse("01u1");
  Tnum R = tnumLshiftByTnum(P, Tnum::makeConstant(2), 8);
  EXPECT_EQ(R, tnumTruncate(tnumLshift(P, 2), 8));
}

TEST(TnumShiftByTnum, JoinsOverFeasibleAmounts) {
  Tnum P = Tnum::makeConstant(1);
  Tnum Amount = *Tnum::parse("00u"); // amount ∈ {0, 1}
  Tnum R = tnumLshiftByTnum(P, Amount, 8);
  EXPECT_TRUE(R.contains(1)); // 1 << 0
  EXPECT_TRUE(R.contains(2)); // 1 << 1
  EXPECT_FALSE(R.contains(4));
}

TEST(TnumShiftByTnum, MasksAmountLikeBpf) {
  // Amount 9 at width 8 is masked to 1.
  Tnum R = tnumLshiftByTnum(Tnum::makeConstant(1), Tnum::makeConstant(9), 8);
  EXPECT_EQ(R, Tnum::makeConstant(2));
}

//===----------------------------------------------------------------------===//
// Exhaustive soundness sweeps (the §III-A bounded verification, as a test).
//===----------------------------------------------------------------------===//

class OpSoundness : public ::testing::TestWithParam<BinaryOp> {};

TEST_P(OpSoundness, ExhaustiveWidth4) {
  BinaryOp Op = GetParam();
  SoundnessReport Report = checkSoundnessExhaustive(Op, 4);
  EXPECT_TRUE(Report.holds())
      << binaryOpName(Op) << ": " << Report.Failure->toString(4);
  EXPECT_EQ(Report.PairsChecked, 81u * 81u);
}

TEST_P(OpSoundness, Random64Bit) {
  BinaryOp Op = GetParam();
  Xoshiro256 Rng(0xC0FFEE);
  SoundnessReport Report =
      checkSoundnessRandom(Op, 64, /*NumPairs=*/2000, /*SamplesPerPair=*/8,
                           Rng);
  EXPECT_TRUE(Report.holds())
      << binaryOpName(Op) << ": " << Report.Failure->toString(64);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpSoundness, ::testing::ValuesIn(AllBinaryOps),
    [](const ::testing::TestParamInfo<BinaryOp> &Info) {
      return std::string(binaryOpName(Info.param));
    });

class OpSoundnessWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(OpSoundnessWidth, AddSubExhaustive) {
  unsigned Width = GetParam();
  EXPECT_TRUE(checkSoundnessExhaustive(BinaryOp::Add, Width).holds());
  EXPECT_TRUE(checkSoundnessExhaustive(BinaryOp::Sub, Width).holds());
}

INSTANTIATE_TEST_SUITE_P(Widths, OpSoundnessWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

//===----------------------------------------------------------------------===//
// Optimality: add/sub and the bitwise ops are maximally precise
// (Theorems 6 and 22; Miné's optimal bitfield operators).
//===----------------------------------------------------------------------===//

class OpOptimality : public ::testing::TestWithParam<BinaryOp> {};

TEST_P(OpOptimality, ExhaustiveWidth4) {
  BinaryOp Op = GetParam();
  OptimalityReport Report = checkOptimalityExhaustive(Op, 4);
  EXPECT_TRUE(Report.isOptimalEverywhere())
      << binaryOpName(Op) << ": " << Report.Failure->toString(4);
}

INSTANTIATE_TEST_SUITE_P(
    OptimalOps, OpOptimality,
    ::testing::Values(BinaryOp::Add, BinaryOp::Sub, BinaryOp::And,
                      BinaryOp::Or, BinaryOp::Xor),
    [](const ::testing::TestParamInfo<BinaryOp> &Info) {
      return std::string(binaryOpName(Info.param));
    });

TEST(OpOptimalityNegative, DivIsNotOptimal) {
  // The conservative all-unknown div must be non-optimal somewhere.
  OptimalityReport Report = checkOptimalityExhaustive(BinaryOp::Div, 3);
  EXPECT_FALSE(Report.isOptimalEverywhere());
}

TEST(TnumTruncate, DropsHighBits) {
  Tnum P(0b1111'0101, 0b0000'1010);
  Tnum T = tnumTruncate(P, 4);
  EXPECT_EQ(T.value(), 0b0101u);
  EXPECT_EQ(T.mask(), 0b1010u);
}

TEST(TnumTruncate, SoundForWidthArithmetic) {
  // 64-bit add then truncate equals width-n add: exhaustive at width 3
  // against the concrete op.
  std::vector<Tnum> Universe = allWellFormedTnums(3);
  for (const Tnum &P : Universe)
    for (const Tnum &Q : Universe) {
      Tnum R = tnumTruncate(tnumAdd(P, Q), 3);
      forEachMember(P, [&](uint64_t X) {
        forEachMember(Q, [&](uint64_t Y) {
          EXPECT_TRUE(R.contains((X + Y) & 7));
        });
      });
    }
}

} // namespace
