//===- tests/ParallelSweepTest.cpp - Parallel verification engine tests ---===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel sweep's contract is bit-reproducibility: same reports as
/// the serial checkers, for every thread count and chunk size, including
/// the counterexample a deliberately broken operator produces. Widths here
/// stay small so the default suite is quick; set TNUMS_SLOW_TESTS=1 to
/// also run the width-8 serial/parallel agreement sweep (the paper's SMT
/// verification horizon for kern_mul; several minutes of CPU).
///
//===----------------------------------------------------------------------===//

#include "tnum/TnumEnum.h"
#include "tnum/TnumOps.h"
#include "verify/ParallelSweep.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace tnums;

namespace {

/// Configurations that exercise the scheduler: serial degenerate path,
/// more threads than this machine likely has, chunks smaller than a row,
/// chunks so large everything lands in one chunk.
const SweepConfig kConfigs[] = {
    {/*NumThreads=*/1, /*ChunkPairs=*/1},
    {/*NumThreads=*/2, /*ChunkPairs=*/7},
    {/*NumThreads=*/4, /*ChunkPairs=*/64},
    {/*NumThreads=*/8, /*ChunkPairs=*/4096},
    {/*NumThreads=*/0, /*ChunkPairs=*/257},
};

void expectSameSoundnessReport(const SoundnessReport &Serial,
                               const SoundnessReport &Parallel) {
  EXPECT_EQ(Serial.holds(), Parallel.holds());
  // A holding sweep scans the full grid, so the work counters are exact
  // totals on both sides; on failure only the witness is comparable.
  if (Serial.holds()) {
    EXPECT_EQ(Serial.PairsChecked, Parallel.PairsChecked);
    EXPECT_EQ(Serial.ConcreteChecked, Parallel.ConcreteChecked);
  }
}

TEST(ParallelSweep, AgreesWithSerialOnEveryOperatorAtWidth4) {
  for (BinaryOp Op : AllBinaryOps) {
    SoundnessReport Serial = checkSoundnessExhaustive(Op, 4);
    for (const SweepConfig &Config : kConfigs) {
      SoundnessReport Parallel =
          checkSoundnessExhaustiveParallel(Op, 4, MulAlgorithm::Our, Config);
      SCOPED_TRACE(binaryOpName(Op));
      expectSameSoundnessReport(Serial, Parallel);
      EXPECT_TRUE(Parallel.holds());
    }
  }
}

TEST(ParallelSweep, AgreesWithSerialOnEveryMulAlgorithmAtWidth5) {
  SweepConfig Config{/*NumThreads=*/4, /*ChunkPairs=*/128};
  for (MulAlgorithm Alg : AllMulAlgorithms) {
    SCOPED_TRACE(mulAlgorithmName(Alg));
    SoundnessReport Serial = checkSoundnessExhaustive(BinaryOp::Mul, 5, Alg);
    SoundnessReport Parallel =
        checkSoundnessExhaustiveParallel(BinaryOp::Mul, 5, Alg, Config);
    expectSameSoundnessReport(Serial, Parallel);
    EXPECT_TRUE(Parallel.holds());
  }
}

TEST(ParallelSweep, AgreesWithSerialAtWidth8WhenSlowTestsEnabled) {
  const char *Enabled = std::getenv("TNUMS_SLOW_TESTS");
  if (!Enabled || Enabled[0] == '0')
    GTEST_SKIP() << "set TNUMS_SLOW_TESTS=1 to run the width-8 sweep "
                    "(the paper's kern_mul SMT horizon; minutes of CPU)";
  SoundnessReport Serial =
      checkSoundnessExhaustive(BinaryOp::Mul, 8, MulAlgorithm::Our);
  SoundnessReport Parallel = checkSoundnessExhaustiveParallel(
      BinaryOp::Mul, 8, MulAlgorithm::Our, SweepConfig());
  expectSameSoundnessReport(Serial, Parallel);
  EXPECT_TRUE(Parallel.holds());
}

//===----------------------------------------------------------------------===//
// Failure determinism: a broken operator must yield the serial-order-first
// counterexample no matter how the chunks get scheduled.
//===----------------------------------------------------------------------===//

/// tnum_add with its lowest unknown trit laundered into a known bit -- a
/// classic soundness bug (claiming knowledge the operator does not have).
Tnum brokenAdd(const Tnum &P, const Tnum &Q, unsigned Width) {
  Tnum R = tnumTruncate(tnumAdd(P, Q), Width);
  uint64_t M = R.mask();
  if (M == 0)
    return R;
  uint64_t Lowest = M & (0 - M);
  return Tnum(R.value(), M & ~Lowest);
}

/// Independent reference scan: the first violation in row-major pair
/// order, member-odometer order, computed with plain loops (no engine).
SoundnessCounterexample firstViolationByHand(unsigned Width) {
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      Tnum R = brokenAdd(P, Q, Width);
      SoundnessCounterexample Found;
      bool HasFound = false;
      forEachMember(P, [&](uint64_t X) {
        forEachMember(Q, [&](uint64_t Y) {
          if (HasFound)
            return;
          uint64_t Z = applyConcreteBinary(BinaryOp::Add, X, Y, Width);
          if (!R.contains(Z)) {
            Found = SoundnessCounterexample{P, Q, X, Y, Z, R};
            HasFound = true;
          }
        });
      });
      if (HasFound)
        return Found;
    }
  }
  ADD_FAILURE() << "brokenAdd unexpectedly sound";
  return SoundnessCounterexample{};
}

TEST(ParallelSweep, BrokenOperatorYieldsSerialFirstCounterexample) {
  constexpr unsigned Width = 4;
  AbstractBinaryFn Broken = [](const Tnum &P, const Tnum &Q) {
    return brokenAdd(P, Q, Width);
  };
  SoundnessCounterexample Expected = firstViolationByHand(Width);
  for (const SweepConfig &Config : kConfigs) {
    SoundnessReport Report =
        checkSoundnessExhaustiveParallel(BinaryOp::Add, Broken, Width, Config);
    ASSERT_TRUE(Report.Failure.has_value());
    const SoundnessCounterexample &Got = *Report.Failure;
    EXPECT_EQ(Got.P, Expected.P);
    EXPECT_EQ(Got.Q, Expected.Q);
    EXPECT_EQ(Got.X, Expected.X);
    EXPECT_EQ(Got.Y, Expected.Y);
    EXPECT_EQ(Got.Z, Expected.Z);
    EXPECT_EQ(Got.R, Expected.R);
  }
}

//===----------------------------------------------------------------------===//
// Optimality
//===----------------------------------------------------------------------===//

TEST(ParallelSweep, OptimalityAgreesWithSerialFullScan) {
  SweepConfig Config{/*NumThreads=*/3, /*ChunkPairs=*/50};
  // Add is optimal everywhere (Theorem 6); our_mul is not (SIII-C).
  for (BinaryOp Op : {BinaryOp::Add, BinaryOp::Mul}) {
    SCOPED_TRACE(binaryOpName(Op));
    OptimalityReport Serial = checkOptimalityExhaustive(
        Op, 4, MulAlgorithm::Our, /*StopAtFirst=*/false);
    OptimalityReport Parallel =
        checkOptimalityExhaustiveParallel(Op, 4, MulAlgorithm::Our, Config);
    EXPECT_EQ(Serial.PairsChecked, Parallel.PairsChecked);
    EXPECT_EQ(Serial.OptimalPairs, Parallel.OptimalPairs);
    ASSERT_EQ(Serial.Failure.has_value(), Parallel.Failure.has_value());
    if (Serial.Failure) {
      EXPECT_EQ(Serial.Failure->P, Parallel.Failure->P);
      EXPECT_EQ(Serial.Failure->Q, Parallel.Failure->Q);
      EXPECT_EQ(Serial.Failure->Actual, Parallel.Failure->Actual);
      EXPECT_EQ(Serial.Failure->Optimal, Parallel.Failure->Optimal);
    }
  }
  EXPECT_TRUE(checkOptimalityExhaustiveParallel(BinaryOp::Add, 4)
                  .isOptimalEverywhere());
  EXPECT_FALSE(checkOptimalityExhaustiveParallel(BinaryOp::Mul, 4)
                   .isOptimalEverywhere());
}

TEST(ParallelSweep, OptimalityStopAtFirstKeepsSerialWitness) {
  OptimalityReport Serial = checkOptimalityExhaustive(
      BinaryOp::Mul, 4, MulAlgorithm::Our, /*StopAtFirst=*/true);
  ASSERT_TRUE(Serial.Failure.has_value());
  for (const SweepConfig &Config : kConfigs) {
    OptimalityReport Parallel = checkOptimalityExhaustiveParallel(
        BinaryOp::Mul, 4, MulAlgorithm::Our, Config, /*StopAtFirst=*/true);
    ASSERT_TRUE(Parallel.Failure.has_value());
    // Early exit makes the work counters chunk-granular, but the witness
    // must still be the serial-order first non-optimal pair.
    EXPECT_EQ(Serial.Failure->P, Parallel.Failure->P);
    EXPECT_EQ(Serial.Failure->Q, Parallel.Failure->Q);
    EXPECT_EQ(Serial.Failure->Actual, Parallel.Failure->Actual);
    EXPECT_EQ(Serial.Failure->Optimal, Parallel.Failure->Optimal);
    // Chunks below the failing one always complete, in-flight chunks above
    // may add a bounded amount of extra work before noticing cancellation.
    EXPECT_GE(Parallel.PairsChecked, Serial.PairsChecked);
    uint64_t NumTnums = numWellFormedTnums(4);
    EXPECT_LE(Parallel.PairsChecked, NumTnums * NumTnums);
  }
}

//===----------------------------------------------------------------------===//
// The six-algorithm campaign driver
//===----------------------------------------------------------------------===//

TEST(ParallelSweep, MulCampaignCoversAllSixAlgorithmsPerWidth) {
  std::vector<MulSweepResult> Results =
      sweepMulSoundness({4, 5}, SweepConfig{/*NumThreads=*/2,
                                            /*ChunkPairs=*/512});
  ASSERT_EQ(Results.size(), 12u);
  for (const MulSweepResult &Cell : Results) {
    SCOPED_TRACE(mulAlgorithmName(Cell.Algorithm));
    EXPECT_TRUE(Cell.Report.holds());
    uint64_t NumTnums = numWellFormedTnums(Cell.Width);
    EXPECT_EQ(Cell.Report.PairsChecked, NumTnums * NumTnums);
    EXPECT_GE(Cell.Seconds, 0.0);
  }
  // Width-major ordering, all six algorithms per width.
  EXPECT_EQ(Results[0].Width, 4u);
  EXPECT_EQ(Results[5].Width, 4u);
  EXPECT_EQ(Results[6].Width, 5u);
  EXPECT_EQ(Results[0].Algorithm, MulAlgorithm::Kern);
  EXPECT_EQ(Results[4].Algorithm, MulAlgorithm::Our);
}

} // namespace
