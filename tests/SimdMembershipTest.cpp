//===- tests/SimdMembershipTest.cpp - SIMD membership differential tests --===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential harness pinning the batched SIMD membership path
/// (support/SimdBatch.h, tnum/TnumMembers.h, the fused scan loops in
/// verify/SoundnessChecker.cpp) bit-for-bit to the scalar reference
/// checkers. A hand-vectorized hot path silently diverging from the
/// reference is the failure mode this file exists to catch, so every
/// assertion compares full reports -- witnesses AND exact work counters --
/// not just verdicts.
///
/// Widths stay in 4..8; the width-8 exhaustive mul campaign is gated
/// behind TNUMS_SLOW_TESTS=1 like ParallelSweepTest's.
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "support/SimdBatch.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMembers.h"
#include "tnum/TnumOps.h"
#include "verify/ParallelSweep.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

using namespace tnums;

namespace {

//===----------------------------------------------------------------------===//
// Batch enumeration: TnumMembers must visit gamma(P) in forEachMember's
// exact order, batch boundaries included.
//===----------------------------------------------------------------------===//

std::vector<uint64_t> membersViaCallback(const Tnum &P) {
  std::vector<uint64_t> Out;
  forEachMember(P, [&](uint64_t X) { Out.push_back(X); });
  return Out;
}

std::vector<uint64_t> membersViaStream(const Tnum &P) {
  std::vector<uint64_t> Out;
  MemberStream Stream(P);
  alignas(SimdBatchAlign) uint64_t Buf[SimdBatchLanes];
  while (unsigned N = Stream.nextBatch(Buf))
    Out.insert(Out.end(), Buf, Buf + N);
  return Out;
}

TEST(TnumMembers, MaterializeMatchesForEachMemberOnRandomTnums) {
  Xoshiro256 Rng(20220402);
  std::vector<uint64_t> Materialized;
  for (unsigned Width = 4; Width <= 8; ++Width) {
    for (int I = 0; I != 200; ++I) {
      Tnum P = randomWellFormedTnum(Rng, Width);
      materializeMembers(P, Materialized);
      EXPECT_EQ(Materialized, membersViaCallback(P))
          << "width " << Width << " P=" << P.toString(Width);
    }
  }
}

TEST(TnumMembers, StreamMatchesForEachMemberAcrossBatchBoundaries) {
  // |gamma| = 2^popcount(mask): exercise < 64 (one short batch), == 64
  // (exactly one full batch, empty tail), and > 64 (full batches then a
  // boundary at 256).
  for (const char *Text : {"0000", "u0u0", "uuuuu0", "uuuuuu", "uuuuuuuu"}) {
    Tnum P = *Tnum::parse(Text);
    EXPECT_EQ(membersViaStream(P), membersViaCallback(P)) << Text;
  }
}

TEST(TnumMembers, BottomAndConstantEdgeCases) {
  std::vector<uint64_t> Materialized;
  materializeMembers(Tnum::makeBottom(), Materialized);
  EXPECT_TRUE(Materialized.empty());
  EXPECT_TRUE(membersViaStream(Tnum::makeBottom()).empty());

  materializeMembers(Tnum::makeConstant(42), Materialized);
  EXPECT_EQ(Materialized, std::vector<uint64_t>{42});

  MemberStream Stream(Tnum::makeConstant(7));
  EXPECT_FALSE(Stream.exhausted());
  Stream.reset();
  alignas(SimdBatchAlign) uint64_t Buf[SimdBatchLanes];
  EXPECT_EQ(Stream.nextBatch(Buf), 1u);
  EXPECT_EQ(Buf[0], 7u);
  EXPECT_TRUE(Stream.exhausted());
  EXPECT_EQ(Stream.nextBatch(Buf), 0u);
}

//===----------------------------------------------------------------------===//
// Kernel differential: every hand-vectorized tier the host can execute
// must agree with the portable one on every lane count and every bit
// pattern we can throw at it.
//===----------------------------------------------------------------------===//

void expectTierAgreesWithScalar(const SimdKernels *Tier, const char *What) {
  if (!Tier)
    GTEST_SKIP() << "host cannot execute the " << What
                 << " kernels; portable covers it";
  const SimdKernels &Scalar = scalarSimdKernels();
  Xoshiro256 Rng(7);
  alignas(SimdBatchAlign) uint64_t Z[SimdBatchLanes];
  for (int Trial = 0; Trial != 500; ++Trial) {
    unsigned N = 1 + static_cast<unsigned>(Rng.next() % SimdBatchLanes);
    for (unsigned I = 0; I != N; ++I)
      Z[I] = Rng.next() & 0xFF; // Small values: frequent (non-)membership.
    uint64_t M = Rng.next() & 0xFF;
    uint64_t V = Rng.next() & 0xFF & ~M;
    uint64_t ScalarMask = Scalar.NonMemberMask(Z, N, V, ~M);
    uint64_t TierMask = Tier->NonMemberMask(Z, N, V, ~M);
    ASSERT_EQ(ScalarMask, TierMask) << What << " N=" << N;
    if (N < SimdBatchLanes) { // Bits at and above N must stay clear.
      EXPECT_EQ(ScalarMask >> N, 0u);
    }

    uint64_t AndS = ~uint64_t(0), OrS = 0, AndV = ~uint64_t(0), OrV = 0;
    Scalar.ReduceAndOr(Z, N, &AndS, &OrS);
    Tier->ReduceAndOr(Z, N, &AndV, &OrV);
    EXPECT_EQ(AndS, AndV) << What;
    EXPECT_EQ(OrS, OrV) << What;
  }
}

TEST(SimdKernels, Avx2AgreesWithScalarOnRandomBatches) {
  expectTierAgreesWithScalar(avx2SimdKernels(), "avx2");
}

TEST(SimdKernels, Avx512AgreesWithScalarOnRandomBatches) {
  expectTierAgreesWithScalar(avx512SimdKernels(), "avx512");
}

TEST(SimdKernels, NeonAgreesWithScalarOnRandomBatches) {
  expectTierAgreesWithScalar(neonSimdKernels(), "neon");
}

TEST(SimdKernels, ModeParsingIsTotal) {
  EXPECT_EQ(parseSimdMode("auto"), SimdMode::Auto);
  EXPECT_EQ(parseSimdMode("on"), SimdMode::On); // Legacy alias of auto.
  EXPECT_EQ(parseSimdMode("off"), SimdMode::Off);
  EXPECT_EQ(parseSimdMode("portable"), SimdMode::Portable);
  EXPECT_EQ(parseSimdMode("avx2"), SimdMode::Avx2);
  EXPECT_EQ(parseSimdMode("avx512"), SimdMode::Avx512);
  EXPECT_EQ(parseSimdMode("neon"), SimdMode::Neon);
  EXPECT_EQ(parseSimdMode("fast"), std::nullopt);
  EXPECT_EQ(parseSimdMode("AVX2"), std::nullopt); // Spellings are exact.
  for (SimdMode Mode : {SimdMode::Auto, SimdMode::On, SimdMode::Off,
                        SimdMode::Portable, SimdMode::Avx2, SimdMode::Avx512,
                        SimdMode::Neon}) {
    EXPECT_EQ(parseSimdMode(simdModeName(Mode)), Mode);
  }
}

TEST(SimdKernels, ModeResolutionIsTotal) {
  // Off and Portable always resolve to the portable kernels (which keep
  // the historical "scalar" name).
  EXPECT_STREQ(selectSimdKernels(SimdMode::Off).Name, "scalar");
  EXPECT_STREQ(selectSimdKernels(SimdMode::Portable).Name, "scalar");
  EXPECT_EQ(selectSimdKernels(SimdMode::Portable).Tier, SimdTier::Portable);

  // On/Auto resolve identically to the best tier the host supports
  // (avx512 > avx2 > neon > portable).
  EXPECT_STREQ(selectSimdKernels(SimdMode::On).Name,
               selectSimdKernels(SimdMode::Auto).Name);
  if (cpuHasAvx512())
    EXPECT_STREQ(selectSimdKernels(SimdMode::Auto).Name, "avx512");
  else if (cpuHasAvx2())
    EXPECT_STREQ(selectSimdKernels(SimdMode::Auto).Name, "avx2");
  else if (cpuHasNeon())
    EXPECT_STREQ(selectSimdKernels(SimdMode::Auto).Name, "neon");
  else
    EXPECT_STREQ(selectSimdKernels(SimdMode::Auto).Name, "scalar");

  // A forced tier resolves to its own kernels when the host supports it
  // and falls back to the portable kernels (silently -- reports are
  // bit-identical across tiers) when it does not. simdModeSupported is
  // how front ends turn the fallback into a hard error.
  struct ForcedTier {
    SimdMode Mode;
    bool Supported;
    const char *Name;
    SimdTier Tier;
  };
  const ForcedTier Forced[] = {
      {SimdMode::Avx2, cpuHasAvx2(), "avx2", SimdTier::Avx2},
      {SimdMode::Avx512, cpuHasAvx512(), "avx512", SimdTier::Avx512},
      {SimdMode::Neon, cpuHasNeon(), "neon", SimdTier::Neon},
  };
  for (const ForcedTier &F : Forced) {
    SCOPED_TRACE(F.Name);
    EXPECT_EQ(simdModeSupported(F.Mode), F.Supported);
    const SimdKernels &K = selectSimdKernels(F.Mode);
    if (F.Supported) {
      EXPECT_STREQ(K.Name, F.Name);
      EXPECT_EQ(K.Tier, F.Tier);
    } else {
      EXPECT_STREQ(K.Name, "scalar");
      EXPECT_EQ(K.Tier, SimdTier::Portable);
    }
  }

  // The non-forced modes are supported everywhere, and the supported-mode
  // diagnostic list always offers the portable spellings.
  for (SimdMode Mode :
       {SimdMode::Auto, SimdMode::On, SimdMode::Off, SimdMode::Portable})
    EXPECT_TRUE(simdModeSupported(Mode));
  std::string Supported = supportedSimdModeList();
  EXPECT_NE(Supported.find("auto"), std::string::npos);
  EXPECT_NE(Supported.find("portable"), std::string::npos);
  EXPECT_EQ(Supported.find("avx2") != std::string::npos, cpuHasAvx2());
  EXPECT_EQ(Supported.find("avx512") != std::string::npos, cpuHasAvx512());
  EXPECT_EQ(Supported.find("neon") != std::string::npos, cpuHasNeon());
}

//===----------------------------------------------------------------------===//
// Pair-scan differential: the batched scan of one (P, Q) cell -- the fused
// AVX2 loops included -- must reproduce the scalar scan's counterexample
// and exact evaluation count on membership-violating R as well as sound R.
//===----------------------------------------------------------------------===//

struct ScalarScanResult {
  std::optional<SoundnessCounterexample> Failure;
  uint64_t ConcreteChecked = 0;
};

/// The pre-batching reference scan: forEachMember x contains, counting
/// every evaluation up to and including a violation.
ScalarScanResult scanPairScalar(BinaryOp Op, unsigned Width, const Tnum &P,
                                const Tnum &Q, const Tnum &R) {
  ScalarScanResult Result;
  bool Stop = false;
  forEachMember(P, [&](uint64_t X) {
    if (Stop)
      return;
    forEachMember(Q, [&](uint64_t Y) {
      if (Stop)
        return;
      ++Result.ConcreteChecked;
      uint64_t Z = applyConcreteBinary(Op, X, Y, Width);
      if (!R.contains(Z)) {
        Result.Failure = SoundnessCounterexample{P, Q, X, Y, Z, R};
        Stop = true;
      }
    });
  });
  return Result;
}

TEST(BatchedPairScan, AgreesWithScalarScanOnRandomCells) {
  Xoshiro256 Rng(99);
  std::vector<uint64_t> Ys;
  const SimdKernels &Kernels = selectSimdKernels(SimdMode::Auto);
  // Ops with fused AVX2 loops and ops without (div goes through the
  // generic batch + membership kernel path).
  const BinaryOp Ops[] = {BinaryOp::Add, BinaryOp::Mul, BinaryOp::Xor,
                          BinaryOp::Div};
  for (unsigned Width = 4; Width <= 8; ++Width) {
    for (int Trial = 0; Trial != 300; ++Trial) {
      Tnum P = randomWellFormedTnum(Rng, Width);
      Tnum Q = randomWellFormedTnum(Rng, Width);
      // Random R: often violated, sometimes sound, occasionally bottom.
      Tnum R = randomWellFormedTnum(Rng, Width);
      if (Trial % 5 == 0)
        R = Tnum::makeBottom();
      for (BinaryOp Op : Ops) {
        ScalarScanResult Reference = scanPairScalar(Op, Width, P, Q, R);
        materializeMembers(Q, Ys);
        uint64_t Checked = 0;
        std::optional<SoundnessCounterexample> Failure =
            scanPairMembersBatched(Op, Width, P, Q, R, Ys.data(), Ys.size(),
                                   Kernels, Checked);
        ASSERT_EQ(Reference.Failure.has_value(), Failure.has_value())
            << binaryOpName(Op) << " width " << Width;
        EXPECT_EQ(Reference.ConcreteChecked, Checked);
        if (Reference.Failure) {
          EXPECT_EQ(Reference.Failure->X, Failure->X);
          EXPECT_EQ(Reference.Failure->Y, Failure->Y);
          EXPECT_EQ(Reference.Failure->Z, Failure->Z);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Whole-report equivalence: SimdMode::On and SimdMode::Off must produce
// bit-identical SoundnessReport / OptimalityReport contents.
//===----------------------------------------------------------------------===//

TEST(SimdSweep, SerialSoundnessBitIdenticalAcrossModesAtWidth4) {
  // Forced tiers the host lacks silently fall back to portable, so every
  // mode -- including neon on x86 or avx512 on an old Xeon -- must still
  // reproduce the scalar reference report exactly.
  for (BinaryOp Op : AllBinaryOps) {
    SCOPED_TRACE(binaryOpName(Op));
    SoundnessReport Off =
        checkSoundnessExhaustive(Op, 4, MulAlgorithm::Our, SimdMode::Off);
    for (SimdMode Mode : {SimdMode::On, SimdMode::Portable, SimdMode::Avx2,
                          SimdMode::Avx512, SimdMode::Neon}) {
      SCOPED_TRACE(simdModeName(Mode));
      SoundnessReport On =
          checkSoundnessExhaustive(Op, 4, MulAlgorithm::Our, Mode);
      EXPECT_EQ(Off.holds(), On.holds());
      EXPECT_EQ(Off.PairsChecked, On.PairsChecked);
      EXPECT_EQ(Off.ConcreteChecked, On.ConcreteChecked);
    }
  }
}

TEST(SimdSweep, SerialOptimalityBitIdenticalAcrossModesAtWidth4) {
  for (BinaryOp Op : {BinaryOp::Add, BinaryOp::Mul, BinaryOp::Div}) {
    SCOPED_TRACE(binaryOpName(Op));
    OptimalityReport Off = checkOptimalityExhaustive(
        Op, 4, MulAlgorithm::Our, /*StopAtFirst=*/false, SimdMode::Off);
    OptimalityReport On = checkOptimalityExhaustive(
        Op, 4, MulAlgorithm::Our, /*StopAtFirst=*/false, SimdMode::On);
    EXPECT_EQ(Off.PairsChecked, On.PairsChecked);
    EXPECT_EQ(Off.OptimalPairs, On.OptimalPairs);
    ASSERT_EQ(Off.Failure.has_value(), On.Failure.has_value());
    if (Off.Failure) {
      EXPECT_EQ(Off.Failure->P, On.Failure->P);
      EXPECT_EQ(Off.Failure->Q, On.Failure->Q);
      EXPECT_EQ(Off.Failure->Actual, On.Failure->Actual);
      EXPECT_EQ(Off.Failure->Optimal, On.Failure->Optimal);
    }
  }
}

TEST(SimdSweep, BatchedOptimalAbstractionMatchesScalarFold) {
  Xoshiro256 Rng(5);
  std::vector<uint64_t> Ys;
  for (unsigned Width = 4; Width <= 8; ++Width) {
    for (int Trial = 0; Trial != 200; ++Trial) {
      Tnum P = randomWellFormedTnum(Rng, Width);
      Tnum Q = randomWellFormedTnum(Rng, Width);
      materializeMembers(Q, Ys);
      // Sub exercises the operand-order flip in the fused BatchLhs loops;
      // Div has no fused kernel and pins the two-pass path.
      for (BinaryOp Op :
           {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div}) {
        Tnum Scalar = optimalAbstractBinary(Op, P, Q, Width);
        for (SimdMode Mode : {SimdMode::Off, SimdMode::On, SimdMode::Portable,
                              SimdMode::Avx2, SimdMode::Avx512,
                              SimdMode::Neon}) {
          for (bool AllowFused : {true, false}) {
            Tnum Batched = optimalAbstractBinaryBatched(
                Op, Width, P, Ys.data(), Ys.size(), selectSimdKernels(Mode),
                AllowFused);
            EXPECT_EQ(Scalar, Batched)
                << binaryOpName(Op) << " width " << Width << " mode "
                << simdModeName(Mode) << (AllowFused ? " fused" : " unfused");
          }
        }
      }
    }
  }
}

TEST(SimdSweep, MemoizedOptimalAbstractionMatchesScalarFoldOnBothAxes) {
  // optimalAbstractBinaryMembers batches over whichever axis is longer;
  // with |gamma(P)| > |gamma(Q)| the FIXED operand is the rhs, which is
  // the BatchLhs=true fused loops (the operand-order flip matters only
  // for Sub, but every fused op goes through the flipped loop shape).
  Xoshiro256 Rng(11);
  std::vector<uint64_t> Xs, Ys;
  for (unsigned Width = 4; Width <= 8; ++Width) {
    for (int Trial = 0; Trial != 120; ++Trial) {
      Tnum P = randomWellFormedTnum(Rng, Width);
      Tnum Q = randomWellFormedTnum(Rng, Width);
      materializeMembers(P, Xs);
      materializeMembers(Q, Ys);
      for (BinaryOp Op :
           {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div}) {
        Tnum Scalar = optimalAbstractBinary(Op, P, Q, Width);
        for (SimdMode Mode :
             {SimdMode::Off, SimdMode::On, SimdMode::Portable}) {
          for (bool AllowFused : {true, false}) {
            Tnum Memoized = optimalAbstractBinaryMembers(
                Op, Width, Xs.data(), Xs.size(), Ys.data(), Ys.size(),
                selectSimdKernels(Mode), AllowFused);
            EXPECT_EQ(Scalar, Memoized)
                << binaryOpName(Op) << " width " << Width << " mode "
                << simdModeName(Mode) << (AllowFused ? " fused" : " unfused")
                << " |gamma(P)|=" << Xs.size() << " |gamma(Q)|=" << Ys.size();
          }
        }
      }
    }
  }
}

TEST(SimdSweep, FusedOptimalityBitIdenticalAcrossSchedulersAndModes) {
  // The fused evaluate-and-reduce alpha loops must never change a report:
  // cross FuseOptimality x simd mode x three scheduler shapes against the
  // serial scalar reference. Sub exercises the non-commutative fused
  // path; Mul the width-gated one; Div has no fused kernels at all.
  constexpr unsigned Width = 4;
  const SweepConfig Schedulers[] = {
      {/*NumThreads=*/1, /*ChunkPairs=*/1},
      {/*NumThreads=*/3, /*ChunkPairs=*/17},
      {/*NumThreads=*/0, /*ChunkPairs=*/4096},
  };
  for (BinaryOp Op : {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul,
                      BinaryOp::Div}) {
    SCOPED_TRACE(binaryOpName(Op));
    OptimalityReport Reference = checkOptimalityExhaustive(
        Op, Width, MulAlgorithm::Our, /*StopAtFirst=*/false, SimdMode::Off);
    for (SimdMode Mode : {SimdMode::Off, SimdMode::Portable, SimdMode::Auto}) {
      for (bool Fuse : {true, false}) {
        for (SweepConfig Config : Schedulers) {
          Config.Simd = Mode;
          Config.FuseOptimality = Fuse;
          OptimalityReport Report = checkOptimalityExhaustiveParallel(
              Op, Width, MulAlgorithm::Our, Config);
          SCOPED_TRACE(std::string(simdModeName(Mode)) +
                       (Fuse ? " fused" : " unfused"));
          EXPECT_EQ(Reference.PairsChecked, Report.PairsChecked);
          EXPECT_EQ(Reference.OptimalPairs, Report.OptimalPairs);
          ASSERT_EQ(Reference.Failure.has_value(), Report.Failure.has_value());
          if (Reference.Failure) {
            EXPECT_EQ(Reference.Failure->P, Report.Failure->P);
            EXPECT_EQ(Reference.Failure->Q, Report.Failure->Q);
            EXPECT_EQ(Reference.Failure->Actual, Report.Failure->Actual);
            EXPECT_EQ(Reference.Failure->Optimal, Report.Failure->Optimal);
          }
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Witness determinism of the SIMD sweep: the same five scheduler configs
// ParallelSweepTest exercises, now crossed with the simd modes. A broken
// operator must yield the serial-order-first counterexample everywhere.
//===----------------------------------------------------------------------===//

/// tnum_add with its lowest unknown trit laundered into a known bit (the
/// same deliberately unsound operator ParallelSweepTest uses).
Tnum brokenAdd(const Tnum &P, const Tnum &Q, unsigned Width) {
  Tnum R = tnumTruncate(tnumAdd(P, Q), Width);
  uint64_t M = R.mask();
  if (M == 0)
    return R;
  uint64_t Lowest = M & (0 - M);
  return Tnum(R.value(), M & ~Lowest);
}

TEST(SimdSweep, BrokenOperatorWitnessDeterministicAcrossSchedulersAndModes) {
  constexpr unsigned Width = 4;
  AbstractBinaryFn Broken = [](const Tnum &P, const Tnum &Q) {
    return brokenAdd(P, Q, Width);
  };
  // Scalar serial-order-first reference witness.
  SweepConfig Reference;
  Reference.NumThreads = 1;
  Reference.ChunkPairs = 1;
  Reference.Simd = SimdMode::Off;
  SoundnessReport Expected =
      checkSoundnessExhaustiveParallel(BinaryOp::Add, Broken, Width, Reference);
  ASSERT_TRUE(Expected.Failure.has_value());

  const SweepConfig Schedulers[] = {
      {/*NumThreads=*/1, /*ChunkPairs=*/1},
      {/*NumThreads=*/2, /*ChunkPairs=*/7},
      {/*NumThreads=*/4, /*ChunkPairs=*/64},
      {/*NumThreads=*/8, /*ChunkPairs=*/4096},
      {/*NumThreads=*/0, /*ChunkPairs=*/257},
  };
  for (SimdMode Mode : {SimdMode::Off, SimdMode::On, SimdMode::Auto,
                        SimdMode::Portable}) {
    for (SweepConfig Config : Schedulers) {
      Config.Simd = Mode;
      SoundnessReport Report = checkSoundnessExhaustiveParallel(
          BinaryOp::Add, Broken, Width, Config);
      SCOPED_TRACE(simdModeName(Mode));
      ASSERT_TRUE(Report.Failure.has_value());
      EXPECT_EQ(Report.Failure->P, Expected.Failure->P);
      EXPECT_EQ(Report.Failure->Q, Expected.Failure->Q);
      EXPECT_EQ(Report.Failure->X, Expected.Failure->X);
      EXPECT_EQ(Report.Failure->Y, Expected.Failure->Y);
      EXPECT_EQ(Report.Failure->Z, Expected.Failure->Z);
      EXPECT_EQ(Report.Failure->R, Expected.Failure->R);
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel monotonicity agrees with the serial checker, witness included
// (kern_mul is non-monotone at width 5 -- a real, deterministic witness).
//===----------------------------------------------------------------------===//

TEST(SimdSweep, ParallelMonotonicityAgreesWithSerial) {
  // Monotone case: exact quadruple totals must match.
  MonotonicityReport Serial =
      checkMonotonicityExhaustive(BinaryOp::Add, 4, MulAlgorithm::Our);
  MonotonicityReport Parallel = checkMonotonicityExhaustiveParallel(
      BinaryOp::Add, 4, MulAlgorithm::Our,
      SweepConfig{/*NumThreads=*/4, /*ChunkPairs=*/64});
  EXPECT_TRUE(Serial.holds());
  EXPECT_TRUE(Parallel.holds());
  EXPECT_EQ(Serial.QuadruplesChecked, Parallel.QuadruplesChecked);

  // Non-monotone case: the witness must be the serial-order first one for
  // every scheduler shape.
  MonotonicityReport SerialBad =
      checkMonotonicityExhaustive(BinaryOp::Mul, 5, MulAlgorithm::Kern);
  ASSERT_FALSE(SerialBad.holds());
  for (const SweepConfig &Config :
       {SweepConfig{1, 1}, SweepConfig{3, 100}, SweepConfig{0, 4096}}) {
    MonotonicityReport ParallelBad = checkMonotonicityExhaustiveParallel(
        BinaryOp::Mul, 5, MulAlgorithm::Kern, Config);
    ASSERT_FALSE(ParallelBad.holds());
    EXPECT_EQ(SerialBad.Failure->P1, ParallelBad.Failure->P1);
    EXPECT_EQ(SerialBad.Failure->Q1, ParallelBad.Failure->Q1);
    EXPECT_EQ(SerialBad.Failure->P2, ParallelBad.Failure->P2);
    EXPECT_EQ(SerialBad.Failure->Q2, ParallelBad.Failure->Q2);
    EXPECT_EQ(SerialBad.Failure->R1, ParallelBad.Failure->R1);
    EXPECT_EQ(SerialBad.Failure->R2, ParallelBad.Failure->R2);
  }
}

//===----------------------------------------------------------------------===//
// The exhaustive mul campaign on the SIMD path: width 6 always, width 8
// (the paper's SMT horizon) behind TNUMS_SLOW_TESTS=1.
//===----------------------------------------------------------------------===//

void expectMulCampaignBitIdentical(unsigned Width) {
  for (MulAlgorithm Alg : AllMulAlgorithms) {
    SCOPED_TRACE(mulAlgorithmName(Alg));
    // Scalar serial checker: the pre-batching reference.
    SoundnessReport Reference =
        checkSoundnessExhaustive(BinaryOp::Mul, Width, Alg, SimdMode::Off);
    // SIMD path, serial and parallel scheduling.
    SoundnessReport Simd =
        checkSoundnessExhaustive(BinaryOp::Mul, Width, Alg, SimdMode::On);
    SweepConfig Config;
    Config.Simd = SimdMode::On;
    SoundnessReport Parallel =
        checkSoundnessExhaustiveParallel(BinaryOp::Mul, Width, Alg, Config);
    for (const SoundnessReport *Report : {&Simd, &Parallel}) {
      EXPECT_TRUE(Report->holds());
      EXPECT_EQ(Reference.PairsChecked, Report->PairsChecked);
      EXPECT_EQ(Reference.ConcreteChecked, Report->ConcreteChecked);
    }
    EXPECT_TRUE(Reference.holds());
  }
}

TEST(SimdSweep, Width6MulCampaignBitIdenticalToScalarSerial) {
  expectMulCampaignBitIdentical(6);
}

TEST(SimdSweep, Width8MulCampaignBitIdenticalWhenSlowTestsEnabled) {
  const char *Enabled = std::getenv("TNUMS_SLOW_TESTS");
  if (!Enabled || Enabled[0] == '0')
    GTEST_SKIP() << "set TNUMS_SLOW_TESTS=1 to run the width-8 campaign "
                    "(the paper's kern_mul SMT horizon; minutes of CPU)";
  expectMulCampaignBitIdentical(8);
}

} // namespace
