//===- tests/RippleAndJmp32Test.cpp - R&D baselines and JMP32 -------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Regehr & Duongsaa ripple-carry add/sub baselines (the
/// paper's §II prior art) and for 32-bit conditional jumps (BPF_JMP32)
/// with subregister branch refinement.
///
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"
#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"
#include "support/Random.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumOps.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

using namespace tnums;
using namespace tnums::bpf;

namespace {

//===----------------------------------------------------------------------===//
// Ripple-carry add/sub
//===----------------------------------------------------------------------===//

TEST(RippleAdd, ConstantsAddExactly) {
  EXPECT_EQ(rippleAdd(Tnum::makeConstant(41), Tnum::makeConstant(1), 64),
            Tnum::makeConstant(42));
  EXPECT_EQ(rippleSub(Tnum::makeConstant(10), Tnum::makeConstant(3), 64),
            Tnum::makeConstant(7));
}

TEST(RippleAdd, PaperFigure2Example) {
  Tnum P = *Tnum::parse("10u0");
  Tnum Q = *Tnum::parse("10u1");
  EXPECT_EQ(rippleAdd(P, Q, 5).toString(5), "10uu1");
}

TEST(RippleAdd, SoundExhaustiveSmallWidths) {
  for (unsigned W : {1u, 2u, 3u, 4u}) {
    for (const Tnum &P : allWellFormedTnums(W)) {
      for (const Tnum &Q : allWellFormedTnums(W)) {
        Tnum RA = rippleAdd(P, Q, W);
        Tnum RS = rippleSub(P, Q, W);
        forEachMember(P, [&](uint64_t X) {
          forEachMember(Q, [&](uint64_t Y) {
            EXPECT_TRUE(RA.contains((X + Y) & lowBitsMask(W)));
            EXPECT_TRUE(RS.contains((X - Y) & lowBitsMask(W)));
          });
        });
      }
    }
  }
}

TEST(RippleAdd, OutputEquivalentToKernelOperators) {
  // The surprising empirical finding (bench/ripple_vs_kernel_add [c]):
  // the per-bit-optimal ripple composition produces exactly the kernel's
  // optimal results -- exhaustively at width 5, randomized at 64 bits.
  for (const Tnum &P : allWellFormedTnums(5)) {
    for (const Tnum &Q : allWellFormedTnums(5)) {
      EXPECT_EQ(rippleAdd(P, Q, 5), tnumTruncate(tnumAdd(P, Q), 5));
      EXPECT_EQ(rippleSub(P, Q, 5), tnumTruncate(tnumSub(P, Q), 5));
    }
  }
  Xoshiro256 Rng(0x1CE);
  for (int I = 0; I != 20000; ++I) {
    Tnum P = randomWellFormedTnum(Rng, 64);
    Tnum Q = randomWellFormedTnum(Rng, 64);
    EXPECT_EQ(rippleAdd(P, Q, 64), tnumAdd(P, Q));
    EXPECT_EQ(rippleSub(P, Q, 64), tnumSub(P, Q));
  }
}

TEST(RippleAdd, NarrowWidthLeavesHighBitsZero) {
  Tnum P = *Tnum::parse("uu");
  Tnum R = rippleAdd(P, P, 3);
  EXPECT_TRUE(R.fitsWidth(3));
}

//===----------------------------------------------------------------------===//
// JMP32: domain-level refinement
//===----------------------------------------------------------------------===//

TEST(Jmp32Refine, RefinesLowHalfOnly) {
  // A fully unknown 64-bit value compared as w < 8: the low subregister
  // bounds shrink, the high half stays unknown.
  RegValue L = RegValue::makeTop(64);
  RegValue K = RegValue::makeConstant(8, 64);
  refineByComparison32(CompareOp::Lt, /*Taken=*/true, L, K);
  ASSERT_FALSE(L.isBottom());
  // Low 29 bits above bit 2 are known zero; high 32 bits unknown.
  EXPECT_EQ(L.tnum().tritAt(3), Trit::Zero);
  EXPECT_EQ(L.tnum().tritAt(31), Trit::Zero);
  EXPECT_EQ(L.tnum().tritAt(32), Trit::Unknown);
  // Values like 2^32 + 3 (low half 3 < 8) must survive.
  EXPECT_TRUE(L.contains((uint64_t(1) << 32) + 3));
  EXPECT_FALSE(L.contains(9));
}

TEST(Jmp32Refine, BoundsTransferWhenValueFits32Bits) {
  RegValue L = RegValue::fromUnsignedRange(0, 100, 64);
  RegValue K = RegValue::makeConstant(8, 64);
  refineByComparison32(CompareOp::Lt, /*Taken=*/true, L, K);
  EXPECT_EQ(L.unsignedBounds().max(), 7u);
}

TEST(Jmp32Refine, InfeasibleBranchGoesBottom) {
  RegValue L = RegValue::makeConstant(5, 64);
  RegValue K = RegValue::makeConstant(5, 64);
  refineByComparison32(CompareOp::Ne, /*Taken=*/true, L, K);
  EXPECT_TRUE(L.isBottom());
}

class Jmp32Soundness : public ::testing::TestWithParam<CompareOp> {};

TEST_P(Jmp32Soundness, KeepsSatisfyingPairs) {
  CompareOp Op = GetParam();
  Xoshiro256 Rng(0x32C + static_cast<uint64_t>(Op));
  for (int I = 0; I != 1500; ++I) {
    Tnum TL = randomWellFormedTnum(Rng, 64);
    Tnum TR = randomWellFormedTnum(Rng, 64);
    for (bool Taken : {false, true}) {
      RegValue L = RegValue::fromTnum(TL, 64);
      RegValue R = RegValue::fromTnum(TR, 64);
      refineByComparison32(Op, Taken, L, R);
      for (int S = 0; S != 6; ++S) {
        uint64_t X = TL.value() | (Rng.next() & TL.mask());
        uint64_t Y = TR.value() | (Rng.next() & TR.mask());
        if (applyConcreteCompare(Op, X, Y, 32) != Taken)
          continue;
        EXPECT_TRUE(L.contains(X) && R.contains(Y))
            << compareOpName(Op) << " taken=" << Taken << " x=" << X
            << " y=" << Y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompares, Jmp32Soundness,
    ::testing::Values(CompareOp::Eq, CompareOp::Ne, CompareOp::Lt,
                      CompareOp::Le, CompareOp::Gt, CompareOp::Ge,
                      CompareOp::SLt, CompareOp::SLe, CompareOp::SGt,
                      CompareOp::SGe, CompareOp::Set),
    [](const ::testing::TestParamInfo<CompareOp> &Info) {
      return std::string(compareOpName(Info.param));
    });

//===----------------------------------------------------------------------===//
// JMP32: interpreter + verifier
//===----------------------------------------------------------------------===//

TEST(Jmp32Interp, ComparesLowHalves) {
  // r3 = 2^32 + 3. As a 64-bit compare r3 > 8; as a 32-bit compare w3 < 8.
  Program P = ProgramBuilder()
                  .loadImm(R3, (int64_t(1) << 32) + 3)
                  .movImm(R0, 0)
                  .jmp32Imm(CompareOp::Lt, R3, 8, "low_small")
                  .exit()
                  .label("low_small")
                  .movImm(R0, 1)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 1u);
}

TEST(Jmp32Interp, SignedUsesBit31) {
  // 0x80000000 is negative as s32 but positive as s64.
  Program P = ProgramBuilder()
                  .loadImm(R3, 0x8000'0000)
                  .movImm(R0, 0)
                  .jmp32Imm(CompareOp::SLt, R3, 0, "neg32")
                  .exit()
                  .label("neg32")
                  .movImm(R0, 1)
                  .exit()
                  .build();
  std::vector<uint8_t> Mem(16, 0);
  ExecResult R = Interpreter(P, Mem).run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue, 1u);
}

TEST(Jmp32Verifier, GuardProvesBoundAfterZeroExtension) {
  // The JMP32 guard bounds only the low half, so it suffices once the
  // value is known to fit 32 bits (via w-mov zero extension).
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 8)
                  .mov32(R3, R3) // now r3 == w3
                  .jmp32Imm(CompareOp::Gt, R3, 8, "reject")
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .label("reject")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  VerifierReport R = verifyProgram(P, 16);
  EXPECT_TRUE(R.Accepted) << R.toString(P);
}

TEST(Jmp32Verifier, GuardAloneDoesNotBoundHighHalf) {
  // Without the zero extension the high half may be anything, so the
  // access must be rejected: soundness of the subregister refinement.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 8)
                  .jmp32Imm(CompareOp::Gt, R3, 8, "reject")
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .label("reject")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_FALSE(verifyProgram(P, 16).Accepted);
}

TEST(Jmp32Verifier, DifferentialFuzzing) {
  // Random programs mixing 64- and 32-bit guards before an access; the
  // verifier's verdicts must be concretely safe.
  Xoshiro256 Rng(0x32F);
  unsigned Accepted = 0;
  for (unsigned Iter = 0; Iter != 150; ++Iter) {
    bool ZeroExtend = Rng.nextChance(1, 2);
    bool Use32Guard = Rng.nextChance(1, 2);
    uint64_t Guard = Rng.nextBelow(16);
    ProgramBuilder B;
    B.load(R3, R1, 0, 8);
    if (ZeroExtend)
      B.mov32(R3, R3);
    if (Use32Guard)
      B.jmp32Imm(CompareOp::Gt, R3, static_cast<int64_t>(Guard), "reject");
    else
      B.jmpImm(CompareOp::Gt, R3, static_cast<int64_t>(Guard), "reject");
    B.alu(AluOp::Add, R3, R1);
    B.load(R0, R3, 0, 8);
    B.exit();
    B.label("reject");
    B.movImm(R0, 0);
    B.exit();
    Program P = B.build();

    VerifierReport Report = verifyProgram(P, 32);
    bool ShouldAccept = (!Use32Guard || ZeroExtend) && Guard + 8 <= 32;
    EXPECT_EQ(Report.Accepted, ShouldAccept)
        << "zext=" << ZeroExtend << " guard32=" << Use32Guard
        << " guard=" << Guard << "\n"
        << Report.toString(P);
    if (!Report.Accepted)
      continue;
    ++Accepted;
    for (unsigned Run = 0; Run != 10; ++Run) {
      std::vector<uint8_t> Mem(32);
      for (uint8_t &Byte : Mem)
        Byte = static_cast<uint8_t>(Rng.next());
      EXPECT_TRUE(Interpreter(P, Mem).run().ok());
    }
  }
  EXPECT_GT(Accepted, 0u);
}

} // namespace
