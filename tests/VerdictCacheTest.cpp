//===- tests/VerdictCacheTest.cpp - Persistent verdict cache tests --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict cache's contract (service/VerdictCache.h): a stored
/// verdict is served back bit-identically across cache reopens (the
/// daemon-restart warm start) with zero re-analysis, counter-asserted; a
/// version-fingerprint bump invalidates EXACTLY the stale entries --
/// current-fingerprint entries keep hitting; and a truncated, bit-flipped,
/// or otherwise torn entry file is refused (miss + PoisonedRejected + GC),
/// never misread as a verdict. Key collisions degrade to misses via the
/// embedded canonical-request witness. Occupancy caps (VerdictCacheLimits)
/// evict least-recently-used entries on over-cap inserts and sweep a
/// pre-existing over-cap store at open() oldest-mtime-first, while the
/// retained entries keep warm-hitting byte-identically.
///
//===----------------------------------------------------------------------===//

#include "service/ProgramGen.h"
#include "service/VerdictCache.h"
#include "service/VerificationService.h"
#include "service/WireProtocol.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace tnums;
using namespace tnums::service;

namespace {

constexpr uint64_t MemSize = 32;

std::string makeCacheDir() {
  std::string Template = testing::TempDir() + "verdictsXXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  const char *Dir = mkdtemp(Buf.data());
  EXPECT_NE(Dir, nullptr);
  return std::string(Dir) + "/cache";
}

/// Generated requests, deduplicated by canonical encoding: the exact
/// counter asserts below need each request to own its cache key (the
/// generator legitimately repeats small programs now and then).
std::vector<VerifyRequest> makeRequests(uint64_t Seed, uint64_t Count) {
  GenOptions Opts;
  Opts.Profile = GenProfile::Mixed;
  Opts.MemSize = MemSize;
  ProgramGen Gen(Seed, Opts);
  std::vector<VerifyRequest> Requests;
  std::set<std::string> Seen;
  while (Requests.size() != Count) {
    VerifyRequest Request;
    Request.Prog = Gen.next();
    Request.MemSize = MemSize;
    if (Seen.insert(encodeRequestCanonical(Request)).second)
      Requests.push_back(std::move(Request));
  }
  return Requests;
}

std::string entryFile(const VerdictCache &Cache, const VerifyRequest &Request) {
  char Name[64];
  std::snprintf(Name, sizeof(Name), "/verdict-%016llx.vkt",
                static_cast<unsigned long long>(verdictCacheKey(Request)));
  return Cache.path() + Name;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

std::string slurp(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(File, nullptr) << Path;
  std::string Out;
  char Buf[4096];
  size_t N;
  while (File && (N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Out.append(Buf, N);
  if (File)
    std::fclose(File);
  return Out;
}

void spew(const std::string &Path, const std::string &Contents) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(File, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Contents.data(), 1, Contents.size(), File),
            Contents.size());
  std::fclose(File);
}

bool sameVerdict(const VerifyResult &A, const VerifyResult &B) {
  if (A.Done != B.Done || A.Accepted != B.Accepted ||
      A.StructuralError != B.StructuralError ||
      A.InsnVisits != B.InsnVisits || A.Violations.size() != B.Violations.size())
    return false;
  for (size_t I = 0; I != A.Violations.size(); ++I)
    if (A.Violations[I].Pc != B.Violations[I].Pc ||
        A.Violations[I].Message != B.Violations[I].Message)
      return false;
  return true;
}

TEST(VerdictCache, ColdMissStoreThenMemoryHit) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::unique_ptr<VerdictCache> Cache = VerdictCache::open(Dir, Error);
  ASSERT_TRUE(Cache) << Error;

  VerifyRequest Request = makeRequests(3, 1).front();
  EXPECT_FALSE(Cache->lookup(Request));

  VerificationService Service;
  VerifyResult Result = Service.verifyOne(Request);
  ASSERT_TRUE(Cache->store(Request, Result, Error)) << Error;
  EXPECT_TRUE(fileExists(entryFile(*Cache, Request)));

  std::optional<VerifyResult> Hit = Cache->lookup(Request);
  ASSERT_TRUE(Hit);
  EXPECT_TRUE(sameVerdict(*Hit, Result));

  VerdictCacheStats Stats = Cache->stats();
  EXPECT_EQ(Stats.Lookups, 2u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.MemoryHits, 1u);
  EXPECT_EQ(Stats.DiskHits, 0u);
  EXPECT_EQ(Stats.Stores, 1u);
}

TEST(VerdictCache, WarmReopenServesEverythingZeroReanalysis) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::vector<VerifyRequest> Requests = makeRequests(17, 60);
  VerificationService Service;
  std::vector<VerifyResult> Results;
  {
    std::unique_ptr<VerdictCache> Cache = VerdictCache::open(Dir, Error);
    ASSERT_TRUE(Cache) << Error;
    for (const VerifyRequest &Request : Requests) {
      Results.push_back(Service.verifyOne(Request));
      ASSERT_TRUE(Cache->store(Request, Results.back(), Error)) << Error;
    }
  }

  // "Restart": a fresh cache instance over the same directory. Every
  // lookup must be a disk hit -- Misses stays 0, which is the
  // counter-asserted "zero re-analysis" guarantee a warm daemon start
  // relies on.
  std::unique_ptr<VerdictCache> Warm = VerdictCache::open(Dir, Error);
  ASSERT_TRUE(Warm) << Error;
  for (size_t I = 0; I != Requests.size(); ++I) {
    std::optional<VerifyResult> Hit = Warm->lookup(Requests[I]);
    ASSERT_TRUE(Hit) << "cold lookup " << I << " after reopen";
    EXPECT_TRUE(sameVerdict(*Hit, Results[I])) << "verdict " << I;
  }
  VerdictCacheStats Stats = Warm->stats();
  EXPECT_EQ(Stats.Misses, 0u);
  EXPECT_EQ(Stats.DiskHits, Requests.size());

  // Second pass is served from memory.
  for (const VerifyRequest &Request : Requests)
    EXPECT_TRUE(Warm->lookup(Request));
  EXPECT_EQ(Warm->stats().MemoryHits, Requests.size());
}

TEST(VerdictCache, VersionBumpInvalidatesExactlyTheStaleEntries) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::vector<VerifyRequest> Requests = makeRequests(23, 20);
  VerificationService Service;

  constexpr uint64_t OldVersion = 0x1111111111111111ull;
  constexpr uint64_t NewVersion = 0x2222222222222222ull;

  // First 10 entries written under the old fingerprint...
  {
    std::unique_ptr<VerdictCache> Cache =
        VerdictCache::open(Dir, OldVersion, Error);
    ASSERT_TRUE(Cache) << Error;
    for (size_t I = 0; I != 10; ++I)
      ASSERT_TRUE(
          Cache->store(Requests[I], Service.verifyOne(Requests[I]), Error));
  }
  // ...the rest under the new one.
  {
    std::unique_ptr<VerdictCache> Cache =
        VerdictCache::open(Dir, NewVersion, Error);
    ASSERT_TRUE(Cache) << Error;
    for (size_t I = 10; I != Requests.size(); ++I)
      ASSERT_TRUE(
          Cache->store(Requests[I], Service.verifyOne(Requests[I]), Error));
  }

  std::unique_ptr<VerdictCache> Cache =
      VerdictCache::open(Dir, NewVersion, Error);
  ASSERT_TRUE(Cache) << Error;

  // Stale entries: miss, counted, GC'd from disk.
  for (size_t I = 0; I != 10; ++I) {
    EXPECT_FALSE(Cache->lookup(Requests[I])) << "stale entry " << I;
    EXPECT_FALSE(fileExists(entryFile(*Cache, Requests[I])))
        << "stale entry " << I << " not GC'd";
  }
  // Current entries: untouched, still hitting. Invalidation was exact.
  for (size_t I = 10; I != Requests.size(); ++I) {
    EXPECT_TRUE(Cache->lookup(Requests[I])) << "current entry " << I;
    EXPECT_TRUE(fileExists(entryFile(*Cache, Requests[I])));
  }
  VerdictCacheStats Stats = Cache->stats();
  EXPECT_EQ(Stats.StaleInvalidated, 10u);
  EXPECT_EQ(Stats.DiskHits, 10u);
  EXPECT_EQ(Stats.PoisonedRejected, 0u);

  // The stale entries are gone for good: plain misses now.
  for (size_t I = 0; I != 10; ++I)
    EXPECT_FALSE(Cache->lookup(Requests[I]));
  EXPECT_EQ(Cache->stats().StaleInvalidated, 10u);
}

TEST(VerdictCache, TornAndPoisonedEntriesRefusedNeverMisread) {
  std::string Error;
  std::vector<VerifyRequest> Requests = makeRequests(31, 6);
  VerificationService Service;

  // Each corruption gets a fresh directory so counters are isolated.
  enum class Damage { TruncateHalf, TruncateOneByte, GarbageMagic, FlipHeader };
  for (Damage Kind : {Damage::TruncateHalf, Damage::TruncateOneByte,
                      Damage::GarbageMagic, Damage::FlipHeader}) {
    std::string Dir = makeCacheDir();
    std::string Path;
    {
      std::unique_ptr<VerdictCache> Cache = VerdictCache::open(Dir, Error);
      ASSERT_TRUE(Cache) << Error;
      ASSERT_TRUE(Cache->store(Requests[0],
                               Service.verifyOne(Requests[0]), Error));
      Path = entryFile(*Cache, Requests[0]);
    }
    std::string Contents = slurp(Path);
    ASSERT_GT(Contents.size(), 8u);
    switch (Kind) {
    case Damage::TruncateHalf: // A torn write that lost its tail.
      spew(Path, Contents.substr(0, Contents.size() / 2));
      break;
    case Damage::TruncateOneByte:
      spew(Path, Contents.substr(0, Contents.size() - 1));
      break;
    case Damage::GarbageMagic:
      spew(Path, "not a verdict entry\n" + Contents);
      break;
    case Damage::FlipHeader: // Bit flip inside the versionfp hex line.
      Contents[Contents.find("versionfp ") + 10] ^= 0x01;
      spew(Path, Contents);
      break;
    }

    std::unique_ptr<VerdictCache> Reopened = VerdictCache::open(Dir, Error);
    ASSERT_TRUE(Reopened) << Error;
    std::optional<VerifyResult> Hit = Reopened->lookup(Requests[0]);
    VerdictCacheStats Stats = Reopened->stats();
    if (Kind == Damage::FlipHeader) {
      // A clean hex line with the wrong value parses as a stale entry --
      // still refused, just attributed to versioning.
      EXPECT_FALSE(Hit);
      EXPECT_EQ(Stats.StaleInvalidated + Stats.PoisonedRejected, 1u);
    } else {
      EXPECT_FALSE(Hit);
      EXPECT_EQ(Stats.PoisonedRejected, 1u) << "damage kind "
                                            << static_cast<int>(Kind);
    }
    // Refused entries are GC'd; the next lookup is a plain miss.
    EXPECT_FALSE(fileExists(Path));
    EXPECT_FALSE(Reopened->lookup(Requests[0]));
    EXPECT_EQ(Reopened->stats().PoisonedRejected, Stats.PoisonedRejected);
  }
}

TEST(VerdictCache, WrongKeyEntryRefusedAsPoison) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::vector<VerifyRequest> Requests = makeRequests(37, 2);
  VerificationService Service;
  std::unique_ptr<VerdictCache> Cache = VerdictCache::open(Dir, Error);
  ASSERT_TRUE(Cache) << Error;
  ASSERT_TRUE(Cache->store(Requests[0], Service.verifyOne(Requests[0]), Error));

  // Copy request 0's entry over request 1's slot: the embedded key no
  // longer matches the filename-derived key, so the entry is refused --
  // a collision or rename can never serve the wrong verdict.
  std::string Stolen = slurp(entryFile(*Cache, Requests[0]));
  spew(entryFile(*Cache, Requests[1]), Stolen);

  std::unique_ptr<VerdictCache> Reopened = VerdictCache::open(Dir, Error);
  ASSERT_TRUE(Reopened) << Error;
  EXPECT_FALSE(Reopened->lookup(Requests[1]));
  EXPECT_EQ(Reopened->stats().PoisonedRejected, 1u);
}

TEST(VerdictCache, RefusesForeignManifest) {
  std::string Dir = makeCacheDir();
  std::string Error;
  ASSERT_EQ(::mkdir(Dir.c_str(), 0755), 0);
  spew(Dir + "/verdicts.manifest", "some other tool's file\n");
  EXPECT_FALSE(VerdictCache::open(Dir, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(VerdictCache, StatesAreNeverPersisted) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::unique_ptr<VerdictCache> Cache = VerdictCache::open(Dir, Error);
  ASSERT_TRUE(Cache) << Error;

  VerifyRequest Request = makeRequests(41, 1).front();
  ServiceConfig Config;
  Config.KeepStates = true;
  VerifyResult Result = VerificationService(Config).verifyOne(Request);
  ASSERT_TRUE(Cache->store(Request, Result, Error)) << Error;

  std::unique_ptr<VerdictCache> Reopened = VerdictCache::open(Dir, Error);
  ASSERT_TRUE(Reopened) << Error;
  std::optional<VerifyResult> Hit = Reopened->lookup(Request);
  ASSERT_TRUE(Hit);
  EXPECT_TRUE(Hit->InStates.empty());
  // The wire-verdict fields still match exactly.
  VerifyResult Slim = Result;
  Slim.InStates.clear();
  EXPECT_TRUE(sameVerdict(*Hit, Slim));
}

TEST(VerdictCache, EntryCapEvictsLeastRecentlyUsedOnInsert) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::vector<VerifyRequest> Requests = makeRequests(43, 4);
  VerificationService Service;

  VerdictCacheLimits Limits;
  Limits.MaxEntries = 3;
  std::unique_ptr<VerdictCache> Cache =
      VerdictCache::open(Dir, analyzerVerdictFingerprint(), Limits, Error);
  ASSERT_TRUE(Cache) << Error;

  std::vector<VerifyResult> Results;
  for (size_t I = 0; I != 3; ++I) {
    Results.push_back(Service.verifyOne(Requests[I]));
    ASSERT_TRUE(Cache->store(Requests[I], Results.back(), Error)) << Error;
  }
  EXPECT_EQ(Cache->stats().Evictions, 0u); // At the cap, not over it.

  // A hit is a use: request 0 is now the MOST recently used, so the
  // over-cap insert below must evict request 1, not 0.
  ASSERT_TRUE(Cache->lookup(Requests[0]));
  Results.push_back(Service.verifyOne(Requests[3]));
  ASSERT_TRUE(Cache->store(Requests[3], Results.back(), Error)) << Error;

  EXPECT_EQ(Cache->stats().Evictions, 1u);
  EXPECT_FALSE(fileExists(entryFile(*Cache, Requests[1])));
  EXPECT_FALSE(Cache->lookup(Requests[1])); // Evicted means gone.
  // The survivors keep serving byte-identical verdicts.
  for (size_t I : {size_t(0), size_t(2), size_t(3)}) {
    std::optional<VerifyResult> Hit = Cache->lookup(Requests[I]);
    ASSERT_TRUE(Hit) << "survivor " << I;
    EXPECT_TRUE(sameVerdict(*Hit, Results[I == 3 ? 3 : I]));
    EXPECT_TRUE(fileExists(entryFile(*Cache, Requests[I])));
  }
  // An evicted request can simply be re-stored (evicting the next LRU).
  ASSERT_TRUE(Cache->store(Requests[1], Service.verifyOne(Requests[1]), Error));
  EXPECT_EQ(Cache->stats().Evictions, 2u);
  EXPECT_TRUE(Cache->lookup(Requests[1]));
}

TEST(VerdictCache, OpenSweepsOverCapStoreOldestMtimeFirst) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::vector<VerifyRequest> Requests = makeRequests(47, 5);
  VerificationService Service;
  std::vector<VerifyResult> Results;
  std::vector<std::string> Files;
  {
    // Fill uncapped -- the ops story: caps are introduced (or lowered)
    // on a store a previous daemon grew without them.
    std::unique_ptr<VerdictCache> Cache = VerdictCache::open(Dir, Error);
    ASSERT_TRUE(Cache) << Error;
    for (const VerifyRequest &Request : Requests) {
      Results.push_back(Service.verifyOne(Request));
      ASSERT_TRUE(Cache->store(Request, Results.back(), Error)) << Error;
      Files.push_back(entryFile(*Cache, Request));
    }
  }
  // Pin distinct, increasing mtimes so "oldest first" is unambiguous
  // regardless of filesystem timestamp granularity.
  namespace fs = std::filesystem;
  fs::file_time_type Base = fs::last_write_time(Files[0]);
  for (size_t I = 0; I != Files.size(); ++I)
    fs::last_write_time(Files[I], Base + std::chrono::seconds(I + 1));
  std::string Retained = slurp(Files[4]);

  VerdictCacheLimits Limits;
  Limits.MaxEntries = 2;
  std::unique_ptr<VerdictCache> Capped =
      VerdictCache::open(Dir, analyzerVerdictFingerprint(), Limits, Error);
  ASSERT_TRUE(Capped) << Error;

  // The sweep evicted exactly the three oldest, before any lookup ran.
  EXPECT_EQ(Capped->stats().Evictions, 3u);
  for (size_t I = 0; I != 3; ++I) {
    EXPECT_FALSE(fileExists(Files[I])) << "old entry " << I << " kept";
    EXPECT_FALSE(Capped->lookup(Requests[I]));
  }
  // Retained entries are untouched on disk and warm-hit byte-identical.
  EXPECT_EQ(slurp(Files[4]), Retained);
  for (size_t I = 3; I != 5; ++I) {
    std::optional<VerifyResult> Hit = Capped->lookup(Requests[I]);
    ASSERT_TRUE(Hit) << "retained entry " << I;
    EXPECT_TRUE(sameVerdict(*Hit, Results[I]));
  }
  EXPECT_EQ(Capped->stats().DiskHits, 2u);
}

TEST(VerdictCache, ByteCapBoundsTheDiskFootprint) {
  std::string Dir = makeCacheDir();
  std::string Error;
  std::vector<VerifyRequest> Requests = makeRequests(53, 4);
  VerificationService Service;
  std::vector<uint64_t> Sizes;
  std::vector<std::string> Files;
  {
    std::unique_ptr<VerdictCache> Cache = VerdictCache::open(Dir, Error);
    ASSERT_TRUE(Cache) << Error;
    for (const VerifyRequest &Request : Requests) {
      ASSERT_TRUE(Cache->store(Request, Service.verifyOne(Request), Error));
      Files.push_back(entryFile(*Cache, Request));
      Sizes.push_back(std::filesystem::file_size(Files.back()));
    }
  }
  namespace fs = std::filesystem;
  fs::file_time_type Base = fs::last_write_time(Files[0]);
  for (size_t I = 0; I != Files.size(); ++I)
    fs::last_write_time(Files[I], Base + std::chrono::seconds(I + 1));

  // A byte budget that fits exactly the two newest entries: the sweep
  // must evict the two oldest and then stop -- it never over-evicts.
  VerdictCacheLimits Limits;
  Limits.MaxBytes = Sizes[2] + Sizes[3];
  std::unique_ptr<VerdictCache> Capped =
      VerdictCache::open(Dir, analyzerVerdictFingerprint(), Limits, Error);
  ASSERT_TRUE(Capped) << Error;
  EXPECT_EQ(Capped->stats().Evictions, 2u);
  EXPECT_FALSE(fileExists(Files[0]));
  EXPECT_FALSE(fileExists(Files[1]));
  EXPECT_TRUE(fileExists(Files[2]));
  EXPECT_TRUE(fileExists(Files[3]));

  // Inserts keep respecting the byte cap: storing request 0 again evicts
  // from the front until the new entry fits.
  ASSERT_TRUE(Capped->store(Requests[0], Service.verifyOne(Requests[0]), Error));
  uint64_t OnDisk = 0;
  for (const std::string &File : Files)
    if (fileExists(File))
      OnDisk += fs::file_size(File);
  EXPECT_LE(OnDisk, Limits.MaxBytes);
  EXPECT_GE(Capped->stats().Evictions, 3u);
  EXPECT_TRUE(Capped->lookup(Requests[0]));
}

} // namespace
