//===- tests/OracleTest.cpp - Concrete semantics oracle tests -------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification substrate is only as trustworthy as its concrete
/// oracle, so this suite pins applyConcreteBinary / applyConcreteCompare
/// against independently written reference semantics (mirroring the
/// paper's spot-checks of its SMT encodings against the kernel C code).
///
//===----------------------------------------------------------------------===//

#include "verify/Oracle.h"

#include "support/Random.h"
#include "domain/RegValue.h"

#include <gtest/gtest.h>

using namespace tnums;

namespace {

TEST(ConcreteOracle, WidthWrapAround) {
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Add, 255, 1, 8), 0u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Sub, 0, 1, 8), 255u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Mul, 16, 16, 8), 0u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Add, ~uint64_t(0), 1, 64), 0u);
}

TEST(ConcreteOracle, TruncatesInputsFirst) {
  // 0x1FF at width 8 is 0xFF.
  EXPECT_EQ(applyConcreteBinary(BinaryOp::And, 0x1FF, 0xFF, 8), 0xFFu);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Div, 0x1FF, 0x10, 8), 0xFu);
}

TEST(ConcreteOracle, BpfDivModConventions) {
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Div, 7, 0, 8), 0u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Mod, 7, 0, 8), 7u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Div, 7, 2, 8), 3u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Mod, 7, 2, 8), 1u);
}

TEST(ConcreteOracle, ShiftMaskingPerWidth) {
  // Amount is masked to Width - 1.
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Lsh, 1, 9, 8), 2u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Lsh, 1, 8, 8), 1u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Rsh, 0x80, 7, 8), 1u);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Arsh, 0x80, 7, 8), 0xFFu);
  EXPECT_EQ(applyConcreteBinary(BinaryOp::Arsh, 0x40, 6, 8), 1u);
}

TEST(ConcreteOracle, MatchesNativeAtWidth64) {
  Xoshiro256 Rng(31337);
  for (int I = 0; I != 5000; ++I) {
    uint64_t X = Rng.next();
    uint64_t Y = Rng.next();
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Add, X, Y, 64), X + Y);
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Sub, X, Y, 64), X - Y);
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Mul, X, Y, 64), X * Y);
    EXPECT_EQ(applyConcreteBinary(BinaryOp::And, X, Y, 64), X & Y);
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Or, X, Y, 64), X | Y);
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Xor, X, Y, 64), X ^ Y);
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Lsh, X, Y, 64), X << (Y & 63));
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Rsh, X, Y, 64), X >> (Y & 63));
    EXPECT_EQ(applyConcreteBinary(BinaryOp::Arsh, X, Y, 64),
              static_cast<uint64_t>(static_cast<int64_t>(X) >> (Y & 63)));
  }
}

TEST(ConcreteOracle, ResultAlwaysFitsWidth) {
  Xoshiro256 Rng(4711);
  for (unsigned Width : {1u, 4u, 8u, 16u, 32u, 63u, 64u}) {
    for (int I = 0; I != 500; ++I) {
      uint64_t X = Rng.next();
      uint64_t Y = Rng.next();
      for (BinaryOp Op : AllBinaryOps) {
        if (isShiftOp(Op) && (Width & (Width - 1)) != 0)
          continue;
        EXPECT_TRUE(
            fitsWidth(applyConcreteBinary(Op, X, Y, Width), Width))
            << binaryOpName(Op) << " width " << Width;
      }
    }
  }
}

TEST(CompareOracle, SignedVsUnsignedDisagree) {
  // -1 vs 0 at width 8: 0xFF.
  EXPECT_TRUE(applyConcreteCompare(CompareOp::Gt, 0xFF, 0, 8));
  EXPECT_TRUE(applyConcreteCompare(CompareOp::SLt, 0xFF, 0, 8));
  EXPECT_FALSE(applyConcreteCompare(CompareOp::SGt, 0xFF, 0, 8));
  EXPECT_FALSE(applyConcreteCompare(CompareOp::Lt, 0xFF, 0, 8));
}

TEST(CompareOracle, NegationPairsPartitionEverything) {
  // For every pair, exactly one of {op, negation} holds.
  Xoshiro256 Rng(99);
  struct Dual {
    CompareOp A;
    CompareOp B;
  };
  for (Dual D : {Dual{CompareOp::Eq, CompareOp::Ne},
                 Dual{CompareOp::Lt, CompareOp::Ge},
                 Dual{CompareOp::Le, CompareOp::Gt},
                 Dual{CompareOp::SLt, CompareOp::SGe},
                 Dual{CompareOp::SLe, CompareOp::SGt}}) {
    for (int I = 0; I != 2000; ++I) {
      uint64_t X = Rng.next();
      uint64_t Y = Rng.next();
      EXPECT_NE(applyConcreteCompare(D.A, X, Y, 64),
                applyConcreteCompare(D.B, X, Y, 64));
    }
  }
}

TEST(CompareOracle, SetSemantics) {
  EXPECT_TRUE(applyConcreteCompare(CompareOp::Set, 0b1100, 0b0100, 8));
  EXPECT_FALSE(applyConcreteCompare(CompareOp::Set, 0b1100, 0b0011, 8));
  EXPECT_FALSE(applyConcreteCompare(CompareOp::Set, 0xFF, 0, 8));
}

TEST(CompareOracle, WidthTruncation) {
  // 0x100 at width 8 is 0.
  EXPECT_TRUE(applyConcreteCompare(CompareOp::Eq, 0x100, 0, 8));
  EXPECT_TRUE(applyConcreteCompare(CompareOp::Eq, 0x100, 0x200, 8));
}

TEST(Names, AreStableAndUnique) {
  std::set<std::string> Seen;
  for (BinaryOp Op : AllBinaryOps)
    EXPECT_TRUE(Seen.insert(binaryOpName(Op)).second);
  EXPECT_EQ(Seen.size(), 11u);
}

} // namespace
