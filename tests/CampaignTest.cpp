//===- tests/CampaignTest.cpp - Checkpointed campaign engine tests --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign engine's contract is that the merged report is
/// bit-identical to the serial checkers' -- counters AND witness -- no
/// matter how the shard manifest was split across invocations, killed at
/// shard boundaries, resumed, or scheduled. These tests drive exactly
/// those interleavings: multi-shard in-memory runs across scheduler
/// configs, kill-and-resume at several boundaries, --shards splits
/// executed out of order in separate invocations, a deliberately broken
/// operator flowing through checkpoint files, and the durable store's
/// fingerprint guards.
///
//===----------------------------------------------------------------------===//

#include "tnum/TnumEnum.h"
#include "verify/Campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include <stdlib.h>

using namespace tnums;

namespace {

/// Fresh unique checkpoint directory under the test temp root.
std::string makeCheckpointDir() {
  std::string Template = testing::TempDir() + "campaignXXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  const char *Dir = mkdtemp(Buf.data());
  EXPECT_NE(Dir, nullptr);
  return std::string(Dir) + "/ckpt"; // Let the store create the leaf dir.
}

/// Scheduler configs exercising the degenerate serial path, odd chunking,
/// and oversubscription (this mirrors ParallelSweepTest's kConfigs).
const SweepConfig kConfigs[] = {
    {/*NumThreads=*/1, /*ChunkPairs=*/1},
    {/*NumThreads=*/2, /*ChunkPairs=*/7},
    {/*NumThreads=*/8, /*ChunkPairs=*/64},
};

/// A mixed spec touching every property, with cells that hold and cells
/// that fail (mul optimality at width 4, kern_mul monotonicity at width
/// 5), so the serial-prefix normalization is exercised alongside the
/// full-scan sums.
CampaignSpec mixedSpec(bool EarlyExit) {
  CampaignSpec Spec;
  Spec.OptimalityEarlyExit = EarlyExit;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness});
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Optimality});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Optimality});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Kern, 5,
                        CampaignProperty::Monotonicity});
  return Spec;
}

void expectSameSoundness(const SoundnessReport &Want,
                         const SoundnessReport &Got) {
  EXPECT_EQ(Want.PairsChecked, Got.PairsChecked);
  EXPECT_EQ(Want.ConcreteChecked, Got.ConcreteChecked);
  ASSERT_EQ(Want.Failure.has_value(), Got.Failure.has_value());
  if (Want.Failure) {
    EXPECT_EQ(Want.Failure->P, Got.Failure->P);
    EXPECT_EQ(Want.Failure->Q, Got.Failure->Q);
    EXPECT_EQ(Want.Failure->X, Got.Failure->X);
    EXPECT_EQ(Want.Failure->Y, Got.Failure->Y);
    EXPECT_EQ(Want.Failure->Z, Got.Failure->Z);
    EXPECT_EQ(Want.Failure->R, Got.Failure->R);
  }
}

void expectSameOptimality(const OptimalityReport &Want,
                          const OptimalityReport &Got) {
  EXPECT_EQ(Want.PairsChecked, Got.PairsChecked);
  EXPECT_EQ(Want.OptimalPairs, Got.OptimalPairs);
  ASSERT_EQ(Want.Failure.has_value(), Got.Failure.has_value());
  if (Want.Failure) {
    EXPECT_EQ(Want.Failure->P, Got.Failure->P);
    EXPECT_EQ(Want.Failure->Q, Got.Failure->Q);
    EXPECT_EQ(Want.Failure->Actual, Got.Failure->Actual);
    EXPECT_EQ(Want.Failure->Optimal, Got.Failure->Optimal);
  }
}

void expectSameMonotonicity(const MonotonicityReport &Want,
                            const MonotonicityReport &Got) {
  EXPECT_EQ(Want.QuadruplesChecked, Got.QuadruplesChecked);
  ASSERT_EQ(Want.Failure.has_value(), Got.Failure.has_value());
  if (Want.Failure) {
    EXPECT_EQ(Want.Failure->P1, Got.Failure->P1);
    EXPECT_EQ(Want.Failure->Q1, Got.Failure->Q1);
    EXPECT_EQ(Want.Failure->P2, Got.Failure->P2);
    EXPECT_EQ(Want.Failure->Q2, Got.Failure->Q2);
    EXPECT_EQ(Want.Failure->R1, Got.Failure->R1);
    EXPECT_EQ(Want.Failure->R2, Got.Failure->R2);
  }
}

/// Asserts the merged campaign equals the SERIAL checkers bit for bit:
/// the strongest form of the determinism contract (the parallel engines'
/// own counters are only scheduling-independent when the property holds;
/// the campaign normalizes failures back to serial-prefix counts).
void expectMatchesSerialCheckers(const CampaignSpec &Spec,
                                 const CampaignResult &Campaign) {
  ASSERT_TRUE(Campaign.ok()) << Campaign.Error;
  ASSERT_TRUE(Campaign.Complete);
  ASSERT_EQ(Campaign.Cells.size(), Spec.Cells.size());
  for (size_t I = 0; I != Spec.Cells.size(); ++I) {
    const CampaignCell &Cell = Spec.Cells[I];
    const CampaignCellResult &Got = Campaign.Cells[I];
    SCOPED_TRACE(testing::Message()
                 << binaryOpName(Cell.Op) << "/"
                 << campaignPropertyName(Cell.Property) << "/w"
                 << Cell.Width);
    EXPECT_TRUE(Got.Complete);
    switch (Cell.Property) {
    case CampaignProperty::Soundness:
      expectSameSoundness(
          checkSoundnessExhaustive(Cell.Op, Cell.Width, Cell.Mul),
          Got.Soundness);
      break;
    case CampaignProperty::Optimality:
      expectSameOptimality(
          checkOptimalityExhaustive(Cell.Op, Cell.Width, Cell.Mul,
                                    /*StopAtFirst=*/Spec.OptimalityEarlyExit),
          Got.Optimality);
      break;
    case CampaignProperty::Monotonicity:
      expectSameMonotonicity(
          checkMonotonicityExhaustive(Cell.Op, Cell.Width, Cell.Mul),
          Got.Monotonicity);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Merged reports == serial checkers, across schedulers and shard sizes
//===----------------------------------------------------------------------===//

TEST(Campaign, MergedReportsMatchSerialCheckersAcrossConfigs) {
  for (bool EarlyExit : {true, false}) {
    CampaignSpec Spec = mixedSpec(EarlyExit);
    for (const SweepConfig &Config : kConfigs) {
      for (uint64_t ShardPairs : {uint64_t(100), uint64_t(1000),
                                  uint64_t(1) << 20}) {
        SCOPED_TRACE(testing::Message()
                     << "early-exit " << EarlyExit << " threads "
                     << Config.NumThreads << " shard-pairs " << ShardPairs);
        CampaignIO IO;
        IO.ShardPairs = ShardPairs;
        expectMatchesSerialCheckers(Spec, runCampaign(Spec, IO, Config));
      }
    }
  }
}

TEST(Campaign, EarlyExitSkipsShardsPastTheWitness) {
  CampaignSpec Spec;
  Spec.OptimalityEarlyExit = true;
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Optimality});
  CampaignIO IO;
  IO.ShardPairs = 200; // 6561 pairs -> 33 shards; the witness comes early.
  CampaignResult Campaign = runCampaign(Spec, IO, kConfigs[1]);
  ASSERT_TRUE(Campaign.ok()) << Campaign.Error;
  ASSERT_TRUE(Campaign.Complete);
  EXPECT_GT(Campaign.ShardsSkipped, 0u);
  EXPECT_LT(Campaign.ShardsRun, Campaign.ShardsTotal);
  expectSameOptimality(checkOptimalityExhaustive(BinaryOp::Mul, 4,
                                                 MulAlgorithm::Our,
                                                 /*StopAtFirst=*/true),
                       Campaign.Cells[0].Optimality);
}

//===----------------------------------------------------------------------===//
// Kill-and-resume at shard boundaries
//===----------------------------------------------------------------------===//

TEST(Campaign, KillAndResumeMergesBitIdentical) {
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/true);
  for (const SweepConfig &Config : kConfigs) {
    // Drop the run at several shard boundaries: after 1, 3, and 7 shards.
    for (uint64_t KillAfter : {uint64_t(1), uint64_t(3), uint64_t(7)}) {
      SCOPED_TRACE(testing::Message() << "threads " << Config.NumThreads
                                      << " kill-after " << KillAfter);
      std::string Dir = makeCheckpointDir();
      CampaignIO IO;
      IO.CheckpointDir = Dir;
      IO.ShardPairs = 997; // Prime, so shard edges never align with rows.
      IO.MaxShardsThisRun = KillAfter;
      CampaignResult Killed = runCampaign(Spec, IO, Config);
      ASSERT_TRUE(Killed.ok()) << Killed.Error;
      EXPECT_FALSE(Killed.Complete);
      EXPECT_EQ(Killed.ShardsRun, KillAfter);

      // Resume with a DIFFERENT scheduler (the checkpoint format is
      // scheduling-agnostic) and merge to completion.
      CampaignIO ResumeIO;
      ResumeIO.CheckpointDir = Dir;
      ResumeIO.ShardPairs = IO.ShardPairs;
      ResumeIO.Resume = true;
      CampaignResult Resumed =
          runCampaign(Spec, ResumeIO, kConfigs[KillAfter % 3]);
      ASSERT_TRUE(Resumed.ok()) << Resumed.Error;
      EXPECT_EQ(Resumed.ShardsResumed, KillAfter);
      expectMatchesSerialCheckers(Spec, Resumed);
    }
  }
}

//===----------------------------------------------------------------------===//
// Multi-invocation --shards split
//===----------------------------------------------------------------------===//

TEST(Campaign, ShardSplitAcrossInvocationsMergesBitIdentical) {
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/false);
  std::string Dir = makeCheckpointDir();
  // Four invocations executed OUT of order, each its own runCampaign call
  // (as if farmed to four machines); one of them is killed mid-slice and
  // resumed. Whichever invocation sees the last shard completes the merge.
  const unsigned Order[] = {2, 0, 3, 1};
  CampaignResult Last;
  for (unsigned Step = 0; Step != 4; ++Step) {
    CampaignIO IO;
    IO.CheckpointDir = Dir;
    IO.ShardPairs = 1500;
    IO.Shards = 4;
    IO.ShardIndex = Order[Step];
    if (Order[Step] == 3) {
      // Kill this invocation after one shard, then resume it.
      IO.MaxShardsThisRun = 1;
      CampaignResult Killed = runCampaign(Spec, IO, kConfigs[0]);
      ASSERT_TRUE(Killed.ok()) << Killed.Error;
      EXPECT_FALSE(Killed.Complete);
      IO.MaxShardsThisRun = 0;
      IO.Resume = true;
    }
    Last = runCampaign(Spec, IO, kConfigs[Step % 3]);
    ASSERT_TRUE(Last.ok()) << Last.Error;
    EXPECT_EQ(Last.Complete, Step == 3);
  }
  expectMatchesSerialCheckers(Spec, Last);
}

//===----------------------------------------------------------------------===//
// Broken operator through the full checkpoint machinery
//===----------------------------------------------------------------------===//

/// tnum_add, except one specific pair's result drops a member (the
/// ParallelSweepTest idiom): deliberately unsound, deterministic witness.
Tnum brokenAdd(const Tnum &P, const Tnum &Q, unsigned Width) {
  Tnum R = applyAbstractBinary(BinaryOp::Add, P, Q, Width);
  Tnum BadP(1, 2);  // 0b0?1 at width >= 2
  Tnum BadQ(0, 1);  // 0b00?
  if (P == BadP && Q == BadQ)
    return Tnum(R.value(), 0); // Forget the unknown bits: drops members.
  return R;
}

TEST(Campaign, BrokenOperatorWitnessSurvivesKillResumeAndSplit) {
  constexpr unsigned Width = 4;
  CampaignSpec Spec;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, Width,
                        CampaignProperty::Soundness});
  Spec.SoundnessOverride = [](const Tnum &P, const Tnum &Q) {
    return brokenAdd(P, Q, Width);
  };
  Spec.OverrideTag = "broken-add-v1";

  // Reference: the injectable engine with one thread IS the serial walk
  // (ascending chunks, stop at the violation), so its counters are the
  // serial-prefix counts the campaign must reproduce.
  SweepConfig Serial{/*NumThreads=*/1, /*ChunkPairs=*/1};
  SoundnessReport Want = checkSoundnessExhaustiveParallel(
      BinaryOp::Add, Spec.SoundnessOverride, Width, Serial);
  ASSERT_TRUE(Want.Failure.has_value());

  for (const SweepConfig &Config : kConfigs) {
    SCOPED_TRACE(testing::Message() << "threads " << Config.NumThreads);
    std::string Dir = makeCheckpointDir();
    CampaignIO IO;
    IO.CheckpointDir = Dir;
    IO.ShardPairs = 313;
    IO.MaxShardsThisRun = 2; // Kill after two shards...
    CampaignResult Killed = runCampaign(Spec, IO, Config);
    ASSERT_TRUE(Killed.ok()) << Killed.Error;
    IO.MaxShardsThisRun = 0; // ...and resume to completion.
    IO.Resume = true;
    CampaignResult Campaign = runCampaign(Spec, IO, Config);
    ASSERT_TRUE(Campaign.ok()) << Campaign.Error;
    ASSERT_TRUE(Campaign.Complete);
    expectSameSoundness(Want, Campaign.Cells[0].Soundness);
    // The failing shard is terminal: the cell needs no shards past it.
    EXPECT_FALSE(Campaign.Cells[0].holds());
  }
}

//===----------------------------------------------------------------------===//
// Durable store guards
//===----------------------------------------------------------------------===//

TEST(Campaign, RefusesCheckpointDirOfDifferentSpec) {
  std::string Dir = makeCheckpointDir();
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/true);
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[0]).ok());

  // Same directory, different spec (one more cell): must refuse.
  CampaignSpec Other = Spec;
  Other.Cells.push_back({BinaryOp::Xor, MulAlgorithm::Our, 4,
                         CampaignProperty::Soundness});
  CampaignResult Refused = runCampaign(Other, IO, kConfigs[0]);
  EXPECT_FALSE(Refused.ok());
  EXPECT_NE(Refused.Error.find("different campaign"), std::string::npos)
      << Refused.Error;

  // Different ShardPairs changes the manifest: also a different campaign.
  CampaignIO OtherIO = IO;
  OtherIO.ShardPairs = 500;
  EXPECT_FALSE(runCampaign(Spec, OtherIO, kConfigs[0]).ok());
}

TEST(Campaign, RefusesReusingOwnedShardsWithoutResume) {
  std::string Dir = makeCheckpointDir();
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/true);
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[0]).ok());
  CampaignResult Again = runCampaign(Spec, IO, kConfigs[0]);
  EXPECT_FALSE(Again.ok());
  EXPECT_NE(Again.Error.find("--resume"), std::string::npos) << Again.Error;
  IO.Resume = true;
  CampaignResult Resumed = runCampaign(Spec, IO, kConfigs[0]);
  ASSERT_TRUE(Resumed.ok()) << Resumed.Error;
  // Everything satisfied from disk: nothing re-run.
  EXPECT_EQ(Resumed.ShardsRun, 0u);
  expectMatchesSerialCheckers(Spec, Resumed);
}

TEST(Campaign, StoreRoundTripsShardsAndRejectsForeignFiles) {
  std::string Dir = makeCheckpointDir();
  std::string Error;
  std::optional<CheckpointStore> Store =
      CheckpointStore::open(Dir, /*Fingerprint=*/0xabcdef, /*NumShards=*/4,
                            Error);
  ASSERT_TRUE(Store.has_value()) << Error;
  ShardRecord Record;
  Record.Payload = "pairs 1\nconcrete 2\nseconds 0\n";
  Record.Terminal = true;
  ASSERT_TRUE(Store->storeShard(2, Record, Error)) << Error;
  EXPECT_TRUE(Store->hasShard(2));
  EXPECT_FALSE(Store->hasShard(1));
  std::optional<ShardRecord> Loaded = Store->loadShard(2, Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  EXPECT_EQ(Loaded->Payload, Record.Payload);
  EXPECT_TRUE(Loaded->Terminal);
  EXPECT_EQ(Store->completedShards(), std::vector<uint64_t>{2});

  // A store opened with a different fingerprint must refuse the dir.
  EXPECT_FALSE(
      CheckpointStore::open(Dir, /*Fingerprint=*/0x123, 4, Error).has_value());

  // Torn/corrupt shard files are load errors, not silent absences.
  std::string Bogus = Dir + "/shard-00000003.ckpt";
  std::FILE *File = std::fopen(Bogus.c_str(), "w");
  ASSERT_NE(File, nullptr);
  std::fputs("not a shard\n", File);
  std::fclose(File);
  EXPECT_FALSE(Store->loadShard(3, Error).has_value());
  EXPECT_FALSE(Error.empty());
}

} // namespace
