//===- tests/CampaignTest.cpp - Checkpointed campaign engine tests --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign engine's contract is that the merged report is
/// bit-identical to the serial checkers' -- counters AND witness -- no
/// matter how the shard manifest was split across invocations, killed at
/// shard boundaries, resumed, scheduled, or (since the v2 store)
/// incrementally re-verified after a transfer-function change. These
/// tests drive exactly those interleavings: multi-shard in-memory runs
/// across scheduler configs, kill-and-resume at several boundaries,
/// --shards splits executed out of order in separate invocations, a
/// deliberately broken operator flowing through checkpoint files, the
/// incremental op-fingerprint invalidation path (only changed cells
/// re-run; merged reports identical to from-scratch; kill mid-incremental
/// stays identical), the --diff-baseline report, and the durable store's
/// fingerprint / format-version guards and temp-file hygiene.
///
//===----------------------------------------------------------------------===//

#include "tnum/TnumEnum.h"
#include "verify/Campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iterator>
#include <string>

#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

using namespace tnums;

namespace {

/// Fresh unique checkpoint directory under the test temp root.
std::string makeCheckpointDir() {
  std::string Template = testing::TempDir() + "campaignXXXXXX";
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  const char *Dir = mkdtemp(Buf.data());
  EXPECT_NE(Dir, nullptr);
  return std::string(Dir) + "/ckpt"; // Let the store create the leaf dir.
}

/// Scheduler configs exercising the degenerate serial path, odd chunking,
/// and oversubscription (this mirrors ParallelSweepTest's kConfigs).
const SweepConfig kConfigs[] = {
    {/*NumThreads=*/1, /*ChunkPairs=*/1},
    {/*NumThreads=*/2, /*ChunkPairs=*/7},
    {/*NumThreads=*/8, /*ChunkPairs=*/64},
};

/// A mixed spec touching every property, with cells that hold and cells
/// that fail (mul optimality at width 4, kern_mul monotonicity at width
/// 5), so the serial-prefix normalization is exercised alongside the
/// full-scan sums.
CampaignSpec mixedSpec(bool EarlyExit) {
  CampaignSpec Spec;
  Spec.OptimalityEarlyExit = EarlyExit;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness});
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Optimality});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Optimality});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Kern, 5,
                        CampaignProperty::Monotonicity});
  return Spec;
}

void expectSameSoundness(const SoundnessReport &Want,
                         const SoundnessReport &Got) {
  EXPECT_EQ(Want.PairsChecked, Got.PairsChecked);
  EXPECT_EQ(Want.ConcreteChecked, Got.ConcreteChecked);
  ASSERT_EQ(Want.Failure.has_value(), Got.Failure.has_value());
  if (Want.Failure) {
    EXPECT_EQ(Want.Failure->P, Got.Failure->P);
    EXPECT_EQ(Want.Failure->Q, Got.Failure->Q);
    EXPECT_EQ(Want.Failure->X, Got.Failure->X);
    EXPECT_EQ(Want.Failure->Y, Got.Failure->Y);
    EXPECT_EQ(Want.Failure->Z, Got.Failure->Z);
    EXPECT_EQ(Want.Failure->R, Got.Failure->R);
  }
}

void expectSameOptimality(const OptimalityReport &Want,
                          const OptimalityReport &Got) {
  EXPECT_EQ(Want.PairsChecked, Got.PairsChecked);
  EXPECT_EQ(Want.OptimalPairs, Got.OptimalPairs);
  ASSERT_EQ(Want.Failure.has_value(), Got.Failure.has_value());
  if (Want.Failure) {
    EXPECT_EQ(Want.Failure->P, Got.Failure->P);
    EXPECT_EQ(Want.Failure->Q, Got.Failure->Q);
    EXPECT_EQ(Want.Failure->Actual, Got.Failure->Actual);
    EXPECT_EQ(Want.Failure->Optimal, Got.Failure->Optimal);
  }
}

void expectSameMonotonicity(const MonotonicityReport &Want,
                            const MonotonicityReport &Got) {
  EXPECT_EQ(Want.QuadruplesChecked, Got.QuadruplesChecked);
  ASSERT_EQ(Want.Failure.has_value(), Got.Failure.has_value());
  if (Want.Failure) {
    EXPECT_EQ(Want.Failure->P1, Got.Failure->P1);
    EXPECT_EQ(Want.Failure->Q1, Got.Failure->Q1);
    EXPECT_EQ(Want.Failure->P2, Got.Failure->P2);
    EXPECT_EQ(Want.Failure->Q2, Got.Failure->Q2);
    EXPECT_EQ(Want.Failure->R1, Got.Failure->R1);
    EXPECT_EQ(Want.Failure->R2, Got.Failure->R2);
  }
}

void expectSamePrecision(const PrecisionReport &Want,
                         const PrecisionReport &Got) {
  EXPECT_EQ(Want.PairsChecked, Got.PairsChecked);
  EXPECT_EQ(Want.SumGap, Got.SumGap);
  EXPECT_EQ(Want.MaxGap, Got.MaxGap);
  for (unsigned Bucket = 0; Bucket != PrecisionGapBuckets; ++Bucket)
    EXPECT_EQ(Want.Buckets[Bucket], Got.Buckets[Bucket]) << "bucket "
                                                         << Bucket;
  ASSERT_EQ(Want.Worst.has_value(), Got.Worst.has_value());
  if (Want.Worst) {
    EXPECT_EQ(Want.Worst->P, Got.Worst->P);
    EXPECT_EQ(Want.Worst->Q, Got.Worst->Q);
    EXPECT_EQ(Want.Worst->Actual, Got.Worst->Actual);
    EXPECT_EQ(Want.Worst->Optimal, Got.Worst->Optimal);
    EXPECT_EQ(Want.Worst->Gap, Got.Worst->Gap);
  }
}

/// Asserts the merged campaign equals the SERIAL checkers bit for bit:
/// the strongest form of the determinism contract (the parallel engines'
/// own counters are only scheduling-independent when the property holds;
/// the campaign normalizes failures back to serial-prefix counts).
void expectMatchesSerialCheckers(const CampaignSpec &Spec,
                                 const CampaignResult &Campaign) {
  ASSERT_TRUE(Campaign.ok()) << Campaign.Error;
  ASSERT_TRUE(Campaign.Complete);
  ASSERT_EQ(Campaign.Cells.size(), Spec.Cells.size());
  for (size_t I = 0; I != Spec.Cells.size(); ++I) {
    const CampaignCell &Cell = Spec.Cells[I];
    const CampaignCellResult &Got = Campaign.Cells[I];
    SCOPED_TRACE(testing::Message()
                 << binaryOpName(Cell.Op) << "/"
                 << campaignPropertyName(Cell.Property) << "/w"
                 << Cell.Width);
    EXPECT_TRUE(Got.Complete);
    switch (Cell.Property) {
    case CampaignProperty::Soundness:
      expectSameSoundness(
          checkSoundnessExhaustive(Cell.Op, Cell.Width, Cell.Mul),
          Got.Soundness);
      break;
    case CampaignProperty::Optimality:
      expectSameOptimality(
          checkOptimalityExhaustive(Cell.Op, Cell.Width, Cell.Mul,
                                    /*StopAtFirst=*/Spec.OptimalityEarlyExit),
          Got.Optimality);
      break;
    case CampaignProperty::Monotonicity:
      expectSameMonotonicity(
          checkMonotonicityExhaustive(Cell.Op, Cell.Width, Cell.Mul),
          Got.Monotonicity);
      break;
    case CampaignProperty::Precision:
      expectSamePrecision(
          measurePrecisionGap(Cell.Op, Cell.Width, Cell.Mul),
          Got.Precision);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Merged reports == serial checkers, across schedulers and shard sizes
//===----------------------------------------------------------------------===//

TEST(Campaign, MergedReportsMatchSerialCheckersAcrossConfigs) {
  for (bool EarlyExit : {true, false}) {
    CampaignSpec Spec = mixedSpec(EarlyExit);
    for (const SweepConfig &Config : kConfigs) {
      for (uint64_t ShardPairs : {uint64_t(100), uint64_t(1000),
                                  uint64_t(1) << 20}) {
        SCOPED_TRACE(testing::Message()
                     << "early-exit " << EarlyExit << " threads "
                     << Config.NumThreads << " shard-pairs " << ShardPairs);
        CampaignIO IO;
        IO.ShardPairs = ShardPairs;
        expectMatchesSerialCheckers(Spec, runCampaign(Spec, IO, Config));
      }
    }
  }
}

TEST(Campaign, EarlyExitSkipsShardsPastTheWitness) {
  CampaignSpec Spec;
  Spec.OptimalityEarlyExit = true;
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Optimality});
  CampaignIO IO;
  IO.ShardPairs = 200; // 6561 pairs -> 33 shards; the witness comes early.
  CampaignResult Campaign = runCampaign(Spec, IO, kConfigs[1]);
  ASSERT_TRUE(Campaign.ok()) << Campaign.Error;
  ASSERT_TRUE(Campaign.Complete);
  EXPECT_GT(Campaign.ShardsSkipped, 0u);
  EXPECT_LT(Campaign.ShardsRun, Campaign.ShardsTotal);
  expectSameOptimality(checkOptimalityExhaustive(BinaryOp::Mul, 4,
                                                 MulAlgorithm::Our,
                                                 /*StopAtFirst=*/true),
                       Campaign.Cells[0].Optimality);
}

//===----------------------------------------------------------------------===//
// Kill-and-resume at shard boundaries
//===----------------------------------------------------------------------===//

TEST(Campaign, KillAndResumeMergesBitIdentical) {
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/true);
  for (const SweepConfig &Config : kConfigs) {
    // Drop the run at several shard boundaries: after 1, 3, and 7 shards.
    for (uint64_t KillAfter : {uint64_t(1), uint64_t(3), uint64_t(7)}) {
      SCOPED_TRACE(testing::Message() << "threads " << Config.NumThreads
                                      << " kill-after " << KillAfter);
      std::string Dir = makeCheckpointDir();
      CampaignIO IO;
      IO.CheckpointDir = Dir;
      IO.ShardPairs = 997; // Prime, so shard edges never align with rows.
      IO.MaxShardsThisRun = KillAfter;
      CampaignResult Killed = runCampaign(Spec, IO, Config);
      ASSERT_TRUE(Killed.ok()) << Killed.Error;
      EXPECT_FALSE(Killed.Complete);
      EXPECT_EQ(Killed.ShardsRun, KillAfter);

      // Resume with a DIFFERENT scheduler (the checkpoint format is
      // scheduling-agnostic) and merge to completion.
      CampaignIO ResumeIO;
      ResumeIO.CheckpointDir = Dir;
      ResumeIO.ShardPairs = IO.ShardPairs;
      ResumeIO.Resume = true;
      CampaignResult Resumed =
          runCampaign(Spec, ResumeIO, kConfigs[KillAfter % 3]);
      ASSERT_TRUE(Resumed.ok()) << Resumed.Error;
      EXPECT_EQ(Resumed.ShardsResumed, KillAfter);
      expectMatchesSerialCheckers(Spec, Resumed);
    }
  }
}

/// Row counts from a checkpoint directory's telemetry.jsonl, by "event".
struct TelemetryRows {
  unsigned Shards = 0;
  unsigned Invocations = 0;
  unsigned Lines = 0;
};

TelemetryRows readTelemetry(const std::string &Dir) {
  TelemetryRows Rows;
  std::ifstream In(Dir + "/telemetry.jsonl");
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    ++Rows.Lines;
    EXPECT_EQ(Line.front(), '{') << Line;
    EXPECT_EQ(Line.back(), '}') << Line;
    if (Line.find("\"event\":\"shard\"") != std::string::npos) {
      ++Rows.Shards;
      EXPECT_NE(Line.find("\"wall_s\":"), std::string::npos) << Line;
      EXPECT_NE(Line.find("\"pairs_per_s\":"), std::string::npos) << Line;
    } else if (Line.find("\"event\":\"invocation\"") != std::string::npos) {
      ++Rows.Invocations;
    } else {
      ADD_FAILURE() << "unrecognized telemetry row: " << Line;
    }
  }
  return Rows;
}

TEST(Campaign, TelemetryAccumulatesAcrossKillAndResume) {
  // telemetry.jsonl sits beside the shard store and is append-only: the
  // killed run leaves its heartbeat rows behind and the resume ADDS its
  // own, ending with one shard row per shard EXECUTED (resumed shards
  // are loaded, not re-run, so they heartbeat only once ever) plus one
  // invocation summary per invocation. The file feeds no fingerprint --
  // KillAndResumeMergesBitIdentical above pins the reports regardless.
  CampaignSpec Spec;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness});
  std::string Dir = makeCheckpointDir();

  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997; // 81*81 = 6561 pairs -> 7 shards.
  IO.MaxShardsThisRun = 3;
  CampaignResult Killed = runCampaign(Spec, IO, kConfigs[1]);
  ASSERT_TRUE(Killed.ok()) << Killed.Error;
  EXPECT_FALSE(Killed.Complete);
  ASSERT_EQ(Killed.ShardsRun, 3u);

  TelemetryRows AfterKill = readTelemetry(Dir);
  EXPECT_EQ(AfterKill.Shards, 3u);
  EXPECT_EQ(AfterKill.Invocations, 1u);

  CampaignIO ResumeIO;
  ResumeIO.CheckpointDir = Dir;
  ResumeIO.ShardPairs = IO.ShardPairs;
  ResumeIO.Resume = true;
  CampaignResult Resumed = runCampaign(Spec, ResumeIO, kConfigs[0]);
  ASSERT_TRUE(Resumed.ok()) << Resumed.Error;
  EXPECT_TRUE(Resumed.Complete);
  EXPECT_EQ(Resumed.ShardsResumed, 3u);
  EXPECT_EQ(Resumed.ShardsRun, 4u);

  TelemetryRows AfterResume = readTelemetry(Dir);
  EXPECT_EQ(AfterResume.Shards, 7u);
  EXPECT_EQ(AfterResume.Invocations, 2u);
  EXPECT_GT(AfterResume.Lines, AfterKill.Lines)
      << "resume truncated the telemetry file instead of appending";
}

//===----------------------------------------------------------------------===//
// Multi-invocation --shards split
//===----------------------------------------------------------------------===//

TEST(Campaign, ShardSplitAcrossInvocationsMergesBitIdentical) {
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/false);
  std::string Dir = makeCheckpointDir();
  // Four invocations executed OUT of order, each its own runCampaign call
  // (as if farmed to four machines); one of them is killed mid-slice and
  // resumed. Whichever invocation sees the last shard completes the merge.
  const unsigned Order[] = {2, 0, 3, 1};
  CampaignResult Last;
  for (unsigned Step = 0; Step != 4; ++Step) {
    CampaignIO IO;
    IO.CheckpointDir = Dir;
    IO.ShardPairs = 1500;
    IO.Shards = 4;
    IO.ShardIndex = Order[Step];
    if (Order[Step] == 3) {
      // Kill this invocation after one shard, then resume it.
      IO.MaxShardsThisRun = 1;
      CampaignResult Killed = runCampaign(Spec, IO, kConfigs[0]);
      ASSERT_TRUE(Killed.ok()) << Killed.Error;
      EXPECT_FALSE(Killed.Complete);
      IO.MaxShardsThisRun = 0;
      IO.Resume = true;
    }
    Last = runCampaign(Spec, IO, kConfigs[Step % 3]);
    ASSERT_TRUE(Last.ok()) << Last.Error;
    EXPECT_EQ(Last.Complete, Step == 3);
  }
  expectMatchesSerialCheckers(Spec, Last);
}

//===----------------------------------------------------------------------===//
// Broken operator through the full checkpoint machinery
//===----------------------------------------------------------------------===//

/// tnum_add, except one specific pair's result drops a member (the
/// ParallelSweepTest idiom): deliberately unsound, deterministic witness.
Tnum brokenAdd(const Tnum &P, const Tnum &Q, unsigned Width) {
  Tnum R = applyAbstractBinary(BinaryOp::Add, P, Q, Width);
  Tnum BadP(1, 2);  // 0b0?1 at width >= 2
  Tnum BadQ(0, 1);  // 0b00?
  if (P == BadP && Q == BadQ)
    return Tnum(R.value(), 0); // Forget the unknown bits: drops members.
  return R;
}

TEST(Campaign, BrokenOperatorWitnessSurvivesKillResumeAndSplit) {
  constexpr unsigned Width = 4;
  CampaignSpec Spec;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, Width,
                        CampaignProperty::Soundness});
  Spec.OperatorOverride = [](const Tnum &P, const Tnum &Q, unsigned W) {
    return brokenAdd(P, Q, W);
  };
  Spec.OverrideTag = "broken-add-v1";

  // Reference: the injectable engine with one thread IS the serial walk
  // (ascending chunks, stop at the violation), so its counters are the
  // serial-prefix counts the campaign must reproduce.
  SweepConfig Serial{/*NumThreads=*/1, /*ChunkPairs=*/1};
  SoundnessReport Want = checkSoundnessExhaustiveParallel(
      BinaryOp::Add,
      [](const Tnum &P, const Tnum &Q) { return brokenAdd(P, Q, Width); },
      Width, Serial);
  ASSERT_TRUE(Want.Failure.has_value());

  for (const SweepConfig &Config : kConfigs) {
    SCOPED_TRACE(testing::Message() << "threads " << Config.NumThreads);
    std::string Dir = makeCheckpointDir();
    CampaignIO IO;
    IO.CheckpointDir = Dir;
    IO.ShardPairs = 313;
    IO.MaxShardsThisRun = 2; // Kill after two shards...
    CampaignResult Killed = runCampaign(Spec, IO, Config);
    ASSERT_TRUE(Killed.ok()) << Killed.Error;
    IO.MaxShardsThisRun = 0; // ...and resume to completion.
    IO.Resume = true;
    CampaignResult Campaign = runCampaign(Spec, IO, Config);
    ASSERT_TRUE(Campaign.ok()) << Campaign.Error;
    ASSERT_TRUE(Campaign.Complete);
    expectSameSoundness(Want, Campaign.Cells[0].Soundness);
    // The failing shard is terminal: the cell needs no shards past it.
    EXPECT_FALSE(Campaign.Cells[0].holds());
  }
}

//===----------------------------------------------------------------------===//
// Durable store guards
//===----------------------------------------------------------------------===//

TEST(Campaign, RefusesCheckpointDirOfDifferentSpec) {
  std::string Dir = makeCheckpointDir();
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/true);
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[0]).ok());

  // Same directory, different spec (one more cell): must refuse.
  CampaignSpec Other = Spec;
  Other.Cells.push_back({BinaryOp::Xor, MulAlgorithm::Our, 4,
                         CampaignProperty::Soundness});
  CampaignResult Refused = runCampaign(Other, IO, kConfigs[0]);
  EXPECT_FALSE(Refused.ok());
  EXPECT_NE(Refused.Error.find("different campaign"), std::string::npos)
      << Refused.Error;

  // Different ShardPairs changes the manifest: also a different campaign.
  CampaignIO OtherIO = IO;
  OtherIO.ShardPairs = 500;
  EXPECT_FALSE(runCampaign(Spec, OtherIO, kConfigs[0]).ok());
}

TEST(Campaign, RefusesReusingOwnedShardsWithoutResume) {
  std::string Dir = makeCheckpointDir();
  CampaignSpec Spec = mixedSpec(/*EarlyExit=*/true);
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[0]).ok());
  CampaignResult Again = runCampaign(Spec, IO, kConfigs[0]);
  EXPECT_FALSE(Again.ok());
  EXPECT_NE(Again.Error.find("--resume"), std::string::npos) << Again.Error;
  IO.Resume = true;
  CampaignResult Resumed = runCampaign(Spec, IO, kConfigs[0]);
  ASSERT_TRUE(Resumed.ok()) << Resumed.Error;
  // Everything satisfied from disk: nothing re-run.
  EXPECT_EQ(Resumed.ShardsRun, 0u);
  expectMatchesSerialCheckers(Spec, Resumed);
}

TEST(Campaign, StoreRoundTripsShardsAndRejectsForeignFiles) {
  std::string Dir = makeCheckpointDir();
  std::string Error;
  std::optional<CheckpointStore> Store =
      CheckpointStore::open(Dir, /*Fingerprint=*/0xabcdef, /*NumShards=*/4,
                            Error);
  ASSERT_TRUE(Store.has_value()) << Error;
  ShardRecord Record;
  Record.Payload = "pairs 1\nconcrete 2\nseconds 0\n";
  Record.Terminal = true;
  Record.Cell = 7;
  Record.CellFingerprint = 0xFEEDFACE12345678ull;
  ASSERT_TRUE(Store->storeShard(2, Record, Error)) << Error;
  EXPECT_TRUE(Store->hasShard(2));
  EXPECT_FALSE(Store->hasShard(1));
  std::optional<ShardRecord> Loaded = Store->loadShard(2, Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  EXPECT_EQ(Loaded->Payload, Record.Payload);
  EXPECT_TRUE(Loaded->Terminal);
  // The v2 per-cell header round-trips: the campaign layer's staleness
  // decision depends on it.
  EXPECT_EQ(Loaded->Cell, Record.Cell);
  EXPECT_EQ(Loaded->CellFingerprint, Record.CellFingerprint);
  EXPECT_EQ(Store->completedShards(), std::vector<uint64_t>{2});

  // removeShard is the invalidated-cell GC; removing twice is fine (a
  // concurrent GC may win the race).
  ASSERT_TRUE(Store->removeShard(2, Error)) << Error;
  EXPECT_FALSE(Store->hasShard(2));
  EXPECT_TRUE(Store->removeShard(2, Error)) << Error;
  ASSERT_TRUE(Store->storeShard(2, Record, Error)) << Error;

  // A store opened with a different fingerprint must refuse the dir.
  EXPECT_FALSE(
      CheckpointStore::open(Dir, /*Fingerprint=*/0x123, 4, Error).has_value());

  // Torn/corrupt shard files are load errors, not silent absences.
  std::string Bogus = Dir + "/shard-00000003.ckpt";
  std::FILE *File = std::fopen(Bogus.c_str(), "w");
  ASSERT_NE(File, nullptr);
  std::fputs("not a shard\n", File);
  std::fclose(File);
  EXPECT_FALSE(Store->loadShard(3, Error).has_value());
  EXPECT_FALSE(Error.empty());
}

TEST(Campaign, RefusesV1CheckpointStoreWithMigrationMessage) {
  // A v1-era store must be refused outright -- its shards carry no
  // per-cell operator fingerprint, so "just reading" it could silently
  // serve verdicts of transfer functions that have since changed.
  std::string Dir = makeCheckpointDir();
  ASSERT_EQ(::mkdir(Dir.c_str(), 0755), 0);
  {
    std::FILE *File = std::fopen((Dir + "/campaign.manifest").c_str(), "w");
    ASSERT_NE(File, nullptr);
    std::fputs("tnums-campaign-manifest v1\n"
               "fingerprint 00000000000000ab\nshards 4\n",
               File);
    std::fclose(File);
  }
  std::string Error;
  EXPECT_FALSE(CheckpointStore::open(Dir, 0xab, 4, Error).has_value());
  EXPECT_NE(Error.find("v1"), std::string::npos) << Error;

  // A stray v1 shard inside an otherwise-v2 store is likewise a load
  // error naming the version, not a generic parse failure.
  std::string V2Dir = makeCheckpointDir();
  std::optional<CheckpointStore> Store =
      CheckpointStore::open(V2Dir, 0xab, 4, Error);
  ASSERT_TRUE(Store.has_value()) << Error;
  {
    std::FILE *File =
        std::fopen((V2Dir + "/shard-00000001.ckpt").c_str(), "w");
    ASSERT_NE(File, nullptr);
    std::fputs("tnums-campaign-shard v1\nfingerprint 00000000000000ab\n"
               "shard 1\nterminal 0\npairs 1\n",
               File);
    std::fclose(File);
  }
  EXPECT_FALSE(Store->loadShard(1, Error).has_value());
  EXPECT_NE(Error.find("v1"), std::string::npos) << Error;
}

TEST(Campaign, OpenSweepsOrphanedTempFilesButSparesLiveWriters) {
  std::string Dir = makeCheckpointDir();
  std::string Error;
  ASSERT_TRUE(CheckpointStore::open(Dir, 0x1, 2, Error).has_value())
      << Error;
  // An old orphan from a writer whose pid cannot exist (beyond
  // PID_MAX_LIMIT), a FRESH temp with the same dead pid (could be a
  // remote farming machine's live writer -- the pid test is only
  // meaningful locally), and a temp owned by THIS live process.
  std::string Orphan = Dir + "/shard-00000000.ckpt.tmp.536870911.deadbeef";
  std::string FreshDeadPid =
      Dir + "/shard-00000000.ckpt.tmp.536870911.0badf00d";
  std::string Live = Dir + "/shard-00000001.ckpt.tmp." +
                     std::to_string(static_cast<long>(::getpid())) +
                     ".00c0ffee";
  for (const std::string &Path : {Orphan, FreshDeadPid, Live}) {
    std::FILE *File = std::fopen(Path.c_str(), "w");
    ASSERT_NE(File, nullptr);
    std::fputs("partial", File);
    std::fclose(File);
  }
  // Age the orphan past the sweep's grace period (an hour is plenty).
  struct utimbuf Old;
  Old.actime = Old.modtime = ::time(nullptr) - 3600;
  ASSERT_EQ(::utime(Orphan.c_str(), &Old), 0);
  ASSERT_TRUE(CheckpointStore::open(Dir, 0x1, 2, Error).has_value())
      << Error;
  EXPECT_NE(::access(Orphan.c_str(), F_OK), 0)
      << "dead writer's old temp survived the sweep";
  EXPECT_EQ(::access(FreshDeadPid.c_str(), F_OK), 0)
      << "fresh temp was swept inside the grace period";
  EXPECT_EQ(::access(Live.c_str(), F_OK), 0)
      << "live writer's temp was swept";
  ::unlink(FreshDeadPid.c_str());
  ::unlink(Live.c_str());
}

//===----------------------------------------------------------------------===//
// Incremental re-verification across transfer-function changes
//===----------------------------------------------------------------------===//

/// our_mul, except one specific pair's result drops members -- the
/// "changed (and now broken) multiplication" the incremental tests swap
/// in. Re-verification must both RE-RUN the mul cells (not serve the old
/// sound verdict from the store) and surface the new witness.
Tnum brokenMul(const Tnum &P, const Tnum &Q, unsigned Width) {
  Tnum R = applyAbstractBinary(BinaryOp::Mul, P, Q, Width);
  Tnum BadP(1, 2); // 0b0?1: members {1, 3}
  Tnum BadQ(0, 1); // 0b00?: members {0, 1}
  if (P == BadP && Q == BadQ)
    return Tnum(R.value(), 0); // Forget the unknown bits: drops members.
  return R;
}

/// The spec the incremental tests run: mul cells of two algorithms plus
/// non-mul neighbors, every property represented.
CampaignSpec incrementalSpec() {
  CampaignSpec Spec;
  Spec.OptimalityEarlyExit = true;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness});
  Spec.Cells.push_back({BinaryOp::Xor, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness}); // Index 2: the target.
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Kern, 4,
                        CampaignProperty::Soundness});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Optimality});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Kern, 5,
                        CampaignProperty::Monotonicity});
  return Spec;
}

constexpr size_t ChangedCellIndex = 2; ///< Mul/Our soundness in the spec.

/// incrementalSpec with our_mul's soundness "implementation changed" to
/// brokenMul: same campaign shape, different cell fingerprint for exactly
/// the Mul/Our soundness cell.
CampaignSpec changedSpec() {
  CampaignSpec Spec = incrementalSpec();
  Spec.OperatorOverride = [](const Tnum &P, const Tnum &Q, unsigned W) {
    return brokenMul(P, Q, W);
  };
  Spec.OverrideTag = "our-mul-changed-v2";
  Spec.OverrideOp = BinaryOp::Mul;
  Spec.OverrideMul = MulAlgorithm::Our;
  return Spec;
}

/// Field-wise comparison of two complete campaign results (the
/// "incremental merge == from-scratch merge" bit-identity assertion).
void expectSameCampaign(const CampaignResult &Want,
                        const CampaignResult &Got) {
  ASSERT_TRUE(Want.ok()) << Want.Error;
  ASSERT_TRUE(Got.ok()) << Got.Error;
  ASSERT_TRUE(Want.Complete);
  ASSERT_TRUE(Got.Complete);
  ASSERT_EQ(Want.Cells.size(), Got.Cells.size());
  for (size_t I = 0; I != Want.Cells.size(); ++I) {
    SCOPED_TRACE(testing::Message() << "cell " << I);
    switch (Want.Cells[I].Cell.Property) {
    case CampaignProperty::Soundness:
      expectSameSoundness(Want.Cells[I].Soundness, Got.Cells[I].Soundness);
      break;
    case CampaignProperty::Optimality:
      expectSameOptimality(Want.Cells[I].Optimality,
                           Got.Cells[I].Optimality);
      break;
    case CampaignProperty::Monotonicity:
      expectSameMonotonicity(Want.Cells[I].Monotonicity,
                             Got.Cells[I].Monotonicity);
      break;
    case CampaignProperty::Precision:
      expectSamePrecision(Want.Cells[I].Precision, Got.Cells[I].Precision);
      break;
    }
  }
}

TEST(Campaign, IncrementalResumeReRunsOnlyTheChangedCells) {
  CampaignSpec Spec = incrementalSpec();
  std::string Dir = makeCheckpointDir();
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997; // Prime: shard edges never align with grid rows.
  CampaignResult Baseline = runCampaign(Spec, IO, kConfigs[1]);
  ASSERT_TRUE(Baseline.ok()) << Baseline.Error;
  ASSERT_TRUE(Baseline.Complete);
  ASSERT_TRUE(Baseline.Cells[ChangedCellIndex].holds());

  // "The kernel swapped its mul algorithm": resume the SAME directory
  // with the changed spec, on a different scheduler for good measure.
  CampaignSpec Changed = changedSpec();
  CampaignIO ResumeIO = IO;
  ResumeIO.Resume = true;
  CampaignResult Inc = runCampaign(Changed, ResumeIO, kConfigs[2]);
  ASSERT_TRUE(Inc.ok()) << Inc.Error;
  ASSERT_TRUE(Inc.Complete);

  // Executed-cell accounting: ONLY the changed cell was invalidated and
  // re-run; every other cell was served from the store wholesale.
  EXPECT_GT(Inc.ShardsInvalidated, 0u);
  for (size_t I = 0; I != Inc.Cells.size(); ++I) {
    SCOPED_TRACE(testing::Message() << "cell " << I);
    const CampaignCellResult &Cell = Inc.Cells[I];
    if (I == ChangedCellIndex) {
      EXPECT_GT(Cell.ShardsRun, 0u);
      EXPECT_EQ(Cell.ShardsInvalidated, Cell.ShardsRun);
      EXPECT_EQ(Cell.ShardsResumed, 0u);
    } else {
      EXPECT_EQ(Cell.ShardsRun, 0u);
      EXPECT_EQ(Cell.ShardsInvalidated, 0u);
      EXPECT_EQ(Cell.ShardsResumed, Cell.ShardsMerged);
    }
  }

  // The re-run really used the new implementation: the changed cell now
  // carries the broken mul's witness, with exact serial-prefix counters.
  ASSERT_TRUE(Inc.Cells[ChangedCellIndex].Soundness.Failure.has_value());
  SweepConfig Serial{/*NumThreads=*/1, /*ChunkPairs=*/1};
  SoundnessReport Want = checkSoundnessExhaustiveParallel(
      BinaryOp::Mul,
      [](const Tnum &P, const Tnum &Q) { return brokenMul(P, Q, 4); },
      /*Width=*/4, Serial);
  expectSameSoundness(Want, Inc.Cells[ChangedCellIndex].Soundness);

  // And the merged report is bit-identical to a from-scratch run of the
  // changed spec -- reused cells and recomputed cells merge alike.
  CampaignIO FreshIO;
  FreshIO.ShardPairs = IO.ShardPairs;
  CampaignResult Fresh = runCampaign(Changed, FreshIO, kConfigs[0]);
  expectSameCampaign(Fresh, Inc);
}

TEST(Campaign, KillMidIncrementalResumeStaysBitIdentical) {
  CampaignSpec Spec = incrementalSpec();
  std::string Dir = makeCheckpointDir();
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[0]).Complete);

  // Kill the incremental re-run after one shard (some stale shards may
  // already be GC'd but not yet recomputed -- that must not matter)...
  CampaignSpec Changed = changedSpec();
  CampaignIO KillIO = IO;
  KillIO.Resume = true;
  KillIO.MaxShardsThisRun = 1;
  CampaignResult Killed = runCampaign(Changed, KillIO, kConfigs[1]);
  ASSERT_TRUE(Killed.ok()) << Killed.Error;
  EXPECT_EQ(Killed.ShardsRun, 1u);

  // ...then resume to completion under yet another scheduler.
  CampaignIO ResumeIO = IO;
  ResumeIO.Resume = true;
  CampaignResult Inc = runCampaign(Changed, ResumeIO, kConfigs[2]);
  ASSERT_TRUE(Inc.ok()) << Inc.Error;
  ASSERT_TRUE(Inc.Complete);

  CampaignIO FreshIO;
  FreshIO.ShardPairs = IO.ShardPairs;
  CampaignResult Fresh = runCampaign(Changed, FreshIO, kConfigs[0]);
  expectSameCampaign(Fresh, Inc);

  // The unchanged cells were still never recomputed across BOTH
  // incremental invocations.
  for (size_t I = 0; I != Inc.Cells.size(); ++I) {
    if (I == ChangedCellIndex)
      continue;
    EXPECT_EQ(Killed.Cells[I].ShardsRun + Inc.Cells[I].ShardsRun, 0u)
        << "cell " << I;
  }
}

TEST(Campaign, DiffBaselineReportsReuseAndVerdictChanges) {
  CampaignSpec Spec = incrementalSpec();
  std::string Dir = makeCheckpointDir();
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[1]).Complete);

  // Current state of the world: the changed spec, run in memory.
  CampaignSpec Changed = changedSpec();
  CampaignIO MemIO;
  MemIO.ShardPairs = IO.ShardPairs;
  CampaignResult Current = runCampaign(Changed, MemIO, kConfigs[0]);
  ASSERT_TRUE(Current.Complete);

  CampaignDiffResult Diff =
      diffCampaignBaseline(Changed, MemIO, Dir, Current);
  ASSERT_TRUE(Diff.ok()) << Diff.Error;
  ASSERT_EQ(Diff.Cells.size(), Changed.Cells.size());
  EXPECT_EQ(Diff.CellsReused, Changed.Cells.size() - 1);
  EXPECT_EQ(Diff.CellsRerun, 1u);
  EXPECT_EQ(Diff.CellsVerdictChanged, 1u);
  for (size_t I = 0; I != Diff.Cells.size(); ++I) {
    SCOPED_TRACE(testing::Message() << "cell " << I);
    const CampaignCellDiff &Cell = Diff.Cells[I];
    EXPECT_TRUE(Cell.InBaseline);
    EXPECT_TRUE(Cell.BaselineComplete);
    if (I == ChangedCellIndex) {
      EXPECT_FALSE(Cell.Reused);
      EXPECT_TRUE(Cell.VerdictChanged); // Sound before, witness now.
      EXPECT_TRUE(Cell.ReportChanged);
      EXPECT_TRUE(Cell.Baseline.holds());
    } else {
      EXPECT_TRUE(Cell.Reused);
      EXPECT_FALSE(Cell.VerdictChanged);
      EXPECT_FALSE(Cell.ReportChanged);
    }
  }

  // A baseline of a different shape (different ShardPairs) is refused.
  CampaignIO OtherIO = MemIO;
  OtherIO.ShardPairs = 500;
  CampaignResult OtherCurrent = runCampaign(Changed, OtherIO, kConfigs[0]);
  EXPECT_FALSE(
      diffCampaignBaseline(Changed, OtherIO, Dir, OtherCurrent).ok());

  // A nonexistent baseline path is a hard error -- and is NOT created (a
  // typo must not fabricate an empty store and report a clean diff).
  std::string Typo = Dir + "-typo";
  CampaignDiffResult Bad =
      diffCampaignBaseline(Changed, MemIO, Typo, Current);
  EXPECT_FALSE(Bad.ok());
  EXPECT_NE(::access(Typo.c_str(), F_OK), 0)
      << "--diff-baseline created the mistyped directory";
}

//===----------------------------------------------------------------------===//
// Payload-carrying properties: the precision measurement
//===----------------------------------------------------------------------===//

/// Precision cells spanning an optimal operator (add: gap 0 everywhere),
/// a conservatively imprecise one (div), and two mul algorithms -- the
/// histogram-payload merge gets exercised with and without witnesses.
CampaignSpec precisionSpec() {
  CampaignSpec Spec;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Precision});
  Spec.Cells.push_back({BinaryOp::Div, MulAlgorithm::Our, 4,
                        CampaignProperty::Precision});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Precision});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Kern, 4,
                        CampaignProperty::Precision});
  return Spec;
}

TEST(Campaign, PrecisionMergesBitIdenticalToSerialAcrossConfigs) {
  CampaignSpec Spec = precisionSpec();
  for (const SweepConfig &Config : kConfigs) {
    for (uint64_t ShardPairs : {uint64_t(100), uint64_t(1000),
                                uint64_t(1) << 20}) {
      SCOPED_TRACE(testing::Message() << "threads " << Config.NumThreads
                                      << " shard-pairs " << ShardPairs);
      CampaignIO IO;
      IO.ShardPairs = ShardPairs;
      CampaignResult Campaign = runCampaign(Spec, IO, Config);
      expectMatchesSerialCheckers(Spec, Campaign);
      // Gap semantics: add measures optimal (an informational holds());
      // div's conservative imprecision yields a nonzero gap WITH the
      // serial-order worst witness attached.
      EXPECT_TRUE(Campaign.Cells[0].holds());
      EXPECT_EQ(Campaign.Cells[0].Precision.MaxGap, 0u);
      EXPECT_FALSE(Campaign.Cells[0].Precision.Worst.has_value());
      EXPECT_FALSE(Campaign.Cells[1].holds());
      EXPECT_GT(Campaign.Cells[1].Precision.MaxGap, 0u);
      ASSERT_TRUE(Campaign.Cells[1].Precision.Worst.has_value());
      EXPECT_EQ(Campaign.Cells[1].Precision.Worst->Gap,
                Campaign.Cells[1].Precision.MaxGap);
    }
  }
}

TEST(Campaign, PrecisionKillResumeAndSplitStaysBitIdentical) {
  CampaignSpec Spec = precisionSpec();
  for (const SweepConfig &Config : kConfigs) {
    for (uint64_t KillAfter : {uint64_t(1), uint64_t(5)}) {
      SCOPED_TRACE(testing::Message() << "threads " << Config.NumThreads
                                      << " kill-after " << KillAfter);
      std::string Dir = makeCheckpointDir();
      CampaignIO IO;
      IO.CheckpointDir = Dir;
      IO.ShardPairs = 997; // Prime: shard edges never align with rows.
      IO.MaxShardsThisRun = KillAfter;
      CampaignResult Killed = runCampaign(Spec, IO, Config);
      ASSERT_TRUE(Killed.ok()) << Killed.Error;
      EXPECT_FALSE(Killed.Complete);

      // Resume as a 2-way split executed out of order, each slice under a
      // different scheduler; the second slice completes the merge.
      CampaignResult Last;
      for (unsigned Slice : {1u, 0u}) {
        CampaignIO SliceIO;
        SliceIO.CheckpointDir = Dir;
        SliceIO.ShardPairs = IO.ShardPairs;
        SliceIO.Shards = 2;
        SliceIO.ShardIndex = Slice;
        SliceIO.Resume = true;
        Last = runCampaign(Spec, SliceIO, kConfigs[(Slice + KillAfter) % 3]);
        ASSERT_TRUE(Last.ok()) << Last.Error;
      }
      ASSERT_TRUE(Last.Complete);
      expectMatchesSerialCheckers(Spec, Last);
    }
  }
}

TEST(Campaign, RefusesStalePrecisionPayloadVersionWithMigrationMessage) {
  // The payload-format guard: a stored shard whose payload header
  // declares an older serialization version -- but whose cell fingerprint
  // still matches (the fingerprint guards SEMANTIC versions; a payload
  // format revision without a campaignPropertyPayloadVersion bump is
  // exactly the bug this refuses) -- must fail the merge with the
  // migration message, never misparse the old bytes.
  CampaignSpec Spec = precisionSpec();
  std::string Dir = makeCheckpointDir();
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[1]).Complete);

  // Doctor one stored shard's payload header line down a version.
  std::string Shard = Dir + "/shard-00000000.ckpt";
  std::ifstream In(Shard);
  std::string Contents((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  In.close();
  size_t At = Contents.find("payload precision 1\n");
  ASSERT_NE(At, std::string::npos) << Contents;
  Contents.replace(At, std::strlen("payload precision 1\n"),
                   "payload precision 0\n");
  {
    std::ofstream Out(Shard, std::ios::trunc);
    Out << Contents;
  }

  CampaignIO ResumeIO = IO;
  ResumeIO.Resume = true;
  CampaignResult Refused = runCampaign(Spec, ResumeIO, kConfigs[0]);
  EXPECT_FALSE(Refused.ok());
  EXPECT_NE(Refused.Error.find("incompatible payload version"),
            std::string::npos)
      << Refused.Error;
}

/// our_mul, except one pair's result forgets everything it knew: still
/// sound, strictly less precise -- the "precision regression" the diff
/// tests must surface as a report (not verdict) change.
Tnum impreciseMul(const Tnum &P, const Tnum &Q, unsigned Width) {
  if (P == Tnum(1, 2) && Q == Tnum(0, 1))
    return Tnum(0, (uint64_t(1) << Width) - 1); // Top: every bit unknown.
  return applyAbstractBinary(BinaryOp::Mul, P, Q, Width);
}

TEST(Campaign, IncrementalFlipReRunsOnlyTheFlippedPrecisionCells) {
  // Mixed spec: precision cells of two mul algorithms and one non-mul
  // neighbor, plus a mul soundness cell -- the override must invalidate
  // BOTH properties of the overridden operator and nothing else.
  CampaignSpec Spec;
  Spec.Cells.push_back({BinaryOp::Add, MulAlgorithm::Our, 4,
                        CampaignProperty::Precision});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Precision}); // Index 1: flipped.
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Kern, 4,
                        CampaignProperty::Precision});
  Spec.Cells.push_back({BinaryOp::Mul, MulAlgorithm::Our, 4,
                        CampaignProperty::Soundness}); // Index 3: flipped.
  std::string Dir = makeCheckpointDir();
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  CampaignResult Baseline = runCampaign(Spec, IO, kConfigs[1]);
  ASSERT_TRUE(Baseline.ok()) << Baseline.Error;
  ASSERT_TRUE(Baseline.Complete);

  // Same semantics under a flipped fingerprint (the --flip-mul idiom).
  CampaignSpec Changed = Spec;
  Changed.OperatorOverride = [](const Tnum &P, const Tnum &Q, unsigned W) {
    return applyAbstractBinary(BinaryOp::Mul, P, Q, W, MulAlgorithm::Our);
  };
  Changed.OverrideTag = "our-mul-flip-v1";
  Changed.OverrideOp = BinaryOp::Mul;
  Changed.OverrideMul = MulAlgorithm::Our;
  CampaignIO ResumeIO = IO;
  ResumeIO.Resume = true;
  CampaignResult Inc = runCampaign(Changed, ResumeIO, kConfigs[2]);
  ASSERT_TRUE(Inc.ok()) << Inc.Error;
  ASSERT_TRUE(Inc.Complete);

  for (size_t I = 0; I != Inc.Cells.size(); ++I) {
    SCOPED_TRACE(testing::Message() << "cell " << I);
    const CampaignCellResult &Cell = Inc.Cells[I];
    if (I == 1 || I == 3) { // Mul/Our cells: re-measured.
      EXPECT_GT(Cell.ShardsRun, 0u);
      EXPECT_EQ(Cell.ShardsInvalidated, Cell.ShardsRun);
      EXPECT_EQ(Cell.ShardsResumed, 0u);
    } else {
      EXPECT_EQ(Cell.ShardsRun, 0u);
      EXPECT_EQ(Cell.ShardsInvalidated, 0u);
      EXPECT_EQ(Cell.ShardsResumed, Cell.ShardsMerged);
    }
  }

  // Byte-identical to a from-scratch run of the changed spec -- and,
  // since the flip preserved semantics, to the original baseline too.
  CampaignIO FreshIO;
  FreshIO.ShardPairs = IO.ShardPairs;
  CampaignResult Fresh = runCampaign(Changed, FreshIO, kConfigs[0]);
  expectSameCampaign(Fresh, Inc);
  expectSameCampaign(Baseline, Inc);
}

TEST(Campaign, DiffBaselineCountsPrecisionDeltas) {
  CampaignSpec Spec = precisionSpec();
  std::string Dir = makeCheckpointDir();
  CampaignIO IO;
  IO.CheckpointDir = Dir;
  IO.ShardPairs = 997;
  ASSERT_TRUE(runCampaign(Spec, IO, kConfigs[1]).Complete);

  // An identical rerun reports zero precision deltas (the CI grep).
  CampaignIO MemIO;
  MemIO.ShardPairs = IO.ShardPairs;
  CampaignResult Same = runCampaign(Spec, MemIO, kConfigs[0]);
  ASSERT_TRUE(Same.Complete);
  CampaignDiffResult CleanDiff = diffCampaignBaseline(Spec, MemIO, Dir, Same);
  ASSERT_TRUE(CleanDiff.ok()) << CleanDiff.Error;
  std::FILE *Clean = std::tmpfile();
  ASSERT_NE(Clean, nullptr);
  EXPECT_EQ(printPrecisionDeltas(Spec, CleanDiff, Same, Clean), 0u);
  std::fclose(Clean);

  // A sound-but-lazier our_mul changes exactly its own precision report:
  // one delta, named, with the gap totals drifting upward.
  CampaignSpec Changed = Spec;
  Changed.OperatorOverride = [](const Tnum &P, const Tnum &Q, unsigned W) {
    return impreciseMul(P, Q, W);
  };
  Changed.OverrideTag = "imprecise-mul-v1";
  Changed.OverrideOp = BinaryOp::Mul;
  Changed.OverrideMul = MulAlgorithm::Our;
  CampaignResult Current = runCampaign(Changed, MemIO, kConfigs[2]);
  ASSERT_TRUE(Current.Complete);
  EXPECT_GT(Current.Cells[2].Precision.SumGap,
            Same.Cells[2].Precision.SumGap);

  CampaignDiffResult Diff = diffCampaignBaseline(Changed, MemIO, Dir,
                                                 Current);
  ASSERT_TRUE(Diff.ok()) << Diff.Error;
  EXPECT_TRUE(Diff.Cells[2].ReportChanged);
  std::FILE *Out = std::tmpfile();
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(printPrecisionDeltas(Changed, Diff, Current, Out), 1u);
  std::rewind(Out);
  char Buf[512] = {};
  size_t Read = std::fread(Buf, 1, sizeof(Buf) - 1, Out);
  std::fclose(Out);
  std::string Text(Buf, Read);
  EXPECT_NE(Text.find("precision delta mul[our_mul]/w4"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("1 precision deltas vs baseline"), std::string::npos)
      << Text;
}

} // namespace
