//===- tests/TnumOpsRandomTest.cpp - Randomized 64-bit soundness ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized soundness properties at the production width of 64 bits --
/// the coverage gap the exhaustive sweeps (width <= 8-12) cannot reach.
/// The paper proves add/sub/bitwise sound at full width via SMT (§III-A);
/// with no solver offline, these tests are the falsification analogue:
/// for sampled well-formed tnum pairs and sampled concrete members, the
/// concrete result must land in the abstract result's concretization.
/// Coverage spans the full operator surface: the wrap-around and bitwise
/// ops, div/mod (BPF zero conventions), the variable shifts, and the
/// unary narrowing casts.
///
/// Seeds are fixed, so the suite is deterministic; a failure prints the
/// solver-style counterexample model.
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "tnum/TnumOps.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

using namespace tnums;

namespace {

constexpr unsigned kWidth = 64;
constexpr int kPairs = 4000;
constexpr int kSamplesPerPair = 8;

/// Draws one concrete member of gamma(P) uniformly.
uint64_t sampleMember(const Tnum &P, Xoshiro256 &Rng) {
  return P.value() | (Rng.next() & P.mask());
}

/// Direct property check of one abstract operator against its concrete
/// semantics: min/max corner members plus random members of both sides.
template <typename AbstractFn, typename ConcreteFn>
void checkOpSoundness(const char *Name, AbstractFn &&Abstract,
                      ConcreteFn &&Concrete, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  for (int I = 0; I != kPairs; ++I) {
    Tnum P = randomWellFormedTnum(Rng, kWidth);
    Tnum Q = randomWellFormedTnum(Rng, kWidth);
    Tnum R = Abstract(P, Q);
    ASSERT_TRUE(R.isWellFormed())
        << Name << " produced bottom for P=" << P.toVmString()
        << " Q=" << Q.toVmString();
    auto CheckOne = [&](uint64_t X, uint64_t Y) {
      uint64_t Z = Concrete(X, Y);
      ASSERT_TRUE(R.contains(Z))
          << Name << ": z=" << Z << " escapes R=" << R.toVmString()
          << " for x=" << X << " in P=" << P.toVmString() << ", y=" << Y
          << " in Q=" << Q.toVmString();
    };
    // Corner members first (the extremes are where carry/borrow chains
    // behave most differently), then uniform samples.
    for (uint64_t X : {P.minMember(), P.maxMember()})
      for (uint64_t Y : {Q.minMember(), Q.maxMember()})
        CheckOne(X, Y);
    for (int S = 0; S != kSamplesPerPair; ++S)
      CheckOne(sampleMember(P, Rng), sampleMember(Q, Rng));
  }
}

TEST(TnumOpsRandom64, AddSound) {
  checkOpSoundness(
      "tnumAdd", [](Tnum P, Tnum Q) { return tnumAdd(P, Q); },
      [](uint64_t X, uint64_t Y) { return X + Y; }, 0xadd);
}

TEST(TnumOpsRandom64, SubSound) {
  checkOpSoundness(
      "tnumSub", [](Tnum P, Tnum Q) { return tnumSub(P, Q); },
      [](uint64_t X, uint64_t Y) { return X - Y; }, 0x5b);
}

TEST(TnumOpsRandom64, AndSound) {
  checkOpSoundness(
      "tnumAnd", [](Tnum P, Tnum Q) { return tnumAnd(P, Q); },
      [](uint64_t X, uint64_t Y) { return X & Y; }, 0xa4d);
}

TEST(TnumOpsRandom64, OrSound) {
  checkOpSoundness(
      "tnumOr", [](Tnum P, Tnum Q) { return tnumOr(P, Q); },
      [](uint64_t X, uint64_t Y) { return X | Y; }, 0x0a);
}

TEST(TnumOpsRandom64, XorSound) {
  checkOpSoundness(
      "tnumXor", [](Tnum P, Tnum Q) { return tnumXor(P, Q); },
      [](uint64_t X, uint64_t Y) { return X ^ Y; }, 0x804);
}

// The rest of the BPF operator surface at width 64, same direct property.
// Div/mod use the BPF conventions (x/0 == 0, x%0 == x); the variable
// shifts mask the amount to the width like the concrete semantics do.

TEST(TnumOpsRandom64, DivSound) {
  checkOpSoundness(
      "tnumDiv", [](Tnum P, Tnum Q) { return tnumDiv(P, Q, kWidth); },
      [](uint64_t X, uint64_t Y) { return Y == 0 ? 0 : X / Y; }, 0xd1f);
}

TEST(TnumOpsRandom64, ModSound) {
  checkOpSoundness(
      "tnumMod", [](Tnum P, Tnum Q) { return tnumMod(P, Q, kWidth); },
      [](uint64_t X, uint64_t Y) { return Y == 0 ? X : X % Y; }, 0x30d);
}

TEST(TnumOpsRandom64, LshSound) {
  checkOpSoundness(
      "tnumLshiftByTnum",
      [](Tnum P, Tnum Q) { return tnumLshiftByTnum(P, Q, kWidth); },
      [](uint64_t X, uint64_t Y) { return X << (Y & (kWidth - 1)); },
      0x15f);
}

TEST(TnumOpsRandom64, RshSound) {
  checkOpSoundness(
      "tnumRshiftByTnum",
      [](Tnum P, Tnum Q) { return tnumRshiftByTnum(P, Q, kWidth); },
      [](uint64_t X, uint64_t Y) { return X >> (Y & (kWidth - 1)); },
      0x25f);
}

TEST(TnumOpsRandom64, ArshSound) {
  checkOpSoundness(
      "tnumArshiftByTnum",
      [](Tnum P, Tnum Q) { return tnumArshiftByTnum(P, Q, kWidth); },
      [](uint64_t X, uint64_t Y) {
        return static_cast<uint64_t>(static_cast<int64_t>(X) >>
                                     (Y & (kWidth - 1)));
      },
      0xa25f);
}

/// The unary narrowing operators, same randomized property: every member
/// of gamma(P), truncated concretely, must land in the narrowed abstract
/// result's concretization.
TEST(TnumOpsRandom64, CastAndTruncateSound) {
  Xoshiro256 Rng(0xca57);
  for (int I = 0; I != kPairs; ++I) {
    Tnum P = randomWellFormedTnum(Rng, kWidth);
    for (unsigned Bytes = 1; Bytes <= 8; ++Bytes) {
      Tnum R = tnumCast(P, Bytes);
      ASSERT_TRUE(R.isWellFormed());
      const uint64_t Mask =
          Bytes == 8 ? ~uint64_t(0) : (uint64_t(1) << (8 * Bytes)) - 1;
      for (uint64_t X : {P.minMember(), P.maxMember(), sampleMember(P, Rng)})
        ASSERT_TRUE(R.contains(X & Mask))
            << "tnumCast(" << Bytes << "): x=" << X
            << " escapes R=" << R.toVmString()
            << " for P=" << P.toVmString();
    }
    for (unsigned Width : {1u, 7u, 33u, 63u}) {
      Tnum R = tnumTruncate(P, Width);
      ASSERT_TRUE(R.isWellFormed());
      const uint64_t Mask = (uint64_t(1) << Width) - 1;
      for (uint64_t X : {P.minMember(), P.maxMember(), sampleMember(P, Rng)})
        ASSERT_TRUE(R.contains(X & Mask))
            << "tnumTruncate(" << Width << "): x=" << X
            << " escapes R=" << R.toVmString()
            << " for P=" << P.toVmString();
    }
  }
}

/// The same property driven through the oracle layer for the whole
/// operator set (shift semantics included -- 64 is a power of two), using
/// the campaign entry point so the test exercises exactly what the
/// randomized refutation section of bench/soundness_verification runs.
TEST(TnumOpsRandom64, AllOperatorsSurviveRefutationCampaign) {
  Xoshiro256 Rng(64640);
  for (BinaryOp Op : AllBinaryOps) {
    SCOPED_TRACE(binaryOpName(Op));
    SoundnessReport Report = checkSoundnessRandom(
        Op, kWidth, /*NumPairs=*/1500, /*SamplesPerPair=*/6, Rng);
    EXPECT_TRUE(Report.holds())
        << (Report.Failure ? Report.Failure->toString(kWidth) : "");
    EXPECT_EQ(Report.PairsChecked, 1500u);
  }
}

} // namespace
