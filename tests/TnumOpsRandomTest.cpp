//===- tests/TnumOpsRandomTest.cpp - Randomized 64-bit soundness ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized soundness properties at the production width of 64 bits --
/// the coverage gap the exhaustive sweeps (width <= 8-12) cannot reach.
/// The paper proves add/sub/bitwise sound at full width via SMT (§III-A);
/// with no solver offline, these tests are the falsification analogue:
/// for sampled well-formed tnum pairs and sampled concrete members, the
/// concrete result must land in the abstract result's concretization.
///
/// Seeds are fixed, so the suite is deterministic; a failure prints the
/// solver-style counterexample model.
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "tnum/TnumOps.h"
#include "verify/SoundnessChecker.h"

#include <gtest/gtest.h>

using namespace tnums;

namespace {

constexpr unsigned kWidth = 64;
constexpr int kPairs = 4000;
constexpr int kSamplesPerPair = 8;

/// Draws one concrete member of gamma(P) uniformly.
uint64_t sampleMember(const Tnum &P, Xoshiro256 &Rng) {
  return P.value() | (Rng.next() & P.mask());
}

/// Direct property check of one abstract operator against its concrete
/// semantics: min/max corner members plus random members of both sides.
template <typename AbstractFn, typename ConcreteFn>
void checkOpSoundness(const char *Name, AbstractFn &&Abstract,
                      ConcreteFn &&Concrete, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  for (int I = 0; I != kPairs; ++I) {
    Tnum P = randomWellFormedTnum(Rng, kWidth);
    Tnum Q = randomWellFormedTnum(Rng, kWidth);
    Tnum R = Abstract(P, Q);
    ASSERT_TRUE(R.isWellFormed())
        << Name << " produced bottom for P=" << P.toVmString()
        << " Q=" << Q.toVmString();
    auto CheckOne = [&](uint64_t X, uint64_t Y) {
      uint64_t Z = Concrete(X, Y);
      ASSERT_TRUE(R.contains(Z))
          << Name << ": z=" << Z << " escapes R=" << R.toVmString()
          << " for x=" << X << " in P=" << P.toVmString() << ", y=" << Y
          << " in Q=" << Q.toVmString();
    };
    // Corner members first (the extremes are where carry/borrow chains
    // behave most differently), then uniform samples.
    for (uint64_t X : {P.minMember(), P.maxMember()})
      for (uint64_t Y : {Q.minMember(), Q.maxMember()})
        CheckOne(X, Y);
    for (int S = 0; S != kSamplesPerPair; ++S)
      CheckOne(sampleMember(P, Rng), sampleMember(Q, Rng));
  }
}

TEST(TnumOpsRandom64, AddSound) {
  checkOpSoundness(
      "tnumAdd", [](Tnum P, Tnum Q) { return tnumAdd(P, Q); },
      [](uint64_t X, uint64_t Y) { return X + Y; }, 0xadd);
}

TEST(TnumOpsRandom64, SubSound) {
  checkOpSoundness(
      "tnumSub", [](Tnum P, Tnum Q) { return tnumSub(P, Q); },
      [](uint64_t X, uint64_t Y) { return X - Y; }, 0x5b);
}

TEST(TnumOpsRandom64, AndSound) {
  checkOpSoundness(
      "tnumAnd", [](Tnum P, Tnum Q) { return tnumAnd(P, Q); },
      [](uint64_t X, uint64_t Y) { return X & Y; }, 0xa4d);
}

TEST(TnumOpsRandom64, OrSound) {
  checkOpSoundness(
      "tnumOr", [](Tnum P, Tnum Q) { return tnumOr(P, Q); },
      [](uint64_t X, uint64_t Y) { return X | Y; }, 0x0a);
}

TEST(TnumOpsRandom64, XorSound) {
  checkOpSoundness(
      "tnumXor", [](Tnum P, Tnum Q) { return tnumXor(P, Q); },
      [](uint64_t X, uint64_t Y) { return X ^ Y; }, 0x804);
}

/// The same property driven through the oracle layer for the whole
/// operator set (shift semantics included -- 64 is a power of two), using
/// the campaign entry point so the test exercises exactly what the
/// randomized refutation section of bench/soundness_verification runs.
TEST(TnumOpsRandom64, AllOperatorsSurviveRefutationCampaign) {
  Xoshiro256 Rng(64640);
  for (BinaryOp Op : AllBinaryOps) {
    SCOPED_TRACE(binaryOpName(Op));
    SoundnessReport Report = checkSoundnessRandom(
        Op, kWidth, /*NumPairs=*/1500, /*SamplesPerPair=*/6, Rng);
    EXPECT_TRUE(Report.holds())
        << (Report.Failure ? Report.Failure->toString(kWidth) : "");
    EXPECT_EQ(Report.PairsChecked, 1500u);
  }
}

} // namespace
