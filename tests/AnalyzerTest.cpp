//===- tests/AnalyzerTest.cpp - Abstract interpreter / verifier tests -----===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Analyzer.h"

#include "bpf/Builder.h"
#include "bpf/Verifier.h"

#include <gtest/gtest.h>

using namespace tnums;
using namespace tnums::bpf;

namespace {

VerifierReport verify(const Program &P, uint64_t MemSize = 16) {
  return verifyProgram(P, MemSize);
}

//===----------------------------------------------------------------------===//
// Acceptance of safe programs
//===----------------------------------------------------------------------===//

TEST(Verifier, AcceptsMinimalProgram) {
  Program P = ProgramBuilder().movImm(R0, 0).exit().build();
  VerifierReport R = verify(P);
  EXPECT_TRUE(R.Accepted) << R.toString(P);
}

TEST(Verifier, PaperIntroExample) {
  // The paper's §I scenario: a value with bit-level uncertainty is masked
  // to 01µ0 (here via `& 6`), so the analyzer proves x <= 6 < 8 and the
  // 8-byte access at mem[x] into a 16-byte region is safe.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)          // r3 = *(u8*)(r1+0): unknown
                  .aluImm(AluOp::And, R3, 6)   // r3 = 0 1 µ µ & ... = 01µ0-ish
                  .alu(AluOp::Add, R3, R1)     // scalar + ptr -> ptr
                  .load(R0, R3, 0, 8)          // 8-byte load at offset <= 6
                  .exit()
                  .build();
  VerifierReport R = verify(P, /*MemSize=*/16);
  EXPECT_TRUE(R.Accepted) << R.toString(P);
}

TEST(Verifier, BranchRefinementProvesBound) {
  // Unbounded byte from memory, explicitly bounds-checked before use as an
  // offset. The classic packet-parsing shape.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .jmpImm(CompareOp::Gt, R3, 8, "reject")
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8) // offsets 0..8 + 8 bytes <= 16: safe
                  .exit()
                  .label("reject")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  VerifierReport R = verify(P, /*MemSize=*/16);
  EXPECT_TRUE(R.Accepted) << R.toString(P);
}

TEST(Verifier, RejectsWithoutBoundsCheck) {
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8) // offset may be 255: unsafe
                  .exit()
                  .build();
  VerifierReport R = verify(P, /*MemSize=*/16);
  EXPECT_FALSE(R.Accepted);
  ASSERT_FALSE(R.Violations.empty());
  EXPECT_NE(R.Violations[0].Message.find("context access"),
            std::string::npos);
}

TEST(Verifier, TnumMaskingAlonePassesWithoutBranch) {
  // `& 7` bounds the offset purely through the tnum domain -- no branch
  // needed. This is exactly what tnums buy the kernel.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 8)
                  .aluImm(AluOp::And, R3, 7)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 16).Accepted);
}

TEST(Verifier, MultiplicationBoundsFlowThroughTnums) {
  // offset = (x & 1) * 8: tnum multiplication keeps the result in {0, 8}.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .aluImm(AluOp::And, R3, 1)
                  .aluImm(AluOp::Mul, R3, 8)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 16).Accepted);
}

TEST(Verifier, ShiftBoundsFlowThroughTnums) {
  // offset = (x & 1) << 3 ∈ {0, 8}.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .aluImm(AluOp::And, R3, 1)
                  .aluImm(AluOp::Lsh, R3, 3)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 16).Accepted);
}

TEST(Verifier, StackAccessWithinFrame) {
  Program P = ProgramBuilder()
                  .storeImm(R10, -8, 1, 8)
                  .load(R0, R10, -8, 8)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P).Accepted);
}

//===----------------------------------------------------------------------===//
// Rejection of unsafe programs
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsOobConstantOffset) {
  Program P = ProgramBuilder().load(R0, R1, 16, 1).exit().build();
  EXPECT_FALSE(verify(P, 16).Accepted);
}

TEST(Verifier, RejectsStraddlingAccess) {
  Program P = ProgramBuilder().load(R0, R1, 12, 8).exit().build();
  EXPECT_FALSE(verify(P, 16).Accepted);
}

TEST(Verifier, RejectsStackEscape) {
  Program P = ProgramBuilder().storeImm(R10, -520, 1, 8).exit().build();
  EXPECT_FALSE(verify(P).Accepted);
  Program Q = ProgramBuilder().load(R0, R10, 0, 1).exit().build();
  EXPECT_FALSE(verify(Q).Accepted);
}

TEST(Verifier, RejectsUninitRead) {
  Program P = ProgramBuilder().mov(R0, R5).exit().build();
  VerifierReport R = verify(P);
  EXPECT_FALSE(R.Accepted);
  EXPECT_NE(R.Violations[0].Message.find("uninit"), std::string::npos);
}

TEST(Verifier, RejectsMaybeUninitAfterJoin) {
  // R3 initialized on one path only: the join is unusable.
  Program P = ProgramBuilder()
                  .load(R4, R1, 0, 1)
                  .jmpImm(CompareOp::Eq, R4, 0, "skip")
                  .movImm(R3, 1)
                  .label("skip")
                  .mov(R0, R3)
                  .exit()
                  .build();
  EXPECT_FALSE(verify(P).Accepted);
}

TEST(Verifier, RejectsPointerLeakViaR0) {
  Program P = ProgramBuilder().mov(R0, R1).exit().build();
  VerifierReport R = verify(P);
  EXPECT_FALSE(R.Accepted);
  EXPECT_NE(R.Violations[0].Message.find("pointer leak"), std::string::npos);
}

TEST(Verifier, RejectsPointerPlusPointer) {
  Program P = ProgramBuilder()
                  .mov(R3, R1)
                  .alu(AluOp::Add, R3, R10)
                  .movImm(R0, 0)
                  .exit()
                  .build();
  VerifierReport R = verify(P);
  EXPECT_FALSE(R.Accepted);
  EXPECT_NE(R.Violations[0].Message.find("pointer arithmetic"),
            std::string::npos);
}

TEST(Verifier, RejectsMulOnPointer) {
  Program P = ProgramBuilder()
                  .mov(R3, R1)
                  .aluImm(AluOp::Mul, R3, 2)
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_FALSE(verify(P).Accepted);
}

TEST(Verifier, RejectsLoadThroughScalar) {
  Program P = ProgramBuilder()
                  .movImm(R3, 1234)
                  .load(R0, R3, 0, 1)
                  .exit()
                  .build();
  EXPECT_FALSE(verify(P).Accepted);
}

TEST(Verifier, RejectsPointerStoreToMemory) {
  Program P = ProgramBuilder()
                  .store(R1, 0, R10, 8)
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_FALSE(verify(P).Accepted);
}

TEST(Verifier, ReportsStructuralErrors) {
  Program P({Insn::movImm(R0, 1)}); // Falls off the end.
  VerifierReport R = verify(P);
  EXPECT_FALSE(R.Accepted);
  EXPECT_FALSE(R.StructuralError.empty());
}

//===----------------------------------------------------------------------===//
// Branch reasoning details
//===----------------------------------------------------------------------===//

TEST(Analyzer, InfeasibleBranchIsPruned) {
  // r3 = 5; if r3 == 5 is always taken, so the "bad" path with the OOB
  // access is unreachable and must not be reported.
  Program P = ProgramBuilder()
                  .movImm(R3, 5)
                  .jmpImm(CompareOp::Eq, R3, 5, "good")
                  .load(R0, R1, 1000, 8) // dead
                  .exit()
                  .label("good")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 16).Accepted);
}

TEST(Analyzer, RefinementAppliesToBothOperands) {
  // After `if r3 >= r4` (not taken: r3 < r4 <= 8), r3 <= 7.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .movImm(R4, 8)
                  .jmp(CompareOp::Ge, R3, R4, "reject")
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8) // r3 in [0,7], +8 bytes <= 15 < 16
                  .exit()
                  .label("reject")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 16).Accepted) << verify(P, 16).toString(P);
}

TEST(Analyzer, SignedBranchRefinement) {
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 8)
                  .jmpImm(CompareOp::SLt, R3, 0, "reject")
                  .jmpImm(CompareOp::SGt, R3, 7, "reject")
                  .alu(AluOp::Add, R3, R1) // 0 <= r3 <= 7 signed => unsigned
                  .load(R0, R3, 0, 8)
                  .exit()
                  .label("reject")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 16).Accepted) << verify(P, 16).toString(P);
}

TEST(Analyzer, JsetRefinement) {
  // If (x & 0x8) == 0 then x & 0xF <= 7.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .jmpImm(CompareOp::Set, R3, 8, "reject")
                  .aluImm(AluOp::And, R3, 0xF) // bit 3 known 0: result <= 7
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .label("reject")
                  .movImm(R0, 0)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 16).Accepted) << verify(P, 16).toString(P);
}

TEST(Analyzer, LoopWithWideningTerminatesAndAccepts) {
  // A bounded loop whose body touches memory at a constant offset; the
  // widened fixpoint must still accept.
  Program P = ProgramBuilder()
                  .movImm(R0, 0)
                  .movImm(R3, 0)
                  .label("loop")
                  .load(R4, R1, 0, 1)
                  .alu(AluOp::Add, R0, R4)
                  .aluImm(AluOp::Add, R3, 1)
                  .jmpImm(CompareOp::Lt, R3, 100, "loop")
                  .exit()
                  .build();
  VerifierReport R = verify(P, 16);
  EXPECT_TRUE(R.Accepted) << R.toString(P);
}

TEST(Analyzer, LoopVariantOffsetIsRejected) {
  // Memory offset grows with the loop counter without a bound check: after
  // widening the offset is unbounded, so the access must be rejected.
  Program P = ProgramBuilder()
                  .movImm(R0, 0)
                  .movImm(R3, 0)
                  .label("loop")
                  .mov(R4, R1)
                  .alu(AluOp::Add, R4, R3)
                  .load(R5, R4, 0, 1)
                  .aluImm(AluOp::Add, R3, 1)
                  .jmpImm(CompareOp::Ne, R3, 0, "loop")
                  .exit()
                  .build();
  EXPECT_FALSE(verify(P, 16).Accepted);
}

TEST(Analyzer, ByteLoadIsBoundedWithoutAnExplicitCheck) {
  // An 8-bit load can only produce 0..255; the analyzer's narrow-load
  // modeling (the partial extensions of §II-C) must carry that bound with
  // no mask or branch in sight. 255 + an 8-byte access = 263 bytes.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 263).Accepted) << verify(P, 263).toString(P);
  // One byte short: the worst-case index must be rejected, witnessed.
  VerifierReport Tight = verify(P, 262);
  EXPECT_FALSE(Tight.Accepted);
  EXPECT_FALSE(Tight.Violations.empty());
}

TEST(Analyzer, HalfwordLoadIsBoundedWithoutAnExplicitCheck) {
  // Same for a 16-bit load: 0..65535, so 65535 + 1 byte just fits.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 2)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 1)
                  .exit()
                  .build();
  EXPECT_TRUE(verify(P, 65536).Accepted);
  VerifierReport Tight = verify(P, 65535);
  EXPECT_FALSE(Tight.Accepted);
  EXPECT_FALSE(Tight.Violations.empty());
}

TEST(Analyzer, NarrowLoadShiftComposesKnownBits) {
  // The high byte of a halfword load: tnum RSH keeps the narrow-load
  // bound exact (0..255 again), composing the §II-B shift transfer with
  // the load's implicit zero extension.
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 2)
                  .aluImm(AluOp::Rsh, R3, 8)
                  .alu(AluOp::Add, R3, R1)
                  .load(R0, R3, 0, 8)
                  .exit()
                  .build();
  VerifierReport R = verify(P, 263);
  EXPECT_TRUE(R.Accepted) << R.toString(P);
  EXPECT_FALSE(verify(P, 262).Accepted);
}

TEST(Analyzer, StateDumpMentionsTnums) {
  Program P = ProgramBuilder()
                  .load(R3, R1, 0, 1)
                  .aluImm(AluOp::And, R3, 6)
                  .movImm(R0, 0)
                  .exit()
                  .build();
  VerifierReport R = verify(P, 16);
  ASSERT_TRUE(R.Accepted);
  // After the AND, the in-state of insn 2 shows r3's tnum with bits 0 and
  // 3..63 known zero.
  std::string Dump = R.toString(P);
  EXPECT_NE(Dump.find("r3="), std::string::npos);
  EXPECT_NE(Dump.find("tnum="), std::string::npos);
}

} // namespace
