//===- tests/DifferentialTest.cpp - Abstract vs concrete fuzzing ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end soundness fuzzing of the whole stack: generate random BPF
/// programs, analyze them, and execute them concretely on random inputs.
/// Two oracles must hold:
///
///   1. Verifier-accepted programs never trap in the interpreter.
///   2. At the exit instruction, every concrete scalar register value lies
///      inside the analyzer's abstract value for that register.
///
/// This is the whole-system analogue of the paper's per-operator soundness
/// condition (Eqn. 8), and the strongest evidence that the tnum transfer
/// functions, the reduced product, and the branch refinement compose
/// soundly.
///
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"
#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace tnums;
using namespace tnums::bpf;

namespace {

constexpr uint64_t MemSize = 32;
constexpr Reg ScratchRegs[] = {R3, R4, R5, R6, R7, R8};

/// Generates a random program of ALU64/ALU32 work over scratch registers
/// seeded from memory loads, sprinkled with scalar spill/fill round trips
/// and up to two forward branches (64- or 32-bit guards).
Program generateProgram(Xoshiro256 &Rng) {
  ProgramBuilder B;
  unsigned NumScratch = sizeof(ScratchRegs) / sizeof(ScratchRegs[0]);

  // Seed every scratch register: from memory (unknown to the analyzer) or
  // a constant.
  for (Reg R : ScratchRegs) {
    if (Rng.nextChance(1, 2)) {
      unsigned Size = 1u << Rng.nextBelow(3); // 1, 2, or 4 bytes
      int32_t Offset = static_cast<int32_t>(Rng.nextBelow(MemSize - Size));
      B.load(R, R1, Offset, Size);
    } else {
      B.movImm(R, static_cast<int64_t>(Rng.next() >> Rng.nextBelow(60)));
    }
  }

  constexpr AluOp Ops[] = {AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div,
                           AluOp::Mod, AluOp::And, AluOp::Or,  AluOp::Xor,
                           AluOp::Lsh, AluOp::Rsh, AluOp::Arsh};
  constexpr CompareOp Cmps[] = {CompareOp::Eq,  CompareOp::Ne, CompareOp::Lt,
                                CompareOp::Le,  CompareOp::Gt, CompareOp::Ge,
                                CompareOp::SLt, CompareOp::SLe,
                                CompareOp::SGt, CompareOp::SGe,
                                CompareOp::Set};

  unsigned NumBranches = static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned Block = 0; Block <= NumBranches; ++Block) {
    unsigned NumAlu = 2 + static_cast<unsigned>(Rng.nextBelow(6));
    for (unsigned I = 0; I != NumAlu; ++I) {
      // Occasionally interleave a scalar spill/fill dance or a negation.
      if (Rng.nextChance(1, 8)) {
        Reg R = ScratchRegs[Rng.nextBelow(NumScratch)];
        int32_t SlotOff = Rng.nextChance(1, 2) ? -8 : -16;
        B.store(R10, SlotOff, R, 8);
        B.load(ScratchRegs[Rng.nextBelow(NumScratch)], R10, SlotOff, 8);
        continue;
      }
      if (Rng.nextChance(1, 12)) {
        B.neg(ScratchRegs[Rng.nextBelow(NumScratch)]);
        continue;
      }
      AluOp Op = Ops[Rng.nextBelow(sizeof(Ops) / sizeof(Ops[0]))];
      Reg Dst = ScratchRegs[Rng.nextBelow(NumScratch)];
      bool Is32 = Rng.nextChance(1, 3); // Mix ALU32 into the stream.
      if (Rng.nextChance(1, 2)) {
        Reg Src = ScratchRegs[Rng.nextBelow(NumScratch)];
        if (Is32)
          B.alu32(Op, Dst, Src);
        else
          B.alu(Op, Dst, Src);
      } else {
        int64_t Imm = static_cast<int64_t>(Rng.next() >> Rng.nextBelow(60));
        if (Is32)
          B.alu32Imm(Op, Dst, Imm);
        else
          B.aluImm(Op, Dst, Imm);
      }
    }
    if (Block != NumBranches) {
      // Forward branch over nothing-in-particular: both directions land on
      // the next block, but the refinement still kicks in.
      CompareOp Cmp = Cmps[Rng.nextBelow(sizeof(Cmps) / sizeof(Cmps[0]))];
      Reg Dst = ScratchRegs[Rng.nextBelow(NumScratch)];
      std::string Label = "block" + std::to_string(Block);
      bool Jmp32 = Rng.nextChance(1, 3); // Mix JMP32 guards in too.
      if (Rng.nextChance(1, 2)) {
        int64_t Imm = static_cast<int64_t>(Rng.nextBelow(512));
        if (Jmp32)
          B.jmp32Imm(Cmp, Dst, Imm, Label);
        else
          B.jmpImm(Cmp, Dst, Imm, Label);
      } else {
        Reg Src = ScratchRegs[Rng.nextBelow(NumScratch)];
        if (Jmp32)
          B.jmp32(Cmp, Dst, Src, Label);
        else
          B.jmp(Cmp, Dst, Src, Label);
      }
      // A small then-block the branch skips.
      Reg ThenDst = ScratchRegs[Rng.nextBelow(NumScratch)];
      B.aluImm(Ops[Rng.nextBelow(sizeof(Ops) / sizeof(Ops[0]))], ThenDst,
               static_cast<int64_t>(Rng.nextBelow(1024)));
      B.label(Label);
    }
  }

  B.mov(R0, ScratchRegs[Rng.nextBelow(NumScratch)]);
  B.exit();
  return B.build();
}

TEST(Differential, AcceptedProgramsNeverTrapAndStayContained) {
  Xoshiro256 Rng(0xD1FF);
  unsigned Accepted = 0;
  for (unsigned Iter = 0; Iter != 300; ++Iter) {
    Program P = generateProgram(Rng);
    ASSERT_FALSE(P.validate().has_value());

    VerifierReport Report = verifyProgram(P, MemSize);
    ASSERT_TRUE(Report.Accepted) << "generator emits only safe programs\n"
                                 << Report.toString(P);
    ++Accepted;

    size_t ExitPc = P.size() - 1;
    ASSERT_EQ(P.insn(ExitPc).InsnKind, Insn::Kind::Exit);
    const AbstractState &Final = Report.InStates[ExitPc];
    ASSERT_TRUE(Final.Reachable);

    // Run each accepted program on several random memories.
    for (unsigned Run = 0; Run != 10; ++Run) {
      std::vector<uint8_t> Mem(MemSize);
      for (uint8_t &Byte : Mem)
        Byte = static_cast<uint8_t>(Rng.next());
      Interpreter Interp(P, Mem);
      ExecResult R = Interp.run();
      ASSERT_TRUE(R.ok()) << "accepted program trapped: " << R.Message
                          << "\n"
                          << Report.toString(P);

      // Oracle 2: concrete register values inside abstract ones.
      for (unsigned RegNum = 0; RegNum != NumRegs; ++RegNum) {
        const AbsReg &Abs = Final.Regs[RegNum];
        if (!Abs.isScalar())
          continue;
        if (!Interp.initialized()[RegNum])
          continue;
        EXPECT_TRUE(Abs.value().contains(Interp.registers()[RegNum]))
            << "r" << RegNum << " = " << Interp.registers()[RegNum]
            << " escapes " << Abs.toString() << "\n"
            << Report.toString(P);
      }
    }
  }
  EXPECT_EQ(Accepted, 300u);
}

TEST(Differential, BoundsCheckedAccessPatternsSurviveFuzzing) {
  // A family of guard-then-access programs with randomized guard constants
  // and access sizes: the verifier's verdict must agree with concrete
  // reality (accepted => no trap on 20 random memories).
  Xoshiro256 Rng(0xFACE);
  unsigned Tested = 0;
  for (unsigned Iter = 0; Iter != 200; ++Iter) {
    unsigned Size = 1u << Rng.nextBelow(4);
    uint64_t Guard = Rng.nextBelow(40);
    Program P = ProgramBuilder()
                    .load(R3, R1, 0, 1)
                    .jmpImm(CompareOp::Gt, R3, static_cast<int64_t>(Guard),
                            "reject")
                    .alu(AluOp::Add, R3, R1)
                    .load(R0, R3, 0, Size)
                    .exit()
                    .label("reject")
                    .movImm(R0, 0)
                    .exit()
                    .build();
    VerifierReport Report = verifyProgram(P, MemSize);
    bool ReallySafe = Guard + Size <= MemSize;
    // The analyzer is sound: it must reject all actually-unsafe variants.
    if (!ReallySafe) {
      EXPECT_FALSE(Report.Accepted) << "guard=" << Guard << " size=" << Size;
    }
    // And precise enough to accept this simple safe pattern.
    if (ReallySafe) {
      EXPECT_TRUE(Report.Accepted) << "guard=" << Guard << " size=" << Size
                                   << "\n"
                                   << Report.toString(P);
    }
    if (!Report.Accepted)
      continue;
    ++Tested;
    for (unsigned Run = 0; Run != 20; ++Run) {
      std::vector<uint8_t> Mem(MemSize);
      for (uint8_t &Byte : Mem)
        Byte = static_cast<uint8_t>(Rng.next());
      ExecResult R = Interpreter(P, Mem).run();
      EXPECT_TRUE(R.ok()) << R.Message;
    }
  }
  EXPECT_GT(Tested, 0u);
}

} // namespace
