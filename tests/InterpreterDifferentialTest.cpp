//===- tests/InterpreterDifferentialTest.cpp - Decoded-vs-legacy lockstep -===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks DecodedProgram's determinism contract (bpf/Decoded.h): run() is
/// bit-identical to the legacy Interpreter on the same (program, memory,
/// step limit) -- Status, ReturnValue, ExitPc, FaultPc, Steps, Message,
/// init flags, initialized register values, and memory contents -- in
/// BOTH dispatch modes, over every generator profile (mutants included),
/// across reuse of one decoded program on many memories, and at step
/// limits that land inside fused instruction groups (which forces the
/// tied whole-iteration fast paths to fall back mid-group).
///
//===----------------------------------------------------------------------===//

#include "bpf/Decoded.h"

#include "service/ProgramGen.h"
#include "support/Random.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <vector>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

constexpr uint64_t MemSize = 32;

constexpr GenProfile AllProfiles[] = {
    GenProfile::AluMix,  GenProfile::BoundsCheck, GenProfile::PacketFilter,
    GenProfile::Loops,   GenProfile::MaskIdx,     GenProfile::Scaled,
    GenProfile::Mixed};

/// Deterministic input memory for (seed, program, run).
std::vector<uint8_t> makeMemory(uint64_t Seed, uint64_t Index, unsigned Run) {
  Xoshiro256 Rng(Seed ^ (0x9E3779B97F4A7C15ull * (Index + 1) + Run));
  std::vector<uint8_t> Mem(MemSize);
  for (uint8_t &Byte : Mem)
    Byte = static_cast<uint8_t>(Rng.next());
  return Mem;
}

/// Everything the contract promises to be identical after one execution.
struct Outcome {
  ExecResult R;
  std::array<uint64_t, NumRegs> Regs;
  std::array<bool, NumRegs> Inited;
  std::vector<uint8_t> Mem;
};

Outcome runLegacy(const Program &P, std::vector<uint8_t> Mem,
                  uint64_t StepLimit) {
  Outcome O;
  O.Mem = std::move(Mem);
  Interpreter Interp(P, O.Mem);
  O.R = Interp.run(StepLimit);
  O.Regs = Interp.registers();
  O.Inited = Interp.initialized();
  return O;
}

Outcome runDecoded(DecodedProgram &Exec, std::vector<uint8_t> Mem,
                   uint64_t StepLimit, DispatchMode Mode) {
  Outcome O;
  O.Mem = std::move(Mem);
  O.R = Exec.run(O.Mem, StepLimit, Mode);
  O.Regs = Exec.registers();
  O.Inited = Exec.initialized();
  return O;
}

/// Asserts \p Got matches \p Want bit-for-bit. Registers are compared
/// where initialized (an uninitialized register's storage is not part of
/// the machine state -- the init flags themselves are compared exactly).
void expectIdentical(const Outcome &Want, const Outcome &Got,
                     const Program &P, const std::string &What) {
  EXPECT_EQ(static_cast<int>(Want.R.St), static_cast<int>(Got.R.St))
      << What << "\n"
      << P.disassemble();
  EXPECT_EQ(Want.R.ReturnValue, Got.R.ReturnValue) << What;
  EXPECT_EQ(Want.R.ExitPc, Got.R.ExitPc) << What;
  EXPECT_EQ(Want.R.FaultPc, Got.R.FaultPc) << What;
  EXPECT_EQ(Want.R.Steps, Got.R.Steps) << What << "\n" << P.disassemble();
  EXPECT_EQ(Want.R.Message, Got.R.Message) << What;
  for (unsigned Reg = 0; Reg != NumRegs; ++Reg) {
    EXPECT_EQ(Want.Inited[Reg], Got.Inited[Reg]) << What << " r" << Reg;
    if (Want.Inited[Reg] && Got.Inited[Reg]) {
      EXPECT_EQ(Want.Regs[Reg], Got.Regs[Reg])
          << What << " r" << Reg << "\n"
          << P.disassemble();
    }
  }
  EXPECT_EQ(Want.Mem, Got.Mem) << What << " memory";
}

/// The profile-sweep body: \p Check runs per (program, memory) pair.
void sweepProfiles(uint64_t Programs, unsigned RunsPerProgram,
                   uint64_t StepLimit) {
  for (GenProfile Profile : AllProfiles) {
    for (uint64_t Seed : {uint64_t(1), uint64_t(7), uint64_t(2022)}) {
      GenOptions Opts;
      Opts.Profile = Profile;
      Opts.MemSize = MemSize;
      ProgramGen Gen(Seed, Opts);
      Program Predecessor;
      for (uint64_t Index = 0; Index != Programs; ++Index) {
        // Every 4th program is a mutant, like the fuzz campaign's stream:
        // mutation reaches shapes (narrowed sizes, shifted offsets) the
        // profiles never emit directly.
        Program P = (Index % 4 == 3) ? Gen.mutate(Predecessor) : Gen.next();
        Predecessor = P;
        std::string Error;
        std::optional<DecodedProgram> Exec = DecodedProgram::decode(P, Error);
        ASSERT_TRUE(Exec) << Error << "\n" << P.disassemble();
        for (unsigned Run = 0; Run != RunsPerProgram; ++Run) {
          std::vector<uint8_t> Mem = makeMemory(Seed, Index, Run);
          Outcome Legacy = runLegacy(P, Mem, StepLimit);
          std::string Tag =
              formatString("%s seed %llu program %llu run %u",
                           genProfileName(Profile),
                           static_cast<unsigned long long>(Seed),
                           static_cast<unsigned long long>(Index), Run);
          expectIdentical(Legacy,
                          runDecoded(*Exec, Mem, StepLimit,
                                     DispatchMode::Switch),
                          P, Tag + " [switch]");
          if (threadedDispatchAvailable())
            expectIdentical(Legacy,
                            runDecoded(*Exec, Mem, StepLimit,
                                       DispatchMode::Threaded),
                            P, Tag + " [threaded]");
        }
      }
    }
  }
}

TEST(InterpreterDifferential, AllProfilesBothModesMatchLegacy) {
  sweepProfiles(/*Programs=*/30, /*RunsPerProgram=*/3,
                /*StepLimit=*/1 << 16);
}

TEST(InterpreterDifferential, MidGroupStepLimitsStayBitIdentical) {
  // Step limits chosen to land on every boundary of the fused loop
  // groups (7- and 9-instruction iterations): the tied fast paths must
  // refuse the whole-iteration shortcut when the remaining budget is
  // short and fall back to slot-by-slot execution with exact Steps and
  // trap attribution.
  GenOptions Opts;
  Opts.Profile = GenProfile::Loops;
  Opts.MemSize = MemSize;
  ProgramGen Gen(2022, Opts);
  for (uint64_t Index = 0; Index != 20; ++Index) {
    Program P = Gen.next();
    std::string Error;
    std::optional<DecodedProgram> Exec = DecodedProgram::decode(P, Error);
    ASSERT_TRUE(Exec) << Error;
    for (uint64_t StepLimit : std::vector<uint64_t>{
             1, 2, 3, 5, 7, 8, 9, 10, 13, 20, 48, 49, 50}) {
      std::vector<uint8_t> Mem = makeMemory(99, Index, 0);
      Outcome Legacy = runLegacy(P, Mem, StepLimit);
      std::string Tag = formatString(
          "program %llu limit %llu", static_cast<unsigned long long>(Index),
          static_cast<unsigned long long>(StepLimit));
      expectIdentical(
          Legacy, runDecoded(*Exec, Mem, StepLimit, DispatchMode::Switch), P,
          Tag + " [switch]");
      if (threadedDispatchAvailable())
        expectIdentical(
            Legacy, runDecoded(*Exec, Mem, StepLimit, DispatchMode::Threaded),
            P, Tag + " [threaded]");
    }
  }
}

TEST(InterpreterDifferential, DecodeRefusesInvalidPrograms) {
  // No terminating exit: Program::validate refuses it, so decode() must
  // too (corpus replay feeds decode() unvalidated bytes), mirroring the
  // legacy interpreter's InvalidProgram status.
  Program Invalid(std::vector<Insn>{Insn::movImm(R0, 0)});
  ASSERT_TRUE(Invalid.validate().has_value());
  std::string Error;
  EXPECT_FALSE(DecodedProgram::decode(Invalid, Error));
  EXPECT_FALSE(Error.empty());
  std::vector<uint8_t> Mem(MemSize);
  EXPECT_EQ(static_cast<int>(Interpreter(Invalid, Mem).run().St),
            static_cast<int>(ExecResult::Status::InvalidProgram));
}

TEST(InterpreterDifferential, ReusedDecodedProgramMatchesFreshInterpreters) {
  // One decoded program, many runs: the reused stack must behave as if
  // freshly zeroed every time (the dirty-span re-zeroing optimization),
  // so each run is compared against a brand-new legacy interpreter.
  // Hunt for a program that actually spills to the stack.
  GenOptions Opts;
  Opts.Profile = GenProfile::Mixed;
  Opts.MemSize = MemSize;
  ProgramGen Gen(5, Opts);
  Program P;
  bool HasStore = false;
  for (unsigned Tries = 0; Tries != 500 && !HasStore; ++Tries) {
    P = Gen.next();
    for (const Insn &In : P)
      HasStore |= In.InsnKind == Insn::Kind::Store;
  }
  ASSERT_TRUE(HasStore) << "no storing program in 500 draws";

  std::string Error;
  std::optional<DecodedProgram> Exec = DecodedProgram::decode(P, Error);
  ASSERT_TRUE(Exec) << Error;
  for (unsigned Run = 0; Run != 10; ++Run) {
    std::vector<uint8_t> Mem = makeMemory(5, 0, Run);
    Outcome Legacy = runLegacy(P, Mem, 1 << 16);
    expectIdentical(Legacy, runDecoded(*Exec, Mem, 1 << 16,
                                       DispatchMode::Switch),
                    P, formatString("reuse run %u [switch]", Run));
    if (threadedDispatchAvailable())
      expectIdentical(Legacy, runDecoded(*Exec, Mem, 1 << 16,
                                         DispatchMode::Threaded),
                      P, formatString("reuse run %u [threaded]", Run));
  }
}

TEST(InterpreterDifferential, LoopsProfileDecodesToFusedHandlers) {
  // The throughput claim rests on decode-time fusion: loop bodies lower
  // into the fused opcode families above the base opcode space (Ja is
  // 107, Exit 108; everything above is fused, and the tie-specialized
  // whole-iteration variants sit at the very top -- the layout Decoded.cpp
  // pins with static_asserts). genLoop's fixed register roles guarantee
  // the tied variants apply, so their absence would mean the fast path
  // silently stopped engaging -- exactly the regression this canary is
  // for.
  GenOptions Opts;
  Opts.Profile = GenProfile::Loops;
  Opts.MemSize = MemSize;
  ProgramGen Gen(2022, Opts);
  bool AnyFused = false, AnyTied = false;
  for (uint64_t Index = 0; Index != 100; ++Index) {
    Program P = Gen.next();
    std::string Error;
    std::optional<DecodedProgram> Exec = DecodedProgram::decode(P, Error);
    ASSERT_TRUE(Exec) << Error;
    for (const DecodedProgram::DInsn &D : Exec->code()) {
      AnyFused |= D.Op > 108;
      AnyTied |= D.Op >= 201;
    }
  }
  EXPECT_TRUE(AnyFused);
  EXPECT_TRUE(AnyTied);
}

} // namespace
