//===- tests/MetricsTest.cpp - Metrics/trace core battery -----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability core's contract (support/Metrics.h): log2 histogram
/// buckets split exactly at powers of two, merged snapshots are exact and
/// deterministic under multi-threaded recording, the disabled recorder
/// touches nothing (no shards ever materialize), gauges track peaks, and
/// the Prometheus/JSON renderings round-trip the counts.
///
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace tnums;

namespace {

/// Every test runs with the recorder off afterwards so ordering between
/// tests (or single-process runs of the whole suite) cannot leak state.
class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override {
    disableProcessMetrics();
    MetricsRegistry::instance().resetForTest();
  }
  void TearDown() override {
    disableProcessMetrics();
    MetricsRegistry::instance().resetForTest();
  }
};

TEST_F(MetricsTest, BucketIndexSplitsAtPowersOfTwo) {
  EXPECT_EQ(MetricsRegistry::bucketIndex(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucketIndex(1), 1u);
  // Each power of two opens a new bucket; value 2^k - 1 stays in the
  // previous one.
  for (unsigned K = 1; K < 64; ++K) {
    uint64_t Pow = uint64_t(1) << K;
    EXPECT_EQ(MetricsRegistry::bucketIndex(Pow), K + 1) << "2^" << K;
    EXPECT_EQ(MetricsRegistry::bucketIndex(Pow - 1), K) << "2^" << K << "-1";
  }
  EXPECT_EQ(MetricsRegistry::bucketIndex(UINT64_MAX), 64u);
  // Inclusive upper bounds are 2^i - 1.
  EXPECT_EQ(MetricsRegistry::bucketUpperBound(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucketUpperBound(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucketUpperBound(4), 15u);
  EXPECT_EQ(MetricsRegistry::bucketUpperBound(64), UINT64_MAX);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  enableProcessMetrics();
  Histogram H("test_bucket_boundaries_ns");
  for (uint64_t Sample : {0ull, 1ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull,
                          1023ull, 1024ull})
    H.record(Sample);

  MetricsSnapshot Snap = MetricsRegistry::instance().snapshot();
  const MetricValue *V = Snap.find("test_bucket_boundaries_ns");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Kind, MetricKind::Histogram);
  EXPECT_EQ(V->Count, 10u);
  EXPECT_EQ(V->Sum, 0u + 1 + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
  ASSERT_EQ(V->Buckets.size(), MetricsHistogramBuckets);
  EXPECT_EQ(V->Buckets[0], 1u);  // {0}
  EXPECT_EQ(V->Buckets[1], 2u);  // {1, 1}
  EXPECT_EQ(V->Buckets[2], 2u);  // {2, 3}
  EXPECT_EQ(V->Buckets[3], 2u);  // {4, 7}
  EXPECT_EQ(V->Buckets[4], 1u);  // {8}
  EXPECT_EQ(V->Buckets[10], 1u); // {1023}
  EXPECT_EQ(V->Buckets[11], 1u); // {1024}
  for (unsigned I = 12; I < MetricsHistogramBuckets; ++I)
    EXPECT_EQ(V->Buckets[I], 0u) << "bucket " << I;
}

TEST_F(MetricsTest, MultiThreadMergeIsExactAndDeterministic) {
  enableProcessMetrics();
  Counter C("test_merge_total");
  Histogram H("test_merge_ns");

  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  for (unsigned Round = 0; Round < 2; ++Round) {
    MetricsRegistry::instance().resetForTest();
    std::vector<std::thread> Pool;
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back([&C, &H] {
        for (uint64_t I = 0; I < PerThread; ++I) {
          C.add(3);
          H.record(I & 1023);
        }
      });
    for (std::thread &T : Pool)
      T.join();

    MetricsSnapshot Snap = MetricsRegistry::instance().snapshot();
    const MetricValue *CV = Snap.find("test_merge_total");
    ASSERT_NE(CV, nullptr);
    EXPECT_EQ(CV->Count, 3 * Threads * PerThread) << "round " << Round;
    const MetricValue *HV = Snap.find("test_merge_ns");
    ASSERT_NE(HV, nullptr);
    EXPECT_EQ(HV->Count, Threads * PerThread) << "round " << Round;
    uint64_t SumPerThread = 0;
    for (uint64_t I = 0; I < PerThread; ++I)
      SumPerThread += I & 1023;
    EXPECT_EQ(HV->Sum, Threads * SumPerThread) << "round " << Round;
    uint64_t BucketTotal = 0;
    for (uint64_t B : HV->Buckets)
      BucketTotal += B;
    EXPECT_EQ(BucketTotal, HV->Count) << "round " << Round;
  }
}

TEST_F(MetricsTest, DisabledRecorderNeverCreatesShards) {
  ASSERT_FALSE(metricsEnabled());
  size_t ShardsBefore = MetricsRegistry::instance().debugShardCount();

  Counter C("test_disabled_total");
  Histogram H("test_disabled_ns");
  Gauge G("test_disabled_depth");
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < 4; ++T)
    Pool.emplace_back([&] {
      for (unsigned I = 0; I < 1000; ++I) {
        C.add();
        H.record(I);
        G.set(static_cast<int64_t>(I));
        ScopedTimer Timer(H);
      }
    });
  for (std::thread &T : Pool)
    T.join();

  // No recording thread materialized a shard, and nothing was counted.
  EXPECT_EQ(MetricsRegistry::instance().debugShardCount(), ShardsBefore);
  MetricsSnapshot Snap = MetricsRegistry::instance().snapshot();
  const MetricValue *CV = Snap.find("test_disabled_total");
  ASSERT_NE(CV, nullptr);
  EXPECT_EQ(CV->Count, 0u);
  const MetricValue *HV = Snap.find("test_disabled_ns");
  ASSERT_NE(HV, nullptr);
  EXPECT_EQ(HV->Count, 0u);
  const MetricValue *GV = Snap.find("test_disabled_depth");
  ASSERT_NE(GV, nullptr);
  EXPECT_EQ(GV->Value, 0);
  EXPECT_EQ(GV->Peak, 0);
}

TEST_F(MetricsTest, GaugeTracksValueAndPeak) {
  enableProcessMetrics();
  Gauge G("test_gauge_depth");
  G.set(5);
  G.add(3); // 8 -- the high-water mark.
  G.add(-6);
  G.set(1);

  MetricsSnapshot Snap = MetricsRegistry::instance().snapshot();
  const MetricValue *V = Snap.find("test_gauge_depth");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Kind, MetricKind::Gauge);
  EXPECT_EQ(V->Value, 1);
  EXPECT_EQ(V->Peak, 8);
}

TEST_F(MetricsTest, LabelsDistinguishSeries) {
  enableProcessMetrics();
  Counter Add("test_labeled_total", "op=\"add\"");
  Counter Mul("test_labeled_total", "op=\"mul\"");
  Add.add(2);
  Mul.add(5);

  MetricsSnapshot Snap = MetricsRegistry::instance().snapshot();
  const MetricValue *AV = Snap.find("test_labeled_total{op=\"add\"}");
  const MetricValue *MV = Snap.find("test_labeled_total{op=\"mul\"}");
  ASSERT_NE(AV, nullptr);
  ASSERT_NE(MV, nullptr);
  EXPECT_EQ(AV->Count, 2u);
  EXPECT_EQ(MV->Count, 5u);
  // Same name+labels+kind resolves to the same series, not a duplicate.
  Counter AddAgain("test_labeled_total", "op=\"add\"");
  EXPECT_EQ(AddAgain.id(), Add.id());
}

TEST_F(MetricsTest, PrometheusTextRendersEverySeries) {
  enableProcessMetrics();
  Counter C("test_promtext_total");
  Gauge G("test_promtext_depth");
  Histogram H("test_promtext_ns");
  C.add(7);
  G.set(3);
  H.record(5); // bucket 3, le="7".

  std::string Text = MetricsRegistry::instance().snapshot().toPrometheusText();
  EXPECT_NE(Text.find("# TYPE test_promtext_total counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("\ntest_promtext_total 7\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE test_promtext_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(Text.find("\ntest_promtext_depth 3\n"), std::string::npos);
  EXPECT_NE(Text.find("\ntest_promtext_depth_peak 3\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE test_promtext_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(Text.find("test_promtext_ns_bucket{le=\"7\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("test_promtext_ns_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("\ntest_promtext_ns_sum 5\n"), std::string::npos);
  EXPECT_NE(Text.find("\ntest_promtext_ns_count 1\n"), std::string::npos);
  EXPECT_NE(Text.find("# build_info {"), std::string::npos);
}

TEST_F(MetricsTest, SnapshotJsonEmbedsCounts) {
  enableProcessMetrics();
  Counter C("test_json_total");
  C.add(11);
  std::string Json = MetricsRegistry::instance().snapshot().toJson();
  EXPECT_NE(Json.find("\"test_json_total\":11"), std::string::npos);
  EXPECT_NE(Json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\":{"), std::string::npos);
}

TEST_F(MetricsTest, ScopedTimerRecordsOnlyWhenEnabled) {
  enableProcessMetrics();
  Histogram H("test_scoped_ns");
  { ScopedTimer T(H); }
  MetricsSnapshot Snap = MetricsRegistry::instance().snapshot();
  const MetricValue *V = Snap.find("test_scoped_ns");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Count, 1u);

  disableProcessMetrics();
  { ScopedTimer T(H); }
  Snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(Snap.find("test_scoped_ns")->Count, 1u);
}

TEST_F(MetricsTest, BuildInfoIsPopulated) {
  const BuildInfo &B = buildInfo();
  EXPECT_FALSE(B.Compiler.empty());
  EXPECT_TRUE(B.BuildType == "release" || B.BuildType == "debug");
  EXPECT_FALSE(B.SimdDispatch.empty());

  std::string Json = buildInfoJson();
  EXPECT_NE(Json.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(Json.find("\"build_type\":\""), std::string::npos);
  EXPECT_NE(Json.find("\"simd_dispatch\":\""), std::string::npos);
  EXPECT_NE(Json.find("\"computed_goto\":"), std::string::npos);
  EXPECT_FALSE(buildInfoString().empty());
}

TEST_F(MetricsTest, JsonLineBuilderEscapes) {
  JsonLineBuilder B;
  B.field("event", "reply\"quoted\"")
      .field("req", uint64_t(42))
      .field("ok", true)
      .field("secs", 1.5);
  std::string Line = B.str();
  EXPECT_EQ(Line.find("{\"event\":\"reply\\\"quoted\\\"\",\"req\":42,"
                      "\"ok\":true,\"secs\":1.500000}"),
            0u);
  EXPECT_EQ(jsonEscape("a\nb\\c"), "a\\nb\\\\c");
}

} // namespace
