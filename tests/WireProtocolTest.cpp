//===- tests/WireProtocolTest.cpp - tnumsd wire protocol battery ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks the robustness contract of the daemon protocol (WireProtocol.h):
/// every payload codec round-trips exactly; the canonical request
/// encoding is a faithful equality witness; and -- the fuzz battery -- a
/// FrameDecoder or payload decoder fed truncated, oversized, bit-flipped,
/// or arbitrary seeded-random bytes must either produce a valid frame or
/// report a protocol error. It must never crash, hang, over-read (the
/// ASan/UBSan CI leg runs this same battery sanitized), or yield a
/// partial verdict.
///
//===----------------------------------------------------------------------===//

#include "service/ProgramGen.h"
#include "service/WireProtocol.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

constexpr uint64_t MemSize = 32;

/// SplitMix64: seeded, stdlib-free randomness for the fuzz legs.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }
  uint64_t below(uint64_t Bound) { return Bound ? next() % Bound : 0; }
};

std::vector<VerifyRequest> makeRequests(uint64_t Seed, uint64_t Count) {
  GenOptions Opts;
  Opts.Profile = GenProfile::Mixed;
  Opts.MemSize = MemSize;
  ProgramGen Gen(Seed, Opts);
  std::vector<VerifyRequest> Requests;
  for (uint64_t I = 0; I != Count; ++I) {
    VerifyRequest Request;
    Request.Prog = Gen.next();
    Request.MemSize = MemSize;
    Requests.push_back(std::move(Request));
  }
  return Requests;
}

bool sameInsn(const Insn &A, const Insn &B) {
  return A.InsnKind == B.InsnKind && A.Alu == B.Alu && A.Cmp == B.Cmp &&
         A.Dst == B.Dst && A.Src == B.Src && A.UsesImm == B.UsesImm &&
         A.Imm == B.Imm && A.Offset == B.Offset && A.Size == B.Size &&
         A.Is32 == B.Is32;
}

bool sameRequest(const VerifyRequest &A, const VerifyRequest &B) {
  if (A.MemSize != B.MemSize ||
      A.AnalyzerOpts.WideningThreshold != B.AnalyzerOpts.WideningThreshold ||
      A.AnalyzerOpts.MaxInsnVisits != B.AnalyzerOpts.MaxInsnVisits ||
      A.Prog.size() != B.Prog.size())
    return false;
  for (size_t I = 0; I != A.Prog.size(); ++I)
    if (!sameInsn(A.Prog.insn(I), B.Prog.insn(I)))
      return false;
  return true;
}

/// Drains every complete frame; returns frames popped, stops on Corrupt.
/// The bounded loop doubles as the no-hang assertion.
size_t drainDecoder(FrameDecoder &Decoder, bool &Corrupt) {
  Frame Out;
  WireError Code;
  std::string Error;
  size_t Popped = 0;
  for (size_t Guard = 0; Guard != 1u << 16; ++Guard) {
    FrameDecoder::Status Status = Decoder.next(Out, Code, Error);
    if (Status == FrameDecoder::Status::Ready) {
      EXPECT_LE(Out.Payload.size(), MaxPayloadBytes);
      ++Popped;
      continue;
    }
    Corrupt = Status == FrameDecoder::Status::Corrupt;
    if (Corrupt) {
      EXPECT_FALSE(Error.empty());
    }
    return Popped;
  }
  ADD_FAILURE() << "decoder did not converge";
  return Popped;
}

//===----------------------------------------------------------------------===//
// Round-trips
//===----------------------------------------------------------------------===//

TEST(WireProtocol, CanonicalRequestRoundTripsExactly) {
  for (VerifyRequest &Request : makeRequests(7, 200)) {
    Request.AnalyzerOpts.WideningThreshold = 5;
    Request.AnalyzerOpts.MaxInsnVisits = 100000;
    std::string Bytes = encodeRequestCanonical(Request);
    std::string Error;
    std::optional<VerifyRequest> Decoded =
        decodeRequestCanonical(Bytes, Error);
    ASSERT_TRUE(Decoded) << Error;
    EXPECT_TRUE(sameRequest(Request, *Decoded));
    // Equality witness: re-encoding the decode reproduces the bytes.
    EXPECT_EQ(Bytes, encodeRequestCanonical(*Decoded));
  }
}

TEST(WireProtocol, PayloadCodecsRoundTrip) {
  std::string Error;

  HelloMsg Hello;
  Hello.Tenant = "tenant-a";
  std::optional<HelloMsg> Hello2 = decodeHello(encodeHello(Hello), Error);
  ASSERT_TRUE(Hello2) << Error;
  EXPECT_EQ(Hello2->Tenant, "tenant-a");

  HelloAckMsg Ack;
  Ack.VersionFingerprint = 0xDEADBEEFCAFEF00Dull;
  std::optional<HelloAckMsg> Ack2 = decodeHelloAck(encodeHelloAck(Ack), Error);
  ASSERT_TRUE(Ack2) << Error;
  EXPECT_EQ(Ack2->VersionFingerprint, Ack.VersionFingerprint);
  EXPECT_EQ(Ack2->MaxPayload, MaxPayloadBytes);
  EXPECT_EQ(Ack2->Version, ProtocolVersion);

  SubmitMsg Submit;
  Submit.Priority = 3;
  Submit.Request = makeRequests(9, 1).front();
  std::optional<SubmitMsg> Submit2 = decodeSubmit(encodeSubmit(Submit), Error);
  ASSERT_TRUE(Submit2) << Error;
  EXPECT_EQ(Submit2->Priority, 3);
  EXPECT_TRUE(sameRequest(Submit.Request, Submit2->Request));

  VerdictMsg Verdict;
  Verdict.Accepted = false;
  Verdict.CacheHit = true;
  Verdict.InsnVisits = 12345;
  Verdict.StructuralError = "";
  Violation Bad;
  Bad.Pc = 7;
  Bad.Message = "r1 out of bounds";
  Verdict.Violations.push_back(Bad);
  std::optional<VerdictMsg> Verdict2 =
      decodeVerdict(encodeVerdict(Verdict), Error);
  ASSERT_TRUE(Verdict2) << Error;
  EXPECT_EQ(Verdict2->Accepted, false);
  EXPECT_EQ(Verdict2->CacheHit, true);
  EXPECT_EQ(Verdict2->InsnVisits, 12345u);
  ASSERT_EQ(Verdict2->Violations.size(), 1u);
  EXPECT_EQ(Verdict2->Violations[0].Pc, 7u);
  EXPECT_EQ(Verdict2->Violations[0].Message, "r1 out of bounds");

  BusyMsg Busy;
  Busy.Reason = 1;
  Busy.PendingDepth = 42;
  std::optional<BusyMsg> Busy2 = decodeBusy(encodeBusy(Busy), Error);
  ASSERT_TRUE(Busy2) << Error;
  EXPECT_EQ(Busy2->Reason, 1);
  EXPECT_EQ(Busy2->PendingDepth, 42u);

  ErrorMsg Err;
  Err.Code = WireError::HelloRequired;
  Err.Message = "first frame must be Hello";
  std::optional<ErrorMsg> Err2 = decodeError(encodeError(Err), Error);
  ASSERT_TRUE(Err2) << Error;
  EXPECT_EQ(Err2->Code, WireError::HelloRequired);
  EXPECT_EQ(Err2->Message, "first frame must be Hello");

  StatsReplyMsg Stats;
  Stats.Submits = 10;
  Stats.Analyses = 4;
  Stats.CacheDiskHits = 6;
  std::optional<StatsReplyMsg> Stats2 =
      decodeStatsReply(encodeStatsReply(Stats), Error);
  ASSERT_TRUE(Stats2) << Error;
  EXPECT_EQ(Stats2->Submits, 10u);
  EXPECT_EQ(Stats2->Analyses, 4u);
  EXPECT_EQ(Stats2->cacheHits(), 6u);
}

TEST(WireProtocol, VerdictResultConversionRoundTrips) {
  VerifyResult Result;
  Result.Done = true;
  Result.Accepted = false;
  Result.InsnVisits = 999;
  Violation Bad;
  Bad.Pc = 3;
  Bad.Message = "oops";
  Result.Violations.push_back(Bad);
  VerifyResult Back = verdictToResult(resultToVerdict(Result, false));
  EXPECT_TRUE(Back.Done);
  EXPECT_EQ(Back.Accepted, Result.Accepted);
  EXPECT_EQ(Back.InsnVisits, Result.InsnVisits);
  ASSERT_EQ(Back.Violations.size(), 1u);
  EXPECT_EQ(Back.Violations[0].Message, "oops");
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST(WireProtocol, FrameDecoderReassemblesByteByByte) {
  std::string Stream = encodeFrame(MsgType::Hello, 17, encodeHello({"t"})) +
                       encodeFrame(MsgType::StatsQuery, 18, "");
  FrameDecoder Decoder;
  std::vector<Frame> Frames;
  Frame Out;
  WireError Code;
  std::string Error;
  for (char Byte : Stream) {
    Decoder.feed(&Byte, 1);
    while (Decoder.next(Out, Code, Error) == FrameDecoder::Status::Ready)
      Frames.push_back(Out);
  }
  ASSERT_EQ(Frames.size(), 2u);
  EXPECT_EQ(Frames[0].Type, MsgType::Hello);
  EXPECT_EQ(Frames[0].RequestId, 17u);
  EXPECT_EQ(Frames[1].Type, MsgType::StatsQuery);
  EXPECT_EQ(Frames[1].RequestId, 18u);
  EXPECT_EQ(Decoder.bufferedBytes(), 0u);
}

TEST(WireProtocol, FrameDecoderRejectsHeaderViolations) {
  struct Case {
    const char *Name;
    size_t Offset; ///< Byte to corrupt in a valid header.
    char Value;
    WireError Expect;
  };
  const Case Cases[] = {
      {"magic", 0, 0x00, WireError::BadMagic},
      {"version", 4, 0x7F, WireError::BadVersion},
      {"type", 5, 0x7F, WireError::BadType},
      {"type-zero", 5, 0x00, WireError::BadType},
      {"reserved", 6, 0x01, WireError::BadMagic},
  };
  for (const Case &C : Cases) {
    std::string Bytes = encodeFrame(MsgType::Hello, 1, encodeHello({"x"}));
    Bytes[C.Offset] = C.Value;
    FrameDecoder Decoder;
    Decoder.feed(Bytes.data(), Bytes.size());
    Frame Out;
    WireError Code;
    std::string Error;
    EXPECT_EQ(Decoder.next(Out, Code, Error), FrameDecoder::Status::Corrupt)
        << C.Name;
    EXPECT_EQ(Code, C.Expect) << C.Name;
    // Corrupt latches: more input cannot resurrect the stream.
    Decoder.feed(Bytes.data(), Bytes.size());
    EXPECT_EQ(Decoder.next(Out, Code, Error), FrameDecoder::Status::Corrupt)
        << C.Name;
  }
}

TEST(WireProtocol, FrameDecoderRejectsOversizedLength) {
  std::string Bytes = encodeFrame(MsgType::Submit, 1, "");
  uint32_t Huge = MaxPayloadBytes + 1;
  for (unsigned Byte = 0; Byte != 4; ++Byte)
    Bytes[16 + Byte] = static_cast<char>(Huge >> (8 * Byte));
  FrameDecoder Decoder;
  Decoder.feed(Bytes.data(), Bytes.size());
  Frame Out;
  WireError Code;
  std::string Error;
  EXPECT_EQ(Decoder.next(Out, Code, Error), FrameDecoder::Status::Corrupt);
  EXPECT_EQ(Code, WireError::OversizedFrame);
}

TEST(WireProtocol, TruncatedFrameIsNeedMoreNeverPartial) {
  std::string Bytes =
      encodeFrame(MsgType::Submit, 5,
                  encodeSubmit({2, makeRequests(3, 1).front()}));
  for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
    FrameDecoder Decoder;
    Decoder.feed(Bytes.data(), Cut);
    Frame Out;
    WireError Code;
    std::string Error;
    EXPECT_EQ(Decoder.next(Out, Code, Error), FrameDecoder::Status::NeedMore)
        << "cut at " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Fuzz battery (seeded, deterministic; the sanitizer leg re-runs these)
//===----------------------------------------------------------------------===//

TEST(WireProtocolFuzz, BitFlippedFramesNeverYieldPartialVerdicts) {
  Rng Random(0xF1A5);
  std::vector<VerifyRequest> Requests = makeRequests(41, 32);
  for (unsigned Round = 0; Round != 400; ++Round) {
    SubmitMsg Submit;
    Submit.Priority = static_cast<uint8_t>(Random.below(4));
    Submit.Request = Requests[Random.below(Requests.size())];
    std::string Bytes =
        encodeFrame(MsgType::Submit, Random.next(), encodeSubmit(Submit));
    // Flip 1-4 random bits.
    unsigned Flips = 1 + unsigned(Random.below(4));
    for (unsigned F = 0; F != Flips; ++F)
      Bytes[Random.below(Bytes.size())] ^=
          static_cast<char>(1u << Random.below(8));

    FrameDecoder Decoder;
    Decoder.feed(Bytes.data(), Bytes.size());
    Frame Out;
    WireError Code;
    std::string Error;
    FrameDecoder::Status Status = Decoder.next(Out, Code, Error);
    if (Status == FrameDecoder::Status::Ready) {
      // Header survived; the payload decoder must either fully decode or
      // cleanly refuse -- a flipped length that desyncs fields cannot
      // produce a half-request.
      std::string DecodeError;
      std::optional<SubmitMsg> Decoded = decodeSubmit(Out.Payload, DecodeError);
      if (Decoded) {
        EXPECT_TRUE(DecodeError.empty());
        EXPECT_EQ(encodeSubmit(*Decoded).size(), Out.Payload.size());
      } else {
        EXPECT_FALSE(DecodeError.empty());
      }
    } else if (Status == FrameDecoder::Status::Corrupt) {
      EXPECT_NE(Code, WireError::None);
    }
  }
}

TEST(WireProtocolFuzz, ArbitraryStreamsNeverCrashOrHang) {
  Rng Random(0xBEEF);
  for (unsigned Round = 0; Round != 200; ++Round) {
    FrameDecoder Decoder;
    // A few chunks of garbage, occasionally seeded with a valid prefix so
    // the decoder reaches the deeper header states.
    std::string Stream;
    if (Random.below(2) == 0)
      Stream = encodeFrame(MsgType::Hello, 1, encodeHello({"x"}));
    size_t Garbage = 1 + Random.below(256);
    for (size_t I = 0; I != Garbage; ++I)
      Stream.push_back(static_cast<char>(Random.next()));
    size_t Offset = 0;
    bool Corrupt = false;
    while (Offset < Stream.size() && !Corrupt) {
      size_t Chunk = 1 + Random.below(64);
      Chunk = std::min(Chunk, Stream.size() - Offset);
      Decoder.feed(Stream.data() + Offset, Chunk);
      Offset += Chunk;
      drainDecoder(Decoder, Corrupt);
    }
    // Either the stream desynced (Corrupt latched) or the tail is a
    // partial frame (NeedMore) -- both are clean outcomes.
  }
}

TEST(WireProtocolFuzz, TruncatedPayloadsAlwaysRefused) {
  std::vector<VerifyRequest> Requests = makeRequests(43, 8);
  for (const VerifyRequest &Request : Requests) {
    SubmitMsg Submit;
    Submit.Priority = 1;
    Submit.Request = Request;
    std::string Payload = encodeSubmit(Submit);
    for (size_t Cut = 0; Cut != Payload.size(); ++Cut) {
      std::string Error;
      EXPECT_FALSE(decodeSubmit(Payload.substr(0, Cut), Error))
          << "truncated payload decoded at " << Cut << "/" << Payload.size();
      EXPECT_FALSE(Error.empty());
    }
    // Trailing garbage is just as malformed as truncation.
    std::string Error;
    EXPECT_FALSE(decodeSubmit(Payload + '\0', Error));
    EXPECT_FALSE(decodeSubmit(Payload + Payload, Error));
  }
}

TEST(WireProtocolFuzz, RandomBytesIntoEveryDecoder) {
  Rng Random(0x5EED);
  for (unsigned Round = 0; Round != 500; ++Round) {
    std::string Bytes;
    size_t Size = Random.below(128);
    for (size_t I = 0; I != Size; ++I)
      Bytes.push_back(static_cast<char>(Random.next()));
    std::string Error;
    // None of these may crash, hang, or over-read; outcomes are checked
    // only for the decode/refuse dichotomy.
    if (auto Decoded = decodeRequestCanonical(Bytes, Error)) {
      EXPECT_EQ(encodeRequestCanonical(*Decoded), Bytes);
    }
    (void)decodeHello(Bytes, Error);
    (void)decodeHelloAck(Bytes, Error);
    (void)decodeSubmit(Bytes, Error);
    (void)decodeVerdict(Bytes, Error);
    (void)decodeBusy(Bytes, Error);
    (void)decodeError(Bytes, Error);
    (void)decodeStatsReply(Bytes, Error);
  }
}

TEST(WireProtocol, CanonicalRejectsOutOfRangeEnums) {
  VerifyRequest Request = makeRequests(11, 1).front();
  std::string Bytes = encodeRequestCanonical(Request);
  ASSERT_GE(Request.Prog.size(), 1u);
  // Layout: u64 MemSize, u64 Widening, u64 MaxVisits, u32 count, then the
  // first insn starts with its kind byte.
  size_t KindOffset = 8 + 8 + 8 + 4;
  std::string Broken = Bytes;
  Broken[KindOffset] = 0x7F; // No such Insn::Kind.
  std::string Error;
  EXPECT_FALSE(decodeRequestCanonical(Broken, Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
