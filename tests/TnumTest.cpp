//===- tests/TnumTest.cpp - Tnum value/lattice unit tests -----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/Tnum.h"
#include "tnum/TnumEnum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace tnums;

namespace {

TEST(TnumBasics, DefaultIsConstantZero) {
  Tnum T;
  EXPECT_TRUE(T.isConstant());
  EXPECT_EQ(T.constantValue(), 0u);
  EXPECT_TRUE(T.contains(0));
  EXPECT_FALSE(T.contains(1));
}

TEST(TnumBasics, ConstantFactory) {
  Tnum T = Tnum::makeConstant(0xdeadbeef);
  EXPECT_TRUE(T.isWellFormed());
  EXPECT_TRUE(T.isConstant());
  EXPECT_EQ(T.constantValue(), 0xdeadbeefu);
  EXPECT_EQ(T.concretizationSize(), 1u);
}

TEST(TnumBasics, UnknownFactory) {
  Tnum T = Tnum::makeUnknown(8);
  EXPECT_TRUE(T.isUnknown(8));
  EXPECT_FALSE(T.isUnknown(16));
  EXPECT_EQ(T.numUnknownBits(), 8u);
  EXPECT_EQ(T.concretizationSize(), 256u);
  for (uint64_t V = 0; V != 256; ++V)
    EXPECT_TRUE(T.contains(V));
  EXPECT_FALSE(T.contains(256));
}

TEST(TnumBasics, FullWidthUnknownSaturatesSize) {
  Tnum T = Tnum::makeUnknown(64);
  EXPECT_EQ(T.concretizationSize(), ~uint64_t(0));
  EXPECT_EQ(T.concretizationSizeLog2(), 64u);
}

TEST(TnumBasics, BottomIsIllFormed) {
  Tnum B = Tnum::makeBottom();
  EXPECT_TRUE(B.isBottom());
  EXPECT_FALSE(B.isWellFormed());
  EXPECT_FALSE(B.contains(0));
  EXPECT_EQ(B.concretizationSize(), 0u);
  // Eqn. 4: any pair with value & mask != 0 denotes bottom.
  EXPECT_TRUE(Tnum(1, 1).isBottom());
  EXPECT_TRUE(Tnum(0b101, 0b100).isBottom());
}

TEST(TnumBasics, TritAccessors) {
  // 01u0: bit3=0, bit2=1, bit1=µ, bit0=0.
  Tnum T = *Tnum::parse("01u0");
  EXPECT_EQ(T.tritAt(0), Trit::Zero);
  EXPECT_EQ(T.tritAt(1), Trit::Unknown);
  EXPECT_EQ(T.tritAt(2), Trit::One);
  EXPECT_EQ(T.tritAt(3), Trit::Zero);
}

TEST(TnumBasics, MinMaxMember) {
  Tnum T = *Tnum::parse("1u0u");
  EXPECT_EQ(T.minMember(), 0b1000u);
  EXPECT_EQ(T.maxMember(), 0b1101u);
}

TEST(TnumParse, RoundTrips) {
  for (const char *Text : {"0", "1", "u", "01u0", "uuuu", "10u1u0"}) {
    std::optional<Tnum> T = Tnum::parse(Text);
    ASSERT_TRUE(T.has_value()) << Text;
    EXPECT_EQ(T->toString(static_cast<unsigned>(std::string(Text).size())),
              Text);
  }
}

TEST(TnumParse, AcceptsAlternateUnknownChars) {
  EXPECT_EQ(*Tnum::parse("0x1"), *Tnum::parse("0u1"));
  EXPECT_EQ(*Tnum::parse("0X1"), *Tnum::parse("0U1"));
}

TEST(TnumParse, RejectsBadInput) {
  EXPECT_FALSE(Tnum::parse("").has_value());
  EXPECT_FALSE(Tnum::parse("012").has_value());
  EXPECT_FALSE(Tnum::parse("01 0").has_value());
  EXPECT_FALSE(Tnum::parse(std::string(65, '0')).has_value());
}

TEST(TnumParse, PaperIntroExample) {
  // The paper's intro: 4-bit x = 01µ0 concretizes to {0100, 0110}.
  Tnum T = *Tnum::parse("01u0");
  EXPECT_TRUE(T.contains(0b0100));
  EXPECT_TRUE(T.contains(0b0110));
  EXPECT_EQ(T.concretizationSize(), 2u);
  EXPECT_LE(T.maxMember(), 8u); // The analyzer infers x <= 8.
}

TEST(TnumToString, BottomRendering) {
  EXPECT_EQ(Tnum::makeBottom().toString(4), "<bottom>");
}

TEST(TnumToString, VmRendering) {
  EXPECT_EQ(Tnum(0x10, 0x2).toVmString(),
            "(v=0x0000000000000010, m=0x0000000000000002)");
}

TEST(TnumOrder, ReflexiveAndBottomLeast) {
  for (const Tnum &T : allWellFormedTnums(3)) {
    EXPECT_TRUE(T.isSubsetOf(T));
    EXPECT_TRUE(Tnum::makeBottom().isSubsetOf(T));
    EXPECT_FALSE(T.isSubsetOf(Tnum::makeBottom()));
  }
}

TEST(TnumOrder, AgreesWithConcretization) {
  // P ⊑A Q iff gamma(P) ⊆ gamma(Q), checked exhaustively at width 4.
  std::vector<Tnum> Universe = allWellFormedTnums(4);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      bool ConcreteSubset = true;
      forEachMember(P, [&](uint64_t X) {
        if (!Q.contains(X))
          ConcreteSubset = false;
      });
      EXPECT_EQ(P.isSubsetOf(Q), ConcreteSubset)
          << "P=" << P.toString(4) << " Q=" << Q.toString(4);
    }
  }
}

TEST(TnumLattice, JoinIsLeastUpperBound) {
  std::vector<Tnum> Universe = allWellFormedTnums(3);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      Tnum J = P.joinWith(Q);
      EXPECT_TRUE(P.isSubsetOf(J));
      EXPECT_TRUE(Q.isSubsetOf(J));
      // Least: no strictly smaller upper bound exists.
      for (const Tnum &R : Universe)
        if (P.isSubsetOf(R) && Q.isSubsetOf(R)) {
          EXPECT_TRUE(J.isSubsetOf(R));
        }
    }
  }
}

TEST(TnumLattice, MeetIsGreatestLowerBound) {
  std::vector<Tnum> Universe = allWellFormedTnums(3);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      Tnum M = P.meetWith(Q);
      EXPECT_TRUE(M.isSubsetOf(P));
      EXPECT_TRUE(M.isSubsetOf(Q));
      for (const Tnum &R : Universe)
        if (R.isSubsetOf(P) && R.isSubsetOf(Q)) {
          EXPECT_TRUE(R.isSubsetOf(M));
        }
    }
  }
}

TEST(TnumLattice, MeetDetectsContradiction) {
  Tnum A = *Tnum::parse("10u");
  Tnum B = *Tnum::parse("11u");
  EXPECT_TRUE(A.meetWith(B).isBottom());
  EXPECT_EQ(A.meetWith(B), Tnum::makeBottom());
}

TEST(TnumLattice, JoinConcretizationCover) {
  // gamma(P) ∪ gamma(Q) ⊆ gamma(P ∨ Q), exhaustively at width 4.
  std::vector<Tnum> Universe = allWellFormedTnums(4);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      Tnum J = P.joinWith(Q);
      forEachMember(P, [&](uint64_t X) { EXPECT_TRUE(J.contains(X)); });
      forEachMember(Q, [&](uint64_t X) { EXPECT_TRUE(J.contains(X)); });
    }
  }
}

TEST(TnumRange, CoversRangeExactlyWhenAligned) {
  // [8, 11] shares the prefix 10xx: tnum 10uu is exact.
  Tnum T = Tnum::makeRange(8, 11);
  EXPECT_EQ(T, *Tnum::parse("10uu"));
}

TEST(TnumRange, SoundOverApproximation) {
  for (uint64_t Min = 0; Min != 32; ++Min)
    for (uint64_t Max = Min; Max != 32; ++Max) {
      Tnum T = Tnum::makeRange(Min, Max);
      for (uint64_t V = Min; V <= Max; ++V)
        EXPECT_TRUE(T.contains(V))
            << "range [" << Min << ", " << Max << "] value " << V;
    }
}

TEST(TnumRange, ConstantRange) {
  EXPECT_EQ(Tnum::makeRange(42, 42), Tnum::makeConstant(42));
}

TEST(TnumRange, FullRangeIsUnknown) {
  EXPECT_EQ(Tnum::makeRange(0, ~uint64_t(0)), Tnum::makeUnknown());
}

TEST(TnumEnumeration, CountsMatch3PowN) {
  EXPECT_EQ(numWellFormedTnums(1), 3u);
  EXPECT_EQ(numWellFormedTnums(2), 9u);
  EXPECT_EQ(numWellFormedTnums(8), 6561u);
  for (unsigned W = 1; W <= 6; ++W)
    EXPECT_EQ(allWellFormedTnums(W).size(), numWellFormedTnums(W));
}

TEST(TnumEnumeration, AllDistinctAndWellFormed) {
  std::vector<Tnum> Universe = allWellFormedTnums(5);
  std::set<std::pair<uint64_t, uint64_t>> Seen;
  for (const Tnum &T : Universe) {
    EXPECT_TRUE(T.isWellFormed());
    EXPECT_TRUE(T.fitsWidth(5));
    EXPECT_TRUE(Seen.emplace(T.value(), T.mask()).second);
  }
}

TEST(TnumEnumeration, MembersMatchContains) {
  Tnum T = *Tnum::parse("u01u");
  std::vector<uint64_t> Members = allMembers(T);
  EXPECT_EQ(Members.size(), 4u);
  for (uint64_t M : Members)
    EXPECT_TRUE(T.contains(M));
  EXPECT_TRUE(std::is_sorted(Members.begin(), Members.end()));
}

TEST(TnumAbstraction, MatchesPaperDefinition) {
  // alpha({1,2,3}) at width 2 is µµ (Fig. 1 example (i)).
  EXPECT_EQ(abstractOf({1, 2, 3}), Tnum::makeUnknown(2));
  // alpha({2,3}) is 1µ (example (ii)); gamma(alpha({2,3})) == {2,3} exactly.
  Tnum T = abstractOf({2, 3});
  EXPECT_EQ(T, *Tnum::parse("1u"));
  EXPECT_EQ(T.concretizationSize(), 2u);
}

TEST(TnumAbstraction, GaloisExtensive) {
  // C ⊆ gamma(alpha(C)) for all subsets C of width-3 values.
  for (uint64_t Bits = 1; Bits != 256; ++Bits) {
    std::vector<uint64_t> Set;
    for (uint64_t V = 0; V != 8; ++V)
      if ((Bits >> V) & 1)
        Set.push_back(V);
    Tnum T = abstractOf(Set);
    for (uint64_t V : Set)
      EXPECT_TRUE(T.contains(V));
  }
}

TEST(TnumAbstraction, GaloisReductive) {
  // alpha(gamma(T)) == T for every well-formed tnum (α∘γ reductive holds
  // with equality in this domain; supplementary Property G4).
  for (const Tnum &T : allWellFormedTnums(5))
    EXPECT_EQ(abstractOf(allMembers(T)), T);
}

TEST(TnumAbstraction, AlphaMonotonic) {
  // C1 ⊆ C2 => alpha(C1) ⊑ alpha(C2); sampled over nested value sets.
  std::vector<uint64_t> C1{5, 9};
  std::vector<uint64_t> C2{5, 9, 12};
  std::vector<uint64_t> C3{5, 9, 12, 0};
  EXPECT_TRUE(abstractOf(C1).isSubsetOf(abstractOf(C2)));
  EXPECT_TRUE(abstractOf(C2).isSubsetOf(abstractOf(C3)));
}

} // namespace
