//===- examples/bpf_bounds_check.cpp - The paper's intro example ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's §I scenario end to end: a BPF program reads an
/// untrusted byte, masks it so its abstract value becomes a tnum with a
/// provable upper bound, and uses it as an offset into a 16-byte memory
/// region. The verifier (abstract interpreter over the tnum + range
/// reduced product) proves the access in-bounds and accepts. The same
/// program without the mask is rejected, and the concrete interpreter
/// confirms both verdicts.
///
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"
#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"

#include <cstdio>

using namespace tnums;
using namespace tnums::bpf;

static Program buildProgram(bool WithMask) {
  ProgramBuilder B;
  B.load(R3, R1, 0, 1); // r3 = untrusted byte from the context region
  if (WithMask)
    B.aluImm(AluOp::And, R3, 6); // r3's tnum becomes 00000uu0: r3 <= 6
  B.alu(AluOp::Add, R3, R1);     // r3 = mem + offset
  B.load(R0, R3, 0, 8);          // 8-byte read at the computed offset
  B.exit();
  return B.build();
}

int main() {
  constexpr uint64_t MemSize = 16;

  for (bool WithMask : {true, false}) {
    Program P = buildProgram(WithMask);
    std::printf("== program %s mask ==\n", WithMask ? "with" : "without");
    VerifierReport Report = verifyProgram(P, MemSize);
    std::printf("%s\n", Report.toString(P).c_str());

    if (Report.Accepted) {
      // Demonstrate the accepted program running on a concrete memory.
      std::vector<uint8_t> Mem(MemSize, 0);
      Mem[0] = 0xFF; // Worst-case untrusted byte: 0xFF & 6 == 6.
      Mem[6] = 0x2A;
      ExecResult R = Interpreter(P, Mem).run();
      std::printf("concrete run: %s, r0 = 0x%llx\n\n",
                  R.ok() ? "ok" : R.Message.c_str(),
                  static_cast<unsigned long long>(R.ReturnValue));
    } else {
      // Show that the rejection is justified: the unmasked program really
      // does walk out of bounds on a hostile input.
      std::vector<uint8_t> Mem(MemSize, 0);
      Mem[0] = 0xFF;
      ExecResult R = Interpreter(P, Mem).run();
      std::printf("concrete run on hostile input: %s\n\n",
                  R.ok() ? "ok (!)" : R.Message.c_str());
    }
  }
  return 0;
}
