//===- examples/quickstart.cpp - First steps with the tnum library --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A guided tour of the public API: constructing tnums, applying the
/// kernel's O(1) addition, comparing the multiplication algorithms from
/// the paper, and reading the lattice operations. Run it with no
/// arguments; it prints a narrated transcript.
///
//===----------------------------------------------------------------------===//

#include "tnum/Tnum.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMul.h"
#include "tnum/TnumOps.h"

#include <cstdio>

using namespace tnums;

int main() {
  std::printf("== tnums quickstart ==\n\n");

  // A tnum abstracts a set of concrete values bit by bit. 'u' marks an
  // unknown bit (the paper writes µ).
  Tnum X = *Tnum::parse("01u0");
  std::printf("x = %s  gamma(x) = {", X.toString(4).c_str());
  bool First = true;
  forEachMember(X, [&](uint64_t V) {
    std::printf("%s%llu", First ? "" : ", ",
                static_cast<unsigned long long>(V));
    First = false;
  });
  std::printf("}  (|gamma| = %llu)\n",
              static_cast<unsigned long long>(X.concretizationSize()));
  std::printf("every member is <= %llu, so x <= 8 always holds -- the\n"
              "paper's intro example of a provable bound.\n\n",
              static_cast<unsigned long long>(X.maxMember()));

  // The kernel's constant-time abstract addition (paper Listing 1 /
  // Fig. 2), proved sound and maximally precise.
  Tnum P = *Tnum::parse("10u0");
  Tnum Q = *Tnum::parse("10u1");
  std::printf("tnum_add(%s, %s) = %s\n", P.toString(4).c_str(),
              Q.toString(4).c_str(), tnumAdd(P, Q).toString(5).c_str());

  // Bitwise operators are optimal too.
  std::printf("tnum_and(%s, 0110) = %s\n", X.toString(4).c_str(),
              tnumAnd(X, Tnum::makeConstant(6)).toString(4).c_str());

  // Multiplication: the paper contributes our_mul, now in Linux. Compare
  // it with the previous kernel algorithm on the Fig. 3 example.
  Tnum A = *Tnum::parse("u01");
  Tnum B = *Tnum::parse("u10");
  std::printf("\nmultiplying %s * %s:\n", A.toString(3).c_str(),
              B.toString(3).c_str());
  for (MulAlgorithm Alg : {MulAlgorithm::Kern, MulAlgorithm::BitwiseOpt,
                           MulAlgorithm::Our}) {
    Tnum R = tnumMul(A, B, Alg, 6);
    std::printf("  %-18s -> %s  (|gamma| = %llu)\n", mulAlgorithmName(Alg),
                R.toString(6).c_str(),
                static_cast<unsigned long long>(R.concretizationSize()));
  }

  // Lattice structure: join is the least upper bound, meet detects
  // contradictions.
  Tnum C1 = Tnum::makeConstant(0b1010);
  Tnum C2 = Tnum::makeConstant(0b1000);
  std::printf("\njoin(1010, 1000) = %s\n",
              C1.joinWith(C2).toString(4).c_str());
  std::printf("meet(10uu, u0u1) = %s\n",
              Tnum::parse("10uu")->meetWith(*Tnum::parse("u0u1"))
                  .toString(4)
                  .c_str());
  std::printf("meet(10uu, 11uu) = %s (contradiction)\n",
              Tnum::parse("10uu")->meetWith(*Tnum::parse("11uu"))
                  .toString(4)
                  .c_str());

  // Ranges: the kernel's tnum_range builds the tightest tnum covering an
  // unsigned interval.
  std::printf("\ntnum_range(8, 11) = %s\n",
              Tnum::makeRange(8, 11).toString(4).c_str());
  return 0;
}
