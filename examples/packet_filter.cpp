//===- examples/packet_filter.cpp - A realistic filter, verified ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature packet filter in the style of the XDP programs that
/// motivate the paper (DDoS mitigation, load balancing): parse a tiny
/// "header", length-check against the region size the kernel passes in
/// R2, read a type byte, and hash a type-dependent payload word. Every
/// memory access is justified to the verifier either by a branch bound or
/// by tnum masking -- exactly how real BPF programs get past the kernel.
/// The program is then executed on a few sample packets.
///
/// Packet layout (context region):
///   byte 0      : type (0 = drop, 1 = hash word at 8, else hash byte 1)
///   byte 1      : flags
///   bytes 8..15 : payload word (only if the packet is long enough)
///
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"
#include "bpf/Interpreter.h"
#include "bpf/Verifier.h"

#include <cstdio>

using namespace tnums;
using namespace tnums::bpf;

static Program buildFilter() {
  ProgramBuilder B;
  // Length check: the region must hold the full 16-byte header+payload.
  // R2 carries the region size at entry.
  B.jmpImm(CompareOp::Lt, R2, 16, "drop");

  B.load(R3, R1, 0, 1); // r3 = type
  B.jmpImm(CompareOp::Eq, R3, 0, "drop");
  B.jmpImm(CompareOp::Eq, R3, 1, "hash_word");

  // Default: hash the flags byte, mixed with a masked offset read.
  B.load(R4, R1, 1, 1);     // flags
  B.mov(R5, R4);
  B.aluImm(AluOp::And, R5, 7); // offset in [0, 7] via tnum masking
  B.alu(AluOp::Add, R5, R1);   // r5 = mem + offset
  B.load(R6, R5, 0, 1);     // safe: offset <= 7, 1 byte, region >= 16
  B.mov(R0, R4);
  B.aluImm(AluOp::Mul, R0, 31);
  B.alu(AluOp::Xor, R0, R6);
  B.ja("out");

  // Type 1: hash the payload word.
  B.label("hash_word");
  B.load(R7, R1, 8, 8);
  B.mov(R0, R7);
  B.aluImm(AluOp::Rsh, R0, 17);
  B.alu(AluOp::Xor, R0, R7);
  B.aluImm(AluOp::Mul, R0, 0x9E3779B9);
  B.ja("out");

  B.label("drop");
  B.movImm(R0, 0);

  B.label("out");
  B.aluImm(AluOp::And, R0, 0x7FFFFFFF); // fold to a 31-bit verdict
  B.exit();
  return B.build();
}

int main() {
  Program P = buildFilter();
  std::printf("== packet filter ==\n%s\n", P.disassemble().c_str());

  constexpr uint64_t MemSize = 16;
  VerifierReport Report = verifyProgram(P, MemSize);
  std::printf("verifier: %s\n", Report.Accepted ? "ACCEPTED" : "REJECTED");
  if (!Report.Accepted) {
    std::printf("%s", Report.toString(P).c_str());
    return 1;
  }

  // Run the accepted filter over a few sample packets.
  struct Sample {
    const char *Name;
    uint8_t Type;
    uint8_t Flags;
    uint64_t Payload;
  };
  for (const Sample &S : {Sample{"drop", 0, 0, 0},
                          Sample{"word", 1, 0, 0x1122334455667788ull},
                          Sample{"flags", 7, 0xA5, 42}}) {
    std::vector<uint8_t> Mem(MemSize, 0);
    Mem[0] = S.Type;
    Mem[1] = S.Flags;
    for (unsigned I = 0; I != 8; ++I)
      Mem[8 + I] = static_cast<uint8_t>(S.Payload >> (8 * I));
    ExecResult R = Interpreter(P, Mem).run();
    std::printf("packet %-6s -> %s, verdict = 0x%llx\n", S.Name,
                R.ok() ? "ok" : R.Message.c_str(),
                static_cast<unsigned long long>(R.ReturnValue));
  }

  // A filter that skips the length check is rejected: the payload read
  // cannot be proven in-bounds for small regions.
  Program Unsafe = ProgramBuilder()
                       .load(R7, R1, 8, 8)
                       .mov(R0, R7)
                       .exit()
                       .build();
  VerifierReport UnsafeReport = verifyProgram(Unsafe, /*MemSize=*/8);
  std::printf("\nfilter without length check on an 8-byte region: %s\n",
              UnsafeReport.Accepted ? "ACCEPTED (!)" : "REJECTED");
  for (const Violation &V : UnsafeReport.Violations)
    std::printf("  violation at %zu: %s\n", V.Pc, V.Message.c_str());
  return 0;
}
