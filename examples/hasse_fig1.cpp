//===- examples/hasse_fig1.cpp - Reproduce the paper's Figure 1 -----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the paper's Figure 1 -- the Hasse diagrams of (a) the concrete
/// lattice (2^Zn, ⊆) and (b) the abstract tnum lattice (Tn, ⊑A) for
/// n = 2 -- as Graphviz DOT on stdout (render with `dot -Tsvg`). Each
/// abstract node is labeled with both its trit string and its kernel
/// (value, mask) implementation, exactly like the figure. Also prints the
/// two alpha/gamma walks the figure annotates:
///   (i)  alpha({1,2,3}) = µµ, gamma(µµ) = {0,1,2,3} (over-approximation)
///   (ii) alpha({2,3})   = 1µ, gamma(1µ) = {2,3}     (exact)
///
/// Usage: hasse_fig1 [--width N]   (N in [1, 3]; the concrete lattice has
/// 2^2^N nodes, so it gets big fast)
///
//===----------------------------------------------------------------------===//

#include "tnum/TnumEnum.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace tnums;

/// Renders a concrete set (bitmask over width-n values) as "{a, b}".
static std::string setLabel(uint64_t SetBits, unsigned NumValues) {
  std::string Label = "{";
  bool First = true;
  for (uint64_t V = 0; V != NumValues; ++V) {
    if (!((SetBits >> V) & 1))
      continue;
    if (!First)
      Label += ",";
    Label += std::to_string(V);
    First = false;
  }
  Label += "}";
  return Label.size() == 2 ? "\xE2\x88\x85" /* empty-set symbol */ : Label;
}

/// True if Sub ⊂ Super differ by exactly one element (a Hasse edge of the
/// powerset lattice).
static bool isCoveringSubset(uint64_t Sub, uint64_t Super) {
  return (Sub & ~Super) == 0 && popCount(Super & ~Sub) == 1;
}

int main(int Argc, char **Argv) {
  unsigned Width = 2;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--width") == 0 && I + 1 < Argc)
      Width = static_cast<unsigned>(std::atoi(Argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--width N]\n", Argv[0]);
      return 1;
    }
  }
  if (Width < 1 || Width > 3) {
    std::fprintf(stderr, "error: width must be in [1, 3]\n");
    return 1;
  }
  unsigned NumValues = 1u << Width;
  uint64_t FullSet = lowBitsMask(NumValues);

  std::printf("// Figure 1(a): the concrete lattice (2^Z%u, subset)\n",
              Width);
  std::printf("digraph concrete {\n  rankdir=BT;\n  node [shape=plaintext];"
              "\n");
  for (uint64_t Set = 0; Set <= FullSet; ++Set)
    std::printf("  c%llu [label=\"%s\"];\n",
                static_cast<unsigned long long>(Set),
                setLabel(Set, NumValues).c_str());
  for (uint64_t Sub = 0; Sub <= FullSet; ++Sub)
    for (uint64_t Super = 0; Super <= FullSet; ++Super)
      if (isCoveringSubset(Sub, Super))
        std::printf("  c%llu -> c%llu;\n",
                    static_cast<unsigned long long>(Sub),
                    static_cast<unsigned long long>(Super));
  std::printf("}\n\n");

  std::printf("// Figure 1(b): the abstract tnum lattice (T%u, ⊑A),\n"
              "// each node shown with its kernel (value, mask) pair\n",
              Width);
  std::printf("digraph abstract {\n  rankdir=BT;\n  node [shape=plaintext];"
              "\n");
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  std::printf("  bot [label=\"⊥\"];\n");
  for (size_t I = 0; I != Universe.size(); ++I) {
    const Tnum &T = Universe[I];
    std::printf("  t%zu [label=\"%s\\n(%llu, %llu)\"];\n", I,
                T.toString(Width).c_str(),
                static_cast<unsigned long long>(T.value()),
                static_cast<unsigned long long>(T.mask()));
    if (T.isConstant())
      std::printf("  bot -> t%zu;\n", I);
  }
  // Hasse edges: P covers Q if P ⊏ Q with exactly one more unknown trit.
  for (size_t I = 0; I != Universe.size(); ++I)
    for (size_t J = 0; J != Universe.size(); ++J) {
      const Tnum &P = Universe[I];
      const Tnum &Q = Universe[J];
      if (P == Q || !P.isSubsetOf(Q))
        continue;
      if (Q.numUnknownBits() == P.numUnknownBits() + 1)
        std::printf("  t%zu -> t%zu;\n", I, J);
    }
  std::printf("}\n\n");

  std::printf("// The figure's two abstraction walks (width 2):\n");
  Tnum A1 = abstractOf({1, 2, 3});
  std::printf("//  (i)  alpha({1,2,3}) = %s; gamma = {",
              A1.toString(2).c_str());
  bool First = true;
  forEachMember(A1, [&](uint64_t V) {
    std::printf("%s%llu", First ? "" : ",",
                static_cast<unsigned long long>(V));
    First = false;
  });
  std::printf("}  (over-approximates)\n");
  Tnum A2 = abstractOf({2, 3});
  std::printf("//  (ii) alpha({2,3})   = %s; gamma = {",
              A2.toString(2).c_str());
  First = true;
  forEachMember(A2, [&](uint64_t V) {
    std::printf("%s%llu", First ? "" : ",",
                static_cast<unsigned long long>(V));
    First = false;
  });
  std::printf("}      (exact)\n");
  return 0;
}
