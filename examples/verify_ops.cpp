//===- examples/verify_ops.cpp - Drive the bounded verifier ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the §III-A bounded verification engine:
///
///   verify_ops                      # verify every operator at width 4
///   verify_ops add 6                # one operator at a chosen width
///   verify_ops mul 5 kern_mul       # pick the multiplication algorithm
///
/// Prints, per operator: the soundness verdict, pair/concrete-evaluation
/// counts, and (when it fits) the optimality verdict with a witness.
///
/// Sweeps run on the parallel engine (verify/ParallelSweep.h) over the
/// batched SIMD membership kernels -- the same fast path as the campaign
/// benchmarks -- so width 7-8 stay interactive on a multicore host. The
/// reports are bit-identical to the serial scalar checkers (the engine's
/// determinism contract).
///
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "verify/ParallelSweep.h"

#include <cstdio>
#include <cstring>
#include <optional>

using namespace tnums;

static std::optional<BinaryOp> parseOp(const char *Name) {
  for (BinaryOp Op : AllBinaryOps)
    if (std::strcmp(binaryOpName(Op), Name) == 0)
      return Op;
  return std::nullopt;
}

static std::optional<MulAlgorithm> parseMulAlgorithm(const char *Name) {
  for (MulAlgorithm Alg :
       {MulAlgorithm::Kern, MulAlgorithm::BitwiseNaive,
        MulAlgorithm::BitwiseOpt, MulAlgorithm::OurSimplified,
        MulAlgorithm::Our, MulAlgorithm::OurFullLoop})
    if (std::strcmp(mulAlgorithmName(Alg), Name) == 0)
      return Alg;
  return std::nullopt;
}

static void verifyOne(BinaryOp Op, unsigned Width, MulAlgorithm Mul,
                      TextTable &Table) {
  if (isShiftOp(Op) && (Width & (Width - 1)) != 0) {
    Table.addRowOf(binaryOpName(Op), Width, "skipped (width not 2^k)", "-",
                   "-");
    return;
  }
  SweepConfig Config; // Hardware concurrency, batched kernels.
  SoundnessReport Sound =
      checkSoundnessExhaustiveParallel(Op, Width, Mul, Config);
  OptimalityReport Precise = checkOptimalityExhaustiveParallel(
      Op, Width, Mul, Config, /*StopAtFirst=*/true);
  Table.addRowOf(
      binaryOpName(Op), Width,
      Sound.holds() ? "sound" : Sound.Failure->toString(Width).c_str(),
      Precise.isOptimalEverywhere()
          ? std::string("optimal")
          : "not optimal: " + Precise.Failure->toString(Width),
      Sound.ConcreteChecked);
}

int main(int Argc, char **Argv) {
  unsigned Width = 4;
  MulAlgorithm Mul = MulAlgorithm::Our;
  std::optional<BinaryOp> Only;

  if (Argc >= 2) {
    Only = parseOp(Argv[1]);
    if (!Only) {
      std::fprintf(stderr, "error: unknown operator '%s'\n", Argv[1]);
      return 1;
    }
  }
  if (Argc >= 3)
    Width = static_cast<unsigned>(std::atoi(Argv[2]));
  if (Argc >= 4) {
    std::optional<MulAlgorithm> Parsed = parseMulAlgorithm(Argv[3]);
    if (!Parsed) {
      std::fprintf(stderr, "error: unknown mul algorithm '%s'\n", Argv[3]);
      return 1;
    }
    Mul = *Parsed;
  }
  if (Width < 1 || Width > 8) {
    std::fprintf(stderr,
                 "error: width must be in [1, 8] (cost grows as 16^n; 7-8 "
                 "take minutes even on the parallel SIMD path)\n");
    return 1;
  }

  std::printf("bounded verification at width %u (mul = %s)\n\n", Width,
              mulAlgorithmName(Mul));
  TextTable Table({"op", "width", "soundness", "optimality", "evals"});
  if (Only) {
    verifyOne(*Only, Width, Mul, Table);
  } else {
    for (BinaryOp Op : AllBinaryOps)
      verifyOne(Op, Width, Mul, Table);
  }
  Table.printAligned(stdout);
  return 0;
}
