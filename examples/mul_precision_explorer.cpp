//===- examples/mul_precision_explorer.cpp - Compare mul algorithms -------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interactive precision explorer: give it two trit strings (e.g.
/// "u01 u10") and it multiplies them with every algorithm from the paper,
/// prints each result with its concretization size, and -- when the
/// operands are narrow enough -- the optimal abstraction alpha∘*∘gamma as
/// the yardstick. With no arguments it walks a few instructive pairs,
/// including the paper's width-9 incomparability example.
///
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "tnum/TnumMul.h"
#include "verify/OptimalityChecker.h"

#include <cstdio>
#include <cstring>

using namespace tnums;

static void explore(const std::string &PText, const std::string &QText) {
  std::optional<Tnum> P = Tnum::parse(PText);
  std::optional<Tnum> Q = Tnum::parse(QText);
  if (!P || !Q) {
    std::fprintf(stderr, "error: operands must be trit strings over 01u\n");
    return;
  }
  unsigned Width = static_cast<unsigned>(std::max(PText.size(),
                                                  QText.size())) + 3;
  Width = std::min(Width, MaxBitWidth);

  std::printf("P = %s, Q = %s (shown at width %u)\n", PText.c_str(),
              QText.c_str(), Width);
  TextTable Table({"algorithm", "result", "|gamma|", "unknown trits"});
  for (MulAlgorithm Alg :
       {MulAlgorithm::Kern, MulAlgorithm::BitwiseNaive,
        MulAlgorithm::BitwiseOpt, MulAlgorithm::OurSimplified,
        MulAlgorithm::Our}) {
    Tnum R = tnumMul(*P, *Q, Alg, Width);
    Table.addRowOf(mulAlgorithmName(Alg), R.toString(Width),
                   R.concretizationSize(), R.numUnknownBits());
  }
  // The optimal abstraction needs |gamma(P)| * |gamma(Q)| concrete
  // multiplications; only compute it when that is small.
  if (P->numUnknownBits() + Q->numUnknownBits() <= 24) {
    Tnum Optimal = optimalAbstractBinary(BinaryOp::Mul, *P, *Q, Width);
    Table.addRowOf("alpha.mul.gamma (optimal)", Optimal.toString(Width),
                   Optimal.concretizationSize(), Optimal.numUnknownBits());
  }
  Table.printAligned(stdout);
  std::printf("\n");
}

int main(int Argc, char **Argv) {
  if (Argc == 3) {
    explore(Argv[1], Argv[2]);
    return 0;
  }
  if (Argc != 1) {
    std::fprintf(stderr, "usage: %s [<tritsP> <tritsQ>]\n", Argv[0]);
    return 1;
  }

  std::printf("== paper Fig. 3 example ==\n");
  explore("u01", "u10");

  std::printf("== paper width-9 incomparability example ==\n");
  explore("000000011", "011u011uu");

  std::printf("== correlation blind spot (paper §III-C question 1) ==\n");
  // P = 11, Q = µ1: the partial products share the same µ, which no
  // algorithm exploits, so every result is looser than optimal.
  explore("11", "u1");

  std::printf("== a case where all algorithms agree ==\n");
  explore("101", "011");
  return 0;
}
