//===- examples/known_bits_optimizer.cpp - Tnums as known-bits analysis ---===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's related work points at LLVM's known-bits analysis as the
/// compiler-side twin of tnums (§V). This example plays that role: a tiny
/// expression optimizer that runs the tnum domain over an expression tree
/// whose leaves carry known-bits facts, then
///
///   * folds subexpressions whose tnum is a constant,
///   * drops masks that cannot change any bit (x & M where every possibly
///     set bit of x is known 1 in M), and
///   * decides comparisons whose operand ranges do not overlap.
///
/// Run with no arguments for a demo over a few representative expressions.
///
//===----------------------------------------------------------------------===//

#include "tnum/TnumMul.h"
#include "tnum/TnumOps.h"

#include <cstdio>
#include <memory>
#include <string>

using namespace tnums;

namespace {

/// A tiny pure expression language: variables with known-bits facts,
/// constants, and the BPF-ish operator set.
struct Expr {
  enum class Kind { Var, Const, Add, Sub, Mul, And, Or, Xor, Shl, Shr };

  Kind ExprKind;
  std::string Name;    ///< Var only.
  Tnum VarFacts;       ///< Var only: known bits of the variable.
  uint64_t Value = 0;  ///< Const only.
  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs;

  static std::unique_ptr<Expr> makeVar(std::string Name, Tnum Facts) {
    auto E = std::make_unique<Expr>();
    E->ExprKind = Kind::Var;
    E->Name = std::move(Name);
    E->VarFacts = Facts;
    return E;
  }
  static std::unique_ptr<Expr> makeConst(uint64_t V) {
    auto E = std::make_unique<Expr>();
    E->ExprKind = Kind::Const;
    E->Value = V;
    return E;
  }
  static std::unique_ptr<Expr> makeBinary(Kind K, std::unique_ptr<Expr> L,
                                          std::unique_ptr<Expr> R) {
    auto E = std::make_unique<Expr>();
    E->ExprKind = K;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }

  std::string toString() const {
    switch (ExprKind) {
    case Kind::Var:
      return Name;
    case Kind::Const:
      return std::to_string(Value);
    default:
      break;
    }
    const char *Op = nullptr;
    switch (ExprKind) {
    case Kind::Add:
      Op = "+";
      break;
    case Kind::Sub:
      Op = "-";
      break;
    case Kind::Mul:
      Op = "*";
      break;
    case Kind::And:
      Op = "&";
      break;
    case Kind::Or:
      Op = "|";
      break;
    case Kind::Xor:
      Op = "^";
      break;
    case Kind::Shl:
      Op = "<<";
      break;
    case Kind::Shr:
      Op = ">>";
      break;
    case Kind::Var:
    case Kind::Const:
      break;
    }
    return "(" + Lhs->toString() + " " + Op + " " + Rhs->toString() + ")";
  }
};

/// The known-bits analysis: one bottom-up tnum evaluation.
Tnum analyze(const Expr &E) {
  switch (E.ExprKind) {
  case Expr::Kind::Var:
    return E.VarFacts;
  case Expr::Kind::Const:
    return Tnum::makeConstant(E.Value);
  default:
    break;
  }
  Tnum L = analyze(*E.Lhs);
  Tnum R = analyze(*E.Rhs);
  switch (E.ExprKind) {
  case Expr::Kind::Add:
    return tnumAdd(L, R);
  case Expr::Kind::Sub:
    return tnumSub(L, R);
  case Expr::Kind::Mul:
    return ourMul(L, R);
  case Expr::Kind::And:
    return tnumAnd(L, R);
  case Expr::Kind::Or:
    return tnumOr(L, R);
  case Expr::Kind::Xor:
    return tnumXor(L, R);
  case Expr::Kind::Shl:
    return tnumLshiftByTnum(L, R, 64);
  case Expr::Kind::Shr:
    return tnumRshiftByTnum(L, R, 64);
  case Expr::Kind::Var:
  case Expr::Kind::Const:
    break;
  }
  return Tnum::makeUnknown();
}

/// One rewriting pass: constant-folds by tnum, erases no-op masks.
std::unique_ptr<Expr> simplify(std::unique_ptr<Expr> E) {
  if (E->ExprKind == Expr::Kind::Var || E->ExprKind == Expr::Kind::Const)
    return E;
  E->Lhs = simplify(std::move(E->Lhs));
  E->Rhs = simplify(std::move(E->Rhs));

  // Rule 1: if the abstract value is a single concrete value, fold.
  Tnum Facts = analyze(*E);
  if (Facts.isConstant())
    return Expr::makeConst(Facts.constantValue());

  // Rule 2: x & M is x when M keeps every possibly-set bit of x.
  if (E->ExprKind == Expr::Kind::And) {
    Tnum L = analyze(*E->Lhs);
    Tnum R = analyze(*E->Rhs);
    if (R.isConstant() &&
        ((L.value() | L.mask()) & ~R.constantValue()) == 0)
      return std::move(E->Lhs);
    if (L.isConstant() &&
        ((R.value() | R.mask()) & ~L.constantValue()) == 0)
      return std::move(E->Rhs);
  }

  // Rule 3: x | 0 and x ^ 0 and x + 0 are x.
  if (E->ExprKind == Expr::Kind::Or || E->ExprKind == Expr::Kind::Xor ||
      E->ExprKind == Expr::Kind::Add) {
    if (analyze(*E->Rhs) == Tnum::makeConstant(0))
      return std::move(E->Lhs);
    if (analyze(*E->Lhs) == Tnum::makeConstant(0))
      return std::move(E->Rhs);
  }
  return E;
}

/// Decides x <= Bound from the tnum alone (the paper's intro inference).
void decideComparison(const Expr &E, uint64_t Bound) {
  Tnum Facts = analyze(E);
  const char *Verdict = "unknown";
  if (Facts.maxMember() <= Bound)
    Verdict = "always true";
  else if (Facts.minMember() > Bound)
    Verdict = "always false";
  std::printf("  %s <= %llu : %s   [tnum %s, range [%llu, %llu]]\n",
              E.toString().c_str(), static_cast<unsigned long long>(Bound),
              Verdict, Facts.toString(8).c_str(),
              static_cast<unsigned long long>(Facts.minMember()),
              static_cast<unsigned long long>(Facts.maxMember()));
}

void demo(std::unique_ptr<Expr> E, const char *Comment) {
  Tnum Facts = analyze(*E);
  std::string Before = E->toString();
  std::unique_ptr<Expr> Simplified = simplify(std::move(E));
  std::printf("  %-28s -> %-16s tnum=%s   (%s)\n", Before.c_str(),
              Simplified->toString().c_str(), Facts.toString(8).c_str(),
              Comment);
}

} // namespace

int main() {
  std::printf("== known-bits expression optimizer (LLVM KnownBits twin, "
              "paper §V) ==\n\n");

  // x is a byte with its low bit known zero (e.g. an even length field).
  auto EvenByte = [] {
    return Expr::makeVar("x", *Tnum::parse("uuuuuuu0"));
  };
  // y is a 4-bit value.
  auto Nibble = [] { return Expr::makeVar("y", *Tnum::parse("uuuu")); };

  std::printf("rewrites:\n");
  demo(Expr::makeBinary(Expr::Kind::And, EvenByte(), Expr::makeConst(1)),
       "even & 1 folds to 0");
  demo(Expr::makeBinary(Expr::Kind::And, EvenByte(), Expr::makeConst(0xFF)),
       "mask keeps every possible bit: dropped");
  demo(Expr::makeBinary(Expr::Kind::Or, Nibble(), Expr::makeConst(0)),
       "identity");
  demo(Expr::makeBinary(
           Expr::Kind::And,
           Expr::makeBinary(Expr::Kind::Mul, Nibble(), Expr::makeConst(4)),
           Expr::makeConst(3)),
       "4y has low bits 00: & 3 folds to 0");
  demo(Expr::makeBinary(Expr::Kind::Xor, EvenByte(), EvenByte()),
       "xor of two evens stays even (not folded: correlation invisible)");

  std::printf("\nbranch decisions (the intro's x <= 8 inference):\n");
  decideComparison(
      *Expr::makeBinary(Expr::Kind::And, EvenByte(), Expr::makeConst(6)), 8);
  decideComparison(*Expr::makeBinary(Expr::Kind::Shl, Nibble(),
                                     Expr::makeConst(4)),
                   8);
  decideComparison(*Nibble(), 8);
  return 0;
}
