//===- domain/SignedRange.h - Signed range domain ---------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Signed counterpart of domain/Interval.h: [SMin, SMax] over the
/// sign-extended width-n values. Tracks the kernel verifier's smin/smax
/// pair; participates in the reduced product (domain/RegValue.h) and in
/// signed branch refinement (JSLT and friends).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_DOMAIN_SIGNEDRANGE_H
#define TNUMS_DOMAIN_SIGNEDRANGE_H

#include "support/Bits.h"

#include <cstdint>
#include <string>

namespace tnums {

/// A signed interval [Min, Max] over width-n values, or bottom.
class SignedRange {
public:
  /// Top at \p Width: [-2^(Width-1), 2^(Width-1) - 1].
  static SignedRange makeTop(unsigned Width = MaxBitWidth);

  static SignedRange makeBottom() { return SignedRange(1, 0, true); }

  static SignedRange makeConstant(int64_t C) { return SignedRange(C, C); }

  SignedRange(int64_t Min, int64_t Max);

  bool isBottom() const { return Bottom; }
  bool isConstant() const { return !Bottom && Min == Max; }

  int64_t min() const {
    assert(!Bottom && "min of empty range");
    return Min;
  }
  int64_t max() const {
    assert(!Bottom && "max of empty range");
    return Max;
  }

  bool contains(int64_t V) const { return !Bottom && Min <= V && V <= Max; }

  bool isSubsetOf(const SignedRange &Q) const;
  SignedRange joinWith(const SignedRange &Q) const;
  SignedRange meetWith(const SignedRange &Q) const;

  /// True if every member is non-negative (so signed == unsigned order).
  bool isNonNegative() const { return !Bottom && Min >= 0; }

  std::string toString() const;

  friend bool operator==(const SignedRange &A, const SignedRange &B) {
    if (A.Bottom || B.Bottom)
      return A.Bottom == B.Bottom;
    return A.Min == B.Min && A.Max == B.Max;
  }
  friend bool operator!=(const SignedRange &A, const SignedRange &B) {
    return !(A == B);
  }

private:
  SignedRange(int64_t MinV, int64_t MaxV, bool BottomV)
      : Min(MinV), Max(MaxV), Bottom(BottomV) {}

  int64_t Min;
  int64_t Max;
  bool Bottom;
};

/// Abstract signed addition at \p Width; top on possible signed overflow.
SignedRange signedAdd(const SignedRange &P, const SignedRange &Q,
                      unsigned Width);

/// Abstract signed subtraction at \p Width; top on possible overflow.
SignedRange signedSub(const SignedRange &P, const SignedRange &Q,
                      unsigned Width);

/// Abstract signed negation at \p Width.
SignedRange signedNeg(const SignedRange &P, unsigned Width);

/// Arithmetic right shift by a constant amount (monotone, always exact).
SignedRange signedArshift(const SignedRange &P, unsigned Shift);

} // namespace tnums

#endif // TNUMS_DOMAIN_SIGNEDRANGE_H
