//===- domain/Interval.h - Unsigned interval domain -------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical unsigned interval abstract domain [a, b] (paper §II-A uses
/// it as the running primer example). The BPF analyzer combines it with
/// tnums in a reduced product (domain/RegValue.h), mirroring the kernel
/// verifier's umin/umax tracking. Arithmetic goes to top on potential
/// wrap-around, as the kernel does.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_DOMAIN_INTERVAL_H
#define TNUMS_DOMAIN_INTERVAL_H

#include "support/Bits.h"

#include <cstdint>
#include <optional>
#include <string>

namespace tnums {

/// An unsigned interval [Min, Max] over width-n values, or bottom (empty).
class Interval {
public:
  /// Top at \p Width: [0, 2^Width - 1].
  static Interval makeTop(unsigned Width = MaxBitWidth) {
    return Interval(0, lowBitsMask(Width));
  }

  /// The empty interval.
  static Interval makeBottom() {
    Interval I(1, 0, /*Bottom=*/true);
    return I;
  }

  /// The singleton [C, C].
  static Interval makeConstant(uint64_t C) { return Interval(C, C); }

  /// [Min, Max]; requires Min <= Max (use makeBottom for empty).
  Interval(uint64_t Min, uint64_t Max);

  bool isBottom() const { return Bottom; }
  bool isConstant() const { return !Bottom && Min == Max; }

  uint64_t min() const {
    assert(!Bottom && "min of empty interval");
    return Min;
  }
  uint64_t max() const {
    assert(!Bottom && "max of empty interval");
    return Max;
  }

  bool contains(uint64_t V) const { return !Bottom && Min <= V && V <= Max; }

  /// gamma(this) ⊆ gamma(Q).
  bool isSubsetOf(const Interval &Q) const;

  Interval joinWith(const Interval &Q) const;
  Interval meetWith(const Interval &Q) const;

  /// Number of values in the interval, saturating at UINT64_MAX for the
  /// full 64-bit top.
  uint64_t size() const;

  std::string toString() const;

  friend bool operator==(const Interval &A, const Interval &B) {
    if (A.Bottom || B.Bottom)
      return A.Bottom == B.Bottom;
    return A.Min == B.Min && A.Max == B.Max;
  }
  friend bool operator!=(const Interval &A, const Interval &B) {
    return !(A == B);
  }

private:
  Interval(uint64_t MinV, uint64_t MaxV, bool BottomV)
      : Min(MinV), Max(MaxV), Bottom(BottomV) {}

  uint64_t Min;
  uint64_t Max;
  bool Bottom;
};

/// Abstract addition at \p Width; top on possible wrap-around.
Interval intervalAdd(const Interval &P, const Interval &Q, unsigned Width);

/// Abstract subtraction at \p Width; top on possible wrap-under.
Interval intervalSub(const Interval &P, const Interval &Q, unsigned Width);

/// Abstract multiplication at \p Width; top on possible overflow.
Interval intervalMul(const Interval &P, const Interval &Q, unsigned Width);

/// Abstract unsigned division (BPF x / 0 == 0 semantics).
Interval intervalDiv(const Interval &P, const Interval &Q, unsigned Width);

/// Left shift by a constant amount; top on overflow out of the width.
Interval intervalShl(const Interval &P, unsigned Shift, unsigned Width);

/// Logical right shift by a constant amount (always exact on intervals).
Interval intervalShr(const Interval &P, unsigned Shift);

/// Bitwise AND upper bound: [0, min(P.max, Q.max)]. (Tighter bit-level
/// information comes from the tnum side of the reduced product.)
Interval intervalAnd(const Interval &P, const Interval &Q);

/// Bitwise OR bounds: [max(mins), saturated-to-bit-ceiling of maxes].
Interval intervalOr(const Interval &P, const Interval &Q, unsigned Width);

} // namespace tnums

#endif // TNUMS_DOMAIN_INTERVAL_H
