//===- domain/SignedRange.cpp - Signed range domain -----------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "domain/SignedRange.h"

#include "support/Table.h"

#include <algorithm>

using namespace tnums;

SignedRange SignedRange::makeTop(unsigned Width) {
  assert(Width >= 1 && Width <= MaxBitWidth && "width out of range");
  if (Width == MaxBitWidth)
    return SignedRange(INT64_MIN, INT64_MAX);
  int64_t Half = int64_t(1) << (Width - 1);
  return SignedRange(-Half, Half - 1);
}

SignedRange::SignedRange(int64_t MinV, int64_t MaxV)
    : Min(MinV), Max(MaxV), Bottom(false) {
  assert(MinV <= MaxV && "inverted range; use makeBottom for empty");
}

bool SignedRange::isSubsetOf(const SignedRange &Q) const {
  if (Bottom)
    return true;
  if (Q.Bottom)
    return false;
  return Q.Min <= Min && Max <= Q.Max;
}

SignedRange SignedRange::joinWith(const SignedRange &Q) const {
  if (Bottom)
    return Q;
  if (Q.Bottom)
    return *this;
  return SignedRange(std::min(Min, Q.Min), std::max(Max, Q.Max));
}

SignedRange SignedRange::meetWith(const SignedRange &Q) const {
  if (Bottom || Q.Bottom)
    return makeBottom();
  int64_t NewMin = std::max(Min, Q.Min);
  int64_t NewMax = std::min(Max, Q.Max);
  if (NewMin > NewMax)
    return makeBottom();
  return SignedRange(NewMin, NewMax);
}

std::string SignedRange::toString() const {
  if (Bottom)
    return "<bottom>";
  return formatString("[%lld, %lld]", static_cast<long long>(Min),
                      static_cast<long long>(Max));
}

/// True if A + B overflows the signed width-n range.
static bool addOverflows(int64_t A, int64_t B, const SignedRange &Top) {
  __int128 Sum = static_cast<__int128>(A) + static_cast<__int128>(B);
  return Sum < Top.min() || Sum > Top.max();
}

SignedRange tnums::signedAdd(const SignedRange &P, const SignedRange &Q,
                             unsigned Width) {
  if (P.isBottom() || Q.isBottom())
    return SignedRange::makeBottom();
  SignedRange Top = SignedRange::makeTop(Width);
  if (addOverflows(P.min(), Q.min(), Top) ||
      addOverflows(P.max(), Q.max(), Top))
    return Top;
  return SignedRange(P.min() + Q.min(), P.max() + Q.max());
}

SignedRange tnums::signedSub(const SignedRange &P, const SignedRange &Q,
                             unsigned Width) {
  if (P.isBottom() || Q.isBottom())
    return SignedRange::makeBottom();
  SignedRange Top = SignedRange::makeTop(Width);
  auto SubOverflows = [&](int64_t A, int64_t B) {
    __int128 Diff = static_cast<__int128>(A) - static_cast<__int128>(B);
    return Diff < Top.min() || Diff > Top.max();
  };
  if (SubOverflows(P.min(), Q.max()) || SubOverflows(P.max(), Q.min()))
    return Top;
  return SignedRange(P.min() - Q.max(), P.max() - Q.min());
}

SignedRange tnums::signedNeg(const SignedRange &P, unsigned Width) {
  if (P.isBottom())
    return SignedRange::makeBottom();
  SignedRange Top = SignedRange::makeTop(Width);
  // -min overflows when min is the width's INT_MIN.
  if (P.min() == Top.min())
    return Top;
  return SignedRange(-P.max(), -P.min());
}

SignedRange tnums::signedArshift(const SignedRange &P, unsigned Shift) {
  if (P.isBottom())
    return SignedRange::makeBottom();
  assert(Shift < MaxBitWidth && "shift amount out of range");
  return SignedRange(P.min() >> Shift, P.max() >> Shift);
}
