//===- domain/RegValue.cpp - Reduced product register value ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "domain/RegValue.h"

#include "support/Table.h"
#include "tnum/TnumOps.h"

#include <algorithm>

using namespace tnums;

RegValue::RegValue(Tnum T, Interval U, SignedRange S, unsigned WidthV)
    : TnumPart(T), UnsignedPart(U), SignedPart(S), Width(WidthV),
      Bottom(false) {
  assert(Width >= 1 && Width <= MaxBitWidth && "width out of range");
  sync();
}

RegValue RegValue::makeTop(unsigned Width) {
  return RegValue(Tnum::makeUnknown(Width), Interval::makeTop(Width),
                  SignedRange::makeTop(Width), Width);
}

RegValue RegValue::makeBottom(unsigned Width) {
  RegValue V = makeTop(Width);
  V.TnumPart = Tnum::makeBottom();
  V.UnsignedPart = Interval::makeBottom();
  V.SignedPart = SignedRange::makeBottom();
  V.Bottom = true;
  return V;
}

RegValue RegValue::makeConstant(uint64_t C, unsigned Width) {
  uint64_t Truncated = truncateToWidth(C, Width);
  return RegValue(Tnum::makeConstant(Truncated),
                  Interval::makeConstant(Truncated),
                  SignedRange::makeConstant(signExtend(Truncated, Width)),
                  Width);
}

RegValue RegValue::fromTnum(Tnum T, unsigned Width) {
  assert(T.fitsWidth(Width) && "tnum wider than requested width");
  if (T.isBottom())
    return makeBottom(Width);
  return RegValue(T, Interval::makeTop(Width), SignedRange::makeTop(Width),
                  Width);
}

RegValue RegValue::fromUnsignedRange(uint64_t Min, uint64_t Max,
                                     unsigned Width) {
  assert(fitsWidth(Min, Width) && fitsWidth(Max, Width) && "range too wide");
  return RegValue(Tnum::makeUnknown(Width), Interval(Min, Max),
                  SignedRange::makeTop(Width), Width);
}

bool RegValue::contains(uint64_t V) const {
  if (Bottom)
    return false;
  uint64_t Truncated = truncateToWidth(V, Width);
  return TnumPart.contains(Truncated) && UnsignedPart.contains(Truncated) &&
         SignedPart.contains(signExtend(Truncated, Width));
}

bool RegValue::isSubsetOf(const RegValue &Q) const {
  assert(Width == Q.Width && "width mismatch");
  if (Bottom)
    return true;
  if (Q.Bottom)
    return false;
  return TnumPart.isSubsetOf(Q.TnumPart) &&
         UnsignedPart.isSubsetOf(Q.UnsignedPart) &&
         SignedPart.isSubsetOf(Q.SignedPart);
}

RegValue RegValue::joinWith(const RegValue &Q) const {
  assert(Width == Q.Width && "width mismatch");
  if (Bottom)
    return Q;
  if (Q.Bottom)
    return *this;
  return RegValue(TnumPart.joinWith(Q.TnumPart),
                  UnsignedPart.joinWith(Q.UnsignedPart),
                  SignedPart.joinWith(Q.SignedPart), Width);
}

RegValue RegValue::meetWith(const RegValue &Q) const {
  assert(Width == Q.Width && "width mismatch");
  if (Bottom || Q.Bottom)
    return makeBottom(Width);
  return RegValue(TnumPart.meetWith(Q.TnumPart),
                  UnsignedPart.meetWith(Q.UnsignedPart),
                  SignedPart.meetWith(Q.SignedPart), Width);
}

RegValue RegValue::refineTnum(Tnum T) const {
  if (Bottom)
    return *this;
  return RegValue(TnumPart.meetWith(T), UnsignedPart, SignedPart, Width);
}

RegValue RegValue::refineUnsigned(Interval I) const {
  if (Bottom)
    return *this;
  return RegValue(TnumPart, UnsignedPart.meetWith(I), SignedPart, Width);
}

RegValue RegValue::refineSigned(SignedRange S) const {
  if (Bottom)
    return *this;
  return RegValue(TnumPart, UnsignedPart, SignedPart.meetWith(S), Width);
}

std::string RegValue::toString() const {
  if (Bottom)
    return "<bottom>";
  return formatString("{tnum=%s, u=%s, s=%s}",
                      TnumPart.toString(Width).c_str(),
                      UnsignedPart.toString().c_str(),
                      SignedPart.toString().c_str());
}

bool tnums::operator==(const RegValue &A, const RegValue &B) {
  if (A.Width != B.Width)
    return false;
  if (A.Bottom || B.Bottom)
    return A.Bottom == B.Bottom;
  return A.TnumPart == B.TnumPart && A.UnsignedPart == B.UnsignedPart &&
         A.SignedPart == B.SignedPart;
}

bool RegValue::reduceOnce() {
  bool Changed = false;
  auto Update = [&](auto &Slot, auto NewValue) {
    if (Slot != NewValue) {
      Slot = NewValue;
      Changed = true;
    }
  };

  // Tnum -> unsigned: the least/greatest members bound the interval.
  Update(UnsignedPart, UnsignedPart.meetWith(Interval(
                           TnumPart.minMember(), TnumPart.maxMember())));
  if (UnsignedPart.isBottom())
    return true;

  // Unsigned -> tnum: the common high-bit prefix of [min, max] is known.
  Update(TnumPart, TnumPart.meetWith(
                       Tnum::makeRange(UnsignedPart.min(), UnsignedPart.max())));
  if (TnumPart.isBottom())
    return true;

  uint64_t SignBit = uint64_t(1) << (Width - 1);
  uint64_t BelowSignMask = SignBit - 1; // Bits below the sign position.

  // Tnum sign trit -> signed bounds (unsigned order equals signed order
  // within either half of the number circle).
  Trit SignTrit = TnumPart.tritAt(Width - 1);
  if (SignTrit != Trit::Unknown) {
    int64_t Lo = signExtend(UnsignedPart.min(), Width);
    int64_t Hi = signExtend(UnsignedPart.max(), Width);
    Update(SignedPart, SignedPart.meetWith(
                           Lo <= Hi ? SignedRange(Lo, Hi)
                                    : SignedRange::makeTop(Width)));
  } else {
    // Signed bounds -> tnum sign trit.
    if (SignedPart.isBottom())
      return true;
    if (SignedPart.isNonNegative()) {
      Update(TnumPart, TnumPart.meetWith(Tnum(0, BelowSignMask)));
      Update(UnsignedPart,
             UnsignedPart.meetWith(Interval(0, BelowSignMask)));
    } else if (SignedPart.max() < 0) {
      Update(TnumPart, TnumPart.meetWith(Tnum(SignBit, BelowSignMask)));
      Update(UnsignedPart,
             UnsignedPart.meetWith(Interval(SignBit, lowBitsMask(Width))));
    }
  }
  if (TnumPart.isBottom() || UnsignedPart.isBottom() ||
      SignedPart.isBottom())
    return true;

  // Signed -> unsigned when the signed range stays within one half.
  if (SignedPart.isNonNegative()) {
    Update(UnsignedPart,
           UnsignedPart.meetWith(
               Interval(static_cast<uint64_t>(SignedPart.min()),
                        static_cast<uint64_t>(SignedPart.max()))));
  } else if (SignedPart.max() < 0) {
    Update(UnsignedPart,
           UnsignedPart.meetWith(Interval(
               truncateToWidth(static_cast<uint64_t>(SignedPart.min()), Width),
               truncateToWidth(static_cast<uint64_t>(SignedPart.max()),
                               Width))));
  }
  if (UnsignedPart.isBottom())
    return true;

  // Unsigned -> signed when the unsigned range stays within one half.
  if (UnsignedPart.max() <= BelowSignMask) {
    Update(SignedPart,
           SignedPart.meetWith(
               SignedRange(static_cast<int64_t>(UnsignedPart.min()),
                           static_cast<int64_t>(UnsignedPart.max()))));
  } else if (UnsignedPart.min() >= SignBit) {
    Update(SignedPart, SignedPart.meetWith(SignedRange(
                           signExtend(UnsignedPart.min(), Width),
                           signExtend(UnsignedPart.max(), Width))));
  }
  return Changed;
}

void RegValue::sync() {
  if (Bottom)
    return;
  for (;;) {
    if (TnumPart.isBottom() || UnsignedPart.isBottom() ||
        SignedPart.isBottom()) {
      *this = makeBottom(Width);
      return;
    }
    if (!reduceOnce())
      return;
  }
}

RegValue tnums::applyBinary(BinaryOp Op, const RegValue &L,
                            const RegValue &R) {
  assert(L.Width == R.Width && "width mismatch");
  unsigned Width = L.Width;
  if (L.Bottom || R.Bottom)
    return RegValue::makeBottom(Width);

  Tnum T = applyAbstractBinary(Op, L.TnumPart, R.TnumPart, Width);

  Interval U = Interval::makeTop(Width);
  SignedRange S = SignedRange::makeTop(Width);
  const Interval &LU = L.UnsignedPart;
  const Interval &RU = R.UnsignedPart;
  const SignedRange &LS = L.SignedPart;
  const SignedRange &RS = R.SignedPart;

  switch (Op) {
  case BinaryOp::Add:
    U = intervalAdd(LU, RU, Width);
    S = signedAdd(LS, RS, Width);
    break;
  case BinaryOp::Sub:
    U = intervalSub(LU, RU, Width);
    S = signedSub(LS, RS, Width);
    break;
  case BinaryOp::Mul:
    U = intervalMul(LU, RU, Width);
    break;
  case BinaryOp::Div:
    U = intervalDiv(LU, RU, Width);
    break;
  case BinaryOp::Mod:
    // x % 0 == x in BPF, so a divisor range containing zero caps the result
    // at the larger of the dividend max and divisor-1.
    if (RU.min() > 0)
      U = Interval(0, std::min(LU.max(), RU.max() - 1));
    else
      U = Interval(0, std::max(LU.max(),
                               RU.max() == 0 ? 0 : RU.max() - 1));
    break;
  case BinaryOp::And:
    U = intervalAnd(LU, RU);
    break;
  case BinaryOp::Or:
    U = intervalOr(LU, RU, Width);
    break;
  case BinaryOp::Xor:
    break; // Tnum carries the precision; interval stays top.
  case BinaryOp::Lsh:
    if (R.isConstant())
      U = intervalShl(LU, static_cast<unsigned>(R.constantValue()) &
                              (Width - 1),
                      Width);
    break;
  case BinaryOp::Rsh:
    if (R.isConstant())
      U = intervalShr(LU, static_cast<unsigned>(R.constantValue()) &
                              (Width - 1));
    else
      U = Interval(0, LU.max()); // Right shift never increases a value.
    break;
  case BinaryOp::Arsh:
    if (R.isConstant())
      S = signedArshift(LS, static_cast<unsigned>(R.constantValue()) &
                                (Width - 1));
    break;
  }
  return RegValue(T, U, S, Width);
}

RegValue tnums::truncateToSubreg(const RegValue &V) {
  if (V.isBottom())
    return RegValue::makeBottom(32);
  RegValue Out = RegValue::fromTnum(tnumTruncate(V.tnum(), 32), 32);
  // Numeric bounds carry over only when the 64-bit value already fits the
  // subregister (otherwise wrap-around decouples the two views).
  if (!V.unsignedBounds().isBottom() &&
      V.unsignedBounds().max() <= lowBitsMask(32))
    Out = Out.refineUnsigned(V.unsignedBounds());
  return Out;
}

RegValue tnums::zeroExtendSubreg(const RegValue &V32) {
  assert(V32.width() == 32 && "expected a width-32 value");
  if (V32.isBottom())
    return RegValue::makeBottom(64);
  RegValue Out = RegValue::fromTnum(V32.tnum(), 64);
  if (!V32.unsignedBounds().isBottom())
    Out = Out.refineUnsigned(V32.unsignedBounds());
  return Out;
}

RegValue tnums::applyBinary32(BinaryOp Op, const RegValue &L,
                              const RegValue &R) {
  assert(L.width() == 64 && R.width() == 64 && "alu32 on 64-bit registers");
  if (L.isBottom() || R.isBottom())
    return RegValue::makeBottom(64);
  return zeroExtendSubreg(
      applyBinary(Op, truncateToSubreg(L), truncateToSubreg(R)));
}

void tnums::refineByComparison32(CompareOp Op, bool Taken, RegValue &L,
                                 RegValue &R) {
  assert(L.width() == 64 && R.width() == 64 && "jmp32 on 64-bit registers");
  if (L.isBottom() || R.isBottom())
    return;
  RegValue L32 = truncateToSubreg(L);
  RegValue R32 = truncateToSubreg(R);
  refineByComparison(Op, Taken, L32, R32);
  if (L32.isBottom() || R32.isBottom()) {
    L = RegValue::makeBottom(64);
    R = RegValue::makeBottom(64);
    return;
  }
  uint64_t HighMask = ~lowBitsMask(32);
  // Fold the refined low half back; the comparison says nothing about the
  // high half, so it stays unknown in the meet operand.
  L = L.refineTnum(Tnum(L32.tnum().value(), L32.tnum().mask() | HighMask));
  R = R.refineTnum(Tnum(R32.tnum().value(), R32.tnum().mask() | HighMask));
  if (L.isBottom() || R.isBottom()) {
    L = RegValue::makeBottom(64);
    R = RegValue::makeBottom(64);
    return;
  }
  // Numeric bounds transfer only when the 64-bit value provably fits the
  // subregister (then value == subregister view).
  if (!L.isBottom() && L.unsignedBounds().max() <= lowBitsMask(32))
    L = L.refineUnsigned(L32.unsignedBounds());
  if (!R.isBottom() && R.unsignedBounds().max() <= lowBitsMask(32))
    R = R.refineUnsigned(R32.unsignedBounds());
  if (L.isBottom() || R.isBottom()) {
    L = RegValue::makeBottom(64);
    R = RegValue::makeBottom(64);
  }
}

const char *tnums::compareOpName(CompareOp Op) {
  switch (Op) {
  case CompareOp::Eq:
    return "eq";
  case CompareOp::Ne:
    return "ne";
  case CompareOp::Lt:
    return "lt";
  case CompareOp::Le:
    return "le";
  case CompareOp::Gt:
    return "gt";
  case CompareOp::Ge:
    return "ge";
  case CompareOp::SLt:
    return "slt";
  case CompareOp::SLe:
    return "sle";
  case CompareOp::SGt:
    return "sgt";
  case CompareOp::SGe:
    return "sge";
  case CompareOp::Set:
    return "set";
  }
  assert(false && "unknown compare op");
  return "unknown";
}

bool tnums::applyConcreteCompare(CompareOp Op, uint64_t L, uint64_t R,
                                 unsigned Width) {
  uint64_t UL = truncateToWidth(L, Width);
  uint64_t UR = truncateToWidth(R, Width);
  int64_t SL = signExtend(L, Width);
  int64_t SR = signExtend(R, Width);
  switch (Op) {
  case CompareOp::Eq:
    return UL == UR;
  case CompareOp::Ne:
    return UL != UR;
  case CompareOp::Lt:
    return UL < UR;
  case CompareOp::Le:
    return UL <= UR;
  case CompareOp::Gt:
    return UL > UR;
  case CompareOp::Ge:
    return UL >= UR;
  case CompareOp::SLt:
    return SL < SR;
  case CompareOp::SLe:
    return SL <= SR;
  case CompareOp::SGt:
    return SL > SR;
  case CompareOp::SGe:
    return SL >= SR;
  case CompareOp::Set:
    return (UL & UR) != 0;
  }
  assert(false && "unknown compare op");
  return false;
}

/// The comparison that holds exactly when \p Op does not.
static CompareOp negateCompare(CompareOp Op) {
  switch (Op) {
  case CompareOp::Eq:
    return CompareOp::Ne;
  case CompareOp::Ne:
    return CompareOp::Eq;
  case CompareOp::Lt:
    return CompareOp::Ge;
  case CompareOp::Le:
    return CompareOp::Gt;
  case CompareOp::Gt:
    return CompareOp::Le;
  case CompareOp::Ge:
    return CompareOp::Lt;
  case CompareOp::SLt:
    return CompareOp::SGe;
  case CompareOp::SLe:
    return CompareOp::SGt;
  case CompareOp::SGt:
    return CompareOp::SLe;
  case CompareOp::SGe:
    return CompareOp::SLt;
  case CompareOp::Set:
    assert(false && "Set has no CompareOp negation; handled separately");
    return CompareOp::Set;
  }
  assert(false && "unknown compare op");
  return Op;
}

/// Removes the single constant \p K from \p V where the removal is
/// expressible (kernel-style endpoint trimming).
static RegValue excludeConstant(const RegValue &V, uint64_t K,
                                unsigned Width) {
  if (V.isBottom())
    return V;
  if (V.isConstant())
    return V.constantValue() == K ? RegValue::makeBottom(Width) : V;
  RegValue Out = V;
  const Interval &U = V.unsignedBounds();
  if (U.min() == K)
    Out = Out.refineUnsigned(Interval(K + 1, lowBitsMask(Width)));
  else if (U.max() == K)
    Out = Out.refineUnsigned(Interval(0, K - 1));
  int64_t SK = signExtend(K, Width);
  const SignedRange &S = V.signedBounds();
  if (Out.isBottom() || S.isBottom())
    return Out;
  if (S.min() == SK)
    Out = Out.refineSigned(
        SignedRange(SK + 1, SignedRange::makeTop(Width).max()));
  else if (S.max() == SK)
    Out = Out.refineSigned(
        SignedRange(SignedRange::makeTop(Width).min(), SK - 1));
  return Out;
}

void tnums::refineByComparison(CompareOp Op, bool Taken, RegValue &L,
                               RegValue &R) {
  assert(L.width() == R.width() && "width mismatch");
  unsigned Width = L.width();
  if (L.isBottom() || R.isBottom())
    return;

  // JSET has no dual CompareOp; handle both polarities inline.
  if (Op == CompareOp::Set) {
    if (Taken) {
      // L & R != 0. A constant single-bit R pins that bit of L to 1.
      if (R.isConstant()) {
        uint64_t K = R.constantValue();
        if (K == 0) { // L & 0 != 0 is unsatisfiable.
          L = RegValue::makeBottom(Width);
          R = RegValue::makeBottom(Width);
          return;
        }
        if (popCount(K) == 1)
          L = L.refineTnum(Tnum(K, lowBitsMask(Width) & ~K));
      }
    } else {
      // L & R == 0: every bit known 1 in R must be 0 in L and vice versa.
      if (R.isConstant())
        L = L.refineTnum(Tnum(0, lowBitsMask(Width) & ~R.constantValue()));
      if (L.isConstant())
        R = R.refineTnum(Tnum(0, lowBitsMask(Width) & ~L.constantValue()));
    }
    return;
  }

  CompareOp Effective = Taken ? Op : negateCompare(Op);
  uint64_t WidthMask = lowBitsMask(Width);
  SignedRange STop = SignedRange::makeTop(Width);

  switch (Effective) {
  case CompareOp::Eq: {
    RegValue Meet = L.meetWith(R);
    L = Meet;
    R = Meet;
    break;
  }
  case CompareOp::Ne: {
    RegValue OldL = L;
    if (R.isConstant())
      L = excludeConstant(L, R.constantValue(), Width);
    if (OldL.isConstant())
      R = excludeConstant(R, OldL.constantValue(), Width);
    break;
  }
  case CompareOp::Lt: {
    uint64_t RMax = R.unsignedBounds().isBottom() ? 0 : R.unsignedBounds().max();
    uint64_t LMin = L.unsignedBounds().isBottom() ? 0 : L.unsignedBounds().min();
    if (RMax == 0) { // L < 0 is unsatisfiable.
      L = RegValue::makeBottom(Width);
      R = RegValue::makeBottom(Width);
      return;
    }
    L = L.refineUnsigned(Interval(0, RMax - 1));
    if (LMin == WidthMask)
      R = RegValue::makeBottom(Width);
    else
      R = R.refineUnsigned(Interval(LMin + 1, WidthMask));
    break;
  }
  case CompareOp::Le: {
    uint64_t RMax = R.unsignedBounds().max();
    uint64_t LMin = L.unsignedBounds().min();
    L = L.refineUnsigned(Interval(0, RMax));
    R = R.refineUnsigned(Interval(LMin, WidthMask));
    break;
  }
  case CompareOp::Gt: {
    uint64_t RMin = R.unsignedBounds().min();
    uint64_t LMax = L.unsignedBounds().max();
    if (RMin == WidthMask) { // L > all-ones is unsatisfiable.
      L = RegValue::makeBottom(Width);
      R = RegValue::makeBottom(Width);
      return;
    }
    L = L.refineUnsigned(Interval(RMin + 1, WidthMask));
    if (LMax == 0)
      R = RegValue::makeBottom(Width);
    else
      R = R.refineUnsigned(Interval(0, LMax - 1));
    break;
  }
  case CompareOp::Ge: {
    uint64_t RMin = R.unsignedBounds().min();
    uint64_t LMax = L.unsignedBounds().max();
    L = L.refineUnsigned(Interval(RMin, WidthMask));
    R = R.refineUnsigned(Interval(0, LMax));
    break;
  }
  case CompareOp::SLt: {
    int64_t RMax = R.signedBounds().max();
    int64_t LMin = L.signedBounds().min();
    if (RMax == STop.min()) {
      L = RegValue::makeBottom(Width);
      R = RegValue::makeBottom(Width);
      return;
    }
    L = L.refineSigned(SignedRange(STop.min(), RMax - 1));
    if (LMin == STop.max())
      R = RegValue::makeBottom(Width);
    else
      R = R.refineSigned(SignedRange(LMin + 1, STop.max()));
    break;
  }
  case CompareOp::SLe: {
    int64_t RMax = R.signedBounds().max();
    int64_t LMin = L.signedBounds().min();
    L = L.refineSigned(SignedRange(STop.min(), RMax));
    R = R.refineSigned(SignedRange(LMin, STop.max()));
    break;
  }
  case CompareOp::SGt: {
    int64_t RMin = R.signedBounds().min();
    int64_t LMax = L.signedBounds().max();
    if (RMin == STop.max()) {
      L = RegValue::makeBottom(Width);
      R = RegValue::makeBottom(Width);
      return;
    }
    L = L.refineSigned(SignedRange(RMin + 1, STop.max()));
    if (LMax == STop.min())
      R = RegValue::makeBottom(Width);
    else
      R = R.refineSigned(SignedRange(STop.min(), LMax - 1));
    break;
  }
  case CompareOp::SGe: {
    int64_t RMin = R.signedBounds().min();
    int64_t LMax = L.signedBounds().max();
    L = L.refineSigned(SignedRange(RMin, STop.max()));
    R = R.refineSigned(SignedRange(STop.min(), LMax));
    break;
  }
  case CompareOp::Set:
    assert(false && "handled above");
    break;
  }

  // A refinement that emptied one side makes the whole branch unreachable.
  if (L.isBottom() || R.isBottom()) {
    L = RegValue::makeBottom(Width);
    R = RegValue::makeBottom(Width);
  }
}
