//===- domain/Interval.cpp - Unsigned interval domain ---------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "domain/Interval.h"

#include "support/Table.h"

#include <algorithm>
#include <bit>

using namespace tnums;

Interval::Interval(uint64_t MinV, uint64_t MaxV)
    : Min(MinV), Max(MaxV), Bottom(false) {
  assert(MinV <= MaxV && "inverted interval; use makeBottom for empty");
}

bool Interval::isSubsetOf(const Interval &Q) const {
  if (Bottom)
    return true;
  if (Q.Bottom)
    return false;
  return Q.Min <= Min && Max <= Q.Max;
}

Interval Interval::joinWith(const Interval &Q) const {
  if (Bottom)
    return Q;
  if (Q.Bottom)
    return *this;
  return Interval(std::min(Min, Q.Min), std::max(Max, Q.Max));
}

Interval Interval::meetWith(const Interval &Q) const {
  if (Bottom || Q.Bottom)
    return makeBottom();
  uint64_t NewMin = std::max(Min, Q.Min);
  uint64_t NewMax = std::min(Max, Q.Max);
  if (NewMin > NewMax)
    return makeBottom();
  return Interval(NewMin, NewMax);
}

uint64_t Interval::size() const {
  if (Bottom)
    return 0;
  uint64_t Span = Max - Min;
  return Span == ~uint64_t(0) ? ~uint64_t(0) : Span + 1;
}

std::string Interval::toString() const {
  if (Bottom)
    return "<bottom>";
  return formatString("[%llu, %llu]", static_cast<unsigned long long>(Min),
                      static_cast<unsigned long long>(Max));
}

Interval tnums::intervalAdd(const Interval &P, const Interval &Q,
                            unsigned Width) {
  if (P.isBottom() || Q.isBottom())
    return Interval::makeBottom();
  uint64_t WidthMask = lowBitsMask(Width);
  // Wrap-around makes the result set non-contiguous; give up like the
  // kernel's scalar_min_max_add does on overflow.
  if (Q.max() > WidthMask - P.max())
    return Interval::makeTop(Width);
  return Interval(P.min() + Q.min(), P.max() + Q.max());
}

Interval tnums::intervalSub(const Interval &P, const Interval &Q,
                            unsigned Width) {
  if (P.isBottom() || Q.isBottom())
    return Interval::makeBottom();
  if (P.min() < Q.max()) // Some difference wraps under zero.
    return Interval::makeTop(Width);
  return Interval(P.min() - Q.max(), P.max() - Q.min());
}

Interval tnums::intervalMul(const Interval &P, const Interval &Q,
                            unsigned Width) {
  if (P.isBottom() || Q.isBottom())
    return Interval::makeBottom();
  uint64_t WidthMask = lowBitsMask(Width);
  unsigned __int128 High = static_cast<unsigned __int128>(P.max()) *
                           static_cast<unsigned __int128>(Q.max());
  if (High > WidthMask)
    return Interval::makeTop(Width);
  return Interval(P.min() * Q.min(), static_cast<uint64_t>(High));
}

Interval tnums::intervalDiv(const Interval &P, const Interval &Q,
                            unsigned Width) {
  (void)Width; // Unsigned division never grows past the dividend's width.
  if (P.isBottom() || Q.isBottom())
    return Interval::makeBottom();
  // Only a constant nonzero divisor divides monotonically; a divisor range
  // containing 0 hits the BPF x / 0 == 0 special case.
  if (Q.isConstant() && Q.min() != 0)
    return Interval(P.min() / Q.min(), P.max() / Q.min());
  if (Q.min() > 0)
    return Interval(P.min() / Q.max(), P.max() / Q.min());
  return Interval(0, P.max()); // Divisor may be 0 -> result 0, or >= 1.
}

Interval tnums::intervalShl(const Interval &P, unsigned Shift,
                            unsigned Width) {
  if (P.isBottom())
    return Interval::makeBottom();
  assert(Shift < Width && "shift amount out of range");
  uint64_t WidthMask = lowBitsMask(Width);
  if (Shift != 0 && P.max() > (WidthMask >> Shift))
    return Interval::makeTop(Width);
  return Interval(P.min() << Shift, P.max() << Shift);
}

Interval tnums::intervalShr(const Interval &P, unsigned Shift) {
  if (P.isBottom())
    return Interval::makeBottom();
  assert(Shift < MaxBitWidth && "shift amount out of range");
  return Interval(P.min() >> Shift, P.max() >> Shift);
}

Interval tnums::intervalAnd(const Interval &P, const Interval &Q) {
  if (P.isBottom() || Q.isBottom())
    return Interval::makeBottom();
  return Interval(0, std::min(P.max(), Q.max()));
}

Interval tnums::intervalOr(const Interval &P, const Interval &Q,
                           unsigned Width) {
  if (P.isBottom() || Q.isBottom())
    return Interval::makeBottom();
  // x | y >= max(x, y) and x | y < 2^ceil: round the larger max up to the
  // next all-ones pattern.
  uint64_t MaxOr = P.max() | Q.max();
  unsigned Bits = MaxBitWidth - static_cast<unsigned>(std::countl_zero(MaxOr));
  uint64_t Ceiling = Bits == 0 ? 0 : lowBitsMask(Bits);
  return Interval(std::max(P.min(), Q.min()),
                  std::min(Ceiling, lowBitsMask(Width)));
}
