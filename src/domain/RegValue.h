//===- domain/RegValue.h - Reduced product register value -------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract value the BPF analyzer tracks per register: the reduced
/// product of a tnum, an unsigned interval, and a signed range, mirroring
/// the Linux verifier's bpf_reg_state scalar tracking (var_off + umin/umax
/// + smin/smax) and its reg_bounds_sync reduction. The paper's intro
/// example -- proving x <= 8 from the tnum 01µ0 -- flows through exactly
/// this reduction: the tnum bounds [min member, max member] feed the
/// interval, which the verifier compares against the access limit.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_DOMAIN_REGVALUE_H
#define TNUMS_DOMAIN_REGVALUE_H

#include "domain/Interval.h"
#include "domain/SignedRange.h"
#include "tnum/Tnum.h"
#include "verify/Oracle.h"

#include <string>

namespace tnums {

class RegValue;

/// Applies the abstract transfer function for \p Op to \p L and \p R,
/// computing every component and reducing. Widths must match.
RegValue applyBinary(BinaryOp Op, const RegValue &L, const RegValue &R);

bool operator==(const RegValue &A, const RegValue &B);

/// Reduced product Tnum × Interval × SignedRange at a fixed bit width.
/// All mutating operations keep the three components mutually consistent
/// (sync()) and collapse to a canonical bottom when any component empties.
class RegValue {
public:
  /// Top at \p Width (everything unknown).
  static RegValue makeTop(unsigned Width = MaxBitWidth);

  /// Bottom (unreachable) at \p Width.
  static RegValue makeBottom(unsigned Width = MaxBitWidth);

  /// The exact abstraction of constant \p C (truncated to the width).
  static RegValue makeConstant(uint64_t C, unsigned Width = MaxBitWidth);

  /// The best product value whose tnum component is \p T.
  static RegValue fromTnum(Tnum T, unsigned Width = MaxBitWidth);

  /// The best product value with unsigned bounds [\p Min, \p Max].
  static RegValue fromUnsignedRange(uint64_t Min, uint64_t Max,
                                    unsigned Width = MaxBitWidth);

  unsigned width() const { return Width; }
  bool isBottom() const { return Bottom; }
  bool isConstant() const { return !Bottom && TnumPart.isConstant(); }
  uint64_t constantValue() const { return TnumPart.constantValue(); }

  const Tnum &tnum() const { return TnumPart; }
  const Interval &unsignedBounds() const { return UnsignedPart; }
  const SignedRange &signedBounds() const { return SignedPart; }

  /// Concrete membership: \p V (width-truncated) lies in all three
  /// components.
  bool contains(uint64_t V) const;

  /// Product order: componentwise subset.
  bool isSubsetOf(const RegValue &Q) const;

  RegValue joinWith(const RegValue &Q) const;
  RegValue meetWith(const RegValue &Q) const;

  /// Replaces the tnum component with its meet with \p T and re-syncs.
  RegValue refineTnum(Tnum T) const;

  /// Replaces the unsigned bounds with their meet with \p I and re-syncs.
  RegValue refineUnsigned(Interval I) const;

  /// Replaces the signed bounds with their meet with \p S and re-syncs.
  RegValue refineSigned(SignedRange S) const;

  std::string toString() const;

  friend bool tnums::operator==(const RegValue &A, const RegValue &B);
  friend RegValue tnums::applyBinary(BinaryOp Op, const RegValue &L,
                                     const RegValue &R);

private:
  RegValue(Tnum T, Interval U, SignedRange S, unsigned WidthV);

  /// Propagates information between the three components to a local
  /// fixpoint (the kernel's reg_bounds_sync), collapsing to bottom on
  /// contradiction.
  void sync();

  /// Folds tnum-derived bounds into the interval and vice versa; one
  /// reduction round. Returns true if anything changed.
  bool reduceOnce();

  Tnum TnumPart;
  Interval UnsignedPart;
  SignedRange SignedPart;
  unsigned Width;
  bool Bottom;
};

inline bool operator!=(const RegValue &A, const RegValue &B) {
  return !(A == B);
}

/// BPF conditional-jump comparison kinds (subset used by the analyzer).
enum class CompareOp {
  Eq,   ///< ==
  Ne,   ///< !=
  Lt,   ///< unsigned <
  Le,   ///< unsigned <=
  Gt,   ///< unsigned >
  Ge,   ///< unsigned >=
  SLt,  ///< signed <
  SLe,  ///< signed <=
  SGt,  ///< signed >
  SGe,  ///< signed >=
  Set,  ///< (L & R) != 0
};

/// Stable lower-case name ("eq", "slt", ...).
const char *compareOpName(CompareOp Op);

/// The concrete comparison semantics at \p Width.
bool applyConcreteCompare(CompareOp Op, uint64_t L, uint64_t R,
                          unsigned Width);

//===----------------------------------------------------------------------===//
// BPF ALU32 support: 32-bit operations act on the low subregister and
// zero-extend (kernel alu32 path, built on the tnum subreg helpers).
//===----------------------------------------------------------------------===//

/// The width-32 view of a width-64 value: the tnum's low subregister, plus
/// whatever unsigned bounds already fit in 32 bits.
RegValue truncateToSubreg(const RegValue &V);

/// Zero-extends a width-32 value back to width 64 (the high tnum bits
/// become known zero, so the sign trit pins the signed range too).
RegValue zeroExtendSubreg(const RegValue &V32);

/// The BPF_ALU (32-bit) transfer function: truncate both operands to the
/// subregister, apply \p Op at width 32 (shift amounts masked to 31), and
/// zero-extend. Inputs and output are width-64 values.
RegValue applyBinary32(BinaryOp Op, const RegValue &L, const RegValue &R);

/// Refines \p L and \p R under the assumption that "L op R" evaluated to
/// \p Taken, mirroring the kernel's reg_set_min_max branch refinement.
/// Either output may become bottom (branch unreachable). Sound: every
/// concrete pair (l, r) in the inputs satisfying the assumption remains in
/// the outputs.
void refineByComparison(CompareOp Op, bool Taken, RegValue &L, RegValue &R);

/// BPF JMP32 refinement: the comparison reads only the low subregisters,
/// so refine the width-32 views and fold the learned low bits back into
/// the 64-bit values (high bits unconstrained). Width-64 inputs.
void refineByComparison32(CompareOp Op, bool Taken, RegValue &L,
                          RegValue &R);

} // namespace tnums

#endif // TNUMS_DOMAIN_REGVALUE_H
