//===- bpf/Program.cpp - BPF program container and validation -------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Program.h"

#include "support/Table.h"

using namespace tnums;
using namespace tnums::bpf;

std::optional<std::string> Program::validate() const {
  if (Insns.empty())
    return std::string("program is empty");

  for (size_t Pc = 0; Pc != Insns.size(); ++Pc) {
    const Insn &I = Insns[Pc];
    auto Fail = [&](const std::string &Why) {
      return formatString("insn %zu (%s): %s", Pc, I.toString().c_str(),
                          Why.c_str());
    };

    if (I.Dst >= NumRegs || I.Src >= NumRegs)
      return Fail("register number out of range");

    switch (I.InsnKind) {
    case Insn::Kind::Alu:
    case Insn::Kind::LoadImm:
      if (I.Dst == R10)
        return Fail("write to frame pointer r10");
      break;
    case Insn::Kind::Load:
      if (I.Dst == R10)
        return Fail("write to frame pointer r10");
      [[fallthrough]];
    case Insn::Kind::Store:
      if (I.Size != 1 && I.Size != 2 && I.Size != 4 && I.Size != 8)
        return Fail("bad memory access size");
      break;
    case Insn::Kind::Jmp:
    case Insn::Kind::Ja: {
      int64_t Target = static_cast<int64_t>(Pc) + 1 + I.Offset;
      if (Target < 0 || Target >= static_cast<int64_t>(Insns.size()))
        return Fail("jump out of range");
      break;
    }
    case Insn::Kind::Exit:
      break;
    }

    // The final instruction must not fall through past the end.
    bool FallsThrough = I.InsnKind != Insn::Kind::Ja &&
                        I.InsnKind != Insn::Kind::Exit;
    if (FallsThrough && Pc + 1 == Insns.size())
      return Fail("fall-through past end of program");
  }
  return std::nullopt;
}

std::string Program::disassemble() const {
  std::string Text;
  for (size_t Pc = 0; Pc != Insns.size(); ++Pc)
    Text += formatString("%4zu: %s\n", Pc, Insns[Pc].toString().c_str());
  return Text;
}
