//===- bpf/Decoded.cpp - Pre-decoded threaded-dispatch executor -----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
//
// decode() lowers validated Insns into flat DInsn records whose Op field
// indexes the specialized handlers in DecodedBody.inc; run() executes
// them with computed-goto threaded dispatch (GCC/Clang) or a portable
// switch loop. The handler bodies live in DecodedBody.inc and are
// included once per dispatch mode, so the two modes cannot drift.
//
//===----------------------------------------------------------------------===//

#include "bpf/Decoded.h"

#include "support/Metrics.h"
#include "support/Table.h"

#include <cassert>
#include <cstring>

#if defined(__GNUC__) || defined(__clang__)
#define TNUMS_HAVE_COMPUTED_GOTO 1
#else
#define TNUMS_HAVE_COMPUTED_GOTO 0
#endif

using namespace tnums;
using namespace tnums::bpf;

namespace {

//===----------------------------------------------------------------------===//
// The specialized opcode set. One X(name) per opcode, in dispatch-table
// order; the grouping and order are load-bearing -- decode() computes
// opcode values arithmetically from (AluOp, UsesImm, Is32, Size), and the
// static_asserts below pin the layout.
//===----------------------------------------------------------------------===//

#define TNUMS_ARITH_LIST(X)                                                    \
  X(Add) X(Sub) X(Mul) X(Div) X(Mod) X(And) X(Or) X(Xor) X(Lsh) X(Rsh) X(Arsh)

// CompareOp enumeration order (RegValue.h); the jump opcode blocks follow
// it so decode() can compute the opcode arithmetically.
#define TNUMS_COMPARE_LIST(X)                                                  \
  X(Eq) X(Ne) X(Lt) X(Le) X(Gt) X(Ge) X(SLt) X(SLe) X(SGt) X(SGe) X(Set)

#define TNUMS_DOP_ARITH_VARIANTS(X, NAME)                                      \
  X(NAME##Reg64) X(NAME##Imm64) X(NAME##Reg32) X(NAME##Imm32)

#define TNUMS_DOP_JMP_VARIANTS(X, NAME)                                        \
  X(Jmp##NAME##Reg64) X(Jmp##NAME##Imm64) X(Jmp##NAME##Reg32)                  \
  X(Jmp##NAME##Imm32)

#define TNUMS_DOP_LIST(X)                                                      \
  TNUMS_DOP_ARITH_VARIANTS(X, Add)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Sub)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Mul)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Div)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Mod)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, And)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Or)                                              \
  TNUMS_DOP_ARITH_VARIANTS(X, Xor)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Lsh)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Rsh)                                             \
  TNUMS_DOP_ARITH_VARIANTS(X, Arsh)                                            \
  X(MovReg64) X(MovImm64) X(MovReg32) X(MovImm32)                              \
  X(Neg64) X(Neg32)                                                            \
  X(LoadImm)                                                                   \
  X(Load1) X(Load2) X(Load4) X(Load8)                                          \
  X(StoreReg1) X(StoreReg2) X(StoreReg4) X(StoreReg8)                          \
  X(StoreImm1) X(StoreImm2) X(StoreImm4) X(StoreImm8)                          \
  TNUMS_DOP_JMP_VARIANTS(X, Eq)                                                \
  TNUMS_DOP_JMP_VARIANTS(X, Ne)                                                \
  TNUMS_DOP_JMP_VARIANTS(X, Lt)                                                \
  TNUMS_DOP_JMP_VARIANTS(X, Le)                                                \
  TNUMS_DOP_JMP_VARIANTS(X, Gt)                                                \
  TNUMS_DOP_JMP_VARIANTS(X, Ge)                                                \
  TNUMS_DOP_JMP_VARIANTS(X, SLt)                                               \
  TNUMS_DOP_JMP_VARIANTS(X, SLe)                                               \
  TNUMS_DOP_JMP_VARIANTS(X, SGt)                                               \
  TNUMS_DOP_JMP_VARIANTS(X, SGe)                                               \
  TNUMS_DOP_JMP_VARIANTS(X, Set)                                               \
  X(Ja) X(Exit)                                                                \
  TNUMS_DOP_FUSE_LIST(X)

// Fused superinstructions: decode() rewrites the FIRST record of a hot
// adjacent pair to one of these opcodes, executing both instructions in a
// single dispatch. The second record keeps its original opcode (its
// operands are read via I[1] after the mid-pair step), so jumps into the
// middle of a pair execute it standalone and nothing changes observably:
// per-instruction step counting, trap pcs, and the step-limit check
// between the two halves are all preserved. The families target the
// generated hot paths: mov+mask, address+load, value+induction updates,
// induction+back-edge, and the mov+exit epilogue.
#define TNUMS_DOP_FUSE_LIST(X)                                                 \
  X(FuseMovRegAddImm64) X(FuseMovRegSubImm64) X(FuseMovRegMulImm64)            \
  X(FuseMovRegDivImm64) X(FuseMovRegModImm64) X(FuseMovRegAndImm64)            \
  X(FuseMovRegOrImm64) X(FuseMovRegXorImm64) X(FuseMovRegLshImm64)             \
  X(FuseMovRegRshImm64) X(FuseMovRegArshImm64)                                 \
  X(FuseAddRegLoad1) X(FuseAddRegLoad2) X(FuseAddRegLoad4) X(FuseAddRegLoad8)  \
  X(FuseAddRegAddImm64) X(FuseAddRegSubImm64)                                  \
  X(FuseSubRegAddImm64) X(FuseSubRegSubImm64)                                  \
  X(FuseMulRegAddImm64) X(FuseMulRegSubImm64)                                  \
  X(FuseDivRegAddImm64) X(FuseDivRegSubImm64)                                  \
  X(FuseModRegAddImm64) X(FuseModRegSubImm64)                                  \
  X(FuseAndRegAddImm64) X(FuseAndRegSubImm64)                                  \
  X(FuseOrRegAddImm64) X(FuseOrRegSubImm64)                                    \
  X(FuseXorRegAddImm64) X(FuseXorRegSubImm64)                                  \
  X(FuseLshRegAddImm64) X(FuseLshRegSubImm64)                                  \
  X(FuseRshRegAddImm64) X(FuseRshRegSubImm64)                                  \
  X(FuseArshRegAddImm64) X(FuseArshRegSubImm64)                                \
  X(FuseAddImmJmpEqImm64) X(FuseSubImmJmpEqImm64)                              \
  X(FuseAddImmJmpNeImm64) X(FuseSubImmJmpNeImm64)                              \
  X(FuseAddImmJmpLtImm64) X(FuseSubImmJmpLtImm64)                              \
  X(FuseAddImmJmpLeImm64) X(FuseSubImmJmpLeImm64)                              \
  X(FuseAddImmJmpGtImm64) X(FuseSubImmJmpGtImm64)                              \
  X(FuseAddImmJmpGeImm64) X(FuseSubImmJmpGeImm64)                              \
  X(FuseAddImmJmpSLtImm64) X(FuseSubImmJmpSLtImm64)                            \
  X(FuseAddImmJmpSLeImm64) X(FuseSubImmJmpSLeImm64)                            \
  X(FuseAddImmJmpSGtImm64) X(FuseSubImmJmpSGtImm64)                            \
  X(FuseAddImmJmpSGeImm64) X(FuseSubImmJmpSGeImm64)                            \
  X(FuseAddImmJmpSetImm64) X(FuseSubImmJmpSetImm64)                            \
  X(FuseAddImmJa) X(FuseSubImmJa)                                              \
  X(FuseMovRegExit) X(FuseMovImmMovImm64)                                      \
  X(FuseLoad1XorReg64) X(FuseLoad1AndImm64)                                    \
  X(FuseMovRegAndImmAddReg64) X(FuseAddRegSubImmJa)                            \
  X(FuseMaskedByteAccum)                                                       \
  X(FuseAddImmAddImmJmpLt) X(FuseSubImmAddImmJmpLt)                            \
  X(FuseMulImmAddImmJmpLt) X(FuseDivImmAddImmJmpLt)                            \
  X(FuseModImmAddImmJmpLt) X(FuseAndImmAddImmJmpLt)                            \
  X(FuseOrImmAddImmJmpLt) X(FuseXorImmAddImmJmpLt)                             \
  X(FuseLshImmAddImmJmpLt) X(FuseRshImmAddImmJmpLt)                            \
  X(FuseArshImmAddImmJmpLt)                                                    \
  X(FuseMaskedAccumJmpLt) X(FuseDownMaskedIter)                                \
  X(FuseDownRandAdd) X(FuseDownRandSub) X(FuseDownRandMul)                     \
  X(FuseDownRandDiv) X(FuseDownRandMod) X(FuseDownRandAnd)                     \
  X(FuseDownRandOr) X(FuseDownRandXor) X(FuseDownRandLsh)                      \
  X(FuseDownRandRsh) X(FuseDownRandArsh)                                       \
  X(FuseMaskedAccumJmpLtT) X(FuseDownMaskedIterT)

enum DOp : uint8_t {
#define TNUMS_DOP_ENUM(Name) D##Name,
  TNUMS_DOP_LIST(TNUMS_DOP_ENUM)
#undef TNUMS_DOP_ENUM
};

// decode() computes arithmetic opcodes as AluOp * 4 + UsesImm + 2 * Is32,
// mov/jump/memory opcodes as base + offset. Pin every assumption.
static_assert(DAddReg64 == 0 && DAddImm64 == 1 && DAddReg32 == 2 &&
                  DAddImm32 == 3,
              "arith variant order is (reg64, imm64, reg32, imm32)");
static_assert(DArshImm32 ==
                  static_cast<unsigned>(AluOp::Arsh) * 4 + 3,
              "arith opcode blocks follow AluOp order");
static_assert(DMovReg64 == 44 && DNeg64 == 48 && DLoadImm == 50,
              "mov/neg/loadimm block layout");
static_assert(DLoad8 == DLoad1 + 3 && DStoreReg8 == DStoreReg1 + 3 &&
                  DStoreImm8 == DStoreImm1 + 3,
              "memory opcodes are ordered by log2(size)");
static_assert(DJmpEqReg64 == 63 && DJmpEqImm64 == DJmpEqReg64 + 1 &&
                  DJmpEqReg32 == DJmpEqReg64 + 2 &&
                  DJmpEqImm32 == DJmpEqReg64 + 3,
              "jump variant order is (reg64, imm64, reg32, imm32)");
static_assert(DJmpSetReg64 ==
                  DJmpEqReg64 + static_cast<unsigned>(CompareOp::Set) * 4,
              "jump opcode blocks follow CompareOp order");
static_assert(DJa == 107 && DExit == 108, "plain opcode count");
static_assert(DFuseMovRegAddImm64 == 109 && DFuseMovRegArshImm64 == 119,
              "mov+aluimm fused block follows AluOp order");
static_assert(DFuseAddRegLoad1 == 120 && DFuseAddRegLoad8 == 123,
              "addreg+load fused block is ordered by log2(size)");
static_assert(DFuseAddRegAddImm64 == 124 && DFuseArshRegSubImm64 == 145,
              "alureg+{add,sub}imm fused block is AluOp-major, add-then-sub");
static_assert(DFuseAddImmJmpEqImm64 == 146 && DFuseSubImmJmpSetImm64 == 167,
              "{add,sub}imm+jmpimm fused block is CompareOp-major");
static_assert(DFuseAddImmJa == 168 && DFuseSubImmJa == 169 &&
                  DFuseMovRegExit == 170 && DFuseMovImmMovImm64 == 171 &&
                  DFuseLoad1XorReg64 == 172 && DFuseLoad1AndImm64 == 173 &&
                  DFuseMovRegAndImmAddReg64 == 174 &&
                  DFuseAddRegSubImmJa == 175 && DFuseMaskedByteAccum == 176,
              "fused opcode count");
static_assert(DFuseAddImmAddImmJmpLt == 177 &&
                  DFuseArshImmAddImmJmpLt == 187,
              "aluimm+addimm+jmplt fused block follows AluOp order");
static_assert(DFuseMaskedAccumJmpLt == 188 && DFuseDownMaskedIter == 189 &&
                  DFuseDownRandAdd == 190 && DFuseDownRandArsh == 200,
              "whole-iteration fused block follows AluOp order");
static_assert(DFuseMaskedAccumJmpLtT == 201 && DFuseDownMaskedIterT == 202,
              "tied whole-iteration variants close the opcode space");

/// The fused opcode executing \p A then \p B in one dispatch, or 0xFF
/// when the pair is not a fusion candidate. Mirrors the
/// TNUMS_DOP_FUSE_LIST layout pinned above.
inline uint8_t fusedOpcode(uint8_t A, uint8_t B) {
  // mov rd, rs; <aluop> rd2, imm
  if (A == DMovReg64 && B < DMovReg64 && (B & 3) == 1)
    return static_cast<uint8_t>(DFuseMovRegAddImm64 + (B >> 2));
  // add rd, rs; ldx rd2, [rs2 + off]
  if (A == DAddReg64 && B >= DLoad1 && B <= DLoad8)
    return static_cast<uint8_t>(DFuseAddRegLoad1 + (B - DLoad1));
  // <aluop> rd, rs; {add,sub} rd2, imm
  if (A < DMovReg64 && (A & 3) == 0 && (B == DAddImm64 || B == DSubImm64))
    return static_cast<uint8_t>(DFuseAddRegAddImm64 + (A >> 2) * 2 +
                                (B == DSubImm64 ? 1 : 0));
  // {add,sub} rd, imm; j<cmp> rd2, imm2, target
  if ((A == DAddImm64 || A == DSubImm64) && B >= DJmpEqImm64 &&
      B <= DJmpSetImm32 && ((B - DJmpEqReg64) & 3) == 1)
    return static_cast<uint8_t>(DFuseAddImmJmpEqImm64 +
                                ((B - DJmpEqReg64) >> 2) * 2 +
                                (A == DSubImm64 ? 1 : 0));
  // {add,sub} rd, imm; ja target
  if ((A == DAddImm64 || A == DSubImm64) && B == DJa)
    return static_cast<uint8_t>(DFuseAddImmJa + (A == DSubImm64 ? 1 : 0));
  // mov rd, rs; exit
  if (A == DMovReg64 && B == DExit)
    return static_cast<uint8_t>(DFuseMovRegExit);
  // mov rd, imm; mov rd2, imm2
  if (A == DMovImm64 && B == DMovImm64)
    return static_cast<uint8_t>(DFuseMovImmMovImm64);
  // ldx rd, [rs + off] (1 byte); xor rd2, rs2 -- the generated masked
  // loop body's accumulate step.
  if (A == DLoad1 && B == DXorReg64)
    return static_cast<uint8_t>(DFuseLoad1XorReg64);
  // ldx rd, [rs + off] (1 byte); and rd2, imm -- load-byte-then-mask, the
  // generated down-counting loop's trip-count setup.
  if (A == DLoad1 && B == DAndImm64)
    return static_cast<uint8_t>(DFuseLoad1AndImm64);
  return 0xFF;
}

/// Resolves the access [Addr, Addr + Size) to a host pointer inside the
/// context region or the stack, or nullptr when out of bounds -- the same
/// address model as Interpreter::resolve.
inline uint8_t *spanAt(uint8_t *MemData, uint64_t MemSize, uint8_t *StackData,
                       uint64_t Addr, unsigned Size) {
  if (Addr >= MemBase && Size <= MemSize && Addr - MemBase <= MemSize - Size)
    return MemData + (Addr - MemBase);
  constexpr uint64_t StackLow = StackBase - StackSize;
  if (Addr >= StackLow && Addr - StackLow <= StackSize - Size &&
      Addr < StackBase)
    return StackData + (Addr - StackLow);
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Per-op evaluation expressions (BPF conventions: x / 0 == 0, x % 0 == x,
// shift amounts masked to 63 / 31, 32-bit results zero-extended). The
// 64-bit forms take uint64_t operands, the 32-bit forms uint32_t and
// return the zero-extended uint64_t register value.
//===----------------------------------------------------------------------===//

#define TNUMS_EVAL64_Add(L, R) ((L) + (R))
#define TNUMS_EVAL64_Sub(L, R) ((L) - (R))
#define TNUMS_EVAL64_Mul(L, R) ((L) * (R))
#define TNUMS_EVAL64_Div(L, R) ((R) == 0 ? 0 : (L) / (R))
#define TNUMS_EVAL64_Mod(L, R) ((R) == 0 ? (L) : (L) % (R))
#define TNUMS_EVAL64_And(L, R) ((L) & (R))
#define TNUMS_EVAL64_Or(L, R) ((L) | (R))
#define TNUMS_EVAL64_Xor(L, R) ((L) ^ (R))
#define TNUMS_EVAL64_Lsh(L, R) ((L) << ((R) & 63))
#define TNUMS_EVAL64_Rsh(L, R) ((L) >> ((R) & 63))
#define TNUMS_EVAL64_Arsh(L, R)                                                \
  (static_cast<uint64_t>(static_cast<int64_t>(L) >> ((R) & 63)))

#define TNUMS_EVAL32_Add(L, R) (static_cast<uint32_t>((L) + (R)))
#define TNUMS_EVAL32_Sub(L, R) (static_cast<uint32_t>((L) - (R)))
#define TNUMS_EVAL32_Mul(L, R) (static_cast<uint32_t>((L) * (R)))
#define TNUMS_EVAL32_Div(L, R) ((R) == 0 ? 0u : (L) / (R))
#define TNUMS_EVAL32_Mod(L, R) ((R) == 0 ? (L) : (L) % (R))
#define TNUMS_EVAL32_And(L, R) ((L) & (R))
#define TNUMS_EVAL32_Or(L, R) ((L) | (R))
#define TNUMS_EVAL32_Xor(L, R) ((L) ^ (R))
#define TNUMS_EVAL32_Lsh(L, R) (static_cast<uint32_t>((L) << ((R) & 31)))
#define TNUMS_EVAL32_Rsh(L, R) ((L) >> ((R) & 31))
#define TNUMS_EVAL32_Arsh(L, R)                                                \
  (static_cast<uint32_t>(static_cast<int32_t>(L) >> ((R) & 31)))

//===----------------------------------------------------------------------===//
// Per-compare expressions, specialized into the jump opcodes at decode
// time so the hot loop never calls out to applyConcreteCompare. The
// 64-bit forms match applyConcreteCompare at MaxBitWidth, the 32-bit
// forms at width 32 (operate on the low subregister; signed compares
// sign-extend it, exactly like signExtend(L, 32)).
//===----------------------------------------------------------------------===//

#define TNUMS_CMP64_Eq(L, R) ((L) == (R))
#define TNUMS_CMP64_Ne(L, R) ((L) != (R))
#define TNUMS_CMP64_Lt(L, R) ((L) < (R))
#define TNUMS_CMP64_Le(L, R) ((L) <= (R))
#define TNUMS_CMP64_Gt(L, R) ((L) > (R))
#define TNUMS_CMP64_Ge(L, R) ((L) >= (R))
#define TNUMS_CMP64_SLt(L, R)                                                  \
  (static_cast<int64_t>(L) < static_cast<int64_t>(R))
#define TNUMS_CMP64_SLe(L, R)                                                  \
  (static_cast<int64_t>(L) <= static_cast<int64_t>(R))
#define TNUMS_CMP64_SGt(L, R)                                                  \
  (static_cast<int64_t>(L) > static_cast<int64_t>(R))
#define TNUMS_CMP64_SGe(L, R)                                                  \
  (static_cast<int64_t>(L) >= static_cast<int64_t>(R))
#define TNUMS_CMP64_Set(L, R) (((L) & (R)) != 0)

#define TNUMS_CMP32_Eq(L, R)                                                   \
  (static_cast<uint32_t>(L) == static_cast<uint32_t>(R))
#define TNUMS_CMP32_Ne(L, R)                                                   \
  (static_cast<uint32_t>(L) != static_cast<uint32_t>(R))
#define TNUMS_CMP32_Lt(L, R)                                                   \
  (static_cast<uint32_t>(L) < static_cast<uint32_t>(R))
#define TNUMS_CMP32_Le(L, R)                                                   \
  (static_cast<uint32_t>(L) <= static_cast<uint32_t>(R))
#define TNUMS_CMP32_Gt(L, R)                                                   \
  (static_cast<uint32_t>(L) > static_cast<uint32_t>(R))
#define TNUMS_CMP32_Ge(L, R)                                                   \
  (static_cast<uint32_t>(L) >= static_cast<uint32_t>(R))
#define TNUMS_CMP32_SLt(L, R)                                                  \
  (static_cast<int32_t>(static_cast<uint32_t>(L)) <                            \
   static_cast<int32_t>(static_cast<uint32_t>(R)))
#define TNUMS_CMP32_SLe(L, R)                                                  \
  (static_cast<int32_t>(static_cast<uint32_t>(L)) <=                           \
   static_cast<int32_t>(static_cast<uint32_t>(R)))
#define TNUMS_CMP32_SGt(L, R)                                                  \
  (static_cast<int32_t>(static_cast<uint32_t>(L)) >                            \
   static_cast<int32_t>(static_cast<uint32_t>(R)))
#define TNUMS_CMP32_SGe(L, R)                                                  \
  (static_cast<int32_t>(static_cast<uint32_t>(L)) >=                           \
   static_cast<int32_t>(static_cast<uint32_t>(R)))
#define TNUMS_CMP32_Set(L, R)                                                  \
  ((static_cast<uint32_t>(L) & static_cast<uint32_t>(R)) != 0)

//===----------------------------------------------------------------------===//
// Register-init tracking. The run loops keep the per-register init flags
// in one bitmask register (InitMask, a uint32_t local) instead of a bool
// array; NumRegs == 11 bits.
//===----------------------------------------------------------------------===//

#define TNUMS_INITED(R) ((InitMask >> (R)) & 1u)
#define TNUMS_SET_INITED(R) (void)(InitMask |= (1u << (R)))

//===----------------------------------------------------------------------===//
// Handler-family generators, expanded by DecodedBody.inc with the
// includer's TNUMS_OP / TNUMS_NEXT / TNUMS_TRAP primitives in force.
// Operand-check order mirrors Interpreter.cpp: ALU reads check Src before
// Dst; stores check the base (Dst) before the value (Src).
//===----------------------------------------------------------------------===//

// Statement bodies shared between the standalone handlers and the fused
// superinstructions (each fused handler is body1 + TNUMS_FUSE + body2, so
// the two can never drift). A body performs its init checks (trapping at
// the current I) and the state update, but no dispatch.

#define TNUMS_BODY_ALU_REG64(NAME)                                             \
  if (!TNUMS_INITED(I->Src))                                                   \
    TNUMS_TRAP(UninitRead, "read of uninit reg");                              \
  if (!TNUMS_INITED(I->Dst))                                                   \
    TNUMS_TRAP(UninitRead, "read of uninit reg");                              \
  Regs[I->Dst] = TNUMS_EVAL64_##NAME(Regs[I->Dst], Regs[I->Src]);

#define TNUMS_BODY_ALU_IMM64(NAME)                                             \
  if (!TNUMS_INITED(I->Dst))                                                   \
    TNUMS_TRAP(UninitRead, "read of uninit reg");                              \
  Regs[I->Dst] = TNUMS_EVAL64_##NAME(Regs[I->Dst], I->Imm);

#define TNUMS_BODY_MOV_REG64                                                   \
  if (!TNUMS_INITED(I->Src))                                                   \
    TNUMS_TRAP(UninitRead, "read of uninit reg");                              \
  Regs[I->Dst] = Regs[I->Src];                                                 \
  TNUMS_SET_INITED(I->Dst);

#define TNUMS_BODY_MOV_IMM64                                                   \
  Regs[I->Dst] = I->Imm;                                                       \
  TNUMS_SET_INITED(I->Dst);

#define TNUMS_BODY_LOAD(N)                                                     \
  if (!TNUMS_INITED(I->Src))                                                   \
    TNUMS_TRAP(UninitRead, "load via uninit reg");                             \
  uint64_t Addr = Regs[I->Src] + static_cast<int64_t>(I->Off);                 \
  const uint8_t *Ptr = spanAt(MemData, MemSize, StackData, Addr, N);           \
  if (!Ptr)                                                                    \
    TNUMS_TRAP(OutOfBounds,                                                    \
               formatString("load of %u bytes at 0x%llx out of bounds",        \
                            static_cast<unsigned>(N),                          \
                            static_cast<unsigned long long>(Addr)));           \
  uint64_t Value = 0;                                                          \
  for (unsigned B = 0; B != (N); ++B)                                          \
    Value |= static_cast<uint64_t>(Ptr[B]) << (8 * B);                         \
  Regs[I->Dst] = Value;                                                        \
  TNUMS_SET_INITED(I->Dst);

#define TNUMS_BODY_JMP_IMM64(CMP)                                              \
  if (!TNUMS_INITED(I->Dst))                                                   \
    TNUMS_TRAP(UninitRead, "jump on uninit reg");                              \
  if (TNUMS_CMP64_##CMP(Regs[I->Dst], I->Imm))                                 \
    TNUMS_JUMP(I->Target);

#define TNUMS_BODY_JA TNUMS_JUMP(I->Target);

#define TNUMS_BODY_EXIT                                                        \
  if (!TNUMS_INITED(R0))                                                       \
    TNUMS_TRAP(UninitRead, "exit with uninit r0");                             \
  Result.ReturnValue = Regs[R0];                                               \
  Result.ExitPc = TNUMS_PC;                                                    \
  Result.Steps = Executed + 1;                                                 \
  TNUMS_DONE;

#define TNUMS_ARITH_HANDLERS(NAME)                                             \
  TNUMS_OP(NAME##Reg64) {                                                      \
    TNUMS_BODY_ALU_REG64(NAME)                                                 \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(NAME##Imm64) {                                                      \
    TNUMS_BODY_ALU_IMM64(NAME)                                                 \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(NAME##Reg32) {                                                      \
    if (!TNUMS_INITED(I->Src))                                                 \
      TNUMS_TRAP(UninitRead, "read of uninit reg");                            \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "read of uninit reg");                            \
    Regs[I->Dst] =                                                             \
        TNUMS_EVAL32_##NAME(static_cast<uint32_t>(Regs[I->Dst]),               \
                            static_cast<uint32_t>(Regs[I->Src]));              \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(NAME##Imm32) {                                                      \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "read of uninit reg");                            \
    Regs[I->Dst] = TNUMS_EVAL32_##NAME(static_cast<uint32_t>(Regs[I->Dst]),    \
                                       static_cast<uint32_t>(I->Imm));         \
    TNUMS_NEXT;                                                                \
  }

#define TNUMS_LOAD_HANDLER(N)                                                  \
  TNUMS_OP(Load##N) {                                                          \
    if (!TNUMS_INITED(I->Src))                                                 \
      TNUMS_TRAP(UninitRead, "load via uninit reg");                           \
    uint64_t Addr = Regs[I->Src] + static_cast<int64_t>(I->Off);               \
    const uint8_t *Ptr = spanAt(MemData, MemSize, StackData, Addr, N);         \
    if (!Ptr)                                                                  \
      TNUMS_TRAP(OutOfBounds,                                                  \
                 formatString("load of %u bytes at 0x%llx out of bounds",      \
                              static_cast<unsigned>(N),                        \
                              static_cast<unsigned long long>(Addr)));         \
    uint64_t Value = 0;                                                        \
    for (unsigned B = 0; B != (N); ++B)                                        \
      Value |= static_cast<uint64_t>(Ptr[B]) << (8 * B);                       \
    Regs[I->Dst] = Value;                                                      \
    TNUMS_SET_INITED(I->Dst);                                                  \
    TNUMS_NEXT;                                                                \
  }

// Resolves a store's target like spanAt (context region first, then the
// stack) but widens the run's dirty stack range [DirtyLo, DirtyHi) when
// the write lands on the stack, so the next run() only re-zeroes what
// this one touched. Expands inside a store handler: declares Addr and
// Ptr, traps on out-of-bounds.
#define TNUMS_RESOLVE_STORE(N)                                                 \
  uint64_t Addr = Regs[I->Dst] + static_cast<int64_t>(I->Off);                 \
  uint8_t *Ptr;                                                                \
  if (Addr >= MemBase && (N) <= MemSize && Addr - MemBase <= MemSize - (N)) {  \
    Ptr = MemData + (Addr - MemBase);                                          \
  } else if (Addr >= StackBase - StackSize && Addr < StackBase &&              \
             Addr - (StackBase - StackSize) <= StackSize - (N)) {              \
    uint64_t SOff = Addr - (StackBase - StackSize);                            \
    Ptr = StackData + SOff;                                                    \
    if (SOff < DirtyLo)                                                        \
      DirtyLo = static_cast<uint32_t>(SOff);                                   \
    if (SOff + (N) > DirtyHi)                                                  \
      DirtyHi = static_cast<uint32_t>(SOff + (N));                             \
  } else {                                                                     \
    TNUMS_TRAP(OutOfBounds,                                                    \
               formatString("store of %u bytes at 0x%llx out of bounds",       \
                            static_cast<unsigned>(N),                          \
                            static_cast<unsigned long long>(Addr)));           \
  }

#define TNUMS_STORE_REG_HANDLER(N)                                             \
  TNUMS_OP(StoreReg##N) {                                                      \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "store via uninit reg");                          \
    if (!TNUMS_INITED(I->Src))                                                 \
      TNUMS_TRAP(UninitRead, "store of uninit reg");                           \
    TNUMS_RESOLVE_STORE(N)                                                     \
    uint64_t Value = Regs[I->Src];                                             \
    for (unsigned B = 0; B != (N); ++B)                                        \
      Ptr[B] = static_cast<uint8_t>(Value >> (8 * B));                         \
    TNUMS_NEXT;                                                                \
  }

#define TNUMS_STORE_IMM_HANDLER(N)                                             \
  TNUMS_OP(StoreImm##N) {                                                      \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "store via uninit reg");                          \
    TNUMS_RESOLVE_STORE(N)                                                     \
    uint64_t Value = I->Imm;                                                   \
    for (unsigned B = 0; B != (N); ++B)                                        \
      Ptr[B] = static_cast<uint8_t>(Value >> (8 * B));                         \
    TNUMS_NEXT;                                                                \
  }

// The four jump handlers for one CompareOp, the comparison fully inlined
// at the decoded width (no applyConcreteCompare call on the hot path).
// Init-check order mirrors Interpreter.cpp: Dst before Src.
#define TNUMS_JMP_HANDLERS(NAME)                                               \
  TNUMS_OP(Jmp##NAME##Reg64) {                                                 \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "jump on uninit reg");                            \
    if (!TNUMS_INITED(I->Src))                                                 \
      TNUMS_TRAP(UninitRead, "jump on uninit reg");                            \
    if (TNUMS_CMP64_##NAME(Regs[I->Dst], Regs[I->Src]))                        \
      TNUMS_JUMP(I->Target);                                                   \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(Jmp##NAME##Imm64) {                                                 \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "jump on uninit reg");                            \
    if (TNUMS_CMP64_##NAME(Regs[I->Dst], I->Imm))                              \
      TNUMS_JUMP(I->Target);                                                   \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(Jmp##NAME##Reg32) {                                                 \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "jump on uninit reg");                            \
    if (!TNUMS_INITED(I->Src))                                                 \
      TNUMS_TRAP(UninitRead, "jump on uninit reg");                            \
    if (TNUMS_CMP32_##NAME(Regs[I->Dst], Regs[I->Src]))                        \
      TNUMS_JUMP(I->Target);                                                   \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(Jmp##NAME##Imm32) {                                                 \
    if (!TNUMS_INITED(I->Dst))                                                 \
      TNUMS_TRAP(UninitRead, "jump on uninit reg");                            \
    if (TNUMS_CMP32_##NAME(Regs[I->Dst], I->Imm))                              \
      TNUMS_JUMP(I->Target);                                                   \
    TNUMS_NEXT;                                                                \
  }

//===----------------------------------------------------------------------===//
// Fused superinstruction handlers: body1 + TNUMS_FUSE + body2. TNUMS_FUSE
// (defined by the includer) counts the first instruction, advances I to
// the pair's second record, and performs the same mid-pair step-limit
// check an unfused dispatch would -- so traps in body2 report the second
// instruction's pc and step count, exactly as if the pair had been
// dispatched twice.
//===----------------------------------------------------------------------===//

// mov rd, rs; <aluop> rd2, imm
#define TNUMS_F1_HANDLERS(NAME)                                                \
  TNUMS_OP(FuseMovReg##NAME##Imm64) {                                          \
    TNUMS_BODY_MOV_REG64                                                       \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_ALU_IMM64(NAME)                                                 \
    TNUMS_NEXT;                                                                \
  }

// add rd, rs; ldx rd2, [rs2 + off]
#define TNUMS_F2_HANDLER(N)                                                    \
  TNUMS_OP(FuseAddRegLoad##N) {                                                \
    TNUMS_BODY_ALU_REG64(Add)                                                  \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_LOAD(N)                                                         \
    TNUMS_NEXT;                                                                \
  }

// <aluop> rd, rs; {add,sub} rd2, imm
#define TNUMS_F3_HANDLERS(NAME)                                                \
  TNUMS_OP(Fuse##NAME##RegAddImm64) {                                          \
    TNUMS_BODY_ALU_REG64(NAME)                                                 \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_ALU_IMM64(Add)                                                  \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(Fuse##NAME##RegSubImm64) {                                          \
    TNUMS_BODY_ALU_REG64(NAME)                                                 \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_ALU_IMM64(Sub)                                                  \
    TNUMS_NEXT;                                                                \
  }

// <aluop> rd, imm; add rd2, imm2; jlt rd3, imm3, target
#define TNUMS_F10_HANDLERS(NAME)                                               \
  TNUMS_OP(Fuse##NAME##ImmAddImmJmpLt) {                                       \
    TNUMS_BODY_ALU_IMM64(NAME)                                                 \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_ALU_IMM64(Add)                                                  \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_JMP_IMM64(Lt)                                                   \
    TNUMS_NEXT;                                                                \
  }

// A whole down-counting random-body loop iteration: jeq rd, imm, done;
// <aluop> rd2, imm2; add rd3, rs3; sub rd4, imm4; ja head.
#define TNUMS_F11_HANDLERS(NAME)                                               \
  TNUMS_OP(FuseDownRand##NAME) {                                               \
    TNUMS_BODY_JMP_IMM64(Eq)                                                   \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_ALU_IMM64(NAME)                                                 \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_ALU_REG64(Add)                                                  \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_ALU_IMM64(Sub)                                                  \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_JA                                                              \
  }

// {add,sub} rd, imm; j<cmp> rd2, imm2, target
#define TNUMS_F5_HANDLERS(CMP)                                                 \
  TNUMS_OP(FuseAddImmJmp##CMP##Imm64) {                                        \
    TNUMS_BODY_ALU_IMM64(Add)                                                  \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_JMP_IMM64(CMP)                                                  \
    TNUMS_NEXT;                                                                \
  }                                                                            \
  TNUMS_OP(FuseSubImmJmp##CMP##Imm64) {                                        \
    TNUMS_BODY_ALU_IMM64(Sub)                                                  \
    TNUMS_FUSE;                                                                \
    TNUMS_BODY_JMP_IMM64(CMP)                                                  \
    TNUMS_NEXT;                                                                \
  }

} // namespace

bool tnums::bpf::threadedDispatchAvailable() {
  return TNUMS_HAVE_COMPUTED_GOTO != 0;
}

const char *tnums::bpf::dispatchModeName(DispatchMode Mode) {
  switch (Mode) {
  case DispatchMode::Auto:
    return "auto";
  case DispatchMode::Threaded:
    return "threaded";
  case DispatchMode::Switch:
    return "switch";
  }
  assert(false && "unknown dispatch mode");
  return "?";
}

std::optional<DecodedProgram> DecodedProgram::decode(const Program &Prog,
                                                     std::string &Error) {
  if (std::optional<std::string> Invalid = Prog.validate()) {
    Error = "structurally invalid program: " + *Invalid;
    return std::nullopt;
  }

  DecodedProgram D;
  D.Code.reserve(Prog.size());
  for (size_t Pc = 0; Pc != Prog.size(); ++Pc) {
    const Insn &In = Prog.insn(Pc);
    DInsn Out;
    Out.Dst = In.Dst;
    Out.Src = In.Src;
    Out.Off = In.Offset;
    Out.Imm = static_cast<uint64_t>(In.Imm);
    // Sizes are validated to {1,2,4,8}.
    unsigned LogSize = In.Size == 1 ? 0 : In.Size == 2 ? 1 : In.Size == 4 ? 2 : 3;
    switch (In.InsnKind) {
    case Insn::Kind::Alu:
      if (In.Alu == AluOp::Neg) {
        Out.Op = static_cast<uint8_t>(In.Is32 ? DNeg32 : DNeg64);
      } else if (In.Alu == AluOp::Mov) {
        Out.Op = static_cast<uint8_t>(DMovReg64 + (In.UsesImm ? 1 : 0) +
                                      (In.Is32 ? 2 : 0));
        if (In.UsesImm && In.Is32)
          Out.Imm = static_cast<uint32_t>(Out.Imm); // Truncate once, here.
      } else {
        Out.Op = static_cast<uint8_t>(static_cast<unsigned>(In.Alu) * 4 +
                                      (In.UsesImm ? 1 : 0) + (In.Is32 ? 2 : 0));
      }
      break;
    case Insn::Kind::LoadImm:
      Out.Op = static_cast<uint8_t>(DLoadImm);
      break;
    case Insn::Kind::Load:
      Out.Op = static_cast<uint8_t>(DLoad1 + LogSize);
      break;
    case Insn::Kind::Store:
      Out.Op =
          static_cast<uint8_t>((In.UsesImm ? DStoreImm1 : DStoreReg1) + LogSize);
      break;
    case Insn::Kind::Jmp:
      Out.Op = static_cast<uint8_t>(DJmpEqReg64 +
                                    static_cast<unsigned>(In.Cmp) * 4 +
                                    (In.UsesImm ? 1 : 0) + (In.Is32 ? 2 : 0));
      Out.Cmp = static_cast<uint8_t>(In.Cmp);
      Out.Target = static_cast<uint32_t>(Program::jumpTarget(Pc, In));
      break;
    case Insn::Kind::Ja:
      Out.Op = static_cast<uint8_t>(DJa);
      Out.Target = static_cast<uint32_t>(Program::jumpTarget(Pc, In));
      break;
    case Insn::Kind::Exit:
      Out.Op = static_cast<uint8_t>(DExit);
      break;
    }
    D.Code.push_back(Out);
  }

  // Greedy left-to-right superinstruction fusion: rewrite the first
  // record of a hot adjacent group to the fused opcode. The records
  // behind it are left untouched, so jumps into the middle of a group
  // execute them standalone; groups never overlap (a consumed record is
  // not considered as the start of another group). The two triples --
  // mov+mask+base-add (the generated masked loop body's address
  // computation) and accumulate+decrement+back-edge (the down-counting
  // loop tail) -- are matched before the pair families so they win the
  // overlapping pairs.
  auto OpsAre = [&D](size_t Pc, std::initializer_list<uint8_t> Ops) {
    if (Pc + Ops.size() > D.Code.size())
      return false;
    for (uint8_t Op : Ops)
      if (D.Code[Pc++].Op != Op)
        return false;
    return true;
  };
  for (size_t Pc = 0; Pc + 1 < D.Code.size(); ++Pc) {
    // Widest groups first: whole generated loop iterations in a single
    // dispatch. Down-counting masked iteration (exit test, masked
    // byte-accumulate body, accumulate, decrement, back-edge) ...
    if (OpsAre(Pc, {DJmpEqImm64, DMovReg64, DAndImm64, DAddReg64, DLoad1,
                    DXorReg64, DAddReg64, DSubImm64, DJa})) {
      // When the register roles tie up the way genLoop emits them (scratch,
      // induction, base, loaded byte, accumulator all distinct, every slot
      // reading what the expected earlier slot wrote), the tied variant's
      // fast path can keep the chained values in locals. Anything else --
      // mutants, hand-written code -- runs the generic group.
      const DInsn *S = &D.Code[Pc];
      const uint8_t Ra = S[1].Dst, Rb = S[0].Dst, Rd = S[4].Dst, Re = S[5].Dst;
      const bool Tied = S[1].Src == Rb && S[2].Dst == Ra && S[3].Dst == Ra &&
                        S[4].Src == Ra && S[5].Src == Rd && S[6].Dst == Re &&
                        S[6].Src == Rb && S[7].Dst == Rb && S[3].Src != Ra &&
                        Ra != Rb && Ra != Rd && Ra != Re && Rb != Rd &&
                        Rb != Re && Rd != Re;
      D.Code[Pc].Op = static_cast<uint8_t>(Tied ? DFuseDownMaskedIterT
                                                : DFuseDownMaskedIter);
      Pc += 8;
      continue;
    }
    // ... up-counting masked iteration (masked byte-accumulate body,
    // induction increment, back-edge) ...
    if (OpsAre(Pc, {DMovReg64, DAndImm64, DAddReg64, DLoad1, DXorReg64,
                    DAddImm64, DJmpLtImm64})) {
      const DInsn *S = &D.Code[Pc];
      const uint8_t Ra = S[0].Dst, Rb = S[0].Src, Rd = S[3].Dst, Re = S[4].Dst;
      const bool Tied = S[1].Dst == Ra && S[2].Dst == Ra && S[3].Src == Ra &&
                        S[4].Src == Rd && S[5].Dst == Rb && S[6].Dst == Rb &&
                        S[2].Src != Ra && Ra != Rb && Ra != Rd && Ra != Re &&
                        Rb != Rd && Rb != Re && Rd != Re;
      D.Code[Pc].Op = static_cast<uint8_t>(Tied ? DFuseMaskedAccumJmpLtT
                                                : DFuseMaskedAccumJmpLt);
      Pc += 6;
      continue;
    }
    // ... and down-counting random-body iteration (exit test, one ALU
    // immediate, accumulate, decrement, back-edge).
    if (Pc + 4 < D.Code.size() && D.Code[Pc].Op == DJmpEqImm64 &&
        D.Code[Pc + 1].Op < DMovReg64 && (D.Code[Pc + 1].Op & 3) == 1 &&
        OpsAre(Pc + 2, {DAddReg64, DSubImm64, DJa})) {
      D.Code[Pc].Op =
          static_cast<uint8_t>(DFuseDownRandAdd + (D.Code[Pc + 1].Op >> 2));
      Pc += 4;
      continue;
    }
    // The full masked byte-accumulate loop body
    // (mov+mask+base-add+load+xor), five instructions in one dispatch.
    if (Pc + 4 < D.Code.size() && D.Code[Pc].Op == DMovReg64 &&
        D.Code[Pc + 1].Op == DAndImm64 && D.Code[Pc + 2].Op == DAddReg64 &&
        D.Code[Pc + 3].Op == DLoad1 && D.Code[Pc + 4].Op == DXorReg64) {
      D.Code[Pc].Op = static_cast<uint8_t>(DFuseMaskedByteAccum);
      Pc += 4;
      continue;
    }
    if (Pc + 2 < D.Code.size() && D.Code[Pc].Op == DMovReg64 &&
        D.Code[Pc + 1].Op == DAndImm64 && D.Code[Pc + 2].Op == DAddReg64) {
      D.Code[Pc].Op = static_cast<uint8_t>(DFuseMovRegAndImmAddReg64);
      Pc += 2;
      continue;
    }
    if (Pc + 2 < D.Code.size() && D.Code[Pc].Op == DAddReg64 &&
        D.Code[Pc + 1].Op == DSubImm64 && D.Code[Pc + 2].Op == DJa) {
      D.Code[Pc].Op = static_cast<uint8_t>(DFuseAddRegSubImmJa);
      Pc += 2;
      continue;
    }
    // <aluop> rd, imm; add rd2, imm2; jlt rd3, imm3 -- an up-counting
    // loop's body + induction + back-edge, one dispatch per iteration.
    if (Pc + 2 < D.Code.size() && D.Code[Pc].Op < DMovReg64 &&
        (D.Code[Pc].Op & 3) == 1 && D.Code[Pc + 1].Op == DAddImm64 &&
        D.Code[Pc + 2].Op == DJmpLtImm64) {
      D.Code[Pc].Op =
          static_cast<uint8_t>(DFuseAddImmAddImmJmpLt + (D.Code[Pc].Op >> 2));
      Pc += 2;
      continue;
    }
    uint8_t F = fusedOpcode(D.Code[Pc].Op, D.Code[Pc + 1].Op);
    if (F != 0xFF) {
      D.Code[Pc].Op = F;
      ++Pc;
    }
  }

  if (metricsEnabled()) {
    struct DecodeMetrics {
      Counter Programs{"tnums_decoded_programs_total"};
      Counter Insns{"tnums_decoded_insns_total"};
      Counter FusedHeads{"tnums_decoded_fused_heads_total"};
    };
    static DecodeMetrics M;
    uint64_t FusedHeads = 0;
    for (const DInsn &Rec : D.Code)
      if (Rec.Op >= DFuseMovRegAddImm64)
        ++FusedHeads;
    M.Programs.add();
    M.Insns.add(D.Code.size());
    M.FusedHeads.add(FusedHeads);
  }
  return D;
}

//===----------------------------------------------------------------------===//
// The portable switch dispatcher.
//===----------------------------------------------------------------------===//

ExecResult DecodedProgram::runSwitch(std::vector<uint8_t> &Memory,
                                     uint64_t StepLimit) {
  ExecResult Result;
  uint64_t Regs[NumRegs] = {};
  if (StackLo < StackHi)
    std::memset(Stack.data() + StackLo, 0, StackHi - StackLo);
  uint32_t DirtyLo = StackSize, DirtyHi = 0;
  uint8_t *MemData = Memory.data();
  const uint64_t MemSize = Memory.size();
  uint8_t *StackData = Stack.data();
  Regs[R1] = MemBase;
  Regs[R2] = MemSize;
  Regs[R10] = StackBase;
  uint32_t InitMask = (1u << R1) | (1u << R2) | (1u << R10);

  const DInsn *const IBase = Code.data();
  const DInsn *I = IBase;
  uint64_t Executed = 0;

#define TNUMS_PC (static_cast<size_t>(I - IBase))
Dispatch:
  if (Executed == StepLimit) {
    Result.St = ExecResult::Status::StepLimit;
    Result.FaultPc = TNUMS_PC;
    Result.Steps = Executed;
    Result.Message = "step limit exhausted";
    goto Done;
  }
  switch (static_cast<DOp>(I->Op)) {
#define TNUMS_OP(Name) case D##Name:
#define TNUMS_NEXT                                                             \
  do {                                                                         \
    ++Executed;                                                                \
    ++I;                                                                       \
    goto Dispatch;                                                             \
  } while (0)
#define TNUMS_JUMP(T)                                                          \
  do {                                                                         \
    ++Executed;                                                                \
    I = IBase + (T);                                                           \
    goto Dispatch;                                                             \
  } while (0)
#define TNUMS_TRAP(St_, Msg_)                                                  \
  do {                                                                         \
    Result.St = ExecResult::Status::St_;                                       \
    Result.FaultPc = TNUMS_PC;                                                 \
    Result.Steps = Executed + 1;                                               \
    Result.Message = (Msg_);                                                   \
    goto Done;                                                                 \
  } while (0)
#define TNUMS_DONE goto Done
#define TNUMS_FUSE                                                             \
  do {                                                                         \
    ++Executed;                                                                \
    ++I;                                                                       \
    if (Executed == StepLimit)                                                 \
      goto Dispatch;                                                           \
  } while (0)
// The switch dispatcher has no profitable way to express the tied fast
// paths (no fall-through into another handler's label), so the tied
// opcodes stack onto their generic group's case -- semantically the
// same records, executed slot by slot.
#define TNUMS_TIED_MASKED_ACCUM_JMPLT
#define TNUMS_TIED_DOWN_MASKED_ITER
#include "bpf/DecodedBody.inc"
#undef TNUMS_OP
#undef TNUMS_NEXT
#undef TNUMS_JUMP
#undef TNUMS_TRAP
#undef TNUMS_DONE
#undef TNUMS_FUSE
#undef TNUMS_TIED_MASKED_ACCUM_JMPLT
#undef TNUMS_TIED_DOWN_MASKED_ITER
  }
  // Unreachable for decode()-produced code; refuse corrupt opcodes.
  Result.St = ExecResult::Status::InvalidProgram;
  Result.FaultPc = TNUMS_PC;
  Result.Steps = Executed;
  Result.Message = "corrupt decoded opcode";
#undef TNUMS_PC

Done:
  std::memcpy(this->Regs.data(), Regs, sizeof(Regs));
  LastInitMask = InitMask;
  StackLo = DirtyLo;
  StackHi = DirtyHi;
  return Result;
}

//===----------------------------------------------------------------------===//
// The computed-goto threaded dispatcher (GCC/Clang only). Same handler
// bodies, dispatched through a label table indexed by opcode, so each
// handler jumps straight to the next one with no central branch.
//===----------------------------------------------------------------------===//

#if TNUMS_HAVE_COMPUTED_GOTO

ExecResult DecodedProgram::runThreaded(std::vector<uint8_t> &Memory,
                                       uint64_t StepLimit) {
  static const void *const Table[] = {
#define TNUMS_DOP_LABEL(Name) &&L_##Name,
      TNUMS_DOP_LIST(TNUMS_DOP_LABEL)
#undef TNUMS_DOP_LABEL
  };

  ExecResult Result;
  uint64_t Regs[NumRegs] = {};
  if (StackLo < StackHi)
    std::memset(Stack.data() + StackLo, 0, StackHi - StackLo);
  uint32_t DirtyLo = StackSize, DirtyHi = 0;
  uint8_t *MemData = Memory.data();
  const uint64_t MemSize = Memory.size();
  uint8_t *StackData = Stack.data();
  Regs[R1] = MemBase;
  Regs[R2] = MemSize;
  Regs[R10] = StackBase;
  uint32_t InitMask = (1u << R1) | (1u << R2) | (1u << R10);

  const DInsn *const IBase = Code.data();
  const DInsn *I = IBase;
  uint64_t Executed = 0;

#define TNUMS_PC (static_cast<size_t>(I - IBase))
#define TNUMS_OP(Name) L_##Name:
#define TNUMS_DISPATCH()                                                       \
  do {                                                                         \
    if (Executed == StepLimit)                                                 \
      goto StepLimitHit;                                                       \
    goto *Table[I->Op];                                                        \
  } while (0)
#define TNUMS_NEXT                                                             \
  do {                                                                         \
    ++Executed;                                                                \
    ++I;                                                                       \
    TNUMS_DISPATCH();                                                          \
  } while (0)
#define TNUMS_JUMP(T)                                                          \
  do {                                                                         \
    ++Executed;                                                                \
    I = IBase + (T);                                                           \
    TNUMS_DISPATCH();                                                          \
  } while (0)
#define TNUMS_TRAP(St_, Msg_)                                                  \
  do {                                                                         \
    Result.St = ExecResult::Status::St_;                                       \
    Result.FaultPc = TNUMS_PC;                                                 \
    Result.Steps = Executed + 1;                                               \
    Result.Message = (Msg_);                                                   \
    goto Done;                                                                 \
  } while (0)
#define TNUMS_DONE goto Done
#define TNUMS_FUSE                                                             \
  do {                                                                         \
    ++Executed;                                                                \
    ++I;                                                                       \
    if (Executed == StepLimit)                                                 \
      goto StepLimitHit;                                                       \
  } while (0)

// Fast paths for the tied whole-iteration opcodes (decode() proved the
// register roles distinct and chained exactly as genLoop emits them, so
// the chained values live in locals instead of round-tripping through
// Regs[], and one step-headroom test replaces the per-slot TNUMS_FUSE
// checks). Nothing is committed before the last possible trap point; any
// condition the fast path cannot take -- step limit close, an operand
// register uninitialized, the load out of bounds -- falls through to the
// generic group handler directly below, which re-executes the same
// records slot by slot with bit-identical trap attribution.
#define TNUMS_TIED_MASKED_ACCUM_JMPLT                                          \
  do {                                                                         \
    if (StepLimit - Executed < 7)                                              \
      break;                                                                   \
    if (!TNUMS_INITED(I->Src) || !TNUMS_INITED(I[2].Src) ||                    \
        !TNUMS_INITED(I[4].Dst))                                               \
      break;                                                                   \
    const uint64_t VB = Regs[I->Src];                                          \
    const uint64_t VA = (VB & I[1].Imm) + Regs[I[2].Src];                      \
    const uint64_t Addr = VA + static_cast<int64_t>(I[3].Off);                 \
    const uint8_t *Ptr = spanAt(MemData, MemSize, StackData, Addr, 1);         \
    if (!Ptr)                                                                  \
      break;                                                                   \
    const uint64_t VD = Ptr[0];                                                \
    Regs[I->Dst] = VA;                                                         \
    Regs[I[3].Dst] = VD;                                                       \
    Regs[I[4].Dst] ^= VD;                                                      \
    const uint64_t VB2 = VB + I[5].Imm;                                        \
    Regs[I[5].Dst] = VB2;                                                      \
    InitMask |= (1u << I->Dst) | (1u << I[3].Dst);                             \
    Executed += 7;                                                             \
    I = VB2 < I[6].Imm ? IBase + I[6].Target : I + 7;                          \
    TNUMS_DISPATCH();                                                          \
  } while (0);
#define TNUMS_TIED_DOWN_MASKED_ITER                                            \
  do {                                                                         \
    if (StepLimit - Executed < 9)                                              \
      break;                                                                   \
    if (!TNUMS_INITED(I->Dst) || !TNUMS_INITED(I[3].Src) ||                    \
        !TNUMS_INITED(I[5].Dst))                                               \
      break;                                                                   \
    const uint64_t VB = Regs[I->Dst];                                          \
    if (VB == I->Imm) {                                                        \
      ++Executed;                                                              \
      I = IBase + I->Target;                                                   \
      TNUMS_DISPATCH();                                                        \
    }                                                                          \
    const uint64_t VA = (VB & I[2].Imm) + Regs[I[3].Src];                      \
    const uint64_t Addr = VA + static_cast<int64_t>(I[4].Off);                 \
    const uint8_t *Ptr = spanAt(MemData, MemSize, StackData, Addr, 1);         \
    if (!Ptr)                                                                  \
      break;                                                                   \
    const uint64_t VD = Ptr[0];                                                \
    Regs[I[1].Dst] = VA;                                                       \
    Regs[I[4].Dst] = VD;                                                       \
    Regs[I[5].Dst] = (Regs[I[5].Dst] ^ VD) + VB;                               \
    Regs[I[7].Dst] = VB - I[7].Imm;                                            \
    InitMask |= (1u << I[1].Dst) | (1u << I[4].Dst);                           \
    Executed += 9;                                                             \
    I = IBase + I[8].Target;                                                   \
    TNUMS_DISPATCH();                                                          \
  } while (0);

  TNUMS_DISPATCH();

#include "bpf/DecodedBody.inc"

#undef TNUMS_OP
#undef TNUMS_DISPATCH
#undef TNUMS_NEXT
#undef TNUMS_JUMP
#undef TNUMS_TRAP
#undef TNUMS_DONE
#undef TNUMS_FUSE
#undef TNUMS_TIED_MASKED_ACCUM_JMPLT
#undef TNUMS_TIED_DOWN_MASKED_ITER

StepLimitHit:
  Result.St = ExecResult::Status::StepLimit;
  Result.FaultPc = TNUMS_PC;
  Result.Steps = Executed;
  Result.Message = "step limit exhausted";
#undef TNUMS_PC

Done:
  std::memcpy(this->Regs.data(), Regs, sizeof(Regs));
  LastInitMask = InitMask;
  StackLo = DirtyLo;
  StackHi = DirtyHi;
  return Result;
}

#else

ExecResult DecodedProgram::runThreaded(std::vector<uint8_t> &Memory,
                                       uint64_t StepLimit) {
  // No computed goto in this build; Threaded degrades to Switch
  // (threadedDispatchAvailable() tells callers).
  return runSwitch(Memory, StepLimit);
}

#endif // TNUMS_HAVE_COMPUTED_GOTO

ExecResult DecodedProgram::run(std::vector<uint8_t> &Memory,
                               uint64_t StepLimit, DispatchMode Mode) {
  if (Code.empty()) {
    // A default-constructed DecodedProgram; decode() refuses empty
    // programs (validate() requires a terminator), so this is the only
    // way here.
    ExecResult Result;
    Result.St = ExecResult::Status::InvalidProgram;
    Result.Message = "empty decoded program";
    return Result;
  }
  bool Threaded = Mode == DispatchMode::Threaded ||
                  (Mode == DispatchMode::Auto && threadedDispatchAvailable());
  if (Threaded)
    return runThreaded(Memory, StepLimit);
  return runSwitch(Memory, StepLimit);
}
