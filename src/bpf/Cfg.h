//===- bpf/Cfg.h - Instruction-level control-flow graph ---------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow structure over a validated program, at instruction
/// granularity (every instruction is a node, like the kernel verifier's
/// per-insn state table). Provides successor/predecessor edges and a
/// reverse post-order for efficient fixpoint iteration in the analyzer.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_CFG_H
#define TNUMS_BPF_CFG_H

#include "bpf/Program.h"

#include <vector>

namespace tnums {
namespace bpf {

/// Successor/predecessor edges and iteration order for one program.
class Cfg {
public:
  /// An empty CFG; call rebuild() before use.
  Cfg() = default;

  /// Builds the CFG of \p Prog (which must validate()).
  explicit Cfg(const Program &Prog) { rebuild(Prog); }

  /// Rebuilds the CFG for \p Prog (which must validate()), recycling the
  /// edge/order storage of the previous program. This is what lets a
  /// long-lived analysis engine (service/VerificationService.h) process a
  /// stream of programs without reallocating the graph for each one.
  void rebuild(const Program &Prog);

  /// Successor instruction indices of \p Pc: empty for exit, one entry for
  /// straight-line/ja, two for conditional jumps (fall-through first, then
  /// the taken target).
  const std::vector<size_t> &successors(size_t Pc) const {
    return Succs[Pc];
  }

  const std::vector<size_t> &predecessors(size_t Pc) const {
    return Preds[Pc];
  }

  /// Instructions reachable from entry, in reverse post-order.
  const std::vector<size_t> &reversePostOrder() const { return Rpo; }

  /// True if \p Pc is reachable from the entry instruction.
  bool isReachable(size_t Pc) const { return Reachable[Pc]; }

  /// True if some reachable cycle exists (the program loops).
  bool hasLoop() const { return Loop; }

  /// Instruction count of the current program.
  size_t size() const { return NumInsns; }

private:
  /// Logical size; the edge vectors below are high-water sized (rebuild
  /// never shrinks them) so their per-node capacity survives a stream of
  /// variably sized programs.
  size_t NumInsns = 0;
  std::vector<std::vector<size_t>> Succs;
  std::vector<std::vector<size_t>> Preds;
  std::vector<size_t> Rpo;
  std::vector<bool> Reachable;
  bool Loop = false;

  /// \name rebuild()'s DFS scratch, recycled like the edge vectors.
  /// @{
  enum class Color : uint8_t { White, Grey, Black };
  std::vector<Color> Colors;
  std::vector<size_t> PostOrder;
  /// Stack frames: (node, next successor index to visit).
  std::vector<std::pair<size_t, size_t>> Stack;
  /// @}
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_CFG_H
