//===- bpf/Cfg.h - Instruction-level control-flow graph ---------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow structure over a validated program, at instruction
/// granularity (every instruction is a node, like the kernel verifier's
/// per-insn state table). Provides successor/predecessor edges and a
/// reverse post-order for efficient fixpoint iteration in the analyzer.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_CFG_H
#define TNUMS_BPF_CFG_H

#include "bpf/Program.h"

#include <vector>

namespace tnums {
namespace bpf {

/// Successor/predecessor edges and iteration order for one program.
class Cfg {
public:
  /// Builds the CFG of \p Prog (which must validate()).
  explicit Cfg(const Program &Prog);

  /// Successor instruction indices of \p Pc: empty for exit, one entry for
  /// straight-line/ja, two for conditional jumps (fall-through first, then
  /// the taken target).
  const std::vector<size_t> &successors(size_t Pc) const {
    return Succs[Pc];
  }

  const std::vector<size_t> &predecessors(size_t Pc) const {
    return Preds[Pc];
  }

  /// Instructions reachable from entry, in reverse post-order.
  const std::vector<size_t> &reversePostOrder() const { return Rpo; }

  /// True if \p Pc is reachable from the entry instruction.
  bool isReachable(size_t Pc) const { return Reachable[Pc]; }

  /// True if some reachable cycle exists (the program loops).
  bool hasLoop() const { return Loop; }

  size_t size() const { return Succs.size(); }

private:
  std::vector<std::vector<size_t>> Succs;
  std::vector<std::vector<size_t>> Preds;
  std::vector<size_t> Rpo;
  std::vector<bool> Reachable;
  bool Loop = false;
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_CFG_H
