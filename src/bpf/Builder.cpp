//===- bpf/Builder.cpp - Label-based BPF program builder ------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Builder.h"

using namespace tnums;
using namespace tnums::bpf;

ProgramBuilder &ProgramBuilder::label(const std::string &Name) {
  auto [It, Inserted] = Labels.emplace(Name, Insns.size());
  (void)It;
  assert(Inserted && "label defined twice");
  (void)Inserted;
  return *this;
}

ProgramBuilder &ProgramBuilder::jmp(CompareOp Cmp, Reg Dst, Reg Src,
                                    const std::string &Target) {
  Fixups.emplace_back(Insns.size(), Target);
  return append(Insn::jmp(Cmp, Dst, Src, 0));
}

ProgramBuilder &ProgramBuilder::jmpImm(CompareOp Cmp, Reg Dst, int64_t Imm,
                                       const std::string &Target) {
  Fixups.emplace_back(Insns.size(), Target);
  return append(Insn::jmpImm(Cmp, Dst, Imm, 0));
}

ProgramBuilder &ProgramBuilder::jmp32(CompareOp Cmp, Reg Dst, Reg Src,
                                      const std::string &Target) {
  Fixups.emplace_back(Insns.size(), Target);
  return append(Insn::jmp32(Cmp, Dst, Src, 0));
}

ProgramBuilder &ProgramBuilder::jmp32Imm(CompareOp Cmp, Reg Dst, int64_t Imm,
                                         const std::string &Target) {
  Fixups.emplace_back(Insns.size(), Target);
  return append(Insn::jmp32Imm(Cmp, Dst, Imm, 0));
}

ProgramBuilder &ProgramBuilder::ja(const std::string &Target) {
  Fixups.emplace_back(Insns.size(), Target);
  return append(Insn::ja(0));
}

Program ProgramBuilder::build() {
  for (const auto &[Pc, Name] : Fixups) {
    auto It = Labels.find(Name);
    assert(It != Labels.end() && "reference to undefined label");
    Insns[Pc].Offset =
        static_cast<int32_t>(static_cast<int64_t>(It->second) -
                             static_cast<int64_t>(Pc) - 1);
  }
  Fixups.clear();
  Labels.clear();
  return Program(std::move(Insns));
}
