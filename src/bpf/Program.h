//===- bpf/Program.h - BPF program container and validation -----*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BPF program is a flat instruction vector, like kernel bytecode.
/// Structural validation (register numbers, jump targets, terminator
/// placement) happens here; *semantic* safety is the Verifier's job.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_PROGRAM_H
#define TNUMS_BPF_PROGRAM_H

#include "bpf/Insn.h"

#include <optional>
#include <string>
#include <vector>

namespace tnums {
namespace bpf {

/// An immutable sequence of instructions.
class Program {
public:
  Program() = default;
  explicit Program(std::vector<Insn> InsnsV) : Insns(std::move(InsnsV)) {}

  size_t size() const { return Insns.size(); }
  bool empty() const { return Insns.empty(); }
  const Insn &insn(size_t I) const {
    assert(I < Insns.size() && "instruction index out of range");
    return Insns[I];
  }

  std::vector<Insn>::const_iterator begin() const { return Insns.begin(); }
  std::vector<Insn>::const_iterator end() const { return Insns.end(); }

  /// Structural validation: register numbers in range, R10 never written,
  /// jump displacements land inside the program, no fall-through past the
  /// last instruction, memory access sizes in {1,2,4,8}. Returns a
  /// diagnostic for the first problem found, or std::nullopt if well
  /// formed. (Mirrors the kernel's pre-pass before abstract
  /// interpretation.)
  std::optional<std::string> validate() const;

  /// The target instruction index of the jump/fall-through successors of
  /// instruction \p Pc, without validation.
  static size_t jumpTarget(size_t Pc, const Insn &I) {
    return Pc + 1 + static_cast<int64_t>(I.Offset);
  }

  /// Numbered disassembly listing, one instruction per line.
  std::string disassemble() const;

private:
  std::vector<Insn> Insns;
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_PROGRAM_H
