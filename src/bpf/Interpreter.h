//===- bpf/Interpreter.h - Concrete BPF interpreter -------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes BPF programs concretely. This is the ground-truth oracle the
/// differential tests run against the abstract analyzer: a program the
/// Verifier accepts must never trap here, on any input memory, and every
/// concrete register value must lie inside the analyzer's abstract value at
/// the corresponding program point.
///
/// Pointer model: the context register R1 holds the synthetic address
/// MemBase of a caller-provided byte buffer, R2 holds the buffer length,
/// and R10 holds StackBase, the top of a descending 512-byte stack. Any
/// access outside [MemBase, MemBase + MemSize) and
/// [StackBase - StackSize, StackBase) traps.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_INTERPRETER_H
#define TNUMS_BPF_INTERPRETER_H

#include "bpf/Program.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tnums {
namespace bpf {

/// Outcome of one concrete execution.
struct ExecResult {
  enum class Status {
    Ok,             ///< exit reached; ReturnValue is R0.
    OutOfBounds,    ///< memory access escaped both regions.
    UninitRead,     ///< read of a register never written.
    StepLimit,      ///< ran longer than the step budget.
    InvalidProgram, ///< refused to execute: structural validation failed
                    ///< (corpus-replay inputs reach the interpreter
                    ///< without the generator's validity-by-construction
                    ///< guarantee, so this is a real runtime status, not
                    ///< an assert).
  };

  Status St = Status::Ok;
  uint64_t ReturnValue = 0;
  size_t ExitPc = 0;      ///< The exit instruction reached (Ok only) --
                          ///< lets differential oracles compare the
                          ///< concrete register file against the abstract
                          ///< state at the exit the run actually took.
  size_t FaultPc = 0;     ///< Faulting instruction for non-Ok statuses.
  uint64_t Steps = 0;     ///< Instructions executed, counting the one that
                          ///< exited or trapped (== StepLimit when the
                          ///< budget ran out). Part of the differential
                          ///< bit-identity contract between engines.
  std::string Message;    ///< Human-readable diagnosis.

  bool ok() const { return St == Status::Ok; }
};

/// Concrete executor over a program. Structurally invalid programs are
/// not executed: run() reports Status::InvalidProgram with the validation
/// diagnostic instead of tripping undefined behavior (replayed external
/// corpora hit this path; generated programs never do).
class Interpreter {
public:
  /// \p Memory is the context region R1 points to; it is read and written
  /// in place. The interpreter stores its own copy of the program, so
  /// temporaries are safe to pass.
  Interpreter(Program Prog, std::vector<uint8_t> &Memory);

  /// Runs from instruction 0 until exit, a trap, or \p StepLimit executed
  /// instructions.
  ExecResult run(uint64_t StepLimit = 1 << 20);

  /// Register file after run() (for differential state inspection).
  const std::array<uint64_t, NumRegs> &registers() const { return Regs; }

  /// Per-register initialization flags after run().
  const std::array<bool, NumRegs> &initialized() const { return Inited; }

private:
  /// Reads \p Size bytes little-endian at synthetic address \p Addr.
  /// Returns false on out-of-bounds.
  bool loadBytes(uint64_t Addr, unsigned Size, uint64_t &Out) const;
  bool storeBytes(uint64_t Addr, unsigned Size, uint64_t Value);

  /// Resolves a synthetic address to a host pointer, or nullptr if the
  /// access [Addr, Addr + Size) is not fully inside one region.
  const uint8_t *resolve(uint64_t Addr, unsigned Size) const;
  uint8_t *resolveMutable(uint64_t Addr, unsigned Size);

  Program Prog;
  std::vector<uint8_t> &Memory;
  /// Validation diagnostic captured at construction; run() refuses to
  /// execute while this is set.
  std::optional<std::string> Invalid;
  std::array<uint8_t, StackSize> Stack = {};
  std::array<uint64_t, NumRegs> Regs = {};
  std::array<bool, NumRegs> Inited = {};
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_INTERPRETER_H
