//===- bpf/Insn.h - Miniature eBPF instruction set --------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful miniature of the eBPF instruction subset the paper's analyzer
/// reasons about: 64-bit ALU operations (the concrete operations of §II-B:
/// add, sub, mul, div, or, and, lsh, rsh, neg, mod, xor, arsh, mov),
/// conditional jumps, immediate loads, and loads/stores through the two
/// pointer registers the substrate models (R1 = context/packet memory,
/// R10 = stack frame pointer).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_INSN_H
#define TNUMS_BPF_INSN_H

#include "domain/RegValue.h"

#include <cstdint>
#include <string>

namespace tnums {
namespace bpf {

/// BPF general-purpose registers. R0 holds return values, R1 the context
/// pointer at entry, R10 the (read-only) frame pointer.
enum Reg : uint8_t {
  R0,
  R1,
  R2,
  R3,
  R4,
  R5,
  R6,
  R7,
  R8,
  R9,
  R10,
};

/// Number of architectural registers.
inline constexpr unsigned NumRegs = 11;

/// \name Machine model constants (shared by interpreter and analyzer)
/// @{
/// Synthetic base address of the context memory region.
inline constexpr uint64_t MemBase = 0x1000'0000;
/// Synthetic address one past the top of the stack (R10 at entry).
inline constexpr uint64_t StackBase = 0x2000'0000;
/// Size of the BPF stack frame in bytes (kernel value).
inline constexpr uint64_t StackSize = 512;
/// The analyzer tracks the stack at 8-byte slot granularity; slot i covers
/// frame offsets [-8 * (i + 1), -8 * i).
inline constexpr unsigned NumStackSlots = StackSize / 8;
/// @}

/// 64-bit ALU operations (BPF_ALU64 class).
enum class AluOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  Lsh,
  Rsh,
  Arsh,
  Mov,
  Neg,
};

/// Stable lower-case mnemonic ("add", "mov", ...).
const char *aluOpName(AluOp Op);

/// Maps the two-operand AluOps onto the domain-layer BinaryOp (asserts on
/// Mov/Neg, which have no BinaryOp counterpart).
BinaryOp aluOpToBinaryOp(AluOp Op);

/// One instruction. A tagged union kept flat (no inheritance) so programs
/// are trivially copyable, like real BPF bytecode.
struct Insn {
  enum class Kind : uint8_t {
    Alu,     ///< Dst = Dst op Src/Imm (or Mov/Neg).
    Jmp,     ///< if (Dst cmp Src/Imm) goto pc + 1 + Offset.
    Ja,      ///< goto pc + 1 + Offset.
    LoadImm, ///< Dst = Imm (64-bit).
    Load,    ///< Dst = *(Size bytes *)(Src + Offset).
    Store,   ///< *(Size bytes *)(Dst + Offset) = Src/Imm.
    Exit,    ///< return R0.
  };

  Kind InsnKind = Kind::Exit;
  AluOp Alu = AluOp::Mov;       ///< Valid for Kind::Alu.
  CompareOp Cmp = CompareOp::Eq; ///< Valid for Kind::Jmp.
  uint8_t Dst = 0;              ///< Destination register.
  uint8_t Src = 0;              ///< Source register (when !UsesImm).
  bool UsesImm = false;         ///< Source operand is Imm, not Src.
  int64_t Imm = 0;              ///< Immediate operand.
  int32_t Offset = 0;           ///< Jump displacement or memory offset.
  uint8_t Size = 8;             ///< Memory access size in bytes {1,2,4,8}.
  bool Is32 = false;            ///< ALU32/JMP32: operate on the low 32
                                ///< bits (BPF_ALU / BPF_JMP32 classes).

  /// \name Factories
  /// @{
  static Insn alu(AluOp Op, Reg Dst, Reg Src);
  static Insn aluImm(AluOp Op, Reg Dst, int64_t Imm);
  static Insn neg(Reg Dst);
  static Insn mov(Reg Dst, Reg Src) { return alu(AluOp::Mov, Dst, Src); }
  static Insn movImm(Reg Dst, int64_t Imm) {
    return aluImm(AluOp::Mov, Dst, Imm);
  }
  static Insn alu32(AluOp Op, Reg Dst, Reg Src) {
    Insn I = alu(Op, Dst, Src);
    I.Is32 = true;
    return I;
  }
  static Insn alu32Imm(AluOp Op, Reg Dst, int64_t Imm) {
    Insn I = aluImm(Op, Dst, Imm);
    I.Is32 = true;
    return I;
  }
  static Insn mov32(Reg Dst, Reg Src) { return alu32(AluOp::Mov, Dst, Src); }
  static Insn mov32Imm(Reg Dst, int64_t Imm) {
    return alu32Imm(AluOp::Mov, Dst, Imm);
  }
  static Insn loadImm(Reg Dst, int64_t Imm);
  static Insn jmp(CompareOp Cmp, Reg Dst, Reg Src, int32_t Offset);
  static Insn jmpImm(CompareOp Cmp, Reg Dst, int64_t Imm, int32_t Offset);
  static Insn jmp32(CompareOp Cmp, Reg Dst, Reg Src, int32_t Offset) {
    Insn I = jmp(Cmp, Dst, Src, Offset);
    I.Is32 = true;
    return I;
  }
  static Insn jmp32Imm(CompareOp Cmp, Reg Dst, int64_t Imm, int32_t Offset) {
    Insn I = jmpImm(Cmp, Dst, Imm, Offset);
    I.Is32 = true;
    return I;
  }
  static Insn ja(int32_t Offset);
  static Insn load(Reg Dst, Reg Base, int32_t Offset, unsigned Size);
  static Insn store(Reg Base, int32_t Offset, Reg Src, unsigned Size);
  static Insn storeImm(Reg Base, int32_t Offset, int64_t Imm, unsigned Size);
  static Insn exit();
  /// @}

  /// Disassembles to one line of text (no trailing newline), e.g.
  /// "r2 &= 0xff" or "if r2 > 8 goto +3".
  std::string toString() const;
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_INSN_H
