//===- bpf/Cfg.cpp - Instruction-level control-flow graph -----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Cfg.h"

#include <algorithm>

using namespace tnums;
using namespace tnums::bpf;

Cfg::Cfg(const Program &Prog) {
  assert(!Prog.validate() && "building CFG of an invalid program");
  size_t N = Prog.size();
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);

  for (size_t Pc = 0; Pc != N; ++Pc) {
    const Insn &I = Prog.insn(Pc);
    switch (I.InsnKind) {
    case Insn::Kind::Exit:
      break;
    case Insn::Kind::Ja:
      Succs[Pc].push_back(Program::jumpTarget(Pc, I));
      break;
    case Insn::Kind::Jmp:
      Succs[Pc].push_back(Pc + 1); // Fall-through first.
      if (Program::jumpTarget(Pc, I) != Pc + 1)
        Succs[Pc].push_back(Program::jumpTarget(Pc, I));
      break;
    default:
      Succs[Pc].push_back(Pc + 1);
      break;
    }
    for (size_t Succ : Succs[Pc])
      Preds[Succ].push_back(Pc);
  }

  // Iterative DFS from entry computing post-order and back-edge (loop)
  // detection.
  enum class Color : uint8_t { White, Grey, Black };
  std::vector<Color> Colors(N, Color::White);
  std::vector<size_t> PostOrder;
  // Stack frames: (node, next successor index to visit).
  std::vector<std::pair<size_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  Colors[0] = Color::Grey;
  Reachable[0] = true;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    if (NextSucc < Succs[Node].size()) {
      size_t Succ = Succs[Node][NextSucc++];
      if (Colors[Succ] == Color::Grey)
        Loop = true;
      if (Colors[Succ] == Color::White) {
        Colors[Succ] = Color::Grey;
        Reachable[Succ] = true;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    Colors[Node] = Color::Black;
    PostOrder.push_back(Node);
    Stack.pop_back();
  }

  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
}
