//===- bpf/Cfg.cpp - Instruction-level control-flow graph -----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Cfg.h"

#include <algorithm>

using namespace tnums;
using namespace tnums::bpf;

void Cfg::rebuild(const Program &Prog) {
  assert(!Prog.validate() && "building CFG of an invalid program");
  size_t N = Prog.size();
  // Clear-in-place instead of assign, and never shrink the outer vectors
  // (size() reports NumInsns, not Succs.size()): the inner edge vectors
  // keep their capacity across a stream of variably sized programs, so a
  // long-lived engine stops allocating after its high-water program (the
  // batch service's per-worker amortization).
  NumInsns = N;
  if (Succs.size() < N) {
    Succs.resize(N);
    Preds.resize(N);
  }
  for (size_t Pc = 0; Pc != N; ++Pc) {
    Succs[Pc].clear();
    Preds[Pc].clear();
  }
  Reachable.assign(N, false);
  Rpo.clear();
  Loop = false;

  for (size_t Pc = 0; Pc != N; ++Pc) {
    const Insn &I = Prog.insn(Pc);
    switch (I.InsnKind) {
    case Insn::Kind::Exit:
      break;
    case Insn::Kind::Ja:
      Succs[Pc].push_back(Program::jumpTarget(Pc, I));
      break;
    case Insn::Kind::Jmp:
      Succs[Pc].push_back(Pc + 1); // Fall-through first.
      if (Program::jumpTarget(Pc, I) != Pc + 1)
        Succs[Pc].push_back(Program::jumpTarget(Pc, I));
      break;
    default:
      Succs[Pc].push_back(Pc + 1);
      break;
    }
    for (size_t Succ : Succs[Pc])
      Preds[Succ].push_back(Pc);
  }

  // Iterative DFS from entry computing post-order and back-edge (loop)
  // detection. The traversal scratch lives on the object so rebuild()
  // reuses its capacity along with the edge vectors.
  Colors.assign(N, Color::White);
  PostOrder.clear();
  Stack.clear();
  Stack.emplace_back(0, 0);
  Colors[0] = Color::Grey;
  Reachable[0] = true;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    if (NextSucc < Succs[Node].size()) {
      size_t Succ = Succs[Node][NextSucc++];
      if (Colors[Succ] == Color::Grey)
        Loop = true;
      if (Colors[Succ] == Color::White) {
        Colors[Succ] = Color::Grey;
        Reachable[Succ] = true;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    Colors[Node] = Color::Black;
    PostOrder.push_back(Node);
    Stack.pop_back();
  }

  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
}
