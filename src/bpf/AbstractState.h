//===- bpf/AbstractState.h - Per-point analyzer state -----------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract machine state the analyzer tracks at every program point:
/// one AbsReg per architectural register, where a register is either
/// uninitialized, a scalar (tracked by the RegValue reduced product whose
/// bit-level component is the paper's tnum domain), or a pointer into one
/// of the two memory regions with an abstract offset. This miniaturizes the
/// kernel's bpf_reg_state / bpf_verifier_state pair.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_ABSTRACTSTATE_H
#define TNUMS_BPF_ABSTRACTSTATE_H

#include "bpf/Insn.h"
#include "domain/RegValue.h"

#include <array>
#include <string>

namespace tnums {
namespace bpf {

/// What a register holds. Uninit/Invalid are unusable; using one is a
/// verifier violation (not an analysis error).
enum class RegKind : uint8_t {
  Uninit,     ///< Never written on some path.
  Invalid,    ///< Join of incompatible kinds; contents unusable.
  Scalar,     ///< A number, tracked by the reduced-product RegValue.
  PtrToMem,   ///< Context pointer + abstract byte offset.
  PtrToStack, ///< Frame pointer + abstract (signed) byte offset.
};

const char *regKindName(RegKind Kind);

/// One register's abstract contents: a kind plus a RegValue that holds the
/// scalar value (Scalar) or the pointer offset (PtrTo*).
class AbsReg {
public:
  /// Uninitialized (entry state of the scratch registers).
  AbsReg() : Kind(RegKind::Uninit), Val(RegValue::makeBottom()) {}

  static AbsReg makeUninit() { return AbsReg(); }
  static AbsReg makeInvalid() {
    return AbsReg(RegKind::Invalid, RegValue::makeTop());
  }
  static AbsReg makeScalar(RegValue V) {
    return AbsReg(RegKind::Scalar, std::move(V));
  }
  static AbsReg makePointer(RegKind PtrKind, RegValue Offset) {
    assert((PtrKind == RegKind::PtrToMem || PtrKind == RegKind::PtrToStack) &&
           "not a pointer kind");
    return AbsReg(PtrKind, std::move(Offset));
  }

  RegKind kind() const { return Kind; }
  bool isScalar() const { return Kind == RegKind::Scalar; }
  bool isPointer() const {
    return Kind == RegKind::PtrToMem || Kind == RegKind::PtrToStack;
  }
  /// Usable as an operand (reading it is not a violation).
  bool isUsable() const { return isScalar() || isPointer(); }

  /// The scalar value or pointer offset; only valid when usable.
  const RegValue &value() const {
    assert(isUsable() && "value of unusable register");
    return Val;
  }

  /// Least upper bound. Same kinds join their values; incompatible kinds
  /// collapse to Invalid (two Uninits stay Uninit).
  AbsReg joinWith(const AbsReg &Q) const;

  /// Partial order consistent with joinWith.
  bool isSubsetOf(const AbsReg &Q) const;

  std::string toString() const;

  friend bool operator==(const AbsReg &A, const AbsReg &B) {
    if (A.Kind != B.Kind)
      return false;
    if (!A.isUsable())
      return true;
    return A.Val == B.Val;
  }
  friend bool operator!=(const AbsReg &A, const AbsReg &B) {
    return !(A == B);
  }

private:
  AbsReg(RegKind KindV, RegValue ValV) : Kind(KindV), Val(std::move(ValV)) {}

  RegKind Kind;
  RegValue Val;
};

/// The full abstract machine state at one program point. Unreachable
/// states are the analysis bottom. Besides the register file, the state
/// tracks the 64 8-byte stack slots so that spill/fill round trips (store
/// to r10-k, load back) preserve abstract values, as the kernel verifier
/// does. Slot i covers frame offsets [-8(i+1), -8i); slot contents reuse
/// AbsReg: Uninit = never written, Invalid = corrupted spill, Scalar and
/// PtrTo* = precisely tracked 8-byte spills or "misc" byte data
/// (Scalar top).
struct AbstractState {
  bool Reachable = false;
  std::array<AbsReg, NumRegs> Regs;
  std::array<AbsReg, NumStackSlots> Slots;

  /// The slot index covering frame offset \p Offset (which must be in
  /// [-StackSize, -1]).
  static unsigned slotIndex(int64_t Offset) {
    assert(Offset < 0 && Offset >= -static_cast<int64_t>(StackSize) &&
           "offset outside the frame");
    return static_cast<unsigned>((-Offset - 1) / 8);
  }

  /// The state on entry to a program run against a \p MemSize-byte context
  /// region: R1 = mem pointer (offset 0), R2 = MemSize, R10 = stack
  /// pointer (offset 0), everything else uninitialized.
  static AbstractState makeEntry(uint64_t MemSize);

  static AbstractState makeUnreachable() { return AbstractState(); }

  /// Pointwise join; unreachable is the identity.
  AbstractState joinWith(const AbstractState &Q) const;

  /// Pointwise order; unreachable below everything.
  bool isSubsetOf(const AbstractState &Q) const;

  std::string toString() const;

  friend bool operator==(const AbstractState &A, const AbstractState &B) {
    if (A.Reachable != B.Reachable)
      return false;
    if (!A.Reachable)
      return true;
    return A.Regs == B.Regs && A.Slots == B.Slots;
  }
  friend bool operator!=(const AbstractState &A, const AbstractState &B) {
    return !(A == B);
  }
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_ABSTRACTSTATE_H
