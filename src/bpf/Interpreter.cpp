//===- bpf/Interpreter.cpp - Concrete BPF interpreter ---------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Interpreter.h"

#include "support/Table.h"

using namespace tnums;
using namespace tnums::bpf;

Interpreter::Interpreter(Program ProgV, std::vector<uint8_t> &MemoryV)
    : Prog(std::move(ProgV)), Memory(MemoryV), Invalid(Prog.validate()) {
  Regs[R1] = MemBase;
  Regs[R2] = Memory.size();
  Regs[R10] = StackBase;
  Inited[R1] = Inited[R2] = Inited[R10] = true;
}

const uint8_t *Interpreter::resolve(uint64_t Addr, unsigned Size) const {
  if (Addr >= MemBase && Size <= Memory.size() &&
      Addr - MemBase <= Memory.size() - Size)
    return Memory.data() + (Addr - MemBase);
  uint64_t StackLow = StackBase - StackSize;
  if (Addr >= StackLow && Addr - StackLow <= StackSize - Size &&
      Addr < StackBase)
    return Stack.data() + (Addr - StackLow);
  return nullptr;
}

uint8_t *Interpreter::resolveMutable(uint64_t Addr, unsigned Size) {
  return const_cast<uint8_t *>(
      static_cast<const Interpreter *>(this)->resolve(Addr, Size));
}

bool Interpreter::loadBytes(uint64_t Addr, unsigned Size,
                            uint64_t &Out) const {
  const uint8_t *Ptr = resolve(Addr, Size);
  if (!Ptr)
    return false;
  uint64_t Value = 0;
  for (unsigned I = 0; I != Size; ++I)
    Value |= static_cast<uint64_t>(Ptr[I]) << (8 * I);
  Out = Value;
  return true;
}

bool Interpreter::storeBytes(uint64_t Addr, unsigned Size, uint64_t Value) {
  uint8_t *Ptr = resolveMutable(Addr, Size);
  if (!Ptr)
    return false;
  for (unsigned I = 0; I != Size; ++I)
    Ptr[I] = static_cast<uint8_t>(Value >> (8 * I));
  return true;
}

/// The concrete 64-bit ALU semantics (BPF conventions: x / 0 == 0,
/// x % 0 == x, shift amounts masked to 63).
static uint64_t evalAlu64(AluOp Op, uint64_t L, uint64_t R) {
  switch (Op) {
  case AluOp::Add:
    return L + R;
  case AluOp::Sub:
    return L - R;
  case AluOp::Mul:
    return L * R;
  case AluOp::Div:
    return R == 0 ? 0 : L / R;
  case AluOp::Mod:
    return R == 0 ? L : L % R;
  case AluOp::And:
    return L & R;
  case AluOp::Or:
    return L | R;
  case AluOp::Xor:
    return L ^ R;
  case AluOp::Lsh:
    return L << (R & 63);
  case AluOp::Rsh:
    return L >> (R & 63);
  case AluOp::Arsh:
    return static_cast<uint64_t>(static_cast<int64_t>(L) >> (R & 63));
  case AluOp::Mov:
    return R;
  case AluOp::Neg:
    return 0 - L;
  }
  assert(false && "unknown alu op");
  return 0;
}

/// BPF_ALU (32-bit) semantics: operate on the low halves, mask shift
/// amounts to 31, and zero-extend the result into the full register.
static uint64_t evalAlu(AluOp Op, uint64_t L, uint64_t R, bool Is32) {
  if (!Is32)
    return evalAlu64(Op, L, R);
  uint32_t L32 = static_cast<uint32_t>(L);
  uint32_t R32 = static_cast<uint32_t>(R);
  switch (Op) {
  case AluOp::Lsh:
    return static_cast<uint32_t>(L32 << (R32 & 31));
  case AluOp::Rsh:
    return L32 >> (R32 & 31);
  case AluOp::Arsh:
    return static_cast<uint32_t>(static_cast<int32_t>(L32) >> (R32 & 31));
  default:
    return static_cast<uint32_t>(evalAlu64(Op, L32, R32));
  }
}

ExecResult Interpreter::run(uint64_t StepLimit) {
  size_t Pc = 0;
  ExecResult Result;

  auto Trap = [&](ExecResult::Status St, std::string Message) {
    Result.St = St;
    Result.FaultPc = Pc;
    Result.Message = std::move(Message);
    return Result;
  };
  auto RequireInit = [&](uint8_t RegNum) { return Inited[RegNum]; };

  // Replayed external programs reach this path without the generator's
  // validity-by-construction guarantee: refuse with the diagnostic
  // instead of executing into undefined behavior.
  if (Invalid)
    return Trap(ExecResult::Status::InvalidProgram,
                "structurally invalid program: " + *Invalid);

  for (uint64_t Steps = 0; Steps != StepLimit; ++Steps) {
    if (Pc >= Prog.size())
      return Trap(ExecResult::Status::InvalidProgram,
                  formatString("pc %zu ran off the end of a %zu-insn "
                               "program",
                               Pc, Prog.size()));
    Result.Steps = Steps + 1;
    const Insn &I = Prog.insn(Pc);
    switch (I.InsnKind) {
    case Insn::Kind::Alu: {
      if (I.Alu == AluOp::Neg) {
        if (!RequireInit(I.Dst))
          return Trap(ExecResult::Status::UninitRead, "neg of uninit reg");
        Regs[I.Dst] = evalAlu(AluOp::Neg, Regs[I.Dst], 0, I.Is32);
        break;
      }
      uint64_t Rhs;
      if (I.UsesImm) {
        Rhs = static_cast<uint64_t>(I.Imm);
      } else {
        if (!RequireInit(I.Src))
          return Trap(ExecResult::Status::UninitRead, "read of uninit reg");
        Rhs = Regs[I.Src];
      }
      if (I.Alu == AluOp::Mov) {
        Regs[I.Dst] = I.Is32 ? static_cast<uint32_t>(Rhs) : Rhs;
        Inited[I.Dst] = true;
        break;
      }
      if (!RequireInit(I.Dst))
        return Trap(ExecResult::Status::UninitRead, "read of uninit reg");
      Regs[I.Dst] = evalAlu(I.Alu, Regs[I.Dst], Rhs, I.Is32);
      break;
    }
    case Insn::Kind::LoadImm:
      Regs[I.Dst] = static_cast<uint64_t>(I.Imm);
      Inited[I.Dst] = true;
      break;
    case Insn::Kind::Load: {
      if (!RequireInit(I.Src))
        return Trap(ExecResult::Status::UninitRead, "load via uninit reg");
      uint64_t Addr = Regs[I.Src] + static_cast<int64_t>(I.Offset);
      uint64_t Value;
      if (!loadBytes(Addr, I.Size, Value))
        return Trap(ExecResult::Status::OutOfBounds,
                    formatString("load of %u bytes at 0x%llx out of bounds",
                                 I.Size,
                                 static_cast<unsigned long long>(Addr)));
      Regs[I.Dst] = Value;
      Inited[I.Dst] = true;
      break;
    }
    case Insn::Kind::Store: {
      if (!RequireInit(I.Dst))
        return Trap(ExecResult::Status::UninitRead, "store via uninit reg");
      uint64_t Value;
      if (I.UsesImm) {
        Value = static_cast<uint64_t>(I.Imm);
      } else {
        if (!RequireInit(I.Src))
          return Trap(ExecResult::Status::UninitRead, "store of uninit reg");
        Value = Regs[I.Src];
      }
      uint64_t Addr = Regs[I.Dst] + static_cast<int64_t>(I.Offset);
      if (!storeBytes(Addr, I.Size, Value))
        return Trap(ExecResult::Status::OutOfBounds,
                    formatString("store of %u bytes at 0x%llx out of bounds",
                                 I.Size,
                                 static_cast<unsigned long long>(Addr)));
      break;
    }
    case Insn::Kind::Jmp: {
      if (!RequireInit(I.Dst))
        return Trap(ExecResult::Status::UninitRead, "jump on uninit reg");
      uint64_t Rhs;
      if (I.UsesImm) {
        Rhs = static_cast<uint64_t>(I.Imm);
      } else {
        if (!RequireInit(I.Src))
          return Trap(ExecResult::Status::UninitRead, "jump on uninit reg");
        Rhs = Regs[I.Src];
      }
      if (applyConcreteCompare(I.Cmp, Regs[I.Dst], Rhs,
                               I.Is32 ? 32 : MaxBitWidth)) {
        Pc = Program::jumpTarget(Pc, I);
        continue;
      }
      break;
    }
    case Insn::Kind::Ja:
      Pc = Program::jumpTarget(Pc, I);
      continue;
    case Insn::Kind::Exit:
      if (!RequireInit(R0))
        return Trap(ExecResult::Status::UninitRead, "exit with uninit r0");
      Result.ReturnValue = Regs[R0];
      Result.ExitPc = Pc;
      return Result;
    }
    ++Pc;
  }
  return Trap(ExecResult::Status::StepLimit, "step limit exhausted");
}
