//===- bpf/Verifier.h - BPF safety verifier ---------------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing entry point of the BPF substrate: structural validation
/// followed by abstract interpretation, yielding an accept/reject verdict
/// with diagnostics -- the miniature of the kernel loader path the paper's
/// static analyzer lives in. Accepted programs never trap in the concrete
/// Interpreter on any input (the differential test suite checks this).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_VERIFIER_H
#define TNUMS_BPF_VERIFIER_H

#include "bpf/Analyzer.h"

#include <string>

namespace tnums {
namespace bpf {

/// The verdict for one program.
struct VerifierReport {
  bool Accepted = false;
  /// Structural problem, if validation already failed.
  std::string StructuralError;
  /// Semantic complaints from the analyzer.
  std::vector<Violation> Violations;
  /// Fixpoint states (empty if validation failed).
  std::vector<AbstractState> InStates;

  /// Annotated disassembly: every instruction with its incoming abstract
  /// state and any violation anchored there.
  std::string toString(const Program &Prog) const;
};

/// Verifies \p Prog against a \p MemSize-byte context region.
VerifierReport verifyProgram(const Program &Prog, uint64_t MemSize,
                             Analyzer::Options Opts = {});

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_VERIFIER_H
