//===- bpf/Analyzer.cpp - Abstract interpreter over BPF programs ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Analyzer.h"

#include "bpf/Interpreter.h" // StackSize
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/Trace.h"

using namespace tnums;
using namespace tnums::bpf;

namespace {

/// Analyzer telemetry handles (support/Metrics.h). Observation only:
/// nothing here feeds back into states or verdicts, so
/// analyzerVersionTag() stays untouched and metrics-on runs produce
/// bit-identical reports to metrics-off runs.
struct AnalyzerMetrics {
  Histogram CfgRebuildNs{"tnums_analyzer_phase_ns", "phase=\"cfg_rebuild\""};
  Histogram FixpointNs{"tnums_analyzer_phase_ns", "phase=\"fixpoint\""};
  Counter Analyses{"tnums_analyzer_analyses_total"};
  Counter InsnVisits{"tnums_analyzer_insn_visits_total"};
  Counter Revisits{"tnums_analyzer_worklist_revisits_total"};
  Counter NotConverged{"tnums_analyzer_nonconverged_total"};
  Counter TransferLoadImm{"tnums_analyzer_transfer_total", "op=\"loadimm\""};
  Counter TransferLoad{"tnums_analyzer_transfer_total", "op=\"load\""};
  Counter TransferStore{"tnums_analyzer_transfer_total", "op=\"store\""};
  Counter TransferJmp{"tnums_analyzer_transfer_total", "op=\"jmp\""};
  Counter TransferJa{"tnums_analyzer_transfer_total", "op=\"ja\""};
  Counter TransferExit{"tnums_analyzer_transfer_total", "op=\"exit\""};
  std::vector<Counter> TransferAlu; ///< Indexed by AluOp.

  AnalyzerMetrics() {
    for (uint8_t Op = 0; Op <= static_cast<uint8_t>(AluOp::Neg); ++Op) {
      std::string Labels = formatString(
          "op=\"%s\"", aluOpName(static_cast<AluOp>(Op)));
      TransferAlu.emplace_back("tnums_analyzer_transfer_total",
                               Labels.c_str());
    }
  }
};

AnalyzerMetrics &analyzerMetrics() {
  static AnalyzerMetrics M;
  return M;
}

} // namespace

const char *tnums::bpf::analyzerVersionTag() {
  // Bump on ANY verdict-affecting change (transfer semantics, violation
  // wording, worklist order changing InsnVisits, widening policy).
  return "worklist-rpo-widening-2025-08";
}

Analyzer::Analyzer(const Program &ProgV, Options OptsV)
    : Prog(&ProgV), Graph(ProgV), Opts(OptsV) {}

AnalysisResult Analyzer::analyze() {
  assert(Prog && "no program bound; use analyze(Prog, Opts)");
  return run();
}

AnalysisResult Analyzer::analyze(const Program &ProgV, const Options &OptsV) {
  Prog = &ProgV;
  Opts = OptsV;
  {
    ScopedTimer Timer(analyzerMetrics().CfgRebuildNs);
    Graph.rebuild(ProgV);
  }
  return run();
}

void Analyzer::report(AnalysisResult &Result, size_t Pc,
                      std::string Message) {
  for (const Violation &V : Result.Violations)
    if (V.Pc == Pc && V.Message == Message)
      return;
  Result.Violations.push_back(Violation{Pc, std::move(Message)});
}

std::string Analyzer::checkMemoryAccess(const AbsReg &Base, int32_t Offset,
                                        unsigned Size) const {
  assert(Base.isPointer() && "bounds check on non-pointer");
  const RegValue &Off = Base.value();
  if (Base.kind() == RegKind::PtrToMem) {
    // Context accesses use the unsigned view of the offset: every concrete
    // offset o must satisfy 0 <= o + Offset and o + Offset + Size <= MemSize.
    __int128 Lo =
        static_cast<__int128>(Off.unsignedBounds().min()) + Offset;
    __int128 Hi = static_cast<__int128>(Off.unsignedBounds().max()) + Offset +
                  static_cast<__int128>(Size);
    if (Lo < 0 || Hi > static_cast<__int128>(Opts.MemSize))
      return formatString(
          "context access of %u bytes at offset %s%+d may escape [0, %llu)",
          Size, Off.unsignedBounds().toString().c_str(), Offset,
          static_cast<unsigned long long>(Opts.MemSize));
    return std::string();
  }
  // Stack accesses live at negative frame offsets: [-StackSize, 0).
  __int128 Lo = static_cast<__int128>(Off.signedBounds().min()) + Offset;
  __int128 Hi = static_cast<__int128>(Off.signedBounds().max()) + Offset +
                static_cast<__int128>(Size);
  if (Lo < -static_cast<__int128>(StackSize) || Hi > 0)
    return formatString(
        "stack access of %u bytes at offset %s%+d escapes [-%llu, 0)", Size,
        Off.signedBounds().toString().c_str(), Offset,
        static_cast<unsigned long long>(StackSize));
  return std::string();
}

/// The frame-offset range [Lo, Hi] (inclusive of the last touched byte)
/// of a validated stack access, and whether the start offset is unique.
static void stackAccessRange(const AbsReg &Base, const Insn &I, int64_t &Lo,
                             int64_t &Hi, bool &ConstantOffset) {
  const RegValue &Off = Base.value();
  const SignedRange &S = Off.signedBounds();
  Lo = S.min() + I.Offset;
  Hi = S.max() + I.Offset + I.Size - 1;
  ConstantOffset = S.isConstant();
}

AbsReg Analyzer::loadFromStack(size_t Pc, const AbstractState &In,
                               const AbsReg &Base, const Insn &I,
                               AnalysisResult &Result) {
  int64_t Lo, Hi;
  bool ConstantOffset;
  stackAccessRange(Base, I, Lo, Hi, ConstantOffset);

  // Precise fill: an 8-byte aligned 8-byte load of a tracked slot.
  if (ConstantOffset && I.Size == 8 && (Lo % 8) == 0) {
    const AbsReg &Slot = In.Slots[AbstractState::slotIndex(Lo)];
    if (Slot.isUsable())
      return Slot;
    report(Result, Pc,
           formatString("read of %s stack slot at fp%+lld",
                        regKindName(Slot.kind()), static_cast<long long>(Lo)));
    return AbsReg::makeInvalid();
  }

  // Imprecise read: every touched slot must hold initialized scalar data.
  for (int64_t SlotLo = Lo & ~int64_t(7); SlotLo <= Hi; SlotLo += 8) {
    const AbsReg &Slot = In.Slots[AbstractState::slotIndex(SlotLo)];
    if (Slot.isPointer()) {
      report(Result, Pc,
             formatString("partial read of spilled pointer at fp%+lld",
                          static_cast<long long>(SlotLo)));
      return AbsReg::makeInvalid();
    }
    if (!Slot.isUsable()) {
      report(Result, Pc,
             formatString("read of %s stack slot at fp%+lld",
                          regKindName(Slot.kind()),
                          static_cast<long long>(SlotLo)));
      return AbsReg::makeInvalid();
    }
  }
  return AbsReg::makeScalar(
      RegValue::fromUnsignedRange(0, lowBitsMask(I.Size * 8)));
}

void Analyzer::storeToStack(size_t Pc, AbstractState &Out, const AbsReg &Base,
                            const Insn &I, const AbsReg &Stored,
                            AnalysisResult &Result) {
  if (!Stored.isUsable()) {
    report(Result, Pc, formatString("store of %s register to the stack",
                                    regKindName(Stored.kind())));
    return;
  }
  int64_t Lo, Hi;
  bool ConstantOffset;
  stackAccessRange(Base, I, Lo, Hi, ConstantOffset);

  // Precise spill: 8-byte aligned full-slot store tracks the value
  // (including pointers -- the kernel's spill/fill support).
  if (ConstantOffset && I.Size == 8 && (Lo % 8) == 0) {
    Out.Slots[AbstractState::slotIndex(Lo)] = Stored;
    return;
  }

  // Imprecise store: pointers may not be stored partially, and every
  // touched slot degrades to unknown scalar bytes ("misc" data).
  if (Stored.isPointer()) {
    report(Result, Pc, "unaligned or partial pointer spill");
    return;
  }
  for (int64_t SlotLo = Lo & ~int64_t(7); SlotLo <= Hi; SlotLo += 8) {
    AbsReg &Slot = Out.Slots[AbstractState::slotIndex(SlotLo)];
    if (Slot.isPointer()) {
      report(Result, Pc,
             formatString("partial overwrite of spilled pointer at fp%+lld",
                          static_cast<long long>(SlotLo)));
      Slot = AbsReg::makeInvalid();
      continue;
    }
    Slot = AbsReg::makeScalar(RegValue::makeTop());
  }
}

AbstractState Analyzer::transfer(size_t Pc, const AbstractState &In,
                                 AnalysisResult &Result) {
  const Insn &I = Prog->insn(Pc);
  AbstractState Out = In;

  if (metricsEnabled()) {
    AnalyzerMetrics &M = analyzerMetrics();
    switch (I.InsnKind) {
    case Insn::Kind::LoadImm:
      M.TransferLoadImm.add();
      break;
    case Insn::Kind::Alu:
      M.TransferAlu[static_cast<uint8_t>(I.Alu)].add();
      break;
    case Insn::Kind::Load:
      M.TransferLoad.add();
      break;
    case Insn::Kind::Store:
      M.TransferStore.add();
      break;
    default:
      break;
    }
  }

  switch (I.InsnKind) {
  case Insn::Kind::LoadImm:
    Out.Regs[I.Dst] =
        AbsReg::makeScalar(RegValue::makeConstant(static_cast<uint64_t>(I.Imm)));
    break;

  case Insn::Kind::Alu: {
    if (I.Alu == AluOp::Neg) {
      const AbsReg &Dst = In.Regs[I.Dst];
      if (!Dst.isScalar()) {
        report(Result, Pc, formatString("neg of %s register r%u",
                                        regKindName(Dst.kind()), I.Dst));
        Out.Regs[I.Dst] = AbsReg::makeInvalid();
        break;
      }
      RegValue Zero = RegValue::makeConstant(0);
      Out.Regs[I.Dst] = AbsReg::makeScalar(
          I.Is32 ? applyBinary32(BinaryOp::Sub, Zero, Dst.value())
                 : applyBinary(BinaryOp::Sub, Zero, Dst.value()));
      break;
    }

    AbsReg Rhs = I.UsesImm ? AbsReg::makeScalar(RegValue::makeConstant(
                                 static_cast<uint64_t>(I.Imm)))
                           : In.Regs[I.Src];
    if (I.Alu == AluOp::Mov) {
      if (!Rhs.isUsable()) {
        report(Result, Pc, formatString("mov from %s register r%u",
                                        regKindName(Rhs.kind()), I.Src));
        Out.Regs[I.Dst] = AbsReg::makeInvalid();
        break;
      }
      if (I.Is32) {
        // A 32-bit mov truncates and zero-extends; truncating a pointer
        // destroys it (the kernel rejects this for privileged reasons; we
        // do too).
        if (!Rhs.isScalar()) {
          report(Result, Pc, formatString("32-bit mov of %s register",
                                          regKindName(Rhs.kind())));
          Out.Regs[I.Dst] = AbsReg::makeInvalid();
          break;
        }
        Out.Regs[I.Dst] =
            AbsReg::makeScalar(zeroExtendSubreg(truncateToSubreg(Rhs.value())));
        break;
      }
      Out.Regs[I.Dst] = Rhs;
      break;
    }

    const AbsReg &Lhs = In.Regs[I.Dst];
    if (!Lhs.isUsable() || !Rhs.isUsable()) {
      report(Result, Pc,
             formatString("%s uses %s register", aluOpName(I.Alu),
                          regKindName(Lhs.isUsable() ? Rhs.kind()
                                                     : Lhs.kind())));
      Out.Regs[I.Dst] = AbsReg::makeInvalid();
      break;
    }

    if (I.Is32 && !(Lhs.isScalar() && Rhs.isScalar())) {
      report(Result, Pc,
             formatString("32-bit %s on %s and %s registers",
                          aluOpName(I.Alu), regKindName(Lhs.kind()),
                          regKindName(Rhs.kind())));
      Out.Regs[I.Dst] = AbsReg::makeInvalid();
      break;
    }

    if (Lhs.isScalar() && Rhs.isScalar()) {
      BinaryOp Op = aluOpToBinaryOp(I.Alu);
      Out.Regs[I.Dst] = AbsReg::makeScalar(
          I.Is32 ? applyBinary32(Op, Lhs.value(), Rhs.value())
                 : applyBinary(Op, Lhs.value(), Rhs.value()));
      break;
    }

    // Pointer arithmetic: only ptr ± scalar (and scalar + ptr) keep a
    // usable pointer, as in the kernel.
    if (I.Alu == AluOp::Add) {
      if (Lhs.isPointer() && Rhs.isScalar()) {
        Out.Regs[I.Dst] = AbsReg::makePointer(
            Lhs.kind(), applyBinary(BinaryOp::Add, Lhs.value(), Rhs.value()));
        break;
      }
      if (Lhs.isScalar() && Rhs.isPointer()) {
        Out.Regs[I.Dst] = AbsReg::makePointer(
            Rhs.kind(), applyBinary(BinaryOp::Add, Lhs.value(), Rhs.value()));
        break;
      }
    }
    if (I.Alu == AluOp::Sub && Lhs.isPointer() && Rhs.isScalar()) {
      Out.Regs[I.Dst] = AbsReg::makePointer(
          Lhs.kind(), applyBinary(BinaryOp::Sub, Lhs.value(), Rhs.value()));
      break;
    }
    report(Result, Pc,
           formatString("forbidden pointer arithmetic: %s on %s and %s",
                        aluOpName(I.Alu), regKindName(Lhs.kind()),
                        regKindName(Rhs.kind())));
    Out.Regs[I.Dst] = AbsReg::makeInvalid();
    break;
  }

  case Insn::Kind::Load: {
    const AbsReg &Base = In.Regs[I.Src];
    if (!Base.isPointer()) {
      report(Result, Pc, formatString("load via %s register r%u",
                                      regKindName(Base.kind()), I.Src));
      Out.Regs[I.Dst] = AbsReg::makeInvalid();
      break;
    }
    std::string Error = checkMemoryAccess(Base, I.Offset, I.Size);
    if (!Error.empty()) {
      report(Result, Pc, Error);
      Out.Regs[I.Dst] = AbsReg::makeInvalid();
      break;
    }
    if (Base.kind() == RegKind::PtrToStack) {
      Out.Regs[I.Dst] = loadFromStack(Pc, In, Base, I, Result);
      break;
    }
    // Context bytes are arbitrary: a fresh scalar bounded by the access
    // size.
    Out.Regs[I.Dst] = AbsReg::makeScalar(
        RegValue::fromUnsignedRange(0, lowBitsMask(I.Size * 8)));
    break;
  }

  case Insn::Kind::Store: {
    const AbsReg &Base = In.Regs[I.Dst];
    if (!Base.isPointer()) {
      report(Result, Pc, formatString("store via %s register r%u",
                                      regKindName(Base.kind()), I.Dst));
      break;
    }
    std::string Error = checkMemoryAccess(Base, I.Offset, I.Size);
    if (!Error.empty()) {
      report(Result, Pc, Error);
      break;
    }
    AbsReg Stored = I.UsesImm
                        ? AbsReg::makeScalar(RegValue::makeConstant(
                              static_cast<uint64_t>(I.Imm)))
                        : In.Regs[I.Src];
    if (Base.kind() == RegKind::PtrToStack) {
      storeToStack(Pc, Out, Base, I, Stored, Result);
      break;
    }
    // Stores into the context region: scalars only (writing a pointer
    // would leak a kernel address to the program's peer).
    if (!Stored.isScalar())
      report(Result, Pc,
             formatString("store of %s register to context memory "
                          "(pointer leak)",
                          regKindName(Stored.kind())));
    break;
  }

  case Insn::Kind::Jmp:
  case Insn::Kind::Ja:
  case Insn::Kind::Exit:
    assert(false && "control flow handled by the driver loop");
    break;
  }
  return Out;
}

AnalysisResult Analyzer::run() {
  AnalyzerMetrics &Metrics = analyzerMetrics();
  ScopedTimer FixpointTimer(Metrics.FixpointNs);
  Metrics.Analyses.add();

  AnalysisResult Result;
  size_t N = Prog->size();
  Result.InStates.assign(N, AbstractState::makeUnreachable());
  Result.InStates[0] = AbstractState::makeEntry(Opts.MemSize);

  JoinCounts.assign(N, 0);

  // The worklist pops the pending instruction that is earliest in the
  // CFG's reverse post-order: straight-line runs stabilize before their
  // join points, and a loop body re-runs only after its head settles --
  // the iteration order the Cfg precomputes. Pending is indexed by RPO
  // position; ScanFrom is a floor below which no position is pending, so
  // popping is a forward scan that back-edge pushes rewind.
  const std::vector<size_t> &Rpo = Graph.reversePostOrder();
  const size_t NumRpo = Rpo.size();
  RpoPosition.assign(N, SIZE_MAX);
  for (size_t I = 0; I != NumRpo; ++I)
    RpoPosition[Rpo[I]] = I;
  Pending.assign(NumRpo, false);
  // Metrics-only scratch: which RPO positions have been popped at least
  // once, so pops beyond the first count as worklist revisits. Kept empty
  // (never consulted) while the recorder is off.
  std::vector<uint8_t> Popped;
  if (metricsEnabled())
    Popped.assign(NumRpo, 0);
  assert(NumRpo != 0 && RpoPosition[0] == 0 && "entry leads the RPO");
  Pending[0] = true;
  size_t NumPending = 1;
  size_t ScanFrom = 0;

  auto Push = [&](size_t Target) {
    size_t Pos = RpoPosition[Target];
    assert(Pos != SIZE_MAX &&
           "propagation into a CFG-unreachable instruction");
    if (!Pending[Pos]) {
      Pending[Pos] = true;
      ++NumPending;
      if (Pos < ScanFrom)
        ScanFrom = Pos;
    }
  };

  /// Widening: any register still growing after the threshold jumps to the
  /// top of its kind so chains stay finite.
  auto WidenReg = [](const AbsReg &Old, const AbsReg &New) {
    if (New.isSubsetOf(Old))
      return Old;
    AbsReg Joined = Old.joinWith(New);
    if (!Joined.isUsable())
      return Joined;
    if (Joined.isScalar())
      return AbsReg::makeScalar(RegValue::makeTop());
    return AbsReg::makePointer(Joined.kind(), RegValue::makeTop());
  };

  auto Propagate = [&](size_t Target, const AbstractState &State) {
    if (!State.Reachable)
      return;
    AbstractState &Slot = Result.InStates[Target];
    if (State.isSubsetOf(Slot))
      return;
    AbstractState Joined = Slot.joinWith(State);
    if (++JoinCounts[Target] > Opts.WideningThreshold && Slot.Reachable) {
      AbstractState Widened = Joined;
      for (unsigned R = 0; R != NumRegs; ++R)
        Widened.Regs[R] = WidenReg(Slot.Regs[R], Joined.Regs[R]);
      for (unsigned SlotIdx = 0; SlotIdx != NumStackSlots; ++SlotIdx)
        Widened.Slots[SlotIdx] =
            WidenReg(Slot.Slots[SlotIdx], Joined.Slots[SlotIdx]);
      Joined = Widened;
    }
    if (Joined == Slot)
      return;
    Slot = Joined;
    Push(Target);
  };

  while (NumPending != 0) {
    if (++Result.InsnVisits > Opts.MaxInsnVisits) {
      Result.Converged = false;
      Metrics.NotConverged.add();
      report(Result, 0, "analysis did not converge within the visit budget");
      break;
    }
    while (!Pending[ScanFrom])
      ++ScanFrom;
    size_t Pc = Rpo[ScanFrom];
    Pending[ScanFrom] = false;
    --NumPending;
    Metrics.InsnVisits.add();
    if (!Popped.empty()) {
      if (Popped[ScanFrom])
        Metrics.Revisits.add();
      else
        Popped[ScanFrom] = 1;
    }

    const AbstractState &In = Result.InStates[Pc];
    if (!In.Reachable)
      continue;
    const Insn &I = Prog->insn(Pc);

    switch (I.InsnKind) {
    case Insn::Kind::Exit: {
      Metrics.TransferExit.add();
      const AbsReg &Ret = In.Regs[R0];
      if (!Ret.isScalar())
        report(Result, Pc,
               formatString("exit with %s r0 (possible pointer leak)",
                            regKindName(Ret.kind())));
      break;
    }
    case Insn::Kind::Ja:
      Metrics.TransferJa.add();
      Propagate(Program::jumpTarget(Pc, I), In);
      break;
    case Insn::Kind::Jmp: {
      Metrics.TransferJmp.add();
      const AbsReg &Lhs = In.Regs[I.Dst];
      AbsReg Rhs = I.UsesImm ? AbsReg::makeScalar(RegValue::makeConstant(
                                   static_cast<uint64_t>(I.Imm)))
                             : In.Regs[I.Src];
      bool Refinable = Lhs.isScalar() && Rhs.isScalar();
      if (!Refinable)
        report(Result, Pc,
               formatString("comparison on %s and %s registers",
                            regKindName(Lhs.kind()), regKindName(Rhs.kind())));
      for (bool Taken : {false, true}) {
        size_t Target = Taken ? Program::jumpTarget(Pc, I) : Pc + 1;
        if (!Refinable) {
          Propagate(Target, In);
          continue;
        }
        RegValue LV = Lhs.value();
        RegValue RV = Rhs.value();
        if (I.Is32)
          refineByComparison32(I.Cmp, Taken, LV, RV);
        else
          refineByComparison(I.Cmp, Taken, LV, RV);
        if (LV.isBottom() || RV.isBottom())
          continue; // This branch direction is infeasible.
        AbstractState Refined = In;
        Refined.Regs[I.Dst] = AbsReg::makeScalar(LV);
        if (!I.UsesImm)
          Refined.Regs[I.Src] = AbsReg::makeScalar(RV);
        Propagate(Target, Refined);
      }
      break;
    }
    default:
      Propagate(Pc + 1, transfer(Pc, In, Result));
      break;
    }
  }
  return Result;
}
