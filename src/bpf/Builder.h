//===- bpf/Builder.h - Label-based BPF program builder ----------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent assembler for the miniature BPF ISA with symbolic labels, so
/// examples and tests do not hand-compute jump displacements:
///
/// \code
///   Program P = ProgramBuilder()
///       .load(R2, R1, 0, 1)                 // r2 = *(u8 *)(r1 + 0)
///       .jmpImm(CompareOp::Gt, R2, 8, "out") // if r2 > 8 goto out
///       .load(R3, R1, /*Offset=*/0, 8)      // in-bounds access
///       .label("out")
///       .movImm(R0, 0)
///       .exit()
///       .build();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_BUILDER_H
#define TNUMS_BPF_BUILDER_H

#include "bpf/Program.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tnums {
namespace bpf {

/// Accumulates instructions and resolves labels at build() time. Labels
/// may be referenced before or after their definition; build() asserts
/// that every referenced label is defined exactly once.
class ProgramBuilder {
public:
  /// Appends a raw instruction.
  ProgramBuilder &append(Insn I) {
    Insns.push_back(I);
    return *this;
  }

  /// Defines \p Name at the position of the next appended instruction.
  ProgramBuilder &label(const std::string &Name);

  /// \name Instruction shorthands
  /// @{
  ProgramBuilder &alu(AluOp Op, Reg Dst, Reg Src) {
    return append(Insn::alu(Op, Dst, Src));
  }
  ProgramBuilder &aluImm(AluOp Op, Reg Dst, int64_t Imm) {
    return append(Insn::aluImm(Op, Dst, Imm));
  }
  ProgramBuilder &mov(Reg Dst, Reg Src) { return append(Insn::mov(Dst, Src)); }
  ProgramBuilder &movImm(Reg Dst, int64_t Imm) {
    return append(Insn::movImm(Dst, Imm));
  }
  ProgramBuilder &neg(Reg Dst) { return append(Insn::neg(Dst)); }
  ProgramBuilder &alu32(AluOp Op, Reg Dst, Reg Src) {
    return append(Insn::alu32(Op, Dst, Src));
  }
  ProgramBuilder &alu32Imm(AluOp Op, Reg Dst, int64_t Imm) {
    return append(Insn::alu32Imm(Op, Dst, Imm));
  }
  ProgramBuilder &mov32(Reg Dst, Reg Src) {
    return append(Insn::mov32(Dst, Src));
  }
  ProgramBuilder &mov32Imm(Reg Dst, int64_t Imm) {
    return append(Insn::mov32Imm(Dst, Imm));
  }
  ProgramBuilder &loadImm(Reg Dst, int64_t Imm) {
    return append(Insn::loadImm(Dst, Imm));
  }
  ProgramBuilder &load(Reg Dst, Reg Base, int32_t Offset, unsigned Size) {
    return append(Insn::load(Dst, Base, Offset, Size));
  }
  ProgramBuilder &store(Reg Base, int32_t Offset, Reg Src, unsigned Size) {
    return append(Insn::store(Base, Offset, Src, Size));
  }
  ProgramBuilder &storeImm(Reg Base, int32_t Offset, int64_t Imm,
                           unsigned Size) {
    return append(Insn::storeImm(Base, Offset, Imm, Size));
  }
  ProgramBuilder &exit() { return append(Insn::exit()); }
  /// @}

  /// \name Label-targeted control flow
  /// @{
  ProgramBuilder &jmp(CompareOp Cmp, Reg Dst, Reg Src,
                      const std::string &Target);
  ProgramBuilder &jmpImm(CompareOp Cmp, Reg Dst, int64_t Imm,
                         const std::string &Target);
  ProgramBuilder &ja(const std::string &Target);
  ProgramBuilder &jmp32(CompareOp Cmp, Reg Dst, Reg Src,
                        const std::string &Target);
  ProgramBuilder &jmp32Imm(CompareOp Cmp, Reg Dst, int64_t Imm,
                           const std::string &Target);
  /// @}

  /// Resolves all label references and returns the program. The builder is
  /// left empty.
  Program build();

private:
  std::vector<Insn> Insns;
  std::map<std::string, size_t> Labels;
  std::vector<std::pair<size_t, std::string>> Fixups;
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_BUILDER_H
