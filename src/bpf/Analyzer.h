//===- bpf/Analyzer.h - Abstract interpreter over BPF programs --*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interpreter at the heart of the BPF substrate: a worklist
/// fixpoint over the instruction-level CFG, tracking an AbstractState per
/// program point. ALU instructions go through the RegValue reduced product
/// (whose bit-level component is the tnum domain this project studies);
/// conditional jumps refine both operands per branch direction, exactly the
/// mechanism that lets the paper's intro example prove x <= 8 from the
/// tnum 01µ0. Loops are handled soundly with join + widening after a visit
/// threshold (the kernel instead bounds path exploration; widening keeps
/// this substrate total on looping inputs).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_ANALYZER_H
#define TNUMS_BPF_ANALYZER_H

#include "bpf/AbstractState.h"
#include "bpf/Cfg.h"
#include "bpf/Program.h"

#include <string>
#include <vector>

namespace tnums {
namespace bpf {

/// One safety complaint, anchored at an instruction.
struct Violation {
  size_t Pc;
  std::string Message;
};

/// Content-version tag of the analyzer's verdict semantics, in the same
/// discipline as tnumOpVersions()/mulAlgorithmVersion(): MUST be bumped
/// whenever a change can alter any verdict, violation message, or
/// insn-visit count for some program. The service layer digests it (with
/// the operator versions) into the fingerprint that guards the persistent
/// cross-run verdict cache -- a stale tag would serve pre-change verdicts
/// as if current.
const char *analyzerVersionTag();

/// Everything the fixpoint produced.
struct AnalysisResult {
  /// False if the iteration budget ran out before a fixpoint (treat the
  /// program as rejected).
  bool Converged = true;
  std::vector<Violation> Violations;
  /// Abstract state *before* each instruction (the fixpoint solution).
  std::vector<AbstractState> InStates;
  /// Total instruction-transfer evaluations performed.
  uint64_t InsnVisits = 0;

  bool accepted() const { return Converged && Violations.empty(); }
};

/// Worklist abstract interpreter for one program.
class Analyzer {
public:
  struct Options {
    /// Byte size of the context region R1 points to.
    uint64_t MemSize = 0;
    /// Joins at one program point before widening kicks in.
    unsigned WideningThreshold = 8;
    /// Hard budget on transfer evaluations.
    uint64_t MaxInsnVisits = 1 << 20;
  };

  /// \p Prog must pass Program::validate().
  Analyzer(const Program &Prog, Options Opts);

  /// An unbound engine for analyzing a stream of programs via
  /// analyze(Prog, Opts). Construct once per worker and reuse: the CFG
  /// edge storage and the fixpoint worklist scratch are recycled across
  /// programs, which is the per-worker amortization the batch service
  /// (service/VerificationService.h) relies on.
  Analyzer() = default;

  /// Runs the fixpoint on the program bound at construction.
  AnalysisResult analyze();

  /// Rebinds the engine to \p Prog (which must pass Program::validate())
  /// and runs the fixpoint, recycling internal storage.
  AnalysisResult analyze(const Program &Prog, const Options &Opts);

private:
  /// Applies the straight-line transfer of instruction \p Pc, recording
  /// violations into \p Result.
  AbstractState transfer(size_t Pc, const AbstractState &In,
                         AnalysisResult &Result);

  /// Records one deduplicated violation.
  void report(AnalysisResult &Result, size_t Pc, std::string Message);

  /// Validates a memory access of \p Size bytes at abstract base \p Base +
  /// \p Offset; returns an error description or empty string.
  std::string checkMemoryAccess(const AbsReg &Base, int32_t Offset,
                                unsigned Size) const;

  /// Models a bounds-checked load through a stack pointer, consulting the
  /// tracked slots (fill of an 8-byte aligned spill is precise).
  AbsReg loadFromStack(size_t Pc, const AbstractState &In, const AbsReg &Base,
                       const Insn &I, AnalysisResult &Result);

  /// Models a bounds-checked store through a stack pointer, updating the
  /// tracked slots in \p Out.
  void storeToStack(size_t Pc, AbstractState &Out, const AbsReg &Base,
                    const Insn &I, const AbsReg &Stored,
                    AnalysisResult &Result);

  /// Runs the fixpoint over the currently bound program.
  AnalysisResult run();

  const Program *Prog = nullptr;
  Cfg Graph;
  Options Opts;

  /// \name Fixpoint scratch, recycled across analyze() calls.
  /// @{
  std::vector<unsigned> JoinCounts;
  /// Instruction index -> position in the CFG's reverse post-order
  /// (SIZE_MAX for CFG-unreachable instructions).
  std::vector<size_t> RpoPosition;
  /// Worklist membership, indexed by RPO position (the worklist pops the
  /// lowest pending position -- see run()).
  std::vector<bool> Pending;
  /// @}
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_ANALYZER_H
