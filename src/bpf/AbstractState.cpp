//===- bpf/AbstractState.cpp - Per-point analyzer state -------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/AbstractState.h"

#include "support/Table.h"

using namespace tnums;
using namespace tnums::bpf;

const char *tnums::bpf::regKindName(RegKind Kind) {
  switch (Kind) {
  case RegKind::Uninit:
    return "uninit";
  case RegKind::Invalid:
    return "invalid";
  case RegKind::Scalar:
    return "scalar";
  case RegKind::PtrToMem:
    return "ptr_to_mem";
  case RegKind::PtrToStack:
    return "ptr_to_stack";
  }
  assert(false && "unknown reg kind");
  return "unknown";
}

AbsReg AbsReg::joinWith(const AbsReg &Q) const {
  if (Kind == Q.Kind) {
    if (!isUsable())
      return *this; // Uninit ∨ Uninit, Invalid ∨ Invalid.
    return AbsReg(Kind, Val.joinWith(Q.Val));
  }
  return makeInvalid();
}

bool AbsReg::isSubsetOf(const AbsReg &Q) const {
  if (Q.Kind == RegKind::Invalid)
    return true; // Invalid is the top of the kind lattice.
  if (Kind != Q.Kind)
    return false;
  if (!isUsable())
    return true;
  return Val.isSubsetOf(Q.Val);
}

std::string AbsReg::toString() const {
  if (!isUsable())
    return regKindName(Kind);
  if (isScalar())
    return Val.toString();
  return formatString("%s+%s", regKindName(Kind), Val.toString().c_str());
}

AbstractState AbstractState::makeEntry(uint64_t MemSize) {
  AbstractState State;
  State.Reachable = true;
  State.Regs[R1] =
      AbsReg::makePointer(RegKind::PtrToMem, RegValue::makeConstant(0));
  State.Regs[R2] = AbsReg::makeScalar(RegValue::makeConstant(MemSize));
  State.Regs[R10] =
      AbsReg::makePointer(RegKind::PtrToStack, RegValue::makeConstant(0));
  return State;
}

AbstractState AbstractState::joinWith(const AbstractState &Q) const {
  if (!Reachable)
    return Q;
  if (!Q.Reachable)
    return *this;
  AbstractState Out;
  Out.Reachable = true;
  for (unsigned I = 0; I != NumRegs; ++I)
    Out.Regs[I] = Regs[I].joinWith(Q.Regs[I]);
  for (unsigned I = 0; I != NumStackSlots; ++I)
    Out.Slots[I] = Slots[I].joinWith(Q.Slots[I]);
  return Out;
}

bool AbstractState::isSubsetOf(const AbstractState &Q) const {
  if (!Reachable)
    return true;
  if (!Q.Reachable)
    return false;
  for (unsigned I = 0; I != NumRegs; ++I)
    if (!Regs[I].isSubsetOf(Q.Regs[I]))
      return false;
  for (unsigned I = 0; I != NumStackSlots; ++I)
    if (!Slots[I].isSubsetOf(Q.Slots[I]))
      return false;
  return true;
}

std::string AbstractState::toString() const {
  if (!Reachable)
    return "<unreachable>";
  std::string Text;
  for (unsigned I = 0; I != NumRegs; ++I) {
    if (Regs[I].kind() == RegKind::Uninit)
      continue; // Keep dumps focused on live registers.
    Text += formatString("%sr%u=%s", Text.empty() ? "" : " ", I,
                         Regs[I].toString().c_str());
  }
  for (unsigned I = 0; I != NumStackSlots; ++I) {
    if (Slots[I].kind() == RegKind::Uninit)
      continue;
    Text += formatString("%sfp-%u=%s", Text.empty() ? "" : " ", 8 * (I + 1),
                         Slots[I].toString().c_str());
  }
  return Text.empty() ? "<no live regs>" : Text;
}
