//===- bpf/Verifier.cpp - BPF safety verifier -----------------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Verifier.h"

#include "support/Table.h"

using namespace tnums;
using namespace tnums::bpf;

VerifierReport tnums::bpf::verifyProgram(const Program &Prog,
                                         uint64_t MemSize,
                                         Analyzer::Options Opts) {
  VerifierReport Report;
  if (std::optional<std::string> Error = Prog.validate()) {
    Report.StructuralError = *Error;
    return Report;
  }
  Opts.MemSize = MemSize;
  Analyzer A(Prog, Opts);
  AnalysisResult Result = A.analyze();
  Report.Accepted = Result.accepted();
  Report.Violations = std::move(Result.Violations);
  Report.InStates = std::move(Result.InStates);
  return Report;
}

std::string VerifierReport::toString(const Program &Prog) const {
  if (!StructuralError.empty())
    return formatString("rejected (structural): %s\n",
                        StructuralError.c_str());
  std::string Text;
  for (size_t Pc = 0; Pc != Prog.size(); ++Pc) {
    if (Pc < InStates.size())
      Text += formatString("      ; %s\n", InStates[Pc].toString().c_str());
    Text += formatString("%4zu: %s\n", Pc, Prog.insn(Pc).toString().c_str());
    for (const Violation &V : Violations)
      if (V.Pc == Pc)
        Text += formatString("      ^ violation: %s\n", V.Message.c_str());
  }
  Text += Accepted ? "verdict: ACCEPTED\n" : "verdict: REJECTED\n";
  return Text;
}
