//===- bpf/Insn.cpp - Miniature eBPF instruction set ----------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "bpf/Insn.h"

#include "support/Table.h"

using namespace tnums;
using namespace tnums::bpf;

const char *tnums::bpf::aluOpName(AluOp Op) {
  switch (Op) {
  case AluOp::Add:
    return "add";
  case AluOp::Sub:
    return "sub";
  case AluOp::Mul:
    return "mul";
  case AluOp::Div:
    return "div";
  case AluOp::Mod:
    return "mod";
  case AluOp::And:
    return "and";
  case AluOp::Or:
    return "or";
  case AluOp::Xor:
    return "xor";
  case AluOp::Lsh:
    return "lsh";
  case AluOp::Rsh:
    return "rsh";
  case AluOp::Arsh:
    return "arsh";
  case AluOp::Mov:
    return "mov";
  case AluOp::Neg:
    return "neg";
  }
  assert(false && "unknown alu op");
  return "unknown";
}

BinaryOp tnums::bpf::aluOpToBinaryOp(AluOp Op) {
  switch (Op) {
  case AluOp::Add:
    return BinaryOp::Add;
  case AluOp::Sub:
    return BinaryOp::Sub;
  case AluOp::Mul:
    return BinaryOp::Mul;
  case AluOp::Div:
    return BinaryOp::Div;
  case AluOp::Mod:
    return BinaryOp::Mod;
  case AluOp::And:
    return BinaryOp::And;
  case AluOp::Or:
    return BinaryOp::Or;
  case AluOp::Xor:
    return BinaryOp::Xor;
  case AluOp::Lsh:
    return BinaryOp::Lsh;
  case AluOp::Rsh:
    return BinaryOp::Rsh;
  case AluOp::Arsh:
    return BinaryOp::Arsh;
  case AluOp::Mov:
  case AluOp::Neg:
    break;
  }
  assert(false && "Mov/Neg have no BinaryOp counterpart");
  return BinaryOp::Add;
}

Insn Insn::alu(AluOp Op, Reg DstR, Reg SrcR) {
  Insn I;
  I.InsnKind = Kind::Alu;
  I.Alu = Op;
  I.Dst = DstR;
  I.Src = SrcR;
  return I;
}

Insn Insn::aluImm(AluOp Op, Reg DstR, int64_t ImmV) {
  Insn I;
  I.InsnKind = Kind::Alu;
  I.Alu = Op;
  I.Dst = DstR;
  I.UsesImm = true;
  I.Imm = ImmV;
  return I;
}

Insn Insn::neg(Reg DstR) {
  Insn I;
  I.InsnKind = Kind::Alu;
  I.Alu = AluOp::Neg;
  I.Dst = DstR;
  return I;
}

Insn Insn::loadImm(Reg DstR, int64_t ImmV) {
  Insn I;
  I.InsnKind = Kind::LoadImm;
  I.Dst = DstR;
  I.UsesImm = true;
  I.Imm = ImmV;
  return I;
}

Insn Insn::jmp(CompareOp Cmp, Reg DstR, Reg SrcR, int32_t OffsetV) {
  Insn I;
  I.InsnKind = Kind::Jmp;
  I.Cmp = Cmp;
  I.Dst = DstR;
  I.Src = SrcR;
  I.Offset = OffsetV;
  return I;
}

Insn Insn::jmpImm(CompareOp Cmp, Reg DstR, int64_t ImmV, int32_t OffsetV) {
  Insn I;
  I.InsnKind = Kind::Jmp;
  I.Cmp = Cmp;
  I.Dst = DstR;
  I.UsesImm = true;
  I.Imm = ImmV;
  I.Offset = OffsetV;
  return I;
}

Insn Insn::ja(int32_t OffsetV) {
  Insn I;
  I.InsnKind = Kind::Ja;
  I.Offset = OffsetV;
  return I;
}

Insn Insn::load(Reg DstR, Reg Base, int32_t OffsetV, unsigned SizeV) {
  assert((SizeV == 1 || SizeV == 2 || SizeV == 4 || SizeV == 8) &&
         "bad access size");
  Insn I;
  I.InsnKind = Kind::Load;
  I.Dst = DstR;
  I.Src = Base;
  I.Offset = OffsetV;
  I.Size = static_cast<uint8_t>(SizeV);
  return I;
}

Insn Insn::store(Reg Base, int32_t OffsetV, Reg SrcR, unsigned SizeV) {
  assert((SizeV == 1 || SizeV == 2 || SizeV == 4 || SizeV == 8) &&
         "bad access size");
  Insn I;
  I.InsnKind = Kind::Store;
  I.Dst = Base;
  I.Src = SrcR;
  I.Offset = OffsetV;
  I.Size = static_cast<uint8_t>(SizeV);
  return I;
}

Insn Insn::storeImm(Reg Base, int32_t OffsetV, int64_t ImmV, unsigned SizeV) {
  assert((SizeV == 1 || SizeV == 2 || SizeV == 4 || SizeV == 8) &&
         "bad access size");
  Insn I;
  I.InsnKind = Kind::Store;
  I.Dst = Base;
  I.UsesImm = true;
  I.Imm = ImmV;
  I.Offset = OffsetV;
  I.Size = static_cast<uint8_t>(SizeV);
  return I;
}

Insn Insn::exit() { return Insn(); }

std::string Insn::toString() const {
  switch (InsnKind) {
  case Kind::Alu: {
    // ALU32 uses the conventional w-register spelling (clang -target bpf).
    const char *RegPrefix = Is32 ? "w" : "r";
    if (Alu == AluOp::Neg)
      return formatString("%s%u = -%s%u", RegPrefix, Dst, RegPrefix, Dst);
    if (Alu == AluOp::Mov) {
      if (UsesImm)
        return formatString("%s%u = %lld", RegPrefix, Dst,
                            static_cast<long long>(Imm));
      return formatString("%s%u = %s%u", RegPrefix, Dst, RegPrefix, Src);
    }
    const char *Sym = nullptr;
    switch (Alu) {
    case AluOp::Add:
      Sym = "+=";
      break;
    case AluOp::Sub:
      Sym = "-=";
      break;
    case AluOp::Mul:
      Sym = "*=";
      break;
    case AluOp::Div:
      Sym = "/=";
      break;
    case AluOp::Mod:
      Sym = "%%=";
      break;
    case AluOp::And:
      Sym = "&=";
      break;
    case AluOp::Or:
      Sym = "|=";
      break;
    case AluOp::Xor:
      Sym = "^=";
      break;
    case AluOp::Lsh:
      Sym = "<<=";
      break;
    case AluOp::Rsh:
      Sym = ">>=";
      break;
    case AluOp::Arsh:
      Sym = "s>>=";
      break;
    case AluOp::Mov:
    case AluOp::Neg:
      break;
    }
    if (UsesImm)
      return formatString("%s%u %s %lld", RegPrefix, Dst, Sym,
                          static_cast<long long>(Imm));
    return formatString("%s%u %s %s%u", RegPrefix, Dst, Sym, RegPrefix, Src);
  }
  case Kind::Jmp: {
    const char *JmpPrefix = Is32 ? "w" : "r";
    std::string Lhs = formatString("%s%u", JmpPrefix, Dst);
    std::string Rhs = UsesImm
                          ? formatString("%lld", static_cast<long long>(Imm))
                          : formatString("%s%u", JmpPrefix, Src);
    const char *Sym = nullptr;
    switch (Cmp) {
    case CompareOp::Eq:
      Sym = "==";
      break;
    case CompareOp::Ne:
      Sym = "!=";
      break;
    case CompareOp::Lt:
      Sym = "<";
      break;
    case CompareOp::Le:
      Sym = "<=";
      break;
    case CompareOp::Gt:
      Sym = ">";
      break;
    case CompareOp::Ge:
      Sym = ">=";
      break;
    case CompareOp::SLt:
      Sym = "s<";
      break;
    case CompareOp::SLe:
      Sym = "s<=";
      break;
    case CompareOp::SGt:
      Sym = "s>";
      break;
    case CompareOp::SGe:
      Sym = "s>=";
      break;
    case CompareOp::Set:
      Sym = "&";
      break;
    }
    return formatString("if %s %s %s goto %+d", Lhs.c_str(), Sym, Rhs.c_str(),
                        Offset);
  }
  case Kind::Ja:
    return formatString("goto %+d", Offset);
  case Kind::LoadImm:
    return formatString("r%u = %lld ll", Dst, static_cast<long long>(Imm));
  case Kind::Load:
    return formatString("r%u = *(u%u *)(r%u %+d)", Dst, Size * 8, Src,
                        Offset);
  case Kind::Store:
    if (UsesImm)
      return formatString("*(u%u *)(r%u %+d) = %lld", Size * 8, Dst, Offset,
                          static_cast<long long>(Imm));
    return formatString("*(u%u *)(r%u %+d) = r%u", Size * 8, Dst, Offset,
                        Src);
  case Kind::Exit:
    return "exit";
  }
  assert(false && "unknown insn kind");
  return "<bad>";
}
