//===- bpf/Decoded.h - Pre-decoded threaded-dispatch executor ---*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzz oracle's fast concrete executor: a one-time decode() pass
/// lowers each Insn into a flat array of resolved handler + operand
/// records -- imm vs reg forms pre-split, 64/32-bit widths and memory
/// access sizes specialized into distinct opcodes, jump targets
/// pre-computed via Program::jumpTarget -- so the hot loop never
/// re-inspects Insn::Kind, UsesImm, Is32, or Size. Dispatch is
/// computed-goto threaded where the compiler supports it (GCC/Clang) with
/// a portable switch fallback; both modes are compiled when available and
/// selectable per run, so the differential tests can pin them against
/// each other and against the legacy Interpreter.
///
/// The payoff the fuzzer cares about: one DecodedProgram executes many
/// random input memories through run(Memory) without re-copying the
/// Program or re-decoding anything per run (the legacy Interpreter ctor
/// takes the program by value on every run).
///
/// Determinism contract: run() is bit-identical to Interpreter::run on
/// the same (program, memory, step limit) -- same Status, ReturnValue,
/// ExitPc, FaultPc, Steps, Message, final register file, init flags, and
/// memory contents, in both dispatch modes. The machine model (synthetic
/// MemBase/StackBase addressing, 512-byte zeroed stack, BPF div/mod/shift
/// conventions, uninitialized-register tracking) is shared via Insn.h
/// constants; tests/InterpreterDifferentialTest.cpp locks the contract
/// over every generator profile.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_BPF_DECODED_H
#define TNUMS_BPF_DECODED_H

#include "bpf/Interpreter.h"
#include "bpf/Program.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tnums {
namespace bpf {

/// How run() dispatches decoded handlers.
enum class DispatchMode : uint8_t {
  Auto,     ///< Threaded when the build supports it, else Switch.
  Threaded, ///< Computed-goto dispatch (falls back to Switch when the
            ///< build has no computed goto; see
            ///< threadedDispatchAvailable()).
  Switch,   ///< Portable switch loop over the decoded records.
};

/// True when this build compiles the computed-goto dispatch path.
bool threadedDispatchAvailable();

/// Stable lower-case mode name ("auto", "threaded", "switch").
const char *dispatchModeName(DispatchMode Mode);

/// A program lowered to directly executable records. Decode once, run on
/// as many input memories as you like.
class DecodedProgram {
public:
  /// One lowered instruction. Opcode values are internal to the executor
  /// (Decoded.cpp); the record is exposed only so tests can assert on the
  /// decoded shape.
  struct DInsn {
    uint64_t Imm = 0;    ///< Pre-extended immediate operand.
    int32_t Off = 0;     ///< Memory access offset.
    uint32_t Target = 0; ///< Pre-computed jump target.
    uint8_t Op = 0;      ///< Specialized opcode.
    uint8_t Dst = 0;
    uint8_t Src = 0;
    uint8_t Cmp = 0;     ///< CompareOp for conditional jumps.
  };

  DecodedProgram() = default;

  /// Lowers \p Prog. Structurally invalid programs are refused with the
  /// validation diagnostic in \p Error -- the corpus-replay entry point,
  /// so a real error, not an assert.
  static std::optional<DecodedProgram> decode(const Program &Prog,
                                              std::string &Error);

  /// Executes over \p Memory (read and written in place) from a fresh
  /// machine state: zeroed stack, R1 = MemBase, R2 = Memory.size(),
  /// R10 = StackBase. Reusable: each call is independent.
  ExecResult run(std::vector<uint8_t> &Memory, uint64_t StepLimit = 1 << 20,
                 DispatchMode Mode = DispatchMode::Auto);

  /// Register file after the last run() (for differential inspection).
  const std::array<uint64_t, NumRegs> &registers() const { return Regs; }

  /// Per-register initialization flags after the last run(). The run
  /// loops keep the flags as a bitmask; this expands it on demand so the
  /// hot path never pays the per-register copy-out.
  const std::array<bool, NumRegs> &initialized() const {
    for (unsigned R = 0; R != NumRegs; ++R)
      Inited[R] = (LastInitMask >> R) & 1u;
    return Inited;
  }

  /// Decoded record count (== source program size).
  size_t size() const { return Code.size(); }

  /// The lowered records (tests only).
  const std::vector<DInsn> &code() const { return Code; }

private:
  ExecResult runSwitch(std::vector<uint8_t> &Memory, uint64_t StepLimit);
  ExecResult runThreaded(std::vector<uint8_t> &Memory, uint64_t StepLimit);

  std::vector<DInsn> Code;
  std::array<uint8_t, StackSize> Stack = {};
  /// Dirty stack byte range [StackLo, StackHi) left by the previous run();
  /// the next run() re-zeroes only this span instead of the whole stack.
  /// Store handlers maintain it, so a program that never spills (the
  /// common generated case) pays nothing. Starts empty: the array
  /// initializer above already zeroed the stack.
  uint32_t StackLo = StackSize;
  uint32_t StackHi = 0;
  std::array<uint64_t, NumRegs> Regs = {};
  /// Register-init flags of the last run(), as the executor's bitmask;
  /// initialized() expands it into Inited on demand.
  uint32_t LastInitMask = 0;
  mutable std::array<bool, NumRegs> Inited = {};
};

} // namespace bpf
} // namespace tnums

#endif // TNUMS_BPF_DECODED_H
