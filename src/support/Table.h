//===- support/Table.h - Aligned text tables and CSV output -----*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal table renderer used by the benchmark harnesses to print the same
/// rows the paper reports (Table I, Figure 4/5 series) both human-readably
/// and as CSV for replotting.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_TABLE_H
#define TNUMS_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace tnums {

/// Accumulates rows of string cells and renders them either as an aligned
/// plain-text table or as CSV. The first row added is treated as the header.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Convenience formatter for mixed-type rows.
  template <typename... Ts> void addRowOf(const Ts &...Cells) {
    addRow({toCell(Cells)...});
  }

  /// Writes an aligned table (header, rule, rows) to \p Out.
  void printAligned(std::FILE *Out) const;

  /// Writes RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  void printCsv(std::FILE *Out) const;

  unsigned numRows() const { return static_cast<unsigned>(Rows.size()); }

private:
  static std::string toCell(const std::string &S) { return S; }
  static std::string toCell(const char *S) { return S; }
  static std::string toCell(double V);
  static std::string toCell(uint64_t V) { return std::to_string(V); }
  static std::string toCell(int64_t V) { return std::to_string(V); }
  static std::string toCell(unsigned V) { return std::to_string(V); }
  static std::string toCell(int V) { return std::to_string(V); }

  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// printf-style helper returning std::string, used to format table cells.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tnums

#endif // TNUMS_SUPPORT_TABLE_H
