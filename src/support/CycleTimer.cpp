//===- support/CycleTimer.cpp - Cycle-accurate timing ---------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/CycleTimer.h"

const char *tnums::cycleCounterUnit() {
#if TNUMS_HAVE_RDTSC
  return "cycles";
#else
  return "ns";
#endif
}
