//===- support/SimdBatch.cpp - Bitsliced SIMD batch kernels ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/SimdBatch.h"

#include <cstring>

#if TNUMS_SIMD_HAVE_X86_KERNELS
#include <immintrin.h>
#endif

using namespace tnums;

std::optional<SimdMode> tnums::parseSimdMode(const char *Text) {
  if (std::strcmp(Text, "auto") == 0)
    return SimdMode::Auto;
  if (std::strcmp(Text, "on") == 0)
    return SimdMode::On;
  if (std::strcmp(Text, "off") == 0)
    return SimdMode::Off;
  return std::nullopt;
}

const char *tnums::simdModeName(SimdMode Mode) {
  switch (Mode) {
  case SimdMode::Auto:
    return "auto";
  case SimdMode::On:
    return "on";
  case SimdMode::Off:
    return "off";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Portable kernels
//===----------------------------------------------------------------------===//

namespace {

uint64_t nonMemberMaskScalar(const uint64_t *Z, unsigned N, uint64_t V,
                             uint64_t NotM) {
  uint64_t Mask = 0;
  for (unsigned I = 0; I != N; ++I)
    Mask |= uint64_t((Z[I] & NotM) != V) << I;
  return Mask;
}

void reduceAndOrScalar(const uint64_t *Z, unsigned N, uint64_t *AndAcc,
                       uint64_t *OrAcc) {
  uint64_t A = *AndAcc;
  uint64_t O = *OrAcc;
  for (unsigned I = 0; I != N; ++I) {
    A &= Z[I];
    O |= Z[I];
  }
  *AndAcc = A;
  *OrAcc = O;
}

} // namespace

const SimdKernels &tnums::scalarSimdKernels() {
  static const SimdKernels Kernels = {nonMemberMaskScalar, reduceAndOrScalar,
                                      "scalar"};
  return Kernels;
}

//===----------------------------------------------------------------------===//
// AVX2 kernels
//
// Compiled with a per-function target attribute rather than a file-wide
// -mavx2 so the translation unit stays safe to build into a generic x86-64
// binary; the functions are only ever *called* after cpuHasAvx2() says the
// host can execute them.
//===----------------------------------------------------------------------===//

#if TNUMS_SIMD_HAVE_X86_KERNELS

namespace {

__attribute__((target("avx2"))) uint64_t
nonMemberMaskAvx2(const uint64_t *Z, unsigned N, uint64_t V, uint64_t NotM) {
  const __m256i Vv = _mm256_set1_epi64x(static_cast<long long>(V));
  const __m256i NotMv = _mm256_set1_epi64x(static_cast<long long>(NotM));
  uint64_t Mask = 0;
  unsigned I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i Lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Z + I));
    __m256i Eq = _mm256_cmpeq_epi64(_mm256_and_si256(Lane, NotMv), Vv);
    // movemask_pd extracts the 4 lane sign bits (all-ones on equality).
    unsigned Members = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(Eq)));
    Mask |= uint64_t(~Members & 0xF) << I;
  }
  for (; I != N; ++I)
    Mask |= uint64_t((Z[I] & NotM) != V) << I;
  return Mask;
}

__attribute__((target("avx2"))) void reduceAndOrAvx2(const uint64_t *Z,
                                                     unsigned N,
                                                     uint64_t *AndAcc,
                                                     uint64_t *OrAcc) {
  __m256i A = _mm256_set1_epi64x(-1);
  __m256i O = _mm256_setzero_si256();
  unsigned I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i Lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Z + I));
    A = _mm256_and_si256(A, Lane);
    O = _mm256_or_si256(O, Lane);
  }
  alignas(SimdBatchAlign) uint64_t ATmp[4];
  alignas(SimdBatchAlign) uint64_t OTmp[4];
  _mm256_store_si256(reinterpret_cast<__m256i *>(ATmp), A);
  _mm256_store_si256(reinterpret_cast<__m256i *>(OTmp), O);
  uint64_t AFold = ATmp[0] & ATmp[1] & ATmp[2] & ATmp[3];
  uint64_t OFold = OTmp[0] | OTmp[1] | OTmp[2] | OTmp[3];
  for (; I != N; ++I) {
    AFold &= Z[I];
    OFold |= Z[I];
  }
  *AndAcc &= AFold;
  *OrAcc |= OFold;
}

} // namespace

bool tnums::cpuHasAvx2() {
  static const bool Has = __builtin_cpu_supports("avx2");
  return Has;
}

const SimdKernels *tnums::avx2SimdKernels() {
  if (!cpuHasAvx2())
    return nullptr;
  static const SimdKernels Kernels = {nonMemberMaskAvx2, reduceAndOrAvx2,
                                      "avx2"};
  return &Kernels;
}

#else // !TNUMS_SIMD_HAVE_X86_KERNELS

bool tnums::cpuHasAvx2() { return false; }

const SimdKernels *tnums::avx2SimdKernels() { return nullptr; }

#endif

const SimdKernels &tnums::selectSimdKernels(SimdMode Mode) {
  if (Mode == SimdMode::Off)
    return scalarSimdKernels();
  if (const SimdKernels *Avx2 = avx2SimdKernels())
    return *Avx2;
  return scalarSimdKernels();
}

const char *tnums::simdPathDescription(SimdMode Mode) {
  if (!simdModeBatches(Mode))
    return "scalar reference";
  return avx2SimdKernels() ? "batched/avx2" : "batched/scalar";
}
