//===- support/SimdBatch.cpp - Bitsliced SIMD batch kernels ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/SimdBatch.h"

#include <cstring>

#if TNUMS_SIMD_HAVE_X86_KERNELS
#include <immintrin.h>
#endif
#if TNUMS_SIMD_HAVE_NEON_KERNELS
#include <arm_neon.h>
#endif

using namespace tnums;

std::optional<SimdMode> tnums::parseSimdMode(const char *Text) {
  if (std::strcmp(Text, "auto") == 0)
    return SimdMode::Auto;
  if (std::strcmp(Text, "on") == 0)
    return SimdMode::On;
  if (std::strcmp(Text, "off") == 0)
    return SimdMode::Off;
  if (std::strcmp(Text, "portable") == 0)
    return SimdMode::Portable;
  if (std::strcmp(Text, "avx2") == 0)
    return SimdMode::Avx2;
  if (std::strcmp(Text, "avx512") == 0)
    return SimdMode::Avx512;
  if (std::strcmp(Text, "neon") == 0)
    return SimdMode::Neon;
  return std::nullopt;
}

const char *tnums::simdModeName(SimdMode Mode) {
  switch (Mode) {
  case SimdMode::Auto:
    return "auto";
  case SimdMode::On:
    return "on";
  case SimdMode::Off:
    return "off";
  case SimdMode::Portable:
    return "portable";
  case SimdMode::Avx2:
    return "avx2";
  case SimdMode::Avx512:
    return "avx512";
  case SimdMode::Neon:
    return "neon";
  }
  return "unknown";
}

bool tnums::simdModeSupported(SimdMode Mode) {
  switch (Mode) {
  case SimdMode::Auto:
  case SimdMode::On:
  case SimdMode::Off:
  case SimdMode::Portable:
    return true;
  case SimdMode::Avx2:
    return cpuHasAvx2();
  case SimdMode::Avx512:
    return cpuHasAvx512();
  case SimdMode::Neon:
    return cpuHasNeon();
  }
  return false;
}

std::string tnums::supportedSimdModeList() {
  std::string Out = "auto, off, portable";
  if (cpuHasAvx2())
    Out += ", avx2";
  if (cpuHasAvx512())
    Out += ", avx512";
  if (cpuHasNeon())
    Out += ", neon";
  return Out;
}

//===----------------------------------------------------------------------===//
// Portable kernels
//===----------------------------------------------------------------------===//

namespace {

uint64_t nonMemberMaskScalar(const uint64_t *Z, unsigned N, uint64_t V,
                             uint64_t NotM) {
  uint64_t Mask = 0;
  for (unsigned I = 0; I != N; ++I)
    Mask |= uint64_t((Z[I] & NotM) != V) << I;
  return Mask;
}

void reduceAndOrScalar(const uint64_t *Z, unsigned N, uint64_t *AndAcc,
                       uint64_t *OrAcc) {
  uint64_t A = *AndAcc;
  uint64_t O = *OrAcc;
  for (unsigned I = 0; I != N; ++I) {
    A &= Z[I];
    O |= Z[I];
  }
  *AndAcc = A;
  *OrAcc = O;
}

} // namespace

const SimdKernels &tnums::scalarSimdKernels() {
  static const SimdKernels Kernels = {nonMemberMaskScalar, reduceAndOrScalar,
                                      "scalar", SimdTier::Portable};
  return Kernels;
}

//===----------------------------------------------------------------------===//
// AVX2 / AVX-512 kernels
//
// Compiled with per-function target attributes rather than a file-wide
// -mavx2/-mavx512f so the translation unit stays safe to build into a
// generic x86-64 binary; the functions are only ever *called* after
// cpuHasAvx2() / cpuHasAvx512() says the host can execute them.
//===----------------------------------------------------------------------===//

#if TNUMS_SIMD_HAVE_X86_KERNELS

namespace {

__attribute__((target("avx2"))) uint64_t
nonMemberMaskAvx2(const uint64_t *Z, unsigned N, uint64_t V, uint64_t NotM) {
  const __m256i Vv = _mm256_set1_epi64x(static_cast<long long>(V));
  const __m256i NotMv = _mm256_set1_epi64x(static_cast<long long>(NotM));
  uint64_t Mask = 0;
  unsigned I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i Lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Z + I));
    __m256i Eq = _mm256_cmpeq_epi64(_mm256_and_si256(Lane, NotMv), Vv);
    // movemask_pd extracts the 4 lane sign bits (all-ones on equality).
    unsigned Members = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(Eq)));
    Mask |= uint64_t(~Members & 0xF) << I;
  }
  for (; I != N; ++I)
    Mask |= uint64_t((Z[I] & NotM) != V) << I;
  return Mask;
}

__attribute__((target("avx2"))) void reduceAndOrAvx2(const uint64_t *Z,
                                                     unsigned N,
                                                     uint64_t *AndAcc,
                                                     uint64_t *OrAcc) {
  __m256i A = _mm256_set1_epi64x(-1);
  __m256i O = _mm256_setzero_si256();
  unsigned I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i Lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Z + I));
    A = _mm256_and_si256(A, Lane);
    O = _mm256_or_si256(O, Lane);
  }
  alignas(SimdBatchAlign) uint64_t ATmp[4];
  alignas(SimdBatchAlign) uint64_t OTmp[4];
  _mm256_store_si256(reinterpret_cast<__m256i *>(ATmp), A);
  _mm256_store_si256(reinterpret_cast<__m256i *>(OTmp), O);
  uint64_t AFold = ATmp[0] & ATmp[1] & ATmp[2] & ATmp[3];
  uint64_t OFold = OTmp[0] | OTmp[1] | OTmp[2] | OTmp[3];
  for (; I != N; ++I) {
    AFold &= Z[I];
    OFold |= Z[I];
  }
  *AndAcc &= AFold;
  *OrAcc |= OFold;
}

// AVX-512: 8 qword lanes per zmm, and the membership compare writes its
// result STRAIGHT into an 8-bit mask register (vpcmpeqq %zmm, %zmm, %k) --
// the 64->8 lane compression of the occupancy mask happens in the compare
// itself, with no movemask shuffle and no 256-bit sign-bit detour.

__attribute__((target("avx512f,avx512bw"))) uint64_t
nonMemberMaskAvx512(const uint64_t *Z, unsigned N, uint64_t V,
                    uint64_t NotM) {
  const __m512i Vv = _mm512_set1_epi64(static_cast<long long>(V));
  const __m512i NotMv = _mm512_set1_epi64(static_cast<long long>(NotM));
  uint64_t Mask = 0;
  unsigned I = 0;
  for (; I + 8 <= N; I += 8) {
    __m512i Lane = _mm512_loadu_si512(Z + I);
    __mmask8 Members =
        _mm512_cmpeq_epi64_mask(_mm512_and_si512(Lane, NotMv), Vv);
    Mask |= uint64_t(static_cast<uint8_t>(~Members)) << I;
  }
  for (; I != N; ++I)
    Mask |= uint64_t((Z[I] & NotM) != V) << I;
  return Mask;
}

/// Horizontal AND of the eight qword lanes. Spelled out with one store
/// and a scalar fold instead of _mm512_reduce_and_epi64: GCC 12's header
/// implementation trips -Wuninitialized (via _mm256_undefined_si256)
/// under -Werror.
__attribute__((target("avx512f,avx512bw"), always_inline)) inline uint64_t
horizontalAnd512(__m512i A) {
  alignas(64) uint64_t Tmp[8];
  _mm512_store_si512(Tmp, A);
  return Tmp[0] & Tmp[1] & Tmp[2] & Tmp[3] & Tmp[4] & Tmp[5] & Tmp[6] &
         Tmp[7];
}

/// Horizontal OR of the eight qword lanes (see horizontalAnd512).
__attribute__((target("avx512f,avx512bw"), always_inline)) inline uint64_t
horizontalOr512(__m512i O) {
  alignas(64) uint64_t Tmp[8];
  _mm512_store_si512(Tmp, O);
  return Tmp[0] | Tmp[1] | Tmp[2] | Tmp[3] | Tmp[4] | Tmp[5] | Tmp[6] |
         Tmp[7];
}

__attribute__((target("avx512f,avx512bw"))) void
reduceAndOrAvx512(const uint64_t *Z, unsigned N, uint64_t *AndAcc,
                  uint64_t *OrAcc) {
  __m512i A = _mm512_set1_epi64(-1);
  __m512i O = _mm512_setzero_si512();
  unsigned I = 0;
  for (; I + 8 <= N; I += 8) {
    __m512i Lane = _mm512_loadu_si512(Z + I);
    A = _mm512_and_si512(A, Lane);
    O = _mm512_or_si512(O, Lane);
  }
  uint64_t AFold = horizontalAnd512(A);
  uint64_t OFold = horizontalOr512(O);
  for (; I != N; ++I) {
    AFold &= Z[I];
    OFold |= Z[I];
  }
  *AndAcc &= AFold;
  *OrAcc |= OFold;
}

} // namespace

bool tnums::cpuHasAvx2() {
  static const bool Has = __builtin_cpu_supports("avx2");
  return Has;
}

bool tnums::cpuHasAvx512() {
  // F for the qword compare/logic mask forms, BW for the byte mask-register
  // moves (vpmovb2m family) the fused kernels lean on.
  static const bool Has =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
  return Has;
}

const SimdKernels *tnums::avx2SimdKernels() {
  if (!cpuHasAvx2())
    return nullptr;
  static const SimdKernels Kernels = {nonMemberMaskAvx2, reduceAndOrAvx2,
                                      "avx2", SimdTier::Avx2};
  return &Kernels;
}

const SimdKernels *tnums::avx512SimdKernels() {
  if (!cpuHasAvx512())
    return nullptr;
  static const SimdKernels Kernels = {nonMemberMaskAvx512, reduceAndOrAvx512,
                                      "avx512", SimdTier::Avx512};
  return &Kernels;
}

#else // !TNUMS_SIMD_HAVE_X86_KERNELS

bool tnums::cpuHasAvx2() { return false; }
bool tnums::cpuHasAvx512() { return false; }

const SimdKernels *tnums::avx2SimdKernels() { return nullptr; }
const SimdKernels *tnums::avx512SimdKernels() { return nullptr; }

#endif

//===----------------------------------------------------------------------===//
// NEON kernels (AArch64)
//
// Advanced SIMD is baseline on AArch64 -- no runtime probe, no target
// attribute. Two qword lanes per q-register; the equality result is
// all-ones-per-lane, folded into the occupancy mask via the lane LSBs.
//===----------------------------------------------------------------------===//

#if TNUMS_SIMD_HAVE_NEON_KERNELS

namespace {

uint64_t nonMemberMaskNeon(const uint64_t *Z, unsigned N, uint64_t V,
                           uint64_t NotM) {
  const uint64x2_t Vv = vdupq_n_u64(V);
  const uint64x2_t NotMv = vdupq_n_u64(NotM);
  uint64_t Mask = 0;
  unsigned I = 0;
  for (; I + 2 <= N; I += 2) {
    uint64x2_t Lane = vld1q_u64(Z + I);
    // vceqq yields all-ones per equal lane; lane LSBs give the 2-bit
    // member mask.
    uint64x2_t Eq = vceqq_u64(vandq_u64(Lane, NotMv), Vv);
    uint64_t Members =
        (vgetq_lane_u64(Eq, 0) & 1) | ((vgetq_lane_u64(Eq, 1) & 1) << 1);
    Mask |= (~Members & 0x3) << I;
  }
  for (; I != N; ++I)
    Mask |= uint64_t((Z[I] & NotM) != V) << I;
  return Mask;
}

void reduceAndOrNeon(const uint64_t *Z, unsigned N, uint64_t *AndAcc,
                     uint64_t *OrAcc) {
  uint64x2_t A = vdupq_n_u64(~uint64_t(0));
  uint64x2_t O = vdupq_n_u64(0);
  unsigned I = 0;
  for (; I + 2 <= N; I += 2) {
    uint64x2_t Lane = vld1q_u64(Z + I);
    A = vandq_u64(A, Lane);
    O = vorrq_u64(O, Lane);
  }
  uint64_t AFold = vgetq_lane_u64(A, 0) & vgetq_lane_u64(A, 1);
  uint64_t OFold = vgetq_lane_u64(O, 0) | vgetq_lane_u64(O, 1);
  for (; I != N; ++I) {
    AFold &= Z[I];
    OFold |= Z[I];
  }
  *AndAcc &= AFold;
  *OrAcc |= OFold;
}

} // namespace

bool tnums::cpuHasNeon() { return true; }

const SimdKernels *tnums::neonSimdKernels() {
  static const SimdKernels Kernels = {nonMemberMaskNeon, reduceAndOrNeon,
                                      "neon", SimdTier::Neon};
  return &Kernels;
}

#else // !TNUMS_SIMD_HAVE_NEON_KERNELS

bool tnums::cpuHasNeon() { return false; }

const SimdKernels *tnums::neonSimdKernels() { return nullptr; }

#endif

//===----------------------------------------------------------------------===//
// Mode resolution
//===----------------------------------------------------------------------===//

namespace {

/// Best tier the host supports: avx512 > avx2 > neon > portable.
const SimdKernels &bestSimdKernels() {
  if (const SimdKernels *Avx512 = avx512SimdKernels())
    return *Avx512;
  if (const SimdKernels *Avx2 = avx2SimdKernels())
    return *Avx2;
  if (const SimdKernels *Neon = neonSimdKernels())
    return *Neon;
  return scalarSimdKernels();
}

} // namespace

const SimdKernels &tnums::selectSimdKernels(SimdMode Mode) {
  switch (Mode) {
  case SimdMode::Off:
  case SimdMode::Portable:
    return scalarSimdKernels();
  case SimdMode::Auto:
  case SimdMode::On:
    return bestSimdKernels();
  case SimdMode::Avx2:
    if (const SimdKernels *Avx2 = avx2SimdKernels())
      return *Avx2;
    return scalarSimdKernels();
  case SimdMode::Avx512:
    if (const SimdKernels *Avx512 = avx512SimdKernels())
      return *Avx512;
    return scalarSimdKernels();
  case SimdMode::Neon:
    if (const SimdKernels *Neon = neonSimdKernels())
      return *Neon;
    return scalarSimdKernels();
  }
  return scalarSimdKernels();
}

std::string tnums::simdPathDescription(SimdMode Mode) {
  if (!simdModeBatches(Mode))
    return "scalar reference";
  const SimdKernels &Kernels = selectSimdKernels(Mode);
  std::string Out = std::string("batched/") + Kernels.Name;
  switch (Mode) {
  case SimdMode::Auto:
  case SimdMode::On:
  case SimdMode::Off:
    break;
  default:
    if (!simdModeSupported(Mode))
      Out += " (forced tier unsupported; portable fallback)";
    else if (Kernels.Tier != SimdTier::Portable)
      Out += " (forced)";
    break;
  }
  return Out;
}
