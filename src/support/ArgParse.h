//===- support/ArgParse.h - Tiny bench-driver argv parser -------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small argv cursor shared by the bench drivers, replacing
/// the bounded strtol loops that were copy-pasted into each of them. The
/// pattern every driver follows:
///
/// \code
///   ArgParser Args(Argc, Argv);
///   while (Args.more()) {
///     if (Args.matchUnsigned("--width", 1, 16, Width)) continue;
///     if (Args.matchJobs(Jobs)) continue;
///     if (Args.matchFlag("--csv")) { Csv = true; continue; }
///     Args.reject(); // unknown argument
///   }
///   if (Args.failed()) { print usage; return 1; }
/// \endcode
///
/// match* helpers return true when they consumed the current argument
/// (even if its value failed to parse -- the parser then latches the error
/// so one failed() check at the end covers every diagnostic).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_ARGPARSE_H
#define TNUMS_SUPPORT_ARGPARSE_H

#include <cstdint>
#include <optional>

namespace tnums {

/// Parses \p Text as a base-10 integer confined to [\p Min, \p Max];
/// nullopt on any syntax error, stray suffix, sign, or range violation.
std::optional<uint64_t> parseBoundedU64(const char *Text, uint64_t Min,
                                        uint64_t Max);

/// Cursor over argv[1..Argc). See the file comment for the usage pattern.
class ArgParser {
public:
  ArgParser(int Argc, char **Argv) : Argc(Argc), Argv(Argv) {}

  /// True while arguments remain and no error has latched.
  bool more() const { return Index < Argc && !Error; }

  /// True once any argument was rejected or failed to parse.
  bool failed() const { return Error; }

  /// Consumes the current argument if it equals \p Name (a bare flag).
  bool matchFlag(const char *Name);

  /// Consumes "\p Name N" (or "\p Name=N") with N in [\p Min, \p Max].
  /// Returns true if \p Name matched; a bad or missing value latches the
  /// error. Out is written only on success.
  bool matchUnsigned(const char *Name, unsigned Min, unsigned Max,
                     unsigned &Out);

  /// 64-bit form of matchUnsigned for large counts (--programs, --pairs).
  bool matchU64(const char *Name, uint64_t Min, uint64_t Max, uint64_t &Out);

  /// Consumes "\p Name TEXT" (or "\p Name=TEXT"); the pointee stays owned
  /// by argv.
  bool matchString(const char *Name, const char *&Out);

  /// The shared "--jobs N" convention of every parallel bench driver:
  /// bounded to [0, 1024], where 0 keeps SweepConfig's meaning of
  /// "hardware concurrency".
  bool matchJobs(unsigned &Jobs) { return matchUnsigned("--jobs", 0, 1024, Jobs); }

  /// Rejects the current argument (unknown option): latches the error.
  void reject() { Error = true; }

private:
  /// Outcome of matching the cursor against a valued option name.
  enum class Match : uint8_t {
    None,  ///< Not this option (includes longer options sharing a prefix).
    Value, ///< Consumed; the value text was produced.
    Error, ///< Consumed, but the value is missing; the error is latched.
  };

  /// Matches "\p Name v" / "\p Name=v" at the cursor, consuming it on
  /// Match::Value/Error and writing the value text to \p Text on
  /// Match::Value.
  Match takeValue(const char *Name, const char *&Text);

  int Argc;
  char **Argv;
  int Index = 1;
  bool Error = false;
};

} // namespace tnums

#endif // TNUMS_SUPPORT_ARGPARSE_H
