//===- support/Metrics.cpp - Process-wide metrics registry ----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/SimdBatch.h"
#include "support/Table.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include <stdio.h>
#include <stdlib.h>

using namespace tnums;

std::atomic<MetricsRegistry *> tnums::GlobalMetricsRecorder{nullptr};

namespace {

/// Fixed slot budget per thread shard. Counters take one slot, histograms
/// take MetricsHistogramBuckets + 2 (count + sum). The process registers a
/// few hundred slots; exhausting the budget is a programming error.
constexpr uint32_t MaxShardSlots = 4096;

struct Shard {
  std::atomic<uint64_t> Slots[MaxShardSlots] = {};
};

struct GaugeCell {
  std::atomic<int64_t> Value{0};
  std::atomic<int64_t> Peak{0};
};

struct MetricDef {
  std::string Name;
  std::string Labels;
  MetricKind Kind;
  uint32_t SlotBase = 0;   ///< Counter/histogram: first shard slot.
  uint32_t GaugeIndex = 0; ///< Gauge: index into Gauges.
};

void raisePeak(std::atomic<int64_t> &Peak, int64_t Value) {
  int64_t Seen = Peak.load(std::memory_order_relaxed);
  while (Value > Seen &&
         !Peak.compare_exchange_weak(Seen, Value, std::memory_order_relaxed))
    ;
}

} // namespace

struct MetricsRegistry::ImplT {
  mutable std::mutex Mutex;
  std::vector<MetricDef> Defs;
  std::map<std::string, uint32_t> ByKey;
  uint32_t NextSlot = 0;
  /// Every shard ever created; retired threads' counts stay merged in.
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Shards whose owning thread exited, available for rebinding.
  std::vector<Shard *> FreeShards;
  /// deque: gauge cells must keep stable addresses across growth.
  std::deque<GaugeCell> Gauges;
};

namespace {

/// Per-thread shard lease. Returns the shard to the registry freelist on
/// thread exit so long-lived processes with thread churn stay bounded.
struct ShardLease {
  Shard *S = nullptr;
  MetricsRegistry::ImplT *Owner = nullptr;
  ~ShardLease() {
    if (!S || !Owner)
      return;
    std::lock_guard<std::mutex> Lock(Owner->Mutex);
    Owner->FreeShards.push_back(S);
  }
};

thread_local ShardLease MyShard;

Shard &acquireShard(MetricsRegistry::ImplT &Impl) {
  if (MyShard.S)
    return *MyShard.S;
  std::lock_guard<std::mutex> Lock(Impl.Mutex);
  if (!Impl.FreeShards.empty()) {
    MyShard.S = Impl.FreeShards.back();
    Impl.FreeShards.pop_back();
  } else {
    Impl.Shards.push_back(std::make_unique<Shard>());
    MyShard.S = Impl.Shards.back().get();
  }
  MyShard.Owner = &Impl;
  return *MyShard.S;
}

std::string defKey(MetricKind Kind, const std::string &Name,
                   const std::string &Labels) {
  std::string Key;
  Key += static_cast<char>('0' + static_cast<unsigned>(Kind));
  Key += Name;
  Key += '\x01';
  Key += Labels;
  return Key;
}

} // namespace

MetricsRegistry::MetricsRegistry() : Impl(new ImplT()) {}

MetricsRegistry &MetricsRegistry::instance() {
  // Leaked on purpose: worker threads may record during static
  // destruction, so the registry must outlive everything.
  static MetricsRegistry *Singleton = new MetricsRegistry();
  return *Singleton;
}

void tnums::enableProcessMetrics() {
  GlobalMetricsRecorder.store(&MetricsRegistry::instance(),
                              std::memory_order_release);
}

void tnums::disableProcessMetrics() {
  GlobalMetricsRecorder.store(nullptr, std::memory_order_release);
}

unsigned MetricsRegistry::bucketIndex(uint64_t Sample) {
  if (Sample == 0)
    return 0;
  return 64 - static_cast<unsigned>(__builtin_clzll(Sample));
}

uint64_t MetricsRegistry::bucketUpperBound(unsigned I) {
  if (I >= 64)
    return UINT64_MAX;
  return (uint64_t(1) << I) - 1;
}

static uint32_t registerDef(MetricsRegistry::ImplT &Impl, MetricKind Kind,
                            const std::string &Name,
                            const std::string &Labels) {
  std::lock_guard<std::mutex> Lock(Impl.Mutex);
  std::string Key = defKey(Kind, Name, Labels);
  auto It = Impl.ByKey.find(Key);
  if (It != Impl.ByKey.end())
    return It->second;

  MetricDef Def;
  Def.Name = Name;
  Def.Labels = Labels;
  Def.Kind = Kind;
  if (Kind == MetricKind::Gauge) {
    Def.GaugeIndex = static_cast<uint32_t>(Impl.Gauges.size());
    Impl.Gauges.emplace_back();
  } else {
    uint32_t Needed =
        Kind == MetricKind::Histogram ? MetricsHistogramBuckets + 2 : 1;
    if (Impl.NextSlot + Needed > MaxShardSlots) {
      fprintf(stderr, "metrics: shard slot budget exhausted registering %s\n",
              Name.c_str());
      abort();
    }
    Def.SlotBase = Impl.NextSlot;
    Impl.NextSlot += Needed;
  }
  uint32_t Id = static_cast<uint32_t>(Impl.Defs.size());
  Impl.Defs.push_back(std::move(Def));
  Impl.ByKey.emplace(std::move(Key), Id);
  return Id;
}

uint32_t MetricsRegistry::registerCounter(const std::string &Name,
                                          const std::string &Labels) {
  return registerDef(*Impl, MetricKind::Counter, Name, Labels);
}

uint32_t MetricsRegistry::registerGauge(const std::string &Name,
                                        const std::string &Labels) {
  return registerDef(*Impl, MetricKind::Gauge, Name, Labels);
}

uint32_t MetricsRegistry::registerHistogram(const std::string &Name,
                                            const std::string &Labels) {
  return registerDef(*Impl, MetricKind::Histogram, Name, Labels);
}

void MetricsRegistry::counterAdd(uint32_t Id, uint64_t Delta) {
  Shard &S = acquireShard(*Impl);
  S.Slots[Impl->Defs[Id].SlotBase].fetch_add(Delta,
                                             std::memory_order_relaxed);
}

void MetricsRegistry::histogramRecord(uint32_t Id, uint64_t Sample) {
  Shard &S = acquireShard(*Impl);
  uint32_t Base = Impl->Defs[Id].SlotBase;
  S.Slots[Base + bucketIndex(Sample)].fetch_add(1, std::memory_order_relaxed);
  S.Slots[Base + MetricsHistogramBuckets].fetch_add(
      1, std::memory_order_relaxed);
  S.Slots[Base + MetricsHistogramBuckets + 1].fetch_add(
      Sample, std::memory_order_relaxed);
}

void MetricsRegistry::gaugeSet(uint32_t Id, int64_t Value) {
  GaugeCell &Cell = Impl->Gauges[Impl->Defs[Id].GaugeIndex];
  Cell.Value.store(Value, std::memory_order_relaxed);
  raisePeak(Cell.Peak, Value);
}

void MetricsRegistry::gaugeAdd(uint32_t Id, int64_t Delta) {
  GaugeCell &Cell = Impl->Gauges[Impl->Defs[Id].GaugeIndex];
  int64_t Now = Cell.Value.fetch_add(Delta, std::memory_order_relaxed) + Delta;
  raisePeak(Cell.Peak, Now);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Impl->Mutex);
  MetricsSnapshot Snap;
  Snap.Metrics.reserve(Impl->Defs.size());

  auto sumSlot = [&](uint32_t Slot) {
    uint64_t Total = 0;
    for (const auto &S : Impl->Shards)
      Total += S->Slots[Slot].load(std::memory_order_relaxed);
    return Total;
  };

  for (const MetricDef &Def : Impl->Defs) {
    MetricValue V;
    V.Name = Def.Name;
    V.Labels = Def.Labels;
    V.Kind = Def.Kind;
    switch (Def.Kind) {
    case MetricKind::Counter:
      V.Count = sumSlot(Def.SlotBase);
      break;
    case MetricKind::Gauge: {
      const GaugeCell &Cell = Impl->Gauges[Def.GaugeIndex];
      V.Value = Cell.Value.load(std::memory_order_relaxed);
      V.Peak = Cell.Peak.load(std::memory_order_relaxed);
      break;
    }
    case MetricKind::Histogram:
      V.Buckets.resize(MetricsHistogramBuckets);
      for (unsigned I = 0; I < MetricsHistogramBuckets; ++I)
        V.Buckets[I] = sumSlot(Def.SlotBase + I);
      V.Count = sumSlot(Def.SlotBase + MetricsHistogramBuckets);
      V.Sum = sumSlot(Def.SlotBase + MetricsHistogramBuckets + 1);
      break;
    }
    Snap.Metrics.push_back(std::move(V));
  }

  std::sort(Snap.Metrics.begin(), Snap.Metrics.end(),
            [](const MetricValue &A, const MetricValue &B) {
              if (A.Name != B.Name)
                return A.Name < B.Name;
              return A.Labels < B.Labels;
            });
  return Snap;
}

void MetricsRegistry::resetForTest() {
  std::lock_guard<std::mutex> Lock(Impl->Mutex);
  for (const auto &S : Impl->Shards)
    for (uint32_t I = 0; I < MaxShardSlots; ++I)
      S->Slots[I].store(0, std::memory_order_relaxed);
  for (GaugeCell &Cell : Impl->Gauges) {
    Cell.Value.store(0, std::memory_order_relaxed);
    Cell.Peak.store(0, std::memory_order_relaxed);
  }
}

size_t MetricsRegistry::debugShardCount() const {
  std::lock_guard<std::mutex> Lock(Impl->Mutex);
  return Impl->Shards.size();
}

//===----------------------------------------------------------------------===//
// Snapshot rendering
//===----------------------------------------------------------------------===//

std::string MetricValue::fullName() const {
  if (Labels.empty())
    return Name;
  return Name + "{" + Labels + "}";
}

const MetricValue *MetricsSnapshot::find(const std::string &FullName) const {
  for (const MetricValue &V : Metrics)
    if (V.fullName() == FullName)
      return &V;
  return nullptr;
}

std::string MetricsSnapshot::toPrometheusText() const {
  std::string Out;
  Out += "# tnums metrics exposition\n";
  Out += "# build_info " + buildInfoJson() + "\n";
  std::string LastTyped;

  auto typeLine = [&](const std::string &Name, const char *Type) {
    if (Name == LastTyped)
      return;
    LastTyped = Name;
    Out += "# TYPE " + Name + " " + Type + "\n";
  };
  auto series = [&](const std::string &Name, const std::string &Labels,
                    const std::string &Value) {
    Out += Name;
    if (!Labels.empty())
      Out += "{" + Labels + "}";
    Out += " " + Value + "\n";
  };

  for (const MetricValue &V : Metrics) {
    switch (V.Kind) {
    case MetricKind::Counter:
      typeLine(V.Name, "counter");
      series(V.Name, V.Labels, std::to_string(V.Count));
      break;
    case MetricKind::Gauge:
      typeLine(V.Name, "gauge");
      series(V.Name, V.Labels, std::to_string(V.Value));
      typeLine(V.Name + "_peak", "gauge");
      series(V.Name + "_peak", V.Labels, std::to_string(V.Peak));
      break;
    case MetricKind::Histogram: {
      typeLine(V.Name, "histogram");
      // Cumulative buckets up to the highest populated one, then +Inf.
      unsigned Highest = 0;
      for (unsigned I = 0; I < V.Buckets.size(); ++I)
        if (V.Buckets[I])
          Highest = I;
      uint64_t Cum = 0;
      for (unsigned I = 0; I <= Highest && I < 64; ++I) {
        Cum += V.Buckets[I];
        std::string Le = "le=\"" +
                         std::to_string(MetricsRegistry::bucketUpperBound(I)) +
                         "\"";
        std::string Labels = V.Labels.empty() ? Le : V.Labels + "," + Le;
        series(V.Name + "_bucket", Labels, std::to_string(Cum));
      }
      std::string Inf = "le=\"+Inf\"";
      std::string Labels = V.Labels.empty() ? Inf : V.Labels + "," + Inf;
      series(V.Name + "_bucket", Labels, std::to_string(V.Count));
      series(V.Name + "_sum", V.Labels, std::to_string(V.Sum));
      series(V.Name + "_count", V.Labels, std::to_string(V.Count));
      break;
    }
    }
  }
  return Out;
}

std::string MetricsSnapshot::toJson() const {
  std::string Counters, Gauges, Histograms;
  for (const MetricValue &V : Metrics) {
    std::string Key = "\"" + jsonEscape(V.fullName()) + "\":";
    switch (V.Kind) {
    case MetricKind::Counter:
      if (!Counters.empty())
        Counters += ",";
      Counters += Key + std::to_string(V.Count);
      break;
    case MetricKind::Gauge:
      if (!Gauges.empty())
        Gauges += ",";
      Gauges += Key + "{\"value\":" + std::to_string(V.Value) +
                ",\"peak\":" + std::to_string(V.Peak) + "}";
      break;
    case MetricKind::Histogram: {
      if (!Histograms.empty())
        Histograms += ",";
      unsigned Highest = 0;
      for (unsigned I = 0; I < V.Buckets.size(); ++I)
        if (V.Buckets[I])
          Highest = I;
      std::string Buckets;
      for (unsigned I = 0; I <= Highest; ++I) {
        if (!Buckets.empty())
          Buckets += ",";
        Buckets += std::to_string(V.Buckets[I]);
      }
      Histograms += Key + "{\"count\":" + std::to_string(V.Count) +
                    ",\"sum\":" + std::to_string(V.Sum) + ",\"buckets\":[" +
                    Buckets + "]}";
      break;
    }
    }
  }
  return "{\"counters\":{" + Counters + "},\"gauges\":{" + Gauges +
         "},\"histograms\":{" + Histograms + "}}";
}

//===----------------------------------------------------------------------===//
// Build identification
//===----------------------------------------------------------------------===//

std::string tnums::jsonEscape(const std::string &Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (unsigned char C : Raw) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

const BuildInfo &tnums::buildInfo() {
  static const BuildInfo Info = [] {
    BuildInfo B;
#if defined(__clang__)
    B.Compiler = formatString("clang %d.%d.%d", __clang_major__,
                              __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
    B.Compiler = formatString("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                              __GNUC_PATCHLEVEL__);
#else
    B.Compiler = "unknown";
#endif
#if defined(NDEBUG)
    B.BuildType = "release";
#else
    B.BuildType = "debug";
#endif
    B.SimdDispatch = simdPathDescription(SimdMode::Auto);
    // Mirrors the dispatch predicate in src/bpf/Decoded.cpp.
#if defined(__GNUC__) || defined(__clang__)
    B.ComputedGoto = true;
#else
    B.ComputedGoto = false;
#endif
    return B;
  }();
  return Info;
}

std::string tnums::buildInfoJson() {
  const BuildInfo &B = buildInfo();
  return "{\"compiler\":\"" + jsonEscape(B.Compiler) + "\",\"build_type\":\"" +
         jsonEscape(B.BuildType) + "\",\"simd_dispatch\":\"" +
         jsonEscape(B.SimdDispatch) + "\",\"computed_goto\":" +
         (B.ComputedGoto ? "true" : "false") + "}";
}

std::string tnums::buildInfoString() {
  const BuildInfo &B = buildInfo();
  return B.Compiler + ", " + B.BuildType + ", simd " + B.SimdDispatch +
         ", computed-goto " + (B.ComputedGoto ? "yes" : "no");
}
