//===- support/Socket.h - Socket and event-loop helpers --------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX socket wrappers shared by the verification daemon
/// (service/Daemon.h) and its client (service/DaemonClient.h): RAII file
/// descriptors, UNIX-domain and loopback-TCP listeners/connectors, short
/// retrying connect for daemon-startup races, full-buffer read/write
/// helpers, and a self-pipe for waking a poll() loop from worker threads
/// (the completion-queue handshake the daemon's event loop relies on).
///
/// Everything reports failure via a bool/optional plus an Error string --
/// the same convention as support/Checkpoint.h -- and nothing here throws.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_SOCKET_H
#define TNUMS_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace tnums {

/// Owns one file descriptor; closes it on destruction. Movable, not
/// copyable.
class OwnedFd {
public:
  OwnedFd() = default;
  explicit OwnedFd(int FdV) : Fd(FdV) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd &&Other) noexcept : Fd(Other.release()) {}
  OwnedFd &operator=(OwnedFd &&Other) noexcept {
    if (this != &Other) {
      reset();
      Fd = Other.release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd &) = delete;
  OwnedFd &operator=(const OwnedFd &) = delete;

  int get() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  int release() { return std::exchange(Fd, -1); }
  void reset();

private:
  int Fd = -1;
};

/// \name Listeners and connectors
/// Blocking sockets with CLOEXEC set; callers flip individual connections
/// nonblocking when they hand them to a poll() loop.
/// @{

/// Binds and listens on a UNIX-domain socket at \p Path, unlinking any
/// stale socket file left by a dead daemon first. Fails when \p Path
/// exceeds sockaddr_un::sun_path.
std::optional<OwnedFd> listenUnix(const std::string &Path,
                                  std::string &Error);

/// Binds and listens on loopback TCP port \p Port (0 picks an ephemeral
/// port); the bound port is returned through \p BoundPort.
std::optional<OwnedFd> listenTcpLoopback(uint16_t Port, uint16_t &BoundPort,
                                         std::string &Error);

/// Connects to the UNIX-domain socket at \p Path.
std::optional<OwnedFd> connectUnix(const std::string &Path,
                                   std::string &Error);

/// Connects to loopback TCP port \p Port.
std::optional<OwnedFd> connectTcpLoopback(uint16_t Port, std::string &Error);

/// connectUnix with retries for up to \p TimeoutMs: the daemon-startup
/// race (client launched before the daemon finished binding) resolves by
/// polling instead of failing.
std::optional<OwnedFd> connectUnixRetry(const std::string &Path,
                                        unsigned TimeoutMs,
                                        std::string &Error);
/// @}

/// Writes all \p Size bytes of \p Data to \p Fd, riding out EINTR and
/// short writes. False with \p Error set on any hard failure (including
/// the peer closing: EPIPE is an error here, not a signal -- callers
/// install SIG_IGN or MSG_NOSIGNAL-equivalent themselves; see
/// ignoreSigpipe()).
bool writeAll(int Fd, const void *Data, size_t Size, std::string &Error);

/// Reads exactly \p Size bytes into \p Data. False with \p Error empty
/// means orderly EOF before any byte; \p Error set means a read failure
/// or EOF mid-buffer.
bool readAll(int Fd, void *Data, size_t Size, std::string &Error);

/// Marks \p Fd nonblocking. False with \p Error set on failure.
bool setNonBlocking(int Fd, std::string &Error);

/// Ignores SIGPIPE process-wide (idempotent): a daemon writing to a
/// client that vanished must see EPIPE from write(), not die.
void ignoreSigpipe();

/// The classic self-pipe: worker threads notify() (async-signal-safe, one
/// byte, saturating), the poll() loop watches readFd() and drain()s when
/// it wakes. Created nonblocking on both ends so a full pipe can never
/// block a notifier.
class SelfPipe {
public:
  static std::optional<SelfPipe> create(std::string &Error);

  int readFd() const { return Read.get(); }

  /// Wakes the poller; safe from any thread. A full pipe is success (the
  /// poller is already pending a wakeup).
  void notify() const;

  /// Drains every pending wakeup byte.
  void drain() const;

private:
  SelfPipe(OwnedFd ReadV, OwnedFd WriteV)
      : Read(std::move(ReadV)), Write(std::move(WriteV)) {}

  OwnedFd Read;
  OwnedFd Write;
};

} // namespace tnums

#endif // TNUMS_SUPPORT_SOCKET_H
