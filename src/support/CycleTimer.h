//===- support/CycleTimer.h - Cycle-accurate timing -------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RDTSC-based cycle measurement matching the paper's §IV-B methodology
/// ("CPU cycles measured using the RDTSC time stamp counter", minimum over
/// repeated trials per input). Falls back to std::chrono::steady_clock
/// nanoseconds on non-x86 hosts; the unit is reported by unitName().
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_CYCLETIMER_H
#define TNUMS_SUPPORT_CYCLETIMER_H

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#define TNUMS_HAVE_RDTSC 1
#else
#include <chrono>
#define TNUMS_HAVE_RDTSC 0
#endif

namespace tnums {

/// Reads the platform cycle (or nanosecond) counter with a serializing
/// barrier so that the measured region cannot be reordered around the read.
inline uint64_t readCycleCounter() {
#if TNUMS_HAVE_RDTSC
  unsigned Aux;
  return __rdtscp(&Aux);
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Human-readable unit of readCycleCounter() deltas.
const char *cycleCounterUnit();

/// Measures \p Trials invocations of \p Fn and returns the minimum counter
/// delta, mirroring the paper's min-of-10-trials protocol. \p Fn must be a
/// callable returning a value that is accumulated into \p Sink to defeat
/// dead-code elimination.
template <typename FnT>
uint64_t minCyclesOverTrials(unsigned Trials, FnT &&Fn, uint64_t &Sink) {
  uint64_t Best = ~uint64_t(0);
  for (unsigned I = 0; I != Trials; ++I) {
    uint64_t Begin = readCycleCounter();
    Sink += Fn();
    uint64_t End = readCycleCounter();
    uint64_t Delta = End - Begin;
    if (Delta < Best)
      Best = Delta;
  }
  return Best;
}

} // namespace tnums

#endif // TNUMS_SUPPORT_CYCLETIMER_H
