//===- support/Table.cpp - Aligned text tables and CSV output -------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdarg>

using namespace tnums;

TextTable::TextTable(std::vector<std::string> HeaderCells)
    : Header(std::move(HeaderCells)) {
  assert(!Header.empty() && "table needs at least one column");
}

void TextTable::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string TextTable::toCell(double V) { return formatString("%.4g", V); }

void TextTable::printAligned(std::FILE *Out) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C)
      std::fprintf(Out, "%s%-*s", C == 0 ? "" : "  ",
                   static_cast<int>(Widths[C]), Row[C].c_str());
    std::fprintf(Out, "\n");
  };

  PrintRow(Header);
  size_t RuleWidth = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    RuleWidth += Widths[C] + (C == 0 ? 0 : 2);
  std::string Rule(RuleWidth, '-');
  std::fprintf(Out, "%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    PrintRow(Row);
}

static std::string escapeCsvCell(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Escaped = "\"";
  for (char C : Cell) {
    if (C == '"')
      Escaped += '"';
    Escaped += C;
  }
  Escaped += '"';
  return Escaped;
}

void TextTable::printCsv(std::FILE *Out) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C)
      std::fprintf(Out, "%s%s", C == 0 ? "" : ",",
                   escapeCsvCell(Row[C]).c_str());
    std::fprintf(Out, "\n");
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string tnums::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Needed >= 0 && "format error");
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
