//===- support/Atomic.h - Small lock-free helpers ---------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared atomic primitives for the chunk-cancellation protocols: the
/// parallel sweeps (verify/ParallelSweep.cpp) and the batch verification
/// service (service/VerificationService.cpp) both track the lowest failing
/// chunk index with an atomic fetch-min.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_ATOMIC_H
#define TNUMS_SUPPORT_ATOMIC_H

#include <atomic>
#include <cstdint>

namespace tnums {

/// Lowers \p Into to \p Value if Value is smaller (atomic fetch-min). The
/// release half of acq_rel pairs with the acquire loads the cancellation
/// checks use.
inline void atomicMinU64(std::atomic<uint64_t> &Into, uint64_t Value) {
  uint64_t Current = Into.load(std::memory_order_acquire);
  while (Value < Current &&
         !Into.compare_exchange_weak(Current, Value,
                                     std::memory_order_acq_rel))
    ;
}

} // namespace tnums

#endif // TNUMS_SUPPORT_ATOMIC_H
