//===- support/Metrics.h - Process-wide counters/gauges/histograms --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named counters, gauges, and log2-bucketed
/// histograms, designed so instrumentation can live permanently in hot
/// paths:
///
///  * The recorder is OFF by default. Every hot-path record compiles to
///    one relaxed atomic load of a global pointer plus a branch; while
///    the pointer is null nothing else is touched -- no allocation, no
///    thread-local registration, no shard writes. Reports and bench
///    numbers are bit-identical with metrics on or off (metrics never
///    feed back into verdicts; see docs/OBSERVABILITY.md).
///
///  * When enabled, counter and histogram increments go to per-thread
///    shards of relaxed atomic slots -- no locks and no cross-thread
///    cache-line traffic on the hot path. A snapshot merges the shards
///    under the registry mutex. Gauges are set-typed (queue depth,
///    in-flight) so they live in process-wide atomics with a high-water
///    mark instead of shards.
///
///  * Handles (Counter/Gauge/Histogram) resolve their name to a stable
///    slot id once, at construction; the intended idiom is a function-
///    local static struct of handles per instrumented component.
///
/// Naming follows the Prometheus conventions: `tnums_<area>_<what>_total`
/// for counters, `tnums_<area>_<what>` for gauges, `tnums_<area>_<what>_ns`
/// for nanosecond histograms, with an optional label set (`op="add"`)
/// carried verbatim in the metric identity.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_METRICS_H
#define TNUMS_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tnums {

class MetricsRegistry;

/// The global recorder pointer. Null (the default) means disabled: every
/// record path is a load + branch and nothing else. enableProcessMetrics()
/// publishes the singleton registry here.
extern std::atomic<MetricsRegistry *> GlobalMetricsRecorder;

/// The registry the recorder publishes when enabled, reachable for
/// snapshots even while recording is off.
inline MetricsRegistry *enabledMetrics() {
  return GlobalMetricsRecorder.load(std::memory_order_relaxed);
}

/// Turn the process-wide recorder on. Idempotent; safe before or after
/// handle construction.
void enableProcessMetrics();

/// Turn the recorder back off (handles keep their ids; counts persist and
/// resume if re-enabled). Primarily for tests.
void disableProcessMetrics();

/// True while the recorder is installed.
inline bool metricsEnabled() { return enabledMetrics() != nullptr; }

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

/// Histograms bucket by bit width: bucket 0 counts value 0, bucket i
/// (1..64) counts values v with 2^(i-1) <= v < 2^i, i.e. the inclusive
/// bucket upper bounds are 2^i - 1.
constexpr unsigned MetricsHistogramBuckets = 65;

enum class MetricKind : uint8_t { Counter = 0, Gauge = 1, Histogram = 2 };

/// One metric, merged across all thread shards at snapshot time.
struct MetricValue {
  std::string Name;   ///< Base name, e.g. "tnums_analyzer_insn_visits_total".
  std::string Labels; ///< Optional label body, e.g. `op="add"` (no braces).
  MetricKind Kind = MetricKind::Counter;

  uint64_t Count = 0; ///< Counter value, or histogram sample count.
  int64_t Value = 0;  ///< Gauge current value.
  int64_t Peak = 0;   ///< Gauge high-water mark since registration.
  uint64_t Sum = 0;   ///< Histogram sum of recorded values.
  std::vector<uint64_t> Buckets; ///< Histogram per-bucket counts (65 entries).

  /// "name{labels}" -- the full identity as exposed.
  std::string fullName() const;
};

/// A point-in-time merge of every registered metric, sorted by full name
/// so snapshots are deterministic given deterministic counts.
struct MetricsSnapshot {
  std::vector<MetricValue> Metrics;

  /// Render in the Prometheus text exposition format (TYPE comments,
  /// cumulative `_bucket{le=...}` histogram series, `_sum`/`_count`).
  std::string toPrometheusText() const;

  /// Render as a JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{...}} for embedding in bench JSON outputs.
  std::string toJson() const;

  /// Find a metric by full name ("name" or "name{labels}"); null if absent.
  const MetricValue *find(const std::string &FullName) const;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Owns metric definitions and all per-thread shards. One per process
/// (instance()); handles talk to it through slot ids.
class MetricsRegistry {
public:
  /// The process singleton (constructed on first use, never destroyed --
  /// worker threads may still record during static destruction).
  static MetricsRegistry &instance();

  /// Register (or look up -- same name+labels+kind returns the same id)
  /// a metric and return its stable id.
  uint32_t registerCounter(const std::string &Name,
                           const std::string &Labels = std::string());
  uint32_t registerGauge(const std::string &Name,
                         const std::string &Labels = std::string());
  uint32_t registerHistogram(const std::string &Name,
                             const std::string &Labels = std::string());

  /// Hot-path record operations. Ids must come from the matching
  /// register call.
  void counterAdd(uint32_t Id, uint64_t Delta);
  void histogramRecord(uint32_t Id, uint64_t Sample);
  void gaugeSet(uint32_t Id, int64_t Value);
  void gaugeAdd(uint32_t Id, int64_t Delta);

  /// Merge every shard and gauge into a deterministic snapshot.
  MetricsSnapshot snapshot() const;

  /// Zero every slot, gauge, and peak (definitions stay). Tests only.
  void resetForTest();

  /// Number of thread shards ever created. The disabled-recorder test
  /// asserts recording while disabled creates none.
  size_t debugShardCount() const;

  /// Map a histogram sample to its bucket index (0..64): 0 for 0, else
  /// bit_width(Sample). Exposed for the bucket-boundary tests.
  static unsigned bucketIndex(uint64_t Sample);

  /// Inclusive upper bound of bucket I (2^I - 1; UINT64_MAX for 64).
  static uint64_t bucketUpperBound(unsigned I);

  struct ImplT; ///< Opaque state; defined in Metrics.cpp only.

private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;

  ImplT *Impl;
};

//===----------------------------------------------------------------------===//
// Handles
//===----------------------------------------------------------------------===//

/// Monotonic event counter. `add` is a no-op branch while disabled.
class Counter {
public:
  explicit Counter(const char *Name, const char *Labels = nullptr)
      : Id(MetricsRegistry::instance().registerCounter(
            Name, Labels ? Labels : std::string())) {}

  void add(uint64_t Delta = 1) {
    if (MetricsRegistry *R = enabledMetrics())
      R->counterAdd(Id, Delta);
  }

  uint32_t id() const { return Id; }

private:
  uint32_t Id;
};

/// Set-typed value with a high-water mark (queue depth, in-flight jobs).
class Gauge {
public:
  explicit Gauge(const char *Name, const char *Labels = nullptr)
      : Id(MetricsRegistry::instance().registerGauge(
            Name, Labels ? Labels : std::string())) {}

  void set(int64_t Value) {
    if (MetricsRegistry *R = enabledMetrics())
      R->gaugeSet(Id, Value);
  }
  void add(int64_t Delta) {
    if (MetricsRegistry *R = enabledMetrics())
      R->gaugeAdd(Id, Delta);
  }

  uint32_t id() const { return Id; }

private:
  uint32_t Id;
};

/// Log2-bucketed sample distribution (latencies in ns, sizes, ...).
class Histogram {
public:
  explicit Histogram(const char *Name, const char *Labels = nullptr)
      : Id(MetricsRegistry::instance().registerHistogram(
            Name, Labels ? Labels : std::string())) {}

  void record(uint64_t Sample) {
    if (MetricsRegistry *R = enabledMetrics())
      R->histogramRecord(Id, Sample);
  }

  uint32_t id() const { return Id; }

private:
  uint32_t Id;
};

//===----------------------------------------------------------------------===//
// Build identification
//===----------------------------------------------------------------------===//

/// Compile- and run-time facts that explain cross-machine baseline
/// differences from artifacts alone.
struct BuildInfo {
  std::string Compiler;     ///< e.g. "gcc 12.2.0" (from __VERSION__).
  std::string BuildType;    ///< "release" (NDEBUG) or "debug".
  std::string SimdDispatch; ///< Runtime SIMD path, e.g. "batched/avx2".
  bool ComputedGoto = false; ///< Threaded interpreter dispatch available.
};

/// The current process's build facts (computed once).
const BuildInfo &buildInfo();

/// buildInfo() as a compact JSON object, e.g.
/// {"compiler":"gcc 12.2.0","build_type":"release",...}.
std::string buildInfoJson();

/// buildInfo() as a one-line human string for banners.
std::string buildInfoString();

/// Escape a string for embedding inside a JSON string literal (shared by
/// the exposition/event-log writers and the bench JSON dumps).
std::string jsonEscape(const std::string &Raw);

} // namespace tnums

#endif // TNUMS_SUPPORT_METRICS_H
