//===- support/Bits.cpp - Bit-manipulation utilities ----------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Bits.h"

using namespace tnums;

bool tnums::parseBinary(const char *Text, unsigned Length, uint64_t &Result) {
  if (Length == 0 || Length > MaxBitWidth)
    return false;
  uint64_t Value = 0;
  for (unsigned I = 0; I != Length; ++I) {
    char C = Text[I];
    if (C != '0' && C != '1')
      return false;
    Value = (Value << 1) | uint64_t(C - '0');
  }
  Result = Value;
  return true;
}
