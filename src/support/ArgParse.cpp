//===- support/ArgParse.cpp - Tiny bench-driver argv parser ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

using namespace tnums;

std::optional<uint64_t> tnums::parseBoundedU64(const char *Text, uint64_t Min,
                                               uint64_t Max) {
  if (!Text || *Text == '\0' || std::strchr(Text, '-'))
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  unsigned long long Value = std::strtoull(Text, &End, 10);
  if (errno == ERANGE || End == Text || *End != '\0' || Value < Min ||
      Value > Max)
    return std::nullopt;
  return static_cast<uint64_t>(Value);
}

bool ArgParser::matchFlag(const char *Name) {
  if (!more() || std::strcmp(Argv[Index], Name) != 0)
    return false;
  ++Index;
  return true;
}

ArgParser::Match ArgParser::takeValue(const char *Name, const char *&Text) {
  if (!more())
    return Match::None;
  const char *Arg = Argv[Index];
  size_t NameLen = std::strlen(Name);
  if (std::strncmp(Arg, Name, NameLen) != 0)
    return Match::None;
  if (Arg[NameLen] == '=') { // --name=value
    ++Index;
    Text = Arg + NameLen + 1;
    return Match::Value;
  }
  if (Arg[NameLen] != '\0')
    return Match::None; // A longer option that merely shares the prefix.
  if (Index + 1 >= Argc) { // --name with nothing after it
    Error = true;
    ++Index;
    return Match::Error;
  }
  Index += 2;
  Text = Argv[Index - 1];
  return Match::Value;
}

bool ArgParser::matchUnsigned(const char *Name, unsigned Min, unsigned Max,
                              unsigned &Out) {
  uint64_t Wide = Out;
  if (!matchU64(Name, Min, Max, Wide))
    return false;
  if (!Error)
    Out = static_cast<unsigned>(Wide);
  return true;
}

bool ArgParser::matchU64(const char *Name, uint64_t Min, uint64_t Max,
                         uint64_t &Out) {
  const char *Text = nullptr;
  switch (takeValue(Name, Text)) {
  case Match::None:
    return false;
  case Match::Error:
    return true;
  case Match::Value:
    break;
  }
  std::optional<uint64_t> Value = parseBoundedU64(Text, Min, Max);
  if (!Value) {
    Error = true;
    return true;
  }
  Out = *Value;
  return true;
}

bool ArgParser::matchString(const char *Name, const char *&Out) {
  const char *Text = nullptr;
  switch (takeValue(Name, Text)) {
  case Match::None:
    return false;
  case Match::Error:
    return true;
  case Match::Value:
    Out = Text;
    return true;
  }
  return false;
}
