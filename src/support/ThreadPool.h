//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the exhaustive verification
/// sweeps (verify/ParallelSweep.h). Each worker owns a deque: it pushes
/// and pops its own tasks LIFO at the back, while idle workers steal FIFO
/// from the front of a victim's deque -- the classic Chase-Lev discipline
/// (here with a per-deque lock; sweep tasks are coarse chunks of thousands
/// of tnum pairs, so queue contention is nowhere near the critical path).
///
/// The pool is deliberately minimal: fire-and-forget submit() plus a
/// barrier-style wait(). Callers that need results or deterministic
/// ordering keep their own per-task slots and merge after wait(), which is
/// exactly what the parallel sweeps do to stay bit-reproducible across
/// thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_THREADPOOL_H
#define TNUMS_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tnums {

class ThreadPool {
public:
  /// Spawns \p ThreadCount workers; 0 means hardwareConcurrency().
  explicit ThreadPool(unsigned ThreadCount = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task. Safe from any thread, including from inside a
  /// running task (a worker pushes onto its own deque; external callers
  /// round-robin across deques).
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far -- including tasks those
  /// tasks spawned -- has finished running.
  void wait();

  /// std::thread::hardware_concurrency() clamped to at least 1.
  static unsigned hardwareConcurrency();

private:
  struct Worker {
    std::mutex Mutex;
    std::deque<std::function<void()>> Deque;
    std::thread Thread;
  };

  void workerLoop(unsigned Index);
  bool popOwn(unsigned Index, std::function<void()> &Task);
  bool stealFrom(unsigned ThiefIndex, std::function<void()> &Task);

  std::vector<std::unique_ptr<Worker>> Workers;

  /// Guards sleeping/wakeup and the bookkeeping counters below.
  std::mutex SleepMutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t PendingTasks = 0; // queued + currently running
  bool ShuttingDown = false;
  unsigned NextSubmitIndex = 0; // round-robin target for external submits
};

} // namespace tnums

#endif // TNUMS_SUPPORT_THREADPOOL_H
