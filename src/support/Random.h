//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro256**) used by the randomized
/// refutation campaigns and the performance harnesses. We avoid <random>
/// engines so that streams are reproducible across standard libraries, which
/// matters when EXPERIMENTS.md records seeds next to measured numbers.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_RANDOM_H
#define TNUMS_SUPPORT_RANDOM_H

#include <cstdint>

namespace tnums {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded through splitmix64 so any 64-bit seed yields a
/// well-mixed state.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next 64-bit value in the stream.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns true with probability Numerator/Denominator.
  bool nextChance(uint64_t Numerator, uint64_t Denominator) {
    return nextBelow(Denominator) < Numerator;
  }

private:
  uint64_t State[4];
};

} // namespace tnums

#endif // TNUMS_SUPPORT_RANDOM_H
