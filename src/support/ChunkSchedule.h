//===- support/ChunkSchedule.h - Self-scheduled chunk execution -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chunk-scheduling loop shared by the parallel sweeps
/// (verify/ParallelSweep.cpp) and the batch verification service
/// (service/VerificationService.cpp): workers self-schedule coarse chunks
/// off one atomic counter, with a genuinely serial degenerate path --
/// callers layer their own cancellation protocols and result merging on
/// top (see support/Atomic.h for the shared fetch-min they use).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_CHUNKSCHEDULE_H
#define TNUMS_SUPPORT_CHUNKSCHEDULE_H

#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>

namespace tnums {

/// The 0-means-hardware-concurrency convention every parallel knob in the
/// repo follows (SweepConfig::NumThreads, ServiceConfig::NumThreads).
inline unsigned resolveThreadCount(unsigned Threads) {
  return Threads ? Threads : ThreadPool::hardwareConcurrency();
}

/// Runs \p Body(Chunk, Worker) over [0, \p NumChunks), where \p MakeWorker
/// constructs one long-lived per-worker state object (an Analyzer engine,
/// a scratch block, or just an int when none is needed) whose storage
/// amortizes across every chunk that worker processes.
///
/// With one thread (or one chunk) this degenerates to a plain loop over
/// increasing chunk indices on the calling thread -- no pool, no atomics
/// -- so Threads == 1 is genuinely serial. Otherwise each pool worker
/// self-schedules chunks off a shared atomic counter; chunks are coarse,
/// so the counter is not contended.
template <typename MakeWorkerT, typename BodyT>
void forEachChunkOnPool(unsigned Threads, uint64_t NumChunks,
                        const MakeWorkerT &MakeWorker, const BodyT &Body) {
  Threads = resolveThreadCount(Threads);
  if (Threads == 1 || NumChunks <= 1) {
    auto Worker = MakeWorker();
    for (uint64_t Chunk = 0; Chunk != NumChunks; ++Chunk)
      Body(Chunk, Worker);
    return;
  }
  ThreadPool Pool(Threads);
  std::atomic<uint64_t> NextChunk{0};
  for (unsigned T = 0; T != Threads; ++T)
    Pool.submit([&NextChunk, NumChunks, &MakeWorker, &Body] {
      auto Worker = MakeWorker();
      for (;;) {
        uint64_t Chunk = NextChunk.fetch_add(1, std::memory_order_relaxed);
        if (Chunk >= NumChunks)
          return;
        Body(Chunk, Worker);
      }
    });
  Pool.wait();
}

} // namespace tnums

#endif // TNUMS_SUPPORT_CHUNKSCHEDULE_H
