//===- support/SimdBatch.h - Bitsliced SIMD batch kernels -------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-parallel kernels for the exhaustive verification sweeps. The hot
/// loop of every sweep is the membership predicate c in gamma(R), i.e.
/// (c & ~R.m) == R.v (Eqn. 9), evaluated billions of times per campaign.
/// This layer batches that predicate over 64-lane chunks of concrete
/// values behind *runtime* dispatch across three instruction-set tiers:
///
///   * portable -- a plain loop the compiler can auto-vectorize; always
///     present, and the reference every other tier is pinned against;
///   * avx2 -- 4 lanes per ymm compare, sign bits extracted with
///     movemask;
///   * avx512 -- 8 lanes per zmm compare writing an 8-bit mask REGISTER
///     directly (vpcmpeqq %k), i.e. the 64->8 lane compression of the
///     occupancy mask happens in hardware instead of via movemask
///     shuffling;
///   * neon -- 2 lanes per q-register compare on AArch64, so the whole
///     differential battery runs natively on ARM hosts.
///
/// One binary carries every tier its target can express and selects at
/// runtime, so the same build runs correctly on any host and fast on
/// CI-class hardware.
///
/// The kernels return a 64-bit occupancy mask -- bit j set iff lane j
/// FAILED the membership test -- rather than a boolean, so callers recover
/// the serial-order-first counterexample with a single countr_zero and the
/// exact work counters the determinism contract requires (see
/// verify/ParallelSweep.h).
///
/// Layering: this file knows nothing about tnums; it operates on raw
/// (value, ~mask) words. The tnum-aware batch enumerator lives in
/// tnum/TnumMembers.h and the checkers that consume both live in verify/
/// (including the fused evaluate-and-test / evaluate-and-reduce loops,
/// which need the concrete operator semantics this layer does not know).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_SIMDBATCH_H
#define TNUMS_SUPPORT_SIMDBATCH_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

/// True when this build target can contain AVX2/AVX-512 code paths behind
/// per-function target attributes (the functions are only *called* after
/// cpuHasAvx2() / cpuHasAvx512() says the host executes them). Shared by
/// SimdBatch.cpp and the fused per-op scan loops in verify/.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TNUMS_SIMD_HAVE_X86_KERNELS 1
#else
#define TNUMS_SIMD_HAVE_X86_KERNELS 0
#endif

/// True when this build target contains the NEON kernels. Advanced SIMD is
/// architecturally baseline on AArch64, so no runtime probe or target
/// attribute is needed -- the tier is compiled in iff the target is
/// AArch64.
#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define TNUMS_SIMD_HAVE_NEON_KERNELS 1
#else
#define TNUMS_SIMD_HAVE_NEON_KERNELS 0
#endif

namespace tnums {

/// Lanes per batch. 64 so that one batch's membership outcome packs into
/// one uint64_t occupancy mask.
inline constexpr unsigned SimdBatchLanes = 64;

/// Byte alignment for batch buffers (one AVX2 ymm register; the AVX-512
/// kernels use unaligned loads, so 32 stays sufficient).
inline constexpr size_t SimdBatchAlign = 32;

/// How a sweep selects its membership path.
///
///   * Off      -- the scalar reference path: one member per callback
///                 through forEachMember x Tnum::contains, exactly the
///                 pre-batching code. This is the baseline the
///                 differential tests (and the --simd A/B benchmark) pin
///                 the fast path against.
///   * Auto     -- the batched path with the best kernel tier the host
///                 supports (avx512 > avx2 > neon > portable).
///   * On       -- legacy alias of Auto (the pre-tier "batched,
///                 unconditionally" spelling); kept so existing scripts
///                 and baselines keep parsing.
///   * Portable -- the batched path, portable kernels forced (no
///                 hand-vectorized tier even when the host has one).
///   * Avx2 / Avx512 / Neon -- the batched path with exactly that kernel
///                 tier forced. Use simdModeSupported() to test whether
///                 the running host can honor the request; when it
///                 cannot, selectSimdKernels() falls back to the portable
///                 kernels (reports are bit-identical across tiers, so
///                 the fallback is safe -- front ends that want a hard
///                 error check simdModeSupported() first).
enum class SimdMode {
  Auto,
  On,
  Off,
  Portable,
  Avx2,
  Avx512,
  Neon,
};

/// The instruction-set tier a resolved kernel set executes.
enum class SimdTier {
  Portable,
  Avx2,
  Avx512,
  Neon,
};

/// Parses "auto" / "on" / "off" / "portable" / "avx2" / "avx512" / "neon".
/// Returns std::nullopt on anything else. Parsing does NOT check host
/// support -- use simdModeSupported() for that.
std::optional<SimdMode> parseSimdMode(const char *Text);

/// Stable lower-case name ("auto", "on", "off", "portable", "avx2",
/// "avx512", "neon").
const char *simdModeName(SimdMode Mode);

/// The "--simd=..." value list for usage strings and error messages.
inline constexpr char SimdModeUsage[] =
    "{auto,off,portable,avx2,avx512,neon}";

/// True when \p Mode routes sweeps through the batched kernels.
inline bool simdModeBatches(SimdMode Mode) { return Mode != SimdMode::Off; }

/// True if the running CPU supports the AVX2 kernels (runtime check, not a
/// compile-time one -- the binary always contains the portable fallback).
bool cpuHasAvx2();

/// True if the running CPU supports the AVX-512 kernels (requires
/// AVX512F + AVX512BW so both the qword-compare mask forms and the byte
/// mask-register moves are available).
bool cpuHasAvx512();

/// True if the running CPU executes the NEON kernels (always true on
/// AArch64 builds, always false elsewhere).
bool cpuHasNeon();

/// True when this host can honor \p Mode exactly: Off/Auto/On/Portable
/// always can; a forced tier requires the matching cpuHas*() probe.
bool simdModeSupported(SimdMode Mode);

/// Comma-separated list of the modes this host supports, for "--simd=X is
/// not supported on this host" diagnostics.
std::string supportedSimdModeList();

/// One resolved set of batch kernels. Every tier computes identical
/// results; only the instruction mix differs.
struct SimdKernels {
  /// Returns the occupancy mask of membership FAILURES over \p N lanes
  /// (N <= SimdBatchLanes): bit j is set iff (Z[j] & NotM) != V, i.e. lane
  /// j is not a member of the tnum (V, M) with NotM = ~M. Bits >= N are
  /// clear. Note that for an ill-formed (bottom) tnum some bit has V=1
  /// inside M, making the compare false in every lane -- exactly
  /// Tnum::contains' "bottom contains nothing", with no extra branch.
  uint64_t (*NonMemberMask)(const uint64_t *Z, unsigned N, uint64_t V,
                            uint64_t NotM);

  /// Folds AND/OR accumulators over \p N lanes: *AndAcc &= Z[j],
  /// *OrAcc |= Z[j]. The two reductions of the abstraction function
  /// alpha (Eqn. 5), batched for the optimality sweeps.
  void (*ReduceAndOr)(const uint64_t *Z, unsigned N, uint64_t *AndAcc,
                      uint64_t *OrAcc);

  /// Kernel name for diagnostics: "scalar", "avx2", "avx512", or "neon".
  /// (The portable tier keeps its historical "scalar" name so existing
  /// baselines and scripts keep matching.)
  const char *Name;

  /// Which instruction-set tier this kernel set executes. The fused
  /// evaluate-and-test loops in verify/ dispatch on this tag.
  SimdTier Tier;
};

/// The portable kernels. Always available.
const SimdKernels &scalarSimdKernels();

/// The AVX2 kernels, or nullptr when the build target or running CPU
/// cannot execute them.
const SimdKernels *avx2SimdKernels();

/// The AVX-512 kernels, or nullptr when the build target or running CPU
/// cannot execute them.
const SimdKernels *avx512SimdKernels();

/// The NEON kernels, or nullptr when the build target is not AArch64.
const SimdKernels *neonSimdKernels();

/// The kernels \p Mode resolves to on this host. Off and Portable resolve
/// to the portable kernels; Auto/On to the best tier the host supports; a
/// forced tier to its kernels when supported, else the portable fallback
/// (callers that want a hard error on unsupported tiers check
/// simdModeSupported() first -- every tier computes bit-identical
/// results, so the fallback never changes a report).
const SimdKernels &selectSimdKernels(SimdMode Mode);

/// Human-readable description of what \p Mode runs on this host, e.g.
/// "batched/avx512", "batched/avx2 (forced)", or "scalar reference".
std::string simdPathDescription(SimdMode Mode);

} // namespace tnums

#endif // TNUMS_SUPPORT_SIMDBATCH_H
