//===- support/SimdBatch.h - Bitsliced SIMD batch kernels -------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-parallel kernels for the exhaustive verification sweeps. The hot
/// loop of every sweep is the membership predicate c in gamma(R), i.e.
/// (c & ~R.m) == R.v (Eqn. 9), evaluated billions of times per campaign.
/// This layer batches that predicate over 64-lane chunks of concrete
/// values: the portable kernel is a plain loop the compiler can
/// auto-vectorize, and an AVX2 specialization (4 lanes per ymm compare)
/// is selected behind *runtime* dispatch, so one binary runs correctly on
/// any x86-64 host and fast on CI-class hardware.
///
/// The kernels return a 64-bit occupancy mask -- bit j set iff lane j
/// FAILED the membership test -- rather than a boolean, so callers recover
/// the serial-order-first counterexample with a single countr_zero and the
/// exact work counters the determinism contract requires (see
/// verify/ParallelSweep.h).
///
/// Layering: this file knows nothing about tnums; it operates on raw
/// (value, ~mask) words. The tnum-aware batch enumerator lives in
/// tnum/TnumMembers.h and the checkers that consume both live in verify/.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_SIMDBATCH_H
#define TNUMS_SUPPORT_SIMDBATCH_H

#include <cstddef>
#include <cstdint>
#include <optional>

/// True when this build target can contain AVX2 code paths behind
/// per-function target attributes (the functions are only *called* after
/// cpuHasAvx2() says the host executes them). Shared by SimdBatch.cpp and
/// the fused per-op scan loops in verify/SoundnessChecker.cpp.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TNUMS_SIMD_HAVE_X86_KERNELS 1
#else
#define TNUMS_SIMD_HAVE_X86_KERNELS 0
#endif

namespace tnums {

/// Lanes per batch. 64 so that one batch's membership outcome packs into
/// one uint64_t occupancy mask.
inline constexpr unsigned SimdBatchLanes = 64;

/// Byte alignment for batch buffers (one AVX2 ymm register).
inline constexpr size_t SimdBatchAlign = 32;

/// How a sweep selects its membership path.
///
///   * Off  -- the scalar reference path: one member per callback through
///             forEachMember x Tnum::contains, exactly the pre-batching
///             code. This is the baseline the differential tests (and the
///             --simd A/B benchmark) pin the fast path against.
///   * Auto -- the batched path with the best kernel the host supports
///             (AVX2 when the CPU has it, otherwise the portable kernel).
///   * On   -- the batched path, unconditionally. Same kernel selection as
///             Auto; the distinct name exists so scripts can assert they
///             asked for batching rather than inherited a default.
enum class SimdMode {
  Auto,
  On,
  Off,
};

/// Parses "auto" / "on" / "off". Returns std::nullopt on anything else.
std::optional<SimdMode> parseSimdMode(const char *Text);

/// Stable lower-case name ("auto", "on", "off").
const char *simdModeName(SimdMode Mode);

/// True when \p Mode routes sweeps through the batched kernels.
inline bool simdModeBatches(SimdMode Mode) { return Mode != SimdMode::Off; }

/// True if the running CPU supports the AVX2 kernels (runtime check, not a
/// compile-time one -- the binary always contains the portable fallback).
bool cpuHasAvx2();

/// One resolved set of batch kernels. Both implementations compute
/// identical results; only the instruction mix differs.
struct SimdKernels {
  /// Returns the occupancy mask of membership FAILURES over \p N lanes
  /// (N <= SimdBatchLanes): bit j is set iff (Z[j] & NotM) != V, i.e. lane
  /// j is not a member of the tnum (V, M) with NotM = ~M. Bits >= N are
  /// clear. Note that for an ill-formed (bottom) tnum some bit has V=1
  /// inside M, making the compare false in every lane -- exactly
  /// Tnum::contains' "bottom contains nothing", with no extra branch.
  uint64_t (*NonMemberMask)(const uint64_t *Z, unsigned N, uint64_t V,
                            uint64_t NotM);

  /// Folds AND/OR accumulators over \p N lanes: *AndAcc &= Z[j],
  /// *OrAcc |= Z[j]. The two reductions of the abstraction function
  /// alpha (Eqn. 5), batched for the optimality sweeps.
  void (*ReduceAndOr)(const uint64_t *Z, unsigned N, uint64_t *AndAcc,
                      uint64_t *OrAcc);

  /// Kernel name for diagnostics: "scalar" or "avx2".
  const char *Name;
};

/// The portable kernels. Always available.
const SimdKernels &scalarSimdKernels();

/// The AVX2 kernels, or nullptr when the build target or running CPU
/// cannot execute them.
const SimdKernels *avx2SimdKernels();

/// The kernels \p Mode resolves to on this host. Off resolves to the
/// scalar kernels too (callers on the Off path normally bypass batching
/// entirely, but the resolution is still total so diagnostics can print
/// it).
const SimdKernels &selectSimdKernels(SimdMode Mode);

/// Human-readable description of what \p Mode runs on this host, e.g.
/// "batched/avx2" or "scalar reference".
const char *simdPathDescription(SimdMode Mode);

} // namespace tnums

#endif // TNUMS_SUPPORT_SIMDBATCH_H
