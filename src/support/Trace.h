//===- support/Trace.h - Scoped spans and structured event logs -----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing companions to support/Metrics.h:
///
///  * traceNowNs() -- the one monotonic clock every span and event
///    timestamp uses, so durations computed from mixed call sites agree.
///
///  * ScopedTimer -- records the enclosing scope's wall time (ns) into a
///    Histogram on destruction. Reads the clock only while the recorder
///    is enabled, so disabled builds pay one branch at construction and
///    one at destruction.
///
///  * EventLog -- an append-only JSONL sink (one JSON object per line)
///    for structured lifecycle events, shared across threads behind a
///    mutex. The daemon writes its request lifecycle here
///    (docs/OBSERVABILITY.md documents the schema).
///
///  * JsonLineBuilder -- a tiny escaping helper for composing one event
///    line without pulling in a JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_TRACE_H
#define TNUMS_SUPPORT_TRACE_H

#include "support/Metrics.h"

#include <cstdint>
#include <mutex>
#include <string>

#include <stdio.h>

namespace tnums {

/// Monotonic nanoseconds (steady clock; epoch unspecified, comparable
/// only within the process).
uint64_t traceNowNs();

/// Wall-clock milliseconds since the UNIX epoch, for event-log
/// timestamps that must be meaningful across processes.
uint64_t traceWallMs();

/// Records the scope's elapsed nanoseconds into \p H on destruction.
/// When the recorder is disabled at construction the clock is never read.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram &H)
      : Target(metricsEnabled() ? &H : nullptr),
        StartNs(Target ? traceNowNs() : 0) {}
  ~ScopedTimer() {
    if (Target)
      Target->record(traceNowNs() - StartNs);
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  Histogram *Target;
  uint64_t StartNs;
};

/// Composes one JSON object line: {"k":v,...}. Values are escaped; field
/// order is insertion order. Finish with str() -- no trailing newline.
class JsonLineBuilder {
public:
  JsonLineBuilder &field(const char *Key, const std::string &Value) {
    rawField(Key, "\"" + jsonEscape(Value) + "\"");
    return *this;
  }
  JsonLineBuilder &field(const char *Key, const char *Value) {
    return field(Key, std::string(Value));
  }
  JsonLineBuilder &field(const char *Key, uint64_t Value) {
    rawField(Key, std::to_string(Value));
    return *this;
  }
  JsonLineBuilder &field(const char *Key, int64_t Value) {
    rawField(Key, std::to_string(Value));
    return *this;
  }
  JsonLineBuilder &field(const char *Key, double Value);
  JsonLineBuilder &field(const char *Key, bool Value) {
    rawField(Key, Value ? "true" : "false");
    return *this;
  }
  /// Splices \p Json in verbatim (for nested objects built elsewhere).
  JsonLineBuilder &fieldJson(const char *Key, const std::string &Json) {
    rawField(Key, Json);
    return *this;
  }

  std::string str() const { return "{" + Body + "}"; }

private:
  void rawField(const char *Key, const std::string &Rendered) {
    if (!Body.empty())
      Body += ",";
    Body += "\"";
    Body += Key;
    Body += "\":";
    Body += Rendered;
  }

  std::string Body;
};

/// Append-only JSONL event sink. Thread-safe; each write() appends one
/// line and flushes so a crash loses at most the in-flight line. Default-
/// constructed logs are inert (write() drops the line) so call sites can
/// hold one unconditionally.
class EventLog {
public:
  EventLog() = default;
  ~EventLog() { close(); }

  EventLog(const EventLog &) = delete;
  EventLog &operator=(const EventLog &) = delete;

  /// Opens \p Path for appending. On failure returns false and sets
  /// \p Error; the log stays inert.
  bool open(const std::string &Path, std::string &Error);

  /// True when open() succeeded and close() has not run.
  bool active() const { return Stream != nullptr; }

  /// Appends one line (the terminating newline is added here).
  void write(const std::string &JsonLine);

  /// Flush and close the sink; further writes are dropped.
  void close();

private:
  std::mutex Mutex;
  FILE *Stream = nullptr;
};

} // namespace tnums

#endif // TNUMS_SUPPORT_TRACE_H
