//===- support/Trace.cpp - Scoped spans and structured event logs ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Table.h"

#include <chrono>

using namespace tnums;

uint64_t tnums::traceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t tnums::traceWallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

JsonLineBuilder &JsonLineBuilder::field(const char *Key, double Value) {
  rawField(Key, formatString("%.6f", Value));
  return *this;
}

bool EventLog::open(const std::string &Path, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Stream) {
    Error = "event log already open";
    return false;
  }
  FILE *F = fopen(Path.c_str(), "a");
  if (!F) {
    Error = "cannot open event log " + Path;
    return false;
  }
  Stream = F;
  return true;
}

void EventLog::write(const std::string &JsonLine) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Stream)
    return;
  fwrite(JsonLine.data(), 1, JsonLine.size(), Stream);
  fputc('\n', Stream);
  fflush(Stream);
}

void EventLog::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Stream)
    return;
  fclose(Stream);
  Stream = nullptr;
}
