//===- support/Checkpoint.h - Durable campaign shard store ------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk state a checkpointed campaign (verify/Campaign.h) survives
/// preemption with: one directory holding a manifest plus one small file
/// per *completed* shard. The store knows nothing about what a shard
/// means -- payloads are opaque text the campaign layer serializes -- it
/// only guarantees durability and identity:
///
///  * Shard writes are atomic and durable: payloads land in a temp file,
///    are fsync'd, and are renamed into place (then the directory is
///    fsync'd). close() after fsync is checked too -- NFS and quota-full
///    filesystems surface deferred write errors there, and a shard that
///    hit one must never be renamed into place. A killed process
///    therefore leaves either a complete, loadable shard file or nothing
///    -- never a torn one -- which is what makes "kill anywhere, resume,
///    merge" safe. Orphaned temp files from killed invocations are swept
///    on open (only when their writer pid is provably dead), and live
///    temp names carry a random nonce besides the pid so a recycled pid
///    can never collide with another writer.
///  * Every file carries a format version and the campaign fingerprint
///    (a digest of the spec *shape* that produced the manifest). Opening
///    a directory written by a different campaign, or loading a shard
///    whose fingerprint disagrees, fails loudly instead of merging
///    garbage.
///  * v2 adds a per-cell header to every shard file: the cell index and
///    the cell's content fingerprint (in the campaign layer: a digest of
///    the transfer-function implementation the cell verified). The store
///    round-trips both; the campaign layer compares the cell fingerprint
///    on load and re-runs -- after removeShard() GC -- cells whose
///    operator implementation changed. v1 directories are REFUSED with an
///    explicit migration message (their shards lack the per-cell header,
///    so reusing them could serve verdicts of operators that have since
///    changed).
///
/// Multiple invocations may share one directory concurrently (the
/// --shards=K / --shard-index=i farming mode): they write disjoint shard
/// files, and identical manifest rewrites are idempotent.
///
/// Format (v2, line-oriented text; see docs/CAMPAIGN.md):
///
///   campaign.manifest:   tnums-campaign-manifest v2
///                        fingerprint <hex64>
///                        shards <N>
///
///   shard-<index>.ckpt:  tnums-campaign-shard v2
///                        fingerprint <hex64>
///                        shard <index>
///                        cell <index>
///                        cellfp <hex64>
///                        terminal <0|1>
///                        <payload lines...>
///
/// "terminal" marks a shard whose outcome ends its cell early (the
/// early-exit optimality mode): the merge may stop there, so shards after
/// it are allowed to be missing forever.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_CHECKPOINT_H
#define TNUMS_SUPPORT_CHECKPOINT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tnums {

/// What one completed shard contributes on resume.
struct ShardRecord {
  std::string Payload;   ///< Campaign-layer serialized shard result.
  bool Terminal = false; ///< Ends its cell early (early-exit witness).
  /// Index of the campaign cell this shard belongs to.
  uint64_t Cell = 0;
  /// Content fingerprint of the cell as the writer computed it (campaign
  /// layer: the op-fingerprint keying). A stored shard whose CellFingerprint
  /// no longer matches the current spec's is stale -- the campaign layer
  /// GCs and re-runs it instead of merging an outdated verdict.
  uint64_t CellFingerprint = 0;
};

/// A campaign checkpoint directory. Open it once per invocation; all
/// methods are safe against concurrent invocations writing *other*
/// shards into the same directory.
class CheckpointStore {
public:
  /// Opens \p Dir for the campaign identified by \p Fingerprint over
  /// \p NumShards shards, creating the directory and manifest when absent,
  /// and sweeping temp files orphaned by dead writers. Fails (nullopt,
  /// \p Error set) when the directory already holds a manifest for a
  /// different campaign -- resuming must never mix state from two specs --
  /// or a v1-format manifest (see the file comment: v1 stores are refused,
  /// not misread).
  static std::optional<CheckpointStore> open(const std::string &Dir,
                                             uint64_t Fingerprint,
                                             uint64_t NumShards,
                                             std::string &Error);

  /// Durably records shard \p Index: temp file + fsync + rename + dir
  /// fsync. Safe across invocations racing on the same shard: last
  /// rename wins, and every writer's payload merges to the same result
  /// (payloads are deterministic up to informational fields like the
  /// campaign layer's "seconds").
  bool storeShard(uint64_t Index, const ShardRecord &Record,
                  std::string &Error) const;

  /// Loads shard \p Index if its file exists. nullopt with \p Error empty
  /// means "not completed yet"; nullopt with \p Error set means the file
  /// exists but is unreadable or belongs to a different campaign. The
  /// caller owns the CellFingerprint staleness decision.
  std::optional<ShardRecord> loadShard(uint64_t Index,
                                       std::string &Error) const;

  /// Removes shard \p Index's file (the invalidated-cell GC). A missing
  /// file is success -- a concurrent GC may have won the race.
  bool removeShard(uint64_t Index, std::string &Error) const;

  /// True when shard \p Index has a completed file.
  bool hasShard(uint64_t Index) const;

  /// Indices of every completed shard file present, ascending.
  std::vector<uint64_t> completedShards() const;

  const std::string &path() const { return Dir; }

private:
  CheckpointStore(std::string DirV, uint64_t FingerprintV)
      : Dir(std::move(DirV)), Fingerprint(FingerprintV) {}

  std::string shardPath(uint64_t Index) const;

  std::string Dir;
  uint64_t Fingerprint;
};

/// \name Durability primitives
/// The atomic-write discipline CheckpointStore's shards are built on,
/// exported for other durable stores (the service layer's cross-run
/// VerdictCache persists verdict entries through exactly this path, so
/// its files inherit the same torn-write guarantee).
/// @{

/// Writes \p Contents to \p Path durably: pid+nonce temp sibling + fsync
/// + close-check + rename + directory fsync. A killed writer leaves
/// either the complete new file or the old state -- never a torn file.
/// False with \p Error set on any syscall failure.
bool writeFileDurable(const std::string &Path, const std::string &Contents,
                      std::string &Error);

/// Unlinks "<target>.tmp.<pid>.<nonce>" temp files in \p Dir whose writer
/// pid is provably dead and whose mtime is past the cross-machine grace
/// period. Best-effort cleanup; call once when opening a durable store.
void sweepOrphanedTempFiles(const std::string &Dir);
/// @}

/// FNV-1a over a byte run -- the digest the campaign layer fingerprints
/// specs with (shared here so every front end hashes identically).
class Fnv1a {
public:
  void mixByte(unsigned char Byte) {
    Hash = (Hash ^ Byte) * 1099511628211ull;
  }
  void mixU64(uint64_t Value) {
    for (unsigned Byte = 0; Byte != 8; ++Byte)
      mixByte(static_cast<unsigned char>(Value >> (8 * Byte)));
  }
  void mixString(const std::string &Text) {
    for (unsigned char C : Text)
      mixByte(C);
    mixByte(0xFF); // Terminator so "ab"+"c" != "a"+"bc".
  }
  uint64_t digest() const { return Hash; }

private:
  uint64_t Hash = 1469598103934665603ull; // FNV-1a offset basis
};

} // namespace tnums

#endif // TNUMS_SUPPORT_CHECKPOINT_H
