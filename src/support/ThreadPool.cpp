//===- support/ThreadPool.cpp - Work-stealing thread pool -----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>
#include <chrono>

using namespace tnums;

namespace {
/// Index of the worker deque owned by the calling thread in its pool, or
/// -1 when the caller is not a pool thread. Lets tasks submitted from
/// inside a task land on the submitter's own deque (LIFO locality) and
/// keeps wait() usable from external threads only.
thread_local int CurrentWorkerIndex = -1;
thread_local const ThreadPool *CurrentPool = nullptr;
} // namespace

unsigned ThreadPool::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = hardwareConcurrency();
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.push_back(std::make_unique<Worker>());
  // Deques must all exist before any thread can try to steal.
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers[I]->Thread = std::thread([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(SleepMutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::unique_ptr<Worker> &W : Workers)
    W->Thread.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "submitting an empty task");
  unsigned Target;
  {
    // The pending count must rise BEFORE the task becomes visible in a
    // deque: a running worker may pop and finish it (decrementing the
    // count) the instant it is published.
    std::lock_guard<std::mutex> Lock(SleepMutex);
    ++PendingTasks;
    if (CurrentPool == this && CurrentWorkerIndex >= 0) {
      Target = static_cast<unsigned>(CurrentWorkerIndex);
    } else {
      Target = NextSubmitIndex;
      NextSubmitIndex = (NextSubmitIndex + 1) % threadCount();
    }
  }
  {
    std::lock_guard<std::mutex> Lock(Workers[Target]->Mutex);
    Workers[Target]->Deque.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

bool ThreadPool::popOwn(unsigned Index, std::function<void()> &Task) {
  Worker &W = *Workers[Index];
  std::lock_guard<std::mutex> Lock(W.Mutex);
  if (W.Deque.empty())
    return false;
  Task = std::move(W.Deque.back());
  W.Deque.pop_back();
  return true;
}

bool ThreadPool::stealFrom(unsigned ThiefIndex, std::function<void()> &Task) {
  // Scan victims starting after the thief so contention spreads out.
  unsigned N = threadCount();
  for (unsigned Offset = 1; Offset != N; ++Offset) {
    Worker &Victim = *Workers[(ThiefIndex + Offset) % N];
    std::lock_guard<std::mutex> Lock(Victim.Mutex);
    if (Victim.Deque.empty())
      continue;
    Task = std::move(Victim.Deque.front());
    Victim.Deque.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentWorkerIndex = static_cast<int>(Index);
  CurrentPool = this;
  for (;;) {
    std::function<void()> Task;
    if (popOwn(Index, Task) || stealFrom(Index, Task)) {
      Task();
      Task = nullptr; // Destroy captures before bookkeeping.
      std::lock_guard<std::mutex> Lock(SleepMutex);
      assert(PendingTasks != 0 && "pending-task underflow");
      if (--PendingTasks == 0)
        AllDone.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepMutex);
    if (ShuttingDown)
      return;
    if (PendingTasks == 0) {
      WorkAvailable.wait(Lock, [this] { return PendingTasks != 0 || ShuttingDown; });
      continue;
    }
    // Tasks are pending but none were visible to pop/steal: another worker
    // holds them all in flight. Sleep until something new is submitted or
    // everything drains, re-checking the deques on each wakeup.
    WorkAvailable.wait_for(Lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::wait() {
  assert(CurrentPool != this && "wait() from inside a pool task deadlocks");
  std::unique_lock<std::mutex> Lock(SleepMutex);
  AllDone.wait(Lock, [this] { return PendingTasks == 0; });
}
