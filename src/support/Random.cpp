//===- support/Random.cpp - Deterministic pseudo-random numbers -----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cassert>

using namespace tnums;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

static uint64_t rotateLeft(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Xoshiro256::reseed(uint64_t Seed) {
  uint64_t Mix = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(Mix);
}

uint64_t Xoshiro256::next() {
  uint64_t Result = rotateLeft(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotateLeft(State[3], 45);
  return Result;
}

uint64_t Xoshiro256::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be nonzero");
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of Bound representable in 64 bits.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}
