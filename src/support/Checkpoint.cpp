//===- support/Checkpoint.cpp - Durable campaign shard store --------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Checkpoint.h"

#include "support/Table.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <random>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace tnums;

namespace fs = std::filesystem;

namespace {

constexpr const char *ManifestName = "campaign.manifest";
constexpr const char *ManifestMagic = "tnums-campaign-manifest v2";
constexpr const char *ShardMagic = "tnums-campaign-shard v2";
/// The previous format's magics: recognized only to refuse them with a
/// migration message instead of a generic parse error. v1 shards carry no
/// per-cell fingerprint, so reusing them could silently serve verdicts of
/// transfer functions that have since changed.
constexpr const char *ManifestMagicV1 = "tnums-campaign-manifest v1";
constexpr const char *ShardMagicV1 = "tnums-campaign-shard v1";

/// A per-call temp-name nonce: process-random seed mixed with a counter.
/// Temp names embed this besides the pid because pids recycle -- a
/// crashed writer's pid can be reassigned to a live invocation sharing
/// the directory, and two same-pid writers (or sweep-vs-writer races on a
/// recycled pid) must never address the same temp file.
uint64_t tempNonce() {
  static std::atomic<uint64_t> Counter{0};
  static const uint64_t Seed = [] {
    std::random_device Device;
    uint64_t S = (static_cast<uint64_t>(Device()) << 32) ^ Device();
    S ^= static_cast<uint64_t>(::getpid()) * 0x9E3779B97F4A7C15ull;
    S ^= static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return S;
  }();
  Fnv1a Hash;
  Hash.mixU64(Seed);
  Hash.mixU64(Counter.fetch_add(1, std::memory_order_relaxed));
  return Hash.digest();
}

} // namespace

// (Declared in Checkpoint.h; the shard store below and the service
// layer's VerdictCache share this implementation.) Writes \p Contents to
// \p Path durably: temp sibling + fsync + rename + directory fsync.
// Returns false with \p Error set on any syscall failure. The temp name
// embeds the pid (so open() can sweep temps whose writer died) plus a
// random nonce (so writers never collide even across pid recycling).
bool tnums::writeFileDurable(const std::string &Path,
                             const std::string &Contents,
                             std::string &Error) {
  std::string Temp =
      formatString("%s.tmp.%ld.%016" PRIx64, Path.c_str(),
                   static_cast<long>(::getpid()), tempNonce());
  int Fd = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = formatString("cannot create %s: %s", Temp.c_str(),
                         std::strerror(errno));
    return false;
  }
  size_t Written = 0;
  while (Written != Contents.size()) {
    ssize_t N = ::write(Fd, Contents.data() + Written,
                        Contents.size() - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = formatString("cannot write %s: %s", Temp.c_str(),
                           std::strerror(errno));
      ::close(Fd);
      ::unlink(Temp.c_str());
      return false;
    }
    Written += static_cast<size_t>(N);
  }
  if (::fsync(Fd) != 0) {
    Error = formatString("cannot fsync %s: %s", Temp.c_str(),
                         std::strerror(errno));
    ::close(Fd);
    ::unlink(Temp.c_str());
    return false;
  }
  // close() is where NFS and quota-full filesystems surface deferred
  // write errors; ignoring it here could rename a torn shard into place.
  if (::close(Fd) != 0) {
    Error = formatString("cannot close %s (deferred write error): %s",
                         Temp.c_str(), std::strerror(errno));
    ::unlink(Temp.c_str());
    return false;
  }
  if (::rename(Temp.c_str(), Path.c_str()) != 0) {
    Error = formatString("cannot rename %s -> %s: %s", Temp.c_str(),
                         Path.c_str(), std::strerror(errno));
    ::unlink(Temp.c_str());
    return false;
  }
  // Make the rename itself durable: fsync the containing directory.
  std::string Dir = fs::path(Path).parent_path().string();
  int DirFd =
      ::open(Dir.empty() ? "." : Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd); // Best-effort; some filesystems refuse dir fsync.
    ::close(DirFd);
  }
  return true;
}

namespace {

/// Minimum idle age before a dead-pid temp file is considered orphaned.
/// The pid test is only meaningful on the machine that created the file;
/// in the cross-machine farming mode (one checkpoint dir on NFS) a
/// remote writer's pid looks dead locally, so the sweep additionally
/// requires the file to have been idle far longer than any in-flight
/// writeFileDurable. A genuine orphan is swept by whichever invocation
/// opens the store after the grace period.
constexpr time_t OrphanTempGraceSeconds = 15 * 60;

} // namespace

// (Declared in Checkpoint.h.) Unlinks temp files in \p Dir whose writer
// is provably dead. A temp name is "<target>.tmp.<pid>[.<nonce>]"; the
// file is an orphan when kill(pid, 0) reports ESRCH AND its mtime is
// older than the grace period above. A live pid -- even one recycled to
// an unrelated process -- leaves the file alone: sweeping is an
// opportunistic cleanup, and the nonce already guarantees no live writer
// can be addressed by a new one.
void tnums::sweepOrphanedTempFiles(const std::string &Dir) {
  std::error_code Ec;
  const time_t Now = ::time(nullptr);
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, Ec)) {
    std::string Name = Entry.path().filename().string();
    size_t Marker = Name.rfind(".tmp.");
    if (Marker == std::string::npos)
      continue;
    const char *PidText = Name.c_str() + Marker + 5;
    char *End = nullptr;
    errno = 0;
    long Pid = std::strtol(PidText, &End, 10);
    if (errno != 0 || End == PidText || Pid <= 0)
      continue;
    if (*End != '\0' && *End != '.')
      continue; // Not one of our temp names.
    if (::kill(static_cast<pid_t>(Pid), 0) == 0 || errno != ESRCH)
      continue; // A live (or indeterminate) writer on this machine.
    struct stat St;
    if (::stat(Entry.path().c_str(), &St) != 0 ||
        Now - St.st_mtime < OrphanTempGraceSeconds)
      continue; // Too fresh: could be a remote machine's live writer.
    ::unlink(Entry.path().c_str()); // Best-effort; races are benign.
  }
}

namespace {

std::optional<std::string> readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;
  std::string Contents;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Contents.append(Buf, N);
  std::fclose(File);
  return Contents;
}

/// Pops the first line (without the newline) off \p Text.
std::string takeLine(std::string &Text) {
  size_t Eol = Text.find('\n');
  std::string Line = Text.substr(0, Eol);
  Text.erase(0, Eol == std::string::npos ? Text.size() : Eol + 1);
  return Line;
}

/// Parses "<key> <hex-or-dec u64>"; nullopt unless the line starts with
/// exactly \p Key followed by one value.
std::optional<uint64_t> parseKeyedU64(const std::string &Line,
                                      const char *Key, bool Hex) {
  size_t KeyLen = std::strlen(Key);
  if (Line.compare(0, KeyLen, Key) != 0 || Line.size() <= KeyLen ||
      Line[KeyLen] != ' ')
    return std::nullopt;
  const char *Text = Line.c_str() + KeyLen + 1;
  char *End = nullptr;
  errno = 0;
  unsigned long long Value = std::strtoull(Text, &End, Hex ? 16 : 10);
  if (errno != 0 || End == Text || *End != '\0')
    return std::nullopt;
  return static_cast<uint64_t>(Value);
}

std::string manifestContents(uint64_t Fingerprint, uint64_t NumShards) {
  return formatString("%s\nfingerprint %016" PRIx64 "\nshards %" PRIu64 "\n",
                      ManifestMagic, Fingerprint, NumShards);
}

} // namespace

std::string CheckpointStore::shardPath(uint64_t Index) const {
  return formatString("%s/shard-%08" PRIu64 ".ckpt", Dir.c_str(), Index);
}

std::optional<CheckpointStore>
CheckpointStore::open(const std::string &Dir, uint64_t Fingerprint,
                      uint64_t NumShards, std::string &Error) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = formatString("cannot create checkpoint directory %s: %s",
                         Dir.c_str(), Ec.message().c_str());
    return std::nullopt;
  }
  sweepOrphanedTempFiles(Dir);
  std::string ManifestPath = Dir + "/" + ManifestName;
  if (std::optional<std::string> Existing = readFile(ManifestPath)) {
    // Resuming: the directory must belong to this exact campaign.
    std::string Text = *Existing;
    std::string Magic = takeLine(Text);
    if (Magic == ManifestMagicV1) {
      Error = formatString(
          "%s is a v1 checkpoint store; the v2 per-cell format cannot "
          "safely reuse it (v1 shards carry no operator fingerprints, so "
          "verdicts of since-changed transfer functions would be served "
          "silently) -- point at a fresh directory and re-run",
          Dir.c_str());
      return std::nullopt;
    }
    std::optional<uint64_t> HaveFp =
        parseKeyedU64(takeLine(Text), "fingerprint", /*Hex=*/true);
    std::optional<uint64_t> HaveShards =
        parseKeyedU64(takeLine(Text), "shards", /*Hex=*/false);
    if (Magic != ManifestMagic || !HaveFp || !HaveShards) {
      Error = formatString("%s is not a v2 campaign manifest",
                           ManifestPath.c_str());
      return std::nullopt;
    }
    if (*HaveFp != Fingerprint || *HaveShards != NumShards) {
      Error = formatString(
          "checkpoint directory %s belongs to a different campaign "
          "(manifest fingerprint %016" PRIx64 "/%" PRIu64
          " shards, this spec %016" PRIx64 "/%" PRIu64
          " shards); refusing to mix state",
          Dir.c_str(), *HaveFp, *HaveShards, Fingerprint, NumShards);
      return std::nullopt;
    }
  } else if (!writeFileDurable(ManifestPath,
                               manifestContents(Fingerprint, NumShards),
                               Error)) {
    return std::nullopt;
  }
  return CheckpointStore(Dir, Fingerprint);
}

bool CheckpointStore::storeShard(uint64_t Index, const ShardRecord &Record,
                                 std::string &Error) const {
  std::string Contents = formatString(
      "%s\nfingerprint %016" PRIx64 "\nshard %" PRIu64 "\ncell %" PRIu64
      "\ncellfp %016" PRIx64 "\nterminal %d\n",
      ShardMagic, Fingerprint, Index, Record.Cell, Record.CellFingerprint,
      Record.Terminal ? 1 : 0);
  Contents += Record.Payload;
  return writeFileDurable(shardPath(Index), Contents, Error);
}

std::optional<ShardRecord>
CheckpointStore::loadShard(uint64_t Index, std::string &Error) const {
  Error.clear();
  std::string Path = shardPath(Index);
  std::optional<std::string> Contents = readFile(Path);
  if (!Contents)
    return std::nullopt; // Not completed yet; Error stays empty.
  std::string Text = std::move(*Contents);
  std::string Magic = takeLine(Text);
  if (Magic == ShardMagicV1) {
    Error = formatString(
        "%s is a v1 campaign shard (no per-cell operator fingerprint); "
        "v1 state cannot be reused -- point at a fresh directory",
        Path.c_str());
    return std::nullopt;
  }
  std::optional<uint64_t> Fp =
      parseKeyedU64(takeLine(Text), "fingerprint", /*Hex=*/true);
  std::optional<uint64_t> Shard =
      parseKeyedU64(takeLine(Text), "shard", /*Hex=*/false);
  std::optional<uint64_t> Cell =
      parseKeyedU64(takeLine(Text), "cell", /*Hex=*/false);
  std::optional<uint64_t> CellFp =
      parseKeyedU64(takeLine(Text), "cellfp", /*Hex=*/true);
  std::optional<uint64_t> Terminal =
      parseKeyedU64(takeLine(Text), "terminal", /*Hex=*/false);
  if (Magic != ShardMagic || !Fp || !Shard || !Cell || !CellFp ||
      !Terminal || (*Terminal != 0 && *Terminal != 1)) {
    Error = formatString("%s is not a v2 campaign shard file", Path.c_str());
    return std::nullopt;
  }
  if (*Fp != Fingerprint || *Shard != Index) {
    Error = formatString("%s belongs to a different campaign or shard "
                         "(fingerprint %016" PRIx64 ", shard %" PRIu64 ")",
                         Path.c_str(), *Fp, *Shard);
    return std::nullopt;
  }
  ShardRecord Record;
  Record.Terminal = *Terminal == 1;
  Record.Cell = *Cell;
  Record.CellFingerprint = *CellFp;
  Record.Payload = std::move(Text);
  return Record;
}

bool CheckpointStore::removeShard(uint64_t Index, std::string &Error) const {
  if (::unlink(shardPath(Index).c_str()) == 0 || errno == ENOENT)
    return true;
  Error = formatString("cannot remove stale shard %s: %s",
                       shardPath(Index).c_str(), std::strerror(errno));
  return false;
}

bool CheckpointStore::hasShard(uint64_t Index) const {
  struct stat St;
  return ::stat(shardPath(Index).c_str(), &St) == 0;
}

std::vector<uint64_t> CheckpointStore::completedShards() const {
  std::vector<uint64_t> Indices;
  std::error_code Ec;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, Ec)) {
    std::string Name = Entry.path().filename().string();
    uint64_t Index;
    char Trailer[6] = {};
    // shard-<index>.ckpt, and nothing after the suffix (excludes temps).
    if (std::sscanf(Name.c_str(), "shard-%" SCNu64 ".ckp%5s", &Index,
                    Trailer) == 2 &&
        std::strcmp(Trailer, "t") == 0)
      Indices.push_back(Index);
  }
  std::sort(Indices.begin(), Indices.end());
  return Indices;
}
