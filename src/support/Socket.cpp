//===- support/Socket.cpp - Socket and event-loop helpers ----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include "support/Table.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tnums;

void OwnedFd::reset() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

namespace {

std::optional<OwnedFd> makeSocket(int Domain, std::string &Error) {
  int Fd = ::socket(Domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = formatString("socket(): %s", std::strerror(errno));
    return std::nullopt;
  }
  return OwnedFd(Fd);
}

/// Fills \p Addr for \p Path; false when the path does not fit (the
/// classic sockaddr_un limitation surfaces as a clean error, not
/// truncation).
bool fillUnixAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string &Error) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    Error = formatString("unix socket path %s is empty or longer than %zu",
                         Path.c_str(), sizeof(Addr.sun_path) - 1);
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

std::optional<OwnedFd> tnums::listenUnix(const std::string &Path,
                                         std::string &Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return std::nullopt;
  std::optional<OwnedFd> Fd = makeSocket(AF_UNIX, Error);
  if (!Fd)
    return std::nullopt;
  // A daemon killed without cleanup leaves its socket file behind; bind
  // would fail with EADDRINUSE forever. Only ever unlink sockets -- a
  // regular file at the path is a configuration error worth surfacing.
  struct stat St;
  if (::lstat(Path.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode)) {
      Error = formatString("%s exists and is not a socket", Path.c_str());
      return std::nullopt;
    }
    ::unlink(Path.c_str());
  }
  if (::bind(Fd->get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Error = formatString("bind(%s): %s", Path.c_str(), std::strerror(errno));
    return std::nullopt;
  }
  if (::listen(Fd->get(), 64) != 0) {
    Error = formatString("listen(%s): %s", Path.c_str(),
                         std::strerror(errno));
    return std::nullopt;
  }
  return Fd;
}

std::optional<OwnedFd> tnums::listenTcpLoopback(uint16_t Port,
                                                uint16_t &BoundPort,
                                                std::string &Error) {
  std::optional<OwnedFd> Fd = makeSocket(AF_INET, Error);
  if (!Fd)
    return std::nullopt;
  int One = 1;
  ::setsockopt(Fd->get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd->get(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Error = formatString("bind(127.0.0.1:%u): %s", Port,
                         std::strerror(errno));
    return std::nullopt;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd->get(), reinterpret_cast<sockaddr *>(&Addr), &Len) !=
      0) {
    Error = formatString("getsockname(): %s", std::strerror(errno));
    return std::nullopt;
  }
  BoundPort = ntohs(Addr.sin_port);
  if (::listen(Fd->get(), 64) != 0) {
    Error = formatString("listen(127.0.0.1:%u): %s", BoundPort,
                         std::strerror(errno));
    return std::nullopt;
  }
  return Fd;
}

std::optional<OwnedFd> tnums::connectUnix(const std::string &Path,
                                          std::string &Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return std::nullopt;
  std::optional<OwnedFd> Fd = makeSocket(AF_UNIX, Error);
  if (!Fd)
    return std::nullopt;
  if (::connect(Fd->get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Error = formatString("connect(%s): %s", Path.c_str(),
                         std::strerror(errno));
    return std::nullopt;
  }
  return Fd;
}

std::optional<OwnedFd> tnums::connectTcpLoopback(uint16_t Port,
                                                 std::string &Error) {
  std::optional<OwnedFd> Fd = makeSocket(AF_INET, Error);
  if (!Fd)
    return std::nullopt;
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd->get(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Error = formatString("connect(127.0.0.1:%u): %s", Port,
                         std::strerror(errno));
    return std::nullopt;
  }
  return Fd;
}

std::optional<OwnedFd> tnums::connectUnixRetry(const std::string &Path,
                                               unsigned TimeoutMs,
                                               std::string &Error) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    if (std::optional<OwnedFd> Fd = connectUnix(Path, Error))
      return Fd;
    if (std::chrono::steady_clock::now() >= Deadline)
      return std::nullopt; // Error from the last attempt stands.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool tnums::writeAll(int Fd, const void *Data, size_t Size,
                     std::string &Error) {
  const char *Bytes = static_cast<const char *>(Data);
  size_t Written = 0;
  while (Written != Size) {
    ssize_t N = ::write(Fd, Bytes + Written, Size - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = formatString("write(): %s", std::strerror(errno));
      return false;
    }
    Written += static_cast<size_t>(N);
  }
  return true;
}

bool tnums::readAll(int Fd, void *Data, size_t Size, std::string &Error) {
  char *Bytes = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got != Size) {
    ssize_t N = ::read(Fd, Bytes + Got, Size - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = formatString("read(): %s", std::strerror(errno));
      return false;
    }
    if (N == 0) {
      if (Got == 0) {
        Error.clear(); // Orderly EOF at a message boundary.
      } else {
        Error = formatString("connection closed mid-message (%zu of %zu "
                             "bytes)",
                             Got, Size);
      }
      return false;
    }
    Got += static_cast<size_t>(N);
  }
  return true;
}

bool tnums::setNonBlocking(int Fd, std::string &Error) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0) {
    Error = formatString("fcntl(O_NONBLOCK): %s", std::strerror(errno));
    return false;
  }
  return true;
}

void tnums::ignoreSigpipe() {
  ::signal(SIGPIPE, SIG_IGN);
}

std::optional<SelfPipe> SelfPipe::create(std::string &Error) {
  int Fds[2];
  if (::pipe(Fds) != 0) {
    Error = formatString("pipe(): %s", std::strerror(errno));
    return std::nullopt;
  }
  OwnedFd Read(Fds[0]), Write(Fds[1]);
  if (!setNonBlocking(Read.get(), Error) ||
      !setNonBlocking(Write.get(), Error))
    return std::nullopt;
  return SelfPipe(std::move(Read), std::move(Write));
}

void SelfPipe::notify() const {
  char Byte = 1;
  // EAGAIN (pipe full) is success: a wakeup is already pending. EINTR is
  // retried; anything else is unreachable for a valid pipe.
  while (::write(Write.get(), &Byte, 1) < 0 && errno == EINTR) {
  }
}

void SelfPipe::drain() const {
  char Buf[256];
  while (::read(Read.get(), Buf, sizeof(Buf)) > 0) {
  }
}
