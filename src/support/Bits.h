//===- support/Bits.h - Bit-manipulation utilities --------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Width-parametric bit-manipulation helpers shared by the tnum domain, the
/// verification oracles, and the BPF substrate. All operations are defined on
/// uint64_t carriers; a "width" parameter N in [1, 64] selects the number of
/// low-order bits that are semantically meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_BITS_H
#define TNUMS_SUPPORT_BITS_H

#include <bit>
#include <cassert>
#include <cstdint>

namespace tnums {

/// Maximum bit width supported by the library (the kernel's tnum width).
inline constexpr unsigned MaxBitWidth = 64;

/// Returns a mask with the low \p Width bits set.
///
/// \pre 1 <= Width <= 64.
constexpr uint64_t lowBitsMask(unsigned Width) {
  assert(Width >= 1 && Width <= MaxBitWidth && "width out of range");
  return Width == MaxBitWidth ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
}

/// Truncates \p V to the low \p Width bits.
constexpr uint64_t truncateToWidth(uint64_t V, unsigned Width) {
  return V & lowBitsMask(Width);
}

/// Returns true if \p V has no bits set at or above position \p Width.
constexpr bool fitsWidth(uint64_t V, unsigned Width) {
  return (V & ~lowBitsMask(Width)) == 0;
}

/// Extracts bit \p Pos of \p V as 0 or 1.
constexpr uint64_t bitAt(uint64_t V, unsigned Pos) {
  assert(Pos < MaxBitWidth && "bit position out of range");
  return (V >> Pos) & 1;
}

/// Sign-extends the low \p Width bits of \p V to a full 64-bit signed value.
constexpr int64_t signExtend(uint64_t V, unsigned Width) {
  assert(Width >= 1 && Width <= MaxBitWidth && "width out of range");
  if (Width == MaxBitWidth)
    return static_cast<int64_t>(V);
  uint64_t SignBit = uint64_t(1) << (Width - 1);
  uint64_t Truncated = truncateToWidth(V, Width);
  return static_cast<int64_t>((Truncated ^ SignBit) - SignBit);
}

/// Number of set bits in \p V.
constexpr unsigned popCount(uint64_t V) {
  return static_cast<unsigned>(std::popcount(V));
}

/// Arithmetic right shift of the low \p Width bits of \p V by \p Amount,
/// replicating the width-local sign bit. The result is truncated to
/// \p Width bits again (high bits zero).
constexpr uint64_t arithmeticShiftRight(uint64_t V, unsigned Amount,
                                        unsigned Width) {
  assert(Amount < Width && "shift amount must be < width");
  int64_t Extended = signExtend(V, Width);
  return truncateToWidth(static_cast<uint64_t>(Extended >> Amount), Width);
}

/// Parses \p Text as an unsigned binary string ("0101..."), most significant
/// bit first. Returns false on any non-binary character or overflow past 64
/// bits. Used by the tnum string parser and the BPF assembler.
bool parseBinary(const char *Text, unsigned Length, uint64_t &Result);

} // namespace tnums

#endif // TNUMS_SUPPORT_BITS_H
