//===- support/Stats.cpp - CDF and summary statistics ---------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace tnums;

double DiscreteCdf::fractionBelow(int64_t Bucket) const {
  if (Total == 0)
    return 0.0;
  uint64_t Below = 0;
  for (const auto &[Key, Count] : Counts) {
    if (Key >= Bucket)
      break;
    Below += Count;
  }
  return static_cast<double>(Below) / static_cast<double>(Total);
}

double DiscreteCdf::fractionAt(int64_t Bucket) const {
  if (Total == 0)
    return 0.0;
  auto It = Counts.find(Bucket);
  if (It == Counts.end())
    return 0.0;
  return static_cast<double>(It->second) / static_cast<double>(Total);
}

std::vector<CdfPoint> DiscreteCdf::points() const {
  std::vector<CdfPoint> Points;
  Points.reserve(Counts.size());
  uint64_t Running = 0;
  for (const auto &[Key, Count] : Counts) {
    Running += Count;
    Points.push_back({static_cast<double>(Key),
                      static_cast<double>(Running) /
                          static_cast<double>(Total)});
  }
  return Points;
}

double SampleSummary::mean() const {
  if (Samples.empty())
    return 0.0;
  double Sum = 0.0;
  for (uint64_t S : Samples)
    Sum += static_cast<double>(S);
  return Sum / static_cast<double>(Samples.size());
}

uint64_t SampleSummary::min() const {
  assert(!Samples.empty() && "min of empty sample set");
  return *std::min_element(Samples.begin(), Samples.end());
}

uint64_t SampleSummary::max() const {
  assert(!Samples.empty() && "max of empty sample set");
  return *std::max_element(Samples.begin(), Samples.end());
}

void SampleSummary::ensureSorted() {
  if (Sorted)
    return;
  std::sort(Samples.begin(), Samples.end());
  Sorted = true;
}

double SampleSummary::percentile(double P) {
  assert(P >= 0.0 && P <= 100.0 && "percentile out of range");
  assert(!Samples.empty() && "percentile of empty sample set");
  ensureSorted();
  if (Samples.size() == 1)
    return static_cast<double>(Samples.front());
  double Rank = P / 100.0 * static_cast<double>(Samples.size() - 1);
  size_t Lower = static_cast<size_t>(std::floor(Rank));
  size_t Upper = static_cast<size_t>(std::ceil(Rank));
  double Weight = Rank - static_cast<double>(Lower);
  return static_cast<double>(Samples[Lower]) * (1.0 - Weight) +
         static_cast<double>(Samples[Upper]) * Weight;
}

std::vector<CdfPoint> SampleSummary::cdf(unsigned MaxPoints) {
  std::vector<CdfPoint> Points;
  if (Samples.empty() || MaxPoints == 0)
    return Points;
  ensureSorted();
  size_t Count = Samples.size();
  size_t Step = std::max<size_t>(1, Count / MaxPoints);
  for (size_t I = Step - 1; I < Count; I += Step)
    Points.push_back({static_cast<double>(Samples[I]),
                      static_cast<double>(I + 1) /
                          static_cast<double>(Count)});
  if (Points.empty() || Points.back().CumulativeFraction < 1.0)
    Points.push_back({static_cast<double>(Samples.back()), 1.0});
  return Points;
}
