//===- support/Stats.h - CDF and summary statistics -------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulators for the cumulative distributions plotted in the paper's
/// Figures 4 and 5 and for simple summary statistics (mean, percentiles).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SUPPORT_STATS_H
#define TNUMS_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <vector>

namespace tnums {

/// One (x, cumulative fraction) point of an empirical CDF.
struct CdfPoint {
  double X;
  double CumulativeFraction;
};

/// Accumulates discrete observations keyed by an integral bucket and renders
/// an exact empirical CDF. Figure 4 buckets by the log2 set-size ratio (one
/// bucket per trit of precision difference), so an exact map-based CDF is
/// both feasible and faithful.
class DiscreteCdf {
public:
  /// Records one observation of \p Bucket.
  void add(int64_t Bucket) {
    ++Counts[Bucket];
    ++Total;
  }

  /// Records \p Count observations of \p Bucket at once -- the merge
  /// primitive for histograms accumulated per worker in parallel walks
  /// (bench/fig4_mul_precision). Equivalent to Count calls to add().
  void addCount(int64_t Bucket, uint64_t Count) {
    Counts[Bucket] += Count;
    Total += Count;
  }

  /// Number of observations recorded.
  uint64_t totalCount() const { return Total; }

  /// Fraction of observations with bucket strictly below \p Bucket.
  double fractionBelow(int64_t Bucket) const;

  /// Fraction of observations with bucket equal to \p Bucket.
  double fractionAt(int64_t Bucket) const;

  /// Renders the CDF as (bucket, P[value <= bucket]) points in increasing
  /// bucket order. Empty if no observations were added.
  std::vector<CdfPoint> points() const;

private:
  std::map<int64_t, uint64_t> Counts;
  uint64_t Total = 0;
};

/// Streaming summary of a sequence of non-negative samples (cycle counts in
/// Figure 5). Stores all samples to allow exact percentiles; the Figure 5
/// workload (tens of millions of u64 samples) fits comfortably in memory.
class SampleSummary {
public:
  void add(uint64_t Sample) { Samples.push_back(Sample); }

  uint64_t count() const { return Samples.size(); }
  double mean() const;
  uint64_t min() const;
  uint64_t max() const;

  /// Exact percentile with linear interpolation; \p P in [0, 100].
  /// Sorts lazily on first query.
  double percentile(double P);

  /// Renders an empirical CDF downsampled to at most \p MaxPoints points.
  std::vector<CdfPoint> cdf(unsigned MaxPoints);

private:
  void ensureSorted();

  std::vector<uint64_t> Samples;
  bool Sorted = false;
};

} // namespace tnums

#endif // TNUMS_SUPPORT_STATS_H
