//===- service/ProgramGen.h - Seeded BPF program generator ------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured random BPF programs for the batched verification service and
/// the differential fuzz harness: the workload generator that turns the
/// single-program substrate into a many-program campaign. Programs span
/// the scenario space the paper motivates --
///
///   * AluMix:       straight-line ALU64/ALU32 streams over memory-seeded
///                   scratch registers, forward JMP/JMP32 guards, scalar
///                   spill/fill round trips (always verifier-safe);
///   * BoundsCheck:  the SI guard-then-access idioms -- tnum masking and
///                   branch bounds in front of a computed access, with
///                   randomized constants that straddle the region size,
///                   so the stream mixes accepts with justified rejects;
///   * PacketFilter: miniature XDP-style filters (length check on R2,
///                   type dispatch, masked offset reads, hash mixing);
///   * Loops:        bounded counting loops (constant and memory-seeded
///                   trip counts) that push the analyzer through join +
///                   widening;
///   * MaskIdx:      access indices composed from independently masked
///                   fields (AND / LSH / OR chains) -- the known-bits
///                   composition tristate numbers track exactly, with
///                   composed bounds straddling the region size;
///   * Scaled:       masked indices scaled by a power of two (LSH or the
///                   equivalent MUL) before the access -- the paper's
///                   tnum-multiplication stress shape;
///   * Mixed:        a uniform draw over the four original shapes per
///                   program (the tnum-stressing profiles are opt-in, so
///                   historical mixed-profile streams stay reproducible).
///
/// Every generated program passes Program::validate() by construction
/// (tests pin this); *semantic* acceptance is intentionally mixed so batch
/// runs exercise both verdicts. A structure-preserving mutate() corrupts
/// immediates, operators, compares, widths, and access shapes without
/// breaking structural validity, to probe the analyzer just outside the
/// generator's grammar.
///
/// Determinism: the instruction stream is a pure function of (seed,
/// options, call sequence) -- the service determinism tests rely on it.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_PROGRAMGEN_H
#define TNUMS_SERVICE_PROGRAMGEN_H

#include "bpf/Program.h"
#include "support/Random.h"

#include <optional>

namespace tnums {
namespace service {

/// The scenario families the generator draws from.
enum class GenProfile : uint8_t {
  AluMix,
  BoundsCheck,
  PacketFilter,
  Loops,
  MaskIdx,
  Scaled,
  Mixed,
};

/// Stable lower-case profile name ("alu", "bounds", ...).
const char *genProfileName(GenProfile Profile);

/// Parses a profile name as printed by genProfileName; nullopt otherwise.
std::optional<GenProfile> parseGenProfile(const char *Text);

/// Generator tuning.
struct GenOptions {
  GenProfile Profile = GenProfile::Mixed;
  /// Byte size of the context region the programs target (and the
  /// verifier/interpreter must be run with). Must be >= 16.
  uint64_t MemSize = 32;
};

/// Seeded structured program source. next() draws a fresh program from the
/// configured profile; mutate() perturbs an existing one.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed, GenOptions Opts = GenOptions());

  /// The next program in the stream. Always structurally valid.
  bpf::Program next();

  /// A structure-preserving mutation of \p Base: 1-3 random edits to
  /// immediates / ALU ops / compares / 32-bit flags / access sizes and
  /// offsets (including deliberate narrowing of accesses to 8/16 bits),
  /// never touching jump displacements or destination registers, so the
  /// result still passes Program::validate().
  bpf::Program mutate(const bpf::Program &Base);

  const GenOptions &options() const { return Opts; }

private:
  bpf::Program genAluMix();
  bpf::Program genBoundsCheck();
  bpf::Program genPacketFilter();
  bpf::Program genLoop();
  bpf::Program genMaskIdx();
  bpf::Program genScaled();

  Xoshiro256 Rng;
  GenOptions Opts;
};

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_PROGRAMGEN_H
