//===- service/ProgramGen.cpp - Seeded BPF program generator --------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/ProgramGen.h"

#include "bpf/Builder.h"

#include <cassert>
#include <cstring>
#include <iterator>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

constexpr Reg Scratch[] = {R3, R4, R5, R6, R7, R8};
constexpr unsigned NumScratch = std::size(Scratch);

/// The two-operand arithmetic/bitwise ops (everything except Mov/Neg).
constexpr AluOp ArithOps[] = {AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div,
                              AluOp::Mod, AluOp::And, AluOp::Or,  AluOp::Xor,
                              AluOp::Lsh, AluOp::Rsh, AluOp::Arsh};

constexpr CompareOp Compares[] = {CompareOp::Eq,  CompareOp::Ne,
                                  CompareOp::Lt,  CompareOp::Le,
                                  CompareOp::Gt,  CompareOp::Ge,
                                  CompareOp::SLt, CompareOp::SLe,
                                  CompareOp::SGt, CompareOp::SGe,
                                  CompareOp::Set};

} // namespace

const char *tnums::service::genProfileName(GenProfile Profile) {
  switch (Profile) {
  case GenProfile::AluMix:
    return "alu";
  case GenProfile::BoundsCheck:
    return "bounds";
  case GenProfile::PacketFilter:
    return "packet";
  case GenProfile::Loops:
    return "loops";
  case GenProfile::MaskIdx:
    return "maskidx";
  case GenProfile::Scaled:
    return "scaled";
  case GenProfile::Mixed:
    return "mixed";
  }
  assert(false && "unknown profile");
  return "?";
}

std::optional<GenProfile> tnums::service::parseGenProfile(const char *Text) {
  for (GenProfile P : {GenProfile::AluMix, GenProfile::BoundsCheck,
                       GenProfile::PacketFilter, GenProfile::Loops,
                       GenProfile::MaskIdx, GenProfile::Scaled,
                       GenProfile::Mixed})
    if (std::strcmp(Text, genProfileName(P)) == 0)
      return P;
  return std::nullopt;
}

ProgramGen::ProgramGen(uint64_t Seed, GenOptions OptsV)
    : Rng(Seed), Opts(OptsV) {
  assert(Opts.MemSize >= 16 && "profiles assume a >= 16-byte region");
}

//===----------------------------------------------------------------------===//
// AluMix: straight-line ALU64/ALU32 work over memory-seeded scratch
// registers with forward JMP/JMP32 guards and scalar spill/fill round
// trips. Every emitted access is trivially in bounds, so these programs
// are always accepted -- the throughput baseline workload.
//===----------------------------------------------------------------------===//

Program ProgramGen::genAluMix() {
  ProgramBuilder B;

  // Seed every scratch register: from memory (unknown to the analyzer) or
  // a constant.
  for (Reg R : Scratch) {
    if (Rng.nextChance(1, 2)) {
      unsigned Size = 1u << Rng.nextBelow(3); // 1, 2, or 4 bytes
      int32_t Offset =
          static_cast<int32_t>(Rng.nextBelow(Opts.MemSize - Size));
      B.load(R, R1, Offset, Size);
    } else {
      B.movImm(R, static_cast<int64_t>(Rng.next() >> Rng.nextBelow(60)));
    }
  }

  unsigned NumBranches = static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned Block = 0; Block <= NumBranches; ++Block) {
    unsigned NumAlu = 2 + static_cast<unsigned>(Rng.nextBelow(6));
    for (unsigned I = 0; I != NumAlu; ++I) {
      // Occasionally interleave a scalar spill/fill dance or a negation.
      if (Rng.nextChance(1, 8)) {
        Reg R = Scratch[Rng.nextBelow(NumScratch)];
        int32_t SlotOff = Rng.nextChance(1, 2) ? -8 : -16;
        B.store(R10, SlotOff, R, 8);
        B.load(Scratch[Rng.nextBelow(NumScratch)], R10, SlotOff, 8);
        continue;
      }
      if (Rng.nextChance(1, 12)) {
        B.neg(Scratch[Rng.nextBelow(NumScratch)]);
        continue;
      }
      AluOp Op = ArithOps[Rng.nextBelow(std::size(ArithOps))];
      Reg Dst = Scratch[Rng.nextBelow(NumScratch)];
      bool Is32 = Rng.nextChance(1, 3); // Mix ALU32 into the stream.
      if (Rng.nextChance(1, 2)) {
        Reg Src = Scratch[Rng.nextBelow(NumScratch)];
        if (Is32)
          B.alu32(Op, Dst, Src);
        else
          B.alu(Op, Dst, Src);
      } else {
        int64_t Imm = static_cast<int64_t>(Rng.next() >> Rng.nextBelow(60));
        if (Is32)
          B.alu32Imm(Op, Dst, Imm);
        else
          B.aluImm(Op, Dst, Imm);
      }
    }
    if (Block != NumBranches) {
      // Forward branch landing on the next block either way; the
      // refinement still kicks in on both edges.
      CompareOp Cmp = Compares[Rng.nextBelow(std::size(Compares))];
      Reg Dst = Scratch[Rng.nextBelow(NumScratch)];
      std::string Label = "block" + std::to_string(Block);
      bool Jmp32 = Rng.nextChance(1, 3); // Mix JMP32 guards in too.
      if (Rng.nextChance(1, 2)) {
        int64_t Imm = static_cast<int64_t>(Rng.nextBelow(512));
        if (Jmp32)
          B.jmp32Imm(Cmp, Dst, Imm, Label);
        else
          B.jmpImm(Cmp, Dst, Imm, Label);
      } else {
        Reg Src = Scratch[Rng.nextBelow(NumScratch)];
        if (Jmp32)
          B.jmp32(Cmp, Dst, Src, Label);
        else
          B.jmp(Cmp, Dst, Src, Label);
      }
      // A small then-block the branch skips.
      B.aluImm(ArithOps[Rng.nextBelow(std::size(ArithOps))],
               Scratch[Rng.nextBelow(NumScratch)],
               static_cast<int64_t>(Rng.nextBelow(1024)));
      B.label(Label);
    }
  }

  B.mov(R0, Scratch[Rng.nextBelow(NumScratch)]);
  B.exit();
  return B.build();
}

//===----------------------------------------------------------------------===//
// BoundsCheck: the paper's SI guard-then-access idioms with randomized
// constants straddling the region size, so the stream deliberately mixes
// provably-safe accepts with justified rejects.
//===----------------------------------------------------------------------===//

Program ProgramGen::genBoundsCheck() {
  ProgramBuilder B;
  const uint64_t Mem = Opts.MemSize;
  const unsigned Size = 1u << Rng.nextBelow(4);

  switch (Rng.nextBelow(3)) {
  case 0: {
    // Tnum masking (the paper's intro example): r3 <= M by AND, then a
    // computed access at r1 + r3 + O. Safe iff M + O + Size <= Mem.
    static constexpr uint64_t Masks[] = {1, 3, 6, 7, 14, 15, 24, 31, 63};
    uint64_t M = Masks[Rng.nextBelow(std::size(Masks))];
    int32_t O = static_cast<int32_t>(Rng.nextBelow(8));
    B.load(R3, R1, 0, 1);
    B.aluImm(AluOp::And, R3, static_cast<int64_t>(M));
    B.alu(AluOp::Add, R3, R1);
    B.load(R0, R3, O, Size);
    B.exit();
    break;
  }
  case 1: {
    // Branch bound: reject when the untrusted index exceeds the guard.
    // Safe iff Guard + Size <= Mem; Guard is drawn past Mem so both
    // verdicts occur.
    uint64_t Guard = Rng.nextBelow(Mem + 8);
    B.load(R3, R1, 0, Rng.nextChance(1, 2) ? 1 : 2);
    if (Rng.nextChance(1, 3))
      B.jmp32Imm(CompareOp::Gt, R3, static_cast<int64_t>(Guard), "reject");
    else
      B.jmpImm(CompareOp::Gt, R3, static_cast<int64_t>(Guard), "reject");
    B.alu(AluOp::Add, R3, R1);
    B.load(R0, R3, 0, Size);
    B.exit();
    B.label("reject");
    B.movImm(R0, 0);
    B.exit();
    break;
  }
  default: {
    // Length precondition on R2 plus a branch bound on the index -- the
    // double-guard shape real filters use.
    uint64_t Guard = Rng.nextBelow(Mem);
    B.jmpImm(CompareOp::Lt, R2, static_cast<int64_t>(8 + Rng.nextBelow(Mem)),
             "reject");
    B.load(R3, R1, 0, 1);
    B.jmpImm(CompareOp::Ge, R3, static_cast<int64_t>(Guard + 1), "reject");
    B.alu(AluOp::Add, R3, R1);
    B.load(R4, R3, 0, Size);
    B.mov(R0, R4);
    B.exit();
    B.label("reject");
    B.movImm(R0, 1);
    B.exit();
    break;
  }
  }
  return B.build();
}

//===----------------------------------------------------------------------===//
// PacketFilter: miniature XDP-style filters -- length check against R2,
// type dispatch, masked offset reads, hash mixing. Mostly accepted; a
// deliberate fraction reads past the region to keep rejects in the mix.
//===----------------------------------------------------------------------===//

Program ProgramGen::genPacketFilter() {
  ProgramBuilder B;
  const uint64_t Mem = Opts.MemSize;

  // Length precondition; R2 carries the region size at entry.
  B.jmpImm(CompareOp::Lt, R2, static_cast<int64_t>(16 + Rng.nextBelow(8)),
           "drop");

  B.load(R3, R1, 0, 1); // type byte
  B.jmpImm(CompareOp::Eq, R3, 0, "drop");
  B.jmpImm(CompareOp::Eq, R3, 1, "word");

  // Default arm: hash the flags byte mixed with a masked-offset read.
  B.load(R4, R1, 1, 1);
  B.mov(R5, R4);
  B.aluImm(AluOp::And, R5, Rng.nextChance(1, 2) ? 7 : 15);
  B.alu(AluOp::Add, R5, R1);
  B.load(R6, R5, 0, 1);
  B.mov(R0, R4);
  B.aluImm(AluOp::Mul, R0, static_cast<int64_t>(1 + Rng.nextBelow(255)));
  B.alu(AluOp::Xor, R0, R6);
  if (Rng.nextChance(1, 2))
    B.alu32Imm(AluOp::Lsh, R0, static_cast<int64_t>(Rng.nextBelow(8)));
  B.ja("out");

  // Type-1 arm: hash a payload word. 1-in-8 draws place the word so it
  // hangs past the region -- a justified reject.
  B.label("word");
  unsigned WordSize = Rng.nextChance(1, 2) ? 4 : 8;
  int32_t WordOff =
      Rng.nextChance(1, 8)
          ? static_cast<int32_t>(Mem - WordSize + 1 + Rng.nextBelow(4))
          : static_cast<int32_t>(
                8 * Rng.nextBelow((Mem - WordSize) / 8 + 1));
  B.load(R7, R1, WordOff, WordSize);
  B.mov(R0, R7);
  B.aluImm(AluOp::Rsh, R0, static_cast<int64_t>(7 + Rng.nextBelow(24)));
  B.alu(AluOp::Xor, R0, R7);
  B.aluImm(AluOp::Mul, R0, 0x9E3779B9);
  B.ja("out");

  B.label("drop");
  B.movImm(R0, 0);

  B.label("out");
  B.aluImm(AluOp::And, R0, 0x7FFFFFFF); // fold to a 31-bit verdict
  B.exit();
  return B.build();
}

//===----------------------------------------------------------------------===//
// Loops: bounded counting loops -- constant or memory-seeded trip counts
// -- whose back edges push the analyzer through join + widening, with an
// optional masked access inside the body.
//===----------------------------------------------------------------------===//

Program ProgramGen::genLoop() {
  ProgramBuilder B;
  const int64_t Trip = static_cast<int64_t>(1 + Rng.nextBelow(12));

  auto EmitBody = [&] {
    if (Rng.nextChance(1, 2)) {
      // Masked access indexed by the induction variable.
      B.mov(R5, R6);
      B.aluImm(AluOp::And, R5, 7);
      B.alu(AluOp::Add, R5, R1);
      B.load(R4, R5, 0, 1);
      B.alu(AluOp::Xor, R7, R4);
    } else {
      B.aluImm(ArithOps[Rng.nextBelow(std::size(ArithOps))], R7,
               static_cast<int64_t>(Rng.nextBelow(1 << 16)));
    }
  };

  if (Rng.nextChance(1, 2)) {
    // Count up to a constant: widening tops the induction variable, the
    // back-edge guard re-bounds it.
    B.movImm(R6, 0);
    B.movImm(R7, static_cast<int64_t>(Rng.next() >> 32));
    B.label("loop");
    EmitBody();
    B.aluImm(AluOp::Add, R6, 1);
    B.jmpImm(CompareOp::Lt, R6, Trip, "loop");
    B.mov(R0, R7);
    B.exit();
  } else {
    // Count down from a memory-seeded (masked, so bounded) trip count.
    B.load(R6, R1, 0, 1);
    B.aluImm(AluOp::And, R6, 15);
    B.movImm(R7, 0);
    B.label("head");
    B.jmpImm(CompareOp::Eq, R6, 0, "done");
    EmitBody();
    B.alu(AluOp::Add, R7, R6);
    B.aluImm(AluOp::Sub, R6, 1);
    B.ja("head");
    B.label("done");
    B.mov(R0, R7);
    B.exit();
  }
  return B.build();
}

//===----------------------------------------------------------------------===//
// MaskIdx: access indices composed from independently masked fields. Two
// bytes are masked, one is shifted, and the halves are OR-combined before
// the access -- the AND / LSH / OR chain whose known-bits composition
// tristate numbers track exactly (an interval analysis would smear the
// low bits). The composed bound straddles the region size, so the stream
// mixes provably-safe accepts with justified rejects.
//===----------------------------------------------------------------------===//

Program ProgramGen::genMaskIdx() {
  ProgramBuilder B;
  static constexpr uint64_t Masks[] = {1, 3, 7};
  const uint64_t LowMask = Masks[Rng.nextBelow(std::size(Masks))];
  const uint64_t HighMask = Masks[Rng.nextBelow(std::size(Masks))];
  const unsigned Shift = 2 + static_cast<unsigned>(Rng.nextBelow(3));
  const unsigned Size = Rng.nextChance(1, 2) ? 1 : 2;
  const int32_t ExtraOff = static_cast<int32_t>(Rng.nextBelow(4));

  B.load(R3, R1, 0, 1);
  B.aluImm(AluOp::And, R3, static_cast<int64_t>(LowMask));
  B.load(R4, R1, 1, 1);
  B.aluImm(AluOp::And, R4, static_cast<int64_t>(HighMask));
  B.aluImm(AluOp::Lsh, R4, static_cast<int64_t>(Shift));
  B.alu(AluOp::Or, R3, R4);
  B.alu(AluOp::Add, R3, R1);
  B.load(R0, R3, ExtraOff, Size);
  if (Rng.nextChance(1, 2)) {
    // Fold the loaded value through the same masked composition once
    // more, purely arithmetically, to grow the tnum dataflow depth.
    B.mov(R5, R0);
    B.aluImm(AluOp::And, R5, static_cast<int64_t>(HighMask));
    B.alu(AluOp::Xor, R0, R5);
  }
  B.exit();
  return B.build();
}

//===----------------------------------------------------------------------===//
// Scaled: a masked index scaled by a power of two -- via LSH or the
// equivalent MUL, exercising both tnum shift and tnum multiplication on
// the same shapes -- before the access. Safe iff mask * scale + offset +
// size fits the region; the constants are drawn to straddle that bound.
//===----------------------------------------------------------------------===//

Program ProgramGen::genScaled() {
  ProgramBuilder B;
  static constexpr uint64_t Masks[] = {1, 3, 7, 15};
  const uint64_t Mask = Masks[Rng.nextBelow(std::size(Masks))];
  const unsigned Scale = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  const unsigned Size = 1u << Rng.nextBelow(3);
  const int32_t ExtraOff = static_cast<int32_t>(Rng.nextBelow(4));

  B.load(R5, R1, 2, 1);
  B.aluImm(AluOp::And, R5, static_cast<int64_t>(Mask));
  if (Rng.nextChance(1, 2))
    B.aluImm(AluOp::Lsh, R5, static_cast<int64_t>(Scale));
  else
    B.aluImm(AluOp::Mul, R5, static_cast<int64_t>(1u << Scale));
  B.alu(AluOp::Add, R5, R1);
  B.load(R6, R5, ExtraOff, Size);
  B.mov(R0, R6);
  if (Rng.nextChance(1, 2))
    B.aluImm(AluOp::Rsh, R0, static_cast<int64_t>(1 + Rng.nextBelow(7)));
  B.exit();
  return B.build();
}

Program ProgramGen::next() {
  GenProfile Profile = Opts.Profile;
  if (Profile == GenProfile::Mixed) {
    // Deliberately only the four original shapes: adding draws here would
    // shift every historical mixed-profile stream. The tnum-stressing
    // profiles are selected explicitly.
    constexpr GenProfile Concrete[] = {GenProfile::AluMix,
                                       GenProfile::BoundsCheck,
                                       GenProfile::PacketFilter,
                                       GenProfile::Loops};
    Profile = Concrete[Rng.nextBelow(std::size(Concrete))];
  }
  switch (Profile) {
  case GenProfile::AluMix:
    return genAluMix();
  case GenProfile::BoundsCheck:
    return genBoundsCheck();
  case GenProfile::PacketFilter:
    return genPacketFilter();
  case GenProfile::Loops:
    return genLoop();
  case GenProfile::MaskIdx:
    return genMaskIdx();
  case GenProfile::Scaled:
    return genScaled();
  case GenProfile::Mixed:
    break;
  }
  assert(false && "unreachable profile");
  return Program();
}

Program ProgramGen::mutate(const Program &Base) {
  std::vector<Insn> Insns(Base.begin(), Base.end());
  if (Insns.empty())
    return Base;
  unsigned Edits = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned E = 0; E != Edits; ++E) {
    Insn &I = Insns[Rng.nextBelow(Insns.size())];
    switch (I.InsnKind) {
    case Insn::Kind::Alu:
      if (I.Alu != AluOp::Mov && I.Alu != AluOp::Neg && Rng.nextChance(1, 2))
        I.Alu = ArithOps[Rng.nextBelow(std::size(ArithOps))];
      else if (I.UsesImm && I.Alu != AluOp::Neg)
        I.Imm ^= static_cast<int64_t>(Rng.next() >> (1 + Rng.nextBelow(56)));
      else
        I.Is32 = !I.Is32;
      break;
    case Insn::Kind::LoadImm:
      I.Imm ^= static_cast<int64_t>(Rng.next() >> (1 + Rng.nextBelow(56)));
      break;
    case Insn::Kind::Jmp:
      // Displacements stay fixed (structure-preserving); only the
      // predicate and its width are fair game.
      if (Rng.nextChance(1, 2))
        I.Cmp = Compares[Rng.nextBelow(std::size(Compares))];
      else
        I.Is32 = !I.Is32;
      break;
    case Insn::Kind::Load:
    case Insn::Kind::Store:
      if (Rng.nextChance(1, 3))
        // Deliberate size narrowing: force a partial 8/16-bit access.
        // Narrowing a load truncates the value the downstream dataflow
        // sees (and the abstract load's tnum mask), narrowing a store
        // leaves stale high bytes in memory -- both shapes the uniform
        // resize below reaches only rarely.
        I.Size = Rng.nextChance(1, 2) ? 1 : 2;
      else if (Rng.nextChance(1, 2))
        I.Size = 1u << Rng.nextBelow(4);
      else
        I.Offset += static_cast<int32_t>(Rng.nextBelow(9)) - 4;
      break;
    case Insn::Kind::Ja:
    case Insn::Kind::Exit:
      break; // Control structure is never mutated.
    }
  }
  return Program(std::move(Insns));
}
